package moma

import (
	"math"
	"strings"
	"testing"
)

// figure1System builds a System loaded with the Figure 1 publication sets.
func figure1System(t *testing.T) *System {
	t.Helper()
	sys := NewSystem()
	dblp := NewObjectSet(LDS{Source: "DBLP", Type: Publication})
	dblp.AddNew("d1", map[string]string{"title": "Generic Schema Matching with Cupid", "year": "2001"})
	dblp.AddNew("d2", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2001"})
	dblp.AddNew("d3", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2002"})
	acm := NewObjectSet(LDS{Source: "ACM", Type: Publication})
	acm.AddNew("a1", map[string]string{"title": "Generic Schema Matching with Cupid", "year": "2001"})
	acm.AddNew("a2", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2001"})
	acm.AddNew("a3", map[string]string{"title": "A formal perspective on the view selection problem", "year": "2002"})
	if err := sys.AddObjectSet("DBLP.Publication", dblp); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddObjectSet("ACM.Publication", acm); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemMatchAndStore(t *testing.T) {
	sys := figure1System(t)
	m := &AttributeMatcher{
		MatcherName: "title",
		AttrA:       "title", AttrB: "title",
		Sim: Trigram, Threshold: 0.8,
	}
	res, err := sys.MatchAndStore(m, "DBLP.Publication", "ACM.Publication", "DBLP-ACM.PubSame")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("Len = %d, want 5 (twin confusion included)", res.Len())
	}
	if _, ok := sys.MappingByName("DBLP-ACM.PubSame"); !ok {
		t.Error("result should be stored in the repository")
	}
	if _, err := sys.MatchAndStore(m, "Nope.Set", "ACM.Publication", ""); err == nil {
		t.Error("unknown set should fail")
	}
}

func TestSystemRunScript(t *testing.T) {
	sys := figure1System(t)
	v, err := sys.RunScript(`
$Titles = attrMatch (DBLP.Publication, ACM.Publication, Trigram, 0.8, "[title]", "[title]")
$Years = attrMatch (DBLP.Publication, ACM.Publication, YearExact, 1, "[year]", "[year]")
$Merged = merge ($Titles, $Years, Avg-0)
$Result = select ($Merged, Threshold, 0.8)
RETURN $Result
`)
	if err != nil {
		t.Fatal(err)
	}
	m := v.Mapping
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3 resolved pairs: %v", m.Len(), m.Correspondences())
	}
	for _, want := range [][2]ID{{"d1", "a1"}, {"d2", "a2"}, {"d3", "a3"}} {
		if !m.Has(want[0], want[1]) {
			t.Errorf("missing %v", want)
		}
	}
	// Script assignments land in the cache for re-use.
	if _, ok := sys.Cache.Get("Cache.Titles"); !ok {
		t.Error("script mapping should be cached")
	}
	// A follow-up script can reference it by qualified name.
	v2, err := sys.RunScript("RETURN select(Cache.Titles, Threshold, 0.9)\n")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Mapping.Len() == 0 {
		t.Error("cached mapping should be usable by later scripts")
	}
}

func TestSystemRunWorkflow(t *testing.T) {
	sys := figure1System(t)
	wf := NewWorkflow("pubs").AddStep(MergeStep("m", Avg0Combiner, Threshold{T: 0.8},
		&AttributeMatcher{MatcherName: "title", AttrA: "title", AttrB: "title", Sim: Trigram, Threshold: 0.8},
		&AttributeMatcher{MatcherName: "year", AttrA: "year", AttrB: "year", Sim: YearExact, Threshold: 1},
	)).Store("wf-result")
	got, err := sys.RunWorkflow(wf, "DBLP.Publication", "ACM.Publication")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Errorf("workflow result = %d pairs", got.Len())
	}
	if _, ok := sys.Repo.Get("wf-result"); !ok {
		t.Error("workflow should store its result")
	}
	if _, err := sys.RunWorkflow(wf, "Nope", "ACM.Publication"); err == nil {
		t.Error("unknown set should fail")
	}
	if _, err := sys.RunWorkflow(wf, "DBLP.Publication", "Nope"); err == nil {
		t.Error("unknown set should fail")
	}
}

func TestSystemLoadSource(t *testing.T) {
	sys := NewSystem()
	d := GenerateDataset(SmallConfig())
	if err := sys.LoadSource(d.DBLP); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.ObjectSetByName("DBLP.Publication"); !ok {
		t.Error("publications not registered")
	}
	if _, ok := sys.MappingByName("DBLP.CoAuthor"); !ok {
		t.Error("co-author mapping not registered")
	}
	// The §4.3 dedup script runs straight off the loaded source.
	if err := sys.AddMapping("DBLP.AuthorAuthor", IdentityOf(d.DBLP.Authors)); err != nil {
		t.Fatal(err)
	}
	v, err := sys.RunScript(`
$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
$NameSim = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]")
$Merged = merge ($CoAuthSim, $NameSim, Average)
$Result = select ($Merged, "[domain.id]<>[range.id]")
RETURN $Result
`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mapping.Len() == 0 {
		t.Error("dedup script found no candidates")
	}
	// Ground truth pairs should be present among candidates.
	found := 0
	d.Perfect.AuthorDupsDBLP.Each(func(c Correspondence) {
		if v.Mapping.Has(c.Domain, c.Range) {
			found++
		}
	})
	if found == 0 {
		t.Error("no true duplicate pair among candidates")
	}
}

func TestSystemAddObjectSetValidation(t *testing.T) {
	sys := NewSystem()
	if err := sys.AddObjectSet("", nil); err == nil {
		t.Error("empty registration should fail")
	}
	set := NewObjectSet(LDS{Source: "X", Type: Publication})
	if err := sys.AddObjectSet("X.Pub", set); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddObjectSet("X.Pub", set); err == nil {
		t.Error("duplicate registration should fail")
	}
}

func TestOpenSystemPersistence(t *testing.T) {
	dir := t.TempDir()
	sys, err := OpenSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := NewSameMapping(LDS{Source: "A", Type: Publication}, LDS{Source: "B", Type: Publication})
	m.Add("x", "y", 0.9)
	if err := sys.AddMapping("ab", m); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, ok := re.MappingByName("ab")
	if !ok || got.Len() != 1 {
		t.Error("mapping not recovered")
	}
}

func TestNeighborhoodThroughFacade(t *testing.T) {
	// Figure 9 through the public API only.
	asso1 := NewMapping(LDS{Source: "DBLP", Type: Venue}, LDS{Source: "DBLP", Type: Publication}, "VenuePub")
	asso1.Add("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1)
	asso1.Add("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1)
	asso1.Add("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1)
	same := NewSameMapping(LDS{Source: "DBLP", Type: Publication}, LDS{Source: "ACM", Type: Publication})
	same.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-641272", 0.6)
	same.Add("journals/VLDB/ChirkovaHS02", "P-641272", 1)
	same.Add("journals/VLDB/ChirkovaHS02", "P-672216", 0.6)
	asso2 := NewMapping(LDS{Source: "ACM", Type: Publication}, LDS{Source: "ACM", Type: Venue}, "PubVenue")
	asso2.Add("P-672191", "V-645927", 1)
	asso2.Add("P-672216", "V-645927", 1)
	asso2.Add("P-641272", "V-641268", 1)

	got, err := NhMatch(asso1, same, asso2)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Sim("conf/VLDB/2001", "V-645927"); math.Abs(s-0.8) > 1e-9 {
		t.Errorf("sim = %v, want 0.8", s)
	}
}

func TestFusionThroughFacade(t *testing.T) {
	dblp := NewObjectSet(LDS{Source: "DBLP", Type: Publication})
	dblp.AddNew("d1", map[string]string{"title": "x"})
	gs := NewObjectSet(LDS{Source: "GS", Type: Publication})
	gs.AddNew("g1", map[string]string{"citations": "42"})
	m := NewSameMapping(dblp.LDS(), gs.LDS())
	m.Add("d1", "g1", 1)

	f := NewFuser(dblp)
	if err := f.Add(m, gs, FuseRule{FromAttr: "citations", ToAttr: "gs_cites", Agg: MaxNumeric}); err != nil {
		t.Fatal(err)
	}
	fused := f.Run()
	if fused.Get("d1").Attr("gs_cites") != "42" {
		t.Error("fusion through facade failed")
	}
}

func TestEvalThroughFacade(t *testing.T) {
	perfect := NewSameMapping(LDS{Source: "A", Type: Publication}, LDS{Source: "B", Type: Publication})
	perfect.Add("a", "b", 1)
	got := perfect.Clone()
	r := Compare(got, perfect)
	if r.F1 != 1 {
		t.Errorf("F = %v", r.F1)
	}
	if !strings.Contains(r.String(), "100.0%") {
		t.Errorf("String = %q", r.String())
	}
}
