// Bibmatch: the paper's flagship scenario end to end on the synthetic
// bibliographic world — match publications between DBLP and ACM with
// attribute matchers, derive a venue same-mapping with the neighborhood
// matcher (§4.2 / Figure 9), use it to repair the publication mapping, and
// evaluate every step against the generator's perfect mappings.
//
// Run with:
//
//	go run ./examples/bibmatch
package main

import (
	"fmt"
	"log"

	moma "repro"
)

func main() {
	fmt.Println("generating the synthetic DBLP / ACM / Google Scholar world...")
	d := moma.GenerateDataset(moma.SmallConfig())
	fmt.Printf("DBLP: %d pubs, %d venues; ACM: %d pubs, %d venues\n\n",
		d.DBLP.Pubs.Len(), d.DBLP.Venues.Len(), d.ACM.Pubs.Len(), d.ACM.Venues.Len())

	// Step 1 — attribute matching on titles (DBLP "title" vs ACM "name").
	titles := &moma.AttributeMatcher{
		MatcherName: "title-trigram",
		AttrA:       "title", AttrB: "name",
		Sim:       moma.Trigram,
		Threshold: 0.82,
		Blocker:   moma.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
	pubSame, err := titles.Match(d.DBLP.Pubs, d.ACM.Pubs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1  title matcher:        %s\n", moma.Compare(pubSame, d.Perfect.PubDBLPACM))

	// Step 2 — venue matching via the neighborhood matcher. General string
	// matching is hopeless here ("VLDB 2001" vs "27th International
	// Conference on Very Large Data Bases"); two venues match when their
	// publications match.
	venueNh, err := moma.NhMatch(d.DBLP.VenuePub, pubSame, d.ACM.PubVenue)
	if err != nil {
		log.Fatal(err)
	}
	venueSame := moma.BestN{N: 1, Side: moma.DomainSide}.Apply(venueNh)
	fmt.Printf("step 2  venue neighborhood:   %s\n", moma.Compare(venueSame, d.Perfect.VenueDBLPACM))

	// Step 3 — repair the publication mapping with the venue evidence
	// (§5.4.2): publications of corresponding venues, merged with the
	// title mapping under missing-as-zero.
	pubNh, err := moma.NhMatch(d.DBLP.PubVenue, venueSame, d.ACM.VenuePub)
	if err != nil {
		log.Fatal(err)
	}
	merged, err := moma.Merge(moma.Avg0Combiner, pubSame, pubNh)
	if err != nil {
		log.Fatal(err)
	}
	repaired := moma.Threshold{T: 0.75}.Apply(merged)
	fmt.Printf("step 3  merged with venues:   %s\n", moma.Compare(repaired, d.Perfect.PubDBLPACM))

	// Step 4 — author matching (n:m case, Figure 11): a permissive name
	// matcher intersected with shared-publication evidence, unioned with
	// the strict name matcher.
	strict := &moma.AttributeMatcher{
		AttrA: "name", AttrB: "name", Sim: moma.Trigram, Threshold: 0.8,
		Blocker: moma.TokenBlocking{AttrA: "name", AttrB: "name", MinShared: 1},
	}
	strictNames, err := strict.Match(d.DBLP.Authors, d.ACM.Authors)
	if err != nil {
		log.Fatal(err)
	}
	permissive := &moma.AttributeMatcher{
		AttrA: "name", AttrB: "name", Sim: moma.PersonName, Threshold: 0.5,
		Blocker: moma.TokenBlocking{AttrA: "name", AttrB: "name", MinShared: 1},
	}
	looseNames, err := permissive.Match(d.DBLP.Authors, d.ACM.Authors)
	if err != nil {
		log.Fatal(err)
	}
	authorNh, err := moma.NhMatch(d.DBLP.AuthorPub, repaired, d.ACM.PubAuthor)
	if err != nil {
		log.Fatal(err)
	}
	inner, err := moma.Merge(moma.Min0Combiner, looseNames, authorNh)
	if err != nil {
		log.Fatal(err)
	}
	inner = moma.Threshold{T: 0.45}.Apply(inner)
	authors, err := moma.Merge(moma.MaxCombiner, strictNames, inner)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 4  authors (n:m merge):  %s\n", moma.Compare(authors, d.Perfect.AuthorDBLPACM))

	fmt.Println("\nthe neighborhood matcher turned an unusable venue problem into a near-perfect mapping,")
	fmt.Println("and its evidence repaired both the publication and the author mappings — the paper's core claim.")
}
