// Quickstart: match two small publication sources with attribute matchers,
// combine the evidence with the merge operator, and read off the resolved
// same-mapping — the smallest end-to-end MOMA workflow.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	moma "repro"
)

func main() {
	// Two logical data sources holding publications. The instances carry
	// plain attribute values; DBLP-style keys on the left, ACM-style keys
	// on the right.
	dblp := moma.NewObjectSet(moma.LDS{Source: "DBLP", Type: moma.Publication})
	dblp.AddNew("conf/VLDB/MadhavanBR01", map[string]string{
		"title": "Generic Schema Matching with Cupid", "year": "2001"})
	dblp.AddNew("conf/VLDB/ChirkovaHS01", map[string]string{
		"title": "A formal perspective on the view selection problem", "year": "2001"})
	dblp.AddNew("journals/VLDB/ChirkovaHS02", map[string]string{
		"title": "A formal perspective on the view selection problem", "year": "2002"})

	acm := moma.NewObjectSet(moma.LDS{Source: "ACM", Type: moma.Publication})
	acm.AddNew("P-672191", map[string]string{
		"name": "Generic Schema Matching with Cupid", "year": "2001"})
	acm.AddNew("P-672216", map[string]string{
		"name": "A formal perspective on the view selection problem", "year": "2001"})
	acm.AddNew("P-641272", map[string]string{
		"name": "A formal perspective on the view selection problem", "year": "2002"})

	// Matcher 1: trigram similarity on titles. Alone it cannot tell the
	// conference paper from its identically-titled journal version.
	titles := &moma.AttributeMatcher{
		MatcherName: "title-trigram",
		AttrA:       "title", AttrB: "name",
		Sim:       moma.Trigram,
		Threshold: 0.8,
	}
	titleMap, err := titles.Match(dblp, acm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("title matcher alone: %d correspondences (note the twin confusion)\n%s\n",
		titleMap.Len(), titleMap)

	// Matcher 2: exact publication year.
	years := &moma.AttributeMatcher{
		MatcherName: "year-exact",
		AttrA:       "year", AttrB: "year",
		Sim:       moma.YearExact,
		Threshold: 1,
	}
	yearMap, err := years.Match(dblp, acm)
	if err != nil {
		log.Fatal(err)
	}

	// Merge both mappings: Avg-0 treats a correspondence missing from one
	// input as similarity 0, so pairs supported by only one matcher drop
	// below the threshold selection.
	merged, err := moma.Merge(moma.Avg0Combiner, titleMap, yearMap)
	if err != nil {
		log.Fatal(err)
	}
	result := moma.Threshold{T: 0.8}.Apply(merged)

	fmt.Printf("after merging with year evidence: %d correspondences\n%s\n", result.Len(), result)
	for _, c := range result.Sorted() {
		fmt.Printf("  %-30s == %-10s (sim %.2f)\n", c.Domain, c.Range, c.Sim)
	}
}
