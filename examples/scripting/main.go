// Scripting: the iFuice-style script language driving a complete match
// workflow, including a user-defined procedure (the paper's §4.2 nhMatch
// listing), threshold selections and an object-value constraint.
//
// Run with:
//
//	go run ./examples/scripting
package main

import (
	"fmt"
	"log"

	moma "repro"
)

// The full workflow as a script: define nhMatch exactly as printed in the
// paper, derive a venue same-mapping from the publication same-mapping,
// then select with a threshold.
const venueScript = `
// PROCEDURE from the paper, section 4.2
PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
   $Temp = compose ( $Asso1 , $Same , Min, Average )
   $Result = compose ( $Temp , $Asso2 , Min, Relative )
   RETURN $Result
END

# Titles give a publication same-mapping; venues follow from it.
$PubSame = attrMatch (DBLP.Publication, ACM.Publication, Trigram, 0.82, "[title]", "[name]")
$VenueNh = nhMatch (DBLP.VenuePub, $PubSame, ACM.PubVenue)
$VenueSame = select ($VenueNh, Threshold, 0.5)
RETURN $VenueSame
`

// A constraint-based refinement: matching publications must not differ by
// more than one year (§2.2 / §3.3).
const constraintScript = `
$PubSame = attrMatch (DBLP.Publication, ACM.Publication, Trigram, 0.82, "[title]", "[name]")
$Clean = select ($PubSame, "abs([domain.year]-[range.year])<=1")
RETURN $Clean
`

func main() {
	d := moma.GenerateDataset(moma.SmallConfig())
	sys := moma.NewSystem()
	for _, src := range []*moma.DataSource{d.DBLP, d.ACM} {
		if err := sys.LoadSource(src); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("running the venue-matching script (paper §4.2)...")
	v, err := sys.RunScript(venueScript)
	if err != nil {
		log.Fatal(err)
	}
	venues := v.Mapping
	fmt.Printf("venue same-mapping: %d correspondences, %s\n",
		venues.Len(), moma.Compare(venues, d.Perfect.VenueDBLPACM))
	for i, c := range venues.Sorted() {
		if i == 5 {
			fmt.Printf("  ... %d more\n", venues.Len()-5)
			break
		}
		fmt.Printf("  %-28s == %-10s (%s -> %s, sim %.2f)\n",
			c.Domain, c.Range,
			d.DBLP.Venues.Get(c.Domain).Attr("name"),
			d.ACM.Venues.Get(c.Range).Attr("name"),
			c.Sim)
	}

	fmt.Println("\nrunning the year-constraint script (paper §3.3)...")
	v2, err := sys.RunScript(constraintScript)
	if err != nil {
		log.Fatal(err)
	}
	// The constraint removes exactly the conference/journal twin
	// confusions whose years differ by more than one.
	raw, _ := sys.MappingByName("Cache.PubSame")
	fmt.Printf("publication mapping: %d pairs before the constraint, %d after\n",
		raw.Len(), v2.Mapping.Len())
	fmt.Printf("quality after constraint: %s\n", moma.Compare(v2.Mapping, d.Perfect.PubDBLPACM))
}
