// Example serve: the online resolution subsystem end to end, in process.
//
// It builds a small synthetic world, registers a live resolver over the ACM
// publication set, starts the HTTP service on an ephemeral port, and then
// plays a client: resolve a DBLP title against ACM, stream a new arrival in
// (observing its same-mapping delta), remove it again, and read the
// service's health. Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	moma "repro"
	"repro/internal/serve"
	"repro/internal/sources"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- server side -----------------------------------------------------
	sys := moma.NewSystem()
	d := sources.Generate(sources.SmallConfig())
	if err := sys.LoadSource(d.ACM); err != nil {
		return err
	}
	resolver, err := sys.RegisterResolver("ACM.Publication", moma.LiveConfig{
		MinShared: 2,
		Threshold: 0.75,
		Columns: []moma.LiveColumn{
			// ACM titles live in the "name" attribute; queries send "title".
			{QueryAttr: "title", SetAttr: "name", Sim: moma.Trigram},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("resolver ready: %s\n", resolver)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	addr := ln.Addr().String()
	ln.Close() // moma-serve re-binds; a race here is fine for a demo
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- serve.New(sys).Run(ctx, addr) }()
	if err := waitHealthy("http://" + addr); err != nil {
		return err
	}
	fmt.Printf("serving on %s\n\n", addr)

	// --- client side -----------------------------------------------------
	base := "http://" + addr

	// 1. Resolve DBLP titles against the ACM set until one hits — most DBLP
	// publications have an ACM counterpart, some fall into the generator's
	// dirty gaps.
	var rr serve.ResolveResponse
	var query string
	var stop error
	d.DBLP.Pubs.Each(func(in *moma.Instance) bool {
		query = in.Attr("title")
		rr = serve.ResolveResponse{}
		if stop = postJSON(base+"/sets/ACM.Publication/resolve",
			serve.ResolveRequest{ID: string(in.ID), Attrs: map[string]string{"title": query}, Limit: 3}, &rr); stop != nil {
			return false
		}
		return len(rr.Matches) == 0
	})
	if stop != nil {
		return stop
	}
	fmt.Printf("resolve %q\n  -> %d matches in %dus\n", query, len(rr.Matches), rr.TookUS)
	for _, m := range rr.Matches {
		fmt.Printf("     %-12s sim %.3f\n", m.ID, m.Sim)
	}

	// 2. A new instance arrives — a near-duplicate of a live ACM record: it
	// is resolved against the live members and its correspondences land in
	// the repository mapping live.ACM.Publication.
	var dupTitle string
	d.ACM.Pubs.Each(func(in *moma.Instance) bool {
		dupTitle = in.Attr("name")
		return dupTitle == ""
	})
	var ar serve.AddInstanceResponse
	if err := postJSON(base+"/sets/ACM.Publication/instances",
		serve.AddInstanceRequest{ID: "arrival-1", Attrs: map[string]string{"name": dupTitle}}, &ar); err != nil {
		return err
	}
	fmt.Printf("\narrival %q (%q) matched %d live instances (delta in %q)\n",
		ar.ID, dupTitle, len(ar.Matches), ar.Mapping)

	// 3. Remove it again; the delta mapping forgets it.
	req, _ := http.NewRequest(http.MethodDelete, base+"/sets/ACM.Publication/instances/arrival-1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	fmt.Printf("removed arrival-1: HTTP %d\n", resp.StatusCode)

	// 4. Health.
	var hr serve.HealthResponse
	if err := getJSON(base+"/healthz", &hr); err != nil {
		return err
	}
	fmt.Printf("\nhealthz: %s, uptime %.1fs, %d live in ACM.Publication\n",
		hr.Status, hr.UptimeS, hr.Resolvers["ACM.Publication"].Live)

	// --- graceful shutdown ----------------------------------------------
	cancel()
	if err := <-done; err != nil {
		return err
	}
	fmt.Println("server shut down cleanly")
	return nil
}

func postJSON(url string, body, out any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// waitHealthy polls /healthz until the listener is up.
func waitHealthy(base string) error {
	for i := 0; i < 100; i++ {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server did not become healthy")
}
