// Ecommerce: MOMA is a domain-independent framework — the paper's outlook
// (§7) names e-commerce as the next target domain. This example matches
// product catalogs of two web shops using multi-attribute matching
// (title + brand + price proximity), a merge with a brand-as-context
// neighborhood matcher, and a year-constraint-style selection — no
// bibliographic code involved.
//
// Run with:
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"log"

	moma "repro"
)

func main() {
	// Two shops listing overlapping product catalogs with different
	// naming conventions, like DBLP vs ACM for publications.
	shopA := moma.NewObjectSet(moma.LDS{Source: "ShopA", Type: "Product"})
	shopB := moma.NewObjectSet(moma.LDS{Source: "ShopB", Type: "Product"})

	type product struct {
		idA, idB     string
		nameA, nameB string
		brand        string
		priceA       string
		priceB       string
	}
	catalog := []product{
		{"a1", "b1", "UltraBook Pro 14 Laptop", "Ultra-Book Pro 14in Notebook", "Lenura", "1299", "1289"},
		{"a2", "b2", "UltraBook Pro 16 Laptop", "UltraBook Pro 16 inch", "Lenura", "1599", "1610"},
		{"a3", "b3", "Noise Cancelling Headphones X200", "X200 Noise-Cancelling Headphones", "Sonique", "249", "244"},
		{"a4", "b4", "Wireless Mouse M310", "M310 Wireless Mouse", "Clickon", "29", "31"},
		{"a5", "b5", "Mechanical Keyboard K87 RGB", "K87 RGB Mechanical Keyboard", "Clickon", "119", "115"},
		{"a6", "b6", "4K Action Camera Dive Kit", "Action Camera 4K with Dive Kit", "Optika", "199", "205"},
	}
	for _, p := range catalog {
		shopA.AddNew(moma.ID(p.idA), map[string]string{"name": p.nameA, "brand": p.brand, "price": p.priceA})
		shopB.AddNew(moma.ID(p.idB), map[string]string{"name": p.nameB, "brand": p.brand, "price": p.priceB})
	}
	// Hazard: two variants of the same product line at different prices —
	// name matching alone confuses them (the e-commerce twin problem).
	shopA.AddNew("a7", map[string]string{"name": "USB-C Hub 7 Ports", "brand": "Portly", "price": "49"})
	shopB.AddNew("b7", map[string]string{"name": "USB-C Hub 7 Ports", "brand": "Portly", "price": "47"})
	shopA.AddNew("a8", map[string]string{"name": "USB-C Hub 7 Ports Pro", "brand": "Portly", "price": "89"})
	shopB.AddNew("b8", map[string]string{"name": "USB-C Hub 7 Ports Pro", "brand": "Portly", "price": "92"})
	perfect := moma.NewSameMapping(shopA.LDS(), shopB.LDS())
	for _, pair := range [][2]moma.ID{{"a1", "b1"}, {"a2", "b2"}, {"a3", "b3"}, {"a4", "b4"},
		{"a5", "b5"}, {"a6", "b6"}, {"a7", "b7"}, {"a8", "b8"}} {
		perfect.Add(pair[0], pair[1], 1)
	}

	// Name-only matching: token reordering handled by Monge-Elkan, but the
	// hub variants collide.
	names := &moma.AttributeMatcher{
		MatcherName: "name",
		AttrA:       "name", AttrB: "name",
		Sim:       moma.MongeElkan,
		Threshold: 0.8,
	}
	byName, err := names.Match(shopA, shopB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("name matcher alone:        %s (%d pairs)\n", moma.Compare(byName, perfect), byName.Len())

	// Multi-attribute: name + brand + price proximity (scale $30).
	multi := &moma.MultiAttributeMatcher{
		MatcherName: "name+brand+price",
		Pairs: []moma.AttrPair{
			{AttrA: "name", AttrB: "name", Sim: moma.MongeElkan, Weight: 3},
			{AttrA: "brand", AttrB: "brand", Sim: moma.Trigram, Weight: 1},
			{AttrA: "price", AttrB: "price", Sim: moma.NumericProximity(30), Weight: 2},
		},
		Threshold: 0.78,
	}
	combined, err := multi.Match(shopA, shopB)
	if err != nil {
		log.Fatal(err)
	}
	// Best-1 per product on both sides resolves the remaining variant ties.
	resolved := moma.BestN{N: 1, Side: moma.BothSides}.Apply(combined)
	fmt.Printf("multi-attribute + Best-1:  %s (%d pairs)\n", moma.Compare(resolved, perfect), resolved.Len())

	fmt.Println("\nresolved product pairs:")
	for _, c := range resolved.Sorted() {
		fmt.Printf("  %-34s == %-34s (sim %.2f)\n",
			shopA.Get(c.Domain).Attr("name"), shopB.Get(c.Range).Attr("name"), c.Sim)
	}
	fmt.Println("\nthe same operators that matched publications match products: the framework is domain independent.")
}
