// Dedup: duplicate detection within a single source (§4.3 / Table 9). The
// paper's script — co-author neighborhood matching merged with name
// similarity — runs verbatim through the iFuice-style interpreter against
// the synthetic DBLP source, and the ranked candidates are checked against
// the generator's known duplicate authors.
//
// Run with:
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"
	"sort"

	moma "repro"
)

// The paper's §4.3 listing, verbatim (DBLP.AuthorAuthor is the identity
// same-mapping of DBLP authors).
const dedupScript = `
$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
$NameSim = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]")
$Merged = merge ($CoAuthSim, $NameSim, Average)
$Result = select ($Merged, "[domain.id]<>[range.id]")
RETURN $Result
`

func main() {
	d := moma.GenerateDataset(moma.SmallConfig())
	fmt.Printf("DBLP: %d author instances, %d known duplicate pairs\n\n",
		d.DBLP.Authors.Len(), d.Perfect.AuthorDupsDBLP.Len()/2)

	sys := moma.NewSystem()
	if err := sys.LoadSource(d.DBLP); err != nil {
		log.Fatal(err)
	}
	if err := sys.AddMapping("DBLP.AuthorAuthor", moma.IdentityOf(d.DBLP.Authors)); err != nil {
		log.Fatal(err)
	}

	v, err := sys.RunScript(dedupScript)
	if err != nil {
		log.Fatal(err)
	}
	result := v.Mapping

	// Rank undirected candidate pairs that carry both co-author and name
	// evidence, exactly like the paper's Table 9.
	coAuth, _ := sys.MappingByName("Cache.CoAuthSim")
	nameSim, _ := sys.MappingByName("Cache.NameSim")
	type cand struct {
		a, b   moma.ID
		merged float64
	}
	seen := map[[2]moma.ID]bool{}
	var cands []cand
	result.Each(func(c moma.Correspondence) {
		if !coAuth.Has(c.Domain, c.Range) || !nameSim.Has(c.Domain, c.Range) {
			return
		}
		key := [2]moma.ID{c.Domain, c.Range}
		if key[1] < key[0] {
			key[0], key[1] = key[1], key[0]
		}
		if seen[key] {
			return
		}
		seen[key] = true
		cands = append(cands, cand{a: c.Domain, b: c.Range, merged: c.Sim})
	})
	sort.Slice(cands, func(i, j int) bool { return cands[i].merged > cands[j].merged })
	if len(cands) > 8 {
		cands = cands[:8]
	}

	fmt.Println("top duplicate candidates (co-author overlap averaged with name similarity):")
	fmt.Printf("%-22s %-22s %-9s %-7s %-6s %s\n", "Author", "Author'", "Co-Auth", "Name", "Merge", "true dup?")
	for _, c := range cands {
		co, _ := coAuth.Sim(c.a, c.b)
		nm, _ := nameSim.Sim(c.a, c.b)
		fmt.Printf("%-22s %-22s %8.1f%% %5.1f%% %5.1f%% %v\n",
			d.DBLP.Authors.Get(c.a).Attr("name"),
			d.DBLP.Authors.Get(c.b).Attr("name"),
			100*co, 100*nm, 100*c.merged,
			d.Perfect.AuthorDupsDBLP.Has(c.a, c.b))
	}

	// The hard cases at the bottom of the list mirror the paper's
	// "Catalina Fan vs Catalina Wei" example: same co-authors, similar
	// names, and genuinely undecidable from the data alone.
	fmt.Println("\ncandidates sharing co-authors AND a similar name are flagged for review —")
	fmt.Println("exactly how the paper surfaced its Trigoni / Zarkesh / Fan-Wei cases.")
}
