// Fusion: what the same-mappings are for (§1, §4.1.2). The example matches
// the synthetic DBLP source against ACM and Google Scholar, then uses the
// resulting same-mappings to fuse information: ACM citation counts and GS
// citation totals are attached to DBLP publications, and the GS-ACM
// mapping is derived for free by composing via the DBLP hub (Figure 8).
//
// Run with:
//
//	go run ./examples/fusion
package main

import (
	"fmt"
	"log"

	moma "repro"
)

func main() {
	d := moma.GenerateDataset(moma.SmallConfig())

	// Google Scholar is query-only: collect a working set by sending one
	// title query per DBLP publication (§5.1).
	gsQuery := moma.NewGSQuery(d.GS)
	gsWork := gsQuery.CollectFor(d.DBLP.Pubs, "title", 10)
	fmt.Printf("collected %d GS entries via %d title queries (GS holds %d documents)\n\n",
		gsWork.Len(), d.DBLP.Pubs.Len(), d.GS.Pubs.Len())

	// Same-mappings: DBLP-ACM and DBLP-GS via title matching.
	toACM, err := (&moma.AttributeMatcher{
		AttrA: "title", AttrB: "name", Sim: moma.Trigram, Threshold: 0.82,
		Blocker: moma.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}).Match(d.DBLP.Pubs, d.ACM.Pubs)
	if err != nil {
		log.Fatal(err)
	}
	toGS, err := (&moma.AttributeMatcher{
		AttrA: "title", AttrB: "title", Sim: moma.Trigram, Threshold: 0.75,
		Blocker: moma.TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2},
	}).Match(d.DBLP.Pubs, gsWork)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DBLP-ACM: %s\nDBLP-GS:  %s\n\n",
		moma.Compare(toACM, d.Perfect.PubDBLPACM),
		moma.Compare(toGS, d.Perfect.PubDBLPGS.Filter(func(c moma.Correspondence) bool {
			return gsWork.Has(c.Range)
		})))

	// Fuse: attach ACM citations (first value) and the SUM of the GS
	// duplicate entries' citations to each DBLP publication.
	fuser := moma.NewFuser(d.DBLP.Pubs)
	if err := fuser.Add(toACM, d.ACM.Pubs,
		moma.FuseRule{FromAttr: "citations", ToAttr: "acm_citations", Agg: moma.FirstValue, MinSim: 0.8}); err != nil {
		log.Fatal(err)
	}
	if err := fuser.Add(toGS, gsWork,
		moma.FuseRule{FromAttr: "citations", ToAttr: "gs_citations", Agg: moma.SumNumeric, MinSim: 0.75}); err != nil {
		log.Fatal(err)
	}
	fused := fuser.Run()

	shown := 0
	fused.Each(func(in *moma.Instance) bool {
		if in.HasAttr("acm_citations") && in.HasAttr("gs_citations") {
			fmt.Printf("  %-38.38s  ACM: %3s  GS(sum over duplicates): %4s\n",
				in.Attr("title"), in.Attr("acm_citations"), in.Attr("gs_citations"))
			shown++
		}
		return shown < 5
	})

	// Coverage report: how many DBLP publications gained each attribute.
	cov := map[string]int{}
	for attr := range map[string]bool{"acm_citations": true, "gs_citations": true} {
		fused.Each(func(in *moma.Instance) bool {
			if in.HasAttr(attr) {
				cov[attr]++
			}
			return true
		})
	}
	fmt.Printf("\ncoverage: %d/%d pubs gained ACM citations, %d/%d gained GS citations\n",
		cov["acm_citations"], fused.Len(), cov["gs_citations"], fused.Len())

	// The hub payoff (Figure 8): GS-ACM emerges by composing via DBLP —
	// no direct GS-ACM matching needed.
	gsACM, err := moma.Compose(toGS.Inverse(), toACM, moma.MinCombiner, moma.AggMax)
	if err != nil {
		log.Fatal(err)
	}
	perfect := d.Perfect.PubGSACM.Filter(func(c moma.Correspondence) bool { return gsWork.Has(c.Domain) })
	fmt.Printf("GS-ACM composed via the DBLP hub: %s\n", moma.Compare(gsACM, perfect))
}
