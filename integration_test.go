package moma

// End-to-end integration tests across all subsystems: generate the
// synthetic world, load it into a persistent System, run script and
// workflow strategies, fuse the results, and restart the system to verify
// everything survives the write-ahead log.

import (
	"strings"
	"testing"
)

func TestIntegrationFullPipeline(t *testing.T) {
	dir := t.TempDir()
	d := GenerateDataset(SmallConfig())

	sys, err := OpenSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []*DataSource{d.DBLP, d.ACM} {
		if err := sys.LoadSource(src); err != nil {
			t.Fatal(err)
		}
	}

	// Stage 1: publication matching via a workflow (title + year merged).
	wf := NewWorkflow("pub-match").AddStep(MergeStep("combine",
		Combiner{Kind: KindWeighted, Weights: []float64{3, 2}, MissingAsZero: true},
		Threshold{T: 0.75},
		&AttributeMatcher{MatcherName: "title", AttrA: "title", AttrB: "name", Sim: Trigram, Threshold: 0.82,
			Blocker: TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2}},
		&AttributeMatcher{MatcherName: "year", AttrA: "year", AttrB: "year", Sim: YearExact, Threshold: 1,
			Blocker: TokenBlocking{AttrA: "year", AttrB: "year", MinShared: 1}},
	)).Store("DBLP-ACM.PubSame")
	pubSame, err := sys.RunWorkflow(wf, "DBLP.Publication", "ACM.Publication")
	if err != nil {
		t.Fatal(err)
	}
	if r := Compare(pubSame, d.Perfect.PubDBLPACM); r.F1 < 0.9 {
		t.Errorf("pipeline stage 1 F = %v, want >= 0.9", r.F1)
	}

	// Stage 2: venue matching via a script using the stored mapping.
	v, err := sys.RunScript(`
$VenueNh = nhMatch (DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue)
$VenueSame = select ($VenueNh, Best, 1)
RETURN $VenueSame
`)
	if err != nil {
		t.Fatal(err)
	}
	if r := Compare(v.Mapping, d.Perfect.VenueDBLPACM); r.F1 < 0.85 {
		t.Errorf("pipeline stage 2 F = %v, want >= 0.85", r.F1)
	}
	if err := sys.AddMapping("DBLP-ACM.VenueSame", v.Mapping); err != nil {
		t.Fatal(err)
	}

	// Stage 3: fuse ACM citations onto DBLP publications over the stored
	// publication mapping.
	fuser := NewFuser(d.DBLP.Pubs)
	stored, _ := sys.MappingByName("DBLP-ACM.PubSame")
	if err := fuser.Add(stored, d.ACM.Pubs,
		FuseRule{FromAttr: "citations", ToAttr: "citations", Agg: FirstValue, MinSim: 0.75}); err != nil {
		t.Fatal(err)
	}
	fused := fuser.Run()
	withCitations := 0
	fused.Each(func(in *Instance) bool {
		if in.HasAttr("citations") {
			withCitations++
		}
		return true
	})
	if float64(withCitations) < 0.8*float64(d.ACM.Pubs.Len()) {
		t.Errorf("only %d/%d publications gained citations", withCitations, d.ACM.Pubs.Len())
	}

	// Stage 4: restart and verify both stored mappings survive the WAL.
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenSystem(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for _, name := range []string{"DBLP-ACM.PubSame", "DBLP-ACM.VenueSame"} {
		m, ok := re.MappingByName(name)
		if !ok || m.Len() == 0 {
			t.Errorf("mapping %s lost across restart", name)
		}
	}
	recovered, _ := re.MappingByName("DBLP-ACM.PubSame")
	if !recovered.Equal(pubSame, 1e-12) {
		t.Error("recovered mapping differs from the stored one")
	}
}

func TestIntegrationCSVInterchange(t *testing.T) {
	// moma-gen's CSV format feeds cmd/moma; verify the same round trip in
	// process: export a mapping and a set, re-import, and re-evaluate.
	d := GenerateDataset(SmallConfig())
	m := &AttributeMatcher{AttrA: "title", AttrB: "name", Sim: Trigram, Threshold: 0.82,
		Blocker: TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2}}
	same, err := m.Match(d.DBLP.Pubs, d.ACM.Pubs)
	if err != nil {
		t.Fatal(err)
	}
	var mapBuf, setBuf strings.Builder
	if err := WriteMappingCSV(&mapBuf, same); err != nil {
		t.Fatal(err)
	}
	if err := WriteObjectSetCSV(&setBuf, d.DBLP.Pubs); err != nil {
		t.Fatal(err)
	}
	reMap, err := ReadMappingCSV(strings.NewReader(mapBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	reSet, err := ReadObjectSetCSV(strings.NewReader(setBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reMap.Equal(same, 1e-12) {
		t.Error("mapping CSV round trip changed the mapping")
	}
	if reSet.Len() != d.DBLP.Pubs.Len() {
		t.Error("object set CSV round trip changed the set")
	}
	before := Compare(same, d.Perfect.PubDBLPACM)
	after := Compare(reMap, d.Perfect.PubDBLPACM)
	if before != after {
		t.Errorf("evaluation changed across CSV round trip: %v vs %v", before, after)
	}
}
