// Command moma-vet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages and exits non-zero if any invariant
// is violated. It is a standalone multichecker rather than a `go vet
// -vettool` plugin: the vettool protocol requires the x/tools unitchecker
// machinery (serialized facts, objectpath), which the dependency-free
// framework deliberately omits. CI builds this binary and runs it right
// after `go vet`.
//
// Usage:
//
//	moma-vet [-checks mapiter,dictgrowth,columns,guardedby] [packages]
//
// Packages default to ./... resolved in the current directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/columns"
	"repro/internal/analysis/dictgrowth"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/mapiter"
)

var all = []*analysis.Analyzer{
	mapiter.Analyzer,
	dictgrowth.Analyzer,
	columns.Analyzer,
	guardedby.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: moma-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moma-vet:", err)
		os.Exit(2)
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "moma-vet:", err)
		os.Exit(2)
	}
	fset, pkgs, err := analysis.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moma-vet:", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "moma-vet:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "moma-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
