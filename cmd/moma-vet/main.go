// Command moma-vet runs the repository's invariant analyzers (see
// internal/analysis) over Go packages and exits non-zero if any invariant
// is violated. It is a standalone multichecker rather than a `go vet
// -vettool` plugin: the vettool protocol requires the x/tools unitchecker
// machinery (serialized facts, objectpath), which the dependency-free
// framework deliberately omits. CI builds this binary and runs it right
// after `go vet`.
//
// Usage:
//
//	moma-vet [-checks mapiter,dictgrowth,columns,guardedby,noalloc,workerpool,errsink] [-json] [packages]
//	moma-vet -suppressions [packages]
//
// Packages default to ./... resolved in the current directory. -json emits
// one JSON object per finding (fields in fixed order: file, line, col,
// analyzer, message) so CI can pipe the output through a GitHub Actions
// problem matcher and annotate PR diffs inline. -suppressions lists every
// //moma:*-ok and //moma:cold directive in the module — including test
// files — with file:line and justification, so suppression debt is
// auditable in review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/columns"
	"repro/internal/analysis/dictgrowth"
	"repro/internal/analysis/errsink"
	"repro/internal/analysis/guardedby"
	"repro/internal/analysis/mapiter"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/workerpool"
)

var all = []*analysis.Analyzer{
	mapiter.Analyzer,
	dictgrowth.Analyzer,
	columns.Analyzer,
	guardedby.Analyzer,
	noalloc.Analyzer,
	workerpool.Analyzer,
	errsink.Analyzer,
}

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit findings as JSON lines (file, line, col, analyzer, message)")
	suppressions := flag.Bool("suppressions", false, "list every suppression directive in the module and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: moma-vet [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	if *suppressions {
		supps, err := analysis.ScanModuleSuppressions(dir, flag.Args()...)
		if err != nil {
			fatal(err)
		}
		bare := 0
		for _, s := range supps {
			fmt.Println(s)
			if s.Justification == "" {
				bare++
			}
		}
		fmt.Fprintf(os.Stderr, "moma-vet: %d suppression(s)", len(supps))
		if bare > 0 {
			fmt.Fprintf(os.Stderr, ", %d without justification", bare)
		}
		fmt.Fprintln(os.Stderr)
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fatal(err)
	}
	fset, pkgs, err := analysis.Load(dir, flag.Args()...)
	if err != nil {
		fatal(err)
	}
	findings, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, f := range findings {
		if *jsonOut {
			printJSON(f)
		} else {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "moma-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding fixes the field order the CI problem matcher's regex relies
// on (see .github/moma-vet-matcher.json): file, line, col, analyzer,
// message.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printJSON(f analysis.Finding) {
	b, err := json.Marshal(jsonFinding{
		File:     f.Pos.Filename,
		Line:     f.Pos.Line,
		Col:      f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(b))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moma-vet:", err)
	os.Exit(2)
}

// selectAnalyzers resolves the -checks flag against the registry.
func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}
