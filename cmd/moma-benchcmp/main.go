// moma-benchcmp compares two `go test -bench` output files and fails
// loudly on regressions — a dependency-free benchstat substitute for CI.
//
// Usage:
//
//	moma-benchcmp -old base.txt -new pr.txt [-threshold 0.20]
//
// Both files may contain multiple runs of each benchmark (-count N); the
// per-benchmark median is compared. The exit status is 1 when any
// benchmark present in both files regressed by more than the threshold on
// the gating metric (ns/op by default); B/op and allocs/op changes are
// reported but only annotate. Benchmarks present in one file only are
// listed and skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's metrics.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasBytes    bool
}

// parseFile extracts benchmark samples keyed by benchmark name (CPU suffix
// stripped, so Benchmark/sub-8 and Benchmark/sub-4 compare).
func parseFile(path string) (map[string][]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //moma:errsink-ok read-only fd, contents already parsed
	return parse(f)
}

// parse reads `go test -bench` output: lines that don't look like benchmark
// results (headers, PASS/ok trailers, garbage) are skipped silently.
func parse(r io.Reader) (map[string][]sample, []string, error) {
	out := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripCPUSuffix(fields[0])
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				ok = true
			case "B/op":
				s.bytesPerOp = v
				s.hasBytes = true
			case "allocs/op":
				s.allocsPerOp = v
			}
		}
		if !ok {
			continue
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = append(out[name], s)
	}
	return out, order, sc.Err()
}

// stripCPUSuffix removes the trailing -N GOMAXPROCS marker.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func medians(samples []sample, pick func(sample) float64) float64 {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = pick(s)
	}
	return median(vals)
}

func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// compare writes the comparison table to w and reports whether any
// benchmark present in both runs regressed past threshold on median ns/op.
// Benchmarks present on one side only are listed and never gate.
func compare(w io.Writer, oldRuns map[string][]sample, oldOrder []string, newRuns map[string][]sample, newOrder []string, threshold float64, oldLabel string) bool {
	fmt.Fprintf(w, "%-52s %14s %14s %8s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "ΔB/op")
	regressed := false
	for _, name := range oldOrder {
		news, ok := newRuns[name]
		if !ok {
			fmt.Fprintf(w, "%-52s only in %s, skipped\n", name, oldLabel)
			continue
		}
		olds := oldRuns[name]
		oldNS := medians(olds, func(s sample) float64 { return s.nsPerOp })
		newNS := medians(news, func(s sample) float64 { return s.nsPerOp })
		dNS := pctDelta(oldNS, newNS)
		bytesNote := "-"
		if olds[0].hasBytes && news[0].hasBytes {
			oldB := medians(olds, func(s sample) float64 { return s.bytesPerOp })
			newB := medians(news, func(s sample) float64 { return s.bytesPerOp })
			bytesNote = fmt.Sprintf("%+.1f%%", pctDelta(oldB, newB))
		}
		mark := ""
		if dNS > threshold*100 {
			mark = "  <-- REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+7.1f%% %10s%s\n", name, oldNS, newNS, dNS, bytesNote, mark)
	}
	for _, name := range newOrder {
		if _, ok := oldRuns[name]; !ok {
			fmt.Fprintf(w, "%-52s new benchmark, no baseline\n", name)
		}
	}
	return regressed
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "candidate benchmark output")
	threshold := flag.Float64("threshold", 0.20, "relative ns/op regression that fails the compare")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: moma-benchcmp -old base.txt -new pr.txt [-threshold 0.20]")
		os.Exit(2)
	}
	oldRuns, oldOrder, err := parseFile(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moma-benchcmp: %v\n", err)
		os.Exit(2)
	}
	newRuns, newOrder, err := parseFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moma-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if compare(os.Stdout, oldRuns, oldOrder, newRuns, newOrder, *threshold, *oldPath) {
		fmt.Printf("\nFAIL: at least one benchmark regressed >%.0f%% on ns/op\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nok: no benchmark regressed past the threshold")
}
