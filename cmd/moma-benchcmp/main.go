// moma-benchcmp compares two `go test -bench` output files and fails
// loudly on regressions — a dependency-free benchstat substitute for CI.
//
// Usage:
//
//	moma-benchcmp -old base.txt -new pr.txt [-threshold 0.20] [-alloc-floor 0] [-split-cpu]
//
// Both files may contain multiple runs of each benchmark (-count N); the
// per-benchmark median is compared. By default the trailing -N GOMAXPROCS
// marker is stripped, so runs recorded at different (single) core counts
// still line up; -split-cpu keeps the marker, so a `-cpu 1,8` run gates
// each core count as its own column — the single-core variant catching
// parallelization overhead and the multi-core variant catching lost
// speedup. The exit status is 1 when any
// benchmark present in both files regressed past the threshold on ns/op —
// or, when both files carry -benchmem columns, on B/op or allocs/op.
// Each metric gates on the same rule: the increase must exceed both the
// metric's absolute floor and the relative threshold share of the old
// value. ns/op and B/op have a zero floor; allocs/op takes -alloc-floor,
// and the relative arm keeps counting-noise on alloc-heavy benchmarks from
// tripping the gate while a floor of zero still fails the hot-path case
// that matters most: 0 allocs/op becoming 1. Benchmarks present in one
// file only are listed and skipped.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark line's metrics.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasBytes    bool
	hasAllocs   bool
}

// parseFile extracts benchmark samples keyed by benchmark name. The CPU
// suffix is stripped unless splitCPU is set, so by default
// Benchmark/sub-8 and Benchmark/sub-4 compare; with splitCPU each
// GOMAXPROCS variant keys separately.
func parseFile(path string, splitCPU bool) (map[string][]sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() //moma:errsink-ok read-only fd, contents already parsed
	return parse(f, splitCPU)
}

// parse reads `go test -bench` output: lines that don't look like benchmark
// results (headers, PASS/ok trailers, garbage) are skipped silently.
func parse(r io.Reader, splitCPU bool) (map[string][]sample, []string, error) {
	out := make(map[string][]sample)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if !splitCPU {
			name = stripCPUSuffix(name)
		}
		var s sample
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				ok = true
			case "B/op":
				s.bytesPerOp = v
				s.hasBytes = true
			case "allocs/op":
				s.allocsPerOp = v
				s.hasAllocs = true
			}
		}
		if !ok {
			continue
		}
		if _, seen := out[name]; !seen {
			order = append(order, name)
		}
		out[name] = append(out[name], s)
	}
	return out, order, sc.Err()
}

// stripCPUSuffix removes the trailing -N GOMAXPROCS marker.
func stripCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

func median(vals []float64) float64 {
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

func medians(samples []sample, pick func(sample) float64) float64 {
	vals := make([]float64, len(samples))
	for i, s := range samples {
		vals[i] = pick(s)
	}
	return median(vals)
}

func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV - oldV) / oldV * 100
}

// gates configures what counts as a regression.
type gates struct {
	// threshold is the relative increase every metric tolerates.
	threshold float64
	// allocFloor is the absolute allocs/op increase always tolerated; at the
	// default 0, any alloc increase past the relative threshold gates — in
	// particular 0 -> 1 on a zero-alloc benchmark.
	allocFloor float64
}

// exceeded reports whether newV regressed past the gate relative to oldV:
// the increase must exceed both the absolute floor and the relative
// threshold share of the old value.
func (g gates) exceeded(oldV, newV, floor float64) bool {
	return newV-oldV > max(floor, g.threshold*oldV)
}

// compare writes the comparison table to w and reports whether any
// benchmark present in both runs regressed past the gates on median ns/op —
// or, when both runs carry -benchmem columns, on B/op or allocs/op.
// Benchmarks present on one side only are listed and never gate.
func compare(w io.Writer, oldRuns map[string][]sample, oldOrder []string, newRuns map[string][]sample, newOrder []string, g gates, oldLabel string) bool {
	fmt.Fprintf(w, "%-52s %14s %14s %8s %10s %10s\n", "benchmark", "old ns/op", "new ns/op", "Δns", "ΔB/op", "Δallocs")
	regressed := false
	for _, name := range oldOrder {
		news, ok := newRuns[name]
		if !ok {
			fmt.Fprintf(w, "%-52s only in %s, skipped\n", name, oldLabel)
			continue
		}
		olds := oldRuns[name]
		oldNS := medians(olds, func(s sample) float64 { return s.nsPerOp })
		newNS := medians(news, func(s sample) float64 { return s.nsPerOp })
		dNS := pctDelta(oldNS, newNS)
		var failed []string
		if g.exceeded(oldNS, newNS, 0) {
			failed = append(failed, "ns/op")
		}
		bytesNote, allocsNote := "-", "-"
		if olds[0].hasBytes && news[0].hasBytes {
			oldB := medians(olds, func(s sample) float64 { return s.bytesPerOp })
			newB := medians(news, func(s sample) float64 { return s.bytesPerOp })
			bytesNote = fmt.Sprintf("%+.1f%%", pctDelta(oldB, newB))
			if g.exceeded(oldB, newB, 0) {
				failed = append(failed, "B/op")
			}
		}
		if olds[0].hasAllocs && news[0].hasAllocs {
			oldA := medians(olds, func(s sample) float64 { return s.allocsPerOp })
			newA := medians(news, func(s sample) float64 { return s.allocsPerOp })
			allocsNote = fmt.Sprintf("%+.0f", newA-oldA)
			if g.exceeded(oldA, newA, g.allocFloor) {
				failed = append(failed, "allocs/op")
			}
		}
		mark := ""
		if len(failed) > 0 {
			mark = "  <-- REGRESSION(" + strings.Join(failed, ", ") + ")"
			regressed = true
		}
		fmt.Fprintf(w, "%-52s %14.0f %14.0f %+7.1f%% %10s %10s%s\n", name, oldNS, newNS, dNS, bytesNote, allocsNote, mark)
	}
	for _, name := range newOrder {
		if _, ok := oldRuns[name]; !ok {
			fmt.Fprintf(w, "%-52s new benchmark, no baseline\n", name)
		}
	}
	return regressed
}

func main() {
	oldPath := flag.String("old", "", "baseline benchmark output")
	newPath := flag.String("new", "", "candidate benchmark output")
	threshold := flag.Float64("threshold", 0.20, "relative regression on ns/op, B/op or allocs/op that fails the compare")
	allocFloor := flag.Float64("alloc-floor", 0, "absolute allocs/op increase always tolerated (0 fails a zero-alloc benchmark gaining its first alloc)")
	splitCPU := flag.Bool("split-cpu", false, "keep the -N GOMAXPROCS suffix so each -cpu variant gates separately")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: moma-benchcmp -old base.txt -new pr.txt [-threshold 0.20] [-alloc-floor 0] [-split-cpu]")
		os.Exit(2)
	}
	oldRuns, oldOrder, err := parseFile(*oldPath, *splitCPU)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moma-benchcmp: %v\n", err)
		os.Exit(2)
	}
	newRuns, newOrder, err := parseFile(*newPath, *splitCPU)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moma-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if compare(os.Stdout, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: *threshold, allocFloor: *allocFloor}, *oldPath) {
		fmt.Printf("\nFAIL: at least one benchmark regressed >%.0f%% (ns/op, B/op or allocs/op)\n", *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nok: no benchmark regressed past the threshold")
}
