package main

import (
	"strings"
	"testing"
)

func TestParseSkipsMalformedLines(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro/internal/mapping",
		"BenchmarkCompose-8   1000   125.5 ns/op   64 B/op   2 allocs/op",
		"BenchmarkCompose-8   1000   banana ns/op", // non-numeric value
		"BenchmarkShort-8 1000",                    // too few fields
		"NotABenchmark-8   1000   10 ns/op",        // wrong prefix
		"BenchmarkNoUnit-8   1000   42 furlongs",   // no ns/op metric
		"PASS",
		"ok  	repro/internal/mapping	1.2s",
		"",
		"garbage line with words only",
	}, "\n")
	runs, order, err := parse(strings.NewReader(input), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(order) != 1 || order[0] != "BenchmarkCompose" {
		t.Fatalf("order = %v, want [BenchmarkCompose]", order)
	}
	samples := runs["BenchmarkCompose"]
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (malformed duplicate must be dropped)", len(samples))
	}
	s := samples[0]
	if s.nsPerOp != 125.5 || !s.hasBytes || s.bytesPerOp != 64 || s.allocsPerOp != 2 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestParseMergesCPUSuffixes(t *testing.T) {
	input := "BenchmarkX-8 10 100 ns/op\nBenchmarkX-4 10 200 ns/op\nBenchmarkX 10 300 ns/op\n"
	runs, order, err := parse(strings.NewReader(input), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v, want one merged name", order)
	}
	if got := len(runs["BenchmarkX"]); got != 3 {
		t.Fatalf("got %d samples under BenchmarkX, want 3", got)
	}
}

func TestParseSplitCPUKeepsSuffixes(t *testing.T) {
	input := "BenchmarkX-8 10 100 ns/op\nBenchmarkX-1 10 200 ns/op\nBenchmarkX-8 10 110 ns/op\n"
	runs, order, err := parse(strings.NewReader(input), true)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(order) != 2 || order[0] != "BenchmarkX-8" || order[1] != "BenchmarkX-1" {
		t.Fatalf("order = %v, want [BenchmarkX-8 BenchmarkX-1]", order)
	}
	if len(runs["BenchmarkX-8"]) != 2 || len(runs["BenchmarkX-1"]) != 1 {
		t.Fatalf("runs split wrong: %d under -8, %d under -1", len(runs["BenchmarkX-8"]), len(runs["BenchmarkX-1"]))
	}
}

func TestCompareSplitCPUGatesOneVariant(t *testing.T) {
	// A change that speeds up the 8-core variant but slows the single-core
	// one must still gate: merged names would average the regression away.
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-1 10 100 ns/op\nBenchmarkA-8 10 40 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-1 10 130 ns/op\nBenchmarkA-8 10 10 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("merged names hide the single-core regression, must pass; output:\n%s", out.String())
	}
	oldRuns, oldOrder = mustParseSplit(t, "BenchmarkA-1 10 100 ns/op\nBenchmarkA-8 10 40 ns/op\n")
	newRuns, newOrder = mustParseSplit(t, "BenchmarkA-1 10 130 ns/op\nBenchmarkA-8 10 10 ns/op\n")
	out.Reset()
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("-split-cpu must flag the single-core regression; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkA-1") || !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("split-cpu output lacks the per-variant regression:\n%s", out.String())
	}
}

// mustParseSplit is mustParse with -split-cpu semantics.
func mustParseSplit(t *testing.T, s string) (map[string][]sample, []string) {
	t.Helper()
	runs, order, err := parse(strings.NewReader(s), true)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return runs, order
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/sub-2":    "BenchmarkX/sub",
		"BenchmarkTop-k":      "BenchmarkTop-k", // non-numeric suffix stays
		"Benchmark-5x/case-4": "Benchmark-5x/case",
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianOddEvenEmpty(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v, want 0", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

// mustParse is a test helper over parse.
func mustParse(t *testing.T, s string) (map[string][]sample, []string) {
	t.Helper()
	runs, order, err := parse(strings.NewReader(s), false)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return runs, order
}

func TestCompareFlagsRegression(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 110 ns/op\nBenchmarkA-8 10 90 ns/op\nBenchmarkB-8 10 50 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 300 ns/op\nBenchmarkB-8 10 51 ns/op\n")
	var out strings.Builder
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("3x ns/op increase not flagged as regression; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 115 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("+15%% under a 20%% threshold must pass; output:\n%s", out.String())
	}
}

func TestCompareUsesMedianNotMean(t *testing.T) {
	// Median old = 100; one wild outlier must not drag the comparison.
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 100000 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 110 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("median-based compare must ignore the outlier; output:\n%s", out.String())
	}
}

func TestCompareMissingBenchmarksNeverGate(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkOldOnly-8 10 100 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkNewOnly-8 10 999999 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("disjoint benchmark sets must not regress; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "only in base.txt, skipped") {
		t.Errorf("missing-in-new benchmark not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new benchmark, no baseline") {
		t.Errorf("missing-in-old benchmark not reported:\n%s", out.String())
	}
}

func TestCompareEmptyInputs(t *testing.T) {
	var out strings.Builder
	if compare(&out, map[string][]sample{}, nil, map[string][]sample{}, nil, gates{threshold: 0.20}, "base.txt") {
		t.Fatal("empty inputs must not regress")
	}
}

func TestCompareGatesZeroToOneAlloc(t *testing.T) {
	// The case the alloc gate exists for: a zero-alloc hot path gaining its
	// first allocation. ns/op and B/op are flat; only allocs/op moves.
	oldRuns, oldOrder := mustParse(t, "BenchmarkHot-8 10 100 ns/op 0 B/op 0 allocs/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkHot-8 10 100 ns/op 8 B/op 1 allocs/op\n")
	var out strings.Builder
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("0 -> 1 allocs/op must gate at the default floor; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "allocs/op") {
		t.Errorf("regression marker does not name allocs/op:\n%s", out.String())
	}
}

func TestCompareToleratesAllocCountingNoise(t *testing.T) {
	// An alloc-heavy benchmark drifting by a handful of allocations is
	// noise under the relative threshold: 9000 -> 9010 is +0.1%.
	oldRuns, oldOrder := mustParse(t, "BenchmarkBulk-8 10 100 ns/op 1000 B/op 9000 allocs/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkBulk-8 10 100 ns/op 1000 B/op 9010 allocs/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("+10 allocs on a 9000-alloc benchmark must pass; output:\n%s", out.String())
	}
}

func TestCompareAllocFloorToleratesSmallAbsoluteIncrease(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkHot-8 10 100 ns/op 0 B/op 0 allocs/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkHot-8 10 100 ns/op 0 B/op 1 allocs/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20, allocFloor: 1}, "base.txt") {
		t.Fatalf("0 -> 1 allocs/op within -alloc-floor 1 must pass; output:\n%s", out.String())
	}
	newRuns, newOrder = mustParse(t, "BenchmarkHot-8 10 100 ns/op 0 B/op 2 allocs/op\n")
	out.Reset()
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20, allocFloor: 1}, "base.txt") {
		t.Fatalf("0 -> 2 allocs/op past -alloc-floor 1 must gate; output:\n%s", out.String())
	}
}

func TestCompareGatesBytesPerOp(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op 100 B/op 2 allocs/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op 200 B/op 2 allocs/op\n")
	var out strings.Builder
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("2x B/op must gate; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "B/op") {
		t.Errorf("regression marker does not name B/op:\n%s", out.String())
	}
}

func TestCompareNoBenchmemColumnsGatesOnlyNs(t *testing.T) {
	// Files without -benchmem columns keep the pre-benchmem behavior:
	// only ns/op gates, and missing memory columns are annotated "-".
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 110 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, gates{threshold: 0.20}, "base.txt") {
		t.Fatalf("+10%% ns/op with no memory columns must pass; output:\n%s", out.String())
	}
}
