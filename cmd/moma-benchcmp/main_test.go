package main

import (
	"strings"
	"testing"
)

func TestParseSkipsMalformedLines(t *testing.T) {
	input := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: repro/internal/mapping",
		"BenchmarkCompose-8   1000   125.5 ns/op   64 B/op   2 allocs/op",
		"BenchmarkCompose-8   1000   banana ns/op", // non-numeric value
		"BenchmarkShort-8 1000",                    // too few fields
		"NotABenchmark-8   1000   10 ns/op",        // wrong prefix
		"BenchmarkNoUnit-8   1000   42 furlongs",   // no ns/op metric
		"PASS",
		"ok  	repro/internal/mapping	1.2s",
		"",
		"garbage line with words only",
	}, "\n")
	runs, order, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(order) != 1 || order[0] != "BenchmarkCompose" {
		t.Fatalf("order = %v, want [BenchmarkCompose]", order)
	}
	samples := runs["BenchmarkCompose"]
	if len(samples) != 1 {
		t.Fatalf("got %d samples, want 1 (malformed duplicate must be dropped)", len(samples))
	}
	s := samples[0]
	if s.nsPerOp != 125.5 || !s.hasBytes || s.bytesPerOp != 64 || s.allocsPerOp != 2 {
		t.Fatalf("sample = %+v", s)
	}
}

func TestParseMergesCPUSuffixes(t *testing.T) {
	input := "BenchmarkX-8 10 100 ns/op\nBenchmarkX-4 10 200 ns/op\nBenchmarkX 10 300 ns/op\n"
	runs, order, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(order) != 1 {
		t.Fatalf("order = %v, want one merged name", order)
	}
	if got := len(runs["BenchmarkX"]); got != 3 {
		t.Fatalf("got %d samples under BenchmarkX, want 3", got)
	}
}

func TestStripCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-8":        "BenchmarkX",
		"BenchmarkX-128":      "BenchmarkX",
		"BenchmarkX":          "BenchmarkX",
		"BenchmarkX/sub-2":    "BenchmarkX/sub",
		"BenchmarkTop-k":      "BenchmarkTop-k", // non-numeric suffix stays
		"Benchmark-5x/case-4": "Benchmark-5x/case",
	}
	for in, want := range cases {
		if got := stripCPUSuffix(in); got != want {
			t.Errorf("stripCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMedianOddEvenEmpty(t *testing.T) {
	if got := median(nil); got != 0 {
		t.Errorf("median(nil) = %v, want 0", got)
	}
	if got := median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v, want 2", got)
	}
	if got := median([]float64{4, 1, 2, 3}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

// mustParse is a test helper over parse.
func mustParse(t *testing.T, s string) (map[string][]sample, []string) {
	t.Helper()
	runs, order, err := parse(strings.NewReader(s))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return runs, order
}

func TestCompareFlagsRegression(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 110 ns/op\nBenchmarkA-8 10 90 ns/op\nBenchmarkB-8 10 50 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 300 ns/op\nBenchmarkB-8 10 51 ns/op\n")
	var out strings.Builder
	if !compare(&out, oldRuns, oldOrder, newRuns, newOrder, 0.20, "base.txt") {
		t.Fatalf("3x ns/op increase not flagged as regression; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output lacks REGRESSION marker:\n%s", out.String())
	}
}

func TestCompareWithinThresholdPasses(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 115 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, 0.20, "base.txt") {
		t.Fatalf("+15%% under a 20%% threshold must pass; output:\n%s", out.String())
	}
}

func TestCompareUsesMedianNotMean(t *testing.T) {
	// Median old = 100; one wild outlier must not drag the comparison.
	oldRuns, oldOrder := mustParse(t, "BenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 100 ns/op\nBenchmarkA-8 10 100000 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkA-8 10 110 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, 0.20, "base.txt") {
		t.Fatalf("median-based compare must ignore the outlier; output:\n%s", out.String())
	}
}

func TestCompareMissingBenchmarksNeverGate(t *testing.T) {
	oldRuns, oldOrder := mustParse(t, "BenchmarkOldOnly-8 10 100 ns/op\n")
	newRuns, newOrder := mustParse(t, "BenchmarkNewOnly-8 10 999999 ns/op\n")
	var out strings.Builder
	if compare(&out, oldRuns, oldOrder, newRuns, newOrder, 0.20, "base.txt") {
		t.Fatalf("disjoint benchmark sets must not regress; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "only in base.txt, skipped") {
		t.Errorf("missing-in-new benchmark not reported:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "new benchmark, no baseline") {
		t.Errorf("missing-in-old benchmark not reported:\n%s", out.String())
	}
}

func TestCompareEmptyInputs(t *testing.T) {
	var out strings.Builder
	if compare(&out, map[string][]sample{}, nil, map[string][]sample{}, nil, 0.20, "base.txt") {
		t.Fatal("empty inputs must not regress")
	}
}
