// Command moma-load drives a running moma-serve instance with synthetic
// query traffic and reports throughput and latency percentiles — the load
// harness of the online resolution subsystem (cf. honeycombio/loadgen's
// generator/sender split, reduced to one binary).
//
// Queries are drawn from a generated sources world: by default the DBLP
// publication titles are fired at the served ACM publication set, the
// cross-source resolution the batch experiments run offline. Each worker
// sends synchronous POST /sets/{set}/resolve requests; latencies are
// collected per worker and merged for the final report. The target's
// /metrics endpoint is scraped before and after the run, and the delta of
// the engine-side resolve-stage histograms is printed next to the
// client-side percentiles — where the time went, not just how long it took.
//
// The client is overload-aware: a server answering 429 (admission shed) or
// 503 (draining, degraded store) is retried with capped exponential backoff
// plus jitter, honoring Retry-After, up to -retries attempts; the report
// counts the retries and sheds each phase absorbed. With -adds N the run
// appends a write phase that feeds N new instances through the add
// endpoint under the same retry policy — the client half of a chaos drill
// against a fault-injected moma-serve.
//
// Usage:
//
//	moma-load [-url http://127.0.0.1:8080] [-set ACM.Publication] \
//	          [-concurrency 8] [-duration 10s | -requests 5000] \
//	          [-adds 0] [-retries 3] [flags]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	moma "repro"
	"repro/internal/sources"
)

type resolveRequest struct {
	ID    string            `json:"id,omitempty"`
	Attrs map[string]string `json:"attrs"`
	Limit int               `json:"limit,omitempty"`
}

type resolveResponse struct {
	Matches []struct {
		ID  string  `json:"id"`
		Sim float64 `json:"sim"`
	} `json:"matches"`
	TookUS int64 `json:"took_us"`
}

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "moma-serve base URL")
	set := flag.String("set", "ACM.Publication", "served set to resolve against")
	source := flag.String("source", "DBLP", "world source supplying the query records (DBLP, ACM or GS)")
	scale := flag.String("scale", "small", "query dataset scale: paper or small")
	seed := flag.Int64("seed", 0, "override the dataset seed (0 keeps the default)")
	queryAttr := flag.String("query-attr", "title", "attribute name sent in resolve requests")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	duration := flag.Duration("duration", 10*time.Second, "run length (ignored with -requests)")
	requests := flag.Int("requests", 0, "total request budget (0 = run for -duration)")
	limit := flag.Int("limit", 5, "match limit per request")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request timeout")
	retries := flag.Int("retries", 3, "retry attempts per request on 429/503/network errors")
	backoff := flag.Duration("backoff", 25*time.Millisecond, "base retry backoff (doubles per attempt, with jitter)")
	backoffMax := flag.Duration("backoff-max", time.Second, "retry backoff cap")
	adds := flag.Int("adds", 0, "after the resolve phase, add this many new instances through the write path")
	flag.Parse()

	pol := retryPolicy{max: *retries, base: *backoff, cap: *backoffMax}
	if err := run(*url, *set, *source, *scale, *seed, *queryAttr, *concurrency, *duration, *requests, *limit, *timeout, *adds, pol); err != nil {
		fmt.Fprintf(os.Stderr, "moma-load: %v\n", err)
		os.Exit(1)
	}
}

// retryPolicy bounds the retry loop around one request: up to max retries
// beyond the first attempt, base backoff doubling per attempt up to cap,
// with equal jitter so a shed burst doesn't re-collide in lockstep.
type retryPolicy struct {
	max  int
	base time.Duration
	cap  time.Duration
}

// sendRetry posts body to target, retrying transport errors and the
// overload answers — 429 (admission shed) and 503 (draining or degraded
// store) — per the policy, honoring the server's Retry-After when it asks
// for a longer pause than the backoff (still capped). It returns the final
// status with the response body read and closed, plus the retry and shed
// counts the request absorbed; err is non-nil only when the last attempt
// failed at the transport.
func sendRetry(client *http.Client, target string, body []byte, p retryPolicy, rng *rand.Rand) (status int, out []byte, retries, sheds int, err error) {
	base := p.base
	if base <= 0 {
		base = time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		var resp *http.Response
		resp, err = client.Post(target, "application/json", bytes.NewReader(body))
		var retryAfter time.Duration
		if err == nil {
			status = resp.StatusCode
			out, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if status != http.StatusTooManyRequests && status != http.StatusServiceUnavailable {
				return status, out, retries, sheds, nil
			}
			if status == http.StatusTooManyRequests {
				sheds++
			}
			if s := resp.Header.Get("Retry-After"); s != "" {
				if n, perr := strconv.Atoi(s); perr == nil && n >= 0 {
					retryAfter = time.Duration(n) * time.Second
				}
			}
		}
		if attempt >= p.max {
			return status, out, retries, sheds, err
		}
		retries++
		wait := base << uint(attempt)
		if wait > p.cap || wait <= 0 {
			wait = p.cap
		}
		wait = wait/2 + time.Duration(rng.Int63n(int64(wait/2)+1))
		if retryAfter > wait {
			wait = retryAfter
		}
		if wait > p.cap {
			wait = p.cap
		}
		time.Sleep(wait)
	}
}

func run(baseURL, set, source, scale string, seed int64, queryAttr string, concurrency int, duration time.Duration, requests, limit int, timeout time.Duration, adds int, pol retryPolicy) error {
	var cfg sources.Config
	switch scale {
	case "paper":
		cfg = sources.PaperConfig()
	case "small":
		cfg = sources.SmallConfig()
	default:
		return fmt.Errorf("unknown scale %q (want paper or small)", scale)
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	fmt.Printf("moma-load: generating %s-scale query world (seed %d)...\n", scale, cfg.Seed)
	payloads, values, err := buildPayloads(cfg, source, queryAttr, limit)
	if err != nil {
		return err
	}
	fmt.Printf("moma-load: %d query records from %s; target %s/sets/%s/resolve\n",
		len(payloads), source, baseURL, set)

	if concurrency < 1 {
		concurrency = 1
	}
	client := &http.Client{Timeout: timeout}
	target := strings.TrimRight(baseURL, "/") + "/sets/" + set + "/resolve"

	// Probe once so misconfiguration fails fast, not as N worker errors.
	if err := probe(client, target, payloads[0]); err != nil {
		return err
	}
	// Scrape the server's engine metrics before and after the run: the delta
	// of the resolve-stage histograms is the server-side view of the same
	// traffic the client-side percentiles below describe.
	before := scrapeStages(client, baseURL)

	var (
		sent     atomic.Int64
		matched  atomic.Int64
		errs     atomic.Int64
		nRetries atomic.Int64
		nSheds   atomic.Int64
		deadline = time.Now().Add(duration)
		lats     = make([][]time.Duration, concurrency)
		wg       sync.WaitGroup
	)
	budget := int64(requests)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0x9E3779B9*int64(w+1) + 1))
			mine := make([]time.Duration, 0, 4096)
			for {
				n := sent.Add(1)
				if budget > 0 {
					if n > budget {
						break
					}
				} else if time.Now().After(deadline) {
					break
				}
				body := payloads[int(n-1)%len(payloads)]
				t0 := time.Now()
				status, rbody, r, sh, err := sendRetry(client, target, body, pol, rng)
				took := time.Since(t0)
				nRetries.Add(int64(r))
				nSheds.Add(int64(sh))
				if err != nil || status != http.StatusOK {
					errs.Add(1)
					continue
				}
				var rr resolveResponse
				if json.Unmarshal(rbody, &rr) != nil {
					errs.Add(1)
					continue
				}
				if len(rr.Matches) > 0 {
					matched.Add(1)
				}
				mine = append(mine, took)
			}
			lats[w] = mine
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no successful requests (%d errors)", errs.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	pct := func(p float64) time.Duration {
		i := int(p / 100 * float64(len(all)-1))
		return all[i]
	}

	ok := int64(len(all))
	fmt.Printf("\nmoma-load: %d ok, %d errors in %v (%d workers)\n", ok, errs.Load(), wall.Round(time.Millisecond), concurrency)
	fmt.Printf("  throughput  %.0f req/s\n", float64(ok)/wall.Seconds())
	fmt.Printf("  match rate  %.1f%% of queries returned >=1 match\n", 100*float64(matched.Load())/float64(ok))
	fmt.Printf("  latency     mean %v  p50 %v  p95 %v  p99 %v  max %v\n",
		(sum / time.Duration(ok)).Round(time.Microsecond),
		pct(50).Round(time.Microsecond), pct(95).Round(time.Microsecond),
		pct(99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	fmt.Printf("  resilience  %d retries, %d sheds (429) absorbed\n", nRetries.Load(), nSheds.Load())
	printEngineReport(before, scrapeStages(client, baseURL))
	if adds > 0 {
		if err := runAdds(client, baseURL, set, values, adds, concurrency, pol); err != nil {
			return err
		}
	}
	if errs.Load() > 0 {
		return fmt.Errorf("%d requests failed", errs.Load())
	}
	return nil
}

// runAdds is the write phase: n add-instance requests under the same retry
// policy as the resolve phase. Each value is sent under both "title" and
// "name" so it matches whichever attribute the served set's resolver reads
// (DBLP/GS title records vs ACM name records).
func runAdds(client *http.Client, baseURL, set string, values []string, n, concurrency int, pol retryPolicy) error {
	target := strings.TrimRight(baseURL, "/") + "/sets/" + set + "/instances"
	payloads := make([][]byte, n)
	for i := 0; i < n; i++ {
		v := values[i%len(values)]
		b, err := json.Marshal(struct {
			ID    string            `json:"id"`
			Attrs map[string]string `json:"attrs"`
		}{ID: fmt.Sprintf("load-add-%d", i), Attrs: map[string]string{"title": v, "name": v}})
		if err != nil {
			return err
		}
		payloads[i] = b
	}
	var next, ok, errs, nRetries, nSheds atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(0x9E3779B9*int64(w+1) + 2))
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				status, body, r, sh, err := sendRetry(client, target, payloads[i], pol, rng)
				nRetries.Add(int64(r))
				nSheds.Add(int64(sh))
				if err != nil || status != http.StatusOK {
					if errs.Add(1) <= 3 { // sample the first few failures for the operator
						fmt.Printf("moma-load: add %d failed: status %d, err %v, body %s\n",
							i, status, err, strings.TrimSpace(string(body)))
					}
					continue
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("\nmoma-load: add phase: %d ok, %d errors (%d retries, %d sheds absorbed) in %v\n",
		ok.Load(), errs.Load(), nRetries.Load(), nSheds.Load(), time.Since(start).Round(time.Millisecond))
	if errs.Load() > 0 {
		return fmt.Errorf("add phase: %d requests failed", errs.Load())
	}
	return nil
}

// stageAgg is one histogram's (sum, count) pair scraped from /metrics.
type stageAgg struct {
	sum   float64 // seconds
	count uint64
}

// scrapeStages fetches the target's /metrics and extracts the engine-side
// resolve-stage histograms: per-stage series keyed by stage name, the
// whole-operation histogram keyed by "". A nil return means the endpoint or
// the series are unavailable (an older server, say) — the caller skips the
// engine report rather than failing the load run.
func scrapeStages(client *http.Client, baseURL string) map[string]stageAgg {
	resp, err := client.Get(strings.TrimRight(baseURL, "/") + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	const (
		stageSum   = `moma_live_resolve_stage_seconds_sum{stage="`
		stageCount = `moma_live_resolve_stage_seconds_count{stage="`
		totalSum   = "moma_live_resolve_seconds_sum "
		totalCount = "moma_live_resolve_seconds_count "
	)
	out := make(map[string]stageAgg)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		switch {
		case strings.HasPrefix(line, stageSum):
			if stage, ok := labelValue(fields[0], stageSum); ok {
				a := out[stage]
				a.sum = v
				out[stage] = a
			}
		case strings.HasPrefix(line, stageCount):
			if stage, ok := labelValue(fields[0], stageCount); ok {
				a := out[stage]
				a.count = uint64(v)
				out[stage] = a
			}
		case strings.HasPrefix(line, totalSum):
			a := out[""]
			a.sum = v
			out[""] = a
		case strings.HasPrefix(line, totalCount):
			a := out[""]
			a.count = uint64(v)
			out[""] = a
		}
	}
	if _, ok := out[""]; !ok {
		return nil
	}
	return out
}

// labelValue extracts the label value from `prefix<value>"}`.
func labelValue(series, prefix string) (string, bool) {
	rest := strings.TrimPrefix(series, prefix)
	i := strings.IndexByte(rest, '"')
	if i < 0 {
		return "", false
	}
	return rest[:i], true
}

// printEngineReport renders the server-side stage breakdown of the run: the
// delta of the scraped histograms between the before and after snapshots.
func printEngineReport(before, after map[string]stageAgg) {
	if before == nil || after == nil {
		fmt.Println("  engine      /metrics unavailable; skipping server-side stage breakdown")
		return
	}
	ops := after[""].count - before[""].count
	if ops == 0 {
		fmt.Println("  engine      no resolves recorded server-side; skipping stage breakdown")
		return
	}
	totalSec := after[""].sum - before[""].sum
	fmt.Printf("  engine      %d resolves server-side, mean %v/op across stages:\n",
		ops, time.Duration(totalSec/float64(ops)*1e9).Round(time.Microsecond))
	stages := make([]string, 0, len(after))
	for s := range after {
		if s != "" {
			stages = append(stages, s)
		}
	}
	// Alphabetical order happens to be pipeline order for the resolver's
	// stages (block, profile, score) and is deterministic for any other.
	sort.Strings(stages)
	for _, s := range stages {
		d := after[s].sum - before[s].sum
		share := 0.0
		if totalSec > 0 {
			share = d / totalSec * 100
		}
		fmt.Printf("    %-9s %5.1f%%  mean %v/op\n",
			s, share, time.Duration(d/float64(ops)*1e9).Round(time.Microsecond))
	}
}

// buildPayloads pre-serializes one resolve request per query record so the
// hot loop does no JSON encoding, and returns the raw attribute values
// alongside for the add phase to reuse.
func buildPayloads(cfg sources.Config, source, queryAttr string, limit int) ([][]byte, []string, error) {
	d := sources.Generate(cfg)
	var src *sources.Source
	switch strings.ToUpper(source) {
	case "DBLP":
		src = d.DBLP
	case "ACM":
		src = d.ACM
	case "GS":
		src = d.GS
	default:
		return nil, nil, fmt.Errorf("unknown source %q (want DBLP, ACM or GS)", source)
	}
	var payloads [][]byte
	var values []string
	var err error
	src.Pubs.Each(func(in *moma.Instance) bool {
		// Source sets differ in their title attribute name; send the value
		// under the attribute the server's resolvers read.
		v := in.Attr("title")
		if v == "" {
			v = in.Attr("name")
		}
		if v == "" {
			return true
		}
		var b []byte
		b, err = json.Marshal(resolveRequest{
			ID:    string(in.ID),
			Attrs: map[string]string{queryAttr: v},
			Limit: limit,
		})
		if err != nil {
			return false
		}
		payloads = append(payloads, b)
		values = append(values, v)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	if len(payloads) == 0 {
		return nil, nil, fmt.Errorf("source %s has no usable query records", source)
	}
	return payloads, values, nil
}

// probe sends one request and demands a 2xx, surfacing server-side config
// errors before the load starts.
func probe(client *http.Client, target string, payload []byte) error {
	resp, err := client.Post(target, "application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("probe: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("probe: %s returned %d: %s", target, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return nil
}
