// Command moma-bench regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic bibliographic dataset, printing them in
// the paper's layout. It is the human-facing counterpart of the
// testing.B benchmarks in the repository root.
//
// Usage:
//
//	moma-bench [-scale paper|small] [-only "Table 2,Table 9"] [-seed N] [-workers N]
//
// At paper scale the dataset matches Table 1 exactly (DBLP 2616
// publications, ACM 2294, GS 64263); the full run takes a couple of
// minutes. -only restricts the run to a comma-separated list of experiment
// IDs. -workers caps GOMAXPROCS and thereby both the scoring parallelism
// of the streaming match pipeline and the worker teams of the parallel
// mapping operators (matchers and operators default their worker count to
// GOMAXPROCS), which is useful for comparing sequential and parallel runs
// on the same hardware — operator outputs are bit-identical at every
// worker count, so the tables must not change with -workers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sources"
)

func main() {
	scale := flag.String("scale", "paper", "dataset scale: paper or small")
	only := flag.String("only", "", "comma-separated experiment IDs to run (e.g. \"Table 2,Figure 9\")")
	seed := flag.Int64("seed", 0, "override the dataset seed (0 keeps the default)")
	workers := flag.Int("workers", 0, "cap GOMAXPROCS and thereby the default parallelism of matchers and mapping operators (0 = all cores, clamped to the core count)")
	flag.Parse()

	if *workers > 0 {
		if *workers > runtime.NumCPU() {
			*workers = runtime.NumCPU()
		}
		runtime.GOMAXPROCS(*workers)
	}

	var cfg sources.Config
	switch *scale {
	case "paper":
		cfg = sources.PaperConfig()
	case "small":
		cfg = sources.SmallConfig()
	default:
		fmt.Fprintf(os.Stderr, "moma-bench: unknown scale %q (want paper or small)\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			wanted[strings.ToLower(id)] = true
		}
	}
	runAll := len(wanted) == 0
	shouldRun := func(id string) bool { return runAll || wanted[strings.ToLower(id)] }

	start := time.Now()
	fmt.Printf("moma-bench: generating %s-scale dataset (seed %d)...\n", *scale, cfg.Seed)
	setting := experiments.NewSetting(cfg)
	fmt.Printf("moma-bench: dataset and GS working set ready in %v\n\n", time.Since(start).Round(time.Millisecond))

	type experiment struct {
		id  string
		run func(*experiments.Setting) (*experiments.TableResult, error)
	}
	static := map[string]func() (*experiments.TableResult, error){
		"Figure 4": experiments.Figure4,
		"Figure 6": experiments.Figure6,
		"Figure 9": experiments.Figure9,
	}
	ordered := []experiment{
		{"Table 1", experiments.Table1},
		{"Table 2", experiments.Table2},
		{"Table 3", experiments.Table3},
		{"Table 4", experiments.Table4},
		{"Table 5", experiments.Table5},
		{"Table 6", experiments.Table6},
		{"Table 7", experiments.Table7},
		{"Table 8", experiments.Table8},
		{"Table 9", experiments.Table9},
		{"Table 10", experiments.Table10},
		{"Figure 8", experiments.Figure8Hub},
		{"Ablation A1", experiments.AblationMergeMissing},
		{"Ablation A2", experiments.AblationComposeAgg},
		{"Ablation A3", experiments.AblationBlocking},
		{"Ablation A4", experiments.AblationHubChoice},
		{"Extension E1", experiments.ExtensionGSSelfMapping},
		{"Extension E2", experiments.ExtensionSelfTuning},
	}

	failed := false
	for _, id := range []string{"Figure 4", "Figure 6", "Figure 9"} {
		if !shouldRun(id) {
			continue
		}
		r, err := static[id]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "moma-bench: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(r.Render())
	}
	for _, ex := range ordered {
		if !shouldRun(ex.id) {
			continue
		}
		t0 := time.Now()
		r, err := ex.run(setting)
		if err != nil {
			fmt.Fprintf(os.Stderr, "moma-bench: %s: %v\n", ex.id, err)
			failed = true
			continue
		}
		fmt.Printf("%s  [%v]\n", r.Render(), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("moma-bench: done in %v\n", time.Since(start).Round(time.Millisecond))
	if failed {
		os.Exit(1)
	}
}
