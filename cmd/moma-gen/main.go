// Command moma-gen emits the synthetic bibliographic world as CSV files —
// object sets, association mappings and perfect mappings — so the datasets
// can be inspected, versioned, or fed to cmd/moma.
//
// Usage:
//
//	moma-gen -out DIR [-scale paper|small] [-seed N]
//
// The output directory receives one CSV per object set
// (dblp_publications.csv, acm_authors.csv, ...), per association mapping
// (dblp_venuepub.csv, ...) and per perfect mapping
// (perfect_pub_dblp_acm.csv, ...).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sources"
	"repro/internal/store"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	scale := flag.String("scale", "small", "dataset scale: paper or small")
	seed := flag.Int64("seed", 0, "override the dataset seed (0 keeps the default)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "moma-gen: -out DIR is required")
		os.Exit(2)
	}
	var cfg sources.Config
	switch *scale {
	case "paper":
		cfg = sources.PaperConfig()
	case "small":
		cfg = sources.SmallConfig()
	default:
		fmt.Fprintf(os.Stderr, "moma-gen: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if err := run(cfg, *out); err != nil {
		fmt.Fprintf(os.Stderr, "moma-gen: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg sources.Config, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	d := sources.Generate(cfg)

	writeSet := func(name string, set *model.ObjectSet) error {
		if set == nil {
			return nil
		}
		return writeFile(filepath.Join(out, name+".csv"), func(f *os.File) error {
			return store.WriteObjectSetCSV(f, set)
		})
	}
	writeMap := func(name string, m *mapping.Mapping) error {
		if m == nil {
			return nil
		}
		return writeFile(filepath.Join(out, name+".csv"), func(f *os.File) error {
			return store.WriteMappingCSV(f, m)
		})
	}

	for _, src := range []*sources.Source{d.DBLP, d.ACM, d.GS} {
		prefix := string(src.Name)
		prefix = filepath.Clean(prefix)
		low := toLower(prefix)
		if err := writeSet(low+"_publications", src.Pubs); err != nil {
			return err
		}
		if err := writeSet(low+"_authors", src.Authors); err != nil {
			return err
		}
		if err := writeSet(low+"_venues", src.Venues); err != nil {
			return err
		}
		if err := writeMap(low+"_venuepub", src.VenuePub); err != nil {
			return err
		}
		if err := writeMap(low+"_pubvenue", src.PubVenue); err != nil {
			return err
		}
		if err := writeMap(low+"_authorpub", src.AuthorPub); err != nil {
			return err
		}
		if err := writeMap(low+"_pubauthor", src.PubAuthor); err != nil {
			return err
		}
		if err := writeMap(low+"_coauthor", src.CoAuthor); err != nil {
			return err
		}
	}
	perfects := map[string]*mapping.Mapping{
		"perfect_pub_dblp_acm":     d.Perfect.PubDBLPACM,
		"perfect_pub_dblp_gs":      d.Perfect.PubDBLPGS,
		"perfect_pub_gs_acm":       d.Perfect.PubGSACM,
		"perfect_venue_dblp_acm":   d.Perfect.VenueDBLPACM,
		"perfect_author_dblp_acm":  d.Perfect.AuthorDBLPACM,
		"perfect_author_dups_dblp": d.Perfect.AuthorDupsDBLP,
		"gs_acm_links":             d.GSLinksACM,
	}
	for name, m := range perfects {
		if err := writeMap(name, m); err != nil {
			return err
		}
	}
	fmt.Printf("moma-gen: wrote dataset (DBLP %d pubs, ACM %d, GS %d) to %s\n",
		d.DBLP.Pubs.Len(), d.ACM.Pubs.Len(), d.GS.Pubs.Len(), out)
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //moma:errsink-ok error path; the write error wins
		return fmt.Errorf("%s: %w", path, err)
	}
	return f.Close()
}

func toLower(s string) string {
	b := []byte(s)
	for i := range b {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}
