// Command moma runs iFuice-style match scripts against CSV data.
//
// Usage:
//
//	moma -script FILE [-set NAME=objects.csv ...] [-map NAME=mapping.csv ...]
//	     [-out result.csv] [-eval perfect.csv] [-trace]
//
// Object sets and mappings are bound under the given qualified names
// (e.g. -set DBLP.Author=dblp_authors.csv -map DBLP.CoAuthor=dblp_coauthor.csv)
// and the script references them by those names. The script's result
// mapping is written as CSV to -out (default stdout); -eval compares the
// result against a perfect mapping and prints precision/recall/F-measure.
//
// Example — the paper's §4.3 duplicate-author workflow:
//
//	moma-gen -out data -scale small
//	moma -script dedup.ifuice \
//	     -set DBLP.Author=data/dblp_authors.csv \
//	     -map DBLP.CoAuthor=data/dblp_coauthor.csv \
//	     -eval data/perfect_author_dups_dblp.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/script"
	"repro/internal/store"
)

// bindingFlag accumulates repeated NAME=FILE flags.
type bindingFlag map[string]string

func (b bindingFlag) String() string { return fmt.Sprint(map[string]string(b)) }

func (b bindingFlag) Set(v string) error {
	eq := strings.IndexByte(v, '=')
	if eq <= 0 || eq == len(v)-1 {
		return fmt.Errorf("want NAME=FILE, got %q", v)
	}
	b[v[:eq]] = v[eq+1:]
	return nil
}

func main() {
	scriptPath := flag.String("script", "", "script file to run (required)")
	out := flag.String("out", "", "write the result mapping as CSV to this file (default stdout)")
	evalPath := flag.String("eval", "", "perfect mapping CSV to evaluate the result against")
	trace := flag.Bool("trace", false, "print each script assignment as it executes")
	sets := bindingFlag{}
	maps := bindingFlag{}
	flag.Var(sets, "set", "bind an object set: NAME=objects.csv (repeatable)")
	flag.Var(maps, "map", "bind a mapping: NAME=mapping.csv (repeatable)")
	flag.Parse()

	if *scriptPath == "" {
		fmt.Fprintln(os.Stderr, "moma: -script FILE is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*scriptPath, sets, maps, *out, *evalPath, *trace); err != nil {
		fmt.Fprintf(os.Stderr, "moma: %v\n", err)
		os.Exit(1)
	}
}

func run(scriptPath string, sets, maps map[string]string, out, evalPath string, trace bool) error {
	src, err := os.ReadFile(scriptPath)
	if err != nil {
		return err
	}
	binding := script.NewBinding()
	for name, file := range sets {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		set, err := store.ReadObjectSetCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		binding.BindSet(name, set)
	}
	for name, file := range maps {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		m, err := store.ReadMappingCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		binding.BindMapping(name, m)
	}
	// Auto-provide identity mappings <Set>.<Name>Identity for every bound
	// set, so single-source workflows need no extra files.
	for name, set := range binding.Sets {
		binding.BindMapping(name+"Identity", mapping.Identity(set))
	}

	ip := script.New(binding)
	if trace {
		ip.Trace = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	v, err := ip.RunSource(string(src))
	if err != nil {
		return err
	}
	if v.Kind != script.MappingValue {
		return fmt.Errorf("script result is %s, expected a mapping", v)
	}
	result := v.Mapping

	w := os.Stdout
	var outFile *os.File
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		outFile = f
		w = f
	}
	if err := store.WriteMappingCSV(w, result); err != nil {
		if outFile != nil {
			outFile.Close() //moma:errsink-ok error path; the write error wins
		}
		return err
	}
	// The close error matters here: the result CSV was just written through
	// OS buffers, and a failed close is the last chance to hear about it.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			return fmt.Errorf("%s: %w", out, err)
		}
	}
	if evalPath != "" {
		f, err := os.Open(evalPath)
		if err != nil {
			return err
		}
		perfect, err := store.ReadMappingCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if err != nil {
			return fmt.Errorf("%s: %w", evalPath, err)
		}
		r := eval.Compare(result, perfect)
		fmt.Fprintf(os.Stderr, "moma: %s (%d correspondences vs %d perfect)\n", r, result.Len(), perfect.Len())
	}
	return nil
}
