// Command moma-serve runs MOMA's online resolution subsystem as an HTTP
// JSON service: it loads a world (a moma-gen CSV directory or an in-process
// synthetic dataset), registers a live resolver per publication set, and
// serves resolve / add / remove / mapping / health / metrics endpoints with
// graceful shutdown. See cmd/moma-serve/README.md for the API.
//
// Usage:
//
//	moma-serve [-addr :8080] [-scale small|paper | -data DIR] [flags]
//
// Examples:
//
//	moma-serve -scale small
//	moma-serve -data /tmp/world -addr 127.0.0.1:8080 -threshold 0.85
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/sets/ACM.Publication/resolve \
//	  -d '{"attrs":{"title":"generic schema matching with cupid"}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	moma "repro"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sources"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	data := flag.String("data", "", "load object sets from a moma-gen CSV directory instead of generating")
	scale := flag.String("scale", "small", "generated dataset scale: paper or small (ignored with -data)")
	seed := flag.Int64("seed", 0, "override the dataset seed (0 keeps the default)")
	sets := flag.String("sets", "", "comma-separated set names to serve (default: every publication set)")
	queryAttr := flag.String("query-attr", "title", "query attribute read from resolve requests")
	setAttr := flag.String("set-attr", "", "set attribute matched against (default: title, falling back to name)")
	minShared := flag.Int("min-shared", 2, "blocking: minimum shared tokens between query and candidate")
	threshold := flag.Float64("threshold", 0.8, "minimum similarity of returned matches")
	measure := flag.String("measure", "trigram", "similarity measure: trigram or tfidf")
	slowQuery := flag.Duration("slow-query", 0, "capture resolves at or above this latency into GET /debug/slow (0 disables)")
	flag.Parse()

	if *slowQuery > 0 {
		obs.SetSlowThreshold(*slowQuery)
		fmt.Printf("moma-serve: capturing resolves >= %v into /debug/slow\n", *slowQuery)
	}
	if err := run(*addr, *data, *scale, *seed, *sets, *queryAttr, *setAttr, *minShared, *threshold, *measure); err != nil {
		fmt.Fprintf(os.Stderr, "moma-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, data, scale string, seed int64, setsFlag, queryAttr, setAttr string, minShared int, threshold float64, measure string) error {
	sys := moma.NewSystem()
	if data != "" {
		if err := loadCSVWorld(sys, data); err != nil {
			return err
		}
	} else {
		var cfg sources.Config
		switch scale {
		case "paper":
			cfg = sources.PaperConfig()
		case "small":
			cfg = sources.SmallConfig()
		default:
			return fmt.Errorf("unknown scale %q (want paper or small)", scale)
		}
		if seed != 0 {
			cfg.Seed = seed
		}
		fmt.Printf("moma-serve: generating %s-scale dataset (seed %d)...\n", scale, cfg.Seed)
		d := sources.Generate(cfg)
		for _, src := range []*sources.Source{d.DBLP, d.ACM, d.GS} {
			if err := sys.LoadSource(src); err != nil {
				return err
			}
		}
	}

	names := pickSets(sys, setsFlag)
	if len(names) == 0 {
		return fmt.Errorf("no servable sets found")
	}
	for _, name := range names {
		set, ok := sys.ObjectSetByName(name)
		if !ok {
			return fmt.Errorf("unknown set %q", name)
		}
		attr := setAttr
		if attr == "" {
			attr = detectTitleAttr(set)
		}
		col := moma.LiveColumn{QueryAttr: queryAttr, SetAttr: attr}
		switch measure {
		case "trigram":
			col.Sim = moma.Trigram
		case "tfidf":
			col.TFIDF = true
		default:
			return fmt.Errorf("unknown measure %q (want trigram or tfidf)", measure)
		}
		r, err := sys.RegisterResolver(name, moma.LiveConfig{
			MinShared: minShared,
			Threshold: threshold,
			Columns:   []moma.LiveColumn{col},
		})
		if err != nil {
			return err
		}
		st := r.Stats()
		fmt.Printf("moma-serve: resolver %s ready (%d instances, %d index terms, %s~%s %s)\n",
			name, st.Live, st.IndexTerms, queryAttr, attr, measure)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("moma-serve: listening on %s (SIGINT/SIGTERM for graceful shutdown)\n", addr)
	if err := serve.New(sys).Run(ctx, addr); err != nil {
		return err
	}
	fmt.Println("moma-serve: shut down cleanly")
	return nil
}

// pickSets resolves the -sets flag; empty means every registered
// publication set.
func pickSets(sys *moma.System, flagVal string) []string {
	if flagVal != "" {
		var out []string
		for _, n := range strings.Split(flagVal, ",") {
			if n = strings.TrimSpace(n); n != "" {
				out = append(out, n)
			}
		}
		return out
	}
	var out []string
	for _, suffix := range []string{string(moma.Publication)} {
		for _, src := range []string{"DBLP", "ACM", "GS"} {
			name := src + "." + suffix
			if _, ok := sys.ObjectSetByName(name); ok {
				out = append(out, name)
			}
		}
	}
	return out
}

// detectTitleAttr picks the title-bearing attribute of a set: DBLP and GS
// publications use "title", ACM uses "name".
func detectTitleAttr(set *moma.ObjectSet) string {
	attr := "title"
	set.Each(func(in *moma.Instance) bool {
		if !in.HasAttr("title") && in.HasAttr("name") {
			attr = "name"
		}
		return false // first instance decides
	})
	return attr
}

// loadCSVWorld registers every object-set CSV of a moma-gen output
// directory under "<Source>.<Type>" and every mapping CSV under its file
// stem. Files are classified by their metadata row.
func loadCSVWorld(sys *moma.System, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	nSets, nMaps := 0, 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		set, serr := moma.ReadObjectSetCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if serr == nil {
			name := string(set.LDS().Source) + "." + string(set.LDS().Type)
			if err := sys.AddObjectSet(name, set); err != nil {
				return fmt.Errorf("%s: %w", e.Name(), err)
			}
			nSets++
			continue
		}
		// Not an object set; try the mapping format.
		f, err = os.Open(path)
		if err != nil {
			return err
		}
		m, merr := moma.ReadMappingCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if merr != nil {
			return fmt.Errorf("%s: neither object set (%v) nor mapping (%v)", e.Name(), serr, merr)
		}
		stem := strings.TrimSuffix(e.Name(), ".csv")
		if err := sys.AddMapping(stem, m); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		nMaps++
	}
	fmt.Printf("moma-serve: loaded %d object sets and %d mappings from %s\n", nSets, nMaps, dir)
	return nil
}
