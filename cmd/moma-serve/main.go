// Command moma-serve runs MOMA's online resolution subsystem as an HTTP
// JSON service: it loads a world (a moma-gen CSV directory or an in-process
// synthetic dataset), registers a live resolver per publication set, and
// serves resolve / add / remove / mapping / health / metrics endpoints with
// graceful shutdown. See cmd/moma-serve/README.md for the API.
//
// The serving layer is hardened for overload and storage failure: admitted
// concurrency is capped (-max-inflight, excess shed with 429), requests
// carry deadlines (-request-timeout) and body caps (-max-body), shutdown
// drains gracefully (-drain-timeout), and /readyz reports whether the
// server should receive traffic — distinct from /healthz liveness. With
// -store the delta repository is durable (WAL + snapshots) and survives
// restarts; -fault-script arms the store's fault injector for chaos drills.
//
// Usage:
//
//	moma-serve [-addr :8080] [-scale small|paper | -data DIR] [flags]
//
// Examples:
//
//	moma-serve -scale small
//	moma-serve -data /tmp/world -addr 127.0.0.1:8080 -threshold 0.85
//	moma-serve -store /var/lib/moma -max-inflight 128
//	moma-serve -store /tmp/moma -fault-script 'write:wal.jsonl:6:enospc!'
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/sets/ACM.Publication/resolve \
//	  -d '{"attrs":{"title":"generic schema matching with cupid"}}'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	moma "repro"
	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sources"
	"repro/internal/store"
)

// config carries the parsed flags into run.
type config struct {
	addr        string
	data        string
	scale       string
	seed        int64
	sets        string
	queryAttr   string
	setAttr     string
	minShared   int
	threshold   float64
	measure     string
	storeDir    string
	faultScript string
	opts        serve.Options
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.data, "data", "", "load object sets from a moma-gen CSV directory instead of generating")
	flag.StringVar(&cfg.scale, "scale", "small", "generated dataset scale: paper or small (ignored with -data)")
	flag.Int64Var(&cfg.seed, "seed", 0, "override the dataset seed (0 keeps the default)")
	flag.StringVar(&cfg.sets, "sets", "", "comma-separated set names to serve (default: every publication set)")
	flag.StringVar(&cfg.queryAttr, "query-attr", "title", "query attribute read from resolve requests")
	flag.StringVar(&cfg.setAttr, "set-attr", "", "set attribute matched against (default: title, falling back to name)")
	flag.IntVar(&cfg.minShared, "min-shared", 2, "blocking: minimum shared tokens between query and candidate")
	flag.Float64Var(&cfg.threshold, "threshold", 0.8, "minimum similarity of returned matches")
	flag.StringVar(&cfg.measure, "measure", "trigram", "similarity measure: trigram or tfidf")
	flag.StringVar(&cfg.storeDir, "store", "", "durable delta-repository directory (WAL + snapshots); empty keeps deltas in memory")
	flag.StringVar(&cfg.faultScript, "fault-script", "", "arm the store fault injector (requires -store); format: op:path:after:kind[:n],... — see internal/faultfs")
	flag.IntVar(&cfg.opts.MaxInFlight, "max-inflight", serve.DefaultMaxInFlight, "concurrent API requests admitted before shedding with 429")
	flag.DurationVar(&cfg.opts.RequestTimeout, "request-timeout", serve.DefaultRequestTimeout, "per-request deadline")
	flag.Int64Var(&cfg.opts.MaxBodyBytes, "max-body", serve.DefaultMaxBodyBytes, "request body cap in bytes (413 beyond)")
	flag.DurationVar(&cfg.opts.DrainTimeout, "drain-timeout", serve.DefaultDrainTimeout, "bound on the graceful drain after SIGINT/SIGTERM")
	slowQuery := flag.Duration("slow-query", 0, "capture resolves at or above this latency into GET /debug/slow (0 disables)")
	flag.Parse()
	cfg.opts.Logf = func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	}

	if *slowQuery > 0 {
		obs.SetSlowThreshold(*slowQuery)
		fmt.Printf("moma-serve: capturing resolves >= %v into /debug/slow\n", *slowQuery)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "moma-serve: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	sys, inj, err := openSystem(cfg)
	if err != nil {
		return err
	}
	defer func() {
		sys.Close() //moma:errsink-ok shutdown path, flush failure already degraded the store
		if inj != nil {
			if fired := inj.Fired(); len(fired) > 0 {
				fmt.Printf("moma-serve: %d injected fault(s) fired:\n", len(fired))
				for _, line := range fired {
					fmt.Printf("  %s\n", line)
				}
			}
		}
	}()
	if cfg.data != "" {
		if err := loadCSVWorld(sys, cfg.data); err != nil {
			return err
		}
	} else {
		var gen sources.Config
		switch cfg.scale {
		case "paper":
			gen = sources.PaperConfig()
		case "small":
			gen = sources.SmallConfig()
		default:
			return fmt.Errorf("unknown scale %q (want paper or small)", cfg.scale)
		}
		if cfg.seed != 0 {
			gen.Seed = cfg.seed
		}
		fmt.Printf("moma-serve: generating %s-scale dataset (seed %d)...\n", cfg.scale, gen.Seed)
		d := sources.Generate(gen)
		for _, src := range []*sources.Source{d.DBLP, d.ACM, d.GS} {
			if err := sys.LoadSource(src); err != nil {
				return err
			}
		}
	}

	names := pickSets(sys, cfg.sets)
	if len(names) == 0 {
		return fmt.Errorf("no servable sets found")
	}
	for _, name := range names {
		set, ok := sys.ObjectSetByName(name)
		if !ok {
			return fmt.Errorf("unknown set %q", name)
		}
		attr := cfg.setAttr
		if attr == "" {
			attr = detectTitleAttr(set)
		}
		col := moma.LiveColumn{QueryAttr: cfg.queryAttr, SetAttr: attr}
		switch cfg.measure {
		case "trigram":
			col.Sim = moma.Trigram
		case "tfidf":
			col.TFIDF = true
		default:
			return fmt.Errorf("unknown measure %q (want trigram or tfidf)", cfg.measure)
		}
		r, err := sys.RegisterResolver(name, moma.LiveConfig{
			MinShared: cfg.minShared,
			Threshold: cfg.threshold,
			Columns:   []moma.LiveColumn{col},
		})
		if err != nil {
			return err
		}
		st := r.Stats()
		fmt.Printf("moma-serve: resolver %s ready (%d instances, %d index terms, %s~%s %s)\n",
			name, st.Live, st.IndexTerms, cfg.queryAttr, attr, cfg.measure)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("moma-serve: admission cap %d, request timeout %v, body cap %d B, drain timeout %v\n",
		cfg.opts.MaxInFlight, cfg.opts.RequestTimeout, cfg.opts.MaxBodyBytes, cfg.opts.DrainTimeout)
	fmt.Printf("moma-serve: listening on %s (SIGINT/SIGTERM for graceful shutdown)\n", cfg.addr)
	if err := serve.NewWithOptions(sys, cfg.opts).Run(ctx, cfg.addr); err != nil {
		return err
	}
	fmt.Println("moma-serve: shut down cleanly")
	return nil
}

// openSystem builds the system over the configured repository: in-memory by
// default, a durable WAL-backed store with -store, optionally behind the
// fault injector with -fault-script. The injector is returned so the
// shutdown path can report which faults fired.
func openSystem(cfg config) (*moma.System, *faultfs.Injector, error) {
	if cfg.storeDir == "" {
		if cfg.faultScript != "" {
			return nil, nil, fmt.Errorf("-fault-script requires -store (it injects into the store filesystem)")
		}
		return moma.NewSystem(), nil, nil
	}
	var fsys faultfs.FS = faultfs.OS{}
	var inj *faultfs.Injector
	if cfg.faultScript != "" {
		rules, err := faultfs.ParseScript(cfg.faultScript)
		if err != nil {
			return nil, nil, fmt.Errorf("-fault-script: %w", err)
		}
		inj = faultfs.NewInjector(nil)
		inj.Inject(rules...)
		fsys = inj
		fmt.Printf("moma-serve: fault injection armed: %s\n", cfg.faultScript)
	}
	repo, err := store.OpenRepositoryFS(cfg.storeDir, fsys)
	if err != nil {
		return nil, nil, fmt.Errorf("open repository %s: %w", cfg.storeDir, err)
	}
	fmt.Printf("moma-serve: durable repository open at %s (%d persisted mappings)\n",
		cfg.storeDir, repo.Len())
	return moma.NewSystemWithRepository(repo), inj, nil
}

// pickSets resolves the -sets flag; empty means every registered
// publication set.
func pickSets(sys *moma.System, flagVal string) []string {
	if flagVal != "" {
		var out []string
		for _, n := range strings.Split(flagVal, ",") {
			if n = strings.TrimSpace(n); n != "" {
				out = append(out, n)
			}
		}
		return out
	}
	var out []string
	for _, suffix := range []string{string(moma.Publication)} {
		for _, src := range []string{"DBLP", "ACM", "GS"} {
			name := src + "." + suffix
			if _, ok := sys.ObjectSetByName(name); ok {
				out = append(out, name)
			}
		}
	}
	return out
}

// detectTitleAttr picks the title-bearing attribute of a set: DBLP and GS
// publications use "title", ACM uses "name".
func detectTitleAttr(set *moma.ObjectSet) string {
	attr := "title"
	set.Each(func(in *moma.Instance) bool {
		if !in.HasAttr("title") && in.HasAttr("name") {
			attr = "name"
		}
		return false // first instance decides
	})
	return attr
}

// loadCSVWorld registers every object-set CSV of a moma-gen output
// directory under "<Source>.<Type>" and every mapping CSV under its file
// stem. Files are classified by their metadata row.
func loadCSVWorld(sys *moma.System, dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	nSets, nMaps := 0, 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".csv") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		set, serr := moma.ReadObjectSetCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if serr == nil {
			name := string(set.LDS().Source) + "." + string(set.LDS().Type)
			if err := sys.AddObjectSet(name, set); err != nil {
				return fmt.Errorf("%s: %w", e.Name(), err)
			}
			nSets++
			continue
		}
		// Not an object set; try the mapping format.
		f, err = os.Open(path)
		if err != nil {
			return err
		}
		m, merr := moma.ReadMappingCSV(f)
		f.Close() //moma:errsink-ok read-only fd, contents already parsed
		if merr != nil {
			return fmt.Errorf("%s: neither object set (%v) nor mapping (%v)", e.Name(), serr, merr)
		}
		stem := strings.TrimSuffix(e.Name(), ".csv")
		if err := sys.AddMapping(stem, m); err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		nMaps++
	}
	fmt.Printf("moma-serve: loaded %d object sets and %d mappings from %s\n", nSets, nMaps, dir)
	return nil
}
