// Package moma is a Go implementation of MOMA, the mapping-based object
// matching system of Thor & Rahm (CIDR 2007).
//
// MOMA solves object matching (entity resolution): identifying the object
// instances in data sources that refer to the same real-world entity. Its
// central abstraction is the instance-level mapping — a set of
// correspondences (a, b, s) between two logical data sources with a
// similarity s in [0,1]. Match workflows combine matcher executions
// (attribute matchers, the neighborhood matcher) with mapping operators
// (merge, compose, selection), re-using mappings kept in a repository.
//
// The package re-exports the subsystem APIs under one import:
//
//	sys := moma.NewSystem()
//	dblp := moma.NewObjectSet(moma.LDS{Source: "DBLP", Type: moma.Publication})
//	acm := moma.NewObjectSet(moma.LDS{Source: "ACM", Type: moma.Publication})
//	// ... fill the sets, then match titles:
//	m := &moma.AttributeMatcher{AttrA: "title", AttrB: "title",
//		Sim: moma.Trigram, Threshold: 0.8}
//	same, err := m.Match(dblp, acm)
//
// Higher-level entry points: System wires a mapping repository, a matcher
// registry and the iFuice-style script interpreter together; Workflow and
// Engine execute multi-step match processes; NhMatch is the §4.2
// neighborhood matcher.
//
// # Similarity profiles
//
// Attribute matchers evaluate their similarity function over O(n·m)
// candidate pairs, but a match input only contains n+m distinct attribute
// values. The similarity-profile layer exploits this: every built-in
// SimFunc has a profiled twin (ProfiledSim) that preprocesses each value
// once — normalization, tokenization, hashed character n-gram sets, TF-IDF
// vectors — into a SimProfile, and then scores pairs over the cached
// profiles with identical results. AttributeMatcher and
// MultiAttributeMatcher upgrade built-in measures automatically via
// ProfiledOf; custom closures keep the string-based path. A corpus-backed
// measure is wired explicitly:
//
//	corpus := moma.NewTFIDF()
//	// ... corpus.AddAll(titles) ...
//	m := &moma.AttributeMatcher{AttrA: "title", AttrB: "title",
//		Profiled: corpus.Profiled(), Threshold: 0.6}
//
// Profiles are immutable after construction, so matchers with Workers > 1
// score them concurrently without locks.
//
// # Streaming match pipeline
//
// Candidate generation and scoring form a streaming pipeline: every
// Blocker exposes PairsEach, which visits the candidate pairs one at a
// time (Pairs remains as a materializing wrapper), and the attribute
// matchers drain that stream through a bounded worker pipeline that keeps
// only above-threshold correspondences. The candidate set — potentially
// O(n·m) pairs — never exists in memory as a whole; a match's footprint is
// the O(n+m) profile columns (dense arrays keyed by ObjectSet.IndexOf
// ordinals) plus the kept correspondences. Token blocking additionally
// shares its tokenization with the profile build: the sim.Tokens output
// computed for the blocking attribute is reused by token-based measures on
// the same attribute instead of re-tokenizing. Results are bit-identical
// to the materialized path, including mapping insertion order, at any
// worker count. The workflow Engine can push one Workers setting through
// every matcher of a workflow (ConfigurableWorkers).
//
// # Online resolution
//
// The live subsystem answers single-record match queries against a resident
// set without re-matching: a LiveResolver registers an ObjectSet once and
// keeps its blocking index, similarity-profile columns and TF-IDF corpora
// incrementally maintained, so Resolve blocks, scores and thresholds one
// query in time proportional to its candidates — and Add/Remove update the
// resident structures in place. Scoring is bit-identical to a batch
// re-match of the same configuration (blocking attributes, columns,
// weights, threshold).
//
//	sys.AddObjectSet("ACM.Publication", acm)
//	r, err := sys.RegisterResolver("ACM.Publication", moma.LiveConfig{
//		MinShared: 2, Threshold: 0.8,
//		Columns: []moma.LiveColumn{
//			{QueryAttr: "title", SetAttr: "title", Sim: moma.Trigram},
//		},
//	})
//	matches := r.Resolve(instance) // sub-millisecond on warm indexes
//
// cmd/moma-serve exposes registered resolvers over an HTTP JSON API
// (resolve, incremental add/remove with same-mapping deltas in the
// repository, health and metrics endpoints); cmd/moma-load drives it with
// synthetic query traffic and reports throughput and latency percentiles.
// Batch token blocking shares the same structures: its per-set token
// columns and ordinal inverted indexes are cached by object-set identity
// and version, so repeated matches over one set stop rebuilding them — and
// the similarity-profile columns are cached the same way, keyed by set,
// attribute, measure and version, so matchers sharing inputs build each
// profile column once (Touch/Add on the set invalidates).
//
// # Columnar ordinal mappings
//
// Mapping tables are columnar: a Mapping stores parallel uint32 ordinal
// columns (domain, range) plus a float64 similarity column, with instance
// IDs interned once in a model.IDDict symbol table — the ID-level
// counterpart of the term dictionary the similarity layer uses. All
// mapping operators run over the integer columns: compose is a hash join
// on middle ordinals, merge folds packed uint64 pair keys, selections sort
// row indices, and byDomain/byRange lookups walk lazily-built ordinal
// posting lists. Matchers emit kept correspondences ordinal-to-ordinal
// (input id columns are interned once per match), evaluation compares
// mappings by integer membership probes, and duplicate clustering
// union-finds over dense ordinal indexes.
//
// Ownership follows the term dictionary's rules: mappings created with
// NewMapping/NewSameMapping intern through the process-global model.IDs,
// so everything produced in-process shares one ordinal space and operators
// never translate. A persistent repository (OpenRepository) owns a private
// dictionary for the mappings it replays from disk — its vocabulary is
// released with the store — and operators given mixed-dictionary inputs
// fall back to id-level translation with identical results. Ordinals never
// reach the disk format; the WAL serializes id strings. Delta-heavy WALs
// fold themselves into fresh snapshots automatically once the log outgrows
// the snapshot (Store.SetAutoCompact configures or disables the ratio).
//
// # Parallel mapping operators
//
// The three columnar operators run on a fixed-size worker team
// (internal/par) with one non-negotiable contract: the output is
// bit-identical at every worker count — same rows, same float64
// similarities, same first-seen insertion order. Compose, Merge and the
// per-group selections default to GOMAXPROCS workers; ComposeWorkers /
// MergeWorkers / the selections' Workers field pin the count, and
// workflow.Engine.Workers threads one knob through a whole run.
// Differential tests (internal/mapping/ref_test.go, parallel_test.go) hold
// the operators to eps-0 equality against sequential reference
// implementations at workers 1, 3 and 8.
//
// Determinism comes from partitioning by the fold's OWNER, not by input
// row ranges. Float addition is not associative, so an order-sensitive
// aggregate must fold on one worker in global scan order: compose
// hash-partitions map1's rows by domain ordinal (every compose path of an
// output pair starts at a row with that domain, so each pair's aggregate
// accumulates on exactly one worker), and selections partition rows by
// group key. Merge instead concatenates all inputs' packed pair keys with
// their (input, row) sequence numbers, par.SortFunc orders them totally,
// and workers fold disjoint equal-key runs — each run fills the same
// per-input similarity vector the sequential map fold would, so the
// combined value is bit-for-bit the same. Small inputs collapse to a team
// of one (par.Split's chunk floor) and skip the order-restoring sorts
// entirely, keeping the single-core cost flat.
//
// Worker-private scratch plus a deterministic merge-back is the whole
// concurrency story: workers never share mutable state, results land in
// per-worker arenas, and the merge-back orders entries by their first-seen
// sequence (par.SortFunc over packed uint64 sequence keys). The launch
// machinery is centralized in internal/par — partition-by-index
// goroutines, panic capture per chunk, one wg.Wait — so operator code
// contains no `go` statements and invariant 6 below holds by
// construction. Bulk results enter a Mapping through the pre-deduped
// column constructor (newFromColumns), which takes slice ownership and
// leaves the pair index and posting lists lazy.
//
// # Observability
//
// internal/obs is the dependency-free observability core: counters, gauges
// and fixed-bucket histograms allocated at registration time and recorded
// with a few atomic operations, a process-global registry with
// deterministic Prometheus text exposition, and a stage-trace facility
// that times named pipeline stages into caller-owned scratch. The engine
// packages register their metrics at init, so any program importing them
// can expose the registry (obs.Default.WritePrometheus); the serve layer
// does this on GET /metrics next to its route metrics.
//
// The metric vocabulary follows the package structure:
//
//   - moma_live_*: online resolution. moma_live_resolve_seconds and
//     moma_live_resolve_stage_seconds{stage=...} time each resolve and its
//     stages — "block" (token lookup), "profile" (query profiling) and
//     "score" (the fused candidate probe-and-score loop); candidate and
//     match counters plus add/remove/compaction totals and a resident
//     instances gauge ride along.
//   - moma_match_*: the batch streaming pipeline — scored pairs, kept
//     correspondences, batches, worker queue wait.
//   - moma_mapping_*: the mapping operators —
//     moma_mapping_op_seconds{op=,workers=} times whole compose/merge/
//     select invocations per configured worker cap, and
//     moma_mapping_op_rows_total counts their output correspondences.
//     Recorded once per operator call, never inside the row loops.
//   - moma_store_*: repository persistence — put/delta/compaction
//     latencies, WAL bytes/records, fsyncs, last snapshot size.
//   - moma_blockcache_* / moma_profilecache_*: hits, misses and version
//     invalidations of the cached token/norm/index and profile columns.
//   - moma_sim_dict_terms / moma_model_dict_ids: sizes of the two
//     process-global dictionaries — the runtime dial for the dictionary-
//     ownership invariant that moma-vet's dictgrowth analyzer checks
//     statically.
//
// Recording obeys invariant 5 below: every record path is //moma:noalloc
// (an observation is a bucket scan plus a few atomic adds on
// registration-time storage; labels are pre-rendered strings), so
// instrumentation does not void the warm resolve path's zero-allocation
// budget — TestResolveAppendZeroAllocs passes with tracing on. Slow-query
// capture is threshold-gated (obs.SetSlowThreshold, moma-serve's
// -slow-query flag): queries above the threshold deposit their stage
// breakdown in a fixed ring readable as JSON via GET /debug/slow, while
// queries below it pay one atomic load. moma-serve also mounts
// /debug/pprof/* and /debug/vars; moma-load scrapes /metrics before and
// after a run and prints the server-side per-stage latency shares.
//
// # Robustness
//
// The persistence and serving layers are built to a failure taxonomy, and
// internal/faultfs exists to exercise every branch of it: the repository
// store talks to disk through a tiny filesystem seam (faultfs.FS, with
// faultfs.OS the zero-cost passthrough), and faultfs.Injector scripts
// failures through that seam — error-after-N, short writes that really
// leave the prefix on disk, byte-budget exhaustion (the disk-full drama in
// miniature), torn renames, and seeded pseudo-random chaos schedules.
//
// Storage failures are typed (store.StorageError names the op and path)
// and divide by what they threaten. A failed WAL append means new writes
// cannot be made durable: the store enters degraded mode — acknowledged
// state stays readable, mutations are rejected with store.ErrDegraded —
// until Recover truncates the log to its durable prefix and verifies the
// disk accepts appends again. A failed compaction threatens nothing (the
// triggering write is already in the log), so it never degrades: every
// exit path leaves the store on a consistent snapshot+log pair whose
// replay converges to the same state. Crash recovery tolerates exactly one
// torn final record and repairs it on open — physically truncating the
// tail so a later append can never merge acknowledged bytes with garbage.
// The crash matrix (internal/store/crash_test.go) walks fault × site
// cells and a seeded-chaos fuzzer asserting one property throughout:
// state after crash-and-reopen equals acknowledged state, exactly.
//
// The serving layer assumes overload and handler bugs are normal weather:
// admission is capped (excess shed with 429 + Retry-After, never queued),
// requests carry deadlines and body caps, panics are contained to a 500,
// and /readyz — distinct from /healthz — reports draining and degraded
// states so load balancers stop sending traffic the process would reject.
// moma-load mirrors the contract with capped-exponential-backoff retries.
// Defaults live in serve.Options; cmd/moma-serve exposes them as flags,
// plus -fault-script to run chaos drills against a live server.
//
// # Repo invariants
//
// Seven cross-cutting invariants hold everywhere in this tree, and
// cmd/moma-vet machine-checks them:
//
//  1. Determinism: no observable output may depend on Go's randomized map
//     iteration order. Loops over maps must not append to outer slices
//     (unless the result is sorted immediately after), call order-sensitive
//     sinks, send on channels, or accumulate floats (addition is not
//     associative). Checker: mapiter.
//  2. Dictionary ownership: read paths never grow a dictionary. A function
//     marked `//moma:readpath` must not reach — through any call chain — an
//     API marked `//moma:interns` (sim.Dict.ID, model.IDDict.Ord, the
//     ProfiledSim.Profile contract). Checker: dictgrowth.
//  3. Columnar integrity: parallel columns move together. A struct doc
//     comment `//moma:parallel f1 f2 ...` declares that the named fields
//     are index-aligned; a function that reassigns a proper subset of them
//     on one receiver desynchronizes the table. Element writes (x.f[i]=v)
//     are always fine. Checker: columns.
//  4. Lock discipline: a field with a `// guarded by mu` (or
//     `//moma:guardedby mu`) comment is only touched while its sibling
//     mutex is visibly held — a `mu.Lock()`/`mu.RLock()` in the same
//     function, or a `//moma:locked mu` doc comment naming the caller's
//     obligation. Checker: guardedby.
//  5. Allocation discipline: a function marked `//moma:noalloc` is a
//     steady-state hot path — a warm call performs zero heap allocations,
//     transitively through everything it calls. One-time growth (lazy
//     builds, first-call buffer sizing) lives behind `//moma:cold <why>`;
//     appends into reused capacity and provably stack-allocated closures
//     carry `//moma:noalloc-ok <why>` and a testing.AllocsPerRun gate
//     (TestResolveAppendZeroAllocs, TestEachCandidateZeroAllocs,
//     TestProfileQueryIntoZeroAllocs). Checker: noalloc.
//  6. Worker-pool discipline: a goroutine launched in a loop writes shared
//     state only by partition-by-index — each worker owns slice slot i and
//     nobody else's, results are read after a visible wg.Wait — and never
//     writes a shared map without holding a lock. Partition-by-index is the
//     blessed parallel-write idiom of this repo: pre-size the results
//     slice, hand worker i index i, join, then reduce sequentially.
//     Checker: workerpool.
//  7. Durability errors are handled: the error of a Close/Sync/Flush/Encode
//     on a persistence-capable sink (anything with Write/Sync in its method
//     set, or any encoder) is never silently dropped — a failed close is
//     the last chance to hear that buffered bytes missed the disk.
//     Read-only fds may suppress with `//moma:errsink-ok <why>`.
//     Checker: errsink.
//
// Run the suite with:
//
//	go run ./cmd/moma-vet ./...          # all seven analyzers
//	go run ./cmd/moma-vet -checks mapiter,guardedby ./internal/store
//	go run ./cmd/moma-vet -list          # enumerate analyzers
//	go run ./cmd/moma-vet -json ./...    # one JSON object per finding (CI)
//	go run ./cmd/moma-vet -suppressions  # audit every suppression + why
//
// Findings exit 1; a clean tree exits 0. CI runs the suite after go vet and
// pipes -json output through a problem matcher, so findings annotate PR
// diffs inline. Suppressions are per-invariant
// (`//moma:nondeterministic-ok <why>`, `//moma:dictgrowth-ok <why>`,
// `//moma:columns-ok <why>`, `//moma:guardedby-ok <why>`,
// `//moma:noalloc-ok <why>`, `//moma:workerpool-ok <why>`,
// `//moma:errsink-ok <why>`) and require a one-line justification — an
// empty justification is itself a finding. Place the suppression on the
// offending line, the line above it, or in the function's doc comment;
// `moma-vet -suppressions` lists them all for review.
//
// moma-vet is a standalone driver, not a `go vet -vettool`: the vettool
// protocol needs golang.org/x/tools' unitchecker and objectpath machinery
// to serialize facts between separately-compiled units, and this repo is
// dependency-free. Instead internal/analysis loads the whole module into
// one shared type universe (`go list -export -deps` for out-of-module
// imports), so cross-package facts are plain in-memory objects and the
// analyzers stay small.
//
// # Benchmarks
//
// The pair-scoring hot path is covered by benchmarks at the repo root:
//
//	go test -bench 'Trigram|AttributeMatcherBlocked|Table2' -benchmem .
//
// BenchmarkAttributeMatcherBlockedUnprofiled pins the pre-profile baseline
// (the measure hidden behind a closure); BenchmarkAttributeMatcherBlocked
// runs the same match on the profiled streaming path, and
// BenchmarkAttributeMatcherStreamWorkers scales the worker count. Set
// MOMA_BENCH_SCALE=paper to run the table benchmarks at the paper's full
// scale. BenchmarkResolve and BenchmarkResolveParallel cover the online
// path: single-record resolution against a warm 10k-instance resolver,
// sequential and under GOMAXPROCS-way concurrency.
package moma

import (
	"repro/internal/block"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/fuse"
	"repro/internal/index"
	"repro/internal/live"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/script"
	"repro/internal/sim"
	"repro/internal/sources"
	"repro/internal/store"
	"repro/internal/tuning"
	"repro/internal/workflow"
)

// Object model (package model).
type (
	// ObjectType names a semantic object type such as Publication.
	ObjectType = model.ObjectType
	// PDS names a physical data source.
	PDS = model.PDS
	// LDS is a logical data source: one object type within one physical
	// source.
	LDS = model.LDS
	// ID identifies an instance within its LDS.
	ID = model.ID
	// Instance is an object instance with attribute values.
	Instance = model.Instance
	// ObjectSet is a set of instances of one LDS.
	ObjectSet = model.ObjectSet
	// SMM is the source-mapping model (schema-level registry).
	SMM = model.SMM
	// MappingDecl declares a mapping type between two logical sources.
	MappingDecl = model.MappingDecl
	// Cardinality classifies association cardinality (1:n, n:1, n:m).
	Cardinality = model.Cardinality
	// MappingType names mapping semantics; SameMappingType marks
	// same-mappings.
	MappingType = model.MappingType
	// IDDict is the interned instance-ID dictionary backing columnar
	// mapping tables (ordinals are dense, first-seen, append-only).
	IDDict = model.IDDict
)

// Object-model constructors and constants.
var (
	NewInstance  = model.NewInstance
	NewObjectSet = model.NewObjectSet
	NewSMM       = model.NewSMM
	ParseLDS     = model.ParseLDS
	// NewIDDict returns a private ID dictionary for mappings that should
	// not share the process-global ordinal space (see NewMappingWithDict).
	NewIDDict = model.NewIDDict
)

// Common object types and cardinalities.
const (
	Publication = model.Publication
	Author      = model.Author
	Venue       = model.Venue

	SameMappingType = model.SameMappingType

	CardOneToOne   = model.CardOneToOne
	CardOneToMany  = model.CardOneToMany
	CardManyToOne  = model.CardManyToOne
	CardManyToMany = model.CardManyToMany
)

// Mappings and operators (package mapping).
type (
	// Mapping is an instance-level mapping table.
	Mapping = mapping.Mapping
	// Correspondence is one (domain, range, sim) row.
	Correspondence = mapping.Correspondence
	// Combiner configures the similarity combination function f.
	Combiner = mapping.Combiner
	// CombinerKind enumerates Avg/Min/Max/Weighted/Prefer.
	CombinerKind = mapping.CombinerKind
	// PathAgg enumerates compose path aggregations (Relative & friends).
	PathAgg = mapping.PathAgg
	// Selection filters correspondences (§3.3).
	Selection = mapping.Selection
	// Threshold keeps correspondences at or above T.
	Threshold = mapping.Threshold
	// BestN keeps the top-n correspondences per instance.
	BestN = mapping.BestN
	// Best1Delta keeps the best correspondence plus near-ties.
	Best1Delta = mapping.Best1Delta
	// Constraint applies an object-value constraint.
	Constraint = mapping.Constraint
	// Side selects the grouping side of per-instance selections.
	Side = mapping.Side
)

// Mapping constructors, operators and constants.
var (
	NewMapping         = mapping.New
	NewMappingWithDict = mapping.NewWithDict
	NewSameMapping     = mapping.NewSame
	IdentityOf         = mapping.Identity
	Merge              = mapping.Merge
	Compose            = mapping.Compose
	ComposeChain       = mapping.ComposeChain
	YearConstraint     = mapping.YearConstraint

	AvgCombiner      = mapping.AvgCombiner
	Avg0Combiner     = mapping.Avg0Combiner
	MinCombiner      = mapping.MinCombiner
	Min0Combiner     = mapping.Min0Combiner
	MaxCombiner      = mapping.MaxCombiner
	PreferCombiner   = mapping.PreferCombiner
	WeightedCombiner = mapping.WeightedCombiner
)

// Compose path aggregations and selection sides.
const (
	AggAvg           = mapping.AggAvg
	AggMin           = mapping.AggMin
	AggMax           = mapping.AggMax
	AggRelative      = mapping.AggRelative
	AggRelativeLeft  = mapping.AggRelativeLeft
	AggRelativeRight = mapping.AggRelativeRight

	DomainSide = mapping.DomainSide
	RangeSide  = mapping.RangeSide
	BothSides  = mapping.BothSides

	KindAvg      = mapping.Avg
	KindMin      = mapping.Min
	KindMax      = mapping.Max
	KindWeighted = mapping.Weighted
	KindPrefer   = mapping.Prefer
)

// Similarity functions (package sim).
type (
	// SimFunc scores two strings in [0,1].
	SimFunc = sim.Func
	// SimRegistry resolves similarity functions by name.
	SimRegistry = sim.Registry
	// TFIDF is a corpus model for TF-IDF cosine similarity.
	TFIDF = sim.TFIDF
	// SimProfile caches the derived forms of one attribute value.
	SimProfile = sim.Profile
	// ProfiledSim is a measure split into per-value profiling and
	// pair scoring; built-ins are resolved via ProfiledOf.
	ProfiledSim = sim.ProfiledSim
	// SimPairFunc scores a pair of precomputed profiles.
	SimPairFunc = sim.PairFunc
)

// Built-in similarity functions.
var (
	Trigram     = sim.Trigram
	NGramDice   = sim.NGramDice
	Levenshtein = sim.Levenshtein
	Jaro        = sim.Jaro
	JaroWinkler = sim.JaroWinkler
	Affix       = sim.Affix
	TokenJacc   = sim.TokenJaccard
	MongeElkan  = sim.MongeElkanJaroWinkler
	PersonName  = sim.PersonName
	YearSim     = sim.YearSim
	YearExact   = sim.YearExact
	// NumericProximity builds a measure decaying linearly with |a-b|/scale
	// — useful for prices, page counts or other numeric attributes.
	NumericProximity = sim.NumericProximity

	NewSimRegistry = sim.NewRegistry
	NewTFIDF       = sim.NewTFIDF
	// ProfiledOf resolves the profiled twin of a built-in measure.
	ProfiledOf = sim.ProfiledOf
)

// Matchers (package match) and blocking (package block).
type (
	// Matcher produces a same-mapping between two object sets.
	Matcher = match.Matcher
	// AttributeMatcher is the generic attribute matcher of §2.2.
	AttributeMatcher = match.Attribute
	// MultiAttributeMatcher combines several attribute pairs.
	MultiAttributeMatcher = match.MultiAttribute
	// AttrPair configures one comparison of the multi-attribute matcher.
	AttrPair = match.AttrPair
	// TFIDFMatcher matches one attribute pair under TF-IDF cosine.
	TFIDFMatcher = match.TFIDFAttribute
	// NeighborhoodMatcher wraps nhMatch as a Matcher.
	NeighborhoodMatcher = match.Neighborhood
	// MatcherRegistry is the extensible matcher library.
	MatcherRegistry = match.Registry
	// ConfigurableWorkers is a matcher whose scoring parallelism can be set
	// externally (the workflow engine's Workers field uses it).
	ConfigurableWorkers = match.ConfigurableWorkers
	// Blocker generates candidate pairs, as a slice (Pairs) or streamed
	// one at a time (PairsEach).
	Blocker = block.Blocker
	// Pair is one candidate pair of instance ids.
	Pair = block.Pair
	// CrossProduct compares all pairs.
	CrossProduct = block.CrossProduct
	// TokenBlocking pairs instances sharing attribute tokens.
	TokenBlocking = block.TokenBlocking
	// SortedNeighborhood is the classic windowed blocking method.
	SortedNeighborhood = block.SortedNeighborhood
)

// Matcher helpers.
var (
	NhMatch            = match.NhMatch
	NhMatchAgg         = match.NhMatchAgg
	NewNeighborhood    = match.NewNeighborhood
	CoAuthorDedup      = match.CoAuthorDedup
	NewMatcherRegistry = match.NewRegistry
)

// Repository, cache and persistence (package store).
type (
	// Store is a named mapping collection (repository or cache).
	Store = store.Store
	// JoinAlgorithm selects hash vs sort-merge join for compose.
	JoinAlgorithm = store.JoinAlgorithm
)

// Store constructors and helpers.
var (
	NewRepository     = store.NewRepository
	NewCache          = store.NewCache
	OpenRepository    = store.OpenRepository
	ComposeVia        = store.ComposeVia
	WriteMappingCSV   = store.WriteMappingCSV
	ReadMappingCSV    = store.ReadMappingCSV
	WriteObjectSetCSV = store.WriteObjectSetCSV
	ReadObjectSetCSV  = store.ReadObjectSetCSV
)

// Join algorithms.
const (
	HashJoin      = store.HashJoin
	SortMergeJoin = store.SortMergeJoin
)

// Workflows (package workflow).
type (
	// Workflow is a named sequence of match steps.
	Workflow = workflow.Workflow
	// WorkflowStep is one step: matcher executions plus a combiner.
	WorkflowStep = workflow.Step
	// Engine executes workflows against repository and cache.
	Engine = workflow.Engine
)

// Workflow constructors.
var (
	NewWorkflow = workflow.New
	NewEngine   = workflow.NewEngine
	MergeStep   = workflow.MergeStep
	ComposeStep = workflow.ComposeStep
)

// Workflow step operators.
const (
	OpMerge   = workflow.OpMerge
	OpCompose = workflow.OpCompose
)

// Scripts (package script).
type (
	// Script is a parsed iFuice-style program.
	Script = script.Script
	// Interp executes scripts against an environment.
	Interp = script.Interp
	// Binding is the standard script environment.
	Binding = script.Binding
	// Value is a script value (mapping, object set, number, string).
	Value = script.Value
)

// Script helpers.
var (
	ParseScript     = script.Parse
	NewInterp       = script.New
	NewBinding      = script.NewBinding
	ParseConstraint = script.ParseConstraint
)

// Evaluation (package eval).
type (
	// Result carries precision, recall and F-measure.
	Result = eval.Result
	// Table renders paper-style result tables.
	Table = eval.Table
)

// Evaluation helpers.
var (
	Compare        = eval.Compare
	CompareGrouped = eval.CompareGrouped
	NewTable       = eval.NewTable
)

// Fusion (package fuse).
type (
	// Fuser enriches a base set with attributes of matched instances.
	Fuser = fuse.Fuser
	// FuseRule fuses one attribute under an aggregation.
	FuseRule = fuse.Rule
)

// Fusion helpers.
var (
	NewFuser     = fuse.NewFuser
	Traverse     = fuse.Traverse
	FirstValue   = fuse.First
	MaxNumeric   = fuse.MaxNumeric
	SumNumeric   = fuse.SumNumeric
	LongestValue = fuse.Longest
)

// Duplicate clustering (package cluster).
type (
	// UnionFind is a disjoint-set forest over instance ids.
	UnionFind = cluster.UnionFind
	// Cluster is one duplicate cluster.
	Cluster = cluster.Cluster
)

// Clustering helpers.
var (
	NewUnionFind      = cluster.NewUnionFind
	ClustersOf        = cluster.FromMapping
	SelfMapping       = cluster.SelfMapping
	TransitiveClosure = cluster.TransitiveClosure
)

// Self-tuning (package tuning).
type (
	// TuningSpace is a grid of matcher configurations.
	TuningSpace = tuning.Space
	// TuningOutcome pairs a configuration with its result.
	TuningOutcome = tuning.Outcome
	// DecisionTree is a CART match classifier.
	DecisionTree = tuning.Tree
	// TreeMatcher wraps a learned tree as a Matcher.
	TreeMatcher = tuning.TreeMatcher
)

// Tuning helpers.
var (
	GridSearch = tuning.GridSearch
	BestTuning = tuning.Best
	LearnTree  = tuning.LearnTree
)

// Online resolution (package live).
type (
	// LiveResolver answers single-record match queries against a resident,
	// incrementally-maintained object set.
	LiveResolver = live.Resolver
	// LiveConfig configures a LiveResolver (blocking, columns, threshold).
	LiveConfig = live.Config
	// LiveColumn configures one scored attribute comparison.
	LiveColumn = live.Column
	// LiveMatch is one resolution result.
	LiveMatch = live.Match
	// LiveStats summarizes a resolver's resident state.
	LiveStats = live.Stats
)

// NewLiveResolver builds a resolver over an object set; System's
// RegisterResolver wires one to a registered set by name.
var NewLiveResolver = live.NewResolver

// Search index (package index).
type (
	// Index is an inverted index with TF-IDF top-k retrieval.
	Index = index.Index
	// Hit is one search result.
	Hit = index.Hit
)

// NewIndex returns an empty inverted index.
var NewIndex = index.New

// Synthetic bibliographic world (package sources) — the evaluation
// substrate substituting for DBLP / ACM DL / Google Scholar.
type (
	// DatasetConfig controls synthetic world generation.
	DatasetConfig = sources.Config
	// Dataset is the generated evaluation setting.
	Dataset = sources.Dataset
	// DataSource is one derived physical source.
	DataSource = sources.Source
	// GSQuery is the query-only access path to the GS simulation.
	GSQuery = sources.GSQuery
)

// Dataset helpers.
var (
	PaperConfig     = sources.PaperConfig
	SmallConfig     = sources.SmallConfig
	GenerateDataset = sources.Generate
	NewGSQuery      = sources.NewGSQuery
)
