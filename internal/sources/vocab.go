package sources

// Word pools for synthetic publication titles and author names. The pools
// are large enough that independently drawn titles collide only rarely;
// deliberate collisions (conference/journal twins, recurring newsletter
// columns) are injected explicitly by the generator.

var titleAdjectives = []string{
	"Efficient", "Scalable", "Adaptive", "Robust", "Incremental",
	"Distributed", "Approximate", "Online", "Parallel", "Secure",
	"Declarative", "Dynamic", "Flexible", "Generic", "Optimal",
	"Practical", "Probabilistic", "Self-Tuning", "Semantic", "Unified",
}

var titleNouns = []string{
	"Query Processing", "Plan Enumeration", "Index Maintenance",
	"Join Evaluation", "View Selection", "Data Integration",
	"Schema Matching", "Duplicate Elimination", "Transaction Scheduling",
	"Concurrency Control", "Access Authorization", "Similarity Search",
	"Top-k Ranking", "Entity Resolution", "Load Shedding",
	"Cache Replacement", "Buffer Allocation", "Rewrite Transformation",
	"Cost Prediction", "Cardinality Estimation", "Horizontal Partitioning",
	"Replica Placement", "Crash Recovery", "Version Reconciliation",
	"Workload Characterization", "Catalog Evolution", "Containment Checking",
	"Provenance Tracking", "Result Diversification", "Selectivity Inference",
	"Predicate Pushdown", "Aggregate Computation", "Change Propagation",
	"Constraint Validation", "Storage Organization", "Lock Escalation",
	"Histogram Construction", "Cursor Stability", "Snapshot Isolation",
	"Deadlock Avoidance",
}

var titleTopics = []string{
	"XML Documents", "Streaming Tuples", "Sensor Readings", "Web Services",
	"OLAP Cubes", "Spatial Trajectories", "Temporal Databases",
	"Semistructured Repositories", "Relational Engines", "Object Hierarchies",
	"Peer-to-Peer Overlays", "Federated Warehouses", "Text Corpora",
	"Moving Objects", "Graph Collections", "Scientific Archives",
	"Genomic Sequences", "Multimedia Assets", "Digital Libraries",
	"Heterogeneous Catalogs", "Mediation Layers", "Main-Memory Structures",
	"Parallel Clusters", "Mobile Clients", "Wide-Area Mirrors",
	"Uncertain Measurements", "Ranked Listings", "Compressed Segments",
	"Massive Logs", "Interactive Dashboards", "Append-Only Journals",
	"Columnar Files", "Key-Value Shards", "Versioned Filestores",
	"Continuous Feeds", "Archival Vaults", "Tertiary Media",
	"Shared-Nothing Fabrics", "Disk Farms", "Nested Records",
}

var titleMethods = []string{
	"Bloom Filters", "B-Trees", "Histograms", "Sampling", "Caching",
	"Materialized Views", "Bitmap Indexes", "Hash Partitioning",
	"Signature Files", "Suffix Arrays", "Wavelets", "Sketches",
	"Machine Learning", "Integer Programming", "Randomized Algorithms",
	"Cost Models", "Feedback Control", "Lazy Evaluation",
	"Batch Processing", "Pipelined Execution", "Dynamic Programming",
	"Gossip Protocols", "Merkle Trees", "Skip Lists", "Tries",
	"Reservoir Sampling", "Locality-Sensitive Hashing", "Run-Length Encoding",
	"Dictionary Compression", "Copy-on-Write Snapshots", "Quorum Consensus",
	"Write-Ahead Logging",
}

var titleProperties = []string{
	"Complexity", "Expressiveness", "Completeness", "Consistency",
	"Scalability", "Correctness", "Composability", "Tractability",
	"Optimality", "Robustness",
}

// recurringColumns are the newsletter columns that recur across SIGMOD
// Record issues with identical titles, the precision hazard §5.4.2 calls
// out ("editorials, reminiscences on influential papers or interviews").
var recurringColumns = []string{
	"Editor's Notes",
	"Reminiscences on Influential Papers",
	"Interview with a Database Pioneer",
	"Report on the Workshop on Data Integration",
	"Chair's Message",
	"Research Surveys Column",
}

var firstNames = []string{
	"James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael",
	"Linda", "David", "Elizabeth", "William", "Barbara", "Richard", "Susan",
	"Joseph", "Jessica", "Thomas", "Sarah", "Charles", "Karen", "Erhard",
	"Andreas", "Hong", "Wei", "Xin", "Li", "Chen", "Yuki", "Hiroshi",
	"Kenji", "Anna", "Maria", "Elena", "Olga", "Ivan", "Dmitri", "Sergei",
	"Pierre", "Jean", "Michel", "Claire", "Sophie", "Hans", "Karl", "Fritz",
	"Heike", "Ingrid", "Giovanni", "Marco", "Paolo", "Lucia", "Carlos",
	"Miguel", "Ana", "Jorge", "Raj", "Anil", "Sunita", "Divesh", "Surajit",
	"Hector", "Alon", "Dan", "Laura", "Rachel", "Samuel", "Benjamin",
	"Daniel", "Matthew", "Andrew", "Joshua", "Kevin", "Brian", "George",
	"Edward", "Ronald", "Timothy", "Jason", "Jeffrey", "Ryan", "Jacob",
	"Gary", "Nicholas", "Eric", "Jonathan", "Stephen", "Larry", "Justin",
	"Scott", "Brandon", "Frank", "Gregory", "Raymond", "Alexander",
	"Patrick", "Jack", "Dennis", "Jerry", "Tyler", "Agathoniki", "Catalina",
	"Amir", "Magdalena", "Volker", "Theodoros", "Panagiotis", "Nikos",
	"Christos", "Yannis", "Dimitris", "Timos", "Gerhard", "Guido", "Peter",
	"Klaus", "Martin", "Stefan", "Thorsten", "Ulf",
}

var lastNames = []string{
	"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
	"Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
	"Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
	"Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
	"Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
	"Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
	"Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
	"Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz",
	"Parker", "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris",
	"Morales", "Murphy", "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan",
	"Cooper", "Peterson", "Bailey", "Reed", "Kelly", "Howard", "Ramos",
	"Kim", "Cox", "Ward", "Richardson", "Watson", "Brooks", "Chavez",
	"Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
	"Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long",
	"Ross", "Foster", "Jimenez", "Rahm", "Thor", "Chen", "Wang", "Zhang",
	"Liu", "Yang", "Huang", "Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu",
	"Guo", "Lin", "Luo", "Zheng", "Liang", "Tang", "Mueller", "Schmidt",
	"Schneider", "Fischer", "Weber", "Meyer", "Wagner", "Becker", "Schulz",
	"Hoffmann", "Koch", "Bauer", "Richter", "Klein", "Wolf", "Neumann",
	"Schwarz", "Zimmermann", "Braun", "Krueger", "Trigoni", "Zarkesh",
	"Barczyc", "Fan", "Wei", "Yuen", "Kossmann", "Haas", "Halevy",
	"Widom", "Ullman", "Bernstein", "Stonebraker", "DeWitt", "Gray",
	"Naughton", "Carey", "Franklin", "Hellerstein", "Ioannidis", "Abiteboul",
	"Buneman", "Suciu", "Vianu", "Lenzerini", "Ceri", "Atzeni", "Catarci",
	"Mecca", "Papakonstantinou", "Garcia-Molina", "Chaudhuri", "Ganti",
	"Agrawal", "Srikant", "Faloutsos", "Salzberg", "Lomet", "Mohan",
	"Weikum", "Kemper", "Moerkotte", "Seeger", "Kriegel", "Sellis",
	"Roussopoulos", "Christodoulakis", "Jagadish", "Shasha", "Ramakrishnan",
	"Gehrke", "Kifer", "Silberschatz", "Korth", "Sudarshan", "Navathe",
	"Elmasri", "Snodgrass", "Tansel", "Clifford", "Gadia", "Jensen",
	"Boehlen", "Dyreson", "Soo",
}
