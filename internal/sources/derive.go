package sources

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Source bundles one physical data source: its object sets plus the
// association mappings that "already exist in data sources and can thus be
// utilized for object matching" (§2.2) — publication lists per venue and
// author, and the co-author relationship.
type Source struct {
	Name    model.PDS
	Pubs    *model.ObjectSet
	Authors *model.ObjectSet
	Venues  *model.ObjectSet // nil for Google Scholar

	VenuePub  *mapping.Mapping // nil for Google Scholar
	PubVenue  *mapping.Mapping // nil for Google Scholar
	AuthorPub *mapping.Mapping
	PubAuthor *mapping.Mapping
	CoAuthor  *mapping.Mapping // nil for Google Scholar
}

// Perfect holds the ground-truth same-mappings the evaluation compares
// against — the generator's replacement for the paper's "manually
// determined perfect mappings" (§5.1).
type Perfect struct {
	PubDBLPACM     *mapping.Mapping
	PubDBLPGS      *mapping.Mapping
	PubGSACM       *mapping.Mapping
	VenueDBLPACM   *mapping.Mapping
	AuthorDBLPACM  *mapping.Mapping
	AuthorDupsDBLP *mapping.Mapping
}

// Dataset is the full generated evaluation setting.
type Dataset struct {
	Cfg   Config
	World *World

	DBLP *Source
	ACM  *Source
	GS   *Source

	// GSLinksACM is the pre-existing low-recall GS->ACM link mapping
	// ("Google Scholar links its publications to ACM", §2.2/§5.3).
	GSLinksACM *mapping.Mapping

	Perfect Perfect
}

// Standard logical sources of the generated world.
var (
	DBLPPub = model.LDS{Source: "DBLP", Type: model.Publication}
	DBLPAut = model.LDS{Source: "DBLP", Type: model.Author}
	DBLPVen = model.LDS{Source: "DBLP", Type: model.Venue}
	ACMPub  = model.LDS{Source: "ACM", Type: model.Publication}
	ACMAut  = model.LDS{Source: "ACM", Type: model.Author}
	ACMVen  = model.LDS{Source: "ACM", Type: model.Venue}
	GSPub   = model.LDS{Source: "GS", Type: model.Publication}
	GSAut   = model.LDS{Source: "GS", Type: model.Author}
)

// Generate builds the world for cfg and derives the three sources with
// their dirtiness plus all perfect mappings.
func Generate(cfg Config) *Dataset {
	return Derive(GenerateWorld(cfg))
}

// Derive derives the physical sources from a generated world. Derivation
// uses its own rng stream (Seed+1) so world generation stays independent of
// dirtiness decisions.
func Derive(w *World) *Dataset {
	rng := rand.New(rand.NewSource(w.Cfg.Seed + 1))
	d := &Dataset{Cfg: w.Cfg, World: w}
	dd := newDeriver(w, rng)
	d.DBLP = dd.deriveDBLP()
	d.ACM = dd.deriveACM()
	d.GS, d.GSLinksACM = dd.deriveGS()
	d.Perfect = dd.perfect
	return d
}

// deriver carries the shared id bookkeeping between source derivations.
type deriver struct {
	w   *World
	rng *rand.Rand

	// id lookups: truth index -> instance id per source.
	dblpPubID map[int]model.ID
	dblpVenID map[int]model.ID
	dblpAutID map[int]model.ID // primary spelling
	dblpAltID map[int]model.ID // duplicate spelling
	acmPubID  map[int]model.ID
	acmVenID  map[int]model.ID
	acmAutID  map[int]model.ID
	acmVarID  map[int]model.ID
	acmHasPub map[int]bool

	perfect Perfect
}

func newDeriver(w *World, rng *rand.Rand) *deriver {
	return &deriver{
		w: w, rng: rng,
		dblpPubID: make(map[int]model.ID),
		dblpVenID: make(map[int]model.ID),
		dblpAutID: make(map[int]model.ID),
		dblpAltID: make(map[int]model.ID),
		acmPubID:  make(map[int]model.ID),
		acmVenID:  make(map[int]model.ID),
		acmAutID:  make(map[int]model.ID),
		acmVarID:  make(map[int]model.ID),
		acmHasPub: make(map[int]bool),
	}
}

// venueDBLPID builds DBLP's hierarchical venue keys.
func venueDBLPID(v *VenueTruth) model.ID {
	if v.Kind == Conference {
		return model.ID(fmt.Sprintf("conf/%s/%d", v.slug(), v.Year))
	}
	return model.ID(fmt.Sprintf("journals/%s/%d-%d", v.slug(), v.Volume, v.Issue))
}

// renderAuthors joins author display names.
func renderAuthors(names []string) string { return strings.Join(names, ", ") }

// deriveDBLP materializes the curated, complete DBLP source.
func (dd *deriver) deriveDBLP() *Source {
	w := dd.w
	s := &Source{
		Name:      "DBLP",
		Pubs:      model.NewObjectSet(DBLPPub),
		Authors:   model.NewObjectSet(DBLPAut),
		Venues:    model.NewObjectSet(DBLPVen),
		VenuePub:  mapping.New(DBLPVen, DBLPPub, "VenuePub"),
		PubVenue:  mapping.New(DBLPPub, DBLPVen, "PubVenue"),
		AuthorPub: mapping.New(DBLPAut, DBLPPub, "AuthorPub"),
		PubAuthor: mapping.New(DBLPPub, DBLPAut, "PubAuthor"),
		CoAuthor:  mapping.New(DBLPAut, DBLPAut, "CoAuthor"),
	}
	for _, v := range w.Venues {
		id := venueDBLPID(v)
		dd.dblpVenID[v.Idx] = id
		s.Venues.AddNew(id, map[string]string{
			"name":   v.DBLPName(),
			"kind":   string(v.Kind),
			"series": v.Series,
			"year":   fmt.Sprint(v.Year),
		})
	}
	for _, a := range w.Authors {
		id := model.ID(fmt.Sprintf("dblp:a:%05d", a.Idx))
		dd.dblpAutID[a.Idx] = id
		s.Authors.AddNew(id, map[string]string{"name": a.Name()})
		if a.DupSpelling != "" {
			alt := model.ID(fmt.Sprintf("dblp:a:%05db", a.Idx))
			dd.dblpAltID[a.Idx] = alt
			s.Authors.AddNew(alt, map[string]string{"name": a.DupSpelling})
		}
	}
	perVenue := make(map[int]int)
	dupSeen := make(map[int]int) // alternating spelling assignment per dup author
	for _, p := range w.Pubs {
		venID := dd.dblpVenID[p.Venue.Idx]
		perVenue[p.Venue.Idx]++
		id := model.ID(fmt.Sprintf("%s/p%d", venID, perVenue[p.Venue.Idx]))
		dd.dblpPubID[p.Idx] = id

		// Choose the spelling each duplicate author uses on this paper.
		// Alternating guarantees both spellings actually occur, which is
		// what makes duplicates detectable via shared co-authors.
		var names []string
		var autIDs []model.ID
		for _, a := range p.Authors {
			autID := dd.dblpAutID[a.Idx]
			name := a.Name()
			if a.DupSpelling != "" {
				if dupSeen[a.Idx]%2 == 1 {
					autID = dd.dblpAltID[a.Idx]
					name = a.DupSpelling
				}
				dupSeen[a.Idx]++
			}
			names = append(names, name)
			autIDs = append(autIDs, autID)
		}
		s.Pubs.AddNew(id, map[string]string{
			"title":   p.Title,
			"year":    fmt.Sprint(p.Year),
			"pages":   fmt.Sprintf("%d-%d", p.PageFrom, p.PageTo),
			"authors": renderAuthors(names),
			"venue":   p.Venue.DBLPName(),
			"kind":    string(p.Venue.Kind),
		})
		s.VenuePub.Add(venID, id, 1)
		s.PubVenue.Add(id, venID, 1)
		for i, autID := range autIDs {
			s.AuthorPub.Add(autID, id, 1)
			s.PubAuthor.Add(id, autID, 1)
			for j, other := range autIDs {
				if i != j && autID != other {
					s.CoAuthor.AddMax(autID, other, 1)
				}
			}
		}
	}
	// Perfect duplicate-author mapping (Table 9 ground truth), symmetric.
	// Rows are added in ascending world index so the mapping's row order is
	// a pure function of the seed.
	dups := mapping.NewSame(DBLPAut, DBLPAut)
	for _, idx := range sortedIntKeys(dd.dblpAltID) {
		alt := dd.dblpAltID[idx]
		prim := dd.dblpAutID[idx]
		dups.Add(prim, alt, 1)
		dups.Add(alt, prim, 1)
	}
	dd.perfect.AuthorDupsDBLP = dups
	return s
}

// deriveACM materializes ACM DL: complete per-venue lists but missing the
// configured VLDB years, an exact-count random trim, light title noise and
// author name variants.
func (dd *deriver) deriveACM() *Source {
	w := dd.w
	s := &Source{
		Name:      "ACM",
		Pubs:      model.NewObjectSet(ACMPub),
		Authors:   model.NewObjectSet(ACMAut),
		Venues:    model.NewObjectSet(ACMVen),
		VenuePub:  mapping.New(ACMVen, ACMPub, "VenuePub"),
		PubVenue:  mapping.New(ACMPub, ACMVen, "PubVenue"),
		AuthorPub: mapping.New(ACMAut, ACMPub, "AuthorPub"),
		PubAuthor: mapping.New(ACMPub, ACMAut, "PubAuthor"),
		CoAuthor:  mapping.New(ACMAut, ACMAut, "CoAuthor"),
	}
	droppedYear := make(map[int]bool)
	for _, y := range w.Cfg.ACMDropVLDBYears {
		droppedYear[y] = true
	}
	venueDropped := func(v *VenueTruth) bool {
		return v.Kind == Conference && v.Series == "VLDB" && droppedYear[v.Year]
	}
	for _, v := range w.Venues {
		if venueDropped(v) {
			continue
		}
		id := model.ID(fmt.Sprintf("V-%06d", 600000+v.Idx))
		dd.acmVenID[v.Idx] = id
		s.Venues.AddNew(id, map[string]string{
			"name":   v.ACMName(),
			"kind":   string(v.Kind),
			"series": v.Series,
			"year":   fmt.Sprint(v.Year),
		})
	}
	for _, a := range w.Authors {
		id := model.ID(fmt.Sprintf("A-%05d", a.Idx))
		dd.acmAutID[a.Idx] = id
		s.Authors.AddNew(id, map[string]string{"name": a.Name()})
		if a.ACMVariant != "" {
			vid := model.ID(fmt.Sprintf("A-%05dv", a.Idx))
			dd.acmVarID[a.Idx] = vid
			s.Authors.AddNew(vid, map[string]string{"name": a.ACMVariant})
		}
	}

	// Select included publications: everything outside dropped venues,
	// then trim randomly to the exact target.
	var included []*PubTruth
	for _, p := range w.Pubs {
		if !venueDropped(p.Venue) {
			included = append(included, p)
		}
	}
	if target := w.Cfg.ACMTargetPublications; target > 0 && len(included) > target {
		dd.rng.Shuffle(len(included), func(i, j int) { included[i], included[j] = included[j], included[i] })
		included = included[:target]
		sort.Slice(included, func(i, j int) bool { return included[i].Idx < included[j].Idx })
	} else if w.Cfg.ACMTargetPublications == 0 && w.Cfg.ACMExtraDropRate > 0 {
		kept := included[:0]
		for _, p := range included {
			if dd.rng.Float64() >= w.Cfg.ACMExtraDropRate {
				kept = append(kept, p)
			}
		}
		included = kept
	}

	for _, p := range included {
		id := model.ID(fmt.Sprintf("P-%06d", 600000+p.Idx))
		dd.acmPubID[p.Idx] = id
		dd.acmHasPub[p.Idx] = true
		title := p.Title
		if dd.rng.Float64() < w.Cfg.ACMTitleTypoRate {
			title = corruptACMTitle(dd.rng, title)
		}
		var names []string
		var autIDs []model.ID
		for _, a := range p.Authors {
			autID := dd.acmAutID[a.Idx]
			name := a.Name()
			if a.ACMVariant != "" && dd.rng.Float64() < 0.5 {
				autID = dd.acmVarID[a.Idx]
				name = a.ACMVariant
			}
			names = append(names, name)
			autIDs = append(autIDs, autID)
		}
		citations := p.Citations + dd.rng.Intn(3)
		venID := dd.acmVenID[p.Venue.Idx]
		s.Pubs.AddNew(id, map[string]string{
			"name":      title,
			"year":      fmt.Sprint(p.Year),
			"citations": fmt.Sprint(citations),
			"authors":   renderAuthors(names),
			"venue":     p.Venue.ACMName(),
			"kind":      string(p.Venue.Kind),
		})
		s.VenuePub.Add(venID, id, 1)
		s.PubVenue.Add(id, venID, 1)
		for i, autID := range autIDs {
			s.AuthorPub.Add(autID, id, 1)
			s.PubAuthor.Add(id, autID, 1)
			for j, other := range autIDs {
				if i != j && autID != other {
					s.CoAuthor.AddMax(autID, other, 1)
				}
			}
		}
	}

	// Perfect DBLP-ACM mappings, rows in ascending world index for
	// seed-deterministic row order.
	pubSame := mapping.NewSame(DBLPPub, ACMPub)
	for _, idx := range sortedIntKeys(dd.acmPubID) {
		pubSame.Add(dd.dblpPubID[idx], dd.acmPubID[idx], 1)
	}
	dd.perfect.PubDBLPACM = pubSame

	venSame := mapping.NewSame(DBLPVen, ACMVen)
	for _, idx := range sortedIntKeys(dd.acmVenID) {
		venSame.Add(dd.dblpVenID[idx], dd.acmVenID[idx], 1)
	}
	dd.perfect.VenueDBLPACM = venSame

	autSame := mapping.NewSame(DBLPAut, ACMAut)
	for _, a := range w.Authors {
		dblpIDs := []model.ID{dd.dblpAutID[a.Idx]}
		if alt, ok := dd.dblpAltID[a.Idx]; ok {
			dblpIDs = append(dblpIDs, alt)
		}
		acmIDs := []model.ID{dd.acmAutID[a.Idx]}
		if v, ok := dd.acmVarID[a.Idx]; ok {
			acmIDs = append(acmIDs, v)
		}
		for _, d := range dblpIDs {
			for _, m := range acmIDs {
				autSame.Add(d, m, 1)
			}
		}
	}
	dd.perfect.AuthorDBLPACM = autSame
	return s
}

// deriveGS materializes the Google Scholar simulation: duplicate entries
// per publication with heavy extraction noise, merged title twins, noise
// documents, initial-only truncated author lists, and the pre-existing
// low-recall link mapping to ACM.
func (dd *deriver) deriveGS() (*Source, *mapping.Mapping) {
	w := dd.w
	s := &Source{
		Name:      "GS",
		Pubs:      model.NewObjectSet(GSPub),
		Authors:   model.NewObjectSet(GSAut),
		AuthorPub: mapping.New(GSAut, GSPub, "AuthorPub"),
		PubAuthor: mapping.New(GSPub, GSAut, "PubAuthor"),
	}
	links := mapping.NewSame(GSPub, ACMPub)
	pubDBLPGS := mapping.NewSame(DBLPPub, GSPub)
	pubGSACM := mapping.NewSame(GSPub, ACMPub)

	gsAuthorID := make(map[string]model.ID)
	var nextAuthor int
	authorID := func(name string) model.ID {
		if id, ok := gsAuthorID[name]; ok {
			return id
		}
		id := model.ID(fmt.Sprintf("gs:a:%06d", nextAuthor))
		nextAuthor++
		gsAuthorID[name] = id
		s.Authors.AddNew(id, map[string]string{"name": name})
		return id
	}

	var nextEntry int
	newEntry := func(truths []*PubTruth) model.ID {
		p := truths[0]
		id := model.ID(fmt.Sprintf("gs:%06d", nextEntry))
		nextEntry++
		title := corruptGSTitle(dd.rng, p.Title, w.Cfg)
		// Possibly truncated, initial-only author list.
		authors := p.Authors
		if len(authors) > 1 && dd.rng.Float64() < w.Cfg.GSAuthorTruncateRate {
			keep := 1 + dd.rng.Intn(len(authors))
			authors = authors[:keep]
		}
		var names []string
		var autIDs []model.ID
		for _, a := range authors {
			n := gsAuthorName(a.Name())
			names = append(names, n)
			autIDs = append(autIDs, authorID(n))
		}
		attrs := map[string]string{
			"title":     title,
			"authors":   renderAuthors(names),
			"venue":     mangleVenue(dd.rng, p.Venue),
			"citations": fmt.Sprint(p.Citations + dd.rng.Intn(15)),
		}
		if dd.rng.Float64() >= w.Cfg.GSMissingYearRate {
			attrs["year"] = fmt.Sprint(p.Year)
		}
		s.Pubs.AddNew(id, attrs)
		for _, autID := range autIDs {
			s.AuthorPub.Add(autID, id, 1)
			s.PubAuthor.Add(id, autID, 1)
		}
		// Perfect rows: the entry corresponds to every truth publication it
		// represents (two for merged twins), on both the DBLP and ACM side.
		for _, t := range truths {
			pubDBLPGS.Add(dd.dblpPubID[t.Idx], id, 1)
			if acmID, ok := dd.acmPubID[t.Idx]; ok {
				pubGSACM.Add(id, acmID, 1)
				if dd.rng.Float64() < w.Cfg.GSLinkRecall {
					links.Add(id, acmID, 1)
				}
			}
		}
		return id
	}

	// Twin merge decisions: journal twins merged into the conference
	// entry's records share GS entries.
	mergedInto := make(map[int]bool) // twin pub idx -> merged
	for _, p := range w.Pubs {
		if p.TwinOf >= 0 && dd.rng.Float64() < w.Cfg.GSMergeTwinRate {
			mergedInto[p.Idx] = true
		}
	}
	twinsOf := make(map[int][]*PubTruth)
	for _, p := range w.Pubs {
		if p.TwinOf >= 0 && mergedInto[p.Idx] {
			twinsOf[p.TwinOf] = append(twinsOf[p.TwinOf], p)
		}
	}

	for _, p := range w.Pubs {
		if p.TwinOf >= 0 && mergedInto[p.Idx] {
			continue // represented by the conference paper's entries
		}
		truths := append([]*PubTruth{p}, twinsOf[p.Idx]...)
		n := w.Cfg.GSEntriesMin + dd.rng.Intn(w.Cfg.GSEntriesMax-w.Cfg.GSEntriesMin+1)
		for i := 0; i < n; i++ {
			newEntry(truths)
		}
	}

	// Noise documents: unrelated crawled references.
	noise := w.Cfg.GSNoiseDocs
	if w.Cfg.GSTargetPublications > 0 {
		noise = w.Cfg.GSTargetPublications - s.Pubs.Len()
		if noise < 0 {
			noise = 0
		}
	}
	for i := 0; i < noise; i++ {
		id := model.ID(fmt.Sprintf("gs:n%06d", i))
		first := firstNames[dd.rng.Intn(len(firstNames))]
		last := lastNames[dd.rng.Intn(len(lastNames))]
		name := gsAuthorName(first + " " + last)
		attrs := map[string]string{
			"title":   noiseTitle(dd.rng),
			"authors": name,
		}
		if dd.rng.Float64() < 0.7 {
			attrs["year"] = fmt.Sprint(1980 + dd.rng.Intn(26))
		}
		s.Pubs.AddNew(id, attrs)
		autID := authorID(name)
		s.AuthorPub.Add(autID, id, 1)
		s.PubAuthor.Add(id, autID, 1)
	}

	dd.perfect.PubDBLPGS = pubDBLPGS
	dd.perfect.PubGSACM = pubGSACM
	return s, links
}

// noiseTitle draws a title from a vocabulary disjoint from the database
// domain: GS noise documents are crawled papers from other CS areas, which
// share only generic words with real titles and rarely exceed a trigram
// threshold — matching the reality that the paper's GS title queries
// surfaced mostly-unrelated reference strings.
func noiseTitle(rng *rand.Rand) string {
	adj := noiseAdjectives[rng.Intn(len(noiseAdjectives))]
	noun := noiseNouns[rng.Intn(len(noiseNouns))]
	topic := noiseTopics[rng.Intn(len(noiseTopics))]
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%s %s in %s", adj, noun, topic)
	case 1:
		return fmt.Sprintf("%s for %s: %s Considerations", noun, topic, adj)
	case 2:
		return fmt.Sprintf("A Study of %s %s", adj, noun)
	default:
		return fmt.Sprintf("%s %s and %s", adj, noun, topic)
	}
}

var noiseAdjectives = []string{
	"Fault-Tolerant", "Low-Power", "Real-Time", "Interprocedural",
	"Wait-Free", "Type-Safe", "Energy-Aware", "Lock-Free", "Hierarchical",
	"Speculative", "Context-Sensitive", "Byzantine",
}

var noiseNouns = []string{
	"Garbage Collection", "Register Allocation", "Packet Scheduling",
	"Instruction Selection", "Thread Synchronization", "Page Migration",
	"Routing Protocols", "Congestion Avoidance", "Pointer Analysis",
	"Branch Prediction", "Interrupt Handling", "Memory Consistency",
	"Code Generation", "Process Checkpointing", "Signal Processing",
}

var noiseTopics = []string{
	"Embedded Controllers", "Wireless LANs", "Multicore Processors",
	"Virtual Machines", "Operating System Kernels", "Compiler Backends",
	"Network Switches", "Microarchitectures", "Distributed Shared Memory",
	"Real-Time Kernels", "Optical Networks", "Vector Units",
}

// sortedIntKeys returns m's keys in increasing order. World derivation must
// be a pure function of the seed, so map iteration never feeds mapping rows
// (or any other order-sensitive sink) directly.
func sortedIntKeys(m map[int]model.ID) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
