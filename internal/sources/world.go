package sources

import (
	"fmt"
	"math/rand"
	"strings"
)

// AuthorTruth is one real person of the ground-truth world.
type AuthorTruth struct {
	Idx   int
	First string
	Last  string
	// DupSpelling is a second DBLP rendering of the same person ("" if
	// none): the Table 9 duplicate-author scenario.
	DupSpelling string
	// ACMVariant is a second ACM rendering ("" if none), inflating ACM's
	// author count as in Table 1.
	ACMVariant string
	Community  int
}

// Name returns the primary "First Last" rendering.
func (a *AuthorTruth) Name() string { return a.First + " " + a.Last }

// VenueKind distinguishes conference editions from journal issues.
type VenueKind string

// Venue kinds; the paper's Table 4/5 breakdown distinguishes exactly these.
const (
	Conference VenueKind = "conference"
	Journal    VenueKind = "journal"
)

// VenueTruth is one venue instance: a conference edition or journal issue.
type VenueTruth struct {
	Idx    int
	Series string
	Kind   VenueKind
	Year   int
	Issue  int // 1-based for journals, 0 for conferences
	Volume int // journals only
	// Newsletter marks SIGMOD-Record-style venues carrying recurring
	// columns.
	Newsletter bool
}

// slug returns the series in id-friendly form.
func (v *VenueTruth) slug() string {
	return strings.ToLower(strings.ReplaceAll(v.Series, " ", ""))
}

// DBLPName renders the venue the way DBLP abbreviates it.
func (v *VenueTruth) DBLPName() string {
	if v.Kind == Conference {
		return fmt.Sprintf("%s %d", v.Series, v.Year)
	}
	return fmt.Sprintf("%s %d(%d)", v.Series, v.Volume, v.Issue)
}

// ACMName renders the venue in ACM DL's verbose style, deliberately far
// from the DBLP form so that "the use of attribute matchers based on
// general string matching is ineffective for finding venue same-mappings"
// (§5.4.1).
func (v *VenueTruth) ACMName() string {
	if v.Kind == Conference {
		switch v.Series {
		case "VLDB":
			return fmt.Sprintf("%s International Conference on Very Large Data Bases", ordinal(v.Year-1974))
		case "SIGMOD":
			return fmt.Sprintf("Proceedings of the ACM International Conference on Management of Data, %d", v.Year)
		default:
			return fmt.Sprintf("Proceedings of the %s Conference (%d)", v.Series, v.Year)
		}
	}
	switch v.Series {
	case "TODS":
		return fmt.Sprintf("ACM Transactions on Database Systems Volume %d Issue %d", v.Volume, v.Issue)
	case "VLDB Journal":
		return fmt.Sprintf("The International Journal on Very Large Data Bases Volume %d Issue %d", v.Volume, v.Issue)
	case "SIGMOD Record":
		return fmt.Sprintf("ACM SIGMOD Record Volume %d Issue %d", v.Volume, v.Issue)
	default:
		return fmt.Sprintf("%s Journal Volume %d Issue %d", v.Series, v.Volume, v.Issue)
	}
}

// ordinal renders 20 -> "20th" etc.
func ordinal(n int) string {
	suffix := "th"
	switch {
	case n%100 >= 11 && n%100 <= 13:
	case n%10 == 1:
		suffix = "st"
	case n%10 == 2:
		suffix = "nd"
	case n%10 == 3:
		suffix = "rd"
	}
	return fmt.Sprintf("%d%s", n, suffix)
}

// PubTruth is one real publication.
type PubTruth struct {
	Idx      int
	Title    string
	Venue    *VenueTruth
	Authors  []*AuthorTruth
	Year     int
	PageFrom int
	PageTo   int
	// Citations is the "true" citation count used for the GS/ACM citation
	// attributes and the fusion examples.
	Citations int
	// TwinOf >= 0 marks a journal version of the conference paper with
	// that index: identical title, different venue and year (Figure 7).
	TwinOf int
	// Recurring marks a recurring newsletter column instance.
	Recurring bool
}

// World is the generated ground truth.
type World struct {
	Cfg     Config
	Authors []*AuthorTruth
	Venues  []*VenueTruth
	Pubs    []*PubTruth
}

// GenerateWorld builds the deterministic ground-truth world for cfg.
func GenerateWorld(cfg Config) *World {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &World{Cfg: cfg}
	w.generateAuthors(rng)
	w.generateVenues(rng)
	w.generatePublications(rng)
	w.assignAuthors(rng)
	return w
}

// generateAuthors fills the author pool with unique names, duplicate
// spellings and ACM variants.
func (w *World) generateAuthors(rng *rand.Rand) {
	used := make(map[string]bool)
	commSize := w.Cfg.CommunitySize
	if commSize < 2 {
		commSize = 12
	}
	for i := 0; i < w.Cfg.TruthAuthors; i++ {
		var first, last string
		for tries := 0; ; tries++ {
			first = firstNames[rng.Intn(len(firstNames))]
			last = lastNames[rng.Intn(len(lastNames))]
			if !used[first+" "+last] {
				break
			}
			if tries < 40 {
				continue // avoid manufacturing near-duplicate real people
			}
			// Pool exhausted: disambiguate with a middle initial.
			mid := string(rune('A' + rng.Intn(26)))
			first = first + " " + mid + "."
			if !used[first+" "+last] {
				break
			}
		}
		used[first+" "+last] = true
		a := &AuthorTruth{Idx: i, First: first, Last: last, Community: i / commSize}
		w.Authors = append(w.Authors, a)
	}
	// Duplicate DBLP spellings: shortened given name, like "Agathoniki
	// Trigoni" also appearing as "Niki Trigoni".
	for i := 0; i < w.Cfg.DupAuthorPairs && i < len(w.Authors); i++ {
		a := w.Authors[i*7%len(w.Authors)]
		if a.DupSpelling != "" {
			continue
		}
		a.DupSpelling = shortenGiven(a.First) + " " + a.Last
	}
	// ACM name variants: first initial only. Walk the pool until exactly
	// the configured number of variants is assigned.
	assigned := 0
	for i := 0; assigned < w.Cfg.ACMVariantAuthors && i < 4*len(w.Authors); i++ {
		a := w.Authors[(i*13+3)%len(w.Authors)]
		if a.ACMVariant != "" || a.DupSpelling != "" {
			continue
		}
		a.ACMVariant = string([]rune(a.First)[0]) + ". " + a.Last
		assigned++
	}
}

// shortenGiven derives a nickname-style shortening of a given name.
func shortenGiven(first string) string {
	runes := []rune(strings.Fields(first)[0])
	if len(runes) > 6 {
		short := string(runes[len(runes)-4:])
		return strings.ToUpper(short[:1]) + short[1:]
	}
	return string(runes[0]) + "."
}

// generateVenues enumerates conference editions and journal issues.
func (w *World) generateVenues(rng *rand.Rand) {
	idx := 0
	for year := w.Cfg.YearStart; year <= w.Cfg.YearEnd; year++ {
		for _, conf := range w.Cfg.Conferences {
			w.Venues = append(w.Venues, &VenueTruth{
				Idx: idx, Series: conf, Kind: Conference, Year: year,
			})
			idx++
		}
	}
	for j, journal := range w.Cfg.Journals {
		issues := 4
		if j < len(w.Cfg.JournalIssues) {
			issues = w.Cfg.JournalIssues[j]
		}
		volBase := volumeBase(journal)
		for year := w.Cfg.YearStart; year <= w.Cfg.YearEnd; year++ {
			for issue := 1; issue <= issues; issue++ {
				w.Venues = append(w.Venues, &VenueTruth{
					Idx: idx, Series: journal, Kind: Journal, Year: year,
					Issue: issue, Volume: year - volBase,
					Newsletter: journal == "SIGMOD Record",
				})
				idx++
			}
		}
	}
}

// volumeBase maps journal founding years so volume numbers look plausible.
func volumeBase(journal string) int {
	switch journal {
	case "TODS":
		return 1975
	case "VLDB Journal":
		return 1991
	case "SIGMOD Record":
		return 1971
	default:
		return 1980
	}
}

// generatePublications creates papers per venue, recurring newsletter
// columns, and journal twins of conference papers, then calibrates the
// total count.
func (w *World) generatePublications(rng *rand.Rand) {
	// Title diversity control: at full scale, unconstrained draws from the
	// pattern grammar produce near-collisions ("Efficient X for Y" vs
	// "Scalable X for Y") that would make every title matcher look bad.
	// Real titles collide far less, so a (noun, topic) combination may be
	// used at most twice and only under different patterns.
	usedTitles := make(map[string]bool)
	usedCombos := make(map[string]bool)
	freshTitle := func() string {
		for {
			t, _, combo := w.drawTitle(rng)
			if usedTitles[t] || usedCombos[combo] {
				continue
			}
			usedTitles[t] = true
			usedCombos[combo] = true
			return t
		}
	}
	pageCursor := func() int { return 1 + rng.Intn(12) }

	addPub := func(title string, v *VenueTruth, twinOf int, recurring bool) *PubTruth {
		from := pageCursor()
		p := &PubTruth{
			Idx: len(w.Pubs), Title: title, Venue: v, Year: v.Year,
			PageFrom: from, PageTo: from + 8 + rng.Intn(22),
			Citations: citationDraw(rng, w.Cfg.YearEnd-v.Year),
			TwinOf:    twinOf, Recurring: recurring,
		}
		w.Pubs = append(w.Pubs, p)
		return p
	}

	var journalIssues []*VenueTruth
	for _, v := range w.Venues {
		if v.Kind == Journal {
			journalIssues = append(journalIssues, v)
		}
	}

	// Conference papers, with probabilistic journal twins.
	var confPubs []*PubTruth
	for _, v := range w.Venues {
		if v.Kind != Conference {
			continue
		}
		n := w.Cfg.ConfPapersMin + rng.Intn(w.Cfg.ConfPapersMax-w.Cfg.ConfPapersMin+1)
		for i := 0; i < n; i++ {
			p := addPub(freshTitle(), v, -1, false)
			confPubs = append(confPubs, p)
		}
	}
	for _, p := range confPubs {
		if rng.Float64() >= w.Cfg.TwinProbability {
			continue
		}
		// The journal version appears one year later (or the same year at
		// the period boundary) in a random journal issue.
		year := p.Year + 1
		if year > w.Cfg.YearEnd {
			year = p.Year
		}
		var candidates []*VenueTruth
		for _, v := range journalIssues {
			if v.Year == year && !v.Newsletter {
				candidates = append(candidates, v)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		v := candidates[rng.Intn(len(candidates))]
		addPub(p.Title, v, p.Idx, false)
	}

	// Recurring newsletter columns: identical titles across issues.
	for _, v := range journalIssues {
		if !v.Newsletter {
			continue
		}
		for _, col := range recurringColumns {
			if rng.Float64() < w.Cfg.RecurringColumnIssueRate {
				addPub(col, v, -1, true)
			}
		}
	}

	// Regular journal papers.
	for _, v := range journalIssues {
		n := w.Cfg.JournalPapersMin + rng.Intn(w.Cfg.JournalPapersMax-w.Cfg.JournalPapersMin+1)
		for i := 0; i < n; i++ {
			addPub(freshTitle(), v, -1, false)
		}
	}

	// Calibrate the total to the Table 1 target by trimming or padding
	// regular journal papers.
	target := w.Cfg.TargetPublications
	if target <= 0 {
		return
	}
	for len(w.Pubs) > target {
		// Remove the last regular journal paper.
		for i := len(w.Pubs) - 1; i >= 0; i-- {
			p := w.Pubs[i]
			if p.Venue.Kind == Journal && p.TwinOf < 0 && !p.Recurring {
				w.Pubs = append(w.Pubs[:i], w.Pubs[i+1:]...)
				break
			}
		}
	}
	for len(w.Pubs) < target {
		v := journalIssues[rng.Intn(len(journalIssues))]
		addPub(freshTitle(), v, -1, false)
	}
	for i, p := range w.Pubs {
		p.Idx = i // reindex after trimming
	}
	// Twin indices may have shifted; rebuild them by title+venue kind.
	byIdxTitle := make(map[string]int)
	for i, p := range w.Pubs {
		if p.Venue.Kind == Conference {
			byIdxTitle[p.Title] = i
		}
	}
	for _, p := range w.Pubs {
		if p.TwinOf >= 0 {
			p.TwinOf = byIdxTitle[p.Title]
		}
	}
}

// citationDraw produces a plausible citation count growing with age.
func citationDraw(rng *rand.Rand, age int) int {
	base := rng.ExpFloat64() * 12
	return int(base * float64(age+1) / 2)
}

// drawTitle draws a synthetic database-paper title and reports its pattern
// id plus the (noun, topic) combination key used for diversity control.
func (w *World) drawTitle(rng *rand.Rand) (title string, pattern int, combo string) {
	adj := titleAdjectives[rng.Intn(len(titleAdjectives))]
	noun := titleNouns[rng.Intn(len(titleNouns))]
	topic := titleTopics[rng.Intn(len(titleTopics))]
	method := titleMethods[rng.Intn(len(titleMethods))]
	prop := titleProperties[rng.Intn(len(titleProperties))]
	pattern = rng.Intn(7)
	switch pattern {
	case 0:
		title = fmt.Sprintf("%s %s for %s", adj, noun, topic)
	case 1:
		title = fmt.Sprintf("%s %s with %s", adj, noun, method)
		topic = method // the discriminating combination is noun+method here
	case 2:
		title = fmt.Sprintf("On the %s of %s over %s", prop, noun, topic)
	case 3:
		title = fmt.Sprintf("%s: A %s Approach to %s", method, adj, noun)
		topic = method
	case 4:
		title = fmt.Sprintf("Towards %s %s in %s", adj, noun, topic)
	case 5:
		title = fmt.Sprintf("%s %s Revisited", noun, topic)
	default:
		title = fmt.Sprintf("%s for %s Using %s", noun, topic, method)
	}
	return title, pattern, noun + "|" + topic
}

// randomTitle draws a title without diversity bookkeeping (noise padding).
func (w *World) randomTitle(rng *rand.Rand) string {
	t, _, _ := w.drawTitle(rng)
	return t
}

// assignAuthors distributes authors over publications with community
// structure (clustered co-authorship), guarantees every author at least one
// publication, and gives recurring columns a stable editor.
func (w *World) assignAuthors(rng *rand.Rand) {
	if len(w.Authors) == 0 {
		return
	}
	nComm := w.Authors[len(w.Authors)-1].Community + 1
	communities := make([][]*AuthorTruth, nComm)
	for _, a := range w.Authors {
		communities[a.Community] = append(communities[a.Community], a)
	}
	cursor := make([]int, nComm) // rotating pick position per community

	pick := func(comm int, k int) []*AuthorTruth {
		members := communities[comm]
		if k > len(members) {
			k = len(members)
		}
		out := make([]*AuthorTruth, 0, k)
		for i := 0; i < k; i++ {
			out = append(out, members[(cursor[comm]+i)%len(members)])
		}
		cursor[comm] = (cursor[comm] + 1 + rng.Intn(3)) % len(members)
		return out
	}

	// Stable editors for recurring columns.
	editors := make(map[string]*AuthorTruth)
	for _, col := range recurringColumns {
		editors[col] = w.Authors[rng.Intn(len(w.Authors))]
	}

	for _, p := range w.Pubs {
		if p.TwinOf >= 0 {
			continue // twins copy the original's authors below
		}
		if p.Recurring {
			p.Authors = []*AuthorTruth{editors[p.Title]}
			continue
		}
		k := drawAuthorCount(rng, w.Cfg.MaxAuthorsPerPub)
		comm := rng.Intn(nComm)
		if k <= 5 {
			p.Authors = pick(comm, k)
		} else {
			// Large collaborations span communities; otherwise they would
			// turn whole communities into co-author cliques, which makes
			// every same-community pair look like a duplicate (§4.3).
			p.Authors = nil
			for len(p.Authors) < k {
				take := 2 + rng.Intn(3)
				if rest := k - len(p.Authors); take > rest {
					take = rest
				}
				p.Authors = append(p.Authors, pick(rng.Intn(nComm), take)...)
			}
		}
		// Occasional cross-community collaborator.
		if rng.Float64() < 0.1 {
			if extra := pick(rng.Intn(nComm), 1); len(extra) > 0 {
				p.Authors = append(p.Authors, extra[0])
			}
		}
		p.Authors = dedupeAuthors(p.Authors)
	}
	// Coverage fixup: every author appears at least once.
	used := make(map[int]bool)
	for _, p := range w.Pubs {
		for _, a := range p.Authors {
			used[a.Idx] = true
		}
	}
	var regular []*PubTruth
	for _, p := range w.Pubs {
		if !p.Recurring && p.TwinOf < 0 {
			regular = append(regular, p)
		}
	}
	for _, a := range w.Authors {
		if !used[a.Idx] && len(regular) > 0 {
			p := regular[rng.Intn(len(regular))]
			p.Authors = append(p.Authors, a)
		}
	}

	// Duplicate authors need a realistic detection signal: a stable set of
	// regular collaborators appearing on (nearly) all their papers, so that
	// the two DBLP spellings of the same person share co-authors (§4.3,
	// Table 9). Give each duplicate author at least four papers and inject
	// two stable collaborators into every one of them.
	pubsOf := make(map[int][]*PubTruth)
	for _, p := range regular {
		for _, a := range p.Authors {
			pubsOf[a.Idx] = append(pubsOf[a.Idx], p)
		}
	}
	for _, a := range w.Authors {
		if a.DupSpelling == "" {
			continue
		}
		// Pull the duplicate author out of large collaborations: their
		// co-author profile should be dominated by regular collaborators.
		own := pubsOf[a.Idx][:0]
		for _, p := range pubsOf[a.Idx] {
			if len(p.Authors) > 6 {
				keep := p.Authors[:0]
				for _, x := range p.Authors {
					if x.Idx != a.Idx {
						keep = append(keep, x)
					}
				}
				p.Authors = keep
				continue
			}
			own = append(own, p)
		}
		for len(own) < 4 && len(regular) > 0 {
			p := regular[rng.Intn(len(regular))]
			already := false
			for _, x := range p.Authors {
				if x.Idx == a.Idx {
					already = true
					break
				}
			}
			if !already && len(p.Authors) <= 5 {
				p.Authors = append(p.Authors, a)
				own = append(own, p)
			}
		}
		members := communities[a.Community]
		var collaborators []*AuthorTruth
		for _, m := range members {
			if m.Idx != a.Idx && m.DupSpelling == "" {
				collaborators = append(collaborators, m)
			}
			if len(collaborators) == 4 {
				break
			}
		}
		for _, p := range own {
			for _, c := range collaborators {
				present := false
				for _, x := range p.Authors {
					if x.Idx == c.Idx {
						present = true
						break
					}
				}
				if !present {
					p.Authors = append(p.Authors, c)
				}
			}
		}
		pubsOf[a.Idx] = own
	}

	// Journal twins list exactly the authors of their conference original;
	// this runs last so the coverage fixup cannot desynchronize them.
	for _, p := range w.Pubs {
		if p.TwinOf >= 0 {
			p.Authors = w.Pubs[p.TwinOf].Authors
		}
	}
}

// dedupeAuthors removes repeated truth authors, keeping first occurrence.
func dedupeAuthors(as []*AuthorTruth) []*AuthorTruth {
	seen := make(map[int]bool, len(as))
	out := as[:0]
	for _, a := range as {
		if !seen[a.Idx] {
			seen[a.Idx] = true
			out = append(out, a)
		}
	}
	return out
}

// drawAuthorCount draws the size of an author list: mostly 2-4, rarely up
// to maxAuthors (the paper saw 1..27 with an average near 3).
func drawAuthorCount(rng *rand.Rand, maxAuthors int) int {
	if maxAuthors < 1 {
		maxAuthors = 5
	}
	r := rng.Float64()
	switch {
	case r < 0.15:
		return 1
	case r < 0.45:
		return 2
	case r < 0.75:
		return 3
	case r < 0.90:
		return 4
	case r < 0.99:
		return 5
	default:
		// Rare large collaborations, skewed toward the small end; the
		// paper saw author lists up to 27.
		n := 6 + int(rng.ExpFloat64()*4)
		if n > maxAuthors {
			n = maxAuthors
		}
		return n
	}
}
