package sources

import (
	"repro/internal/index"
	"repro/internal/model"
)

// GSQuery is the query-only access path to the Google Scholar simulation.
// Like the real source, it cannot be downloaded: callers obtain
// publications exclusively via keyword queries, exactly how the paper
// collected its GS dataset ("we had to send numerous queries ... Those
// queries contain the publication titles as well as venue names", §5.1).
type GSQuery struct {
	pubs *model.ObjectSet
	ix   *index.Index
}

// NewGSQuery builds the search index over the GS publication titles and
// author lists.
func NewGSQuery(gs *Source) *GSQuery {
	ix := index.New()
	gs.Pubs.Each(func(in *model.Instance) bool {
		ix.AddInstance(in, "title", "authors")
		return true
	})
	ix.Freeze()
	return &GSQuery{pubs: gs.Pubs, ix: ix}
}

// Search returns the top-k publication instances for a keyword query.
func (q *GSQuery) Search(query string, k int) *model.ObjectSet {
	hits := q.ix.Search(query, k)
	ids := make([]model.ID, 0, len(hits))
	for _, h := range hits {
		ids = append(ids, h.ID)
	}
	return q.pubs.Subset(ids)
}

// CollectFor simulates the paper's data acquisition: one title query per
// publication of the driving set, unioned into a GS working set. k bounds
// the results kept per query.
func (q *GSQuery) CollectFor(driving *model.ObjectSet, titleAttr string, k int) *model.ObjectSet {
	out := model.NewObjectSet(q.pubs.LDS())
	driving.Each(func(in *model.Instance) bool {
		title := in.Attr(titleAttr)
		if title == "" {
			return true
		}
		for _, h := range q.ix.Search(title, k) {
			if got := q.pubs.Get(h.ID); got != nil {
				out.Add(got)
			}
		}
		return true
	})
	return out
}

// Docs reports the total number of indexed GS documents (the source size,
// which is known even though bulk download is not possible).
func (q *GSQuery) Docs() int { return q.ix.Docs() }
