package sources

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func corruptRng() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestTypoChangesString(t *testing.T) {
	rng := corruptRng()
	in := "generic schema matching with cupid"
	changed := 0
	for i := 0; i < 50; i++ {
		if typo(rng, in) != in {
			changed++
		}
	}
	if changed < 45 {
		t.Errorf("typo changed only %d/50 strings", changed)
	}
	if typo(rng, "a") != "a" || typo(rng, "") != "" {
		t.Error("short strings must pass through unchanged")
	}
}

func TestTypoKeepsSimilarityHigh(t *testing.T) {
	rng := corruptRng()
	in := "a formal perspective on the view selection problem"
	for i := 0; i < 30; i++ {
		out := typos(rng, in, 2)
		if s := sim.Trigram(in, out); s < 0.75 {
			t.Errorf("2 typos dropped trigram to %v for %q", s, out)
		}
	}
}

func TestTruncateTokens(t *testing.T) {
	in := "one two three four"
	if got := truncateTokens(in, 2); got != "one two" {
		t.Errorf("truncate 2 = %q", got)
	}
	if got := truncateTokens(in, 10); got != in {
		t.Errorf("truncate beyond length = %q", got)
	}
	if got := truncateTokens(in, 0); got != "one" {
		t.Errorf("truncate 0 clamps to 1, got %q", got)
	}
}

func TestDropToken(t *testing.T) {
	rng := corruptRng()
	in := "alpha beta gamma delta"
	out := dropToken(rng, in)
	if len(strings.Fields(out)) != 3 {
		t.Errorf("dropToken = %q, want 3 tokens", out)
	}
	// First and last tokens survive (interior drop only).
	if !strings.HasPrefix(out, "alpha") || !strings.HasSuffix(out, "delta") {
		t.Errorf("dropToken must keep the ends, got %q", out)
	}
	if got := dropToken(rng, "a b"); got != "a b" {
		t.Errorf("two-token strings pass through, got %q", got)
	}
}

func TestOcrNoiseOnlyConfusions(t *testing.T) {
	rng := corruptRng()
	in := "similarity selection illusion"
	for i := 0; i < 20; i++ {
		out := ocrNoise(rng, in)
		if len(out) != len(in) {
			t.Fatalf("ocrNoise changed length: %q", out)
		}
	}
}

func TestCorruptGSTitleProperty(t *testing.T) {
	cfg := PaperConfig()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := "adaptive query processing for streaming tuples"
		out := corruptGSTitle(rng, in, cfg)
		// Corruption never empties a title and never grows it absurdly.
		return out != "" && len(out) <= len(in)+4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCorruptACMTitleStaysRelated(t *testing.T) {
	rng := corruptRng()
	in := "incremental view selection for olap cubes"
	for i := 0; i < 30; i++ {
		out := corruptACMTitle(rng, in)
		if out == "" {
			t.Fatal("ACM corruption emptied the title")
		}
	}
}

func TestMangleVenueVariants(t *testing.T) {
	rng := corruptRng()
	v := &VenueTruth{Series: "VLDB", Kind: Conference, Year: 2001}
	seen := map[string]bool{}
	for i := 0; i < 40; i++ {
		seen[mangleVenue(rng, v)] = true
	}
	if len(seen) < 3 {
		t.Errorf("mangleVenue produced only %d variants", len(seen))
	}
	j := &VenueTruth{Series: "TODS", Kind: Journal, Year: 1999, Volume: 24, Issue: 2}
	if mangleVenue(rng, j) == "" {
		t.Error("journal mangle empty")
	}
}

func TestNoiseTitleDisjointVocabulary(t *testing.T) {
	// Noise titles must rarely collide with database-domain titles above a
	// matcher threshold — that is their whole purpose.
	rng := corruptRng()
	w := &World{Cfg: PaperConfig()}
	high := 0
	for i := 0; i < 200; i++ {
		noise := noiseTitle(rng)
		real := w.randomTitle(rng)
		if sim.Trigram(noise, real) >= 0.6 {
			high++
		}
	}
	if high > 2 {
		t.Errorf("%d/200 noise titles collide with real titles at >= 0.6", high)
	}
}
