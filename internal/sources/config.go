// Package sources generates the deterministic synthetic bibliographic world
// substituting for the paper's DBLP / ACM Digital Library / Google Scholar
// datasets (§5.1), including per-source dirtiness and the perfect mappings
// used by the evaluation. See DESIGN.md §3 for the substitution rationale.
package sources

// Config controls world generation. All randomness derives from Seed, so a
// given configuration reproduces the identical world, sources and perfect
// mappings on every run.
type Config struct {
	Seed int64

	// YearStart..YearEnd is the covered publication period; the paper uses
	// database publications from 1994 to 2003.
	YearStart, YearEnd int

	// Conferences and Journals name the venue series. Issue counts per
	// journal year follow JournalIssues (parallel to Journals).
	Conferences   []string
	Journals      []string
	JournalIssues []int

	// Conference paper counts are drawn uniformly from this range; the
	// paper reports "about 60-120" per conference (§5.4.1).
	ConfPapersMin, ConfPapersMax int
	// Journal issue paper counts; "2-26 per issue" with small average.
	JournalPapersMin, JournalPapersMax int
	// TargetPublications trims/pads the final count to hit Table 1 exactly
	// (0 disables).
	TargetPublications int

	// TruthAuthors is the distinct real-person pool size; DupAuthorPairs of
	// them additionally appear in DBLP under a second spelling (Table 9),
	// and ACMVariantAuthors appear in ACM under a second name variant
	// (inflating ACM's author count as in Table 1).
	TruthAuthors      int
	DupAuthorPairs    int
	ACMVariantAuthors int
	// CommunitySize controls co-author clustering (authors per community).
	CommunitySize int
	// MaxAuthorsPerPub bounds author lists; the paper saw 1 to 27.
	MaxAuthorsPerPub int

	// TwinProbability is the chance that a conference paper also gets a
	// journal version with an identical title (the Figure 7 hazard).
	TwinProbability float64

	// RecurringColumnIssueRate is the fraction of SIGMOD-Record-style
	// journal issues carrying each recurring column title (§5.4.2).
	RecurringColumnIssueRate float64

	// ACM dirtiness.
	ACMDropVLDBYears []int   // conference years missing entirely (2002/2003)
	ACMExtraDropRate float64 // additional random publication loss (used when no target)
	ACMTitleTypoRate float64 // probability of a corrupted ACM title
	// ACMTargetPublications trims ACM's publication count exactly (Table 1:
	// 2294); 0 falls back to ACMExtraDropRate.
	ACMTargetPublications int

	// GS dirtiness.
	GSEntriesMin, GSEntriesMax int     // duplicate entries per publication
	GSTitleTypoRate            float64 // heavy extraction noise per entry
	GSTokenDropRate            float64 // chance of losing a title token
	GSTitleTruncateRate        float64 // chance the extractor caught only a title prefix
	GSMissingYearRate          float64 // optional year attribute
	GSAuthorTruncateRate       float64 // chance of truncating the author list
	GSMergeTwinRate            float64 // chance GS merges title twins into one entry
	GSNoiseDocs                int     // unrelated crawled documents
	GSTargetPublications       int     // pad/trim GS size (0 disables)
	GSLinkRecall               float64 // recall of the existing GS->ACM links (§5.3)
}

// PaperConfig reproduces the scale of the paper's evaluation setting
// (Table 1: DBLP 130 venues / 2616 publications / 3319 authors, ACM 128 /
// 2294 / 3547, GS 64263 publications).
func PaperConfig() Config {
	return Config{
		Seed:      20070107, // CIDR 2007 opening day
		YearStart: 1994, YearEnd: 2003,
		Conferences:   []string{"VLDB", "SIGMOD"},
		Journals:      []string{"TODS", "VLDB Journal", "SIGMOD Record"},
		JournalIssues: []int{4, 3, 4},
		ConfPapersMin: 60, ConfPapersMax: 120,
		JournalPapersMin: 2, JournalPapersMax: 14,
		TargetPublications: 2616,
		TruthAuthors:       3309,
		DupAuthorPairs:     10,
		ACMVariantAuthors:  238,
		CommunitySize:      24,
		MaxAuthorsPerPub:   27,
		TwinProbability:    0.04,

		RecurringColumnIssueRate: 0.18,

		ACMDropVLDBYears:      []int{2002, 2003},
		ACMExtraDropRate:      0.031,
		ACMTitleTypoRate:      0.03,
		ACMTargetPublications: 2294,

		GSEntriesMin: 1, GSEntriesMax: 3,
		GSTitleTypoRate:      0.45,
		GSTokenDropRate:      0.12,
		GSTitleTruncateRate:  0.15,
		GSMissingYearRate:    0.30,
		GSAuthorTruncateRate: 0.25,
		GSMergeTwinRate:      0.6,
		GSNoiseDocs:          58000,
		GSTargetPublications: 64263,
		GSLinkRecall:         0.216,
	}
}

// SmallConfig is a fast, reduced world for unit and integration tests: same
// mechanisms, roughly 1/12 the size.
func SmallConfig() Config {
	c := PaperConfig()
	c.Seed = 42
	c.YearStart, c.YearEnd = 2000, 2002
	c.ConfPapersMin, c.ConfPapersMax = 10, 20
	c.JournalPapersMin, c.JournalPapersMax = 2, 6
	c.TargetPublications = 0
	c.TwinProbability = 0.1
	c.TruthAuthors = 260
	c.DupAuthorPairs = 4
	c.ACMVariantAuthors = 20
	c.ACMTargetPublications = 0
	c.GSNoiseDocs = 300
	c.GSTargetPublications = 0
	return c
}
