package sources

import (
	"strings"
	"testing"

	"repro/internal/model"
)

// smallDataset is shared across tests; generation is deterministic.
var smallDataset = Generate(SmallConfig())

func TestDeterminism(t *testing.T) {
	a := Generate(SmallConfig())
	b := Generate(SmallConfig())
	if a.DBLP.Pubs.Len() != b.DBLP.Pubs.Len() || a.GS.Pubs.Len() != b.GS.Pubs.Len() {
		t.Fatal("same seed must give identical sizes")
	}
	idsA, idsB := a.DBLP.Pubs.IDs(), b.DBLP.Pubs.IDs()
	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("pub id %d differs: %s vs %s", i, idsA[i], idsB[i])
		}
	}
	pa := a.DBLP.Pubs.Get(idsA[0])
	pb := b.DBLP.Pubs.Get(idsB[0])
	if pa.Attr("title") != pb.Attr("title") || pa.Attr("authors") != pb.Attr("authors") {
		t.Error("instance attributes must be identical across runs")
	}
	if !a.Perfect.PubDBLPACM.Equal(b.Perfect.PubDBLPACM, 0) {
		t.Error("perfect mappings must be identical across runs")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	cfg := SmallConfig()
	cfg.Seed = 43
	other := Generate(cfg)
	if other.DBLP.Pubs.Len() == smallDataset.DBLP.Pubs.Len() {
		// Sizes may coincide; compare first titles too.
		a := smallDataset.DBLP.Pubs.Get(smallDataset.DBLP.Pubs.IDs()[0]).Attr("title")
		b := other.DBLP.Pubs.Get(other.DBLP.Pubs.IDs()[0]).Attr("title")
		if a == b {
			t.Error("different seeds should produce different worlds")
		}
	}
}

func TestWorldShape(t *testing.T) {
	d := smallDataset
	w := d.World
	if len(w.Venues) == 0 || len(w.Pubs) == 0 || len(w.Authors) == 0 {
		t.Fatal("world is empty")
	}
	// Venue arithmetic: conferences per year + journal issues per year.
	years := w.Cfg.YearEnd - w.Cfg.YearStart + 1
	wantVenues := years * len(w.Cfg.Conferences)
	for _, iss := range w.Cfg.JournalIssues {
		wantVenues += years * iss
	}
	if len(w.Venues) != wantVenues {
		t.Errorf("venues = %d, want %d", len(w.Venues), wantVenues)
	}
	// Twins share title and authors with their original.
	twins := 0
	for _, p := range w.Pubs {
		if p.TwinOf >= 0 {
			twins++
			orig := w.Pubs[p.TwinOf]
			if p.Title != orig.Title {
				t.Errorf("twin %d title mismatch", p.Idx)
			}
			if orig.Venue.Kind != Conference || p.Venue.Kind != Journal {
				t.Errorf("twin kinds wrong: %s -> %s", orig.Venue.Kind, p.Venue.Kind)
			}
			if len(p.Authors) != len(orig.Authors) {
				t.Errorf("twin %d authors differ", p.Idx)
			}
		}
	}
	if twins == 0 {
		t.Error("expected at least one conference/journal twin")
	}
}

func TestEveryAuthorPublishes(t *testing.T) {
	w := smallDataset.World
	used := make(map[int]bool)
	for _, p := range w.Pubs {
		for _, a := range p.Authors {
			used[a.Idx] = true
		}
	}
	for _, a := range w.Authors {
		if !used[a.Idx] {
			t.Errorf("author %d (%s) has no publication", a.Idx, a.Name())
		}
	}
}

func TestDBLPShape(t *testing.T) {
	d := smallDataset
	if d.DBLP.Pubs.Len() != len(d.World.Pubs) {
		t.Errorf("DBLP pubs = %d, want %d (complete source)", d.DBLP.Pubs.Len(), len(d.World.Pubs))
	}
	if d.DBLP.Venues.Len() != len(d.World.Venues) {
		t.Errorf("DBLP venues = %d, want %d", d.DBLP.Venues.Len(), len(d.World.Venues))
	}
	wantAuthors := d.Cfg.TruthAuthors + d.Perfect.AuthorDupsDBLP.Len()/2
	if d.DBLP.Authors.Len() != wantAuthors {
		t.Errorf("DBLP authors = %d, want %d", d.DBLP.Authors.Len(), wantAuthors)
	}
	// Associations are consistent inverses.
	if d.DBLP.VenuePub.Len() != d.DBLP.PubVenue.Len() {
		t.Error("VenuePub and PubVenue must have equal size")
	}
	// PubVenue and PubAuthor carry the same correspondences as the
	// inverses of VenuePub and AuthorPub (semantic types differ by name).
	for _, c := range d.DBLP.VenuePub.Correspondences() {
		if !d.DBLP.PubVenue.Has(c.Range, c.Domain) {
			t.Fatalf("PubVenue missing inverse of %v", c)
		}
	}
	for _, c := range d.DBLP.AuthorPub.Correspondences() {
		if !d.DBLP.PubAuthor.Has(c.Range, c.Domain) {
			t.Fatalf("PubAuthor missing inverse of %v", c)
		}
	}
	// Every pub has exactly one venue and at least one author.
	d.DBLP.Pubs.Each(func(in *model.Instance) bool {
		if d.DBLP.PubVenue.DomainCount(in.ID) != 1 {
			t.Errorf("pub %s has %d venues", in.ID, d.DBLP.PubVenue.DomainCount(in.ID))
		}
		if d.DBLP.PubAuthor.DomainCount(in.ID) < 1 {
			t.Errorf("pub %s has no authors", in.ID)
		}
		for _, attr := range []string{"title", "year", "pages", "authors", "venue", "kind"} {
			if !in.HasAttr(attr) {
				t.Errorf("pub %s missing attr %s", in.ID, attr)
			}
		}
		return false // checking attrs for the first pub is enough
	})
}

func TestCoAuthorSymmetric(t *testing.T) {
	co := smallDataset.DBLP.CoAuthor
	for _, c := range co.Correspondences() {
		if !co.Has(c.Range, c.Domain) {
			t.Fatalf("co-author mapping not symmetric for %v", c)
		}
		if c.Domain == c.Range {
			t.Fatalf("co-author mapping must not contain the diagonal: %v", c)
		}
	}
}

func TestACMDropsVLDBYears(t *testing.T) {
	cfg := SmallConfig()
	cfg.ACMDropVLDBYears = []int{2001}
	d := Generate(cfg)
	d.ACM.Venues.Each(func(in *model.Instance) bool {
		if in.Attr("series") == "VLDB" && in.Attr("year") == "2001" && in.Attr("kind") == "conference" {
			t.Errorf("VLDB 2001 should be missing from ACM, found %s", in.ID)
		}
		return true
	})
	if d.ACM.Venues.Len() != d.DBLP.Venues.Len()-1 {
		t.Errorf("ACM venues = %d, want DBLP-1 = %d", d.ACM.Venues.Len(), d.DBLP.Venues.Len()-1)
	}
	if d.ACM.Pubs.Len() >= d.DBLP.Pubs.Len() {
		t.Error("ACM must have fewer publications than DBLP")
	}
}

func TestACMAttributesUseNameNotTitle(t *testing.T) {
	d := smallDataset
	d.ACM.Pubs.Each(func(in *model.Instance) bool {
		if !in.HasAttr("name") || in.HasAttr("title") {
			t.Errorf("ACM pub %s should use 'name' (Figure 1), got %v", in.ID, in)
		}
		if !in.HasAttr("citations") {
			t.Errorf("ACM pub %s missing citations", in.ID)
		}
		return false
	})
}

func TestPerfectMappingsConsistent(t *testing.T) {
	d := smallDataset
	p := d.Perfect
	if p.PubDBLPACM.Len() != d.ACM.Pubs.Len() {
		t.Errorf("perfect DBLP-ACM size %d != ACM pubs %d", p.PubDBLPACM.Len(), d.ACM.Pubs.Len())
	}
	// Every perfect pair references existing instances.
	for _, c := range p.PubDBLPACM.Correspondences() {
		if !d.DBLP.Pubs.Has(c.Domain) || !d.ACM.Pubs.Has(c.Range) {
			t.Fatalf("perfect pair references missing instances: %v", c)
		}
	}
	for _, c := range p.PubDBLPGS.Correspondences() {
		if !d.DBLP.Pubs.Has(c.Domain) || !d.GS.Pubs.Has(c.Range) {
			t.Fatalf("perfect DBLP-GS pair references missing instances: %v", c)
		}
	}
	// Every DBLP pub has at least one GS entry.
	if len(p.PubDBLPGS.DomainIDs()) != d.DBLP.Pubs.Len() {
		t.Errorf("DBLP pubs with GS entries = %d, want %d",
			len(p.PubDBLPGS.DomainIDs()), d.DBLP.Pubs.Len())
	}
	// Venue perfect mapping is 1:1.
	if p.VenueDBLPACM.Cardinality() != model.CardOneToOne {
		t.Errorf("venue perfect mapping cardinality = %s", p.VenueDBLPACM.Cardinality())
	}
	// Author duplicates ground truth matches config.
	if p.AuthorDupsDBLP.Len() != 2*d.Cfg.DupAuthorPairs {
		t.Errorf("author dups = %d, want %d", p.AuthorDupsDBLP.Len(), 2*d.Cfg.DupAuthorPairs)
	}
}

func TestGSDirtiness(t *testing.T) {
	d := smallDataset
	// GS has more entries than DBLP (duplicates + noise).
	if d.GS.Pubs.Len() <= d.DBLP.Pubs.Len() {
		t.Error("GS should be larger than DBLP")
	}
	missingYear, initialAuthors := 0, 0
	relevant := 0
	d.GS.Pubs.Each(func(in *model.Instance) bool {
		if strings.HasPrefix(string(in.ID), "gs:n") {
			return true // noise
		}
		relevant++
		if !in.HasAttr("year") {
			missingYear++
		}
		authors := in.Attr("authors")
		if len(authors) > 1 && authors[1] == ' ' {
			initialAuthors++
		}
		return true
	})
	if missingYear == 0 {
		t.Error("some GS entries should miss the year")
	}
	if initialAuthors == 0 {
		t.Error("GS author names should be initial-only")
	}
	// Duplicates: perfect DBLP-GS has more correspondences than DBLP pubs.
	if d.Perfect.PubDBLPGS.Len() <= d.DBLP.Pubs.Len() {
		t.Error("expected duplicate GS entries")
	}
}

func TestGSLinksLowRecall(t *testing.T) {
	d := smallDataset
	recall := float64(d.GSLinksACM.Len()) / float64(d.Perfect.PubGSACM.Len())
	if recall < 0.1 || recall > 0.35 {
		t.Errorf("GS link recall = %v, want ~%v", recall, d.Cfg.GSLinkRecall)
	}
	// All links are correct (precision 1): they come from the generator.
	for _, c := range d.GSLinksACM.Correspondences() {
		if !d.Perfect.PubGSACM.Has(c.Domain, c.Range) {
			t.Fatalf("existing link %v is wrong", c)
		}
	}
}

func TestMergedTwinsInGS(t *testing.T) {
	// Some GS entries must correspond to two DBLP publications (the merged
	// conference+journal versions of Figure 7).
	d := smallDataset
	found := false
	for _, id := range d.Perfect.PubDBLPGS.RangeIDs() {
		if d.Perfect.PubDBLPGS.RangeCount(id) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected at least one merged twin entry in GS")
	}
}

func TestVenueNamingDivergence(t *testing.T) {
	d := smallDataset
	// DBLP and ACM venue names for the same venue must differ wildly.
	var c struct{ dblp, acm string }
	for _, corr := range d.Perfect.VenueDBLPACM.Correspondences() {
		dv := d.DBLP.Venues.Get(corr.Domain)
		av := d.ACM.Venues.Get(corr.Range)
		if dv.Attr("kind") == "conference" {
			c.dblp, c.acm = dv.Attr("name"), av.Attr("name")
			break
		}
	}
	if c.dblp == "" || c.acm == "" {
		t.Fatal("no conference venue pair found")
	}
	if strings.Contains(c.acm, c.dblp) {
		t.Errorf("venue names should diverge: %q vs %q", c.dblp, c.acm)
	}
}

func TestGSQuerySearch(t *testing.T) {
	d := smallDataset
	q := NewGSQuery(d.GS)
	if q.Docs() != d.GS.Pubs.Len() {
		t.Errorf("Docs = %d, want %d", q.Docs(), d.GS.Pubs.Len())
	}
	// Query by a DBLP title: its GS entries should rank among the hits.
	dblpID := d.Perfect.PubDBLPGS.DomainIDs()[0]
	title := d.DBLP.Pubs.Get(dblpID).Attr("title")
	hits := q.Search(title, 10)
	if hits.Len() == 0 {
		t.Fatal("no hits for a known title")
	}
	foundTrue := false
	for _, c := range d.Perfect.PubDBLPGS.ForDomain(dblpID) {
		if hits.Has(c.Range) {
			foundTrue = true
		}
	}
	if !foundTrue {
		t.Error("true GS entry not in the top hits")
	}
}

func TestGSQueryCollectFor(t *testing.T) {
	d := smallDataset
	q := NewGSQuery(d.GS)
	sub := d.DBLP.Pubs.Subset(d.DBLP.Pubs.IDs()[:20])
	got := q.CollectFor(sub, "title", 5)
	if got.Len() == 0 {
		t.Fatal("CollectFor returned nothing")
	}
	if got.Len() > 20*5 {
		t.Errorf("CollectFor exceeded k bound: %d", got.Len())
	}
	// Recall of the collection step: most true entries of the driving pubs
	// must be present.
	var total, found int
	sub.Each(func(in *model.Instance) bool {
		for _, c := range d.Perfect.PubDBLPGS.ForDomain(in.ID) {
			total++
			if got.Has(c.Range) {
				found++
			}
		}
		return true
	})
	if total == 0 || float64(found)/float64(total) < 0.7 {
		t.Errorf("collection recall = %d/%d, want >= 0.7", found, total)
	}
}

func TestOrdinal(t *testing.T) {
	cases := map[int]string{1: "1st", 2: "2nd", 3: "3rd", 4: "4th", 11: "11th", 12: "12th", 13: "13th", 21: "21st", 22: "22nd", 23: "23rd", 111: "111th"}
	for n, want := range cases {
		if got := ordinal(n); got != want {
			t.Errorf("ordinal(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestShortenGiven(t *testing.T) {
	if got := shortenGiven("Agathoniki"); got != "Niki" {
		t.Errorf("shortenGiven(Agathoniki) = %q, want Niki", got)
	}
	if got := shortenGiven("Hans"); got != "H." {
		t.Errorf("shortenGiven(Hans) = %q, want H.", got)
	}
}

func TestGSAuthorName(t *testing.T) {
	if got := gsAuthorName("Andreas Thor"); got != "A Thor" {
		t.Errorf("gsAuthorName = %q", got)
	}
	if got := gsAuthorName("Mononym"); got != "Mononym" {
		t.Errorf("single token = %q", got)
	}
}
