package sources

import (
	"math/rand"
	"strings"
)

// Corruption operators modelling the dirtiness of the derived sources:
// light curation noise for ACM DL and heavy automatic-extraction noise for
// Google Scholar ("GS automatically extracts the bibliographic data from
// the reference sections of the documents which may lead to quality
// problems", §5.1).

// typo applies one random character edit (substitute, delete, transpose) to
// s. Empty strings pass through.
func typo(rng *rand.Rand, s string) string {
	runes := []rune(s)
	if len(runes) < 2 {
		return s
	}
	pos := rng.Intn(len(runes) - 1)
	switch rng.Intn(3) {
	case 0: // substitute
		runes[pos] = rune('a' + rng.Intn(26))
	case 1: // delete
		runes = append(runes[:pos], runes[pos+1:]...)
	default: // transpose
		runes[pos], runes[pos+1] = runes[pos+1], runes[pos]
	}
	return string(runes)
}

// typos applies n random edits.
func typos(rng *rand.Rand, s string, n int) string {
	for i := 0; i < n; i++ {
		s = typo(rng, s)
	}
	return s
}

// truncateTokens keeps only the first keep tokens of s.
func truncateTokens(s string, keep int) string {
	fields := strings.Fields(s)
	if keep >= len(fields) {
		return s
	}
	if keep < 1 {
		keep = 1
	}
	return strings.Join(fields[:keep], " ")
}

// dropToken removes one random interior token, a typical reference-string
// extraction error.
func dropToken(rng *rand.Rand, s string) string {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return s
	}
	pos := 1 + rng.Intn(len(fields)-2)
	return strings.Join(append(fields[:pos:pos], fields[pos+1:]...), " ")
}

// ocrNoise applies OCR-style character confusions.
func ocrNoise(rng *rand.Rand, s string) string {
	confusions := map[rune]rune{'l': '1', 'o': '0', 'e': 'c', 'm': 'n', 'i': 'l', 'u': 'v'}
	runes := []rune(s)
	changed := false
	for i, r := range runes {
		if repl, ok := confusions[r]; ok && rng.Float64() < 0.08 {
			runes[i] = repl
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(runes)
}

// corruptACMTitle produces ACM's light curation noise: usually a subtle
// typo; the heavily corrupted cases (truncation) are what push a trigram
// matcher below its threshold and cost recall.
func corruptACMTitle(rng *rand.Rand, title string) string {
	if rng.Float64() < 0.5 {
		return typos(rng, title, 1+rng.Intn(2))
	}
	fields := strings.Fields(title)
	return truncateTokens(title, 1+len(fields)/3)
}

// corruptGSTitle produces Google-Scholar-style extraction noise. The
// truncation branch models the extractor catching only a prefix of the
// title — entries a trigram matcher cannot recover, but the author-based
// neighborhood matcher can (§5.4.3's recall argument).
func corruptGSTitle(rng *rand.Rand, title string, cfg Config) string {
	out := title
	if rng.Float64() < cfg.GSTitleTruncateRate {
		fields := strings.Fields(out)
		if len(fields) > 3 {
			out = truncateTokens(out, 2+rng.Intn(2))
		}
	}
	if rng.Float64() < cfg.GSTitleTypoRate {
		out = typos(rng, out, 1+rng.Intn(3))
	}
	if rng.Float64() < cfg.GSTokenDropRate {
		out = dropToken(rng, out)
	}
	if rng.Float64() < 0.1 {
		out = ocrNoise(rng, out)
	}
	return out
}

// gsAuthorName reduces a name to GS's "first-initial surname" convention
// ("GS reduces authors' first names to their first letter", §5.4.3).
func gsAuthorName(name string) string {
	fields := strings.Fields(name)
	if len(fields) < 2 {
		return name
	}
	last := fields[len(fields)-1]
	return string([]rune(fields[0])[0]) + " " + last
}

// mangleVenue produces the garbled venue strings found in extracted
// references ("CIDR 2007" vs "3rd Biennial Conference on ...").
func mangleVenue(rng *rand.Rand, v *VenueTruth) string {
	switch rng.Intn(4) {
	case 0:
		return v.DBLPName()
	case 1:
		return v.ACMName()
	case 2:
		return strings.ToUpper(strings.ReplaceAll(v.DBLPName(), " ", ""))
	default:
		if v.Kind == Conference {
			return "Proc. " + v.Series + " Conf."
		}
		return v.Series
	}
}
