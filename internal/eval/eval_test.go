package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
)

func TestCompareExactCounts(t *testing.T) {
	perfect := mapping.NewSame(dblpPub, acmPub)
	perfect.Add("a", "x", 1)
	perfect.Add("b", "y", 1)
	perfect.Add("c", "z", 1)

	got := mapping.NewSame(dblpPub, acmPub)
	got.Add("a", "x", 0.9) // TP
	got.Add("b", "z", 0.8) // FP
	// b-y and c-z are FN.

	r := Compare(got, perfect)
	if r.TruePos != 1 || r.FalsePos != 1 || r.FalseNeg != 2 {
		t.Fatalf("counts = %+v", r)
	}
	if r.Precision != 0.5 {
		t.Errorf("P = %v", r.Precision)
	}
	if math.Abs(r.Recall-1.0/3.0) > 1e-12 {
		t.Errorf("R = %v", r.Recall)
	}
	wantF := 2 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0/3.0)
	if math.Abs(r.F1-wantF) > 1e-12 {
		t.Errorf("F = %v, want %v", r.F1, wantF)
	}
}

func TestComparePerfectMatch(t *testing.T) {
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("a", "x", 1)
	r := Compare(m, m.Clone())
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("perfect = %+v", r)
	}
}

func TestCompareEmptyEdgeCases(t *testing.T) {
	empty := mapping.NewSame(dblpPub, acmPub)
	full := mapping.NewSame(dblpPub, acmPub)
	full.Add("a", "x", 1)

	r := Compare(empty, full)
	if r.Precision != 1 || r.Recall != 0 || r.F1 != 0 {
		t.Errorf("empty result = %+v", r)
	}
	r = Compare(full, empty)
	if r.Precision != 0 || r.Recall != 1 || r.F1 != 0 {
		t.Errorf("empty perfect = %+v", r)
	}
	r = Compare(empty, empty.Clone())
	if r.Precision != 1 || r.Recall != 1 {
		t.Errorf("both empty = %+v", r)
	}
}

func TestCompareSimilarityIgnored(t *testing.T) {
	perfect := mapping.NewSame(dblpPub, acmPub)
	perfect.Add("a", "x", 1)
	got := mapping.NewSame(dblpPub, acmPub)
	got.Add("a", "x", 0.0001)
	if r := Compare(got, perfect); r.F1 != 1 {
		t.Errorf("membership should decide, got %+v", r)
	}
}

func TestCompareStrictDuplicateSemantics(t *testing.T) {
	// §5.6: all duplicate GS entries must be matched, not just one.
	perfect := mapping.NewSame(dblpPub, acmPub)
	perfect.Add("p", "g1", 1)
	perfect.Add("p", "g2", 1) // duplicate GS entry of the same publication
	got := mapping.NewSame(dblpPub, acmPub)
	got.Add("p", "g1", 1)
	r := Compare(got, perfect)
	if r.Recall != 0.5 {
		t.Errorf("strict recall = %v, want 0.5", r.Recall)
	}
}

func TestFMeasureBoundsProperty(t *testing.T) {
	f := func(pairsGot, pairsPerfect []struct{ D, R uint8 }) bool {
		got := mapping.NewSame(dblpPub, acmPub)
		for _, p := range pairsGot {
			got.Add(model.ID(rune('a'+p.D%8)), model.ID(rune('A'+p.R%8)), 1)
		}
		perfect := mapping.NewSame(dblpPub, acmPub)
		for _, p := range pairsPerfect {
			perfect.Add(model.ID(rune('a'+p.D%8)), model.ID(rune('A'+p.R%8)), 1)
		}
		r := Compare(got, perfect)
		inRange := func(v float64) bool { return v >= 0 && v <= 1 && !math.IsNaN(v) }
		if !inRange(r.Precision) || !inRange(r.Recall) || !inRange(r.F1) {
			return false
		}
		// F1 lies between min and max of P and R (harmonic mean property).
		lo, hi := r.Precision, r.Recall
		if lo > hi {
			lo, hi = hi, lo
		}
		return r.F1 >= lo-1e-12 && r.F1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCompareGrouped(t *testing.T) {
	set := model.NewObjectSet(dblpPub)
	set.AddNew("c1", map[string]string{"kind": "conference"})
	set.AddNew("c2", map[string]string{"kind": "conference"})
	set.AddNew("j1", map[string]string{"kind": "journal"})

	perfect := mapping.NewSame(dblpPub, acmPub)
	perfect.Add("c1", "x", 1)
	perfect.Add("c2", "y", 1)
	perfect.Add("j1", "z", 1)

	got := mapping.NewSame(dblpPub, acmPub)
	got.Add("c1", "x", 1) // conference TP
	got.Add("c2", "z", 1) // conference FP (and c2-y FN)
	got.Add("j1", "z", 1) // journal TP

	res := CompareGrouped(got, perfect, AttrGroup(set, "kind"))
	conf := res["conference"]
	if conf.TruePos != 1 || conf.FalsePos != 1 || conf.FalseNeg != 1 {
		t.Errorf("conference = %+v", conf)
	}
	j := res["journal"]
	if j.F1 != 1 {
		t.Errorf("journal = %+v", j)
	}
	overall := res["overall"]
	if overall.TruePos != 2 || overall.FalsePos != 1 || overall.FalseNeg != 1 {
		t.Errorf("overall = %+v", overall)
	}
}

func TestCompareGroupedSkipsEmptyGroup(t *testing.T) {
	perfect := mapping.NewSame(dblpPub, acmPub)
	perfect.Add("unknown", "x", 1)
	got := perfect.Clone()
	res := CompareGrouped(got, perfect, func(model.ID) string { return "" })
	if res["overall"].TruePos != 0 {
		t.Errorf("skipped pairs should not count, got %+v", res["overall"])
	}
}

func TestResultString(t *testing.T) {
	r := Result{Precision: 0.973, Recall: 0.939, F1: 0.955}
	s := r.String()
	if !strings.Contains(s, "97.3%") || !strings.Contains(s, "93.9%") {
		t.Errorf("String = %q", s)
	}
	if Pct(0.919) != "91.9%" {
		t.Errorf("Pct = %q", Pct(0.919))
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table 2. Matching DBLP-ACM publications", "Matcher", "Precision", "Recall", "F-Measure")
	tab.AddRow("Title", "86.7%", "97.7%", "91.9%")
	tab.AddResultRow("Merge", Result{Precision: 0.973, Recall: 0.939, F1: 0.955})
	out := tab.String()
	for _, frag := range []string{"Table 2", "Matcher", "86.7%", "Merge", "95.5%", "---"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table missing %q:\n%s", frag, out)
		}
	}
}

func TestTableRowPadding(t *testing.T) {
	tab := NewTable("t", "A", "B")
	tab.AddRow("only-a")
	tab.AddRow("x", "y", "overflow-dropped")
	out := tab.String()
	if strings.Contains(out, "overflow") {
		t.Error("overflow cells must be dropped")
	}
}

func TestResultMatrix(t *testing.T) {
	results := map[string]Result{
		"Title": {Precision: 0.867, Recall: 0.977, F1: 0.919},
		"Merge": {Precision: 0.973, Recall: 0.939, F1: 0.955},
	}
	tab := ResultMatrix("Table 2", []string{"Title", "Merge"}, results)
	out := tab.String()
	for _, frag := range []string{"Precision", "Recall", "F-Measure", "86.7%", "95.5%"} {
		if !strings.Contains(out, frag) {
			t.Errorf("matrix missing %q:\n%s", frag, out)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]Result{"b": {}, "a": {}, "c": {}}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
