// Package eval measures match quality against manually-confirmed (here:
// generator-emitted) perfect mappings "with the standard metrics precision,
// recall and F-measure" (§5.1), and renders paper-style result tables.
//
// The evaluation is deliberately strict in the way §5.6 describes for
// Google Scholar: the perfect mapping enumerates every duplicate entry, so
// a match workflow is only fully rewarded when it finds all duplicate GS
// entries of a publication, not just one.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Result holds the three standard quality metrics plus the raw counts they
// derive from.
type Result struct {
	Precision float64
	Recall    float64
	F1        float64
	TruePos   int
	FalsePos  int
	FalseNeg  int
}

// eachMembership visits every correspondence of m and reports whether
// other also contains its (domain, range) pair. Mappings sharing an ID
// dictionary — every pair produced in-process without a private dictionary
// — probe ordinal-to-ordinal over the columns: one integer-keyed map hit
// per row, no id strings resolved or hashed except the domain id handed to
// fn for grouping. Mixed-dictionary pairs fall back to id-level probes.
func eachMembership(m, other *mapping.Mapping, fn func(domain model.ID, hit bool)) {
	if m.Dict() == other.Dict() {
		ids := m.Dict().All()
		m.EachOrd(func(d, rng uint32, _ float64) bool {
			fn(ids[d], other.HasOrd(d, rng))
			return true
		})
		return
	}
	m.Each(func(c mapping.Correspondence) {
		fn(c.Domain, other.Has(c.Domain, c.Range))
	})
}

// Compare evaluates got against the perfect mapping. Similarity values are
// ignored; membership decides. An empty perfect mapping yields recall 1;
// an empty result yields precision 1 (nothing wrong was claimed).
func Compare(got, perfect *mapping.Mapping) Result {
	var r Result
	eachMembership(got, perfect, func(_ model.ID, hit bool) {
		if hit {
			r.TruePos++
		} else {
			r.FalsePos++
		}
	})
	eachMembership(perfect, got, func(_ model.ID, hit bool) {
		if !hit {
			r.FalseNeg++
		}
	})
	r.Precision = safeDiv(r.TruePos, r.TruePos+r.FalsePos)
	r.Recall = safeDiv(r.TruePos, r.TruePos+r.FalseNeg)
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

func safeDiv(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// String renders the result in the paper's percentage style.
func (r Result) String() string {
	return fmt.Sprintf("P=%5.1f%% R=%5.1f%% F=%5.1f%%", 100*r.Precision, 100*r.Recall, 100*r.F1)
}

// Pct formats a ratio as a paper-style percentage.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// GroupFunc assigns a correspondence to a named group (e.g. "conference"
// vs "journal"), or "" to skip it. Grouping follows the domain instance.
type GroupFunc func(domain model.ID) string

// CompareGrouped evaluates got against perfect within each group. A
// correspondence belongs to the group of its domain object; pairs mapping
// to "" are ignored. Returns group name -> result, plus the overall result
// under the key "overall".
func CompareGrouped(got, perfect *mapping.Mapping, group GroupFunc) map[string]Result {
	type counts struct{ tp, fp, fn int }
	byGroup := make(map[string]*counts)
	touch := func(g string) *counts {
		c, ok := byGroup[g]
		if !ok {
			c = &counts{}
			byGroup[g] = c
		}
		return c
	}
	eachMembership(got, perfect, func(dom model.ID, hit bool) {
		g := group(dom)
		if g == "" {
			return
		}
		if hit {
			touch(g).tp++
		} else {
			touch(g).fp++
		}
	})
	eachMembership(perfect, got, func(dom model.ID, hit bool) {
		g := group(dom)
		if g == "" {
			return
		}
		if !hit {
			touch(g).fn++
		}
	})
	out := make(map[string]Result, len(byGroup)+1)
	var total counts
	for g, c := range byGroup {
		r := Result{TruePos: c.tp, FalsePos: c.fp, FalseNeg: c.fn}
		r.Precision = safeDiv(c.tp, c.tp+c.fp)
		r.Recall = safeDiv(c.tp, c.tp+c.fn)
		if r.Precision+r.Recall > 0 {
			r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
		}
		out[g] = r
		total.tp += c.tp
		total.fp += c.fp
		total.fn += c.fn
	}
	overall := Result{TruePos: total.tp, FalsePos: total.fp, FalseNeg: total.fn}
	overall.Precision = safeDiv(total.tp, total.tp+total.fp)
	overall.Recall = safeDiv(total.tp, total.tp+total.fn)
	if overall.Precision+overall.Recall > 0 {
		overall.F1 = 2 * overall.Precision * overall.Recall / (overall.Precision + overall.Recall)
	}
	out["overall"] = overall
	return out
}

// AttrGroup builds a GroupFunc that groups domain ids by an attribute of
// the given object set (e.g. venue kind).
func AttrGroup(set *model.ObjectSet, attr string) GroupFunc {
	return func(id model.ID) string {
		return set.Get(id).Attr(attr)
	}
}

// Table renders aligned text tables in the style of the paper's evaluation
// section; cmd/moma-bench prints these.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers. The
// first column is the row label.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddResultRow appends a row with label and the three metrics.
func (t *Table) AddResultRow(label string, r Result) {
	t.AddRow(label, Pct(r.Precision), Pct(r.Recall), Pct(r.F1))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// ResultMatrix renders a metric-by-strategy table like the paper's Tables
// 2 and 5-8: one column per named strategy, rows Precision / Recall /
// F-Measure. Strategies render in the order given.
func ResultMatrix(title string, names []string, results map[string]Result) *Table {
	t := NewTable(title, append([]string{"Matcher"}, names...)...)
	metric := func(label string, get func(Result) float64) {
		cells := []string{label}
		for _, n := range names {
			cells = append(cells, Pct(get(results[n])))
		}
		t.AddRow(cells...)
	}
	metric("Precision", func(r Result) float64 { return r.Precision })
	metric("Recall", func(r Result) float64 { return r.Recall })
	metric("F-Measure", func(r Result) float64 { return r.F1 })
	return t
}

// SortedKeys returns map keys sorted, for deterministic report rendering.
func SortedKeys(results map[string]Result) []string {
	keys := make([]string, 0, len(results))
	for k := range results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
