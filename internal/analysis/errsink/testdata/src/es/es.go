// Package es is golden input for errsink: dropped persistence errors.
package es

import (
	"bufio"
	"encoding/json"
	"io"
	"os"
)

// drops ignores every finalizer on writer-capable receivers.
func drops(f *os.File, w *bufio.Writer) {
	w.Flush() // want "error from .bufio.Writer.Flush is dropped"
	f.Sync()  // want "error from .os.File.Sync is dropped"
	f.Close() // want "error from .os.File.Close is dropped"
}

// deferred drops through defer, the classic shape.
func deferred(f *os.File) {
	defer f.Close() // want "error from .os.File.Close is dropped"
	_, _ = f.Write([]byte("x"))
}

// blanked drops explicitly via the blank identifier.
func blanked(enc *json.Encoder, v any) {
	_ = enc.Encode(v) // want "json.Encoder.Encode is dropped"
}

// handled propagates: nothing to report.
func handled(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// readOnly closes an io.ReadCloser: no Write method, not a sink, silent.
func readOnly(r io.ReadCloser) {
	defer r.Close()
}

// suppressed records why the drop is safe.
func suppressed(f *os.File) {
	//moma:errsink-ok read-only fd, no buffered writes to lose
	f.Close()
}

// suppressedBare forgot the justification.
func suppressedBare(f *os.File) {
	//moma:errsink-ok
	f.Close() // want "errsink-ok needs a one-line justification"
}
