package errsink_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errsink"
)

func TestErrsink(t *testing.T) {
	analysistest.Run(t, "testdata", errsink.Analyzer, "es")
}
