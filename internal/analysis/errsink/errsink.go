// Package errsink flags dropped error returns on persistence-critical
// calls. The WAL and snapshot paths in internal/store promise durability
// — an fsync'd frame is replayable after a crash — and that promise dies
// silently when a Close, Sync, Flush, or Encode error is discarded: the
// buffered bytes never reached the disk and nobody noticed.
//
// A call is a finding when all of these hold:
//
//   - the result is dropped: a bare expression statement, a `defer`, or
//     an assignment whose final (error) position is the blank identifier;
//   - the method is named Close, Sync, Flush, or Encode and its last
//     result is an error;
//   - the receiver can sink bytes: its method set has Write, WriteString,
//     ReadFrom, or Sync — or the method is Encode (encoders wrap a writer
//     they do not expose).
//
// The receiver filter is what keeps the analyzer quiet on read-side
// plumbing: `defer resp.Body.Close()` on an io.ReadCloser has no Write
// method and is not reported. Read-only *os.File closes DO match (a file
// handle can sink bytes) — that is deliberate: the suppression,
// //moma:errsink-ok <why> on the line or the enclosing function's doc,
// records why the drop is safe, and `moma-vet -suppressions` keeps the
// debt auditable.
package errsink

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errsink check.
var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc:  "flag dropped Close/Sync/Flush/Encode errors on writer-capable receivers",
	Run:  run,
}

// sinkMethods are the persistence-finalizing method names.
var sinkMethods = map[string]bool{"Close": true, "Sync": true, "Flush": true, "Encode": true}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			ast.Inspect(d.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						check(pass, d, call)
					}
				case *ast.DeferStmt:
					check(pass, d, n.Call)
				case *ast.GoStmt:
					check(pass, d, n.Call)
				case *ast.AssignStmt:
					// `_ = f.Close()` or `n, _ := w.Write...`: the error
					// position (last LHS) is blanked.
					if len(n.Rhs) != 1 {
						return true
					}
					call, ok := n.Rhs[0].(*ast.CallExpr)
					if !ok {
						return true
					}
					last, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident)
					if ok && last.Name == "_" {
						check(pass, d, call)
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

func check(pass *analysis.Pass, d *ast.FuncDecl, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !sinkMethods[sel.Sel.Name] {
		return
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !lastResultIsError(sig) {
		return
	}
	recv := pass.TypesInfo.Types[sel.X].Type
	if recv == nil {
		return
	}
	if fn.Name() != "Encode" && !writerCapable(recv) {
		return
	}
	if pass.Suppressed(call.Pos(), d.Doc, "errsink-ok") {
		return
	}
	pass.Reportf(call.Pos(),
		"error from %s.%s is dropped on a persistence-capable sink; handle it or annotate //moma:errsink-ok <why>",
		types.TypeString(recv, types.RelativeTo(pass.Pkg)), fn.Name())
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// writerCapable reports whether the receiver's method set (through a
// pointer) can sink bytes.
func writerCapable(t types.Type) bool {
	if !types.IsInterface(t) {
		if _, ok := t.(*types.Pointer); !ok {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "Write", "WriteString", "ReadFrom", "Sync":
			return true
		}
	}
	return false
}
