// Package analysistest runs an analyzer over golden packages under
// testdata/src/<pkg> and checks its diagnostics against // want "regex"
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Each expectation is a trailing comment on the line the diagnostic should
// land on; multiple quoted regexes expect multiple diagnostics on the line:
//
//	out = append(out, k) // want "appends to out"
//
// Packages are loaded in the order given, sharing one fact store, so a
// package may import an earlier one by its directory basename — that is
// how cross-package fact flow is tested. Standard-library imports resolve
// through export data from the build cache.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/analysis"
)

// Run loads each named package from testdata/src/<name>, applies the
// analyzer in order with shared facts, and reports mismatches with the
// // want expectations on t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	std := analysis.NewStdImporter(fset)
	facts := analysis.NewFactStore()
	loaded := make(map[string]*types.Package)

	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		files, err := parseDir(fset, dir)
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		info := analysis.NewTypesInfo()
		conf := types.Config{Importer: importerFunc(func(path string) (*types.Package, error) {
			if p, ok := loaded[path]; ok {
				return p, nil
			}
			return std.Import(path)
		})}
		tpkg, err := conf.Check(name, fset, files, info)
		if err != nil {
			t.Fatalf("typecheck %s: %v", name, err)
		}
		loaded[name] = tpkg

		var diags []analysis.Diagnostic
		pass := analysis.NewPass(a, fset, files, tpkg, info, facts, func(d analysis.Diagnostic) {
			diags = append(diags, d)
		})
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, name, err)
		}
		checkWants(t, fset, files, diags)
	}
}

// parseDir parses every .go file of dir in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one expectation: a pattern at a file line, matched at most once.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var (
	wantRx  = regexp.MustCompile(`// want (.*)$`)
	quoteRx = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// checkWants matches diagnostics against // want comments in files,
// reporting unexpected diagnostics and unmet expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				qs := quoteRx.FindAllStringSubmatch(m[1], -1)
				if len(qs) == 0 {
					t.Errorf("%s: // want comment with no quoted pattern", pos)
					continue
				}
				for _, q := range qs {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, q[1], err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.re)
		}
	}
}
