// Package columns is golden input for the columns analyzer.
package columns

// Mapping stores correspondences as parallel columns.
//
//moma:parallel dom rng sim
type Mapping struct {
	dom []uint32
	rng []uint32
	sim []float64
	n   int
}

// appendRow grows every column: fine.
func (m *Mapping) appendRow(d, r uint32, s float64) {
	m.dom = append(m.dom, d)
	m.rng = append(m.rng, r)
	m.sim = append(m.sim, s)
	m.n++
}

// truncate reslices every column: fine.
func (m *Mapping) truncate(n int) {
	m.dom = m.dom[:n]
	m.rng = m.rng[:n]
	m.sim = m.sim[:n]
}

// dropSims forgets two columns: sheared rows.
func (m *Mapping) dropSims() {
	m.sim = m.sim[:0] // want "dropSims writes parallel column\(s\) of m.sim but not dom, rng"
}

// swapDoms replaces one column only.
func (m *Mapping) swapDoms(dom []uint32) {
	m.dom = dom // want "swapDoms writes parallel column"
}

// elementWrite keeps lengths aligned: fine.
func (m *Mapping) elementWrite(i int, s float64) {
	m.sim[i] = s
}

// twoBases tracks each base separately.
func merge(dst, src *Mapping) {
	dst.dom = append(dst.dom, src.dom...)
	dst.rng = append(dst.rng, src.rng...)
	dst.sim = append(dst.sim, src.sim...)
}

// mergePartial shears dst while only reading src.
func mergePartial(dst, src *Mapping) {
	dst.dom = append(dst.dom, src.dom...) // want "mergePartial writes parallel column\(s\) of dst.dom,rng but not sim"
	dst.rng = append(dst.rng, src.rng...)
}

// reset is excused, with a reason.
//
//moma:columns-ok swapped wholesale by the caller right after
func (m *Mapping) reset() {
	m.dom = nil
}

// resetNoReason is excused but must say why.
//
//moma:columns-ok
func (m *Mapping) resetNoReason() { // want "needs a one-line justification"
	m.dom = nil
}

// siteSuppressed excuses a single write line.
func (m *Mapping) siteSuppressed() {
	m.sim = m.sim[:0] //moma:columns-ok sims are rebuilt by the next Score pass
}

// unrelated structs are untouched.
type plain struct{ xs, ys []int }

func (p *plain) grow(x int) {
	p.xs = append(p.xs, x)
}
