// Package columns enforces parallel-column discipline. The columnar core
// (PR 5) stores a mapping as parallel slices — dom, rng, sim — where row i
// of each column describes the same correspondence; live.Resolver and the
// dictionary shards use the same layout. The invariant is structural:
// any operation that changes the length or identity of one column must
// change all of them, in the same function, or rows silently shear.
//
// A struct declares its column groups in its doc comment:
//
//	//moma:parallel dom rng sim
//
// The analyzer then inspects every function for direct assignments to the
// named fields (x.f = ..., which covers append, reslice and replacement —
// the length/identity-changing writes; element writes x.f[i] = v keep the
// columns aligned and are ignored). A function writing a proper subset of
// a group on the same base is reported. Writes through an alias of the
// field (p := &x.f) are invisible — keep column writes direct.
//
// A justified //moma:columns-ok on the write line or the function's doc
// comment suppresses the report.
package columns

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the columns check.
var Analyzer = &analysis.Analyzer{
	Name: "columns",
	Doc:  "flag writes to a proper subset of a //moma:parallel column group",
	Run:  run,
}

// parallelFact records a struct's column group on its type name, so writes
// from dependent packages are checked too.
type parallelFact struct{ Fields []string }

func (*parallelFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	groups := collectGroups(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, groups, fd)
		}
	}
	return nil, nil
}

// collectGroups gathers //moma:parallel declarations from struct type docs,
// validates the named fields exist, and exports them as facts.
func collectGroups(pass *analysis.Pass) map[*types.TypeName][]string {
	groups := make(map[*types.TypeName][]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				d, ok := analysis.DocDirective(doc, "parallel")
				if !ok {
					continue
				}
				fields := strings.Fields(d.Args)
				if len(fields) < 2 {
					pass.Reportf(d.Pos, "//moma:parallel needs at least two field names")
					continue
				}
				tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				st, ok := tn.Type().Underlying().(*types.Struct)
				if !ok {
					pass.Reportf(d.Pos, "//moma:parallel on non-struct type %s", ts.Name.Name)
					continue
				}
				for _, name := range fields {
					if !hasField(st, name) {
						pass.Reportf(d.Pos, "//moma:parallel names unknown field %s of %s", name, ts.Name.Name)
					}
				}
				groups[tn] = fields
				pass.ExportObjectFact(tn, &parallelFact{Fields: fields})
			}
		}
	}
	return groups
}

func hasField(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}

// colWrite is one direct column assignment site.
type colWrite struct {
	field string
	pos   token.Pos
}

// baseKey identifies the written object: the struct's type name plus the
// textual base expression (so m.dom and other.dom are tracked separately).
type baseKey struct {
	tn   *types.TypeName
	base string
}

// checkFunc reports bases whose written columns are a proper subset of the
// declared group.
func checkFunc(pass *analysis.Pass, groups map[*types.TypeName][]string, fd *ast.FuncDecl) {
	if d, ok := analysis.DocDirective(fd.Doc, "columns-ok"); ok {
		if d.Args == "" {
			pass.Reportf(fd.Name.Pos(), "//moma:columns-ok needs a one-line justification")
		}
		return
	}
	writes := make(map[baseKey][]colWrite)
	var order []baseKey
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			tn, fields := groupOf(pass, groups, sel)
			if tn == nil || !contains(fields, sel.Sel.Name) {
				continue
			}
			if pass.Suppressed(lhs.Pos(), nil, "columns-ok") {
				continue
			}
			k := baseKey{tn: tn, base: types.ExprString(sel.X)}
			if _, seen := writes[k]; !seen {
				order = append(order, k)
			}
			writes[k] = append(writes[k], colWrite{field: sel.Sel.Name, pos: lhs.Pos()})
		}
		return true
	})

	for _, k := range order {
		group := groups[k.tn]
		if group == nil {
			var fact parallelFact
			if pass.ImportObjectFact(k.tn, &fact) {
				group = fact.Fields
			}
		}
		written := make(map[string]bool)
		for _, w := range writes[k] {
			written[w.field] = true
		}
		var missing []string
		for _, f := range group {
			if !written[f] {
				missing = append(missing, f)
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pass.Reportf(writes[k][0].pos,
			"%s writes parallel column(s) of %s.%s but not %s (//moma:parallel %s); update every column together or annotate //moma:columns-ok <why>",
			fd.Name.Name, k.base, joinFields(writes[k]), strings.Join(missing, ", "), strings.Join(group, " "))
	}
}

// groupOf resolves the selected field's owning named struct and its column
// group, consulting facts for types declared in dependency packages.
func groupOf(pass *analysis.Pass, groups map[*types.TypeName][]string, sel *ast.SelectorExpr) (*types.TypeName, []string) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, nil
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return nil, nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	tn := named.Obj()
	if fields, ok := groups[tn]; ok {
		return tn, fields
	}
	var fact parallelFact
	if pass.ImportObjectFact(tn, &fact) {
		return tn, fact.Fields
	}
	return nil, nil
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}

func joinFields(ws []colWrite) string {
	seen := make(map[string]bool)
	var out []string
	for _, w := range ws {
		if !seen[w.field] {
			seen[w.field] = true
			out = append(out, w.field)
		}
	}
	sort.Strings(out)
	return strings.Join(out, ",")
}
