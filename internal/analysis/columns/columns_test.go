package columns_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/columns"
)

func TestColumns(t *testing.T) {
	analysistest.Run(t, "testdata", columns.Analyzer, "columns")
}
