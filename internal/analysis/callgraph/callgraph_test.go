package callgraph

import (
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func newFunc(name string) *types.Func {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, nil, name, sig)
}

func node(fn *types.Func, callees ...*types.Func) *Node {
	n := &Node{Fn: fn}
	for _, c := range callees {
		n.Calls = append(n.Calls, Site{Callee: c})
	}
	return n
}

// TestPropagateChain pins the core fixpoint: marks flow from a seeded leaf
// backwards through callers, recording the chain, and stop at skipped nodes.
func TestPropagateChain(t *testing.T) {
	leaf, mid, root, cleared := newFunc("leaf"), newFunc("mid"), newFunc("root"), newFunc("cleared")
	nodes := []*Node{
		node(root, mid),
		node(mid, leaf),
		node(cleared, leaf),
	}
	marks := Marks{leaf: "leaf [seed]"}
	var marked []string
	Propagate(nodes, marks, nil,
		func(n *Node) bool { return n.Fn == cleared },
		func(n *Node, chain string) { marked = append(marked, n.Fn.Name()) })

	if got, want := marks[mid], "mid → leaf [seed]"; got != want {
		t.Errorf("mid chain = %q, want %q", got, want)
	}
	if got, want := marks[root], "root → mid → leaf [seed]"; got != want {
		t.Errorf("root chain = %q, want %q", got, want)
	}
	if _, ok := marks[cleared]; ok {
		t.Errorf("cleared node was marked: %q", marks[cleared])
	}
	if got := strings.Join(marked, ","); got != "mid,root" && got != "root,mid" {
		// Two fixpoint iterations: mid first (direct edge), root second.
		t.Errorf("onMark order = %q", got)
	}
}

// TestPropagateMutualRecursion: a cycle with no path to a seed never marks;
// a cycle with one does, and the fixpoint terminates.
func TestPropagateMutualRecursion(t *testing.T) {
	a, b := newFunc("a"), newFunc("b")
	marks := Marks{}
	Propagate([]*Node{node(a, b), node(b, a)}, marks, nil, nil, nil)
	if len(marks) != 0 {
		t.Errorf("unreachable cycle marked: %v", marks)
	}

	seed := newFunc("seed")
	marks = Marks{seed: "seed [leaf]"}
	Propagate([]*Node{node(a, b), node(b, a), node(b, seed)}, marks, nil, nil, nil)
	// The later node entry for b (with the seed edge) wins; both a and b mark.
	if marks[a] == "" || marks[b] == "" {
		t.Errorf("cycle with seeded escape did not fully mark: %v", marks)
	}
}

// TestPropagateLookup: cross-package marks arrive through the lookup
// callback (the analyzers' fact import).
func TestPropagateLookup(t *testing.T) {
	ext, caller := newFunc("ext"), newFunc("caller")
	marks := Marks{}
	Propagate([]*Node{node(caller, ext)}, marks,
		func(fn *types.Func) (string, bool) {
			if fn == ext {
				return "ext [imported fact]", true
			}
			return "", false
		}, nil, nil)
	if got, want := marks[caller], "caller → ext [imported fact]"; got != want {
		t.Errorf("caller chain = %q, want %q", got, want)
	}
}
