// Package callgraph is the shared call-graph machinery of the moma-vet
// analyzers that reason about reachability: dictgrowth ("can this read path
// reach an interning API?") and noalloc ("can this annotated hot function
// reach a heap allocation?"). Both walk the same statically-resolved call
// edges and propagate a string-valued mark — a human-readable chain ending
// at the property's leaf — backwards from callees to callers until a
// fixpoint, with cross-package edges flowing through analyzer facts.
//
// The graph is deliberately static and conservative in the same way as the
// x/tools callgraph/static package: calls through function-typed variables
// are invisible (no edge), interface calls resolve to the interface method
// object (which participates via annotation, not via its implementations).
// Analyzers that need stronger guarantees pair the static walk with a
// dynamic pin, e.g. a testing.AllocsPerRun gate.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Site is one statically-resolved outgoing call edge.
type Site struct {
	Callee *types.Func
	Pos    token.Pos
}

// Node is one function declaration with its outgoing edges.
type Node struct {
	Decl  *ast.FuncDecl
	Fn    *types.Func
	Calls []Site
}

// Collect gathers the function declarations of the pass's files and their
// statically-resolved call sites, in file and declaration order. skip, when
// non-nil, excludes individual call sites (suppressed lines, guarded
// branches) from the edge set.
func Collect(pass *analysis.Pass, skip func(*ast.CallExpr) bool) []*Node {
	var nodes []*Node
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			nodes = append(nodes, &Node{
				Decl:  d,
				Fn:    fn,
				Calls: Calls(pass.TypesInfo, d.Body, skip),
			})
		}
	}
	return nodes
}

// Calls returns the statically-resolved calls of one syntax subtree in
// source order, excluding sites skip rejects.
func Calls(info *types.Info, body ast.Node, skip func(*ast.CallExpr) bool) []Site {
	var out []Site
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil {
			return true
		}
		if skip != nil && skip(call) {
			return true
		}
		out = append(out, Site{Callee: fn, Pos: call.Pos()})
		return true
	})
	return out
}

// Marks is the propagated property of one analyzer run over one package:
// function -> human-readable chain down to the property's leaf.
type Marks map[*types.Func]string

// Propagate runs the fixpoint: a node with a marked callee — marked in
// this package, or marked in a dependency per lookup — becomes marked with
// "Display(node) → <callee chain>". skip, when non-nil, exempts nodes from
// ever being marked (cleared or separately-checked functions). onMark is
// invoked once per newly marked node, in discovery order; analyzers export
// their fact there. Iteration handles in-package mutual recursion; the
// driver's dependency-first package order handles cross-package edges.
func Propagate(nodes []*Node, marks Marks, lookup func(*types.Func) (string, bool), skip func(*Node) bool, onMark func(*Node, string)) {
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if marks[n.Fn] != "" || (skip != nil && skip(n)) {
				continue
			}
			for _, c := range n.Calls {
				chain, ok := marks[c.Callee]
				if !ok && lookup != nil {
					chain, ok = lookup(c.Callee)
				}
				if !ok {
					continue
				}
				full := Display(n.Fn) + " → " + chain
				marks[n.Fn] = full
				if onMark != nil {
					onMark(n, full)
				}
				changed = true
				break
			}
		}
	}
}

// Display renders a function as Name or Recv.Name, relative to its package.
func Display(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.TypeString(t, types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	return fn.Name()
}
