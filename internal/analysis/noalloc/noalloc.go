// Package noalloc machine-checks the repository's "0 allocs warm path"
// headline claims. The hot functions earn their benchmarks by never
// touching the heap in steady state — warm live.Resolver.Resolve, the
// index.Ords candidate probes, the profiled pair measures (ProfiledSim
// Compare stages), the columnar mapping read probes. Those claims were
// previously pinned only by benchmarks behind a >20% regression gate; a
// slowly-introduced allocation ships silently. This analyzer turns the
// claim into a machine-checked annotation.
//
// A function marked //moma:noalloc in its doc comment must not contain a
// heap-allocating construct and must not call — through any statically
// visible chain — a function that does. Flagged constructs: make, new,
// map/slice composite literals (and &T{} literals, which escape), func
// literals (closures), append (growth), string concatenation, string ↔
// []byte/[]rune conversions, boxing into interfaces, and calls into
// known-allocating standard-library APIs (fmt and errors wholesale, the
// allocating strings/strconv/sort/slices/bytes/maps entry points). The
// "can allocate" property propagates backwards through the call graph
// (internal/analysis/callgraph) — across packages via analyzer facts — so
// a //moma:noalloc function calling an allocating helper three packages
// away is reported with the full chain. Functions themselves annotated
// //moma:noalloc are trusted by their callers and checked at their own
// declaration, so one obligation never produces cascaded reports.
//
// Two escapes exist, both requiring a one-line justification:
//
//   - //moma:cold <why> on a statement exempts that statement's whole
//     subtree — the idiom for one-time growth branches (lazy cache
//     builds, first-call pool fills) inside a warm function.
//   - //moma:noalloc-ok <why> on a site line (or, wholesale, in a
//     function's doc comment) suppresses one construct — the idiom for
//     appends into pooled or caller-reused buffers, and for closures the
//     compiler provably keeps on the stack.
//
// The analysis is conservative where Go's escape analysis is precise: a
// value struct literal costs nothing and is not flagged, but a closure or
// an append the compiler would keep on the stack is still reported —
// suppress it and say why. Calls through function values are invisible to
// the propagation, and interface method calls resolve to the interface
// method (trusted unless the method itself is reachable-marked); the
// testing.AllocsPerRun gates on the annotated paths complement the static
// walk dynamically.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the noalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "flag //moma:noalloc functions that can reach a heap allocation",
	Run:  run,
}

// allocsFact marks a function that can (transitively) allocate; Chain is
// the human-readable call path down to the allocating construct.
type allocsFact struct{ Chain string }

func (*allocsFact) AFact() {}

// site is one allocating construct found in a function body.
type site struct {
	pos  token.Pos
	desc string
}

func run(pass *analysis.Pass) (any, error) {
	nodes := callgraph.Collect(pass, func(call *ast.CallExpr) bool {
		return suppressedAt(pass, call.Pos())
	})

	marks := make(callgraph.Marks)
	noalloc := make(map[*ast.FuncDecl]bool)
	cleared := make(map[*ast.FuncDecl]bool)
	sites := make(map[*ast.FuncDecl][]site)
	for _, n := range nodes {
		if _, ok := analysis.DocDirective(n.Decl.Doc, "noalloc"); ok {
			noalloc[n.Decl] = true
		}
		if d, ok := analysis.DocDirective(n.Decl.Doc, "noalloc-ok"); ok {
			cleared[n.Decl] = true
			if d.Args == "" {
				pass.Reportf(n.Decl.Name.Pos(), "//moma:noalloc-ok needs a one-line justification")
			}
		}
		if cleared[n.Decl] {
			continue
		}
		sites[n.Decl] = collectAllocs(pass, n.Decl)
	}

	// Seed: a function with an unsuppressed allocating construct can
	// allocate. //moma:noalloc functions are exempt from marking — their
	// violations are reported at their own declaration below, and callers
	// trust the annotation rather than re-deriving it.
	for _, n := range nodes {
		if noalloc[n.Decl] || cleared[n.Decl] {
			continue
		}
		if ss := sites[n.Decl]; len(ss) > 0 {
			chain := fmt.Sprintf("%s [%s]", callgraph.Display(n.Fn), ss[0].desc)
			marks[n.Fn] = chain
			pass.ExportObjectFact(n.Fn, &allocsFact{Chain: chain})
		}
	}

	callgraph.Propagate(nodes, marks,
		func(callee *types.Func) (string, bool) {
			var fact allocsFact
			if pass.ImportObjectFact(callee, &fact) {
				return fact.Chain, true
			}
			return "", false
		},
		func(n *callgraph.Node) bool { return noalloc[n.Decl] || cleared[n.Decl] },
		func(n *callgraph.Node, chain string) {
			pass.ExportObjectFact(n.Fn, &allocsFact{Chain: chain})
		})

	// Report, for every //moma:noalloc function: its own allocating
	// constructs, then every call edge that reaches an allocating callee.
	for _, n := range nodes {
		if !noalloc[n.Decl] {
			continue
		}
		for _, s := range sites[n.Decl] {
			pass.Reportf(s.pos,
				"heap allocation on //moma:noalloc path %s: %s (move it behind //moma:cold <why> or suppress with //moma:noalloc-ok <why>)",
				callgraph.Display(n.Fn), s.desc)
		}
		for _, c := range n.Calls {
			chain, ok := marks[c.Callee]
			if !ok {
				var fact allocsFact
				if pass.ImportObjectFact(c.Callee, &fact) {
					chain, ok = fact.Chain, true
				}
			}
			if !ok {
				continue
			}
			pass.Reportf(c.Pos,
				"//moma:noalloc function %s calls a function that can allocate: %s",
				callgraph.Display(n.Fn), chain)
		}
	}
	return nil, nil
}

// suppressedAt reports whether the line carries a justified
// //moma:noalloc-ok, reporting bare ones (Suppressed's contract).
func suppressedAt(pass *analysis.Pass, pos token.Pos) bool {
	return pass.Suppressed(pos, nil, "noalloc-ok")
}

// collectAllocs walks one declaration and returns its allocating
// constructs, skipping //moma:cold statements and suppressed lines.
func collectAllocs(pass *analysis.Pass, decl *ast.FuncDecl) []site {
	var out []site
	flag := func(pos token.Pos, desc string) {
		if suppressedAt(pass, pos) {
			return
		}
		out = append(out, site{pos: pos, desc: desc})
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if stmt, ok := n.(ast.Stmt); ok {
			if d, cold := pass.DirectiveAt(stmt.Pos(), "cold"); cold {
				if d.Args == "" {
					pass.Reportf(stmt.Pos(), "//moma:cold needs a one-line justification")
				}
				return false // the whole branch is exempt
			}
		}
		switch e := n.(type) {
		case *ast.FuncLit:
			flag(e.Pos(), "func literal (closure may escape to the heap)")
			return true // constructs inside the closure are still this function's
		case *ast.CompositeLit:
			switch under(pass, e).(type) {
			case *types.Map:
				flag(e.Pos(), "map literal")
			case *types.Slice:
				flag(e.Pos(), "slice literal")
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					flag(e.Pos(), "&"+typeName(pass, cl)+"{} escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isString(pass, e.X) {
				flag(e.Pos(), "string concatenation")
			}
		case *ast.CallExpr:
			if s, ok := classifyCall(pass, e); ok {
				flag(e.Pos(), s)
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	return out
}

// classifyCall reports whether a call expression allocates by itself:
// builtins (make, new, append), allocating conversions, boxing into an
// interface, or a known-allocating standard-library call.
func classifyCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	// Conversions: T(x) where T is a type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return classifyConversion(pass, tv.Type, call.Args[0])
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch obj.Name() {
			case "make":
				return "make", true
			case "new":
				return "new", true
			case "append":
				return "append may grow its backing array", true
			}
		}
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	if pkg == "fmt" || pkg == "errors" {
		return "call to " + pkg + "." + name + " (allocates)", true
	}
	if names, ok := allocStd[pkg]; ok && names[name] {
		return "call to " + pkg + "." + name + " (allocates)", true
	}
	return "", false
}

// classifyConversion flags the conversions that copy memory or box.
func classifyConversion(pass *analysis.Pass, to types.Type, arg ast.Expr) (string, bool) {
	from := pass.TypesInfo.Types[arg].Type
	if from == nil {
		return "", false
	}
	tu, fu := to.Underlying(), from.Underlying()
	if types.IsInterface(tu) && !types.IsInterface(fu) && !isNil(fu) {
		return "boxing into " + to.String(), true
	}
	if isStringType(tu) && isByteOrRuneSlice(fu) {
		return "string([]byte/[]rune) conversion copies", true
	}
	if isByteOrRuneSlice(tu) && isStringType(fu) {
		return "[]byte/[]rune(string) conversion copies", true
	}
	return "", false
}

// allocStd names the out-of-module standard-library entry points the
// analyzer treats as allocating. Out-of-module packages are loaded from
// export data (no syntax), so the property cannot be derived; this list
// covers the APIs that plausibly appear near the repo's hot paths. fmt and
// errors are flagged wholesale in classifyCall.
var allocStd = map[string]map[string]bool{
	"strings": set("Split", "SplitN", "SplitAfter", "Fields", "FieldsFunc", "Join",
		"Repeat", "Replace", "ReplaceAll", "ToLower", "ToUpper", "ToTitle", "Map",
		"Clone", "Builder", "WriteString", "WriteRune", "WriteByte", "Grow", "String"),
	"strconv": set("Itoa", "Quote", "QuoteRune", "Unquote", "FormatInt",
		"FormatUint", "FormatFloat", "AppendInt", "AppendUint", "AppendFloat",
		"AppendQuote"),
	"sort":         set("Sort", "Stable", "Slice", "SliceStable", "Float64s", "Ints", "Strings"),
	"bytes":        set("Clone", "Join", "Split", "Fields", "Repeat", "ToLower", "ToUpper", "NewBuffer", "NewBufferString"),
	"slices":       set("Clone", "Collect", "Sorted", "SortedFunc", "Insert", "Concat", "AppendSeq", "Grow"),
	"maps":         set("Clone", "Collect"),
	"unicode/utf8": set(), // DecodeRune and friends are clean
}

func set(names ...string) map[string]bool {
	m := make(map[string]bool, len(names))
	for _, n := range names {
		m[n] = true
	}
	return m
}

func under(pass *analysis.Pass, e ast.Expr) types.Type {
	if t := pass.TypesInfo.Types[e].Type; t != nil {
		return t.Underlying()
	}
	return nil
}

func typeName(pass *analysis.Pass, e ast.Expr) string {
	if t := pass.TypesInfo.Types[e].Type; t != nil {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	return "T"
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := under(pass, e)
	return t != nil && isStringType(t)
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
