package noalloc_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

// Package nd (the allocating dependency) is analyzed before na (the
// annotated hot functions) so allocation facts flow across the import edge.
func TestNoalloc(t *testing.T) {
	analysistest.Run(t, "testdata", noalloc.Analyzer, "nd", "na")
}
