// Package nd is golden input for noalloc: the dependency side. Alloc's
// "can allocate" mark must cross the import edge into package na via an
// exported object fact.
package nd

// Alloc allocates; callers in package na learn through the fact.
func Alloc(n int) []int {
	return make([]int, n)
}

// Sum is annotated clean and trusted by callers without re-derivation.
//
//moma:noalloc
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
