// Package na is golden input for noalloc: annotated hot functions and the
// construct classes the analyzer must flag.
package na

import (
	"fmt"

	"nd"
)

// Grow trips the direct construct classes, one per line.
//
//moma:noalloc
func Grow(n int, bs []byte) string {
	m := map[int]int{}                     // want "map literal"
	s := make([]int, n)                    // want "path Grow: make"
	p := new(int)                          // want "path Grow: new"
	s = append(s, *p)                      // want "append may grow its backing array"
	f := func() int { return m[0] + s[0] } // want "func literal"
	_ = []int{1, 2, 3}                     // want "slice literal"
	_ = f()
	return string(bs) + "x" // want "conversion copies" "string concatenation"
}

type point struct{ x, y int }

// NewPoint's pointer-to-literal escapes.
//
//moma:noalloc
func NewPoint() *point {
	return &point{1, 2} // want "escapes to the heap"
}

// Box boxes a concrete value into an interface.
//
//moma:noalloc
func Box(n int) any {
	return any(n) // want "boxing into any"
}

// Describe calls into fmt, flagged wholesale.
//
//moma:noalloc
func Describe(n int) string {
	return fmt.Sprintf("%d", n) // want "call to fmt.Sprintf"
}

// helper is not annotated: its allocation is legal here, but the mark
// propagates to annotated callers with the chain.
func helper(n int) []int {
	return nd.Alloc(n)
}

// Probe reaches an allocation two hops away, one across the import edge.
//
//moma:noalloc
func Probe(n int) int {
	xs := helper(n) // want "calls a function that can allocate: helper → Alloc"
	return len(xs)
}

// Total calls an annotated-clean dependency: trusted, no report.
//
//moma:noalloc
func Total(xs []int) int {
	return nd.Sum(xs)
}

type cache struct{ vals map[int]int }

// Cached hides one-time growth behind a justified cold branch.
//
//moma:noalloc
func Cached(c *cache, k int) int {
	if c.vals == nil {
		//moma:cold first call builds the cache, steady state only reads
		c.vals = map[int]int{k: k}
	}
	return c.vals[k]
}

// ColdBare exempts the branch but forgot to say why.
//
//moma:noalloc
func ColdBare(c *cache, k int) int {
	if c.vals == nil {
		//moma:cold
		c.vals = map[int]int{k: k} // want "cold needs a one-line justification"
	}
	return c.vals[k]
}

// Reuse suppresses an append into caller-provisioned capacity.
//
//moma:noalloc
func Reuse(dst, src []int) []int {
	dst = append(dst, src...) //moma:noalloc-ok caller provisions capacity, never grows
	return dst
}

// BareSuppression suppresses without a justification: itself a finding.
//
//moma:noalloc
func BareSuppression(dst []int) []int {
	//moma:noalloc-ok
	return append(dst, 1) // want "noalloc-ok needs a one-line justification"
}

// onceInit allocates but is cleared wholesale with a justification, so
// callers do not inherit the mark.
//
//moma:noalloc-ok called once at startup before serving begins
func onceInit() map[int]int {
	return map[int]int{0: 0}
}

// UsesCleared trusts the wholesale clearance.
//
//moma:noalloc
func UsesCleared(k int) int {
	m := onceInit()
	return m[k]
}

// scratch allocates freely: not annotated, nothing reported here.
func scratch(n int) []int {
	return make([]int, n)
}

// Indirect keeps scratch reachable and itself unannotated: still silent.
func Indirect(n int) int {
	return len(scratch(n))
}
