package analysis

// Comment directives: the repository's invariants are declared in the code
// they protect as //moma:<name> [args] comments. The full vocabulary:
//
//	//moma:interns [note]          this function/method grows a dictionary
//	                               (seed of the dictgrowth call-graph walk)
//	//moma:readpath                entry point that must never reach an
//	                               interning API (dictgrowth checks it)
//	//moma:parallel f1 f2 ...      (on a struct type) the named fields are
//	                               parallel columns; any function changing
//	                               one must change all (columns)
//	//moma:locked mu [mu2 ...]     callers hold the named mutex(es); the
//	                               function may touch fields guarded by
//	                               them (guardedby)
//	// guarded by mu               (on a struct field) reads and writes
//	                               require the sibling mutex mu (guardedby)
//	//moma:noalloc                 this function is a steady-state hot path:
//	                               no heap allocation on any reachable path,
//	                               transitively through the call graph
//	                               (noalloc)
//	//moma:cold why                (inside a noalloc function, on or above a
//	                               statement) the statement subtree runs
//	                               once or rarely — lazy init, first-call
//	                               growth — and may allocate; the
//	                               justification is mandatory (noalloc)
//
// and the per-analyzer suppressions, each of which MUST carry a one-line
// justification (analyzers reject bare suppressions):
//
//	//moma:nondeterministic-ok why   (mapiter, on the range statement)
//	//moma:dictgrowth-ok why         (dictgrowth, on a call site or func)
//	//moma:columns-ok why            (columns, on a write site or func)
//	//moma:guardedby-ok why          (guardedby, on an access site or func)
//	//moma:noalloc-ok why            (noalloc, on an allocation site —
//	                                 e.g. append into reused capacity, a
//	                                 provably stack-allocated closure)
//	//moma:workerpool-ok why         (workerpool, on the go statement or the
//	                                 launching function)
//	//moma:errsink-ok why            (errsink, on the dropped Close/Sync/
//	                                 Flush/Encode call)
//
// Site-level directives go on the governed line or the line immediately
// above it (DirectiveAt); function-level ones in the doc comment.
// moma-vet -suppressions lists every suppression in the module with its
// justification.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //moma:<name> [args] comment.
type Directive struct {
	Pos  token.Pos
	Name string
	Args string
}

const directivePrefix = "//moma:"

// parseDirective parses one comment line; ok is false for ordinary comments.
func parseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, directivePrefix)
	if !found {
		return Directive{}, false
	}
	name, args, _ := strings.Cut(text, " ")
	name = strings.TrimSpace(name)
	if name == "" {
		return Directive{}, false
	}
	return Directive{Pos: c.Pos(), Name: name, Args: strings.TrimSpace(args)}, true
}

// DocDirectives returns the directives of a doc comment group with the
// given name (all of them for name "").
func DocDirectives(doc *ast.CommentGroup, name string) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		if d, ok := parseDirective(c); ok && (name == "" || d.Name == name) {
			out = append(out, d)
		}
	}
	return out
}

// DocDirective returns the first directive of the given name in doc.
func DocDirective(doc *ast.CommentGroup, name string) (Directive, bool) {
	ds := DocDirectives(doc, name)
	if len(ds) == 0 {
		return Directive{}, false
	}
	return ds[0], true
}

// buildNotes indexes every //moma: directive of the pass's files by file
// and line, including trailing comments and free-standing ones.
func (p *Pass) buildNotes() {
	p.notes = make(map[string]map[int][]Directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.notes[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]Directive)
					p.notes[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// DirectiveAt returns a directive of the given name on the same line as
// pos or on the line immediately above it — the two idiomatic placements
// for a site-level annotation.
func (p *Pass) DirectiveAt(pos token.Pos, name string) (Directive, bool) {
	if p.notes == nil {
		p.buildNotes()
	}
	at := p.Fset.Position(pos)
	byLine := p.notes[at.Filename]
	for _, line := range []int{at.Line, at.Line - 1} {
		for _, d := range byLine[line] {
			if d.Name == name {
				return d, true
			}
		}
	}
	return Directive{}, false
}

// Suppressed reports whether a site is excused by the named suppression
// directive at pos or in the enclosing declaration's doc comment. A
// suppression without a justification is itself reported (at the governed
// site) — every remaining //moma:*-ok in the tree must say why it is safe.
func (p *Pass) Suppressed(pos token.Pos, doc *ast.CommentGroup, name string) bool {
	d, ok := p.DirectiveAt(pos, name)
	if !ok && doc != nil {
		d, ok = DocDirective(doc, name)
	}
	if !ok {
		return false
	}
	if d.Args == "" {
		p.Reportf(pos, "//moma:%s needs a one-line justification", name)
	}
	return true
}
