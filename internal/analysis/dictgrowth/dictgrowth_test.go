package dictgrowth_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/dictgrowth"
)

// Package b (the dictionary owner) is analyzed before a (the read paths) so
// interning facts flow across the import edge.
func TestDictgrowth(t *testing.T) {
	analysistest.Run(t, "testdata", dictgrowth.Analyzer, "b", "a")
}
