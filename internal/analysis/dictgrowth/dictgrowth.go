// Package dictgrowth machine-checks the PR 4 ownership rule: read traffic
// never grows a dictionary. Interning tables (sim.Dict, model.IDDict) are
// append-only and never reclaimed, so a read path that interns turns an
// unbounded query stream into unbounded memory growth — the exact failure
// the lookup-only probe APIs (Dict.Lookup, LookupTokenIDs, QueryProfiler)
// exist to prevent.
//
// The rule is declared in the code: leaf growth APIs carry //moma:interns
// (Dict.ID, IDDict.Ord — and interface methods whose contract permits
// interning, such as sim.ProfiledSim.Profile), and read-side entry points
// carry //moma:readpath (live.Resolver.Resolve, the serve read handlers).
// The analyzer propagates "can reach an interning API" backwards through
// the static call graph — across packages via analyzer facts — and reports
// every read-path entry point that can reach a leaf, with the call chain.
//
// Calls through function values are invisible to the propagation (a
// documented limitation shared with most static call-graph analyses);
// interface calls resolve to the interface method, which participates via
// annotation. A call site that is provably guarded may be excused with a
// justified //moma:dictgrowth-ok on the call line; a function annotated so
// in its doc comment is treated as non-interning wholesale.
package dictgrowth

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the dictgrowth check.
var Analyzer = &analysis.Analyzer{
	Name: "dictgrowth",
	Doc:  "flag //moma:readpath functions that can reach a //moma:interns API",
	Run:  run,
}

// internsFact marks a function that can (transitively) intern; Chain is
// the human-readable call path down to the leaf.
type internsFact struct{ Chain string }

func (*internsFact) AFact() {}

// callSite is one statically-resolved outgoing edge of a function.
type callSite struct {
	callee *types.Func
	pos    token.Pos
}

type funcInfo struct {
	decl     *ast.FuncDecl
	fn       *types.Func
	calls    []callSite
	readpath bool
	cleared  bool // //moma:dictgrowth-ok on the function: treat as clean
}

func run(pass *analysis.Pass) (any, error) {
	var funcs []*funcInfo
	marked := make(map[*types.Func]string)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				fn, _ := pass.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil || d.Body == nil {
					continue
				}
				fi := &funcInfo{decl: d, fn: fn}
				if _, ok := analysis.DocDirective(d.Doc, "readpath"); ok {
					fi.readpath = true
				}
				if dd, ok := analysis.DocDirective(fi.decl.Doc, "dictgrowth-ok"); ok {
					fi.cleared = true
					if dd.Args == "" {
						pass.Reportf(d.Name.Pos(), "//moma:dictgrowth-ok needs a one-line justification")
					}
				}
				if d, ok := analysis.DocDirective(fi.decl.Doc, "interns"); ok && !fi.cleared {
					_ = d
					chain := display(fn) + " [//moma:interns]"
					marked[fn] = chain
					pass.ExportObjectFact(fn, &internsFact{Chain: chain})
				}
				fi.calls = collectCalls(pass, d)
				funcs = append(funcs, fi)
			case *ast.GenDecl:
				seedInterfaceMethods(pass, d, marked)
			}
		}
	}

	// Fixpoint: a function that calls a marked function is marked. The
	// loader analyzes dependencies first, so cross-package reachability
	// arrives through facts; within the package, iterate until stable
	// (handles mutual recursion).
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.cleared || marked[fi.fn] != "" {
				continue
			}
			for _, c := range fi.calls {
				chain, ok := marked[c.callee]
				if !ok {
					var fact internsFact
					if pass.ImportObjectFact(c.callee, &fact) {
						chain, ok = fact.Chain, true
					}
				}
				if !ok {
					continue
				}
				full := display(fi.fn) + " → " + chain
				marked[fi.fn] = full
				pass.ExportObjectFact(fi.fn, &internsFact{Chain: full})
				changed = true
				break
			}
		}
	}

	for _, fi := range funcs {
		if !fi.readpath {
			continue
		}
		if chain, ok := marked[fi.fn]; ok {
			pass.Reportf(fi.decl.Name.Pos(),
				"read path %s can reach an interning API: %s; keep read traffic lookup-only (fix the call, or annotate the guarded call site //moma:dictgrowth-ok <why>)",
				display(fi.fn), chain)
		}
	}
	return nil, nil
}

// collectCalls gathers the statically-resolved calls of a declaration,
// skipping call sites excused by a justified line-level //moma:dictgrowth-ok.
func collectCalls(pass *analysis.Pass, d *ast.FuncDecl) []callSite {
	var out []callSite
	ast.Inspect(d.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if pass.Suppressed(call.Pos(), nil, "dictgrowth-ok") {
			return true
		}
		out = append(out, callSite{callee: fn, pos: call.Pos()})
		return true
	})
	return out
}

// seedInterfaceMethods marks interface methods annotated //moma:interns:
// calls through such an interface count as potential interning even though
// the concrete implementation is unknown statically.
func seedInterfaceMethods(pass *analysis.Pass, gd *ast.GenDecl, marked map[*types.Func]string) {
	for _, spec := range gd.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		it, ok := ts.Type.(*ast.InterfaceType)
		if !ok {
			continue
		}
		for _, m := range it.Methods.List {
			if _, ok := analysis.DocDirective(m.Doc, "interns"); !ok || len(m.Names) == 0 {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[m.Names[0]].(*types.Func)
			if fn == nil {
				continue
			}
			chain := ts.Name.Name + "." + fn.Name() + " [interface, //moma:interns]"
			marked[fn] = chain
			pass.ExportObjectFact(fn, &internsFact{Chain: chain})
		}
	}
}

// display renders a function as Name or Recv.Name.
func display(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		return types.TypeString(t, types.RelativeTo(fn.Pkg())) + "." + fn.Name()
	}
	return fn.Name()
}
