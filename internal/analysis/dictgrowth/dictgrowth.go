// Package dictgrowth machine-checks the PR 4 ownership rule: read traffic
// never grows a dictionary. Interning tables (sim.Dict, model.IDDict) are
// append-only and never reclaimed, so a read path that interns turns an
// unbounded query stream into unbounded memory growth — the exact failure
// the lookup-only probe APIs (Dict.Lookup, LookupTokenIDs, QueryProfiler)
// exist to prevent.
//
// The rule is declared in the code: leaf growth APIs carry //moma:interns
// (Dict.ID, IDDict.Ord — and interface methods whose contract permits
// interning, such as sim.ProfiledSim.Profile), and read-side entry points
// carry //moma:readpath (live.Resolver.Resolve, the serve read handlers).
// The analyzer propagates "can reach an interning API" backwards through
// the static call graph — across packages via analyzer facts — and reports
// every read-path entry point that can reach a leaf, with the call chain.
// The walk and fixpoint live in internal/analysis/callgraph, shared with
// the noalloc analyzer.
//
// Calls through function values are invisible to the propagation (a
// documented limitation shared with most static call-graph analyses);
// interface calls resolve to the interface method, which participates via
// annotation. A call site that is provably guarded may be excused with a
// justified //moma:dictgrowth-ok on the call line; a function annotated so
// in its doc comment is treated as non-interning wholesale.
package dictgrowth

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the dictgrowth check.
var Analyzer = &analysis.Analyzer{
	Name: "dictgrowth",
	Doc:  "flag //moma:readpath functions that can reach a //moma:interns API",
	Run:  run,
}

// internsFact marks a function that can (transitively) intern; Chain is
// the human-readable call path down to the leaf.
type internsFact struct{ Chain string }

func (*internsFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	nodes := callgraph.Collect(pass, func(call *ast.CallExpr) bool {
		return pass.Suppressed(call.Pos(), nil, "dictgrowth-ok")
	})

	marks := make(callgraph.Marks)
	readpath := make(map[*ast.FuncDecl]bool)
	cleared := make(map[*ast.FuncDecl]bool)
	for _, n := range nodes {
		if _, ok := analysis.DocDirective(n.Decl.Doc, "readpath"); ok {
			readpath[n.Decl] = true
		}
		if d, ok := analysis.DocDirective(n.Decl.Doc, "dictgrowth-ok"); ok {
			cleared[n.Decl] = true
			if d.Args == "" {
				pass.Reportf(n.Decl.Name.Pos(), "//moma:dictgrowth-ok needs a one-line justification")
			}
		}
		if _, ok := analysis.DocDirective(n.Decl.Doc, "interns"); ok && !cleared[n.Decl] {
			chain := callgraph.Display(n.Fn) + " [//moma:interns]"
			marks[n.Fn] = chain
			pass.ExportObjectFact(n.Fn, &internsFact{Chain: chain})
		}
	}
	// Interface methods annotated //moma:interns: calls through such an
	// interface count as potential interning even though the concrete
	// implementation is unknown statically.
	seedInterfaceMethods(pass, marks)

	// Fixpoint: a function that calls a marked function is marked. The
	// loader analyzes dependencies first, so cross-package reachability
	// arrives through facts.
	callgraph.Propagate(nodes, marks,
		func(callee *types.Func) (string, bool) {
			var fact internsFact
			if pass.ImportObjectFact(callee, &fact) {
				return fact.Chain, true
			}
			return "", false
		},
		func(n *callgraph.Node) bool { return cleared[n.Decl] },
		func(n *callgraph.Node, chain string) {
			pass.ExportObjectFact(n.Fn, &internsFact{Chain: chain})
		})

	for _, n := range nodes {
		if !readpath[n.Decl] {
			continue
		}
		if chain, ok := marks[n.Fn]; ok {
			pass.Reportf(n.Decl.Name.Pos(),
				"read path %s can reach an interning API: %s; keep read traffic lookup-only (fix the call, or annotate the guarded call site //moma:dictgrowth-ok <why>)",
				callgraph.Display(n.Fn), chain)
		}
	}
	return nil, nil
}

// seedInterfaceMethods marks interface methods annotated //moma:interns.
func seedInterfaceMethods(pass *analysis.Pass, marks callgraph.Marks) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				it, ok := ts.Type.(*ast.InterfaceType)
				if !ok {
					continue
				}
				for _, m := range it.Methods.List {
					if _, ok := analysis.DocDirective(m.Doc, "interns"); !ok || len(m.Names) == 0 {
						continue
					}
					fn, _ := pass.TypesInfo.Defs[m.Names[0]].(*types.Func)
					if fn == nil {
						continue
					}
					chain := ts.Name.Name + "." + fn.Name() + " [interface, //moma:interns]"
					marks[fn] = chain
					pass.ExportObjectFact(fn, &internsFact{Chain: chain})
				}
			}
		}
	}
}
