// Package a is golden input for dictgrowth: the read-path side.
package a

import "b"

// Resolve is a read path that stays lookup-only: fine.
//
//moma:readpath
func Resolve(d *b.Dict, q string) int {
	if id, ok := d.Lookup(q); ok {
		return id
	}
	return -1
}

// ResolveGrowing reaches Dict.ID through two in-package hops.
//
//moma:readpath
func ResolveGrowing(d *b.Dict, q string) int { // want "read path ResolveGrowing can reach an interning API: ResolveGrowing → prepare → Helper → Dict.ID"
	return prepare(d, q)
}

func prepare(d *b.Dict, q string) int {
	return b.Helper(d, q)
}

// ResolveViaInterface reaches the annotated interface method.
//
//moma:readpath
func ResolveViaInterface(p b.Profiler, q string) []int { // want "read path ResolveViaInterface can reach an interning API"
	return p.Profile(q)
}

// ResolveSuppressedEdge excuses a guarded call site with a justification.
//
//moma:readpath
func ResolveSuppressedEdge(d *b.Dict, q string) int {
	return b.Helper(d, q) //moma:dictgrowth-ok warmup path runs before serving starts
}

// write paths may intern freely: no //moma:readpath, no report.
func Ingest(d *b.Dict, q string) int {
	return d.ID(q)
}

// ClearedWithoutReason is treated as clean but must justify itself.
//
//moma:dictgrowth-ok
func ClearedWithoutReason(d *b.Dict, q string) int { // want "needs a one-line justification"
	return d.ID(q)
}
