// Package b is golden input for dictgrowth: the dictionary-owning side.
package b

// Dict is a toy interning dictionary.
type Dict struct {
	ids  map[string]int
	strs []string
}

// ID interns s.
//
//moma:interns
func (d *Dict) ID(s string) int {
	if id, ok := d.ids[s]; ok {
		return id
	}
	id := len(d.strs)
	d.strs = append(d.strs, s)
	d.ids[s] = id
	return id
}

// Lookup probes without growing.
func (d *Dict) Lookup(s string) (int, bool) {
	id, ok := d.ids[s]
	return id, ok
}

// Profiler's Profile may intern by contract.
type Profiler interface {
	//moma:interns implementations may grow the dictionary
	Profile(s string) []int
}

// Helper interns transitively — reachability must cross into package a via
// an exported fact on Helper.
func Helper(d *Dict, s string) int {
	return d.ID(s)
}
