// Package analysis is a minimal, dependency-free reimplementation of the
// core of golang.org/x/tools/go/analysis, plus a go-list-driven loader and
// multichecker driver (run.go, load.go). The repository vendors no third
// party modules, so the x/tools framework is unavailable; this package
// keeps the same shape — Analyzer, Pass, Diagnostic, object Facts — so the
// moma-vet analyzers read like stock go/analysis checkers and could be
// ported to the real framework by swapping the import.
//
// The analyzers under internal/analysis/... machine-check the repository's
// construction rules (see "Repo invariants" in the root package doc):
// deterministic map iteration (mapiter), no interning on read paths
// (dictgrowth), parallel-column discipline (columns) and mutex-guarded
// field access (guardedby). Rules are declared as //moma:* comment
// directives in the code they protect, so the invariants live next to the
// code as checkable artifacts rather than as tribal knowledge.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static check, mirroring the x/tools type of the
// same name.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags.
	Name string
	// Doc is the help text; its first line is the summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Fact is an analyzer-private datum attached to a types.Object and visible
// to later passes of the same analyzer over dependent packages. Facts must
// be pointer types with an AFact method, as in x/tools.
type Fact interface{ AFact() }

// factKey identifies one fact: facts of distinct types coexist on an
// object, facts of the same type overwrite.
type factKey struct {
	obj types.Object
	t   reflect.Type
}

// FactStore holds the facts of one driver run. Packages are type-checked
// into one shared universe (the loader reuses *types.Package instances
// across importers), so object identity is stable across passes and no
// serialization is needed.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store, shared by all passes of a run.
func NewFactStore() *FactStore { return &FactStore{m: make(map[factKey]Fact)} }

// Pass carries one analyzer's view of one package, mirroring x/tools.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report publishes a diagnostic.
	Report func(Diagnostic)

	facts *FactStore
	notes map[string]map[int][]Directive // filename -> line -> directives
}

// NewPass assembles a pass; drivers (run.go, analysistest) use it.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore, report func(Diagnostic)) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Report: report, facts: facts}
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ExportObjectFact attaches fact to obj for passes over dependent packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	p.facts.m[factKey{obj, reflect.TypeOf(fact)}] = fact
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	f, ok := p.facts.m[factKey{obj, reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// CalleeFunc resolves the function or method a call expression statically
// invokes: a package function, a concrete method, or an interface method.
// Calls through function-typed variables resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(f.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			id = base
		} else if sel, ok := ast.Unparen(f.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the named function of the named package
// ("" matches builtins and the current package never matches).
func IsPkgFunc(fn *types.Func, pkgPath string, names ...string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
