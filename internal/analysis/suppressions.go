package analysis

// Suppression audit: every //moma:*-ok directive (and the noalloc //moma:cold
// exemption) is debt — a place where an invariant is waived by hand. The
// analyzers enforce that each carries a one-line justification; this file
// collects them so `moma-vet -suppressions` can list the debt with
// file:line for review.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Suppression is one suppression or exemption directive in the tree.
type Suppression struct {
	Pos           token.Position
	Name          string // directive name: "dictgrowth-ok", "cold", ...
	Justification string // the directive's argument text; empty is debt-on-debt
}

func (s Suppression) String() string {
	j := s.Justification
	if j == "" {
		j = "(NO JUSTIFICATION)"
	}
	return fmt.Sprintf("%s:%d: //moma:%s %s", s.Pos.Filename, s.Pos.Line, s.Name, j)
}

// isSuppressionDirective reports whether a directive waives an analyzer:
// the per-analyzer *-ok family plus noalloc's cold-branch exemption.
func isSuppressionDirective(name string) bool {
	return strings.HasSuffix(name, "-ok") || name == "cold"
}

// ScanSuppressions lists the suppression directives of parsed files,
// sorted by position.
func ScanSuppressions(fset *token.FileSet, files []*ast.File) []Suppression {
	var out []Suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c)
				if !ok || !isSuppressionDirective(d.Name) {
					continue
				}
				out = append(out, Suppression{
					Pos:           fset.Position(d.Pos),
					Name:          d.Name,
					Justification: d.Args,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// suppListPkg is the `go list` subset the suppression scan consumes.
type suppListPkg struct {
	Dir          string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct{ Main bool }
}

// ScanModuleSuppressions parses every in-module file the patterns match —
// including test files, which Load skips — and returns their suppression
// directives. Parse-only: no type checking, so it stays fast enough to run
// on every review.
func ScanModuleSuppressions(dir string, patterns ...string) ([]Suppression, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-json=Dir,GoFiles,TestGoFiles,XTestGoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var lp suppListPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		if lp.Module == nil || !lp.Module.Main {
			continue
		}
		var names []string
		names = append(names, lp.GoFiles...)
		names = append(names, lp.TestGoFiles...)
		names = append(names, lp.XTestGoFiles...)
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parse %s: %v", name, err)
			}
			files = append(files, f)
		}
	}
	return ScanSuppressions(fset, files), nil
}
