// Package guardedby checks the repository's documented lock discipline.
// Struct fields that must only be touched under a mutex say so next to the
// field:
//
//	maps map[string]*mapping.Mapping // guarded by mu
//
// (//moma:guardedby mu is accepted as an equivalent spelling.) The named
// mutex must be a sibling field of sync.Mutex or sync.RWMutex type.
//
// Every selector access x.f of a guarded field is then required to occur in
// a function that visibly holds the guard, meaning one of:
//
//   - the function calls x.mu.Lock() or x.mu.RLock() on the same base
//     expression (flow-insensitive: locking anywhere in the function
//     counts — the analyzer checks discipline, not lock ordering);
//   - the function's doc comment carries //moma:locked mu, the repo's
//     convention for xxxLocked helpers whose callers hold the lock;
//   - the base is a local variable built only from fresh composite
//     literals (&T{...}, T{...}, new(T)) — construct-then-publish code
//     owns the value exclusively and predates any sharing.
//
// Anything else needs a justified //moma:guardedby-ok on the access line
// or the function's doc comment. Accesses through an alias of the struct
// taken elsewhere are checked against the alias's own base expression.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "flag accesses to '// guarded by mu' fields outside visibly locked regions",
	Run:  run,
}

// guardFact records a field's guard mutex name on the field object, so
// accesses from dependent packages are checked too.
type guardFact struct{ Mu string }

func (*guardFact) AFact() {}

func run(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, guards, fd)
		}
	}
	return nil, nil
}

// collectGuards parses field guard comments, validates the guard is a
// sibling mutex, and exports facts.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardName(field)
				if mu == "" {
					continue
				}
				if !siblingMutex(pass.TypesInfo, st, mu) {
					pass.Reportf(field.Pos(), "guard %q is not a sibling sync.Mutex/RWMutex field", mu)
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guards[v] = mu
						pass.ExportObjectFact(v, &guardFact{Mu: mu})
					}
				}
			}
			return true
		})
	}
	return guards
}

// guardName extracts the guard mutex name from a field's doc or trailing
// comment: "// guarded by mu" or "//moma:guardedby mu".
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if d, ok := analysis.DocDirective(cg, "guardedby"); ok {
			return strings.Fields(d.Args + " ")[0]
		}
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if i := strings.Index(text, "guarded by "); i >= 0 {
				rest := strings.Fields(text[i+len("guarded by "):])
				if len(rest) > 0 {
					return strings.TrimRight(rest[0], ".,;")
				}
			}
		}
	}
	return ""
}

// siblingMutex reports whether the struct literally declares a field named
// mu of type sync.Mutex or sync.RWMutex (possibly embedded by name).
func siblingMutex(info *types.Info, st *ast.StructType, mu string) bool {
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 {
			// Embedded field: its name is the type's base name.
			if id := embeddedName(field.Type); id != nil {
				names = []*ast.Ident{id}
			}
		}
		for _, name := range names {
			if name.Name != mu {
				continue
			}
			if t := info.TypeOf(field.Type); t != nil && isMutex(t) {
				return true
			}
		}
	}
	return false
}

func embeddedName(e ast.Expr) *ast.Ident {
	switch t := ast.Unparen(e).(type) {
	case *ast.Ident:
		return t
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel
	}
	return nil
}

func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// checkFunc reports guarded-field accesses not visibly under their lock.
func checkFunc(pass *analysis.Pass, guards map[*types.Var]string, fd *ast.FuncDecl) {
	if d, ok := analysis.DocDirective(fd.Doc, "guardedby-ok"); ok {
		if d.Args == "" {
			pass.Reportf(fd.Name.Pos(), "//moma:guardedby-ok needs a one-line justification")
		}
		return
	}
	lockedNames := make(map[string]bool)
	for _, d := range analysis.DocDirectives(fd.Doc, "locked") {
		for _, mu := range strings.Fields(d.Args) {
			lockedNames[mu] = true
		}
	}
	held := heldKeys(pass.TypesInfo, fd.Body)
	fresh := freshLocals(pass.TypesInfo, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		fieldVar, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := guards[fieldVar]
		if !guarded {
			var fact guardFact
			if pass.ImportObjectFact(fieldVar, &fact) {
				mu, guarded = fact.Mu, true
			}
		}
		if !guarded {
			return true
		}
		base := types.ExprString(sel.X)
		if lockedNames[mu] || held[base+"."+mu] {
			return true
		}
		if root := rootVar(pass.TypesInfo, sel.X); root != nil && fresh[root] {
			return true
		}
		if pass.Suppressed(sel.Pos(), nil, "guardedby-ok") {
			return true
		}
		pass.Reportf(sel.Pos(),
			"access to %s.%s (guarded by %s) without %s.%s held; lock it, mark the helper //moma:locked %s, or annotate //moma:guardedby-ok <why>",
			base, fieldVar.Name(), mu, base, mu, mu)
		return true
	})
}

// heldKeys collects "base.mu" strings for every x.mu.Lock/RLock() call in
// the body.
func heldKeys(info *types.Info, body *ast.BlockStmt) map[string]bool {
	held := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		if fn.Name() != "Lock" && fn.Name() != "RLock" {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		held[types.ExprString(muSel.X)+"."+muSel.Sel.Name] = true
		return true
	})
	return held
}

// freshLocals returns the local variables of fd whose every assignment is a
// fresh allocation — composite literal, &composite, or new(T). Such values
// are exclusively owned until published, so guarded-field access is safe.
func freshLocals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	fresh := make(map[*types.Var]bool)
	tainted := make(map[*types.Var]bool)
	note := func(id *ast.Ident, rhs ast.Expr) {
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			v, ok = info.Uses[id].(*types.Var)
		}
		if !ok || v == nil {
			return
		}
		if rhs != nil && isFreshAlloc(info, rhs) {
			fresh[v] = true
		} else {
			tainted[v] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				note(id, rhs)
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, id := range vs.Names {
						var rhs ast.Expr
						if i < len(vs.Values) {
							rhs = vs.Values[i]
						}
						note(id, rhs)
					}
				}
			}
		}
		return true
	})
	for v := range tainted {
		delete(fresh, v)
	}
	return fresh
}

// isFreshAlloc reports whether e is a fresh allocation expression.
func isFreshAlloc(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// rootVar resolves the base of an expression chain (x, x.f[i].g, ...) to
// its root local variable (nil for parameters, receivers, globals and
// package-level values). A fresh root owns everything reachable through
// inline fields, so construction loops over nested structs stay exempt.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := info.Uses[v]
			if obj == nil {
				obj = info.Defs[v]
			}
			tv, ok := obj.(*types.Var)
			if !ok || tv.IsField() {
				return nil
			}
			return tv
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
