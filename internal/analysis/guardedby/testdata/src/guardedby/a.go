// Package guardedby is golden input for the guardedby analyzer.
package guardedby

import "sync"

// Store guards its table with mu.
type Store struct {
	mu    sync.RWMutex
	table map[string]int // guarded by mu
	hits  int            //moma:guardedby mu
	name  string         // unguarded
}

// Get locks before reading: fine.
func (s *Store) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.table[k]
	return v, ok
}

// Put write-locks: fine.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.table[k] = v
	s.hits++
}

// Racy touches the table with no lock in sight.
func (s *Store) Racy(k string) int {
	return s.table[k] // want "access to s.table \(guarded by mu\) without s.mu held"
}

// Name reads an unguarded field: fine.
func (s *Store) Name() string {
	return s.name
}

// putLocked is a caller-holds-the-lock helper.
//
//moma:locked mu
func (s *Store) putLocked(k string, v int) {
	s.table[k] = v
	s.hits++
}

// putUnannotatedHelper forgot the annotation.
func (s *Store) putUnannotatedHelper(k string, v int) {
	s.table[k] = v // want "access to s.table"
	s.hits++       // want "access to s.hits"
}

// NewStore builds a fresh value: construct-then-publish is fine.
func NewStore() *Store {
	st := &Store{}
	st.table = make(map[string]int)
	return st
}

// reopen mutates a Store received from elsewhere: not fresh.
func reopen(st *Store) {
	st.table = nil // want "access to st.table"
}

// excused says why it may skip the lock.
//
//moma:guardedby-ok single-goroutine test fixture, never shared
func excused(st *Store) {
	st.table = nil
}

// excusedNoReason must justify itself.
//
//moma:guardedby-ok
func excusedNoReason(st *Store) { // want "needs a one-line justification"
	st.table = nil
}

// siteExcused annotates one access line.
func siteExcused(st *Store) int {
	return len(st.table) //moma:guardedby-ok len on a nil-safe map during shutdown, callers quiesced
}

// badGuard names a missing sibling.
type badGuard struct {
	rows []int // guarded by lock // want "guard \"lock\" is not a sibling"
}

// notAMutex names a non-mutex sibling.
type notAMutex struct {
	flag bool
	rows []int // guarded by flag // want "guard \"flag\" is not a sibling"
}
