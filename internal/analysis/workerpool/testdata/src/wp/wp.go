// Package wp is golden input for workerpool: loop-launched goroutines and
// the partition-by-index discipline.
package wp

import "sync"

// good is the blessed streamScore shape: each worker writes only its own
// slot, indexed by a parameter, and the loop joins before reading.
func good(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for w, it := range items {
		wg.Add(1)
		go func(w, it int) {
			defer wg.Done()
			out[w] = it * 2
		}(w, it)
	}
	wg.Wait()
	return out
}

// goodLoopVar partitions by the per-iteration loop variable (Go 1.22).
func goodLoopVar(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for w := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[w] = w
		}()
	}
	wg.Wait()
	return out
}

// badSharedIndex indexes with a cursor shared by all workers.
func badSharedIndex(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	next := 0
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[next] = 1 // want "writes shared slice out at non-partitioned index next"
			next++        // want "assigns captured variable next"
		}()
	}
	wg.Wait()
	return out
}

// badMap writes a shared map: racy even at distinct keys.
func badMap(items []int) map[int]int {
	m := make(map[int]int)
	var wg sync.WaitGroup
	for w, it := range items {
		wg.Add(1)
		go func(w, it int) {
			defer wg.Done()
			m[w] = it // want "writes shared map m without holding a lock"
		}(w, it)
	}
	wg.Wait()
	return m
}

// lockedMap holds a visible mutex: fine.
func lockedMap(items []int) map[int]int {
	m := make(map[int]int)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w, it := range items {
		wg.Add(1)
		go func(w, it int) {
			defer wg.Done()
			mu.Lock()
			m[w] = it
			mu.Unlock()
		}(w, it)
	}
	wg.Wait()
	return m
}

// badAppend grows a shared slice from every worker.
func badAppend(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			out = append(out, it) // want "assigns captured variable out"
		}(it)
	}
	wg.Wait()
	return out
}

// noJoin writes partitioned slots but never joins before returning.
func noJoin(items []int) []int {
	out := make([]int, len(items))
	for w, it := range items {
		go func(w, it int) { // want "no visible sync.WaitGroup join in noJoin"
			out[w] = it
		}(w, it)
	}
	return out
}

// channels only sends; the receive is the join, nothing to report.
func channels(items []int) []int {
	ch := make(chan int)
	for _, it := range items {
		go func(it int) { ch <- it * 2 }(it)
	}
	out := make([]int, 0, len(items))
	for range items {
		out = append(out, <-ch)
	}
	return out
}

// single is not loop-launched: out of scope.
func single(done chan struct{}) int {
	x := 0
	go func() {
		x = 1
		close(done)
	}()
	<-done
	return x
}

// suppressed excuses a known-single-worker loop with a justification.
func suppressed(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items[:1] {
		wg.Add(1)
		//moma:workerpool-ok the slice is truncated to one element above
		go func(it int) {
			defer wg.Done()
			out = append(out, it)
		}(it)
	}
	wg.Wait()
	return out
}
