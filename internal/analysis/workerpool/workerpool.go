// Package workerpool machine-checks the repository's blessed parallel-write
// idiom ahead of the parallel columnar operators and the sharded resolver
// fleet (ROADMAP items 1 and 5): a goroutine launched in a loop — the
// match.streamScore shape — may write shared state only by partition.
//
// Three rules apply to every `go func(...){...}(...)` inside a for or
// range statement:
//
//   - A write to a captured slice must index it with a per-worker value: a
//     parameter of the goroutine's function literal, the loop variable
//     (per-iteration since Go 1.22), a local of the literal, or a
//     constant. Indexing with any other captured variable (a shared
//     cursor) is reported — two workers can collide on one slot.
//   - A write to a captured map is reported outright unless the goroutine
//     visibly holds a lock (any .Lock/.RLock call in its body): map
//     writes race even at distinct keys.
//   - Any other assignment to a captured variable (shared counters,
//     append-to-shared-slice) is reported unless locked.
//   - A goroutine that writes captured state, or signals a
//     sync.WaitGroup, requires a visible wg.Wait in the enclosing
//     function — the join that makes the writes safe to read.
//
// Goroutines that only send on channels need no WaitGroup join (the
// receive is the join) and are left alone, as are single goroutines
// launched outside loops. //moma:workerpool-ok <why> on the go statement
// (or the enclosing function's doc comment) suppresses with a
// justification.
package workerpool

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the workerpool check.
var Analyzer = &analysis.Analyzer{
	Name: "workerpool",
	Doc:  "check loop-launched goroutines for partitioned writes and a visible join",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			checkFunc(pass, d)
		}
	}
	return nil, nil
}

// launch is one `go func(...){...}(...)` inside a loop.
type launch struct {
	g    *ast.GoStmt
	lit  *ast.FuncLit
	loop ast.Stmt
}

func checkFunc(pass *analysis.Pass, d *ast.FuncDecl) {
	launches := collectLaunches(d.Body)
	if len(launches) == 0 {
		return
	}
	hasWait := containsWaitGroupWait(pass, d.Body)
	for _, l := range launches {
		if pass.Suppressed(l.g.Pos(), d.Doc, "workerpool-ok") {
			continue
		}
		checkLaunch(pass, d, l, hasWait)
	}
}

// collectLaunches walks one function body and returns the go-func-literal
// statements under a for/range statement. Descending into a nested func
// literal resets the loop context: a goroutine inside a worker's body is
// loop-launched only by its own loops.
func collectLaunches(body ast.Node) []launch {
	var out []launch
	var walk func(n ast.Node, loop ast.Stmt)
	walk = func(n ast.Node, loop ast.Stmt) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walk(n.Init, loop)
			walk(n.Body, n)
			return
		case *ast.RangeStmt:
			walk(n.Body, n)
			return
		case *ast.FuncLit:
			walk(n.Body, nil)
			return
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok && loop != nil {
				out = append(out, launch{g: n, lit: lit, loop: loop})
				for _, arg := range n.Call.Args {
					walk(arg, loop)
				}
				walk(lit.Body, nil)
				return
			}
		}
		var kids []ast.Node
		ast.Inspect(n, func(c ast.Node) bool {
			if c == n {
				return true
			}
			if c != nil {
				kids = append(kids, c)
			}
			return false
		})
		for _, k := range kids {
			walk(k, loop)
		}
	}
	walk(body, nil)
	return out
}

func checkLaunch(pass *analysis.Pass, d *ast.FuncDecl, l launch, hasWait bool) {
	loopVars := loopVarObjects(pass, l.loop)
	locked := containsLockCall(l.lit.Body)
	usesWG := containsWaitGroupSignal(pass, l.lit.Body)
	wrote := false

	report := func(pos token.Pos, format string, args ...any) {
		pass.Reportf(pos, format+" (partition by index — each worker owns one slot, joined by wg.Wait — or annotate //moma:workerpool-ok <why>)", args...)
	}

	ast.Inspect(l.lit.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(l.lit) {
			return false // a nested literal runs on this goroutine's stack later; out of scope
		}
		var lhss []ast.Expr
		var pos token.Pos
		switch n := n.(type) {
		case *ast.AssignStmt:
			lhss, pos = n.Lhs, n.Pos()
		case *ast.IncDecStmt:
			lhss, pos = []ast.Expr{n.X}, n.Pos()
		default:
			return true
		}
		for _, lhs := range lhss {
			switch lhs := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(lhs)
				if !captured(obj, l.lit) || loopVars[obj] {
					continue
				}
				wrote = true
				if !locked {
					report(pos, "goroutine launched in a loop assigns captured variable %s", lhs.Name)
				}
			case *ast.IndexExpr:
				base, ok := ast.Unparen(lhs.X).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(base)
				if !captured(obj, l.lit) {
					continue
				}
				wrote = true
				if locked {
					continue
				}
				switch pass.TypesInfo.Types[lhs.X].Type.Underlying().(type) {
				case *types.Map:
					report(pos, "goroutine launched in a loop writes shared map %s without holding a lock", base.Name)
				case *types.Slice, *types.Array:
					if id, bad := unsafeIndexIdent(pass, lhs.Index, l.lit, loopVars); bad {
						report(pos, "goroutine launched in a loop writes shared slice %s at non-partitioned index %s", base.Name, id)
					}
				}
			}
		}
		return true
	})

	if (wrote || usesWG) && !hasWait {
		report(l.g.Pos(), "goroutine launched in a loop has no visible sync.WaitGroup join in %s; call wg.Wait before reading results", d.Name.Name)
	}
}

// captured reports whether obj is a variable declared outside lit — state
// the goroutine shares with its siblings.
func captured(obj types.Object, lit *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// unsafeIndexIdent reports the first identifier in an index expression
// that is neither a goroutine-local, a parameter of the literal, the
// enclosing loop's variable, nor a constant — i.e. a shared cursor.
func unsafeIndexIdent(pass *analysis.Pass, index ast.Expr, lit *ast.FuncLit, loopVars map[types.Object]bool) (string, bool) {
	var name string
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		obj := pass.TypesInfo.ObjectOf(id)
		v, isVar := obj.(*types.Var)
		if !isVar {
			return true // constants, types, functions: not a shared cursor
		}
		if loopVars[obj] || (v.Pos() >= lit.Pos() && v.Pos() <= lit.End()) {
			return true
		}
		name = id.Name
		return false
	})
	return name, name != ""
}

// loopVarObjects returns the per-iteration variables of a for/range
// statement (safe partition indexes since Go 1.22).
func loopVarObjects(pass *analysis.Pass, loop ast.Stmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				out[obj] = true
			}
		}
	}
	switch loop := loop.(type) {
	case *ast.RangeStmt:
		if loop.Key != nil {
			add(loop.Key)
		}
		if loop.Value != nil {
			add(loop.Value)
		}
	case *ast.ForStmt:
		if init, ok := loop.Init.(*ast.AssignStmt); ok {
			for _, lhs := range init.Lhs {
				add(lhs)
			}
		}
	}
	return out
}

// containsLockCall reports whether the body visibly takes a lock.
func containsLockCall(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// containsWaitGroupSignal reports whether the goroutine body touches a
// sync.WaitGroup (Done or Add).
func containsWaitGroupSignal(pass *analysis.Pass, body ast.Node) bool {
	return containsWaitGroupCall(pass, body, "Done", "Add")
}

// containsWaitGroupWait reports whether the function body joins on a
// sync.WaitGroup.
func containsWaitGroupWait(pass *analysis.Pass, body ast.Node) bool {
	return containsWaitGroupCall(pass, body, "Wait")
}

func containsWaitGroupCall(pass *analysis.Pass, body ast.Node, names ...string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		for _, name := range names {
			if sel.Sel.Name == name && isWaitGroup(pass.TypesInfo.Types[sel.X].Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
