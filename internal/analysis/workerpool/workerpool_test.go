package workerpool_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/workerpool"
)

func TestWorkerpool(t *testing.T) {
	analysistest.Run(t, "testdata", workerpool.Analyzer, "wp")
}
