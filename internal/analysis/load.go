package analysis

// Package loading without golang.org/x/tools/go/packages: `go list -export
// -deps -json` enumerates the dependency closure in topological order
// (dependencies strictly before dependents) and hands us compiled export
// data for every out-of-module package from the build cache. In-module
// packages are parsed and type-checked from source — analyzers need their
// syntax — importing dependencies either from the just-checked packages
// (in-module) or through the gc export-data importer (everything else).
// Everything works offline: export data comes from the local build cache,
// which `go list -export` populates as a side effect.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
)

// Package is one loaded, type-checked in-module package.
type Package struct {
	PkgPath string
	Dir     string
	// DepOnly marks packages loaded only as dependencies of the named
	// patterns; drivers analyze them (facts!) but report no diagnostics.
	DepOnly   bool
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Module     *struct {
		Path string
		Main bool
	}
}

// Load loads the in-module packages matched by the patterns (plus their
// in-module dependencies, marked DepOnly) in dependency order.
func Load(dir string, patterns ...string) (*token.FileSet, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,GoFiles,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	fset := token.NewFileSet()
	std := NewStdImporter(fset)
	loaded := make(map[string]*Package)
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, nil, fmt.Errorf("go list decode: %v", err)
		}
		if lp.Standard || lp.Module == nil || !lp.Module.Main {
			// Out-of-module dependency: remember its export data for the
			// importer; no source analysis.
			std.addExport(lp.ImportPath, lp.Export)
			continue
		}
		pkg, err := checkPackage(fset, lp, loaded, std)
		if err != nil {
			return nil, nil, err
		}
		loaded[lp.ImportPath] = pkg
		pkgs = append(pkgs, pkg)
	}
	return fset, pkgs, nil
}

// checkPackage parses and type-checks one in-module package.
func checkPackage(fset *token.FileSet, lp listPkg, loaded map[string]*Package, std *StdImporter) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: moduleImporter{loaded: loaded, std: std}}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
	}
	return &Package{
		PkgPath:   lp.ImportPath,
		Dir:       lp.Dir,
		DepOnly:   lp.DepOnly,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// moduleImporter resolves in-module imports to already-checked packages
// (the loader visits in dependency order, so they exist) and everything
// else through export data.
type moduleImporter struct {
	loaded map[string]*Package
	std    *StdImporter
}

func (m moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.loaded[path]; ok {
		return p.Types, nil
	}
	return m.std.Import(path)
}

// StdImporter resolves packages from compiled export data in the build
// cache, shelling out to `go list -export` for paths it was not seeded
// with. It backs both the moma-vet loader (seeded with the full dependency
// closure in one go list call) and analysistest (lazy, testdata files
// import a handful of std packages).
type StdImporter struct {
	mu      sync.Mutex
	exports map[string]string
	gc      types.Importer
}

// NewStdImporter returns an export-data importer over fset.
func NewStdImporter(fset *token.FileSet) *StdImporter {
	s := &StdImporter{exports: make(map[string]string)}
	s.gc = importer.ForCompiler(fset, "gc", s.lookup)
	return s
}

func (s *StdImporter) addExport(path, export string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if export != "" {
		s.exports[path] = export
	}
}

// Import implements types.Importer.
func (s *StdImporter) Import(path string) (*types.Package, error) {
	return s.gc.Import(path)
}

// lookup hands the gc importer a reader of a package's export data.
func (s *StdImporter) lookup(path string) (io.ReadCloser, error) {
	s.mu.Lock()
	export, ok := s.exports[path]
	s.mu.Unlock()
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-json=ImportPath,Export", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		var lp listPkg
		if err := json.Unmarshal(out, &lp); err != nil {
			return nil, err
		}
		export = lp.Export
		s.addExport(path, export)
	}
	if export == "" {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(export)
}

// Finding is one driver-level diagnostic with its resolved position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Run applies the analyzers to every package, dependencies first so facts
// flow, and returns the diagnostics of non-DepOnly packages sorted by
// position. The driver itself honors the determinism rule it enforces:
// output order is a pure function of the input.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	facts := NewFactStore()
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			report := func(d Diagnostic) {
				if pkg.DepOnly {
					return
				}
				findings = append(findings, Finding{
					Pos:      fset.Position(d.Pos),
					Analyzer: a.Name,
					Message:  d.Message,
				})
			}
			pass := NewPass(a, fset, pkg.Files, pkg.Types, pkg.TypesInfo, facts, report)
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings, nil
}
