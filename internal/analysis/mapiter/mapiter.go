// Package mapiter flags map iteration whose order can leak into output —
// the guarantee behind every eps-0 differential oracle in this repository:
// mappings, reports and serialized state must be bit-identical run to run,
// insertion order included, and Go randomizes map iteration order.
//
// A `range` over a map (or over maps.Keys/Values/All) is reported when its
// body, in iteration order,
//
//   - appends to a slice declared outside the loop, unless the slice is
//     passed to a sort or slices call later in the same function,
//   - calls an order-sensitive sink (mapping/store growth methods such as
//     Add/AddMax/Put/PutDelta, writer methods such as Write/WriteString,
//     or fmt/log printing),
//   - sends on a channel, or
//   - accumulates a floating-point total (float addition is not
//     associative, so even a sum is order-sensitive bit-wise).
//
// Pure aggregation — integer counters, min/max, writes into another map —
// is order-independent and never flagged. A justified
// //moma:nondeterministic-ok annotation on the range statement or the sink
// line suppresses the report.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the mapiter check.
var Analyzer = &analysis.Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive output without a subsequent sort",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			walkFunc(pass, fd.Doc, fd.Body, fd.Body)
		}
	}
	return nil, nil
}

// walkFunc walks stmts inside the enclosing function body `scope` (the
// region searched for a subsequent sort), recursing into nested function
// literals with their own scope.
func walkFunc(pass *analysis.Pass, doc *ast.CommentGroup, scope *ast.BlockStmt, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			walkFunc(pass, doc, n.Body, n.Body)
			return false
		case *ast.RangeStmt:
			if overMap(pass.TypesInfo, n) {
				checkRange(pass, doc, scope, n)
			}
		}
		return true
	})
}

// overMap reports whether the range statement iterates a map or one of the
// maps-package iterators (equally unordered).
func overMap(info *types.Info, rs *ast.RangeStmt) bool {
	if t := info.TypeOf(rs.X); t != nil {
		if _, ok := t.Underlying().(*types.Map); ok {
			return true
		}
	}
	if call, ok := ast.Unparen(rs.X).(*ast.CallExpr); ok {
		if fn := analysis.CalleeFunc(info, call); fn != nil {
			return analysis.IsPkgFunc(fn, "maps", "Keys", "Values", "All")
		}
	}
	return false
}

// checkRange inspects one map-range body for order-sensitive sinks.
func checkRange(pass *analysis.Pass, doc *ast.CommentGroup, scope *ast.BlockStmt, rs *ast.RangeStmt) {
	if pass.Suppressed(rs.Pos(), doc, "nondeterministic-ok") {
		return
	}
	report := func(pos token.Pos, format string, args ...any) {
		if pass.Suppressed(pos, nil, "nondeterministic-ok") {
			return
		}
		pass.Reportf(pos, format+" in iteration order of a map range; make the order deterministic or annotate //moma:nondeterministic-ok <why>", args...)
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own; its sinks would be
			// double-reported from here.
			if n != rs && overMap(pass.TypesInfo, n) {
				return false
			}
		case *ast.SendStmt:
			report(n.Pos(), "sends on %s", types.ExprString(n.Chan))
		case *ast.AssignStmt:
			checkAssign(pass, report, scope, rs, n)
		case *ast.CallExpr:
			if name, ok := callSink(pass.TypesInfo, n); ok {
				report(n.Pos(), "calls %s", name)
			}
		}
		return true
	})
}

// checkAssign flags appends to outer slices (unless sorted later in the
// function) and floating-point accumulation.
func checkAssign(pass *analysis.Pass, report func(token.Pos, string, ...any), scope *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.TypesInfo
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		if !isFloat(info.TypeOf(lhs)) {
			return
		}
		if obj := rootObj(info, lhs); obj != nil && declaredOutside(obj, rs) {
			report(as.Pos(), "accumulates floating-point %s (float addition is not associative)", types.ExprString(lhs))
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(info, call) || len(as.Lhs) <= i {
				continue
			}
			target := as.Lhs[i]
			obj := rootObj(info, target)
			if obj == nil || !declaredOutside(obj, rs) {
				continue
			}
			if sortedAfter(info, scope, rs, obj) {
				continue
			}
			report(as.Pos(), "appends to %s without sorting the result afterwards", types.ExprString(target))
		}
	}
}

// sinkMethodNames are method names whose calls are order-sensitive: growth
// of mappings/stores/indexes, sequential writers, and printers.
var sinkMethodNames = map[string]bool{
	"Add": true, "AddMax": true, "AddOrd": true, "AddMaxOrd": true,
	"AddCorrespondences": true, "Append": true, "Push": true,
	"Enqueue": true, "Put": true, "PutDelta": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true, "Emit": true,
}

// sinkExemptPkgs hold order-insensitive methods that share sink names
// (sync.WaitGroup.Add, atomic adds, testing helpers).
var sinkExemptPkgs = map[string]bool{
	"sync": true, "sync/atomic": true, "testing": true, "math/rand": true, "math/rand/v2": true,
}

// callSink classifies a call as order-sensitive, returning a display name.
func callSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	pkg := fn.Pkg().Path()
	if pkg == "fmt" || pkg == "log" {
		switch fn.Name() {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return pkg + "." + fn.Name(), true
		}
		return "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil || sinkExemptPkgs[pkg] {
		return "", false
	}
	if sinkMethodNames[fn.Name()] {
		recv := sig.Recv().Type()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		return types.TypeString(recv, types.RelativeTo(fn.Pkg())) + "." + fn.Name(), true
	}
	return "", false
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObj resolves the base identifier of an lvalue chain (x, x.f, x[i].f).
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[v]; obj != nil {
				return obj
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj is declared outside the range
// statement — appending to it publishes iteration order beyond the loop.
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() >= rs.End()
}

// sortedAfter reports whether obj is passed to a sort/slices call after the
// range statement in the same function — the collect-then-sort idiom that
// restores determinism.
func sortedAfter(info *types.Info, scope *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := analysis.CalleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if id, ok := a.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
