// Package mapiter is golden input for the mapiter analyzer.
package mapiter

import (
	"fmt"
	"sort"
	"sync"
)

type sink struct{ rows []string }

func (s *sink) Add(v string)   { s.rows = append(s.rows, v) }
func (s *sink) Count(v string) {}

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appends to out"
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSortSlice(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func appendLocalInside(m map[string][]int) {
	for _, vs := range m {
		var local []int
		local = append(local, vs...) // local to the loop body: order cannot leak
		_ = local
	}
}

func sinkMethod(m map[string]int, s *sink) {
	for k := range m {
		s.Add(k) // want "calls sink.Add"
	}
}

func orderFreeMethod(m map[string]int, s *sink) {
	for k := range m {
		s.Count(k)
	}
}

func waitGroupAddIsFine(m map[string]int) {
	var wg sync.WaitGroup
	for range m {
		wg.Add(1)
		go func() { wg.Done() }()
	}
	wg.Wait()
}

func printing(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "calls fmt.Printf"
	}
}

func channelSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want "sends on ch"
	}
}

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want "accumulates floating-point total"
	}
	return total
}

func intAccumIsFine(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapWriteIsFine(m map[string]int) map[int]string {
	inv := make(map[int]string)
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

func suppressed(m map[string]int) []string {
	var out []string
	//moma:nondeterministic-ok the caller treats out as an unordered set
	for k := range m {
		out = append(out, k)
	}
	return out
}

func suppressedNoReason(m map[string]int) []string {
	var out []string
	//moma:nondeterministic-ok
	for k := range m { // want "needs a one-line justification"
		out = append(out, k)
	}
	return out
}

func sliceRangeIsFine(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
