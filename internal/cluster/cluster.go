// Package cluster groups instances connected by same-mappings into
// duplicate clusters via union-find, and converts clusters back into
// transitively-closed self-mappings.
//
// The paper's outlook (§5.6) proposes representing the duplicates within a
// dirty source like Google Scholar as self-mappings — "identifying clusters
// of duplicate entries" — which can then be composed with cross-source
// same-mappings to find more correspondences; this package provides that
// machinery.
package cluster

import (
	"sort"

	"repro/internal/mapping"
	"repro/internal/model"
)

// UnionFind is a disjoint-set forest over instance ids with union by rank
// and path compression.
type UnionFind struct {
	parent map[model.ID]model.ID
	rank   map[model.ID]int
	count  int
}

// NewUnionFind returns an empty forest.
func NewUnionFind() *UnionFind {
	return &UnionFind{parent: make(map[model.ID]model.ID), rank: make(map[model.ID]int)}
}

// Add ensures id is present as a singleton set.
func (u *UnionFind) Add(id model.ID) {
	if _, ok := u.parent[id]; !ok {
		u.parent[id] = id
		u.count++
	}
}

// Find returns the representative of id's set, adding id if unknown.
func (u *UnionFind) Find(id model.ID) model.ID {
	u.Add(id)
	root := id
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for u.parent[id] != root {
		u.parent[id], id = root, u.parent[id]
	}
	return root
}

// Union merges the sets of a and b; it reports whether a merge happened
// (false when already joined).
func (u *UnionFind) Union(a, b model.ID) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b model.ID) bool { return u.Find(a) == u.Find(b) }

// Sets returns the number of disjoint sets.
func (u *UnionFind) Sets() int { return u.count }

// Cluster is one duplicate cluster: ids sorted ascending.
type Cluster []model.ID

// FromMapping unions all correspondence endpoints of a self-mapping (or any
// same-mapping within one LDS) with similarity >= minSim and returns the
// clusters of size >= 2, ordered by their smallest member.
//
// The union-find runs over the mapping's ordinal columns with array-based
// parent/rank state (endpoints are localized to dense indices as they
// appear), so clustering a million-row self-mapping performs integer finds
// and unions; id strings are resolved only to render the final clusters.
func FromMapping(m *mapping.Mapping, minSim float64) []Cluster {
	local := make(map[uint32]int32) // mapping-dict ordinal -> dense index
	var ords []uint32               // dense index -> mapping-dict ordinal
	var parent []int32
	var rank []int8
	localize := func(o uint32) int32 {
		if i, ok := local[o]; ok {
			return i
		}
		i := int32(len(ords))
		local[o] = i
		ords = append(ords, o)
		parent = append(parent, i)
		rank = append(rank, 0)
		return i
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		root := i
		for parent[root] != root {
			root = parent[root]
		}
		for parent[i] != root {
			parent[i], i = root, parent[i]
		}
		return root
	}
	m.EachOrd(func(d, r uint32, sim float64) bool {
		if sim < minSim {
			return true
		}
		ra, rb := find(localize(d)), find(localize(r))
		if ra == rb {
			return true
		}
		if rank[ra] < rank[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if rank[ra] == rank[rb] {
			rank[ra]++
		}
		return true
	})
	ids := m.Dict().All()
	groups := make(map[int32][]model.ID)
	for i := range parent {
		root := find(int32(i))
		groups[root] = append(groups[root], ids[ords[i]])
	}
	var out []Cluster
	for _, members := range groups {
		if len(members) < 2 {
			continue
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, Cluster(members))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SelfMapping expands clusters into a transitively closed self-mapping on
// lds: every ordered pair of distinct cluster members becomes a
// correspondence with similarity 1. This is the representation of source
// duplicates the paper composes with cross-source same-mappings.
func SelfMapping(lds model.LDS, clusters []Cluster) *mapping.Mapping {
	m := mapping.NewSame(lds, lds)
	dict := m.Dict()
	var ords []uint32
	for _, cl := range clusters {
		// Intern each member once; the quadratic expansion below then
		// inserts ordinal pairs only.
		ords = ords[:0]
		for _, id := range cl {
			ords = append(ords, dict.Ord(id))
		}
		for i := 0; i < len(ords); i++ {
			for j := 0; j < len(ords); j++ {
				if i != j {
					m.AddOrd(ords[i], ords[j], 1)
				}
			}
		}
	}
	return m
}

// TransitiveClosure returns the same-mapping closed under transitivity: if
// the input connects a-b and b-c (at >= minSim), the output also connects
// a-c. Similarities in the output are 1 within a cluster, reflecting the
// hard duplicate decision. Below-threshold correspondences are dropped.
func TransitiveClosure(m *mapping.Mapping, minSim float64) *mapping.Mapping {
	if m.Domain() != m.Range() {
		// Cross-source closure is the compose operator's job; here we only
		// close self-mappings.
		return m.Clone()
	}
	return SelfMapping(m.Domain(), FromMapping(m, minSim))
}
