package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/mapping"
	"repro/internal/model"
)

var gsPub = model.LDS{Source: "GS", Type: model.Publication}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind()
	u.Add("a")
	u.Add("b")
	u.Add("c")
	if u.Sets() != 3 {
		t.Fatalf("Sets = %d, want 3", u.Sets())
	}
	if !u.Union("a", "b") {
		t.Error("first union should merge")
	}
	if u.Union("a", "b") {
		t.Error("repeated union should not merge")
	}
	if !u.Connected("a", "b") || u.Connected("a", "c") {
		t.Error("connectivity wrong")
	}
	if u.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", u.Sets())
	}
}

func TestUnionFindTransitivity(t *testing.T) {
	u := NewUnionFind()
	u.Union("a", "b")
	u.Union("b", "c")
	u.Union("x", "y")
	if !u.Connected("a", "c") {
		t.Error("a~b~c should connect a and c")
	}
	if u.Connected("a", "x") {
		t.Error("separate components must stay apart")
	}
}

func TestUnionFindEquivalenceProperty(t *testing.T) {
	// Union is symmetric and Find is stable: after any union sequence,
	// Connected is an equivalence relation consistent with the unions.
	f := func(ops [][2]uint8) bool {
		u := NewUnionFind()
		naive := make(map[model.ID]model.ID) // naive forest for comparison
		find := func(id model.ID) model.ID {
			for naive[id] != "" && naive[id] != id {
				id = naive[id]
			}
			return id
		}
		ids := func(x uint8) model.ID { return model.ID(rune('a' + x%10)) }
		for _, op := range ops {
			a, b := ids(op[0]), ids(op[1])
			u.Union(a, b)
			ra, rb := find(a), find(b)
			if ra == "" {
				naive[a] = a
				ra = a
			}
			if rb == "" {
				naive[b] = b
				rb = b
			}
			if ra != rb {
				naive[ra] = rb
			}
		}
		for x := 0; x < 10; x++ {
			for y := 0; y < 10; y++ {
				a, b := ids(uint8(x)), ids(uint8(y))
				_, aKnown := naive[a]
				_, bKnown := naive[b]
				if !aKnown || !bKnown {
					continue
				}
				if u.Connected(a, b) != (find(a) == find(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func clusterFixture() *mapping.Mapping {
	m := mapping.NewSame(gsPub, gsPub)
	m.Add("g1", "g2", 0.9)
	m.Add("g2", "g3", 0.8)
	m.Add("g4", "g5", 0.95)
	m.Add("g6", "g7", 0.3) // below typical threshold
	return m
}

func TestFromMapping(t *testing.T) {
	clusters := FromMapping(clusterFixture(), 0.5)
	want := []Cluster{{"g1", "g2", "g3"}, {"g4", "g5"}}
	if !reflect.DeepEqual(clusters, want) {
		t.Errorf("clusters = %v, want %v", clusters, want)
	}
}

func TestFromMappingThreshold(t *testing.T) {
	clusters := FromMapping(clusterFixture(), 0.85)
	// Only g1-g2 (0.9) and g4-g5 (0.95) survive; g2-g3 link broken.
	want := []Cluster{{"g1", "g2"}, {"g4", "g5"}}
	if !reflect.DeepEqual(clusters, want) {
		t.Errorf("clusters = %v, want %v", clusters, want)
	}
}

func TestSelfMapping(t *testing.T) {
	sm := SelfMapping(gsPub, []Cluster{{"a", "b", "c"}})
	if sm.Len() != 6 { // 3*2 ordered pairs
		t.Fatalf("Len = %d, want 6", sm.Len())
	}
	if !sm.Has("a", "c") || !sm.Has("c", "a") {
		t.Error("self-mapping must be symmetric and transitive")
	}
	if sm.Has("a", "a") {
		t.Error("diagonal must be excluded")
	}
	for _, c := range sm.Correspondences() {
		if c.Sim != 1 {
			t.Errorf("cluster pairs should have sim 1, got %v", c.Sim)
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	m := clusterFixture()
	tc := TransitiveClosure(m, 0.5)
	if !tc.Has("g1", "g3") {
		t.Error("closure should connect g1 and g3")
	}
	if tc.Has("g6", "g7") {
		t.Error("below-threshold pairs must be dropped")
	}
	// Closure is idempotent.
	tc2 := TransitiveClosure(tc, 0.5)
	if !tc.Equal(tc2, 0) {
		t.Error("closure should be idempotent")
	}
}

func TestTransitiveClosureCrossSourceNoop(t *testing.T) {
	m := mapping.NewSame(gsPub, model.LDS{Source: "ACM", Type: model.Publication})
	m.Add("g1", "p1", 0.9)
	got := TransitiveClosure(m, 0.5)
	if !got.Equal(m, 0) {
		t.Error("cross-source mapping should pass through unchanged")
	}
}

func TestFromMappingEmpty(t *testing.T) {
	m := mapping.NewSame(gsPub, gsPub)
	if got := FromMapping(m, 0.5); len(got) != 0 {
		t.Errorf("empty mapping should have no clusters, got %v", got)
	}
}
