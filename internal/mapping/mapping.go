// Package mapping implements MOMA's core abstraction: instance-level
// mappings and the operators that combine them (§2.1 and §3 of the paper).
//
// A mapping between two logical data sources LDSA and LDSB is a set of
// correspondences {(a, b, s)} with a ∈ LDSA, b ∈ LDSB and similarity
// s ∈ [0,1] (Definition 1). Same-mappings connect instances of the same
// object type and express semantic equality; every other mapping is an
// association mapping (publications of an author, venue of a publication,
// ...). Mappings are represented as three-column mapping tables.
//
// # Columnar ordinal representation
//
// A Mapping stores its table as parallel columns — dom and rng hold uint32
// ordinals interned in a model.IDDict, sim holds the similarities — rather
// than as a slice of ID-carrying structs. Operators then move integers:
// compose hash-joins on middle ordinals, merge folds pairs keyed by a
// packed uint64, selections sort row indices, and the per-pair dedup index
// is a map[uint64]int32 instead of a map keyed by two strings. byDomain and
// byRange views are ordinal posting lists (row indices in insertion order)
// built lazily on first use and maintained incrementally afterwards.
//
// Mappings created with New/NewSame intern through the process-global
// model.IDs dictionary, so every matcher result, operator output and
// workflow intermediate shares one ordinal space and no translation ever
// happens. NewWithDict opts into a private dictionary (persistent stores
// materialize replayed mappings that way); operators accept mixed-dictionary
// inputs and fall back to ID-level translation with identical results. The
// ID-level API (Add, Correspondences, ForDomain, ...) is unchanged on top.
//
// The package provides the paper's three combination operators:
//
//   - Merge (§3.1): n-ary union of same-type mappings under a combination
//     function (Avg, Min, Max, Weighted, PreferMap) with configurable
//     treatment of missing correspondences.
//   - Compose (§3.2): relational composition of two mappings with a path
//     combination function f and a path aggregation function g (Avg, Min,
//     Max, RelativeLeft, RelativeRight, Relative).
//   - Selection (§3.3): Threshold, Best-n, Best-1+Delta and object-value
//     constraints.
package mapping

import (
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
)

// Correspondence relates a domain object to a range object with a
// similarity (confidence) value in [0,1].
type Correspondence struct {
	Domain model.ID
	Range  model.ID
	Sim    float64
}

// ordKey packs an ordinal pair into the uint64 the dedup index keys by.
func ordKey(d, r uint32) uint64 { return uint64(d)<<32 | uint64(r) }

// Mapping is a fuzzy instance-level mapping between two logical data
// sources, stored as a columnar mapping table. The zero value is not
// usable; create mappings with New, NewSame or NewWithDict.
//
//moma:parallel dom rng sim
type Mapping struct {
	domLDS model.LDS
	rngLDS model.LDS
	mtype  model.MappingType

	dict *model.IDDict

	// Parallel columns: row i is the correspondence
	// (dict.IDOf(dom[i]), dict.IDOf(rng[i]), sim[i]), in insertion order.
	dom []uint32
	rng []uint32
	sim []float64

	// index maps ordKey(dom, rng) to its row for dedup and point lookups.
	// Like the posting lists it is built lazily (pairIndex): bulk-loaded
	// mappings (newFromColumns) carry pre-deduped columns, so operator
	// outputs only pay for the map when somebody actually probes pairs.
	// New/NewWithDict arm it eagerly because Add needs it from row one.
	idxOnce sync.Once
	index   map[uint64]int32

	// byDom/byRng are the lazy posting lists: ordinal -> row indices in
	// insertion (= ascending) order. Nil until first use (postings);
	// maintained incrementally by Add afterwards. postOnce makes the lazy
	// build safe under concurrent readers — a built mapping keeps the old
	// eager representation's guarantee that any number of goroutines may
	// read it (writers still require external exclusion, as always).
	postOnce sync.Once
	byDom    map[uint32][]int32
	byRng    map[uint32][]int32
}

// New returns an empty mapping of the given semantic type between the two
// logical sources, interning through the process-global model.IDs.
func New(domain, rng model.LDS, mtype model.MappingType) *Mapping {
	return NewWithDict(domain, rng, mtype, model.IDs)
}

// NewWithDict is New with an explicit ID dictionary. Mixing dictionaries is
// legal everywhere — operators translate — but keeps mappings out of each
// other's fast paths; use it only for ownership (a persistent store's
// private vocabulary), not per-mapping.
func NewWithDict(domain, rng model.LDS, mtype model.MappingType, dict *model.IDDict) *Mapping {
	if dict == nil {
		dict = model.IDs
	}
	m := &Mapping{
		domLDS: domain,
		rngLDS: rng,
		mtype:  mtype,
		dict:   dict,
	}
	m.idxOnce.Do(func() { m.index = make(map[uint64]int32) })
	return m
}

// newFromColumns bulk-loads a mapping from pre-deduped parallel columns,
// taking ownership of the slices. This is the constructor operator cores
// use for their outputs: no per-row Add, no map insert per row — the pair
// index and the posting lists stay lazy and are each built in one
// pre-sized pass on first use. The caller guarantees the (dom, rng) pairs
// are distinct and sims are already clamped; feeding duplicates here
// corrupts the dedup invariant that Add maintains.
func newFromColumns(domain, rng model.LDS, mtype model.MappingType, dict *model.IDDict, dom, rngCol []uint32, sim []float64) *Mapping {
	if dict == nil {
		dict = model.IDs
	}
	return &Mapping{
		domLDS: domain,
		rngLDS: rng,
		mtype:  mtype,
		dict:   dict,
		dom:    dom,
		rng:    rngCol,
		sim:    sim,
	}
}

// NewSame returns an empty same-mapping between two sources of the same
// object type. It panics if the object types differ, which is a programming
// error by Definition 1.
func NewSame(domain, rng model.LDS) *Mapping {
	if !domain.SameType(rng) {
		panic(fmt.Sprintf("mapping: same-mapping requires equal object types, got %s and %s", domain, rng))
	}
	return New(domain, rng, model.SameMappingType)
}

// Domain returns the domain LDS.
func (m *Mapping) Domain() model.LDS { return m.domLDS }

// Range returns the range LDS.
func (m *Mapping) Range() model.LDS { return m.rngLDS }

// Type returns the semantic mapping type.
func (m *Mapping) Type() model.MappingType { return m.mtype }

// IsSame reports whether this is a same-mapping.
func (m *Mapping) IsSame() bool { return m.mtype == model.SameMappingType }

// Len returns the number of correspondences.
func (m *Mapping) Len() int { return len(m.sim) }

// Dict returns the ID dictionary this mapping's ordinals index into.
// Producers that can pre-intern their IDs (matchers translate ObjectSet
// ordinals once per input) use it with AddOrd/AddMaxOrd.
func (m *Mapping) Dict() *model.IDDict { return m.dict }

// clampSim forces s into [0,1].
func clampSim(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Add inserts the correspondence (a, b, s), replacing the similarity of an
// existing (a, b) pair. Similarities are clamped to [0,1].
func (m *Mapping) Add(a, b model.ID, s float64) {
	m.AddOrd(m.dict.Ord(a), m.dict.Ord(b), s)
}

// AddOrd is Add over ordinals of this mapping's dictionary. Passing
// ordinals from another dictionary is a bug the type system cannot catch;
// producers obtain valid columns via Dict().SetOrds or Dict().Ord.
func (m *Mapping) AddOrd(d, r uint32, s float64) {
	s = clampSim(s)
	key := ordKey(d, r)
	idx := m.pairIndex()
	if i, ok := idx[key]; ok {
		m.sim[i] = s
		return
	}
	m.appendRow(idx, key, d, r, s)
}

// AddMax inserts (a, b, s) keeping the maximum similarity if the pair
// already exists. Useful when several evidence paths produce the same pair.
func (m *Mapping) AddMax(a, b model.ID, s float64) {
	m.AddMaxOrd(m.dict.Ord(a), m.dict.Ord(b), s)
}

// AddMaxOrd is AddMax over ordinals of this mapping's dictionary.
func (m *Mapping) AddMaxOrd(d, r uint32, s float64) {
	s = clampSim(s)
	key := ordKey(d, r)
	idx := m.pairIndex()
	if i, ok := idx[key]; ok {
		if s > m.sim[i] {
			m.sim[i] = s
		}
		return
	}
	m.appendRow(idx, key, d, r, s)
}

// appendRow appends a row known to be absent from the index.
func (m *Mapping) appendRow(idx map[uint64]int32, key uint64, d, r uint32, s float64) {
	i := int32(len(m.sim))
	m.dom = append(m.dom, d)
	m.rng = append(m.rng, r)
	m.sim = append(m.sim, s)
	idx[key] = i
	if m.byDom != nil {
		m.byDom[d] = append(m.byDom[d], i)
		m.byRng[r] = append(m.byRng[r], i)
	}
}

// pairIndex builds (once) and returns the pair dedup index. Bulk-loaded
// mappings defer it until the first point lookup or Add; the build is a
// single pre-sized pass over the columns. Safe under concurrent readers
// for the same reason postings is.
func (m *Mapping) pairIndex() map[uint64]int32 {
	//moma:cold one-time lazy build; every later call only loads the map header
	m.idxOnce.Do(func() {
		idx := make(map[uint64]int32, len(m.sim))
		for i := range m.sim {
			idx[ordKey(m.dom[i], m.rng[i])] = int32(i)
		}
		m.index = idx
	})
	return m.index
}

// postings builds (once) and returns the byDomain/byRange posting lists.
// The once-guard serializes concurrent first readers; afterwards readers
// only load the maps and a single writer (Add) appends to them.
func (m *Mapping) postings() (byDom, byRng map[uint32][]int32) {
	//moma:cold one-time lazy build; every later call only loads the two map headers
	m.postOnce.Do(func() {
		bd := make(map[uint32][]int32)
		br := make(map[uint32][]int32)
		for i := range m.sim {
			bd[m.dom[i]] = append(bd[m.dom[i]], int32(i))
			br[m.rng[i]] = append(br[m.rng[i]], int32(i))
		}
		m.byDom, m.byRng = bd, br
	})
	return m.byDom, m.byRng
}

// AddCorrespondences inserts all given correspondences via Add.
func (m *Mapping) AddCorrespondences(cs []Correspondence) {
	for _, c := range cs {
		m.Add(c.Domain, c.Range, c.Sim)
	}
}

// Sim returns the similarity of (a, b) and whether the pair is present.
//
//moma:noalloc
func (m *Mapping) Sim(a, b model.ID) (float64, bool) {
	d, ok := m.dict.Lookup(a)
	if !ok {
		return 0, false
	}
	r, ok := m.dict.Lookup(b)
	if !ok {
		return 0, false
	}
	return m.SimOrd(d, r)
}

// SimOrd is Sim over ordinals of this mapping's dictionary.
//
//moma:noalloc
func (m *Mapping) SimOrd(d, r uint32) (float64, bool) {
	if i, ok := m.pairIndex()[ordKey(d, r)]; ok {
		return m.sim[i], true
	}
	return 0, false
}

// Has reports whether the pair (a, b) is present.
//
//moma:noalloc
func (m *Mapping) Has(a, b model.ID) bool {
	_, ok := m.Sim(a, b)
	return ok
}

// HasOrd is Has over ordinals of this mapping's dictionary.
//
//moma:noalloc
func (m *Mapping) HasOrd(d, r uint32) bool {
	_, ok := m.pairIndex()[ordKey(d, r)]
	return ok
}

// At returns the correspondence at row i in insertion order. It panics when
// i is out of [0, Len()), mirroring slice indexing.
//
//moma:noalloc
func (m *Mapping) At(i int) Correspondence {
	return Correspondence{Domain: m.dict.IDOf(m.dom[i]), Range: m.dict.IDOf(m.rng[i]), Sim: m.sim[i]}
}

// Correspondences returns a copy of all correspondences in insertion order.
func (m *Mapping) Correspondences() []Correspondence {
	out := make([]Correspondence, len(m.sim))
	ids := m.dict.All()
	for i := range m.sim {
		out[i] = Correspondence{Domain: ids[m.dom[i]], Range: ids[m.rng[i]], Sim: m.sim[i]}
	}
	return out
}

// Each calls fn for every correspondence in insertion order.
func (m *Mapping) Each(fn func(Correspondence)) {
	ids := m.dict.All()
	for i := range m.sim {
		fn(Correspondence{Domain: ids[m.dom[i]], Range: ids[m.rng[i]], Sim: m.sim[i]})
	}
}

// EachOrd calls fn for every row in insertion order with the raw column
// values — ordinals of Dict() — stopping early when fn returns false. It is
// the no-copy iteration consumers on hot paths use; resolve ordinals
// through Dict().All().
//
//moma:noalloc
func (m *Mapping) EachOrd(fn func(dom, rng uint32, sim float64) bool) {
	for i := range m.sim {
		if !fn(m.dom[i], m.rng[i], m.sim[i]) {
			return
		}
	}
}

// ForDomain returns the correspondences of domain object a.
func (m *Mapping) ForDomain(a model.ID) []Correspondence {
	var out []Correspondence
	m.EachForDomain(a, func(c Correspondence) bool {
		out = append(out, c)
		return true
	})
	return out
}

// EachForDomain calls fn for every correspondence of domain object a in
// insertion order — ForDomain without the copy — stopping early when fn
// returns false.
//
//moma:noalloc
func (m *Mapping) EachForDomain(a model.ID, fn func(Correspondence) bool) {
	d, ok := m.dict.Lookup(a)
	if !ok {
		return
	}
	byDom, _ := m.postings()
	ids := m.dict.All()
	for _, i := range byDom[d] {
		if !fn(Correspondence{Domain: a, Range: ids[m.rng[i]], Sim: m.sim[i]}) {
			return
		}
	}
}

// ForRange returns the correspondences of range object b.
func (m *Mapping) ForRange(b model.ID) []Correspondence {
	r, ok := m.dict.Lookup(b)
	if !ok {
		return nil
	}
	_, byRng := m.postings()
	idxs := byRng[r]
	ids := m.dict.All()
	out := make([]Correspondence, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, Correspondence{Domain: ids[m.dom[i]], Range: b, Sim: m.sim[i]})
	}
	return out
}

// DomainCount returns n(a): the number of correspondences of domain object
// a (Figure 5).
//
//moma:noalloc
func (m *Mapping) DomainCount(a model.ID) int {
	d, ok := m.dict.Lookup(a)
	if !ok {
		return 0
	}
	byDom, _ := m.postings()
	return len(byDom[d])
}

// RangeCount returns n(b): the number of correspondences of range object b.
//
//moma:noalloc
func (m *Mapping) RangeCount(b model.ID) int {
	r, ok := m.dict.Lookup(b)
	if !ok {
		return 0
	}
	_, byRng := m.postings()
	return len(byRng[r])
}

// Touches reports whether id appears as a domain or range object of any
// correspondence — the posting-list membership probe consumers use to skip
// a full filter pass when an id is absent.
//
//moma:noalloc
func (m *Mapping) Touches(id model.ID) bool {
	ord, ok := m.dict.Lookup(id)
	if !ok {
		return false
	}
	byDom, byRng := m.postings()
	return len(byDom[ord]) > 0 || len(byRng[ord]) > 0
}

// DomainIDs returns the distinct domain ids in first-seen order.
func (m *Mapping) DomainIDs() []model.ID {
	return distinctIDs(m.dom, m.dict)
}

// RangeIDs returns the distinct range ids in first-seen order.
func (m *Mapping) RangeIDs() []model.ID {
	return distinctIDs(m.rng, m.dict)
}

// distinctIDs resolves the distinct ordinals of one column in first-seen
// order.
func distinctIDs(col []uint32, dict *model.IDDict) []model.ID {
	seen := make(map[uint32]bool)
	ids := dict.All()
	var out []model.ID
	for _, o := range col {
		if !seen[o] {
			seen[o] = true
			out = append(out, ids[o])
		}
	}
	return out
}

// Inverse returns the mapping with domain and range swapped. The semantic
// type is preserved; callers give the inverse its own name in the
// repository (e.g. VenuePub vs PubVenue).
func (m *Mapping) Inverse() *Mapping {
	return newFromColumns(m.rngLDS, m.domLDS, m.mtype, m.dict,
		append([]uint32(nil), m.rng...),
		append([]uint32(nil), m.dom...),
		append([]float64(nil), m.sim...))
}

// Clone returns a deep copy sharing the dictionary. The copy keeps the
// pair index and posting lists lazy regardless of the source's state.
func (m *Mapping) Clone() *Mapping {
	return newFromColumns(m.domLDS, m.rngLDS, m.mtype, m.dict,
		append([]uint32(nil), m.dom...),
		append([]uint32(nil), m.rng...),
		append([]float64(nil), m.sim...))
}

// Filter returns a new mapping keeping only correspondences for which keep
// returns true.
func (m *Mapping) Filter(keep func(Correspondence) bool) *Mapping {
	ids := m.dict.All()
	return m.filterRows(func(i int) bool {
		return keep(Correspondence{Domain: ids[m.dom[i]], Range: ids[m.rng[i]], Sim: m.sim[i]})
	})
}

// filterRows is Filter over row indices: no Correspondence materialization
// for predicates that only need the columns. Surviving rows are distinct
// pairs already, so the output bulk-loads without per-row index inserts.
func (m *Mapping) filterRows(keep func(row int) bool) *Mapping {
	var dom, rng []uint32
	var sim []float64
	for i := range m.sim {
		if keep(i) {
			dom = append(dom, m.dom[i])
			rng = append(rng, m.rng[i])
			sim = append(sim, m.sim[i])
		}
	}
	return newFromColumns(m.domLDS, m.rngLDS, m.mtype, m.dict, dom, rng, sim)
}

// WithoutDiagonal drops correspondences whose domain and range ids are
// equal — the paper's select($Merged, "[domain.id]<>[range.id]") step that
// removes trivial duplicates from self-mappings (§4.3). Dictionaries are
// injective, so ordinal equality is id equality.
func (m *Mapping) WithoutDiagonal() *Mapping {
	return m.filterRows(func(i int) bool { return m.dom[i] != m.rng[i] })
}

// RemoveTouching deletes, in place, every correspondence whose domain or
// range object is id, and reports how many rows went. The posting lists
// locate exactly the touched rows and each one is swap-removed (the
// current last row moves into the vacated slot), so the cost is
// O(postings of id + log table) rather than the O(table) a Filter rewrite
// pays — the difference serve's per-instance delta removal rides on. Row
// order is permuted deterministically by the swaps; the pair index and
// posting lists are repaired incrementally and stay consistent.
func (m *Mapping) RemoveTouching(id model.ID) int {
	ord, ok := m.dict.Lookup(id)
	if !ok {
		return 0
	}
	byDom, byRng := m.postings()
	if len(byDom[ord]) == 0 && len(byRng[ord]) == 0 {
		return 0
	}
	// Union of both posting lists, ascending and deduped: a self-loop row
	// (dom == rng == ord) appears in both lists but dies once.
	rows := make([]int32, 0, len(byDom[ord])+len(byRng[ord]))
	rows = append(rows, byDom[ord]...)
	rows = append(rows, byRng[ord]...)
	slices.Sort(rows)
	rows = slices.Compact(rows)
	idx := m.pairIndex()
	// Walk the doomed rows descending so the row swapped in from the end
	// is never itself doomed: every doomed row above i is already gone.
	for k := len(rows) - 1; k >= 0; k-- {
		i := rows[k]
		last := int32(len(m.sim) - 1)
		d, r := m.dom[i], m.rng[i]
		delete(idx, ordKey(d, r))
		m.byDom[d] = cutPosting(m.byDom[d], i)
		m.byRng[r] = cutPosting(m.byRng[r], i)
		if len(m.byDom[d]) == 0 {
			delete(m.byDom, d)
		}
		if len(m.byRng[r]) == 0 {
			delete(m.byRng, r)
		}
		if i != last {
			ld, lr := m.dom[last], m.rng[last]
			m.dom[i], m.rng[i], m.sim[i] = ld, lr, m.sim[last]
			idx[ordKey(ld, lr)] = i
			m.byDom[ld] = reslotPosting(m.byDom[ld], i)
			m.byRng[lr] = reslotPosting(m.byRng[lr], i)
		}
		m.dom = m.dom[:last]
		m.rng = m.rng[:last]
		m.sim = m.sim[:last]
	}
	return len(rows)
}

// cutPosting removes row from an ascending posting list.
func cutPosting(list []int32, row int32) []int32 {
	p, _ := slices.BinarySearch(list, row)
	return append(list[:p], list[p+1:]...)
}

// reslotPosting rewrites a posting list's final entry — which indexes the
// table's current last row, necessarily the list's largest — as row,
// keeping the list ascending.
func reslotPosting(list []int32, row int32) []int32 {
	p, _ := slices.BinarySearch(list[:len(list)-1], row)
	copy(list[p+1:], list[p:len(list)-1])
	list[p] = row
	return list
}

// Sorted returns the correspondences sorted canonically: domain ascending,
// similarity descending, range ascending. It does not mutate the mapping.
func (m *Mapping) Sorted() []Correspondence {
	out := m.Correspondences()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Range < out[j].Range
	})
	return out
}

// Identity returns the identity same-mapping over the ids of the given
// object set: every instance corresponds to itself with similarity 1. The
// paper uses it as the trivial same-mapping for single-source neighborhood
// matching (§4.3).
func Identity(set *model.ObjectSet) *Mapping {
	m := NewSame(set.LDS(), set.LDS())
	for _, o := range m.dict.SetOrds(set) {
		m.AddOrd(o, o, 1)
	}
	return m
}

// Equal reports whether two mappings have the same endpoints, type and the
// same correspondence set with similarities equal within eps. Mappings over
// different dictionaries compare by id — the same ids interned in different
// orders are still equal.
func (m *Mapping) Equal(o *Mapping, eps float64) bool {
	if m.domLDS != o.domLDS || m.rngLDS != o.rngLDS || m.mtype != o.mtype || len(m.sim) != len(o.sim) {
		return false
	}
	sameDict := m.dict == o.dict
	ids := m.dict.All()
	for i := range m.sim {
		var s float64
		var ok bool
		if sameDict {
			s, ok = o.SimOrd(m.dom[i], m.rng[i])
		} else {
			s, ok = o.Sim(ids[m.dom[i]], ids[m.rng[i]])
		}
		if !ok {
			return false
		}
		d := m.sim[i] - s
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// Stats summarizes a mapping for reports and self-tuning.
type Stats struct {
	Corrs      int
	DomainObjs int
	RangeObjs  int
	AvgSim     float64
	MinSim     float64
	MaxSim     float64
	AvgFanOut  float64 // correspondences per distinct domain object
}

// Summarize computes mapping statistics.
func (m *Mapping) Summarize() Stats {
	byDom, byRng := m.postings()
	st := Stats{Corrs: len(m.sim), DomainObjs: len(byDom), RangeObjs: len(byRng)}
	if len(m.sim) == 0 {
		return st
	}
	st.MinSim = m.sim[0]
	st.MaxSim = m.sim[0]
	var sum float64
	for _, s := range m.sim {
		sum += s
		if s < st.MinSim {
			st.MinSim = s
		}
		if s > st.MaxSim {
			st.MaxSim = s
		}
	}
	st.AvgSim = sum / float64(len(m.sim))
	st.AvgFanOut = float64(len(m.sim)) / float64(len(byDom))
	return st
}

// Cardinality classifies the observed cardinality of the mapping as in
// Figure 10: 1:1, 1:n, n:1 or n:m, based on the maximum fan-out on each
// side. An empty mapping is CardUnknown.
func (m *Mapping) Cardinality() model.Cardinality {
	if len(m.sim) == 0 {
		return model.CardUnknown
	}
	byDom, byRng := m.postings()
	maxDom, maxRng := 0, 0
	for _, idxs := range byDom {
		if len(idxs) > maxDom {
			maxDom = len(idxs)
		}
	}
	for _, idxs := range byRng {
		if len(idxs) > maxRng {
			maxRng = len(idxs)
		}
	}
	switch {
	case maxDom <= 1 && maxRng <= 1:
		return model.CardOneToOne
	case maxRng <= 1:
		// A domain object fans out to several range objects while every
		// range object has a single domain object: venue -> publications.
		return model.CardOneToMany
	case maxDom <= 1:
		// The mirror image: publication -> venue.
		return model.CardManyToOne
	default:
		return model.CardManyToMany
	}
}

// String renders the mapping table (sorted canonically), capped at 20 rows.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s (%s), %d correspondences\n", m.domLDS, m.rngLDS, m.mtype, len(m.sim))
	for i, c := range m.Sorted() {
		if i == 20 {
			fmt.Fprintf(&b, "  ... %d more\n", len(m.sim)-20)
			break
		}
		fmt.Fprintf(&b, "  %-28s %-28s %.3f\n", c.Domain, c.Range, c.Sim)
	}
	return b.String()
}
