// Package mapping implements MOMA's core abstraction: instance-level
// mappings and the operators that combine them (§2.1 and §3 of the paper).
//
// A mapping between two logical data sources LDSA and LDSB is a set of
// correspondences {(a, b, s)} with a ∈ LDSA, b ∈ LDSB and similarity
// s ∈ [0,1] (Definition 1). Same-mappings connect instances of the same
// object type and express semantic equality; every other mapping is an
// association mapping (publications of an author, venue of a publication,
// ...). Mappings are represented as three-column mapping tables.
//
// The package provides the paper's three combination operators:
//
//   - Merge (§3.1): n-ary union of same-type mappings under a combination
//     function (Avg, Min, Max, Weighted, PreferMap) with configurable
//     treatment of missing correspondences.
//   - Compose (§3.2): relational composition of two mappings with a path
//     combination function f and a path aggregation function g (Avg, Min,
//     Max, RelativeLeft, RelativeRight, Relative).
//   - Selection (§3.3): Threshold, Best-n, Best-1+Delta and object-value
//     constraints.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Correspondence relates a domain object to a range object with a
// similarity (confidence) value in [0,1].
type Correspondence struct {
	Domain model.ID
	Range  model.ID
	Sim    float64
}

type pair struct{ d, r model.ID }

// Mapping is a fuzzy instance-level mapping between two logical data
// sources, stored as a mapping table. The zero value is not usable; create
// mappings with New or NewSame.
type Mapping struct {
	domLDS model.LDS
	rngLDS model.LDS
	mtype  model.MappingType

	corrs    []Correspondence
	index    map[pair]int
	byDomain map[model.ID][]int
	byRange  map[model.ID][]int
}

// New returns an empty mapping of the given semantic type between the two
// logical sources.
func New(domain, rng model.LDS, mtype model.MappingType) *Mapping {
	return &Mapping{
		domLDS:   domain,
		rngLDS:   rng,
		mtype:    mtype,
		index:    make(map[pair]int),
		byDomain: make(map[model.ID][]int),
		byRange:  make(map[model.ID][]int),
	}
}

// NewSame returns an empty same-mapping between two sources of the same
// object type. It panics if the object types differ, which is a programming
// error by Definition 1.
func NewSame(domain, rng model.LDS) *Mapping {
	if !domain.SameType(rng) {
		panic(fmt.Sprintf("mapping: same-mapping requires equal object types, got %s and %s", domain, rng))
	}
	return New(domain, rng, model.SameMappingType)
}

// Domain returns the domain LDS.
func (m *Mapping) Domain() model.LDS { return m.domLDS }

// Range returns the range LDS.
func (m *Mapping) Range() model.LDS { return m.rngLDS }

// Type returns the semantic mapping type.
func (m *Mapping) Type() model.MappingType { return m.mtype }

// IsSame reports whether this is a same-mapping.
func (m *Mapping) IsSame() bool { return m.mtype == model.SameMappingType }

// Len returns the number of correspondences.
func (m *Mapping) Len() int { return len(m.corrs) }

// clampSim forces s into [0,1].
func clampSim(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Add inserts the correspondence (a, b, s), replacing the similarity of an
// existing (a, b) pair. Similarities are clamped to [0,1].
func (m *Mapping) Add(a, b model.ID, s float64) {
	s = clampSim(s)
	key := pair{a, b}
	if i, ok := m.index[key]; ok {
		m.corrs[i].Sim = s
		return
	}
	i := len(m.corrs)
	m.corrs = append(m.corrs, Correspondence{Domain: a, Range: b, Sim: s})
	m.index[key] = i
	m.byDomain[a] = append(m.byDomain[a], i)
	m.byRange[b] = append(m.byRange[b], i)
}

// AddMax inserts (a, b, s) keeping the maximum similarity if the pair
// already exists. Useful when several evidence paths produce the same pair.
func (m *Mapping) AddMax(a, b model.ID, s float64) {
	s = clampSim(s)
	if i, ok := m.index[pair{a, b}]; ok {
		if s > m.corrs[i].Sim {
			m.corrs[i].Sim = s
		}
		return
	}
	m.Add(a, b, s)
}

// AddCorrespondences inserts all given correspondences via Add.
func (m *Mapping) AddCorrespondences(cs []Correspondence) {
	for _, c := range cs {
		m.Add(c.Domain, c.Range, c.Sim)
	}
}

// Sim returns the similarity of (a, b) and whether the pair is present.
func (m *Mapping) Sim(a, b model.ID) (float64, bool) {
	if i, ok := m.index[pair{a, b}]; ok {
		return m.corrs[i].Sim, true
	}
	return 0, false
}

// Has reports whether the pair (a, b) is present.
func (m *Mapping) Has(a, b model.ID) bool {
	_, ok := m.index[pair{a, b}]
	return ok
}

// Correspondences returns a copy of all correspondences in insertion order.
func (m *Mapping) Correspondences() []Correspondence {
	out := make([]Correspondence, len(m.corrs))
	copy(out, m.corrs)
	return out
}

// Each calls fn for every correspondence in insertion order.
func (m *Mapping) Each(fn func(Correspondence)) {
	for _, c := range m.corrs {
		fn(c)
	}
}

// ForDomain returns the correspondences of domain object a.
func (m *Mapping) ForDomain(a model.ID) []Correspondence {
	idxs := m.byDomain[a]
	out := make([]Correspondence, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, m.corrs[i])
	}
	return out
}

// ForRange returns the correspondences of range object b.
func (m *Mapping) ForRange(b model.ID) []Correspondence {
	idxs := m.byRange[b]
	out := make([]Correspondence, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, m.corrs[i])
	}
	return out
}

// DomainCount returns n(a): the number of correspondences of domain object
// a (Figure 5).
func (m *Mapping) DomainCount(a model.ID) int { return len(m.byDomain[a]) }

// RangeCount returns n(b): the number of correspondences of range object b.
func (m *Mapping) RangeCount(b model.ID) int { return len(m.byRange[b]) }

// DomainIDs returns the distinct domain ids in first-seen order.
func (m *Mapping) DomainIDs() []model.ID {
	seen := make(map[model.ID]bool, len(m.byDomain))
	var out []model.ID
	for _, c := range m.corrs {
		if !seen[c.Domain] {
			seen[c.Domain] = true
			out = append(out, c.Domain)
		}
	}
	return out
}

// RangeIDs returns the distinct range ids in first-seen order.
func (m *Mapping) RangeIDs() []model.ID {
	seen := make(map[model.ID]bool, len(m.byRange))
	var out []model.ID
	for _, c := range m.corrs {
		if !seen[c.Range] {
			seen[c.Range] = true
			out = append(out, c.Range)
		}
	}
	return out
}

// Inverse returns the mapping with domain and range swapped. The semantic
// type is preserved; callers give the inverse its own name in the
// repository (e.g. VenuePub vs PubVenue).
func (m *Mapping) Inverse() *Mapping {
	inv := New(m.rngLDS, m.domLDS, m.mtype)
	for _, c := range m.corrs {
		inv.Add(c.Range, c.Domain, c.Sim)
	}
	return inv
}

// Clone returns a deep copy.
func (m *Mapping) Clone() *Mapping {
	cp := New(m.domLDS, m.rngLDS, m.mtype)
	cp.AddCorrespondences(m.corrs)
	return cp
}

// Filter returns a new mapping keeping only correspondences for which keep
// returns true.
func (m *Mapping) Filter(keep func(Correspondence) bool) *Mapping {
	out := New(m.domLDS, m.rngLDS, m.mtype)
	for _, c := range m.corrs {
		if keep(c) {
			out.Add(c.Domain, c.Range, c.Sim)
		}
	}
	return out
}

// WithoutDiagonal drops correspondences whose domain and range ids are
// equal — the paper's select($Merged, "[domain.id]<>[range.id]") step that
// removes trivial duplicates from self-mappings (§4.3).
func (m *Mapping) WithoutDiagonal() *Mapping {
	return m.Filter(func(c Correspondence) bool { return c.Domain != c.Range })
}

// Sorted returns the correspondences sorted canonically: domain ascending,
// similarity descending, range ascending. It does not mutate the mapping.
func (m *Mapping) Sorted() []Correspondence {
	out := m.Correspondences()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Domain != out[j].Domain {
			return out[i].Domain < out[j].Domain
		}
		if out[i].Sim != out[j].Sim {
			return out[i].Sim > out[j].Sim
		}
		return out[i].Range < out[j].Range
	})
	return out
}

// Identity returns the identity same-mapping over the ids of the given
// object set: every instance corresponds to itself with similarity 1. The
// paper uses it as the trivial same-mapping for single-source neighborhood
// matching (§4.3).
func Identity(set *model.ObjectSet) *Mapping {
	m := NewSame(set.LDS(), set.LDS())
	for _, id := range set.IDs() {
		m.Add(id, id, 1)
	}
	return m
}

// Equal reports whether two mappings have the same endpoints, type and the
// same correspondence set with similarities equal within eps.
func (m *Mapping) Equal(o *Mapping, eps float64) bool {
	if m.domLDS != o.domLDS || m.rngLDS != o.rngLDS || m.mtype != o.mtype || len(m.corrs) != len(o.corrs) {
		return false
	}
	for _, c := range m.corrs {
		s, ok := o.Sim(c.Domain, c.Range)
		if !ok {
			return false
		}
		d := c.Sim - s
		if d < -eps || d > eps {
			return false
		}
	}
	return true
}

// Stats summarizes a mapping for reports and self-tuning.
type Stats struct {
	Corrs      int
	DomainObjs int
	RangeObjs  int
	AvgSim     float64
	MinSim     float64
	MaxSim     float64
	AvgFanOut  float64 // correspondences per distinct domain object
}

// Summarize computes mapping statistics.
func (m *Mapping) Summarize() Stats {
	st := Stats{Corrs: len(m.corrs), DomainObjs: len(m.byDomain), RangeObjs: len(m.byRange)}
	if len(m.corrs) == 0 {
		return st
	}
	st.MinSim = m.corrs[0].Sim
	st.MaxSim = m.corrs[0].Sim
	var sum float64
	for _, c := range m.corrs {
		sum += c.Sim
		if c.Sim < st.MinSim {
			st.MinSim = c.Sim
		}
		if c.Sim > st.MaxSim {
			st.MaxSim = c.Sim
		}
	}
	st.AvgSim = sum / float64(len(m.corrs))
	st.AvgFanOut = float64(len(m.corrs)) / float64(len(m.byDomain))
	return st
}

// Cardinality classifies the observed cardinality of the mapping as in
// Figure 10: 1:1, 1:n, n:1 or n:m, based on the maximum fan-out on each
// side. An empty mapping is CardUnknown.
func (m *Mapping) Cardinality() model.Cardinality {
	if len(m.corrs) == 0 {
		return model.CardUnknown
	}
	maxDom, maxRng := 0, 0
	for _, idxs := range m.byDomain {
		if len(idxs) > maxDom {
			maxDom = len(idxs)
		}
	}
	for _, idxs := range m.byRange {
		if len(idxs) > maxRng {
			maxRng = len(idxs)
		}
	}
	switch {
	case maxDom <= 1 && maxRng <= 1:
		return model.CardOneToOne
	case maxRng <= 1:
		// A domain object fans out to several range objects while every
		// range object has a single domain object: venue -> publications.
		return model.CardOneToMany
	case maxDom <= 1:
		// The mirror image: publication -> venue.
		return model.CardManyToOne
	default:
		return model.CardManyToMany
	}
}

// String renders the mapping table (sorted canonically), capped at 20 rows.
func (m *Mapping) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s (%s), %d correspondences\n", m.domLDS, m.rngLDS, m.mtype, len(m.corrs))
	for i, c := range m.Sorted() {
		if i == 20 {
			fmt.Fprintf(&b, "  ... %d more\n", len(m.corrs)-20)
			break
		}
		fmt.Fprintf(&b, "  %-28s %-28s %.3f\n", c.Domain, c.Range, c.Sim)
	}
	return b.String()
}
