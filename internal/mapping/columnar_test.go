package mapping

// Edge-case coverage for the columnar mapping core: behaviors that the
// randomized differential tests hit only by luck are pinned explicitly.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/model"
)

// TestColumnarConcurrentReads pins that a built mapping is safe for any
// number of concurrent readers — including the first callers of the lazily
// built posting lists (run under -race).
func TestColumnarConcurrentReads(t *testing.T) {
	m := NewSame(ldsA, ldsB)
	for i := 0; i < 200; i++ {
		m.Add(model.ID(fmt.Sprintf("a%d", i%20)), model.ID(fmt.Sprintf("b%d", i)), 0.5)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := model.ID(fmt.Sprintf("a%d", w))
			if len(m.ForDomain(id)) == 0 {
				t.Errorf("ForDomain(%s) empty", id)
			}
			if m.Summarize().Corrs != 200 {
				t.Error("Summarize under concurrency")
			}
			if !m.Touches(id) {
				t.Errorf("Touches(%s) false", id)
			}
			if m.Cardinality() != model.CardOneToMany {
				t.Error("Cardinality under concurrency")
			}
		}(w)
	}
	wg.Wait()
}

func TestColumnarEmptyMappings(t *testing.T) {
	empty1 := NewSame(ldsA, ldsC)
	empty2 := NewSame(ldsC, ldsB)

	if got, err := Compose(empty1, empty2, MinCombiner, AggRelative); err != nil || got.Len() != 0 {
		t.Fatalf("compose of empty mappings: len=%d err=%v", got.Len(), err)
	}
	me := NewSame(ldsA, ldsB)
	if got, err := Merge(AvgCombiner, me, me.Clone()); err != nil || got.Len() != 0 {
		t.Fatalf("merge of empty mappings: len=%d err=%v", got.Len(), err)
	}
	if got := (BestN{N: 2, Side: BothSides}).Apply(me); got.Len() != 0 {
		t.Fatalf("selection over empty mapping: len=%d", got.Len())
	}
	if got := me.Inverse(); got.Len() != 0 {
		t.Fatalf("inverse of empty mapping: len=%d", got.Len())
	}
	if got := me.Cardinality(); got != model.CardUnknown {
		t.Fatalf("empty cardinality = %v, want CardUnknown", got)
	}
	st := me.Summarize()
	if st.Corrs != 0 || st.DomainObjs != 0 || st.RangeObjs != 0 {
		t.Fatalf("empty Summarize = %+v", st)
	}
	if me.ForDomain("nope") != nil || me.ForRange("nope") != nil {
		t.Fatal("per-object views of an empty mapping must be empty")
	}
	if me.Touches("nope") {
		t.Fatal("empty mapping must touch nothing")
	}
}

func TestColumnarAddVsAddMax(t *testing.T) {
	m := NewSame(ldsA, ldsB)
	m.Add("a", "b", 0.8)
	m.Add("a", "b", 0.3) // Add replaces
	if s, _ := m.Sim("a", "b"); s != 0.3 {
		t.Fatalf("Add should replace: sim=%v", s)
	}
	m.AddMax("a", "b", 0.1) // lower: keeps 0.3
	if s, _ := m.Sim("a", "b"); s != 0.3 {
		t.Fatalf("AddMax with lower sim must keep: sim=%v", s)
	}
	m.AddMax("a", "b", 0.9)
	if s, _ := m.Sim("a", "b"); s != 0.9 {
		t.Fatalf("AddMax with higher sim must replace: sim=%v", s)
	}
	if m.Len() != 1 {
		t.Fatalf("duplicate inserts must not grow the table: len=%d", m.Len())
	}
	// Duplicates must not duplicate posting-list entries either.
	if got := m.DomainCount("a"); got != 1 {
		t.Fatalf("DomainCount after duplicate adds = %d", got)
	}
	// Clamping applies on every entry point.
	m.Add("c", "d", 1.5)
	m.AddMax("e", "f", -0.5)
	if s, _ := m.Sim("c", "d"); s != 1 {
		t.Fatalf("Add must clamp to 1, got %v", s)
	}
	if s, _ := m.Sim("e", "f"); s != 0 {
		t.Fatalf("AddMax must clamp to 0, got %v", s)
	}
}

func TestColumnarComposeSharedNothingMiddles(t *testing.T) {
	m1 := NewSame(ldsA, ldsC)
	m1.Add("a1", "c1", 0.9)
	m1.Add("a2", "c2", 0.8)
	m2 := NewSame(ldsC, ldsB)
	m2.Add("c3", "b1", 0.9) // no middle overlaps m1's
	m2.Add("c4", "b2", 0.7)
	got, err := Compose(m1, m2, MinCombiner, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("shared-nothing compose must be empty, got %d rows", got.Len())
	}
	// Mixed dictionaries with shared-nothing middles must also be empty
	// (the translation path returns misses, never panics).
	m2p := NewWithDict(ldsC, ldsB, model.SameMappingType, model.NewIDDict())
	m2p.Add("c5", "b3", 0.9)
	got, err = Compose(m1, m2p, MinCombiner, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("mixed-dict shared-nothing compose must be empty, got %d rows", got.Len())
	}
}

func TestColumnarInverseInverseIdentity(t *testing.T) {
	m := NewSame(ldsA, ldsB)
	m.Add("a1", "b1", 0.9)
	m.Add("a1", "b2", 0.8)
	m.Add("a2", "b1", 0.7)
	inv2 := m.Inverse().Inverse()
	if !m.Equal(inv2, 0) {
		t.Fatal("Inverse∘Inverse must equal the original at eps 0")
	}
	// Insertion order must round-trip too (Equal ignores order).
	want := m.Correspondences()
	got := inv2.Correspondences()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Inverse∘Inverse row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestColumnarMixedDictEqual interns the same ids in different orders into
// different dictionaries; Equal must compare by id, not ordinal.
func TestColumnarMixedDictEqual(t *testing.T) {
	d1, d2 := model.NewIDDict(), model.NewIDDict()
	m1 := NewWithDict(ldsA, ldsB, model.SameMappingType, d1)
	m2 := NewWithDict(ldsA, ldsB, model.SameMappingType, d2)

	// Same correspondence set, inserted in opposite orders: the ordinal
	// assignments disagree everywhere.
	m1.Add("a1", "b1", 0.9)
	m1.Add("a2", "b2", 0.8)
	m1.Add("a3", "b3", 0.7)
	m2.Add("a3", "b3", 0.7)
	m2.Add("a2", "b2", 0.8)
	m2.Add("a1", "b1", 0.9)

	if o1, _ := d1.Lookup("a1"); o1 == func() uint32 { o, _ := d2.Lookup("a1"); return o }() {
		t.Log("ordinals happen to agree; test still meaningful for the rest")
	}
	if !m1.Equal(m2, 0) || !m2.Equal(m1, 0) {
		t.Fatal("mappings with identical tables over different dictionaries must be Equal")
	}
	m2.Add("a4", "b4", 0.5)
	if m1.Equal(m2, 0) || m2.Equal(m1, 0) {
		t.Fatal("differing tables must not be Equal")
	}
	// Same size but different membership.
	m1.Add("a5", "b5", 0.5)
	if m1.Equal(m2, 0) || m2.Equal(m1, 0) {
		t.Fatal("same-size different-membership tables must not be Equal")
	}
}

func TestColumnarCloneIndependence(t *testing.T) {
	m := NewSame(ldsA, ldsB)
	m.Add("a1", "b1", 0.9)
	cp := m.Clone()
	cp.Add("a2", "b2", 0.8)
	cp.Add("a1", "b1", 0.1)
	if m.Len() != 1 {
		t.Fatalf("mutating a clone changed the original: len=%d", m.Len())
	}
	if s, _ := m.Sim("a1", "b1"); s != 0.9 {
		t.Fatalf("mutating a clone changed the original: sim=%v", s)
	}
	if cp.Dict() != m.Dict() {
		t.Fatal("clones share the dictionary")
	}
}

func TestColumnarEachOrdEarlyStop(t *testing.T) {
	m := NewSame(ldsA, ldsB)
	m.Add("a1", "b1", 0.9)
	m.Add("a2", "b2", 0.8)
	m.Add("a3", "b3", 0.7)
	n := 0
	m.EachOrd(func(_, _ uint32, _ float64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("EachOrd visited %d rows, want 2", n)
	}
	ids := m.Dict().All()
	m.EachOrd(func(d, r uint32, s float64) bool {
		if ids[d] == "" || ids[r] == "" {
			t.Fatalf("ordinal resolution failed: %d/%d", d, r)
		}
		return true
	})
}
