package mapping

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Selection filters the correspondences of a mapping to the most likely
// ones (§3.3). Selections compose: apply them in sequence.
type Selection interface {
	// Apply returns a new mapping containing the selected correspondences.
	Apply(m *Mapping) *Mapping
	// String describes the selection for logs and workflow listings.
	String() string
}

// Side selects which end of the mapping a per-instance selection (Best-n,
// Best-1+Delta) groups by.
type Side int

// Grouping sides. BothSides keeps a correspondence only if it survives the
// selection grouped by domain AND grouped by range.
const (
	DomainSide Side = iota
	RangeSide
	BothSides
)

// String names the side.
func (s Side) String() string {
	switch s {
	case DomainSide:
		return "domain"
	case RangeSide:
		return "range"
	case BothSides:
		return "both"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Threshold keeps correspondences with similarity >= T.
type Threshold struct{ T float64 }

// Apply implements Selection.
func (t Threshold) Apply(m *Mapping) *Mapping {
	return m.Filter(func(c Correspondence) bool { return c.Sim >= t.T })
}

func (t Threshold) String() string { return fmt.Sprintf("Threshold(%.2f)", t.T) }

// BestN keeps, for each instance of the configured side, the N
// correspondences with the highest similarity. Ties at the cut-off are
// broken deterministically by the other end's id.
type BestN struct {
	N    int
	Side Side
}

// Apply implements Selection.
func (b BestN) Apply(m *Mapping) *Mapping {
	if b.N <= 0 {
		return NewWithDict(m.Domain(), m.Range(), m.Type(), m.dict)
	}
	cut := func(sims []float64) int {
		if len(sims) > b.N {
			return b.N
		}
		return len(sims)
	}
	switch b.Side {
	case DomainSide:
		return selectPerGroup(m, true, cut)
	case RangeSide:
		return selectPerGroup(m, false, cut)
	case BothSides:
		dom := BestN{N: b.N, Side: DomainSide}.Apply(m)
		rng := BestN{N: b.N, Side: RangeSide}.Apply(m)
		return dom.intersectRows(rng)
	default:
		return m.Clone()
	}
}

func (b BestN) String() string { return fmt.Sprintf("Best-%d(%s)", b.N, b.Side) }

// Best1Delta keeps, per instance of the configured side, the correspondence
// with maximal similarity plus all correspondences within a tolerance d of
// it. With Relative true the tolerance is relative: sims >= best*(1-D);
// otherwise absolute: sims >= best-D (§3.3).
type Best1Delta struct {
	D        float64
	Relative bool
	Side     Side
}

// Apply implements Selection.
func (b Best1Delta) Apply(m *Mapping) *Mapping {
	// Groups arrive sorted by similarity descending, so "within tolerance
	// of the best" is a prefix.
	cut := func(sims []float64) int {
		if len(sims) == 0 {
			return 0
		}
		best := sims[0]
		limit := best - b.D
		if b.Relative {
			limit = best * (1 - b.D)
		}
		n := 0
		for _, s := range sims {
			if s >= limit {
				n++
			}
		}
		return n
	}
	switch b.Side {
	case DomainSide:
		return selectPerGroup(m, true, cut)
	case RangeSide:
		return selectPerGroup(m, false, cut)
	case BothSides:
		dom := Best1Delta{D: b.D, Relative: b.Relative, Side: DomainSide}.Apply(m)
		rng := Best1Delta{D: b.D, Relative: b.Relative, Side: RangeSide}.Apply(m)
		return dom.intersectRows(rng)
	default:
		return m.Clone()
	}
}

func (b Best1Delta) String() string {
	mode := "abs"
	if b.Relative {
		mode = "rel"
	}
	return fmt.Sprintf("Best-1+%.2f(%s,%s)", b.D, mode, b.Side)
}

// selectPerGroup groups rows by domain (or range) ordinal, sorts each
// group's row indices by similarity descending (ties by the other id
// ascending), and keeps the prefix of cut(sims) survivors per group. Groups
// form in first-seen order over the mapping's columns — the grouping keys,
// the sort and the output insertion order are exactly those of the previous
// struct-based implementation.
func selectPerGroup(m *Mapping, byDomain bool, cut func(sims []float64) int) *Mapping {
	keyCol, otherCol := m.dom, m.rng
	if !byDomain {
		keyCol, otherCol = m.rng, m.dom
	}
	groups := make(map[uint32][]int32)
	var order []uint32
	for i := range m.sim {
		key := keyCol[i]
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], int32(i))
	}
	out := NewWithDict(m.Domain(), m.Range(), m.Type(), m.dict)
	ids := m.dict.All()
	var sims []float64
	for _, key := range order {
		rows := groups[key]
		sort.Slice(rows, func(i, j int) bool {
			ri, rj := rows[i], rows[j]
			if m.sim[ri] != m.sim[rj] {
				return m.sim[ri] > m.sim[rj]
			}
			return ids[otherCol[ri]] < ids[otherCol[rj]]
		})
		sims = sims[:0]
		for _, r := range rows {
			sims = append(sims, m.sim[r])
		}
		for _, r := range rows[:cut(sims)] {
			out.AddOrd(m.dom[r], m.rng[r], m.sim[r])
		}
	}
	return out
}

// intersectRows keeps the correspondences of m whose (domain, range) pair
// also appears in o — the BothSides conjunction. Both mappings come from
// the same selection over the same input, so they share a dictionary and
// the probe is ordinal-to-ordinal.
func (m *Mapping) intersectRows(o *Mapping) *Mapping {
	if m.dict != o.dict {
		return m.Filter(func(c Correspondence) bool { return o.Has(c.Domain, c.Range) })
	}
	return m.filterRows(func(i int) bool { return o.HasOrd(m.dom[i], m.rng[i]) })
}

// ConstraintFunc decides whether a correspondence between two concrete
// instances satisfies a domain-specific condition. Either instance may be
// nil when its object set does not contain the id.
type ConstraintFunc func(domain, rng *model.Instance, sim float64) bool

// Constraint applies an object-value constraint (§3.3): only
// correspondences whose instances fulfil the predicate survive. The two
// object sets provide attribute access; correspondences whose ids are
// missing from the sets are dropped unless KeepUnresolved is set.
type Constraint struct {
	Name           string
	DomainSet      *model.ObjectSet
	RangeSet       *model.ObjectSet
	Pred           ConstraintFunc
	KeepUnresolved bool
}

// Apply implements Selection.
func (c Constraint) Apply(m *Mapping) *Mapping {
	return m.Filter(func(corr Correspondence) bool {
		var din, rin *model.Instance
		if c.DomainSet != nil {
			din = c.DomainSet.Get(corr.Domain)
		}
		if c.RangeSet != nil {
			rin = c.RangeSet.Get(corr.Range)
		}
		if din == nil || rin == nil {
			return c.KeepUnresolved
		}
		return c.Pred(din, rin, corr.Sim)
	})
}

func (c Constraint) String() string {
	if c.Name != "" {
		return "Constraint(" + c.Name + ")"
	}
	return "Constraint"
}

// YearConstraint returns the paper's example constraint: the publication
// years of matching objects must not differ by more than maxDiff (§2.2,
// §3.3). Instances without a parseable year pass (Google Scholar's year is
// optional; dropping those pairs would destroy recall).
func YearConstraint(attr string, maxDiff int, domainSet, rangeSet *model.ObjectSet) Constraint {
	return Constraint{
		Name:      fmt.Sprintf("|%s| diff <= %d", attr, maxDiff),
		DomainSet: domainSet,
		RangeSet:  rangeSet,
		Pred: func(d, r *model.Instance, _ float64) bool {
			yd, okD := d.IntAttr(attr)
			yr, okR := r.IntAttr(attr)
			if !okD || !okR {
				return true
			}
			diff := yd - yr
			if diff < 0 {
				diff = -diff
			}
			return diff <= maxDiff
		},
	}
}

// NotEqualIDs is the selection used to eliminate "trivial duplicates" from
// self-mappings: select($Merged, "[domain.id]<>[range.id]") in §4.3.
type NotEqualIDs struct{}

// Apply implements Selection.
func (NotEqualIDs) Apply(m *Mapping) *Mapping { return m.WithoutDiagonal() }

func (NotEqualIDs) String() string { return "[domain.id]<>[range.id]" }

// Chain applies selections left to right.
type Chain []Selection

// Apply implements Selection.
func (ch Chain) Apply(m *Mapping) *Mapping {
	cur := m
	for _, s := range ch {
		cur = s.Apply(cur)
	}
	return cur
}

func (ch Chain) String() string {
	parts := make([]string, len(ch))
	for i, s := range ch {
		parts[i] = s.String()
	}
	return "Chain(" + joinComma(parts) + ")"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
