package mapping

import (
	"cmp"
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/par"
)

// Selection filters the correspondences of a mapping to the most likely
// ones (§3.3). Selections compose: apply them in sequence.
type Selection interface {
	// Apply returns a new mapping containing the selected correspondences.
	Apply(m *Mapping) *Mapping
	// String describes the selection for logs and workflow listings.
	String() string
}

// WorkerTunable marks selections whose Apply parallelizes. WithWorkers
// returns a copy configured for the worker count (0 = GOMAXPROCS);
// worker counts change wall-clock time only, never the selected rows or
// their order.
type WorkerTunable interface {
	Selection
	WithWorkers(workers int) Selection
}

// Side selects which end of the mapping a per-instance selection (Best-n,
// Best-1+Delta) groups by.
type Side int

// Grouping sides. BothSides keeps a correspondence only if it survives the
// selection grouped by domain AND grouped by range.
const (
	DomainSide Side = iota
	RangeSide
	BothSides
)

// String names the side.
func (s Side) String() string {
	switch s {
	case DomainSide:
		return "domain"
	case RangeSide:
		return "range"
	case BothSides:
		return "both"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Threshold keeps correspondences with similarity >= T.
type Threshold struct{ T float64 }

// Apply implements Selection.
func (t Threshold) Apply(m *Mapping) *Mapping {
	return m.Filter(func(c Correspondence) bool { return c.Sim >= t.T })
}

func (t Threshold) String() string { return fmt.Sprintf("Threshold(%.2f)", t.T) }

// BestN keeps, for each instance of the configured side, the N
// correspondences with the highest similarity. Ties at the cut-off are
// broken deterministically by the other end's id. Workers sizes the
// per-group worker team (0 = GOMAXPROCS); the result is identical at
// every count.
type BestN struct {
	N       int
	Side    Side
	Workers int
}

// Apply implements Selection.
func (b BestN) Apply(m *Mapping) *Mapping {
	if b.N <= 0 {
		return NewWithDict(m.Domain(), m.Range(), m.Type(), m.dict)
	}
	cut := func(sims []float64) int {
		if len(sims) > b.N {
			return b.N
		}
		return len(sims)
	}
	switch b.Side {
	case DomainSide:
		return selectPerGroup(m, true, cut, b.Workers)
	case RangeSide:
		return selectPerGroup(m, false, cut, b.Workers)
	case BothSides:
		dom := BestN{N: b.N, Side: DomainSide, Workers: b.Workers}.Apply(m)
		rng := BestN{N: b.N, Side: RangeSide, Workers: b.Workers}.Apply(m)
		return dom.intersectRows(rng)
	default:
		return m.Clone()
	}
}

// WithWorkers implements WorkerTunable.
func (b BestN) WithWorkers(workers int) Selection {
	b.Workers = workers
	return b
}

func (b BestN) String() string { return fmt.Sprintf("Best-%d(%s)", b.N, b.Side) }

// Best1Delta keeps, per instance of the configured side, the correspondence
// with maximal similarity plus all correspondences within a tolerance d of
// it. With Relative true the tolerance is relative: sims >= best*(1-D);
// otherwise absolute: sims >= best-D (§3.3).
type Best1Delta struct {
	D        float64
	Relative bool
	Side     Side
	// Workers sizes the per-group worker team (0 = GOMAXPROCS); the
	// result is identical at every count.
	Workers int
}

// Apply implements Selection.
func (b Best1Delta) Apply(m *Mapping) *Mapping {
	// Groups arrive sorted by similarity descending, so "within tolerance
	// of the best" is a prefix.
	cut := func(sims []float64) int {
		if len(sims) == 0 {
			return 0
		}
		best := sims[0]
		limit := best - b.D
		if b.Relative {
			limit = best * (1 - b.D)
		}
		n := 0
		for _, s := range sims {
			if s >= limit {
				n++
			}
		}
		return n
	}
	switch b.Side {
	case DomainSide:
		return selectPerGroup(m, true, cut, b.Workers)
	case RangeSide:
		return selectPerGroup(m, false, cut, b.Workers)
	case BothSides:
		dom := Best1Delta{D: b.D, Relative: b.Relative, Side: DomainSide, Workers: b.Workers}.Apply(m)
		rng := Best1Delta{D: b.D, Relative: b.Relative, Side: RangeSide, Workers: b.Workers}.Apply(m)
		return dom.intersectRows(rng)
	default:
		return m.Clone()
	}
}

// WithWorkers implements WorkerTunable.
func (b Best1Delta) WithWorkers(workers int) Selection {
	b.Workers = workers
	return b
}

func (b Best1Delta) String() string {
	mode := "abs"
	if b.Relative {
		mode = "rel"
	}
	return fmt.Sprintf("Best-1+%.2f(%s,%s)", b.D, mode, b.Side)
}

// selectPerGroup groups rows by domain (or range) ordinal, sorts each
// group's row indices by similarity descending (ties by the other id
// ascending), and keeps the prefix of cut(sims) survivors per group.
// Groups form in first-seen order over the mapping's columns — the
// grouping keys, the sort and the output insertion order are exactly those
// of the previous struct-based implementation.
//
// The work hash-partitions by group key: every worker scans the key column
// but owns only the groups that hash to its partition, collecting, sorting
// and cutting them in private scratch. Since a group's rows all share its
// key, no group straddles workers; the merge-back orders the surviving
// groups by their first row — the first-seen order the sequential scan
// produces — and bulk-loads the output columns.
func selectPerGroup(m *Mapping, byDomain bool, cut func(sims []float64) int, workers int) (out *Mapping) {
	defer func(start time.Time) {
		observeOp("select", par.Workers(workers), start, out.Len())
	}(time.Now())
	keyCol, otherCol := m.dom, m.rng
	if !byDomain {
		keyCol, otherCol = m.rng, m.dom
	}
	ids := m.dict.All()

	// groupRun is one group's survivors in a worker's kept arena.
	type groupRun struct {
		firstRow int32
		off, cnt int32
	}
	type selScratch struct {
		runs []groupRun
		kept []int32
	}
	team := par.Team(len(m.sim), workers)
	scratch := make([]selScratch, team)
	par.RunTeam(team, func(w int) {
		sc := &scratch[w]
		groups := make(map[uint32][]int32)
		var order []uint32
		for i := range m.sim {
			key := keyCol[i]
			if team > 1 && par.Partition(key, team) != w {
				continue
			}
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], int32(i))
		}
		sc.runs = make([]groupRun, 0, len(order))
		var sims []float64
		for _, key := range order {
			rows := groups[key]
			first := rows[0] // scan order is ascending, so rows[0] is the group's first row
			sort.Slice(rows, func(i, j int) bool {
				ri, rj := rows[i], rows[j]
				if m.sim[ri] != m.sim[rj] {
					return m.sim[ri] > m.sim[rj]
				}
				return ids[otherCol[ri]] < ids[otherCol[rj]]
			})
			sims = sims[:0]
			for _, r := range rows {
				sims = append(sims, m.sim[r])
			}
			keep := rows[:cut(sims)]
			sc.runs = append(sc.runs, groupRun{firstRow: first, off: int32(len(sc.kept)), cnt: int32(len(keep))})
			sc.kept = append(sc.kept, keep...)
		}
	})

	// Merge-back: order all surviving groups by first row (unique — a row
	// belongs to one group), then scatter the kept rows into the output
	// columns at prefix-summed offsets.
	type groupRef struct {
		firstRow int32
		w        int32
		off, cnt int32
	}
	nRefs := 0
	for w := range scratch {
		nRefs += len(scratch[w].runs)
	}
	refs := make([]groupRef, 0, nRefs)
	for w := range scratch {
		for _, run := range scratch[w].runs {
			refs = append(refs, groupRef{firstRow: run.firstRow, w: int32(w), off: run.off, cnt: run.cnt})
		}
	}
	if team > 1 {
		par.SortFunc(refs, workers, func(a, b groupRef) int { return cmp.Compare(a.firstRow, b.firstRow) })
	}
	offs := make([]int, len(refs)+1)
	for g := range refs {
		offs[g+1] = offs[g] + int(refs[g].cnt)
	}
	dom := make([]uint32, offs[len(refs)])
	rng := make([]uint32, offs[len(refs)])
	sim := make([]float64, offs[len(refs)])
	par.Split(len(refs), workers).Run(func(c, lo, hi int) {
		for g := lo; g < hi; g++ {
			ref := refs[g]
			pos := offs[g]
			for _, r := range scratch[ref.w].kept[ref.off : ref.off+ref.cnt] {
				dom[pos] = m.dom[r]
				rng[pos] = m.rng[r]
				sim[pos] = m.sim[r]
				pos++
			}
		}
	})
	return newFromColumns(m.Domain(), m.Range(), m.Type(), m.dict, dom, rng, sim)
}

// intersectRows keeps the correspondences of m whose (domain, range) pair
// also appears in o — the BothSides conjunction. Both mappings come from
// the same selection over the same input, so they share a dictionary and
// the probe is ordinal-to-ordinal.
func (m *Mapping) intersectRows(o *Mapping) *Mapping {
	if m.dict != o.dict {
		return m.Filter(func(c Correspondence) bool { return o.Has(c.Domain, c.Range) })
	}
	return m.filterRows(func(i int) bool { return o.HasOrd(m.dom[i], m.rng[i]) })
}

// ConstraintFunc decides whether a correspondence between two concrete
// instances satisfies a domain-specific condition. Either instance may be
// nil when its object set does not contain the id.
type ConstraintFunc func(domain, rng *model.Instance, sim float64) bool

// Constraint applies an object-value constraint (§3.3): only
// correspondences whose instances fulfil the predicate survive. The two
// object sets provide attribute access; correspondences whose ids are
// missing from the sets are dropped unless KeepUnresolved is set.
type Constraint struct {
	Name           string
	DomainSet      *model.ObjectSet
	RangeSet       *model.ObjectSet
	Pred           ConstraintFunc
	KeepUnresolved bool
}

// Apply implements Selection.
func (c Constraint) Apply(m *Mapping) *Mapping {
	return m.Filter(func(corr Correspondence) bool {
		var din, rin *model.Instance
		if c.DomainSet != nil {
			din = c.DomainSet.Get(corr.Domain)
		}
		if c.RangeSet != nil {
			rin = c.RangeSet.Get(corr.Range)
		}
		if din == nil || rin == nil {
			return c.KeepUnresolved
		}
		return c.Pred(din, rin, corr.Sim)
	})
}

func (c Constraint) String() string {
	if c.Name != "" {
		return "Constraint(" + c.Name + ")"
	}
	return "Constraint"
}

// YearConstraint returns the paper's example constraint: the publication
// years of matching objects must not differ by more than maxDiff (§2.2,
// §3.3). Instances without a parseable year pass (Google Scholar's year is
// optional; dropping those pairs would destroy recall).
func YearConstraint(attr string, maxDiff int, domainSet, rangeSet *model.ObjectSet) Constraint {
	return Constraint{
		Name:      fmt.Sprintf("|%s| diff <= %d", attr, maxDiff),
		DomainSet: domainSet,
		RangeSet:  rangeSet,
		Pred: func(d, r *model.Instance, _ float64) bool {
			yd, okD := d.IntAttr(attr)
			yr, okR := r.IntAttr(attr)
			if !okD || !okR {
				return true
			}
			diff := yd - yr
			if diff < 0 {
				diff = -diff
			}
			return diff <= maxDiff
		},
	}
}

// NotEqualIDs is the selection used to eliminate "trivial duplicates" from
// self-mappings: select($Merged, "[domain.id]<>[range.id]") in §4.3.
type NotEqualIDs struct{}

// Apply implements Selection.
func (NotEqualIDs) Apply(m *Mapping) *Mapping { return m.WithoutDiagonal() }

func (NotEqualIDs) String() string { return "[domain.id]<>[range.id]" }

// Chain applies selections left to right.
type Chain []Selection

// Apply implements Selection.
func (ch Chain) Apply(m *Mapping) *Mapping {
	cur := m
	for _, s := range ch {
		cur = s.Apply(cur)
	}
	return cur
}

// WithWorkers implements WorkerTunable: it configures every tunable
// element of the chain.
func (ch Chain) WithWorkers(workers int) Selection {
	out := make(Chain, len(ch))
	for i, s := range ch {
		if t, ok := s.(WorkerTunable); ok {
			out[i] = t.WithWorkers(workers)
		} else {
			out[i] = s
		}
	}
	return out
}

func (ch Chain) String() string {
	parts := make([]string, len(ch))
	for i, s := range ch {
		parts[i] = s.String()
	}
	return "Chain(" + joinComma(parts) + ")"
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}
