package mapping

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
	gsPub   = model.LDS{Source: "GS", Type: model.Publication}
	dblpVen = model.LDS{Source: "DBLP", Type: model.Venue}
	acmVen  = model.LDS{Source: "ACM", Type: model.Venue}
)

func TestNewSamePanicsOnTypeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSame across object types must panic")
		}
	}()
	NewSame(dblpPub, model.LDS{Source: "ACM", Type: model.Author})
}

func TestAddReplacesAndClamps(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("p1", "q1", 0.5)
	m.Add("p1", "q1", 0.9)
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", m.Len())
	}
	if s, _ := m.Sim("p1", "q1"); s != 0.9 {
		t.Errorf("Sim = %v, want 0.9", s)
	}
	m.Add("p2", "q2", 1.7)
	if s, _ := m.Sim("p2", "q2"); s != 1 {
		t.Errorf("clamp high: %v", s)
	}
	m.Add("p3", "q3", -0.3)
	if s, _ := m.Sim("p3", "q3"); s != 0 {
		t.Errorf("clamp low: %v", s)
	}
}

func TestAddMax(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.AddMax("p1", "q1", 0.5)
	m.AddMax("p1", "q1", 0.3)
	if s, _ := m.Sim("p1", "q1"); s != 0.5 {
		t.Errorf("AddMax lowered sim to %v", s)
	}
	m.AddMax("p1", "q1", 0.8)
	if s, _ := m.Sim("p1", "q1"); s != 0.8 {
		t.Errorf("AddMax did not raise sim: %v", s)
	}
}

func TestFigure1SameMapping(t *testing.T) {
	// The publication same-mapping of Figure 1 between DBLP and ACM.
	m := NewSame(dblpPub, acmPub)
	m.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	m.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	m.Add("conf/VLDB/ChirkovaHS01", "P-641272", 0.6)
	m.Add("journals/VLDB/ChirkovaHS02", "P-641272", 1)
	m.Add("journals/VLDB/ChirkovaHS02", "P-672216", 0.6)

	if m.Len() != 5 {
		t.Fatalf("Len = %d, want 5", m.Len())
	}
	if n := m.DomainCount("conf/VLDB/ChirkovaHS01"); n != 2 {
		t.Errorf("DomainCount = %d, want 2", n)
	}
	if n := m.RangeCount("P-641272"); n != 2 {
		t.Errorf("RangeCount = %d, want 2", n)
	}
	if got := m.Cardinality(); got != model.CardManyToMany {
		t.Errorf("Cardinality = %s, want n:m (conference+journal versions)", got)
	}
	if !m.IsSame() {
		t.Error("should be a same-mapping")
	}
}

func TestForDomainForRange(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("a", "x", 0.9)
	m.Add("a", "y", 0.5)
	m.Add("b", "x", 0.3)
	if got := len(m.ForDomain("a")); got != 2 {
		t.Errorf("ForDomain(a) = %d corrs", got)
	}
	if got := len(m.ForRange("x")); got != 2 {
		t.Errorf("ForRange(x) = %d corrs", got)
	}
	if got := len(m.ForDomain("zz")); got != 0 {
		t.Errorf("ForDomain(zz) = %d corrs", got)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	m := New(dblpVen, dblpPub, "VenuePub")
	m.Add("v1", "p1", 1)
	m.Add("v1", "p2", 0.7)
	m.Add("v2", "p3", 0.4)
	inv := m.Inverse()
	if inv.Domain() != dblpPub || inv.Range() != dblpVen {
		t.Error("Inverse endpoints wrong")
	}
	if s, ok := inv.Sim("p2", "v1"); !ok || s != 0.7 {
		t.Errorf("Inverse sim = %v, %v", s, ok)
	}
	back := inv.Inverse()
	if !m.Equal(back, 0) {
		t.Error("double inverse should equal original")
	}
}

func TestInversePropertyQuick(t *testing.T) {
	f := func(pairs []struct {
		D, R uint8
		S    float64
	}) bool {
		m := NewSame(dblpPub, acmPub)
		for _, p := range pairs {
			m.Add(model.ID(rune('a'+p.D%16)), model.ID(rune('A'+p.R%16)), math.Abs(p.S)/(1+math.Abs(p.S)))
		}
		return m.Equal(m.Inverse().Inverse(), 1e-15) && m.Inverse().Len() == m.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIdentity(t *testing.T) {
	set := model.NewObjectSet(dblpPub)
	set.AddNew("p1", nil)
	set.AddNew("p2", nil)
	id := Identity(set)
	if id.Len() != 2 {
		t.Fatalf("Identity len = %d", id.Len())
	}
	for _, c := range id.Correspondences() {
		if c.Domain != c.Range || c.Sim != 1 {
			t.Errorf("bad identity corr %+v", c)
		}
	}
	if id.Cardinality() != model.CardOneToOne {
		t.Error("identity should be 1:1")
	}
}

func TestWithoutDiagonal(t *testing.T) {
	m := NewSame(dblpPub, dblpPub)
	m.Add("p1", "p1", 1)
	m.Add("p1", "p2", 0.8)
	m.Add("p2", "p2", 1)
	got := m.WithoutDiagonal()
	if got.Len() != 1 || !got.Has("p1", "p2") {
		t.Errorf("WithoutDiagonal = %v", got.Correspondences())
	}
}

func TestSortedCanonical(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("b", "x", 0.5)
	m.Add("a", "y", 0.5)
	m.Add("a", "x", 0.9)
	got := m.Sorted()
	want := []Correspondence{{"a", "x", 0.9}, {"a", "y", 0.5}, {"b", "x", 0.5}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Sorted = %v, want %v", got, want)
	}
}

func TestSummarize(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("a", "x", 1)
	m.Add("a", "y", 0.5)
	m.Add("b", "z", 0.75)
	st := m.Summarize()
	if st.Corrs != 3 || st.DomainObjs != 2 || st.RangeObjs != 3 {
		t.Errorf("counts = %+v", st)
	}
	if math.Abs(st.AvgSim-0.75) > 1e-12 || st.MinSim != 0.5 || st.MaxSim != 1 {
		t.Errorf("sims = %+v", st)
	}
	if math.Abs(st.AvgFanOut-1.5) > 1e-12 {
		t.Errorf("fanout = %v", st.AvgFanOut)
	}
	empty := NewSame(dblpPub, acmPub).Summarize()
	if empty.Corrs != 0 || empty.AvgSim != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}

func TestFigure10Cardinalities(t *testing.T) {
	// (a) 1:n venue-publication
	vp := New(dblpVen, dblpPub, "VenuePub")
	vp.Add("v1", "p1", 1)
	vp.Add("v1", "p2", 1)
	vp.Add("v1", "p3", 1)
	if got := vp.Cardinality(); got != model.CardOneToMany {
		t.Errorf("venue-pub cardinality = %s, want 1:n", got)
	}
	// (b) n:1 publication-venue
	pv := vp.Inverse()
	if got := pv.Cardinality(); got != model.CardManyToOne {
		t.Errorf("pub-venue cardinality = %s, want n:1", got)
	}
	// (c) n:m author-publication
	ap := New(model.LDS{Source: "DBLP", Type: model.Author}, dblpPub, "AuthorPub")
	ap.Add("a1", "p1", 1)
	ap.Add("a1", "p2", 1)
	ap.Add("a2", "p1", 1)
	if got := ap.Cardinality(); got != model.CardManyToMany {
		t.Errorf("author-pub cardinality = %s, want n:m", got)
	}
	if New(dblpVen, dblpPub, "x").Cardinality() != model.CardUnknown {
		t.Error("empty mapping should be CardUnknown")
	}
}

func TestEqualEps(t *testing.T) {
	a := NewSame(dblpPub, acmPub)
	a.Add("p", "q", 0.5)
	b := NewSame(dblpPub, acmPub)
	b.Add("p", "q", 0.5000001)
	if !a.Equal(b, 1e-3) {
		t.Error("should be equal within eps")
	}
	if a.Equal(b, 1e-9) {
		t.Error("should differ at tight eps")
	}
	c := NewSame(dblpPub, gsPub)
	c.Add("p", "q", 0.5)
	if a.Equal(c, 1) {
		t.Error("different endpoints can never be equal")
	}
}

func TestStringRender(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("p1", "q1", 0.875)
	s := m.String()
	if !strings.Contains(s, "Publication@DBLP") || !strings.Contains(s, "0.875") {
		t.Errorf("String() = %q", s)
	}
}

func TestDomainRangeIDsOrder(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("b", "y", 1)
	m.Add("a", "x", 1)
	m.Add("b", "x", 1)
	if got := m.DomainIDs(); !reflect.DeepEqual(got, []model.ID{"b", "a"}) {
		t.Errorf("DomainIDs = %v", got)
	}
	if got := m.RangeIDs(); !reflect.DeepEqual(got, []model.ID{"y", "x"}) {
		t.Errorf("RangeIDs = %v", got)
	}
}
