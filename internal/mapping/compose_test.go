package mapping

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// figure6Maps builds the compose inputs of Figure 6: a venue-publication
// mapping (already composed with a publication same-mapping) and a
// publication-venue association mapping.
func figure6Maps() (*Mapping, *Mapping) {
	map1 := New(dblpVen, acmPub, "VenuePub")
	map1.Add("v1", "p1", 1)
	map1.Add("v1", "p2", 1)
	map1.Add("v1", "p3", 0.6)
	map1.Add("v2", "p2", 0.6)
	map1.Add("v2", "p3", 1)

	map2 := New(acmPub, acmVen, "PubVenue")
	map2.Add("p1", "v'1", 1)
	map2.Add("p2", "v'1", 1)
	map2.Add("p3", "v'2", 1)
	return map1, map2
}

func TestFigure6ComposeMinRelative(t *testing.T) {
	map1, map2 := figure6Maps()
	got, err := Compose(map1, map2, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	// Exactly the paper's result table:
	//   (v1,v'1) = 2*(1+1)/(3+2)   = 0.8
	//   (v1,v'2) = 2*0.6/(3+1)     = 0.3
	//   (v2,v'1) = 2*0.6/(2+2)     = 0.3
	//   (v2,v'2) = 2*1/(2+1)       = 0.67
	wantMapping(t, got, []Correspondence{
		{"v1", "v'1", 0.8},
		{"v1", "v'2", 0.3},
		{"v2", "v'1", 0.3},
		{"v2", "v'2", 2.0 / 3.0},
	})
}

func TestComposeRelativeLeftRight(t *testing.T) {
	map1, map2 := figure6Maps()
	left, err := Compose(map1, map2, MinCombiner, AggRelativeLeft)
	if err != nil {
		t.Fatal(err)
	}
	// (v1,v'1): s=2, n(v1)=3 -> 2/3.
	if s, _ := left.Sim("v1", "v'1"); math.Abs(s-2.0/3.0) > 1e-9 {
		t.Errorf("RelativeLeft(v1,v'1) = %v, want 2/3", s)
	}
	right, err := Compose(map1, map2, MinCombiner, AggRelativeRight)
	if err != nil {
		t.Fatal(err)
	}
	// (v1,v'1): s=2, n(v'1)=2 -> 1.
	if s, _ := right.Sim("v1", "v'1"); math.Abs(s-1) > 1e-9 {
		t.Errorf("RelativeRight(v1,v'1) = %v, want 1", s)
	}
	// Relative is the harmonic mean of left and right: check on (v2,v'2):
	// left = 1/2, right = 1/1 -> harmonic = 2*1/(2+1)=2/3.
	rel, _ := Compose(map1, map2, MinCombiner, AggRelative)
	l, _ := left.Sim("v2", "v'2")
	r, _ := right.Sim("v2", "v'2")
	want := 2 * l * r / (l + r)
	if s, _ := rel.Sim("v2", "v'2"); math.Abs(s-want) > 1e-9 {
		t.Errorf("Relative(v2,v'2) = %v, want harmonic mean %v", s, want)
	}
}

func TestComposeAvgMinMax(t *testing.T) {
	map1, map2 := figure6Maps()
	avg, err := Compose(map1, map2, MinCombiner, AggAvg)
	if err != nil {
		t.Fatal(err)
	}
	// (v1,v'1): paths 1,1 -> avg 1.
	if s, _ := avg.Sim("v1", "v'1"); s != 1 {
		t.Errorf("AggAvg = %v, want 1", s)
	}
	// Build a case with differing path sims: v3 reaches w via p4 (0.4) and
	// p5 (0.8).
	m1 := New(dblpVen, acmPub, "VenuePub")
	m1.Add("v3", "p4", 0.4)
	m1.Add("v3", "p5", 0.8)
	m2 := New(acmPub, acmVen, "PubVenue")
	m2.Add("p4", "w", 1)
	m2.Add("p5", "w", 1)
	for g, want := range map[PathAgg]float64{AggAvg: 0.6, AggMin: 0.4, AggMax: 0.8} {
		got, err := Compose(m1, m2, MinCombiner, g)
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := got.Sim("v3", "w"); math.Abs(s-want) > 1e-9 {
			t.Errorf("g=%s: sim = %v, want %v", g, s, want)
		}
	}
}

func TestComposePathFunctions(t *testing.T) {
	m1 := NewSame(dblpPub, gsPub)
	m1.Add("a", "c", 0.4)
	m2 := NewSame(gsPub, acmPub)
	m2.Add("c", "b", 0.8)
	cases := []struct {
		f    Combiner
		want float64
	}{
		{MinCombiner, 0.4},
		{MaxCombiner, 0.8},
		{AvgCombiner, 0.6},
		{WeightedCombiner(3, 1), 0.5},
		{PreferCombiner(0), 0.4},
		{PreferCombiner(1), 0.8},
	}
	for _, tc := range cases {
		got, err := Compose(m1, m2, tc.f, AggMax)
		if err != nil {
			t.Fatal(err)
		}
		if s, _ := got.Sim("a", "b"); math.Abs(s-tc.want) > 1e-9 {
			t.Errorf("f=%v: sim = %v, want %v", tc.f.Kind, s, tc.want)
		}
	}
}

func TestComposeMiddleMismatch(t *testing.T) {
	m1 := NewSame(dblpPub, gsPub)
	m2 := NewSame(acmPub, gsPub)
	if _, err := Compose(m1, m2, MinCombiner, AggMax); err == nil {
		t.Error("mismatched middle sources should fail")
	}
}

func TestComposeTypePropagation(t *testing.T) {
	s1 := NewSame(dblpPub, gsPub)
	s1.Add("a", "c", 1)
	s2 := NewSame(gsPub, acmPub)
	s2.Add("c", "b", 1)
	same, err := Compose(s1, s2, MinCombiner, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if !same.IsSame() {
		t.Error("composition of same-mappings should be a same-mapping")
	}
	asso := New(dblpVen, dblpPub, "VenuePub")
	asso.Add("v", "a", 1)
	mixed, err := Compose(asso, s1, MinCombiner, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if mixed.IsSame() {
		t.Error("composition involving association mappings is not a same-mapping")
	}
	if mixed.Type() != "VenuePub.same" {
		t.Errorf("derived type = %s", mixed.Type())
	}
}

func TestComposeEmptyIntermediate(t *testing.T) {
	// Figure 7's recall hazard: p4-p'4 cannot be derived when GS lacks the
	// intermediate object.
	m1 := NewSame(dblpPub, gsPub)
	m1.Add("p4", "gs9", 1)
	m2 := NewSame(gsPub, acmPub)
	m2.Add("gs1", "p'1", 1) // no gs9 entry
	got, err := Compose(m1, m2, MinCombiner, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("expected empty composition, got %v", got.Correspondences())
	}
}

func TestFigure7ComposeHazards(t *testing.T) {
	// DBLP p2,p3 are a conference and a journal version with the same
	// title; GS merges them into one object g23. ACM differentiates p'2,
	// p'3. Composing DBLP-GS with GS-ACM yields 4 correspondences instead
	// of 2 (precision loss), and p4-p'4 is lost (recall loss).
	dblpGS := NewSame(dblpPub, gsPub)
	dblpGS.Add("p1", "g1", 1)
	dblpGS.Add("p2", "g23", 1)
	dblpGS.Add("p3", "g23", 1)
	// p4 has no GS counterpart.
	gsACM := NewSame(gsPub, acmPub)
	gsACM.Add("g1", "p'1", 1)
	gsACM.Add("g23", "p'2", 1)
	gsACM.Add("g23", "p'3", 1)

	got, err := Compose(dblpGS, gsACM, MinCombiner, AggMax)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 { // p1-p'1 plus the 2x2 cross product of p2,p3 x p'2,p'3
		t.Fatalf("composition size = %d, want 5", got.Len())
	}
	for _, bad := range [][2]model.ID{{"p2", "p'3"}, {"p3", "p'2"}} {
		if !got.Has(bad[0], bad[1]) {
			t.Errorf("expected spurious correspondence %v from merged GS object", bad)
		}
	}
	if got.Has("p4", "p'4") {
		t.Error("p4-p'4 must be unreachable without a GS counterpart")
	}
	// With an additional clean GS entry g2 for p2, the correct pair
	// (p2,p'2) gathers two compose paths while the spurious (p2,p'3) has
	// one; Relative then ranks the correct pair higher.
	dblpGS.Add("p2", "g2", 1)
	gsACM.Add("g2", "p'2", 1)
	rel, err := Compose(dblpGS, gsACM, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := rel.Sim("p2", "p'2")
	spurious, _ := rel.Sim("p2", "p'3")
	if clean <= spurious {
		t.Errorf("Relative should rank the multi-path pair (%v) above the single-path pair (%v)", clean, spurious)
	}
}

func TestComposeChain(t *testing.T) {
	m1 := NewSame(dblpPub, gsPub)
	m1.Add("a", "g", 1)
	m2 := NewSame(gsPub, acmPub)
	m2.Add("g", "x", 0.8)
	m3 := NewSame(acmPub, model.LDS{Source: "Springer", Type: model.Publication})
	m3.Add("x", "s", 0.5)
	got, err := ComposeChain(MinCombiner, AggMax, m1, m2, m3)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Sim("a", "s"); math.Abs(s-0.5) > 1e-9 {
		t.Errorf("chain sim = %v, want 0.5 (min through chain)", s)
	}
	if _, err := ComposeChain(MinCombiner, AggMax); err == nil {
		t.Error("empty chain should fail")
	}
	single, err := ComposeChain(MinCombiner, AggMax, m1)
	if err != nil || !single.Equal(m1, 0) {
		t.Error("single-element chain should be the mapping itself")
	}
}

func TestNumPaths(t *testing.T) {
	map1, map2 := figure6Maps()
	if got := NumPaths(map1, map2, "v1", "v'1"); got != 2 {
		t.Errorf("NumPaths(v1,v'1) = %d, want 2", got)
	}
	if got := NumPaths(map1, map2, "v1", "v'2"); got != 1 {
		t.Errorf("NumPaths(v1,v'2) = %d, want 1", got)
	}
	if got := NumPaths(map1, map2, "v9", "v'1"); got != 0 {
		t.Errorf("NumPaths(v9,v'1) = %d, want 0", got)
	}
}

func TestComposeIdentityProperty(t *testing.T) {
	// Composing with an identity mapping (f=Min, g=Max) preserves the
	// positive correspondences.
	f := func(p []struct {
		D, R uint8
		S    float64
	}) bool {
		m := randomSame(p)
		set := model.NewObjectSet(acmPub)
		for _, id := range m.RangeIDs() {
			set.AddNew(id, nil)
		}
		id := Identity(set)
		got, err := Compose(m, id, MinCombiner, AggMax)
		if err != nil {
			return false
		}
		want := m.Filter(func(c Correspondence) bool { return c.Sim > 0 })
		return got.Equal(want, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComposeSimilarityBounds(t *testing.T) {
	f := func(p1, p2 []struct {
		D, R uint8
		S    float64
	}) bool {
		m1 := randomSame(p1)
		mid := NewSame(acmPub, gsPub)
		for _, q := range p2 {
			s := math.Abs(q.S)
			mid.Add(model.ID(rune('A'+q.D%12)), model.ID(rune('x'+q.R%12)), s/(1+s))
		}
		for _, g := range []PathAgg{AggAvg, AggMin, AggMax, AggRelative, AggRelativeLeft, AggRelativeRight} {
			got, err := Compose(m1, mid, MinCombiner, g)
			if err != nil {
				return false
			}
			bad := false
			got.Each(func(c Correspondence) {
				if c.Sim < 0 || c.Sim > 1 {
					bad = true
				}
			})
			if bad {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParsePathAgg(t *testing.T) {
	cases := map[string]PathAgg{
		"Average": AggAvg, "avg": AggAvg, "Min": AggMin, "MAX": AggMax,
		"Relative": AggRelative, "relativeleft": AggRelativeLeft, "RelativeRight": AggRelativeRight,
	}
	for in, want := range cases {
		got, err := ParsePathAgg(in)
		if err != nil || got != want {
			t.Errorf("ParsePathAgg(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParsePathAgg("nope"); err == nil {
		t.Error("unknown aggregation should fail")
	}
}

func TestParseCombinerKind(t *testing.T) {
	cases := map[string]CombinerKind{
		"Min": Min, "avg": Avg, "Average": Avg, "MAX": Max, "Weighted": Weighted, "PreferMap": Prefer,
	}
	for in, want := range cases {
		got, err := ParseCombinerKind(in)
		if err != nil || got != want {
			t.Errorf("ParseCombinerKind(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseCombinerKind("nope"); err == nil {
		t.Error("unknown combiner should fail")
	}
}

func TestPathAggString(t *testing.T) {
	for g, want := range map[PathAgg]string{
		AggAvg: "Average", AggMin: "Min", AggMax: "Max",
		AggRelative: "Relative", AggRelativeLeft: "RelativeLeft", AggRelativeRight: "RelativeRight",
	} {
		if got := g.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	if PathAgg(99).String() == "" {
		t.Error("unknown agg should still render")
	}
}
