package mapping

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func selectFixture() *Mapping {
	m := NewSame(dblpPub, acmPub)
	m.Add("a", "x", 0.9)
	m.Add("a", "y", 0.85)
	m.Add("a", "z", 0.3)
	m.Add("b", "x", 0.7)
	m.Add("b", "y", 0.6)
	m.Add("c", "z", 0.5)
	return m
}

func TestThreshold(t *testing.T) {
	m := selectFixture()
	got := Threshold{T: 0.7}.Apply(m)
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"a", "y", 0.85}, {"b", "x", 0.7},
	})
	if (Threshold{T: 0}).Apply(m).Len() != m.Len() {
		t.Error("threshold 0 should keep everything")
	}
	if (Threshold{T: 1.1}).Apply(m).Len() != 0 {
		t.Error("threshold > 1 should drop everything")
	}
}

func TestBestNDomain(t *testing.T) {
	m := selectFixture()
	got := BestN{N: 1, Side: DomainSide}.Apply(m)
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"b", "x", 0.7}, {"c", "z", 0.5},
	})
	got2 := BestN{N: 2, Side: DomainSide}.Apply(m)
	if got2.Len() != 5 {
		t.Errorf("Best-2 per domain = %d corrs, want 5", got2.Len())
	}
}

func TestBestNRange(t *testing.T) {
	m := selectFixture()
	got := BestN{N: 1, Side: RangeSide}.Apply(m)
	// x: best is a(0.9); y: best is a(0.85); z: best is c(0.5).
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"a", "y", 0.85}, {"c", "z", 0.5},
	})
}

func TestBestNBoth(t *testing.T) {
	m := selectFixture()
	got := BestN{N: 1, Side: BothSides}.Apply(m)
	// Must be best for its domain AND its range.
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"c", "z", 0.5},
	})
}

func TestBestNZero(t *testing.T) {
	if (BestN{N: 0, Side: DomainSide}).Apply(selectFixture()).Len() != 0 {
		t.Error("Best-0 should be empty")
	}
}

func TestBestNTieBreaking(t *testing.T) {
	m := NewSame(dblpPub, acmPub)
	m.Add("a", "y", 0.5)
	m.Add("a", "x", 0.5)
	got := BestN{N: 1, Side: DomainSide}.Apply(m)
	// Deterministic tie-break by range id ascending.
	wantMapping(t, got, []Correspondence{{"a", "x", 0.5}})
}

func TestBest1DeltaAbsolute(t *testing.T) {
	m := selectFixture()
	got := Best1Delta{D: 0.05, Side: DomainSide}.Apply(m)
	// a: best 0.9, keep >= 0.85 -> x and y; b: best 0.7 -> only x;
	// c: z.
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"a", "y", 0.85}, {"b", "x", 0.7}, {"c", "z", 0.5},
	})
}

func TestBest1DeltaRelative(t *testing.T) {
	m := selectFixture()
	got := Best1Delta{D: 0.2, Relative: true, Side: DomainSide}.Apply(m)
	// a: keep >= 0.72 -> x,y; b: keep >= 0.56 -> x,y; c: z.
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"a", "y", 0.85}, {"b", "x", 0.7}, {"b", "y", 0.6}, {"c", "z", 0.5},
	})
}

func TestBest1DeltaBothSides(t *testing.T) {
	m := selectFixture()
	got := Best1Delta{D: 0.05, Side: BothSides}.Apply(m)
	// Domain pass keeps a-x,a-y,b-x,c-z; range pass keeps a-x (x best),
	// a-y (y best), c-z. Intersection:
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"a", "y", 0.85}, {"c", "z", 0.5},
	})
}

func TestYearConstraint(t *testing.T) {
	dSet := model.NewObjectSet(dblpPub)
	dSet.AddNew("a", map[string]string{"year": "2001"})
	dSet.AddNew("b", map[string]string{"year": "1998"})
	dSet.AddNew("c", nil) // no year
	rSet := model.NewObjectSet(acmPub)
	rSet.AddNew("x", map[string]string{"year": "2002"})
	rSet.AddNew("y", map[string]string{"year": "2002"})
	rSet.AddNew("z", map[string]string{"year": "2002"})

	m := NewSame(dblpPub, acmPub)
	m.Add("a", "x", 0.9) // diff 1: keep
	m.Add("b", "y", 0.9) // diff 4: drop
	m.Add("c", "z", 0.9) // missing year: keep (optional attribute)

	got := YearConstraint("year", 1, dSet, rSet).Apply(m)
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"c", "z", 0.9},
	})
}

func TestConstraintUnresolved(t *testing.T) {
	dSet := model.NewObjectSet(dblpPub)
	dSet.AddNew("a", nil)
	rSet := model.NewObjectSet(acmPub)
	m := NewSame(dblpPub, acmPub)
	m.Add("a", "x", 1) // x not in range set

	drop := Constraint{DomainSet: dSet, RangeSet: rSet,
		Pred: func(_, _ *model.Instance, _ float64) bool { return true }}
	if drop.Apply(m).Len() != 0 {
		t.Error("unresolved instances should drop by default")
	}
	keep := drop
	keep.KeepUnresolved = true
	if keep.Apply(m).Len() != 1 {
		t.Error("KeepUnresolved should keep the pair")
	}
}

func TestNotEqualIDs(t *testing.T) {
	m := NewSame(dblpPub, dblpPub)
	m.Add("a", "a", 1)
	m.Add("a", "b", 0.8)
	got := NotEqualIDs{}.Apply(m)
	wantMapping(t, got, []Correspondence{{"a", "b", 0.8}})
}

func TestChain(t *testing.T) {
	m := selectFixture()
	ch := Chain{Threshold{T: 0.6}, BestN{N: 1, Side: DomainSide}}
	got := ch.Apply(m)
	wantMapping(t, got, []Correspondence{
		{"a", "x", 0.9}, {"b", "x", 0.7},
	})
	if s := ch.String(); !strings.Contains(s, "Threshold") || !strings.Contains(s, "Best-1") {
		t.Errorf("Chain.String() = %q", s)
	}
}

func TestSelectionStrings(t *testing.T) {
	cases := []struct {
		sel  Selection
		want string
	}{
		{Threshold{T: 0.8}, "Threshold(0.80)"},
		{BestN{N: 3, Side: RangeSide}, "Best-3(range)"},
		{Best1Delta{D: 0.1, Side: DomainSide}, "Best-1+0.10(abs,domain)"},
		{Best1Delta{D: 0.1, Relative: true, Side: BothSides}, "Best-1+0.10(rel,both)"},
		{NotEqualIDs{}, "[domain.id]<>[range.id]"},
	}
	for _, tc := range cases {
		if got := tc.sel.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	if (Constraint{Name: "y"}).String() != "Constraint(y)" || (Constraint{}).String() != "Constraint" {
		t.Error("Constraint.String wrong")
	}
	if DomainSide.String() != "domain" || RangeSide.String() != "range" || BothSides.String() != "both" {
		t.Error("Side.String wrong")
	}
}

func TestSelectionSubsetProperty(t *testing.T) {
	// Every selection output is a subset of its input with unchanged sims.
	f := func(p []struct {
		D, R uint8
		S    float64
	}, thr float64, n uint8) bool {
		m := randomSame(p)
		sels := []Selection{
			Threshold{T: clampSim(thr)},
			BestN{N: int(n%4) + 1, Side: DomainSide},
			BestN{N: int(n%4) + 1, Side: RangeSide},
			BestN{N: int(n%4) + 1, Side: BothSides},
			Best1Delta{D: clampSim(thr) / 2, Side: DomainSide},
			Best1Delta{D: clampSim(thr) / 2, Relative: true, Side: RangeSide},
		}
		for _, sel := range sels {
			got := sel.Apply(m)
			if got.Len() > m.Len() {
				return false
			}
			ok := true
			got.Each(func(c Correspondence) {
				s, present := m.Sim(c.Domain, c.Range)
				if !present || s != c.Sim {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBestNCoversEveryDomainProperty(t *testing.T) {
	// Best-n(domain) retains at least one correspondence per domain object.
	f := func(p []struct {
		D, R uint8
		S    float64
	}) bool {
		m := randomSame(p)
		got := BestN{N: 1, Side: DomainSide}.Apply(m)
		for _, d := range m.DomainIDs() {
			if got.DomainCount(d) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
