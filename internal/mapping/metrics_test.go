package mapping

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
)

func TestOperatorMetricsRecorded(t *testing.T) {
	m1 := NewSame(dblpPub, acmPub)
	m2 := NewSame(acmPub, gsPub)
	for _, id := range []string{"x", "y", "z"} {
		m1.Add(model.ID("a"+id), model.ID("b"+id), 0.9)
		m2.Add(model.ID("b"+id), model.ID("c"+id), 0.8)
	}
	if _, err := ComposeWorkers(m1, m2, AvgCombiner, AggAvg, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeWorkers(AvgCombiner, 3, m1); err != nil {
		t.Fatal(err)
	}
	BestN{N: 1, Side: DomainSide, Workers: 3}.Apply(m1)

	var b strings.Builder
	obs.Default.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		`moma_mapping_op_seconds_count{op="compose",workers="3"}`,
		`moma_mapping_op_seconds_count{op="merge",workers="3"}`,
		`moma_mapping_op_seconds_count{op="select",workers="3"}`,
		`moma_mapping_op_rows_total{op="compose",workers="3"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %s", want)
		}
	}
}
