// Parallel-operator plumbing shared by Compose, Merge and the selections:
// per-chunk output column buffers and their deterministic chunk-order
// concatenation. The operator cores themselves live next to their
// sequential ancestors in compose.go, merge.go and select.go; the worker
// idiom they all build on is internal/par (see the parallel-operator
// section of moma.go).

package mapping

// colBuf holds one chunk's output columns while the chunk sizes are still
// data-dependent (filters drop rows, so they cannot be pre-sized).
type colBuf struct {
	dom, rng []uint32
	sim      []float64
}

// concatColumns concatenates per-chunk column buffers in chunk order —
// the merge-back that restores sequential row order. A single buffer
// passes through without copying.
func concatColumns(parts []colBuf) (dom, rng []uint32, sim []float64) {
	if len(parts) == 1 {
		return parts[0].dom, parts[0].rng, parts[0].sim
	}
	total := 0
	for i := range parts {
		total += len(parts[i].sim)
	}
	dom = make([]uint32, 0, total)
	rng = make([]uint32, 0, total)
	sim = make([]float64, 0, total)
	for i := range parts {
		dom = append(dom, parts[i].dom...)
		rng = append(rng, parts[i].rng...)
		sim = append(sim, parts[i].sim...)
	}
	return dom, rng, sim
}
