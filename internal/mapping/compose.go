package mapping

import (
	"cmp"
	"fmt"
	"strings"
	"time"

	"repro/internal/model"
	"repro/internal/par"
)

// PathAgg enumerates the aggregation functions g of §3.2 that fold the
// per-path similarities of all compose paths (a, c_i, b) into the final
// similarity of the output correspondence (a, b).
type PathAgg int

// Aggregation functions for compose. With the auxiliary values of Figure 5
// — n(a) the number of correspondences of a in map1, n(b) the number of
// correspondences of b in map2, and s(a,b) the sum of all compose-path
// similarities — the Relative family is:
//
//	RelativeLeft  = s(a,b) / n(a)
//	RelativeRight = s(a,b) / n(b)
//	Relative      = 2*s(a,b) / (n(a)+n(b))
//
// Relative prefers correspondences reached via multiple compose paths; the
// paper's neighborhood matcher uses it to reward venues sharing many
// matched publications (Figure 6). RelativeLeft is the asymmetric variant
// the evaluation uses when the right-hand association is incomplete
// (missing Google Scholar authors, §5.4.3).
const (
	AggAvg PathAgg = iota
	AggMin
	AggMax
	AggRelativeLeft
	AggRelativeRight
	AggRelative
)

// String names the aggregation as in the paper.
func (g PathAgg) String() string {
	switch g {
	case AggAvg:
		return "Average"
	case AggMin:
		return "Min"
	case AggMax:
		return "Max"
	case AggRelativeLeft:
		return "RelativeLeft"
	case AggRelativeRight:
		return "RelativeRight"
	case AggRelative:
		return "Relative"
	default:
		return fmt.Sprintf("PathAgg(%d)", int(g))
	}
}

// ParsePathAgg resolves the paper's textual names (case-insensitive).
func ParsePathAgg(name string) (PathAgg, error) {
	switch lower(name) {
	case "avg", "average":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "relativeleft":
		return AggRelativeLeft, nil
	case "relativeright":
		return AggRelativeRight, nil
	case "relative":
		return AggRelative, nil
	default:
		return 0, fmt.Errorf("mapping: unknown path aggregation %q", name)
	}
}

// ParseCombinerKind resolves the paper's textual names for the combination
// function f (case-insensitive). PreferMap requires the index to be set by
// the caller.
func ParseCombinerKind(name string) (CombinerKind, error) {
	switch lower(name) {
	case "avg", "average":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "weighted":
		return Weighted, nil
	case "prefer", "prefermap", "prefermap1":
		return Prefer, nil
	default:
		return 0, fmt.Errorf("mapping: unknown combiner %q", name)
	}
}

func lower(s string) string { return strings.ToLower(s) }

// PathCombine applies the per-path combination function f to the two
// similarities of one compose path; exported for alternative compose
// implementations (e.g. the store package's join-based compose).
func PathCombine(f Combiner, s1, s2 float64) float64 { return pathCombine(f, s1, s2) }

// pathCombine applies the per-path combination function f to the two
// similarities of one compose path. Per §3.2 the alternatives are the same
// as for merge; both values are always present on a path, so MissingAsZero
// is irrelevant, Weighted uses the first two weights, and Prefer picks the
// similarity of the preferred mapping (index 0 = left input).
func pathCombine(f Combiner, s1, s2 float64) float64 {
	switch f.Kind {
	case Min:
		if s1 < s2 {
			return s1
		}
		return s2
	case Max:
		if s1 > s2 {
			return s1
		}
		return s2
	case Avg:
		return (s1 + s2) / 2
	case Weighted:
		if len(f.Weights) >= 2 && f.Weights[0]+f.Weights[1] > 0 {
			return (f.Weights[0]*s1 + f.Weights[1]*s2) / (f.Weights[0] + f.Weights[1])
		}
		return (s1 + s2) / 2
	case Prefer:
		if f.PreferIndex == 1 {
			return s2
		}
		return s1
	default:
		return 0
	}
}

// Compose implements the composition operator of §3.2. Given map1 from
// LDSA to LDSC and map2 from LDSC to LDSB it derives a mapping from LDSA to
// LDSB. For each output pair (a, b) every shared middle object c_i yields a
// compose path whose two similarities are combined with f; the per-path
// values are then aggregated with g.
//
// The middle sources must agree. The output's semantic type is "same" when
// both inputs are same-mappings, otherwise the concatenation of the input
// types (a derived association).
//
// The implementation is a hash join on the middle ordinals, as the paper
// notes composition "can be computed very efficiently ... by joining the
// mapping tables" (§5.3): map1's rng column probes map2's byDomain posting
// lists, path aggregates accumulate under packed uint64 pair keys, and no
// ID string is touched unless the inputs use different dictionaries (the
// middle ordinals are then translated once per distinct middle object).
//
// Compose runs the join on a GOMAXPROCS-sized worker team; ComposeWorkers
// pins the count. The output is bit-identical at every team size (see the
// parallel-operator section of moma.go).
func Compose(map1, map2 *Mapping, f Combiner, g PathAgg) (*Mapping, error) {
	return ComposeWorkers(map1, map2, f, g, 0)
}

// composeAgg accumulates one output pair: sum, min, max and count of its
// compose-path similarities.
type composeAgg struct {
	sum, min, max float64
	paths         int
}

// composeEntry is one output pair after the join: its aggregate plus the
// (row, posting-position) sequence of its first compose path, which orders
// the output exactly as the sequential first-seen scan would.
type composeEntry struct {
	first uint64
	key   uint64
	agg   composeAgg
}

// ComposeWorkers is Compose with an explicit worker count (<= 0 means
// GOMAXPROCS). The join hash-partitions map1's rows by domain ordinal:
// every compose path of an output pair (a, b) starts at a map1 row with
// domain a, so each pair's aggregate folds on exactly one worker, in
// global row order — order-sensitive float sums come out bit-identical to
// the one-worker fold. Workers keep private slot arenas; the merge-back
// orders the per-worker results by first-path sequence.
func ComposeWorkers(map1, map2 *Mapping, f Combiner, g PathAgg, workers int) (out *Mapping, err error) {
	defer func(start time.Time) {
		rows := -1
		if err == nil {
			rows = out.Len()
		}
		observeOp("compose", par.Workers(workers), start, rows)
	}(time.Now())
	if map1.Range() != map2.Domain() {
		return nil, fmt.Errorf("mapping: Compose middle sources differ: %s vs %s", map1.Range(), map2.Domain())
	}
	switch g {
	case AggAvg, AggMin, AggMax, AggRelativeLeft, AggRelativeRight, AggRelative:
	default:
		return nil, fmt.Errorf("mapping: unknown path aggregation %d", int(g))
	}
	outType := map1.Type()
	if !(map1.IsSame() && map2.IsSame()) {
		outType = map1.Type() + "." + map2.Type()
	}

	sameDict := map1.dict == map2.dict
	by2, _ := map2.postings()
	var ids1 []model.ID
	if !sameDict {
		ids1 = map1.dict.All()
	}

	// Per-worker join arenas. The aggregates live in one flat slice indexed
	// through the slot map, so the join allocates per distinct output pair
	// only on slice growth, never per path. Sized for the common near-1:1
	// shape (output pairs ≈ input rows); worst cases just grow.
	type composeScratch struct {
		slot  map[uint64]int32
		keys  []uint64
		first []uint64
		aggs  []composeAgg
	}
	team := par.Team(len(map1.sim), workers)
	scratch := make([]composeScratch, team)
	par.RunTeam(team, func(w int) {
		sc := &scratch[w]
		hint := len(map1.sim)/team + 1
		sc.slot = make(map[uint64]int32, hint)
		sc.keys = make([]uint64, 0, hint)
		sc.first = make([]uint64, 0, hint)
		sc.aggs = make([]composeAgg, 0, hint)
		// xlat caches middle-ordinal translation (map1 dict -> map2 dict)
		// when the dictionaries differ; -1 marks a middle id map2 never
		// interned. Lookup is read-only, so workers translate independently.
		var xlat map[uint32]int64
		if !sameDict {
			xlat = make(map[uint32]int64)
		}
		for i := range map1.sim {
			d := map1.dom[i]
			if team > 1 && par.Partition(d, team) != w {
				continue
			}
			mid := map1.rng[i]
			if !sameDict {
				t, ok := xlat[mid]
				if !ok {
					if o2, ok2 := map2.dict.Lookup(ids1[mid]); ok2 {
						t = int64(o2)
					} else {
						t = -1
					}
					xlat[mid] = t
				}
				if t < 0 {
					continue
				}
				mid = uint32(t)
			}
			for j, i2 := range by2[mid] {
				ps := pathCombine(f, map1.sim[i], map2.sim[i2])
				key := ordKey(d, map2.rng[i2])
				k, ok := sc.slot[key]
				if !ok {
					k = int32(len(sc.aggs))
					sc.slot[key] = k
					sc.keys = append(sc.keys, key)
					sc.first = append(sc.first, uint64(i)<<32|uint64(j))
					sc.aggs = append(sc.aggs, composeAgg{min: ps, max: ps})
				}
				a := &sc.aggs[k]
				if ok {
					if ps < a.min {
						a.min = ps
					} else if ps > a.max {
						a.max = ps
					}
				}
				a.sum += ps
				a.paths++
			}
		}
	})

	// Merge-back: concatenate the per-worker arenas and restore the global
	// first-seen order by sorting on first-path sequence (unique per pair —
	// one path discovers one pair). A team of one is already in order.
	offs := make([]int, team+1)
	for w := range scratch {
		offs[w+1] = offs[w] + len(scratch[w].keys)
	}
	entries := make([]composeEntry, offs[team])
	par.RunTeam(team, func(w int) {
		sc := &scratch[w]
		base := offs[w]
		for k := range sc.keys {
			entries[base+k] = composeEntry{first: sc.first[k], key: sc.keys[k], agg: sc.aggs[k]}
		}
	})
	if team > 1 {
		par.SortFunc(entries, workers, func(a, b composeEntry) int {
			return cmp.Compare(a.first, b.first)
		})
	}

	// Only the Relative family reads the per-side fan-out counts; skip the
	// posting-list builds otherwise. (map2's lists already exist: the join
	// built them for by2.)
	var by1, rng2 map[uint32][]int32
	if g == AggRelativeLeft || g == AggRelative {
		by1, _ = map1.postings()
	}
	if g == AggRelativeRight || g == AggRelative {
		_, rng2 = map2.postings()
	}

	final := func(e *composeEntry) float64 {
		a := &e.agg
		d, r := uint32(e.key>>32), uint32(e.key)
		switch g {
		case AggAvg:
			return a.sum / float64(a.paths)
		case AggMin:
			return a.min
		case AggMax:
			return a.max
		case AggRelativeLeft:
			return a.sum / float64(len(by1[d]))
		case AggRelativeRight:
			return a.sum / float64(len(rng2[r]))
		default: // AggRelative; g was validated up front
			return 2 * a.sum / float64(len(by1[d])+len(rng2[r]))
		}
	}

	if !sameDict {
		// The range ordinals belong to map2's dictionary; interning their
		// ids into the output's (= map1's) dictionary mutates it, so the
		// mixed-dictionary finalize stays sequential.
		out := NewWithDict(map1.Domain(), map2.Range(), outType, map1.dict)
		ids2 := map2.dict.All()
		for j := range entries {
			if s := final(&entries[j]); s > 0 {
				out.AddOrd(uint32(entries[j].key>>32), out.dict.Ord(ids2[uint32(entries[j].key)]), s)
			}
		}
		return out, nil
	}

	// Shared-dictionary finalize: score entries per chunk into private
	// column buffers (the s > 0 filter makes chunk sizes data-dependent),
	// concatenate in chunk order, and bulk-load the output.
	plan := par.Split(len(entries), workers)
	bufs := make([]colBuf, plan.Chunks())
	plan.Run(func(c, lo, hi int) {
		b := &bufs[c]
		b.dom = make([]uint32, 0, hi-lo)
		b.rng = make([]uint32, 0, hi-lo)
		b.sim = make([]float64, 0, hi-lo)
		for j := lo; j < hi; j++ {
			if s := final(&entries[j]); s > 0 {
				b.dom = append(b.dom, uint32(entries[j].key>>32))
				b.rng = append(b.rng, uint32(entries[j].key))
				b.sim = append(b.sim, clampSim(s))
			}
		}
	})
	dom, rng, sim := concatColumns(bufs)
	return newFromColumns(map1.Domain(), map2.Range(), outType, map1.dict, dom, rng, sim), nil
}

// ComposeChain composes a sequence of mappings left to right with the same
// f and g at every step, e.g. for multi-hop compose paths via a hub source
// (Figure 8).
func ComposeChain(f Combiner, g PathAgg, maps ...*Mapping) (*Mapping, error) {
	return ComposeChainWorkers(f, g, 0, maps...)
}

// ComposeChainWorkers is ComposeChain with an explicit worker count per
// composition step (<= 0 means GOMAXPROCS).
func ComposeChainWorkers(f Combiner, g PathAgg, workers int, maps ...*Mapping) (*Mapping, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("mapping: ComposeChain needs at least one mapping")
	}
	cur := maps[0]
	for _, next := range maps[1:] {
		var err error
		cur, err = ComposeWorkers(cur, next, f, g, workers)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// NumPaths returns, for one output pair (a, b) of Compose(map1, map2), the
// number of compose paths — the paper reports this alongside similarity in
// its duplicate-author analysis (Table 9, "number of shared co-authors").
func NumPaths(map1, map2 *Mapping, a, b model.ID) int {
	bOrd, ok := map2.dict.Lookup(b)
	if !ok {
		return 0
	}
	by2, _ := map2.postings()
	n := 0
	map1.EachForDomain(a, func(c1 Correspondence) bool {
		if mid, ok := map2.dict.Lookup(c1.Range); ok {
			for _, i2 := range by2[mid] {
				if map2.rng[i2] == bOrd {
					n++
				}
			}
		}
		return true
	})
	return n
}
