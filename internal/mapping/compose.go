package mapping

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// PathAgg enumerates the aggregation functions g of §3.2 that fold the
// per-path similarities of all compose paths (a, c_i, b) into the final
// similarity of the output correspondence (a, b).
type PathAgg int

// Aggregation functions for compose. With the auxiliary values of Figure 5
// — n(a) the number of correspondences of a in map1, n(b) the number of
// correspondences of b in map2, and s(a,b) the sum of all compose-path
// similarities — the Relative family is:
//
//	RelativeLeft  = s(a,b) / n(a)
//	RelativeRight = s(a,b) / n(b)
//	Relative      = 2*s(a,b) / (n(a)+n(b))
//
// Relative prefers correspondences reached via multiple compose paths; the
// paper's neighborhood matcher uses it to reward venues sharing many
// matched publications (Figure 6). RelativeLeft is the asymmetric variant
// the evaluation uses when the right-hand association is incomplete
// (missing Google Scholar authors, §5.4.3).
const (
	AggAvg PathAgg = iota
	AggMin
	AggMax
	AggRelativeLeft
	AggRelativeRight
	AggRelative
)

// String names the aggregation as in the paper.
func (g PathAgg) String() string {
	switch g {
	case AggAvg:
		return "Average"
	case AggMin:
		return "Min"
	case AggMax:
		return "Max"
	case AggRelativeLeft:
		return "RelativeLeft"
	case AggRelativeRight:
		return "RelativeRight"
	case AggRelative:
		return "Relative"
	default:
		return fmt.Sprintf("PathAgg(%d)", int(g))
	}
}

// ParsePathAgg resolves the paper's textual names (case-insensitive).
func ParsePathAgg(name string) (PathAgg, error) {
	switch lower(name) {
	case "avg", "average":
		return AggAvg, nil
	case "min":
		return AggMin, nil
	case "max":
		return AggMax, nil
	case "relativeleft":
		return AggRelativeLeft, nil
	case "relativeright":
		return AggRelativeRight, nil
	case "relative":
		return AggRelative, nil
	default:
		return 0, fmt.Errorf("mapping: unknown path aggregation %q", name)
	}
}

// ParseCombinerKind resolves the paper's textual names for the combination
// function f (case-insensitive). PreferMap requires the index to be set by
// the caller.
func ParseCombinerKind(name string) (CombinerKind, error) {
	switch lower(name) {
	case "avg", "average":
		return Avg, nil
	case "min":
		return Min, nil
	case "max":
		return Max, nil
	case "weighted":
		return Weighted, nil
	case "prefer", "prefermap", "prefermap1":
		return Prefer, nil
	default:
		return 0, fmt.Errorf("mapping: unknown combiner %q", name)
	}
}

func lower(s string) string { return strings.ToLower(s) }

// PathCombine applies the per-path combination function f to the two
// similarities of one compose path; exported for alternative compose
// implementations (e.g. the store package's join-based compose).
func PathCombine(f Combiner, s1, s2 float64) float64 { return pathCombine(f, s1, s2) }

// pathCombine applies the per-path combination function f to the two
// similarities of one compose path. Per §3.2 the alternatives are the same
// as for merge; both values are always present on a path, so MissingAsZero
// is irrelevant, Weighted uses the first two weights, and Prefer picks the
// similarity of the preferred mapping (index 0 = left input).
func pathCombine(f Combiner, s1, s2 float64) float64 {
	switch f.Kind {
	case Min:
		if s1 < s2 {
			return s1
		}
		return s2
	case Max:
		if s1 > s2 {
			return s1
		}
		return s2
	case Avg:
		return (s1 + s2) / 2
	case Weighted:
		if len(f.Weights) >= 2 && f.Weights[0]+f.Weights[1] > 0 {
			return (f.Weights[0]*s1 + f.Weights[1]*s2) / (f.Weights[0] + f.Weights[1])
		}
		return (s1 + s2) / 2
	case Prefer:
		if f.PreferIndex == 1 {
			return s2
		}
		return s1
	default:
		return 0
	}
}

// Compose implements the composition operator of §3.2. Given map1 from
// LDSA to LDSC and map2 from LDSC to LDSB it derives a mapping from LDSA to
// LDSB. For each output pair (a, b) every shared middle object c_i yields a
// compose path whose two similarities are combined with f; the per-path
// values are then aggregated with g.
//
// The middle sources must agree. The output's semantic type is "same" when
// both inputs are same-mappings, otherwise the concatenation of the input
// types (a derived association).
//
// The implementation is a hash join on the middle ids, as the paper notes
// composition "can be computed very efficiently ... by joining the mapping
// tables" (§5.3).
func Compose(map1, map2 *Mapping, f Combiner, g PathAgg) (*Mapping, error) {
	if map1.Range() != map2.Domain() {
		return nil, fmt.Errorf("mapping: Compose middle sources differ: %s vs %s", map1.Range(), map2.Domain())
	}
	outType := map1.Type()
	if !(map1.IsSame() && map2.IsSame()) {
		outType = map1.Type() + "." + map2.Type()
	}
	out := New(map1.Domain(), map2.Range(), outType)

	// Accumulate per output pair: sum, min, max and count of path sims.
	type agg struct {
		sum, min, max float64
		paths         int
	}
	accum := make(map[pair]*agg)
	var order []pair
	for _, c1 := range map1.corrs {
		for _, i2 := range map2.byDomain[c1.Range] {
			c2 := map2.corrs[i2]
			ps := pathCombine(f, c1.Sim, c2.Sim)
			key := pair{c1.Domain, c2.Range}
			a, ok := accum[key]
			if !ok {
				a = &agg{min: ps, max: ps}
				accum[key] = a
				order = append(order, key)
			} else {
				if ps < a.min {
					a.min = ps
				}
				if ps > a.max {
					a.max = ps
				}
			}
			a.sum += ps
			a.paths++
		}
	}
	for _, key := range order {
		a := accum[key]
		var s float64
		switch g {
		case AggAvg:
			s = a.sum / float64(a.paths)
		case AggMin:
			s = a.min
		case AggMax:
			s = a.max
		case AggRelativeLeft:
			s = a.sum / float64(map1.DomainCount(key.d))
		case AggRelativeRight:
			s = a.sum / float64(map2.RangeCount(key.r))
		case AggRelative:
			s = 2 * a.sum / float64(map1.DomainCount(key.d)+map2.RangeCount(key.r))
		default:
			return nil, fmt.Errorf("mapping: unknown path aggregation %d", int(g))
		}
		if s > 0 {
			out.Add(key.d, key.r, s)
		}
	}
	return out, nil
}

// ComposeChain composes a sequence of mappings left to right with the same
// f and g at every step, e.g. for multi-hop compose paths via a hub source
// (Figure 8).
func ComposeChain(f Combiner, g PathAgg, maps ...*Mapping) (*Mapping, error) {
	if len(maps) == 0 {
		return nil, fmt.Errorf("mapping: ComposeChain needs at least one mapping")
	}
	cur := maps[0]
	for _, next := range maps[1:] {
		var err error
		cur, err = Compose(cur, next, f, g)
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// NumPaths returns, for one output pair (a, b) of Compose(map1, map2), the
// number of compose paths — the paper reports this alongside similarity in
// its duplicate-author analysis (Table 9, "number of shared co-authors").
func NumPaths(map1, map2 *Mapping, a, b model.ID) int {
	n := 0
	for _, c1 := range map1.ForDomain(a) {
		for _, i2 := range map2.byDomain[c1.Range] {
			if map2.corrs[i2].Range == b {
				n++
			}
		}
	}
	return n
}
