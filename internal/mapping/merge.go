package mapping

import (
	"cmp"
	"fmt"
	"time"

	"repro/internal/par"
)

// CombinerKind enumerates the similarity combination functions of §3.1.
type CombinerKind int

// Combination functions for merge (and for the per-path function f of
// compose).
const (
	Avg CombinerKind = iota
	Min
	Max
	Weighted
	Prefer
)

// String names the combiner kind as in the paper.
func (k CombinerKind) String() string {
	switch k {
	case Avg:
		return "Avg"
	case Min:
		return "Min"
	case Max:
		return "Max"
	case Weighted:
		return "Weighted"
	case Prefer:
		return "PreferMap"
	default:
		return fmt.Sprintf("CombinerKind(%d)", int(k))
	}
}

// Combiner configures the similarity combination function f of the merge
// and compose operators.
//
// MissingAsZero selects between the two treatments of correspondences
// missing from some input mappings (§3.1): the default (false) ignores
// missing values and combines only the available similarities, which lets
// incomplete mappings contribute matches without dragging scores down; true
// assumes similarity 0 for missing correspondences, improving precision.
// With kind Min and MissingAsZero the merge has intersection semantics
// (Min-0 in Figure 4).
type Combiner struct {
	Kind          CombinerKind
	MissingAsZero bool
	// Weights applies to Weighted; one weight per input mapping. Missing or
	// extra weights are an error at merge time.
	Weights []float64
	// PreferIndex selects the preferred input mapping for Prefer.
	PreferIndex int
}

// Common combiner shorthands matching the paper's notation.
var (
	AvgCombiner  = Combiner{Kind: Avg}
	Avg0Combiner = Combiner{Kind: Avg, MissingAsZero: true}
	MinCombiner  = Combiner{Kind: Min}
	Min0Combiner = Combiner{Kind: Min, MissingAsZero: true}
	MaxCombiner  = Combiner{Kind: Max}
)

// PreferCombiner returns the PreferMap_i combiner.
func PreferCombiner(i int) Combiner { return Combiner{Kind: Prefer, PreferIndex: i} }

// WeightedCombiner returns a weighted-average combiner with the given
// per-mapping weights.
func WeightedCombiner(weights ...float64) Combiner {
	return Combiner{Kind: Weighted, Weights: weights}
}

// combine folds the similarity values of one (a,b) pair across n input
// mappings. present[i] reports whether input i contained the pair; sims[i]
// is meaningful only when present[i]. It returns the combined similarity
// and whether the correspondence should appear in the output at all.
func (c Combiner) combine(sims []float64, present []bool) (float64, bool) {
	n := len(sims)
	switch c.Kind {
	case Max:
		best, any := 0.0, false
		for i := 0; i < n; i++ {
			if present[i] {
				if !any || sims[i] > best {
					best = sims[i]
				}
				any = true
			}
		}
		return best, any
	case Min:
		if c.MissingAsZero {
			// Intersection semantics: any missing input kills the pair.
			low, first := 0.0, true
			for i := 0; i < n; i++ {
				if !present[i] {
					return 0, false
				}
				if first || sims[i] < low {
					low = sims[i]
					first = false
				}
			}
			return low, !first
		}
		low, any := 0.0, false
		for i := 0; i < n; i++ {
			if present[i] {
				if !any || sims[i] < low {
					low = sims[i]
				}
				any = true
			}
		}
		return low, any
	case Avg:
		var sum float64
		cnt := 0
		for i := 0; i < n; i++ {
			if present[i] {
				sum += sims[i]
				cnt++
			}
		}
		if cnt == 0 {
			return 0, false
		}
		if c.MissingAsZero {
			return sum / float64(n), true
		}
		return sum / float64(cnt), true
	case Weighted:
		var sum, wsum float64
		for i := 0; i < n; i++ {
			w := c.Weights[i]
			if present[i] {
				sum += w * sims[i]
				wsum += w
			} else if c.MissingAsZero {
				wsum += w
			}
		}
		if wsum == 0 {
			return 0, false
		}
		return sum / wsum, true
	default:
		return 0, false
	}
}

// validateForMerge checks combiner configuration against the number of
// input mappings.
func (c Combiner) validateForMerge(n int) error {
	switch c.Kind {
	case Weighted:
		if len(c.Weights) != n {
			return fmt.Errorf("mapping: Weighted combiner has %d weights for %d mappings", len(c.Weights), n)
		}
		var pos bool
		for _, w := range c.Weights {
			if w < 0 {
				return fmt.Errorf("mapping: negative weight %v", w)
			}
			if w > 0 {
				pos = true
			}
		}
		if !pos {
			return fmt.Errorf("mapping: Weighted combiner needs at least one positive weight")
		}
	case Prefer:
		if c.PreferIndex < 0 || c.PreferIndex >= n {
			return fmt.Errorf("mapping: PreferIndex %d out of range for %d mappings", c.PreferIndex, n)
		}
	case Avg, Min, Max:
	default:
		return fmt.Errorf("mapping: unknown combiner kind %d", int(c.Kind))
	}
	return nil
}

// Merge implements the n-ary merge operator of §3.1: it unifies the
// correspondences of n mappings between the same pair of logical sources
// under the combination function f. Output correspondences whose combined
// similarity is 0 are dropped (as in Figure 4, where Min-0 keeps only pairs
// present in every input).
//
// The PreferMap function is handled per domain instance as described in the
// paper: the preferred mapping contributes all of its correspondences, and
// the other mappings contribute only correspondences for domain objects the
// preferred mapping does not cover.
//
// Merge runs the union fold on a GOMAXPROCS-sized worker team;
// MergeWorkers pins the count. The output is bit-identical at every team
// size (see the parallel-operator section of moma.go).
func Merge(f Combiner, maps ...*Mapping) (*Mapping, error) {
	return MergeWorkers(f, 0, maps...)
}

// MergeWorkers is Merge with an explicit worker count (<= 0 means
// GOMAXPROCS). Above mergeSortMin rows the union fold is sort-based: the
// packed pair keys of all inputs concatenate into one record array,
// par.SortFunc groups equal keys (records carry their (input, row)
// sequence, so the sort order is total and the equal-key runs line up in
// input order), and workers fold disjoint run ranges. Small merges keep
// the map accumulator, which wins while everything fits in cache; both
// folds combine the same per-input similarity vectors, so the output is
// identical either way.
func MergeWorkers(f Combiner, workers int, maps ...*Mapping) (out *Mapping, err error) {
	defer func(start time.Time) {
		rows := -1
		if err == nil {
			rows = out.Len()
		}
		observeOp("merge", par.Workers(workers), start, rows)
	}(time.Now())
	if len(maps) == 0 {
		return nil, fmt.Errorf("mapping: Merge needs at least one input mapping")
	}
	first := maps[0]
	for _, m := range maps[1:] {
		if m.Domain() != first.Domain() || m.Range() != first.Range() {
			return nil, fmt.Errorf("mapping: Merge inputs must connect the same sources, got %s->%s and %s->%s",
				first.Domain(), first.Range(), m.Domain(), m.Range())
		}
	}
	if !first.Domain().SameType(first.Range()) {
		return nil, fmt.Errorf("mapping: Merge requires mappings between sources of the same object type, got %s->%s",
			first.Domain(), first.Range())
	}
	if err := f.validateForMerge(len(maps)); err != nil {
		return nil, err
	}

	out = NewWithDict(first.Domain(), first.Range(), first.Type(), first.dict)

	// Every input's rows are keyed by ordinals of the OUTPUT dictionary
	// (= the first input's). Inputs sharing it — the common case — stream
	// their columns through untranslated; a foreign-dictionary input interns
	// its ids once per row.
	eachOut := func(m *Mapping, fn func(d, r uint32, s float64)) {
		if m.dict == out.dict {
			for i := range m.sim {
				fn(m.dom[i], m.rng[i], m.sim[i])
			}
			return
		}
		ids := m.dict.All()
		for i := range m.sim {
			fn(out.dict.Ord(ids[m.dom[i]]), out.dict.Ord(ids[m.rng[i]]), m.sim[i])
		}
	}

	if f.Kind == Prefer {
		pref := maps[f.PreferIndex]
		covered := make(map[uint32]bool, pref.Len())
		eachOut(pref, func(d, r uint32, s float64) {
			out.AddOrd(d, r, s)
			covered[d] = true
		})
		for i, m := range maps {
			if i == f.PreferIndex {
				continue
			}
			eachOut(m, func(d, r uint32, s float64) {
				if !covered[d] {
					out.AddMaxOrd(d, r, s)
				}
			})
		}
		return out, nil
	}

	total := 0
	for _, m := range maps {
		total += m.Len()
	}
	team := par.Team(total, workers)
	if team == 1 && total < mergeSortMin {
		// Collect the union of pairs, then fold each pair across the
		// inputs. Per-pair fold state lives in two flat arrays (n values
		// per pair) indexed through the map, so collection allocates on
		// slice growth only, never per pair.
		// Sized for the common high-overlap shape (union ≈ largest input);
		// low-overlap inputs just grow.
		hint := 0
		for _, m := range maps {
			if m.Len() > hint {
				hint = m.Len()
			}
		}
		n := len(maps)
		acc := make(map[uint64]int32, hint)
		order := make([]uint64, 0, hint)
		sims := make([]float64, 0, hint*n)
		present := make([]bool, 0, hint*n)
		for i, m := range maps {
			eachOut(m, func(d, r uint32, sim float64) {
				key := ordKey(d, r)
				k, ok := acc[key]
				if !ok {
					k = int32(len(order))
					acc[key] = k
					order = append(order, key)
					for t := 0; t < n; t++ {
						sims = append(sims, 0)
						present = append(present, false)
					}
				}
				sims[int(k)*n+i] = sim
				present[int(k)*n+i] = true
			})
		}
		for j, key := range order {
			v, keep := f.combine(sims[j*n:(j+1)*n], present[j*n:(j+1)*n])
			if keep && v > 0 {
				out.AddOrd(uint32(key>>32), uint32(key), v)
			}
		}
		return out, nil
	}
	return mergeSorted(f, out, maps, total, workers), nil
}

// mergeSortMin is the row count above which the sort-based union fold
// beats the map accumulator even on one worker: the map walk is a cache
// miss per row at these sizes, the sort is sequential scans.
const mergeSortMin = 1 << 17

// mergeRec is one input correspondence in the sort-based fold. seq packs
// (input index, row index); sorting by (key, seq) groups equal pairs with
// their per-input similarities in input order, and the first record of a
// run carries the pair's global first-seen sequence.
type mergeRec struct {
	key uint64
	seq uint64
	sim float64
}

// mergeOut is one surviving output pair and the sequence that positions it
// in first-seen order.
type mergeOut struct {
	seq uint64
	key uint64
	sim float64
}

// mergeSorted is the sort-based grouped union fold behind MergeWorkers.
// out is the (empty) result mapping, used for its dictionary and type.
func mergeSorted(f Combiner, out *Mapping, maps []*Mapping, total, workers int) *Mapping {
	n := len(maps)
	recs := make([]mergeRec, total)
	base := 0
	for i, m := range maps {
		if m.dict == out.dict {
			b, in := base, m
			par.Split(in.Len(), workers).Run(func(c, lo, hi int) {
				for r := lo; r < hi; r++ {
					recs[b+r] = mergeRec{ordKey(in.dom[r], in.rng[r]), uint64(i)<<32 | uint64(r), in.sim[r]}
				}
			})
		} else {
			// Foreign dictionary: interning mutates the output dictionary,
			// so this input translates sequentially.
			ids := m.dict.All()
			for r := range m.sim {
				recs[base+r] = mergeRec{ordKey(out.dict.Ord(ids[m.dom[r]]), out.dict.Ord(ids[m.rng[r]])), uint64(i)<<32 | uint64(r), m.sim[r]}
			}
		}
		base += m.Len()
	}
	par.SortFunc(recs, workers, func(a, b mergeRec) int {
		if c := cmp.Compare(a.key, b.key); c != 0 {
			return c
		}
		return cmp.Compare(a.seq, b.seq)
	})

	// Fold equal-key runs in parallel: each chunk owns the runs that START
	// inside it (a chunk's first partial run belongs to its predecessor,
	// and its last run may read past the boundary). Runs are at most n
	// records, one per input.
	plan := par.Split(len(recs), workers)
	outs := make([][]mergeOut, plan.Chunks())
	plan.Run(func(c, lo, hi int) {
		start := lo
		for start > 0 && start < hi && recs[start].key == recs[start-1].key {
			start++
		}
		sims := make([]float64, n)
		present := make([]bool, n)
		buf := make([]mergeOut, 0, hi-start)
		for t := start; t < hi; {
			e := t + 1
			for e < len(recs) && recs[e].key == recs[t].key {
				e++
			}
			for x := t; x < e; x++ {
				in := int(recs[x].seq >> 32)
				sims[in] = recs[x].sim
				present[in] = true
			}
			v, keep := f.combine(sims, present)
			if keep && v > 0 {
				buf = append(buf, mergeOut{seq: recs[t].seq, key: recs[t].key, sim: clampSim(v)})
			}
			for x := t; x < e; x++ {
				present[int(recs[x].seq>>32)] = false
			}
			t = e
		}
		outs[c] = buf
	})

	kept := 0
	for _, b := range outs {
		kept += len(b)
	}
	es := make([]mergeOut, 0, kept)
	for _, b := range outs {
		es = append(es, b...)
	}
	// Restore insertion order: pairs appear in the order their first
	// record arrived, exactly the first-seen order of the sequential scan.
	par.SortFunc(es, workers, func(a, b mergeOut) int { return cmp.Compare(a.seq, b.seq) })

	dom := make([]uint32, len(es))
	rng := make([]uint32, len(es))
	sim := make([]float64, len(es))
	par.Split(len(es), workers).Run(func(c, lo, hi int) {
		for t := lo; t < hi; t++ {
			dom[t] = uint32(es[t].key >> 32)
			rng[t] = uint32(es[t].key)
			sim[t] = es[t].sim
		}
	})
	return newFromColumns(out.Domain(), out.Range(), out.Type(), out.dict, dom, rng, sim)
}
