package mapping

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/model"
)

// parallelWorkerCounts are the team sizes the differential tests pin:
// sequential, an odd count that leaves ragged chunks, and the CI core
// count. Inputs are sized well above par's chunk floor so the counts
// above 1 really fan out instead of collapsing.
var parallelWorkerCounts = []int{1, 3, 8}

// TestDifferentialComposeWorkers pins ComposeWorkers to the map-based
// oracle at eps 0 — exact similarities AND insertion order — for every
// worker count. The random workload is large enough (several chunks of
// fan-out-heavy rows) that the hash-partitioned join, the first-seen sort
// and the chunked finalize all run multi-worker.
func TestDifferentialComposeWorkers(t *testing.T) {
	combiners := []Combiner{MinCombiner, MaxCombiner, AvgCombiner, WeightedCombiner(2, 1)}
	aggs := []PathAgg{AggAvg, AggMin, AggMax, AggRelativeLeft, AggRelativeRight, AggRelative}
	rnd := rand.New(rand.NewSource(21))
	m1 := NewSame(ldsA, ldsC)
	r1 := newRef(ldsA, ldsC, model.SameMappingType)
	applyOps(m1, r1, randomOps(rnd, 9000, 700, 500, "a", "c"))
	m2 := NewSame(ldsC, ldsB)
	r2 := newRef(ldsC, ldsB, model.SameMappingType)
	applyOps(m2, r2, randomOps(rnd, 9000, 500, 700, "c", "b"))
	for _, f := range combiners {
		for _, g := range aggs {
			want, err := refCompose(r1, r2, f, g)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parallelWorkerCounts {
				got, err := ComposeWorkers(m1, m2, f, g, w)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("compose f=%s g=%s workers=%d", f.Kind, g, w), got, want)
			}
		}
	}
}

// TestDifferentialMergeWorkers pins MergeWorkers the same way. At one
// worker the small-merge map accumulator runs; above it the sort-based
// grouped fold runs — the oracle comparison proves the two folds and
// every team size produce bit-identical mappings.
func TestDifferentialMergeWorkers(t *testing.T) {
	combiners := []Combiner{
		AvgCombiner, Avg0Combiner, MinCombiner, Min0Combiner, MaxCombiner,
		WeightedCombiner(1, 2, 3), {Kind: Weighted, Weights: []float64{1, 2, 3}, MissingAsZero: true},
	}
	rnd := rand.New(rand.NewSource(22))
	var ms []*Mapping
	var rs []*refMapping
	for k := 0; k < 3; k++ {
		m := NewSame(ldsA, ldsB)
		r := newRef(ldsA, ldsB, model.SameMappingType)
		applyOps(m, r, randomOps(rnd, 4000, 600, 600, "a", "b"))
		ms = append(ms, m)
		rs = append(rs, r)
	}
	for _, f := range combiners {
		want, err := refMerge(f, rs...)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parallelWorkerCounts {
			got, err := MergeWorkers(f, w, ms...)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("merge f=%s miss0=%v workers=%d", f.Kind, f.MissingAsZero, w), got, want)
		}
	}
}

// TestDifferentialSelectionWorkers pins the hash-partitioned per-group
// selections, including the BothSides intersection, at every worker count.
func TestDifferentialSelectionWorkers(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	m := NewSame(ldsA, ldsB)
	r := newRef(ldsA, ldsB, model.SameMappingType)
	applyOps(m, r, randomOps(rnd, 9000, 900, 900, "a", "b"))
	for _, side := range []Side{DomainSide, RangeSide, BothSides} {
		for _, n := range []int{1, 3} {
			want := refBestN(r, n, side)
			for _, w := range parallelWorkerCounts {
				got := BestN{N: n, Side: side, Workers: w}.Apply(m)
				requireIdentical(t, fmt.Sprintf("best-%d(%s) workers=%d", n, side, w), got, want)
			}
		}
		for _, rel := range []bool{false, true} {
			want := refBest1Delta(r, 0.1, rel, side)
			for _, w := range parallelWorkerCounts {
				got := Best1Delta{D: 0.1, Relative: rel, Side: side, Workers: w}.Apply(m)
				requireIdentical(t, fmt.Sprintf("best1delta(rel=%v,%s) workers=%d", rel, side, w), got, want)
			}
		}
	}
}

// TestDifferentialMixedDictWorkers repeats the mixed-dictionary operator
// checks multi-worker: the translation caches are per-worker, the
// finalize that interns into the output dictionary is sequential, and the
// result must still match the oracle exactly.
func TestDifferentialMixedDictWorkers(t *testing.T) {
	rnd := rand.New(rand.NewSource(24))
	ops1 := randomOps(rnd, 6000, 500, 400, "a", "c")
	ops2 := randomOps(rnd, 6000, 400, 500, "c", "b")

	priv1, priv2 := model.NewIDDict(), model.NewIDDict()
	m1p := NewWithDict(ldsA, ldsC, model.SameMappingType, priv1)
	m2p := NewWithDict(ldsC, ldsB, model.SameMappingType, priv2)
	r1 := newRef(ldsA, ldsC, model.SameMappingType)
	r2 := newRef(ldsC, ldsB, model.SameMappingType)
	applyOps(m1p, r1, ops1)
	applyOps(m2p, r2, ops2)

	want, err := refCompose(r1, r2, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkerCounts {
		got, err := ComposeWorkers(m1p, m2p, MinCombiner, AggRelative, w)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("mixed-dict compose workers=%d", w), got, want)
	}

	mShared := NewSame(ldsA, ldsC)
	rShared := newRef(ldsA, ldsC, model.SameMappingType)
	applyOps(mShared, rShared, randomOps(rnd, 6000, 500, 400, "a", "c"))
	wantM, err := refMerge(Avg0Combiner, rShared, r1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parallelWorkerCounts {
		gotM, err := MergeWorkers(Avg0Combiner, w, mShared, m1p)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, fmt.Sprintf("mixed-dict merge workers=%d", w), gotM, wantM)
	}
}

// TestOperatorsShareInputsConcurrently runs all three operators over the
// SAME input mappings from many goroutines at once — the serving pattern
// where one immutable mapping feeds concurrent pipelines. Under -race this
// pins that operator reads (including the lazy posting-list and pair-index
// builds) are safe to share.
func TestOperatorsShareInputsConcurrently(t *testing.T) {
	rnd := rand.New(rand.NewSource(25))
	m1 := NewSame(ldsA, ldsC)
	r1 := newRef(ldsA, ldsC, model.SameMappingType)
	applyOps(m1, r1, randomOps(rnd, 6000, 500, 400, "a", "c"))
	m2 := NewSame(ldsC, ldsB)
	r2 := newRef(ldsC, ldsB, model.SameMappingType)
	applyOps(m2, r2, randomOps(rnd, 6000, 400, 500, "c", "b"))

	wantCompose, err := refCompose(r1, r2, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	wantMerge, err := refMerge(AvgCombiner, r1, r1)
	if err != nil {
		t.Fatal(err)
	}
	wantSel := refBestN(r1, 2, DomainSide)

	var wg sync.WaitGroup
	errs := make([]error, 12)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := parallelWorkerCounts[g%len(parallelWorkerCounts)]
			switch g % 3 {
			case 0:
				got, err := ComposeWorkers(m1, m2, MinCombiner, AggRelative, w)
				if err != nil {
					errs[g] = err
					return
				}
				errs[g] = diffAgainstRef(got, wantCompose)
			case 1:
				got, err := MergeWorkers(AvgCombiner, w, m1, m1)
				if err != nil {
					errs[g] = err
					return
				}
				errs[g] = diffAgainstRef(got, wantMerge)
			default:
				errs[g] = diffAgainstRef(BestN{N: 2, Side: DomainSide, Workers: w}.Apply(m1), wantSel)
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

// diffAgainstRef is requireIdentical as an error, usable off the test
// goroutine.
func diffAgainstRef(got *Mapping, want *refMapping) error {
	if got.Domain() != want.domLDS || got.Range() != want.rngLDS || got.Type() != want.mtype {
		return fmt.Errorf("endpoints differ: %s->%s (%s) vs %s->%s (%s)",
			got.Domain(), got.Range(), got.Type(), want.domLDS, want.rngLDS, want.mtype)
	}
	gc := got.Correspondences()
	if len(gc) != len(want.corrs) {
		return fmt.Errorf("%d rows, reference has %d", len(gc), len(want.corrs))
	}
	for i := range gc {
		if gc[i] != want.corrs[i] {
			return fmt.Errorf("row %d = %+v, reference %+v", i, gc[i], want.corrs[i])
		}
	}
	return nil
}

// TestRemoveTouching pins the swap-remove fast path against the Filter
// rewrite it replaces: same surviving correspondence set (order is
// permuted by the swaps), consistent index and posting lists afterwards,
// and a mapping that keeps accepting writes.
func TestRemoveTouching(t *testing.T) {
	rnd := rand.New(rand.NewSource(26))
	m := NewSame(ldsA, ldsB)
	r := newRef(ldsA, ldsB, model.SameMappingType)
	// Small cardinalities: most ids appear on both sides of several rows,
	// and self-loop rows (a == b ids never collide here, but shared-range
	// rows do) stress the posting repair.
	applyOps(m, r, randomOps(rnd, 2000, 40, 40, "x", "x"))

	for _, victim := range []model.ID{"x7", "x23", "x7", "never-present"} {
		want := m.Filter(func(c Correspondence) bool { return c.Domain != victim && c.Range != victim })
		wantGone := m.Len() - want.Len()
		if gone := m.RemoveTouching(victim); gone != wantGone {
			t.Fatalf("RemoveTouching(%s) removed %d rows, Filter dropped %d", victim, gone, wantGone)
		}
		if m.Len() != want.Len() {
			t.Fatalf("after RemoveTouching(%s): %d rows, want %d", victim, m.Len(), want.Len())
		}
		if !m.Equal(want, 0) {
			t.Fatalf("after RemoveTouching(%s): surviving set differs from Filter result", victim)
		}
		if m.Touches(victim) {
			t.Fatalf("after RemoveTouching(%s): Touches still true", victim)
		}
		// Index and posting lists must agree with the columns row by row.
		for i := 0; i < m.Len(); i++ {
			c := m.At(i)
			if s, ok := m.Sim(c.Domain, c.Range); !ok || s != c.Sim {
				t.Fatalf("after RemoveTouching(%s): index lost row %d (%+v)", victim, i, c)
			}
		}
		seen := 0
		for _, id := range m.DomainIDs() {
			seen += m.DomainCount(id)
		}
		if seen != m.Len() {
			t.Fatalf("after RemoveTouching(%s): domain postings cover %d rows, want %d", victim, seen, m.Len())
		}
		seen = 0
		for _, id := range m.RangeIDs() {
			seen += m.RangeCount(id)
		}
		if seen != m.Len() {
			t.Fatalf("after RemoveTouching(%s): range postings cover %d rows, want %d", victim, seen, m.Len())
		}
	}

	// The mapping still accepts writes and keeps them consistent.
	m.Add("x7", "x23", 0.75)
	if s, ok := m.Sim("x7", "x23"); !ok || s != 0.75 {
		t.Fatalf("Add after RemoveTouching lost the row: %v %v", s, ok)
	}
	if got := m.DomainCount("x7"); got != 1 {
		t.Fatalf("DomainCount after re-add = %d, want 1", got)
	}
}

// TestBulkLoadedMappingBehavesLikeAdded pins that a bulk-loaded mapping
// (lazy index, lazy postings) is indistinguishable from one built row by
// row: point lookups, views, and subsequent writes.
func TestBulkLoadedMappingBehavesLikeAdded(t *testing.T) {
	rnd := rand.New(rand.NewSource(27))
	m := NewSame(ldsA, ldsB)
	r := newRef(ldsA, ldsB, model.SameMappingType)
	applyOps(m, r, randomOps(rnd, 3000, 200, 200, "a", "b"))

	// Clone bulk-loads; Inverse and filterRows bulk-load too.
	cp := m.Clone()
	requireIdentical(t, "bulk clone", cp, r)
	for i := 0; i < cp.Len(); i += 17 {
		c := cp.At(i)
		if s, ok := cp.Sim(c.Domain, c.Range); !ok || s != c.Sim {
			t.Fatalf("bulk clone: lazy index lost row %d (%+v)", i, c)
		}
	}
	// Dedup against the lazily built index: re-adding an existing pair
	// must replace, not append.
	c0 := cp.At(0)
	n := cp.Len()
	cp.Add(c0.Domain, c0.Range, 0.123)
	if cp.Len() != n {
		t.Fatalf("Add of existing pair grew bulk-loaded mapping to %d rows (was %d)", cp.Len(), n)
	}
	if s, _ := cp.Sim(c0.Domain, c0.Range); s != 0.123 {
		t.Fatalf("Add of existing pair: sim = %v, want 0.123", s)
	}
	requireIdentical(t, "inverse of inverse", m.Inverse().Inverse(), r)
}
