package mapping

// Map-based reference implementation of the mapping core, kept test-only.
//
// This is the pre-columnar Mapping (string-keyed hash structure plus the
// operators over it) preserved verbatim as a differential oracle: the
// columnar ordinal implementation must produce bit-identical results — eps
// 0, insertion order included — for the same operation sequences. The
// differential tests below drive both forms through randomized and
// hand-picked workloads and compare full correspondence tables.

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
)

type refPair struct{ d, r model.ID }

// refMapping is the old map-based Mapping.
type refMapping struct {
	domLDS model.LDS
	rngLDS model.LDS
	mtype  model.MappingType

	corrs    []Correspondence
	index    map[refPair]int
	byDomain map[model.ID][]int
	byRange  map[model.ID][]int
}

func newRef(domain, rng model.LDS, mtype model.MappingType) *refMapping {
	return &refMapping{
		domLDS:   domain,
		rngLDS:   rng,
		mtype:    mtype,
		index:    make(map[refPair]int),
		byDomain: make(map[model.ID][]int),
		byRange:  make(map[model.ID][]int),
	}
}

func (m *refMapping) add(a, b model.ID, s float64) {
	s = clampSim(s)
	key := refPair{a, b}
	if i, ok := m.index[key]; ok {
		m.corrs[i].Sim = s
		return
	}
	i := len(m.corrs)
	m.corrs = append(m.corrs, Correspondence{Domain: a, Range: b, Sim: s})
	m.index[key] = i
	m.byDomain[a] = append(m.byDomain[a], i)
	m.byRange[b] = append(m.byRange[b], i)
}

func (m *refMapping) addMax(a, b model.ID, s float64) {
	s = clampSim(s)
	if i, ok := m.index[refPair{a, b}]; ok {
		if s > m.corrs[i].Sim {
			m.corrs[i].Sim = s
		}
		return
	}
	m.add(a, b, s)
}

func (m *refMapping) domainCount(a model.ID) int { return len(m.byDomain[a]) }
func (m *refMapping) rangeCount(b model.ID) int  { return len(m.byRange[b]) }

func (m *refMapping) inverse() *refMapping {
	inv := newRef(m.rngLDS, m.domLDS, m.mtype)
	for _, c := range m.corrs {
		inv.add(c.Range, c.Domain, c.Sim)
	}
	return inv
}

func (m *refMapping) filter(keep func(Correspondence) bool) *refMapping {
	out := newRef(m.domLDS, m.rngLDS, m.mtype)
	for _, c := range m.corrs {
		if keep(c) {
			out.add(c.Domain, c.Range, c.Sim)
		}
	}
	return out
}

func (m *refMapping) cardinality() model.Cardinality {
	if len(m.corrs) == 0 {
		return model.CardUnknown
	}
	maxDom, maxRng := 0, 0
	for _, idxs := range m.byDomain {
		if len(idxs) > maxDom {
			maxDom = len(idxs)
		}
	}
	for _, idxs := range m.byRange {
		if len(idxs) > maxRng {
			maxRng = len(idxs)
		}
	}
	switch {
	case maxDom <= 1 && maxRng <= 1:
		return model.CardOneToOne
	case maxRng <= 1:
		return model.CardOneToMany
	case maxDom <= 1:
		return model.CardManyToOne
	default:
		return model.CardManyToMany
	}
}

// refCompose is the old struct-based Compose.
func refCompose(map1, map2 *refMapping, f Combiner, g PathAgg) (*refMapping, error) {
	if map1.rngLDS != map2.domLDS {
		return nil, fmt.Errorf("ref: middle sources differ")
	}
	outType := map1.mtype
	if !(map1.mtype == model.SameMappingType && map2.mtype == model.SameMappingType) {
		outType = map1.mtype + "." + map2.mtype
	}
	out := newRef(map1.domLDS, map2.rngLDS, outType)
	type agg struct {
		sum, min, max float64
		paths         int
	}
	accum := make(map[refPair]*agg)
	var order []refPair
	for _, c1 := range map1.corrs {
		for _, i2 := range map2.byDomain[c1.Range] {
			c2 := map2.corrs[i2]
			ps := pathCombine(f, c1.Sim, c2.Sim)
			key := refPair{c1.Domain, c2.Range}
			a, ok := accum[key]
			if !ok {
				a = &agg{min: ps, max: ps}
				accum[key] = a
				order = append(order, key)
			} else {
				if ps < a.min {
					a.min = ps
				}
				if ps > a.max {
					a.max = ps
				}
			}
			a.sum += ps
			a.paths++
		}
	}
	for _, key := range order {
		a := accum[key]
		var s float64
		switch g {
		case AggAvg:
			s = a.sum / float64(a.paths)
		case AggMin:
			s = a.min
		case AggMax:
			s = a.max
		case AggRelativeLeft:
			s = a.sum / float64(map1.domainCount(key.d))
		case AggRelativeRight:
			s = a.sum / float64(map2.rangeCount(key.r))
		case AggRelative:
			s = 2 * a.sum / float64(map1.domainCount(key.d)+map2.rangeCount(key.r))
		default:
			return nil, fmt.Errorf("ref: unknown path aggregation %d", int(g))
		}
		if s > 0 {
			out.add(key.d, key.r, s)
		}
	}
	return out, nil
}

// refMerge is the old struct-based Merge (validation elided: the tests only
// feed valid inputs).
func refMerge(f Combiner, maps ...*refMapping) (*refMapping, error) {
	first := maps[0]
	if err := f.validateForMerge(len(maps)); err != nil {
		return nil, err
	}
	out := newRef(first.domLDS, first.rngLDS, first.mtype)
	if f.Kind == Prefer {
		pref := maps[f.PreferIndex]
		covered := make(map[model.ID]bool, len(pref.corrs))
		for _, c := range pref.corrs {
			out.add(c.Domain, c.Range, c.Sim)
			covered[c.Domain] = true
		}
		for i, m := range maps {
			if i == f.PreferIndex {
				continue
			}
			for _, c := range m.corrs {
				if !covered[c.Domain] {
					out.addMax(c.Domain, c.Range, c.Sim)
				}
			}
		}
		return out, nil
	}
	type slot struct {
		sims    []float64
		present []bool
	}
	acc := make(map[refPair]*slot)
	var order []refPair
	for i, m := range maps {
		for _, c := range m.corrs {
			key := refPair{c.Domain, c.Range}
			s, ok := acc[key]
			if !ok {
				s = &slot{sims: make([]float64, len(maps)), present: make([]bool, len(maps))}
				acc[key] = s
				order = append(order, key)
			}
			s.sims[i] = c.Sim
			s.present[i] = true
		}
	}
	for _, key := range order {
		s := acc[key]
		v, keep := f.combine(s.sims, s.present)
		if keep && v > 0 {
			out.add(key.d, key.r, v)
		}
	}
	return out, nil
}

// refSelectPerGroup is the old struct-based selection grouping.
func refSelectPerGroup(m *refMapping, byDomain bool, cut func([]Correspondence) []Correspondence) *refMapping {
	groups := make(map[model.ID][]Correspondence)
	var order []model.ID
	for _, c := range m.corrs {
		key := c.Domain
		if !byDomain {
			key = c.Range
		}
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], c)
	}
	out := newRef(m.domLDS, m.rngLDS, m.mtype)
	for _, key := range order {
		cs := groups[key]
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Sim != cs[j].Sim {
				return cs[i].Sim > cs[j].Sim
			}
			if byDomain {
				return cs[i].Range < cs[j].Range
			}
			return cs[i].Domain < cs[j].Domain
		})
		for _, c := range cut(cs) {
			out.add(c.Domain, c.Range, c.Sim)
		}
	}
	return out
}

func refBestN(m *refMapping, n int, side Side) *refMapping {
	cut := func(cs []Correspondence) []Correspondence {
		if len(cs) > n {
			return cs[:n]
		}
		return cs
	}
	switch side {
	case DomainSide:
		return refSelectPerGroup(m, true, cut)
	case RangeSide:
		return refSelectPerGroup(m, false, cut)
	default: // BothSides
		dom := refBestN(m, n, DomainSide)
		rng := refBestN(m, n, RangeSide)
		return dom.filter(func(c Correspondence) bool {
			_, ok := rng.index[refPair{c.Domain, c.Range}]
			return ok
		})
	}
}

func refBest1Delta(m *refMapping, d float64, rel bool, side Side) *refMapping {
	cut := func(cs []Correspondence) []Correspondence {
		if len(cs) == 0 {
			return cs
		}
		best := cs[0].Sim
		limit := best - d
		if rel {
			limit = best * (1 - d)
		}
		keep := cs[:0:0]
		for _, c := range cs {
			if c.Sim >= limit {
				keep = append(keep, c)
			}
		}
		return keep
	}
	switch side {
	case DomainSide:
		return refSelectPerGroup(m, true, cut)
	case RangeSide:
		return refSelectPerGroup(m, false, cut)
	default:
		dom := refBest1Delta(m, d, rel, DomainSide)
		rng := refBest1Delta(m, d, rel, RangeSide)
		return dom.filter(func(c Correspondence) bool {
			_, ok := rng.index[refPair{c.Domain, c.Range}]
			return ok
		})
	}
}

// --- differential harness ------------------------------------------------

// op is one Add or AddMax applied to both forms.
type op struct {
	max  bool
	a, b model.ID
	s    float64
}

func applyOps(m *Mapping, r *refMapping, ops []op) {
	for _, o := range ops {
		if o.max {
			m.AddMax(o.a, o.b, o.s)
			r.addMax(o.a, o.b, o.s)
		} else {
			m.Add(o.a, o.b, o.s)
			r.add(o.a, o.b, o.s)
		}
	}
}

// requireIdentical fails unless the columnar mapping's table is
// bit-identical to the reference — same rows, same similarities (exact
// float equality), same insertion order, same endpoints.
func requireIdentical(t *testing.T, label string, got *Mapping, want *refMapping) {
	t.Helper()
	if got.Domain() != want.domLDS || got.Range() != want.rngLDS || got.Type() != want.mtype {
		t.Fatalf("%s: endpoints differ: %s->%s (%s) vs %s->%s (%s)",
			label, got.Domain(), got.Range(), got.Type(), want.domLDS, want.rngLDS, want.mtype)
	}
	gc := got.Correspondences()
	if len(gc) != len(want.corrs) {
		t.Fatalf("%s: %d rows, reference has %d", label, len(gc), len(want.corrs))
	}
	for i := range gc {
		if gc[i] != want.corrs[i] {
			t.Fatalf("%s: row %d = %+v, reference %+v", label, i, gc[i], want.corrs[i])
		}
	}
}

// randomOps generates a deterministic random workload with controlled
// duplicate pressure.
func randomOps(rnd *rand.Rand, n, domCard, rngCard int, domPrefix, rngPrefix string) []op {
	ops := make([]op, n)
	for i := range ops {
		ops[i] = op{
			max: rnd.Intn(2) == 0,
			a:   model.ID(fmt.Sprintf("%s%d", domPrefix, rnd.Intn(domCard))),
			b:   model.ID(fmt.Sprintf("%s%d", rngPrefix, rnd.Intn(rngCard))),
			s:   float64(rnd.Intn(1000)) / 999,
		}
	}
	return ops
}

var (
	ldsA = model.LDS{Source: "A", Type: model.Publication}
	ldsB = model.LDS{Source: "B", Type: model.Publication}
	ldsC = model.LDS{Source: "C", Type: model.Publication}
)

func TestDifferentialBuildAndViews(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	m := NewSame(ldsA, ldsB)
	r := newRef(ldsA, ldsB, model.SameMappingType)
	applyOps(m, r, randomOps(rnd, 500, 40, 40, "a", "b"))
	requireIdentical(t, "build", m, r)

	// Point lookups and per-object views.
	for i := 0; i < 40; i++ {
		a := model.ID(fmt.Sprintf("a%d", i))
		b := model.ID(fmt.Sprintf("b%d", i))
		if got, want := m.DomainCount(a), r.domainCount(a); got != want {
			t.Fatalf("DomainCount(%s) = %d, reference %d", a, got, want)
		}
		if got, want := m.RangeCount(b), r.rangeCount(b); got != want {
			t.Fatalf("RangeCount(%s) = %d, reference %d", b, got, want)
		}
		var want []Correspondence
		for _, i := range r.byDomain[a] {
			want = append(want, r.corrs[i])
		}
		got := m.ForDomain(a)
		if len(got) != len(want) {
			t.Fatalf("ForDomain(%s) = %d rows, reference %d", a, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("ForDomain(%s)[%d] = %+v, reference %+v", a, j, got[j], want[j])
			}
		}
	}
	if got, want := m.Cardinality(), r.cardinality(); got != want {
		t.Fatalf("Cardinality = %v, reference %v", got, want)
	}

	// Inverse.
	requireIdentical(t, "inverse", m.Inverse(), r.inverse())
	// Filter.
	keep := func(c Correspondence) bool { return c.Sim >= 0.5 }
	requireIdentical(t, "filter", m.Filter(keep), r.filter(keep))
}

func TestDifferentialCompose(t *testing.T) {
	combiners := []Combiner{MinCombiner, MaxCombiner, AvgCombiner, WeightedCombiner(2, 1), PreferCombiner(1)}
	aggs := []PathAgg{AggAvg, AggMin, AggMax, AggRelativeLeft, AggRelativeRight, AggRelative}
	rnd := rand.New(rand.NewSource(2))
	for trial := 0; trial < 3; trial++ {
		m1 := NewSame(ldsA, ldsC)
		r1 := newRef(ldsA, ldsC, model.SameMappingType)
		applyOps(m1, r1, randomOps(rnd, 400, 30, 25, "a", "c"))
		m2 := NewSame(ldsC, ldsB)
		r2 := newRef(ldsC, ldsB, model.SameMappingType)
		applyOps(m2, r2, randomOps(rnd, 400, 25, 30, "c", "b"))
		for _, f := range combiners {
			for _, g := range aggs {
				got, err := Compose(m1, m2, f, g)
				if err != nil {
					t.Fatal(err)
				}
				want, err := refCompose(r1, r2, f, g)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, fmt.Sprintf("compose f=%s g=%s", f.Kind, g), got, want)
			}
		}
	}
}

func TestDifferentialMerge(t *testing.T) {
	combiners := []Combiner{
		AvgCombiner, Avg0Combiner, MinCombiner, Min0Combiner, MaxCombiner,
		WeightedCombiner(1, 2, 3), {Kind: Weighted, Weights: []float64{1, 2, 3}, MissingAsZero: true},
		PreferCombiner(0), PreferCombiner(2),
	}
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3; trial++ {
		var ms []*Mapping
		var rs []*refMapping
		for k := 0; k < 3; k++ {
			m := NewSame(ldsA, ldsB)
			r := newRef(ldsA, ldsB, model.SameMappingType)
			applyOps(m, r, randomOps(rnd, 300, 30, 30, "a", "b"))
			ms = append(ms, m)
			rs = append(rs, r)
		}
		for _, f := range combiners {
			got, err := Merge(f, ms...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := refMerge(f, rs...)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("merge f=%s miss0=%v", f.Kind, f.MissingAsZero), got, want)
		}
	}
}

func TestDifferentialSelection(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	m := NewSame(ldsA, ldsB)
	r := newRef(ldsA, ldsB, model.SameMappingType)
	applyOps(m, r, randomOps(rnd, 800, 50, 50, "a", "b"))
	sides := []Side{DomainSide, RangeSide, BothSides}
	for _, side := range sides {
		for _, n := range []int{1, 2, 5} {
			got := BestN{N: n, Side: side}.Apply(m)
			want := refBestN(r, n, side)
			requireIdentical(t, fmt.Sprintf("best-%d(%s)", n, side), got, want)
		}
		for _, rel := range []bool{false, true} {
			got := Best1Delta{D: 0.1, Relative: rel, Side: side}.Apply(m)
			want := refBest1Delta(r, 0.1, rel, side)
			requireIdentical(t, fmt.Sprintf("best1delta(rel=%v,%s)", rel, side), got, want)
		}
	}
	// Threshold is a plain filter; pin it too.
	got := Threshold{T: 0.6}.Apply(m)
	want := r.filter(func(c Correspondence) bool { return c.Sim >= 0.6 })
	requireIdentical(t, "threshold", got, want)
}

func TestDifferentialComposeChainAndSorted(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	m1, r1 := NewSame(ldsA, ldsC), newRef(ldsA, ldsC, model.SameMappingType)
	applyOps(m1, r1, randomOps(rnd, 200, 20, 15, "a", "c"))
	m2, r2 := NewSame(ldsC, ldsB), newRef(ldsC, ldsB, model.SameMappingType)
	applyOps(m2, r2, randomOps(rnd, 200, 15, 20, "c", "b"))
	m3, r3 := NewSame(ldsB, ldsA), newRef(ldsB, ldsA, model.SameMappingType)
	applyOps(m3, r3, randomOps(rnd, 200, 20, 20, "b", "a"))

	got, err := ComposeChain(MinCombiner, AggRelative, m1, m2, m3)
	if err != nil {
		t.Fatal(err)
	}
	w12, err := refCompose(r1, r2, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refCompose(w12, r3, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "compose-chain", got, want)

	// Sorted must order by ID strings, not ordinals.
	sortedGot := got.Sorted()
	sortedWant := append([]Correspondence(nil), want.corrs...)
	sort.Slice(sortedWant, func(i, j int) bool {
		if sortedWant[i].Domain != sortedWant[j].Domain {
			return sortedWant[i].Domain < sortedWant[j].Domain
		}
		if sortedWant[i].Sim != sortedWant[j].Sim {
			return sortedWant[i].Sim > sortedWant[j].Sim
		}
		return sortedWant[i].Range < sortedWant[j].Range
	})
	for i := range sortedGot {
		if sortedGot[i] != sortedWant[i] {
			t.Fatalf("Sorted[%d] = %+v, reference %+v", i, sortedGot[i], sortedWant[i])
		}
	}
}

// TestDifferentialMixedDict repeats the operator checks with inputs over
// different dictionaries: results must be identical to the shared-dict (and
// therefore to the reference) outcome.
func TestDifferentialMixedDict(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	ops1 := randomOps(rnd, 300, 25, 20, "a", "c")
	ops2 := randomOps(rnd, 300, 20, 25, "c", "b")

	priv1, priv2 := model.NewIDDict(), model.NewIDDict()
	m1p := NewWithDict(ldsA, ldsC, model.SameMappingType, priv1)
	m2p := NewWithDict(ldsC, ldsB, model.SameMappingType, priv2)
	r1 := newRef(ldsA, ldsC, model.SameMappingType)
	r2 := newRef(ldsC, ldsB, model.SameMappingType)
	applyOps(m1p, r1, ops1)
	applyOps(m2p, r2, ops2)

	got, err := Compose(m1p, m2p, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refCompose(r1, r2, MinCombiner, AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "mixed-dict compose", got, want)

	// Merge with one private-dict input among shared-dict ones.
	mShared := NewSame(ldsA, ldsC)
	rShared := newRef(ldsA, ldsC, model.SameMappingType)
	applyOps(mShared, rShared, randomOps(rnd, 300, 25, 20, "a", "c"))
	gotM, err := Merge(Avg0Combiner, mShared, m1p)
	if err != nil {
		t.Fatal(err)
	}
	wantM, err := refMerge(Avg0Combiner, rShared, r1)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "mixed-dict merge", gotM, wantM)
}
