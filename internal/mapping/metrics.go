package mapping

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// Operator metrics: one histogram series per (op, workers) pair timing
// whole operator invocations, plus a rows counter per op counting output
// correspondences. Everything is recorded exactly once per operator call —
// never inside the per-row loops, which carry the package's zero-alloc and
// no-atomic-traffic budgets. The workers label is the resolved worker cap
// (par.Workers of the caller's request), the knob an operator run was
// configured with; the actual team size additionally shrinks with the
// input and would fragment the series per input size.
//
// Series handles are cached in a sync.Map keyed by (op, workers): label
// strings are built and the registry mutex taken only the first time a
// pair is seen, so steady-state recording is one lock-free map load plus
// the obs atomics.
var opMetricsCache sync.Map // key opMetricsKey -> *opSeries

type opMetricsKey struct {
	op      string
	workers int
}

type opSeries struct {
	seconds *obs.Histogram
	rows    *obs.Counter
}

func opSeriesFor(op string, workers int) *opSeries {
	key := opMetricsKey{op, workers}
	if s, ok := opMetricsCache.Load(key); ok {
		return s.(*opSeries)
	}
	labels := `op="` + op + `",workers="` + strconv.Itoa(workers) + `"`
	s := &opSeries{
		seconds: obs.Default.Histogram("moma_mapping_op_seconds",
			"Wall time of one mapping-operator invocation.", nil, labels),
		rows: obs.Default.Counter("moma_mapping_op_rows_total",
			"Output correspondences produced by mapping operators.", labels),
	}
	actual, _ := opMetricsCache.LoadOrStore(key, s)
	return actual.(*opSeries)
}

// observeOp records one finished operator invocation. Callers pass the
// resolved worker cap and the output row count; rows < 0 (operator error)
// records the duration only.
func observeOp(op string, workers int, start time.Time, rows int) {
	s := opSeriesFor(op, workers)
	s.seconds.Observe(time.Since(start).Seconds())
	if rows > 0 {
		s.rows.Add(uint64(rows))
	}
}
