package mapping

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// figure4Maps builds the two input mappings of Figure 4.
func figure4Maps() (*Mapping, *Mapping) {
	map1 := NewSame(dblpPub, acmPub)
	map1.Add("a1", "b1", 1)
	map1.Add("a2", "b2", 0.8)

	map2 := NewSame(dblpPub, acmPub)
	map2.Add("a1", "b1", 0.6)
	map2.Add("a1", "b5", 1)
	map2.Add("a3", "b3", 0.9)
	return map1, map2
}

// wantMapping asserts that got contains exactly the given correspondences.
func wantMapping(t *testing.T, got *Mapping, want []Correspondence) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("got %d correspondences %v, want %d", got.Len(), got.Sorted(), len(want))
	}
	for _, w := range want {
		s, ok := got.Sim(w.Domain, w.Range)
		if !ok {
			t.Errorf("missing correspondence (%s,%s)", w.Domain, w.Range)
			continue
		}
		if math.Abs(s-w.Sim) > 1e-9 {
			t.Errorf("sim(%s,%s) = %v, want %v", w.Domain, w.Range, s, w.Sim)
		}
	}
}

func TestFigure4MergeMin0(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(Min0Combiner, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	wantMapping(t, got, []Correspondence{{"a1", "b1", 0.6}})
}

func TestFigure4MergeAvg(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(AvgCombiner, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.8},
		{"a2", "b2", 0.8},
		{"a1", "b5", 1},
		{"a3", "b3", 0.9},
	})
}

func TestFigure4MergeAvg0(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(Avg0Combiner, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.8},
		{"a2", "b2", 0.4},
		{"a1", "b5", 0.5},
		{"a3", "b3", 0.45},
	})
}

func TestFigure4MergePreferMap1(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(PreferCombiner(0), map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	// All of map1 plus only (a3,b3) from map2: a1 and a2 are covered, so
	// (a1,b1,0.6) and (a1,b5,1) from map2 are excluded.
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 1},
		{"a2", "b2", 0.8},
		{"a3", "b3", 0.9},
	})
}

func TestMergePreferMap2(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(PreferCombiner(1), map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	// All of map2; a1 and a3 covered; a2 uncovered so (a2,b2) joins.
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.6},
		{"a1", "b5", 1},
		{"a3", "b3", 0.9},
		{"a2", "b2", 0.8},
	})
}

func TestMergeMax(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(MaxCombiner, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 1},
		{"a2", "b2", 0.8},
		{"a1", "b5", 1},
		{"a3", "b3", 0.9},
	})
}

func TestMergeMinIgnoreMissing(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(MinCombiner, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	// Min over available values only: singletons keep their value.
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.6},
		{"a2", "b2", 0.8},
		{"a1", "b5", 1},
		{"a3", "b3", 0.9},
	})
}

func TestMergeWeighted(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(WeightedCombiner(3, 1), map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	// (a1,b1): (3*1 + 1*0.6)/4 = 0.9; singletons renormalize to their value.
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.9},
		{"a2", "b2", 0.8},
		{"a1", "b5", 1},
		{"a3", "b3", 0.9},
	})
}

func TestMergeWeightedMissingAsZero(t *testing.T) {
	map1, map2 := figure4Maps()
	got, err := Merge(Combiner{Kind: Weighted, Weights: []float64{3, 1}, MissingAsZero: true}, map1, map2)
	if err != nil {
		t.Fatal(err)
	}
	// (a2,b2): (3*0.8 + 0)/(3+1) = 0.6; (a1,b5): (0 + 1*1)/4 = 0.25;
	// (a3,b3): (0 + 1*0.9)/4 = 0.225.
	wantMapping(t, got, []Correspondence{
		{"a1", "b1", 0.9},
		{"a2", "b2", 0.6},
		{"a1", "b5", 0.25},
		{"a3", "b3", 0.225},
	})
}

func TestMergeErrors(t *testing.T) {
	if _, err := Merge(AvgCombiner); err == nil {
		t.Error("zero mappings should fail")
	}
	map1, _ := figure4Maps()
	other := NewSame(dblpPub, gsPub)
	if _, err := Merge(AvgCombiner, map1, other); err == nil {
		t.Error("mismatched endpoints should fail")
	}
	asso := New(dblpVen, dblpPub, "VenuePub")
	if _, err := Merge(AvgCombiner, asso); err == nil {
		t.Error("merge of association mapping (different object types) should fail")
	}
	if _, err := Merge(WeightedCombiner(1), map1, map1.Clone()); err == nil {
		t.Error("wrong weight count should fail")
	}
	if _, err := Merge(WeightedCombiner(-1, 1), map1, map1.Clone()); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := Merge(WeightedCombiner(0, 0), map1, map1.Clone()); err == nil {
		t.Error("all-zero weights should fail")
	}
	if _, err := Merge(PreferCombiner(5), map1, map1.Clone()); err == nil {
		t.Error("out-of-range prefer index should fail")
	}
	if _, err := Merge(Combiner{Kind: CombinerKind(99)}, map1); err == nil {
		t.Error("unknown combiner kind should fail")
	}
}

func TestMergeSingleInputIdentity(t *testing.T) {
	map1, _ := figure4Maps()
	for _, f := range []Combiner{AvgCombiner, MinCombiner, MaxCombiner, Avg0Combiner, Min0Combiner} {
		got, err := Merge(f, map1)
		if err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !got.Equal(map1, 1e-12) {
			t.Errorf("Merge(%v, m) != m", f)
		}
	}
}

// randomSame builds a random same-mapping for property tests.
func randomSame(pairs []struct {
	D, R uint8
	S    float64
}) *Mapping {
	m := NewSame(dblpPub, acmPub)
	for _, p := range pairs {
		s := math.Abs(p.S)
		s = s / (1 + s)
		m.Add(model.ID(rune('a'+p.D%12)), model.ID(rune('A'+p.R%12)), s)
	}
	return m
}

func TestMergeCommutativeProperty(t *testing.T) {
	f := func(p1, p2 []struct {
		D, R uint8
		S    float64
	}) bool {
		m1, m2 := randomSame(p1), randomSame(p2)
		for _, comb := range []Combiner{AvgCombiner, MinCombiner, MaxCombiner, Avg0Combiner, Min0Combiner} {
			a, err1 := Merge(comb, m1, m2)
			b, err2 := Merge(comb, m2, m1)
			if err1 != nil || err2 != nil || !a.Equal(b, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeIdempotentProperty(t *testing.T) {
	f := func(p []struct {
		D, R uint8
		S    float64
	}) bool {
		m := randomSame(p)
		for _, comb := range []Combiner{AvgCombiner, MinCombiner, MaxCombiner, Min0Combiner, Avg0Combiner} {
			got, err := Merge(comb, m, m.Clone())
			if err != nil {
				return false
			}
			// Self-merge keeps exactly the positive-sim correspondences.
			want := m.Filter(func(c Correspondence) bool { return c.Sim > 0 })
			if !got.Equal(want, 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMergeRecallPrecisionTradeoffProperty(t *testing.T) {
	// Min-0 output ⊆ Avg output ⊇ each input's positive pairs: the
	// paper's restrictive-vs-permissive merge trade-off.
	f := func(p1, p2 []struct {
		D, R uint8
		S    float64
	}) bool {
		m1, m2 := randomSame(p1), randomSame(p2)
		inter, err1 := Merge(Min0Combiner, m1, m2)
		uni, err2 := Merge(AvgCombiner, m1, m2)
		if err1 != nil || err2 != nil {
			return false
		}
		ok := true
		inter.Each(func(c Correspondence) {
			if !uni.Has(c.Domain, c.Range) {
				ok = false
			}
		})
		m1.Each(func(c Correspondence) {
			if c.Sim > 0 && !uni.Has(c.Domain, c.Range) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCombinerKindString(t *testing.T) {
	names := map[CombinerKind]string{Avg: "Avg", Min: "Min", Max: "Max", Weighted: "Weighted", Prefer: "PreferMap"}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if CombinerKind(42).String() == "" {
		t.Error("unknown kind should still render")
	}
}
