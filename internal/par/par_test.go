package par

import (
	"cmp"
	"math/rand"
	"slices"
	"testing"
)

func TestSplitCoversEveryRow(t *testing.T) {
	for _, n := range []int{0, 1, 7, minChunkRows - 1, minChunkRows, 2*minChunkRows - 1, 2 * minChunkRows, 100001} {
		for _, w := range []int{0, 1, 2, 3, 8, 64} {
			p := Split(n, w)
			chunks := p.Chunks()
			if chunks < 1 {
				t.Fatalf("Split(%d,%d): %d chunks", n, w, chunks)
			}
			prev := 0
			for c := 0; c < chunks; c++ {
				lo, hi := p.Bounds(c)
				if lo != prev || hi < lo {
					t.Fatalf("Split(%d,%d): chunk %d = [%d,%d), want lo %d", n, w, c, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Split(%d,%d): chunks end at %d, want %d", n, w, prev, n)
			}
		}
	}
}

func TestSplitSmallInputStaysSequential(t *testing.T) {
	if got := Split(minChunkRows, 8).Chunks(); got != 1 {
		t.Fatalf("small input split into %d chunks, want 1", got)
	}
	if got := Split(0, 8).Chunks(); got != 1 {
		t.Fatalf("empty input split into %d chunks, want 1", got)
	}
}

func TestRunVisitsEveryRowOnce(t *testing.T) {
	n := 3*minChunkRows + 17
	for _, w := range []int{1, 2, 3, 8} {
		seen := make([]int32, n)
		p := Split(n, w)
		p.Run(func(chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: row %d visited %d times", w, i, c)
			}
		}
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic did not propagate")
		}
	}()
	Split(4*minChunkRows, 4).Run(func(chunk, lo, hi int) {
		if chunk == 2 {
			panic("boom")
		}
	})
}

// TestSortFuncMatchesSequential pins the contract the operators rely on:
// under a total order the sorted result is identical at every worker count.
func TestSortFuncMatchesSequential(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 100, 2*minChunkRows + 3, 6*minChunkRows + 1} {
		base := make([]uint64, n)
		for i := range base {
			// Duplicate-heavy keys; the low bits make the order total, the
			// way operator sort keys append a sequence number.
			base[i] = uint64(rnd.Intn(50))<<32 | uint64(i)
		}
		want := append([]uint64(nil), base...)
		slices.Sort(want)
		for _, w := range []int{1, 2, 3, 5, 8} {
			got := append([]uint64(nil), base...)
			SortFunc(got, w, func(a, b uint64) int { return cmp.Compare(a, b) })
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: parallel sort diverged from sequential", n, w)
			}
		}
	}
}

func TestRunTeamAndPartitionCoverEveryKey(t *testing.T) {
	for _, team := range []int{1, 2, 3, 8} {
		owned := make([]int32, 1000)
		RunTeam(team, func(w int) {
			for x := range owned {
				if Partition(uint32(x), team) == w {
					owned[x]++
				}
			}
		})
		for x, c := range owned {
			if c != 1 {
				t.Fatalf("team=%d: key %d owned by %d workers", team, x, c)
			}
		}
	}
}

func TestWorkersResolvesDefault(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("default worker count must be at least 1")
	}
}

func BenchmarkSortFunc(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	base := make([]uint64, 1<<20)
	for i := range base {
		base[i] = uint64(rnd.Intn(1 << 19))<<32 | uint64(i)
	}
	buf := make([]uint64, len(base))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, base)
		SortFunc(buf, 0, func(a, b uint64) int { return cmp.Compare(a, b) })
	}
}
