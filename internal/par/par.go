// Package par is the repository's blessed data-parallel idiom, extracted
// from match.streamScore into a shared core for the parallel columnar
// mapping operators (ROADMAP item 5) and, later, the sharded resolver
// fleet: a fixed worker count, partition-by-index chunking over row
// ranges, per-worker private scratch, and a deterministic merge-back in
// chunk order.
//
// The contract every user of this package inherits:
//
//   - Work is split into contiguous row ranges [lo, hi) decided before any
//     goroutine starts — never work-stealing, never a shared cursor — so
//     the assignment of rows to chunks is a pure function of (rows,
//     workers).
//   - Each worker writes only its own chunk's scratch (partition by index,
//     the shape moma-vet's workerpool analyzer checks); results become
//     visible after the Wait-join, and callers merge them back in chunk
//     order, which restores the sequential row order deterministically.
//   - Worker counts affect wall-clock time only. Any output assembled via
//     chunk-order merge-back is bit-identical to what one worker produces;
//     the mapping package's differential oracles pin exactly this.
//
// A Plan carries the chunk bounds so callers can size per-chunk arenas
// before running; Split(n, workers).Run(fn) is the whole idiom in one
// line. SortFunc is the shared parallel sort built on the same plan:
// chunked sorts merged pairwise with merge-path splitting, so the sorted
// result (under a total order) is independent of the worker count.
package par

import (
	"runtime"
	"slices"
	"sync"
)

// Workers resolves a requested worker count: n when positive, otherwise
// GOMAXPROCS — which moma-bench -workers and `go test -cpu` cap, so the
// default tracks the harness's intent without extra plumbing.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// minChunkRows is the smallest range worth handing to its own worker:
// below this, goroutine spin-up and the join cost more than the row work
// they buy back. Splits never produce more chunks than ceil(n/minChunkRows).
const minChunkRows = 2048

// Plan is a partition of [0, n) rows into contiguous chunks, one per
// worker. The zero value is an empty single-chunk plan.
type Plan struct {
	n      int
	bounds []int // chunk c covers [bounds[c], bounds[c+1])
}

// Split partitions n rows into at most `workers` near-equal contiguous
// chunks (workers <= 0 means GOMAXPROCS). Small inputs collapse to a
// single chunk so the sequential path stays free of goroutine overhead.
func Split(n, workers int) Plan {
	w := Workers(workers)
	if w > 1 && n < 2*minChunkRows {
		w = 1
	}
	if maxW := (n + minChunkRows - 1) / minChunkRows; w > maxW && maxW > 0 {
		w = maxW
	}
	if w < 1 {
		w = 1
	}
	bounds := make([]int, w+1)
	for c := 0; c <= w; c++ {
		bounds[c] = c * n / w
	}
	return Plan{n: n, bounds: bounds}
}

// Chunks returns the number of chunks in the plan.
func (p Plan) Chunks() int {
	if p.bounds == nil {
		return 1
	}
	return len(p.bounds) - 1
}

// Bounds returns chunk c's row range [lo, hi).
func (p Plan) Bounds(c int) (lo, hi int) {
	if p.bounds == nil {
		return 0, 0
	}
	return p.bounds[c], p.bounds[c+1]
}

// Run executes fn(chunk, lo, hi) for every chunk of the plan, one goroutine
// per chunk, and joins before returning. fn must write only per-chunk
// state (partition by index); a single-chunk plan runs inline on the
// calling goroutine. Panics in workers propagate to the caller after all
// workers have stopped, so a crashed chunk never leaves goroutines writing
// behind the caller's back.
func (p Plan) Run(fn func(chunk, lo, hi int)) {
	chunks := p.Chunks()
	if chunks == 1 {
		lo, hi := p.Bounds(0)
		fn(0, lo, hi)
		return
	}
	panics := make([]any, chunks)
	var wg sync.WaitGroup
	for c := 0; c < chunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[c] = r
				}
			}()
			fn(c, p.bounds[c], p.bounds[c+1])
		}(c)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// Team sizes a hash-partitioned worker team over n items with the same
// collapse heuristics as Split: small inputs get a team of one so they
// run inline on the caller. Hash partitioning is the variant of the idiom
// for grouped folds — every worker scans all rows but owns the keys that
// hash to its partition, so each key's fold happens on one worker in
// global row order (order-sensitive float folds stay bit-identical).
func Team(n, workers int) int {
	return Split(n, workers).Chunks()
}

// RunTeam executes fn(w) for every worker w in [0, team), one goroutine
// per worker, and joins before returning — Plan.Run for hash-partitioned
// work, with the same private-scratch contract and panic propagation. A
// team of one runs inline on the calling goroutine.
func RunTeam(team int, fn func(w int)) {
	if team <= 1 {
		fn(0)
		return
	}
	panics := make([]any, team)
	var wg sync.WaitGroup
	for w := 0; w < team; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// Partition maps ordinal x to a partition in [0, team) by Fibonacci
// hashing — the shared partition function of hash-partitioned operators.
// It is a pure function of (x, team), so the row-to-worker assignment is
// deterministic for a fixed team size.
func Partition(x uint32, team int) int {
	return int((uint64(x*2654435761) * uint64(team)) >> 32)
}

// SortFunc sorts s by cmp across `workers` goroutines: the plan's chunks
// are sorted independently, then merged pairwise in rounds with each merge
// itself split by merge-path search. cmp must describe a TOTAL order over
// the elements actually present (no two distinct elements compare equal) —
// the operators guarantee this by including a sequence number in the key —
// so the result is the unique sorted permutation regardless of worker
// count. Allocates one scratch slice of len(s).
func SortFunc[T any](s []T, workers int, cmp func(a, b T) int) {
	p := Split(len(s), workers)
	chunks := p.Chunks()
	if chunks == 1 {
		slices.SortFunc(s, cmp)
		return
	}
	p.Run(func(c, lo, hi int) {
		slices.SortFunc(s[lo:hi], cmp)
	})
	// Pairwise merge rounds over the chunk boundaries: src holds the runs,
	// dst receives merged pairs; odd runs carry over by copy. Every round
	// halves the run count, and each merge is itself parallel.
	src, dst := s, make([]T, len(s))
	bounds := append([]int(nil), p.bounds...)
	for len(bounds) > 2 {
		nb := []int{bounds[0]}
		for i := 0; i+2 < len(bounds); i += 2 {
			mergeParallel(dst[bounds[i]:bounds[i+2]], src[bounds[i]:bounds[i+1]], src[bounds[i+1]:bounds[i+2]], workers, cmp)
			nb = append(nb, bounds[i+2])
		}
		if (len(bounds)-1)%2 == 1 {
			last := len(bounds) - 1
			copy(dst[bounds[last-1]:bounds[last]], src[bounds[last-1]:bounds[last]])
			nb = append(nb, bounds[last])
		}
		bounds = nb
		src, dst = dst, src
	}
	if &src[0] != &s[0] {
		copy(s, src)
	}
}

// mergeParallel merges sorted runs a and b into dst (len(dst) ==
// len(a)+len(b)), splitting the merge into near-equal segments found by
// merge-path search: segment k takes a[ak:ak+1) and the b-prefix strictly
// smaller than a[ak], so concatenated segments are exactly the stable
// sequential merge.
func mergeParallel[T any](dst, a, b []T, workers int, cmp func(x, y T) int) {
	p := Split(len(a), workers)
	chunks := p.Chunks()
	if chunks == 1 {
		mergeRuns(dst, a, b, cmp)
		return
	}
	// Boundaries in b for each a-chunk: bk = first index with b[j] >= a[ak]
	// (ties go to a, keeping the merge stable).
	bb := make([]int, chunks+1)
	bb[chunks] = len(b)
	for c := 1; c < chunks; c++ {
		ak, _ := p.Bounds(c)
		bb[c], _ = slices.BinarySearchFunc(b, a[ak], cmp)
	}
	p.Run(func(c, lo, hi int) {
		mergeRuns(dst[lo+bb[c]:hi+bb[c+1]], a[lo:hi], b[bb[c]:bb[c+1]], cmp)
	})
}

// mergeRuns is the sequential stable two-run merge (a wins ties).
func mergeRuns[T any](dst, a, b []T, cmp func(x, y T) int) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if cmp(a[i], b[j]) <= 0 {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}
