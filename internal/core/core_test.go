package core

import (
	"math"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

// TestCoreSurface exercises the re-exported contribution end to end: the
// Figure 6 composition through the core aliases.
func TestCoreSurface(t *testing.T) {
	ven := model.LDS{Source: "DBLP", Type: model.Venue}
	pub := model.LDS{Source: "ACM", Type: model.Publication}
	venACM := model.LDS{Source: "ACM", Type: model.Venue}

	var m1 *Mapping = mapping.New(ven, pub, "VenuePub")
	m1.Add("v1", "p1", 1)
	m1.Add("v1", "p2", 1)
	m1.Add("v1", "p3", 0.6)
	m1.Add("v2", "p2", 0.6)
	m1.Add("v2", "p3", 1)
	var m2 *Mapping = mapping.New(pub, venACM, "PubVenue")
	m2.Add("p1", "v'1", 1)
	m2.Add("p2", "v'1", 1)
	m2.Add("p3", "v'2", 1)

	got, err := Compose(m1, m2, mapping.MinCombiner, mapping.AggRelative)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := got.Sim("v1", "v'1"); math.Abs(s-0.8) > 1e-9 {
		t.Errorf("core compose sim = %v, want 0.8", s)
	}

	merged, err := Merge(mapping.MaxCombiner, got)
	if err != nil || merged.Len() != got.Len() {
		t.Errorf("core merge failed: %v", err)
	}

	nh, err := NhMatch(m1, mapping.Identity(rangeSet(m1)), m2)
	if err != nil || nh.Len() == 0 {
		t.Errorf("core nhMatch failed: %v", err)
	}
}

// rangeSet builds an object set covering a mapping's range ids.
func rangeSet(m *Mapping) *model.ObjectSet {
	set := model.NewObjectSet(m.Range())
	for _, id := range m.RangeIDs() {
		set.AddNew(id, nil)
	}
	return set
}
