// Package core anchors the paper's primary contribution — mapping-based
// object matching — by re-exporting the operator layer (instance-level
// mappings with merge, compose and selection, §3) together with the match
// strategies built on it (§4: independent-matcher merging, same-mapping
// composition, the neighborhood matcher, self-mapping duplicate
// detection).
//
// The implementation lives in the focused sibling packages:
//
//   - repro/internal/mapping — mappings and the §3 operators
//   - repro/internal/match   — the matcher library incl. nhMatch (§4.2)
//   - repro/internal/workflow — match workflows (§2.2, Figure 3)
//
// Code inside this module normally imports those packages directly; core
// exists so that the conceptual core of the reproduction has a single
// addressable home mirroring DESIGN.md's system inventory.
package core

import (
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/workflow"
)

// The instance-mapping model and the three §3 operator families.
type (
	// Mapping is a fuzzy instance-level mapping (Definition 1).
	Mapping = mapping.Mapping
	// Correspondence is one (domain, range, similarity) row.
	Correspondence = mapping.Correspondence
	// Combiner is the similarity combination function f (§3.1).
	Combiner = mapping.Combiner
	// PathAgg is the compose path aggregation g (§3.2).
	PathAgg = mapping.PathAgg
	// Selection filters correspondences (§3.3).
	Selection = mapping.Selection
)

// Operators.
var (
	// Merge unifies n same-type mappings under f (§3.1).
	Merge = mapping.Merge
	// Compose derives A->B from A->C and C->B (§3.2).
	Compose = mapping.Compose
	// NhMatch is the neighborhood matcher procedure (§4.2).
	NhMatch = match.NhMatch
	// NhMatchAgg is NhMatch with an explicit final aggregation.
	NhMatchAgg = match.NhMatchAgg
)

// Matcher and workflow surfaces.
type (
	// Matcher produces a same-mapping between two object sets.
	Matcher = match.Matcher
	// Workflow is a sequence of match steps (§2.2).
	Workflow = workflow.Workflow
	// Engine executes workflows against repository and cache.
	Engine = workflow.Engine
)
