package index

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func sampleIndex() *Index {
	ix := New()
	ix.Add("p1", "a formal perspective on the view selection problem")
	ix.Add("p2", "generic schema matching with cupid")
	ix.Add("p3", "the view selection problem revisited")
	ix.Add("p4", "data integration on the web")
	ix.Add("p5", "schema matching a survey")
	ix.Freeze()
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := sampleIndex()
	hits := ix.Search("view selection problem", 3)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	top := map[model.ID]bool{hits[0].ID: true}
	if len(hits) > 1 {
		top[hits[1].ID] = true
	}
	if !top["p1"] || !top["p3"] {
		t.Errorf("top hits should include p1 and p3, got %v", hits)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Errorf("hits not sorted: %v", hits)
		}
	}
}

func TestSearchTopKBound(t *testing.T) {
	ix := sampleIndex()
	if got := ix.Search("the schema view data", 2); len(got) > 2 {
		t.Errorf("k=2 returned %d hits", len(got))
	}
	if got := ix.Search("view", 0); got != nil {
		t.Error("k=0 should return nil")
	}
	if got := ix.Search("", 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := ix.Search("zzz qqq", 5); got != nil {
		t.Error("no matching token should return nil")
	}
}

func TestSearchDeterministic(t *testing.T) {
	ix := sampleIndex()
	a := ix.Search("schema matching", 5)
	b := ix.Search("schema matching", 5)
	if !reflect.DeepEqual(a, b) {
		t.Error("search must be deterministic")
	}
}

func TestRareTokenBeatsStopword(t *testing.T) {
	ix := sampleIndex()
	hits := ix.Search("cupid", 5)
	if len(hits) != 1 || hits[0].ID != "p2" {
		t.Errorf("cupid should hit only p2, got %v", hits)
	}
}

func TestMultiFieldAdd(t *testing.T) {
	ix := New()
	in := model.NewInstance("p1", map[string]string{"title": "schema matching", "authors": "Erhard Rahm"})
	ix.AddInstance(in, "title", "authors", "missing")
	ix.Freeze()
	if ix.Docs() != 1 {
		t.Errorf("Docs = %d, want 1 (same id, two fields)", ix.Docs())
	}
	if hits := ix.Search("rahm", 1); len(hits) != 1 || hits[0].ID != "p1" {
		t.Errorf("author token should hit, got %v", hits)
	}
	if hits := ix.Search("schema", 1); len(hits) != 1 {
		t.Errorf("title token should hit, got %v", hits)
	}
}

func TestAddSameDocTwiceMergesPostings(t *testing.T) {
	ix := New()
	ix.Add("p1", "schema")
	ix.Add("p1", "schema matching")
	if ix.DocFreq("schema") != 1 {
		t.Errorf("DocFreq(schema) = %d, want 1", ix.DocFreq("schema"))
	}
	if ix.Docs() != 1 {
		t.Errorf("Docs = %d, want 1", ix.Docs())
	}
}

func TestAddAfterFreezePanics(t *testing.T) {
	ix := sampleIndex()
	defer func() {
		if recover() == nil {
			t.Error("Add after Freeze must panic")
		}
	}()
	ix.Add("p9", "too late")
}

func TestCandidatesSharing(t *testing.T) {
	ix := sampleIndex()
	got := ix.CandidatesSharing("view selection problem", 2)
	want := []model.ID{"p1", "p3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CandidatesSharing = %v, want %v", got, want)
	}
	all := ix.CandidatesSharing("the view", 1)
	if len(all) < 3 {
		t.Errorf("minShared=1 should be permissive, got %v", all)
	}
	if got := ix.CandidatesSharing("zzz", 1); got != nil {
		t.Errorf("no shared tokens should return nil, got %v", got)
	}
	if got := ix.CandidatesSharing("view", 0); got == nil {
		t.Error("minShared<1 should clamp to 1")
	}
}

// TestEachCandidateSharingTokens asserts the streaming primitive visits
// exactly the CandidatesSharingTokens sequence and honors early stop.
func TestEachCandidateSharingTokens(t *testing.T) {
	ix := sampleIndex()
	toks := sim.Tokens("the view selection problem")
	want := ix.CandidatesSharingTokens(toks, 2)
	var got []model.ID
	ix.EachCandidateSharingTokens(toks, 2, func(id model.ID) bool {
		got = append(got, id)
		return true
	})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("EachCandidateSharingTokens = %v, want %v", got, want)
	}
	if len(want) < 2 {
		t.Fatalf("fixture too small: %v", want)
	}
	got = nil
	ix.EachCandidateSharingTokens(toks, 2, func(id model.ID) bool {
		got = append(got, id)
		return false
	})
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("early stop visited %v, want just %v", got, want[:1])
	}
}

func TestStatsAndString(t *testing.T) {
	ix := sampleIndex()
	if ix.Docs() != 5 {
		t.Errorf("Docs = %d", ix.Docs())
	}
	if ix.Terms() == 0 {
		t.Error("Terms = 0")
	}
	if ix.DocFreq("schema") != 2 {
		t.Errorf("DocFreq(schema) = %d, want 2", ix.DocFreq("schema"))
	}
	if s := ix.String(); s == "" {
		t.Error("String empty")
	}
}

func TestSearchTopKSubsetProperty(t *testing.T) {
	// Top-k results are a prefix of top-(k+5) results.
	ix := New()
	for i := 0; i < 50; i++ {
		ix.Add(model.ID(fmt.Sprintf("d%02d", i)), fmt.Sprintf("token%d shared common text %d", i%7, i%3))
	}
	ix.Freeze()
	f := func(kRaw uint8) bool {
		k := int(kRaw%10) + 1
		small := ix.Search("shared common token1", k)
		big := ix.Search("shared common token1", k+5)
		if len(small) > k {
			return false
		}
		for i := range small {
			if big[i] != small[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	ix := New()
	if got := ix.Search("anything", 5); got != nil {
		t.Errorf("empty index should return nil, got %v", got)
	}
}
