package index

// Ordinal inverted index: the incremental, allocation-lean counterpart of
// Index for candidate generation.
//
// Index keys postings by model.ID and is built once per match (batch mode).
// Ords keys postings by dense int ordinals — an ObjectSet's insertion-order
// ordinals in batch token blocking, a live Resolver's slot numbers online —
// and supports incremental Add and Remove, so one resident structure serves
// both the batch blocking path (built once per object-set version, cached)
// and the online resolution path (updated per arriving instance, never
// rebuilt). Candidate probes stream ordinals in ascending order, which is
// the producing set's insertion order.
//
// Tokens are interned term IDs (sim.Dict): the caller tokenizes and interns
// once — the blocking cache into the global sim.Terms, a live Resolver into
// its private dictionary — and every Add, Remove and probe after that hashes
// uint32s instead of strings.

import (
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Ords is an inverted index over dense document ordinals. The zero value is
// not usable; call NewOrds. Methods are not safe for concurrent use; callers
// that share an Ords across goroutines (the live Resolver) synchronize
// around it (EachCandidate is read-only and safe under a shared read lock).
type Ords struct {
	postings map[uint32][]int32
	docs     int
}

// NewOrds returns an empty ordinal index.
func NewOrds() *Ords {
	return &Ords{postings: make(map[uint32][]int32)}
}

// Docs returns the number of indexed documents.
func (x *Ords) Docs() int { return x.docs }

// Terms returns the number of distinct tokens with at least one posting.
func (x *Ords) Terms() int { return len(x.postings) }

// Add indexes the document with the given ordinal under the distinct term
// IDs of toks. Posting lists stay sorted: appends are O(1) for monotonically
// increasing ordinals (the common case — set iteration order, resolver slot
// allocation order) and fall back to a binary-search insert otherwise.
// Adding an ordinal that is already present under a token is a no-op for
// that token, so re-adding a document with its previous tokens is harmless.
func (x *Ords) Add(ord int, toks []uint32) {
	if len(toks) == 0 {
		return
	}
	o := int32(ord)
	added := false
	for i, tok := range toks {
		if seenBefore(toks, i) {
			continue
		}
		list := x.postings[tok]
		if n := len(list); n == 0 || list[n-1] < o {
			x.postings[tok] = append(list, o)
			added = true
			continue
		}
		at := sort.Search(len(list), func(i int) bool { return list[i] >= o })
		if at < len(list) && list[at] == o {
			continue
		}
		list = append(list, 0)
		copy(list[at+1:], list[at:])
		list[at] = o
		x.postings[tok] = list
		added = true
	}
	if added {
		x.docs++
	}
}

// Remove deletes the document's postings. toks must be the token slice the
// ordinal was added with (callers keep it; the live Resolver stores one
// token slice per slot anyway, for exactly this purpose).
func (x *Ords) Remove(ord int, toks []uint32) {
	if len(toks) == 0 {
		return
	}
	o := int32(ord)
	removed := false
	for i, tok := range toks {
		if seenBefore(toks, i) {
			continue
		}
		list := x.postings[tok]
		at := sort.Search(len(list), func(i int) bool { return list[i] >= o })
		if at >= len(list) || list[at] != o {
			continue
		}
		list = append(list[:at], list[at+1:]...)
		removed = true
		if len(list) == 0 {
			delete(x.postings, tok)
		} else {
			x.postings[tok] = list
		}
	}
	if removed {
		x.docs--
	}
}

// hitsPool recycles the per-probe posting-gather buffers: a warm probe
// allocates nothing, which keeps EachCandidate's footprint flat however
// large the index grows.
var hitsPool = sync.Pool{New: func() any { return new([]int32) }}

// EachCandidate streams the ordinals of documents sharing at least minShared
// distinct tokens with toks, in ascending ordinal order, stopping early when
// yield returns false. Per probe, memory is proportional to the number of
// posting entries hit — independent of the index size — and served from a
// pool, so a warm resolver answers queries without set-sized allocations.
// TestEachCandidateZeroAllocs pins the warm probe at zero heap allocations.
//
//moma:noalloc
func (x *Ords) EachCandidate(toks []uint32, minShared int, yield func(ord int) bool) {
	if minShared < 1 {
		minShared = 1
	}
	// Gather every posting hit by a distinct query token, then sort and scan
	// runs: a document sharing k distinct tokens appears exactly k times.
	buf := hitsPool.Get().(*[]int32)
	hits := (*buf)[:0]
	for i, tok := range toks {
		if seenBefore(toks, i) {
			continue
		}
		hits = append(hits, x.postings[tok]...) //moma:noalloc-ok appends into the pooled buffer; grows once to the probe high-water mark
	}
	//moma:noalloc-ok the cleanup closure is stack-allocated: open-coded defer, nothing retains it
	defer func() {
		*buf = hits[:0]
		hitsPool.Put(buf)
	}()
	if len(hits) == 0 {
		return
	}
	slices.Sort(hits)
	for i := 0; i < len(hits); {
		j := i + 1
		for j < len(hits) && hits[j] == hits[i] {
			j++
		}
		if j-i >= minShared && !yield(int(hits[i])) {
			return
		}
		i = j
	}
}

// seenBefore reports whether toks[i] occurred earlier in toks — an
// allocation-free dedup for the short token slices of blocking attributes.
func seenBefore(toks []uint32, i int) bool {
	for _, prev := range toks[:i] {
		if prev == toks[i] {
			return true
		}
	}
	return false
}

// String summarizes the index.
func (x *Ords) String() string {
	return fmt.Sprintf("ords{docs: %d, terms: %d}", x.docs, len(x.postings))
}
