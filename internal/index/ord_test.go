package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/race"

	"repro/internal/model"
	"repro/internal/sim"
)

// ids interns a test token slice in the global dictionary.
func ids(toks ...string) []uint32 {
	return sim.Terms.InternTokens(toks)
}

func collectOrds(x *Ords, toks []uint32, minShared int) []int {
	var out []int
	x.EachCandidate(toks, minShared, func(ord int) bool {
		out = append(out, ord)
		return true
	})
	return out
}

func TestOrdsCandidates(t *testing.T) {
	x := NewOrds()
	x.Add(0, ids("view", "selection", "problem"))
	x.Add(1, ids("view", "maintenance"))
	x.Add(2, ids("query", "optimization"))

	if got := collectOrds(x, ids("view", "selection"), 1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("minShared=1: got %v", got)
	}
	if got := collectOrds(x, ids("view", "selection"), 2); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("minShared=2: got %v", got)
	}
	if got := collectOrds(x, ids("nothing"), 1); got != nil {
		t.Fatalf("unknown token: got %v", got)
	}
	// Duplicate query tokens count once, like Index.EachCandidateSharingTokens.
	if got := collectOrds(x, ids("view", "view"), 2); got != nil {
		t.Fatalf("duplicate query tokens must not double-count: got %v", got)
	}
}

func TestOrdsRemove(t *testing.T) {
	x := NewOrds()
	toks1 := ids("a", "b")
	toks2 := ids("b", "c")
	x.Add(0, toks1)
	x.Add(1, toks2)
	if x.Docs() != 2 {
		t.Fatalf("docs = %d, want 2", x.Docs())
	}
	x.Remove(0, toks1)
	if x.Docs() != 1 {
		t.Fatalf("docs after remove = %d, want 1", x.Docs())
	}
	if got := collectOrds(x, ids("a", "b"), 1); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("after remove: got %v", got)
	}
	// Removing again is a no-op.
	x.Remove(0, toks1)
	if x.Docs() != 1 {
		t.Fatalf("docs after double remove = %d, want 1", x.Docs())
	}
	// Re-add at the same ordinal (replace flow: Remove then Add).
	x.Add(0, ids("c", "d"))
	if got := collectOrds(x, ids("c"), 1); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("after re-add: got %v", got)
	}
}

func TestOrdsOutOfOrderAdd(t *testing.T) {
	x := NewOrds()
	x.Add(5, ids("t"))
	x.Add(1, ids("t"))
	x.Add(3, ids("t"))
	if got := collectOrds(x, ids("t"), 1); !reflect.DeepEqual(got, []int{1, 3, 5}) {
		t.Fatalf("out-of-order adds must keep postings sorted: got %v", got)
	}
}

// TestOrdsMatchesIndexCandidates differentially pins the ordinal index
// against the ID-keyed Index on random token sets: same documents, same
// candidate membership for every probe and minShared.
func TestOrdsMatchesIndexCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"data", "view", "query", "match", "join", "web", "graph", "xml", "mining", "cache"}
	randToks := func() []string {
		n := 1 + rng.Intn(5)
		out := make([]string, n)
		for i := range out {
			out[i] = vocab[rng.Intn(len(vocab))]
		}
		return out
	}
	const docs = 60
	ix := New()
	ox := NewOrds()
	docToks := make([][]string, docs)
	for d := 0; d < docs; d++ {
		docToks[d] = randToks()
		ix.AddTokens(model.ID(fmt.Sprintf("doc%03d", d)), docToks[d])
		ox.Add(d, sim.Terms.InternTokens(docToks[d]))
	}
	ix.Freeze()
	for probe := 0; probe < 50; probe++ {
		q := randToks()
		for minShared := 1; minShared <= 3; minShared++ {
			want := map[string]bool{}
			for _, id := range ix.CandidatesSharingTokens(q, minShared) {
				want[string(id)] = true
			}
			got := map[string]bool{}
			ox.EachCandidate(sim.Terms.InternTokens(q), minShared, func(ord int) bool {
				got[fmt.Sprintf("doc%03d", ord)] = true
				return true
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("probe %v minShared=%d: ords %v != index %v", q, minShared, got, want)
			}
		}
	}
}

func TestOrdsRealTokens(t *testing.T) {
	x := NewOrds()
	x.Add(0, sim.Terms.TokenIDs("A Formal Perspective on the View Selection Problem"))
	x.Add(1, sim.Terms.TokenIDs("The View Selection Problem Revisited"))
	got := collectOrds(x, sim.Terms.TokenIDs("view selection"), 2)
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("got %v", got)
	}
}

// TestEachCandidateZeroAllocs pins EachCandidate's pooled-buffer contract:
// once the hit buffer has grown to the probe's high-water mark, a candidate
// probe performs zero heap allocations — including the yield closure, which
// must stay stack-allocated.
func TestEachCandidateZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	x := NewOrds()
	for i := 0; i < 500; i++ {
		x.Add(i, []uint32{uint32(i % 7), uint32(i % 11), uint32(i % 13), 99})
	}
	toks := []uint32{3, 5, 99, 99}
	n := 0
	probe := func() {
		n = 0
		x.EachCandidate(toks, 2, func(ord int) bool {
			n++
			return true
		})
	}
	if allocs := testing.AllocsPerRun(100, probe); allocs != 0 {
		t.Errorf("EachCandidate allocates %.0f times per run, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("probe matched nothing; fixture broken")
	}
}
