// Package index provides an inverted-index search store with TF-IDF ranked
// top-k retrieval.
//
// It simulates the access characteristics of web data sources like Google
// Scholar, which "do not support downloading all their data but only
// support querying selected subsets" (§2.1): the experiment harness obtains
// GS publications exclusively through keyword queries over this index,
// mirroring how the paper generated its GS dataset by sending title and
// venue queries. The same index powers token blocking for the attribute
// matchers.
package index

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
)

// posting records one document containing a token.
type posting struct {
	doc model.ID
	tf  int
}

// Index is an inverted index over the text of object instances. Postings
// are keyed by interned term IDs (the global sim.Terms dictionary), so
// indexing hashes each token string once and queries probe by uint32. The
// zero value is not usable; call New.
type Index struct {
	postings map[uint32][]posting
	docLen   map[model.ID]int
	docs     int
	frozen   bool
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[uint32][]posting),
		docLen:   make(map[model.ID]int),
	}
}

// Add indexes the given text under the document id. Adding the same id
// again extends its token set (e.g. title plus author fields). Add panics
// after Freeze, which would invalidate served queries.
func (ix *Index) Add(id model.ID, text string) {
	ix.addIDs(id, sim.Terms.TokenIDs(text))
}

// AddTokens indexes pre-tokenized text (sim.Tokens order and normalization)
// under the document id, interning the tokens on the way in.
func (ix *Index) AddTokens(id model.ID, toks []string) {
	ix.addIDs(id, sim.Terms.InternTokens(toks))
}

// addIDs indexes an interned token sequence under the document id.
func (ix *Index) addIDs(id model.ID, toks []uint32) {
	if ix.frozen {
		panic("index: Add after Freeze")
	}
	if _, seen := ix.docLen[id]; !seen {
		ix.docs++
	}
	ix.docLen[id] += len(toks)
	counts := make(map[uint32]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	for tok, tf := range counts {
		list := ix.postings[tok]
		// Merge with an existing posting for this doc if present (same doc
		// indexed in several Add calls).
		merged := false
		for i := range list {
			if list[i].doc == id {
				list[i].tf += tf
				merged = true
				break
			}
		}
		if !merged {
			list = append(list, posting{doc: id, tf: tf})
		}
		ix.postings[tok] = list
	}
}

// AddInstance indexes the named attributes of an instance.
func (ix *Index) AddInstance(in *model.Instance, attrs ...string) {
	for _, a := range attrs {
		if v := in.Attr(a); v != "" {
			ix.Add(in.ID, v)
		}
	}
}

// Freeze sorts all postings lists for deterministic retrieval and marks the
// index read-only. Queries work before freezing too, but frozen indexes
// guarantee stable result order.
func (ix *Index) Freeze() {
	for tok, list := range ix.postings {
		sort.Slice(list, func(i, j int) bool { return list[i].doc < list[j].doc })
		ix.postings[tok] = list
	}
	ix.frozen = true
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return ix.docs }

// Terms returns the number of distinct tokens.
func (ix *Index) Terms() int { return len(ix.postings) }

// DocFreq returns the number of documents containing the token.
func (ix *Index) DocFreq(token string) int {
	id, ok := sim.Terms.Lookup(token)
	if !ok {
		return 0
	}
	return len(ix.postings[id])
}

// Hit is one search result.
type Hit struct {
	ID    model.ID
	Score float64
}

// resultHeap is a min-heap of hits used for top-k selection: the weakest
// hit sits at the root and is evicted first.
type resultHeap []Hit

func (h resultHeap) Len() int { return len(h) }
func (h resultHeap) Less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].ID > h[j].ID // prefer smaller ids on equal score
}
func (h resultHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x any)   { *h = append(*h, x.(Hit)) }
func (h *resultHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h resultHeap) betterThanRoot(hit Hit) bool {
	if hit.Score != h[0].Score {
		return hit.Score > h[0].Score
	}
	return hit.ID < h[0].ID
}

// Search returns the top-k documents for the query under TF-IDF scoring
// with document-length normalization, ranked by descending score (ties by
// ascending id). k <= 0 returns nil.
func (ix *Index) Search(query string, k int) []Hit {
	if k <= 0 || ix.docs == 0 {
		return nil
	}
	// Lookup-only interning: query tokens the index has never seen have no
	// postings and are dropped before counting.
	toks := sim.Terms.LookupTokenIDs(query)
	if len(toks) == 0 {
		return nil
	}
	qCounts := make(map[uint32]int, len(toks))
	for _, tok := range toks {
		qCounts[tok]++
	}
	scores := make(map[model.ID]float64)
	// Score query terms in ascending token order: float addition is not
	// associative, so map-order accumulation would leave low-order score
	// bits — and tie-breaks at the heap boundary — nondeterministic.
	qToks := make([]uint32, 0, len(qCounts))
	for tok := range qCounts {
		qToks = append(qToks, tok)
	}
	sort.Slice(qToks, func(i, j int) bool { return qToks[i] < qToks[j] })
	for _, tok := range qToks {
		qtf := qCounts[tok]
		list := ix.postings[tok]
		if len(list) == 0 {
			continue
		}
		idf := math.Log(1 + float64(ix.docs)/float64(len(list)))
		qw := (1 + math.Log(float64(qtf))) * idf
		for _, p := range list {
			dw := (1 + math.Log(float64(p.tf))) * idf
			scores[p.doc] += qw * dw
		}
	}
	if len(scores) == 0 {
		return nil
	}
	h := make(resultHeap, 0, k)
	heap.Init(&h)
	// Iterate docs in sorted order for full determinism even among equal
	// scores beyond the heap boundary.
	ids := make([]model.ID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		norm := math.Sqrt(float64(ix.docLen[id]) + 1)
		hit := Hit{ID: id, Score: scores[id] / norm}
		if len(h) < k {
			heap.Push(&h, hit)
		} else if h.betterThanRoot(hit) {
			h[0] = hit
			heap.Fix(&h, 0)
		}
	}
	out := make([]Hit, len(h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(Hit)
	}
	return out
}

// CandidatesSharing returns the ids of documents sharing at least
// minShared query tokens, unranked. It is the primitive behind token
// blocking: a cheap recall-oriented candidate generator.
func (ix *Index) CandidatesSharing(query string, minShared int) []model.ID {
	return ix.CandidatesSharingTokens(sim.Tokens(query), minShared)
}

// CandidatesSharingTokens is CandidatesSharing over a pre-tokenized query.
func (ix *Index) CandidatesSharingTokens(toks []string, minShared int) []model.ID {
	var out []model.ID
	ix.EachCandidateSharingTokens(toks, minShared, func(id model.ID) bool {
		out = append(out, id)
		return true
	})
	return out
}

// EachCandidateSharingTokens streams the documents sharing at least
// minShared of the (pre-tokenized) query tokens to yield, in ascending id
// order, stopping early when yield returns false. It is the streaming
// primitive behind token blocking: per probe only the per-document overlap
// counters live in memory, never a global candidate-pair set.
func (ix *Index) EachCandidateSharingTokens(toks []string, minShared int, yield func(model.ID) bool) {
	if minShared < 1 {
		minShared = 1
	}
	counts := make(map[model.ID]int)
	seen := make(map[uint32]bool, len(toks))
	for _, tok := range toks {
		id, ok := sim.Terms.Lookup(tok)
		if !ok || seen[id] {
			continue
		}
		seen[id] = true
		for _, p := range ix.postings[id] {
			counts[p.doc]++
		}
	}
	hits := make([]model.ID, 0, len(counts))
	for id, c := range counts {
		if c >= minShared {
			hits = append(hits, id)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	for _, id := range hits {
		if !yield(id) {
			return
		}
	}
}

// String summarizes the index.
func (ix *Index) String() string {
	return fmt.Sprintf("index{docs: %d, terms: %d}", ix.docs, len(ix.postings))
}
