package block

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

// streamFixture builds larger, noisier inputs than blockFixture so that all
// three blockers produce non-trivial candidate sequences, including
// duplicate-prone windows for sorted neighborhood.
func streamFixture(n int) (*model.ObjectSet, *model.ObjectSet) {
	topics := []string{
		"generic schema matching with cupid",
		"a formal perspective on the view selection problem",
		"mapping based object matching",
		"entity resolution over web data sources",
		"adaptive blocking for scalable record linkage",
	}
	a := model.NewObjectSet(dblpPub)
	b := model.NewObjectSet(acmPub)
	for i := 0; i < n; i++ {
		topic := topics[i%len(topics)]
		a.AddNew(model.ID(fmt.Sprintf("a%02d", i)), map[string]string{
			"title": fmt.Sprintf("%s part %d", topic, i/len(topics)),
		})
		b.AddNew(model.ID(fmt.Sprintf("b%02d", i)), map[string]string{
			"title": fmt.Sprintf("%s part %d revised", topic, (i+2)/len(topics)),
		})
	}
	return a, b
}

// collectEach drains PairsEach into a slice.
func collectEach(bl Blocker, a, b *model.ObjectSet) []Pair {
	var out []Pair
	bl.PairsEach(a, b, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// streamBlockers returns one instance of each built-in strategy.
func streamBlockers() []Blocker {
	return []Blocker{
		CrossProduct{},
		TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1},
		TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2},
		SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 4},
		SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 9},
	}
}

// TestPairsEachMatchesPairsSequence is the streaming/slice equivalence
// property: for every built-in blocker, PairsEach must visit exactly the
// sequence Pairs returns, in order, over a range of input sizes.
func TestPairsEachMatchesPairsSequence(t *testing.T) {
	for _, n := range []int{0, 1, 7, 40} {
		a, b := streamFixture(n)
		for _, bl := range streamBlockers() {
			want := bl.Pairs(a, b)
			got := collectEach(bl, a, b)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("n=%d %s: PairsEach sequence diverges from Pairs\n got %v\nwant %v",
					n, bl, got, want)
			}
		}
	}
}

// TestPairsEachStopsEarly asserts yield returning false halts the stream
// immediately for every blocker.
func TestPairsEachStopsEarly(t *testing.T) {
	a, b := streamFixture(25)
	for _, bl := range streamBlockers() {
		total := len(bl.Pairs(a, b))
		if total < 3 {
			t.Fatalf("%s: fixture too small (%d pairs)", bl, total)
		}
		stopAfter := total / 2
		var got []Pair
		bl.PairsEach(a, b, func(p Pair) bool {
			got = append(got, p)
			return len(got) < stopAfter
		})
		if len(got) != stopAfter {
			t.Errorf("%s: visited %d pairs after stopping at %d", bl, len(got), stopAfter)
		}
		if want := bl.Pairs(a, b)[:stopAfter]; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: early-stopped prefix diverges", bl)
		}
	}
}

// TestTokenBlockingPairsEachTokens asserts the pre-tokenized entry point
// yields the same stream as PairsEach, and that the columns it consumes are
// exactly the sim.Tokens output of the non-empty attribute values.
func TestTokenBlockingPairsEachTokens(t *testing.T) {
	a, b := streamFixture(20)
	a.AddNew("a-empty", nil)
	b.AddNew("b-empty", map[string]string{"title": ""})
	tb := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2}
	colA, colB := tb.TokenizeColumns(a, b)
	if len(colA) != a.Len() || len(colB) != b.Len() {
		t.Fatalf("columns must be ordinal-aligned: %d/%d vs %d/%d", len(colA), a.Len(), len(colB), b.Len())
	}
	if colA[a.IndexOf("a-empty")] != nil {
		t.Error("attribute-less instance must have a nil token column entry")
	}
	if colB[b.IndexOf("b-empty")] != nil {
		t.Error("empty attribute must have a nil token column entry")
	}
	for ord, toks := range colA {
		if toks == nil {
			continue
		}
		if want := sim.Terms.InternTokens(sim.Tokens(a.At(ord).Attr("title"))); !reflect.DeepEqual(toks, want) {
			t.Fatalf("column tokens for ordinal %d = %v, want %v", ord, toks, want)
		}
	}
	var got []Pair
	tb.PairsEachTokens(a, b, colA, colB, func(p Pair) bool {
		got = append(got, p)
		return true
	})
	if want := tb.Pairs(a, b); !reflect.DeepEqual(got, want) {
		t.Errorf("PairsEachTokens diverges from Pairs:\n got %v\nwant %v", got, want)
	}
}

// TestSortedNeighborhoodSkipsEmptyKeys is the regression test for the
// empty-key bug: instances whose blocking attribute is missing used to sort
// under the key "" at the front and pair with each other inside the window.
func TestSortedNeighborhoodSkipsEmptyKeys(t *testing.T) {
	a := model.NewObjectSet(dblpPub)
	a.AddNew("a-miss1", nil)
	a.AddNew("a-miss2", map[string]string{"title": "   "})
	a.AddNew("a1", map[string]string{"title": "view selection"})
	b := model.NewObjectSet(acmPub)
	b.AddNew("b-miss1", nil)
	b.AddNew("b-miss2", map[string]string{"title": "!!!"})
	b.AddNew("b1", map[string]string{"title": "view selection"})
	pairs := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 4}.Pairs(a, b)
	for _, p := range pairs {
		if p.A != "a1" || p.B != "b1" {
			t.Errorf("attribute-less instances must not produce candidates, got %v", p)
		}
	}
	if len(pairs) != 1 || pairs[0] != (Pair{A: "a1", B: "b1", OrdA: 2, OrdB: 2}) {
		t.Errorf("pairs = %+v, want exactly [{a1 b1 2 2}]", pairs)
	}
}

// TestCollect covers the stream-draining helper shared by the blockers.
func TestCollect(t *testing.T) {
	got := Collect(func(yield func(Pair) bool) {
		yield(Pair{A: "x", B: "y"})
		yield(Pair{A: "u", B: "v"})
	})
	if want := []Pair{{A: "x", B: "y"}, {A: "u", B: "v"}}; !reflect.DeepEqual(got, want) {
		t.Errorf("Collect = %v, want %v", got, want)
	}
	if Collect(func(func(Pair) bool) {}) != nil {
		t.Error("empty stream must collect to nil")
	}
}
