package block

// Per-set blocking cache: tokenized attribute columns and ordinal inverted
// indexes keyed by object-set identity.
//
// Token blocking used to rebuild its inverted index on every match, so a
// workflow running k matchers over the same inputs tokenized and indexed the
// same attribute column k times. This cache amortizes that work across
// matches: entries are keyed by (ObjectSet pointer, attribute) and validated
// against ObjectSet.Version, so any Add to the set invalidates its cached
// derivations on the next match. The index is the same incremental
// index.Ords structure the online resolution path (internal/live) keeps
// resident, so batch and online candidate generation share one
// implementation.
//
// The cache is bounded (oldest entry evicted first) and keys sets through
// weak pointers, so it never extends an object set's lifetime: entries of
// collected sets — throwaway Filter/Subset results matched once — are swept
// on the next store instead of pinning the set and its token columns until
// eviction.

import (
	"runtime"
	"sync"
	"weak"

	"repro/internal/index"
	"repro/internal/model"
)

// cacheLimit bounds the number of cached columns. A workflow touches a
// handful of (set, attribute) combinations; a serving process a few dozen.
const cacheLimit = 64

type cacheKey struct {
	set  weak.Pointer[model.ObjectSet]
	attr string
}

type cacheEntry struct {
	version uint64
	toks    Tokens
	ix      *index.Ords // built on first probe use, nil until then
}

var blockCache = struct {
	sync.Mutex
	entries map[cacheKey]*cacheEntry
	order   []cacheKey
}{entries: make(map[cacheKey]*cacheEntry)}

// cachedColumn returns the dense token column of the set's attribute,
// building and caching it when absent or stale.
func cachedColumn(set *model.ObjectSet, attr string) Tokens {
	key := cacheKey{set: weak.Make(set), attr: attr}
	ver := set.Version()
	blockCache.Lock()
	if e, ok := blockCache.entries[key]; ok && e.version == ver {
		toks := e.toks
		blockCache.Unlock()
		return toks
	}
	blockCache.Unlock()

	toks := tokenizeColumn(set, attr)
	storeEntry(set, key, &cacheEntry{version: ver, toks: toks})
	return toks
}

// cachedOrdIndex returns the ordinal inverted index over the given token
// column. The index is cached only when col is the cache's own column for
// (set, attr) at the set's current version — callers probing a hand-built
// column get a transient index instead, so foreign columns can never poison
// the cache.
func cachedOrdIndex(set *model.ObjectSet, attr string, col Tokens) *index.Ords {
	key := cacheKey{set: weak.Make(set), attr: attr}
	ver := set.Version()
	blockCache.Lock()
	e, ok := blockCache.entries[key]
	if ok && e.version == ver && sameColumn(e.toks, col) {
		if e.ix != nil {
			ix := e.ix
			blockCache.Unlock()
			return ix
		}
		blockCache.Unlock()
		ix := buildOrdIndex(col)
		blockCache.Lock()
		// Re-check: the entry may have been evicted or refreshed meanwhile.
		if e2, ok := blockCache.entries[key]; ok && e2.version == ver && sameColumn(e2.toks, col) {
			if e2.ix == nil {
				e2.ix = ix
			} else {
				ix = e2.ix // another goroutine won the build race
			}
		}
		blockCache.Unlock()
		return ix
	}
	blockCache.Unlock()
	return buildOrdIndex(col)
}

// storeEntry inserts an entry, refreshing its age, sweeping entries whose
// sets were garbage-collected, and evicting the oldest entries beyond the
// cache limit. A runtime cleanup on the set also sweeps when the set is
// collected, so a process that goes quiet after a burst of matches over
// throwaway sets does not retain their columns until some future store.
func storeEntry(set *model.ObjectSet, key cacheKey, e *cacheEntry) {
	blockCache.Lock()
	defer blockCache.Unlock()
	fresh := true
	kept := blockCache.order[:0]
	for _, k := range blockCache.order {
		switch {
		case k == key:
			// Re-appended below as the newest entry.
			fresh = false
		case k.set.Value() == nil:
			delete(blockCache.entries, k)
		default:
			kept = append(kept, k)
		}
	}
	blockCache.order = append(kept, key)
	blockCache.entries[key] = e
	for len(blockCache.order) > cacheLimit {
		victim := blockCache.order[0]
		blockCache.order = blockCache.order[1:]
		delete(blockCache.entries, victim)
	}
	if fresh {
		// The cleanup must not capture set strongly (it would never run);
		// it receives the weak key part instead.
		runtime.AddCleanup(set, sweepDeadSet, key.set)
	}
}

// sweepDeadSet drops every cache entry of a collected set. It runs from
// the runtime's cleanup goroutine once the set is unreachable.
func sweepDeadSet(wp weak.Pointer[model.ObjectSet]) {
	blockCache.Lock()
	defer blockCache.Unlock()
	kept := blockCache.order[:0]
	for _, k := range blockCache.order {
		if k.set == wp {
			delete(blockCache.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	blockCache.order = kept
}

// buildOrdIndex indexes a dense token column under its ordinals.
func buildOrdIndex(col Tokens) *index.Ords {
	ix := index.NewOrds()
	for ord, toks := range col {
		if len(toks) > 0 {
			ix.Add(ord, toks)
		}
	}
	return ix
}

// sameColumn reports whether two token columns are the same slice (identity,
// not content): the cache only ever reuses an index for the exact column it
// was built from.
func sameColumn(a, b Tokens) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
