package block

// Per-set blocking cache: tokenized attribute columns and ordinal inverted
// indexes keyed by object-set identity.
//
// Token blocking used to rebuild its inverted index on every match, so a
// workflow running k matchers over the same inputs tokenized and indexed the
// same attribute column k times. This cache amortizes that work across
// matches: entries are keyed by (ObjectSet pointer, attribute) and validated
// against ObjectSet.Version, so any Add to the set invalidates its cached
// derivations on the next match. The index is the same incremental
// index.Ords structure the online resolution path (internal/live) keeps
// resident, so batch and online candidate generation share one
// implementation.
//
// The cache is bounded (oldest entry evicted first) and keys sets through
// weak pointers, so it never extends an object set's lifetime: entries of
// collected sets — throwaway Filter/Subset results matched once — are swept
// on the next store instead of pinning the set and its token columns until
// eviction.

import (
	"runtime"
	"sync"
	"weak"

	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sim"
)

// cacheLimit bounds the number of cached columns. A workflow touches a
// handful of (set, attribute) combinations; a serving process a few dozen.
const cacheLimit = 64

type cacheKey struct {
	set  weak.Pointer[model.ObjectSet]
	attr string
}

type cacheEntry struct {
	version uint64
	toks    Tokens      // interned token column; nil until first token use
	norm    []string    // normalized sort-key column; nil until first use
	ix      *index.Ords // built on first probe use, nil until then
}

var blockCache = struct {
	sync.Mutex
	entries map[cacheKey]*cacheEntry
	order   []cacheKey
}{entries: make(map[cacheKey]*cacheEntry)}

// cachedColumn returns the dense token column of the set's attribute,
// building and caching it when absent or stale.
func cachedColumn(set *model.ObjectSet, attr string) Tokens {
	key := cacheKey{set: weak.Make(set), attr: attr}
	ver := set.Version()
	blockCache.Lock()
	if e, ok := blockCache.entries[key]; ok {
		if e.version == ver && e.toks != nil {
			toks := e.toks
			blockCache.Unlock()
			blockTokenHits.Inc()
			return toks
		}
		if e.version != ver {
			blockInvalidations.Inc()
		}
	}
	blockCache.Unlock()

	blockTokenMisses.Inc()
	toks := tokenizeColumn(set, attr)
	upsertEntry(set, key, ver, func(e *cacheEntry) {
		if e.toks == nil {
			e.toks = toks
		} else {
			toks = e.toks // another goroutine won the build race
		}
	})
	return toks
}

// cachedNormColumn returns the normalized sort-key column of the set's
// attribute — entry i is sim.Normalize of instance i's value — building and
// caching it when absent or stale. Sorted-neighborhood blocking reads it so
// repeated matches sort precomputed keys instead of re-normalizing every
// raw string per match. It shares the token cache's entries: the same
// (set, attribute) pair may hold a token column, a key column, or both.
func cachedNormColumn(set *model.ObjectSet, attr string) []string {
	key := cacheKey{set: weak.Make(set), attr: attr}
	ver := set.Version()
	blockCache.Lock()
	if e, ok := blockCache.entries[key]; ok {
		if e.version == ver && e.norm != nil {
			norm := e.norm
			blockCache.Unlock()
			blockNormHits.Inc()
			return norm
		}
		if e.version != ver {
			blockInvalidations.Inc()
		}
	}
	blockCache.Unlock()

	blockNormMisses.Inc()
	norm := normalizeColumn(set, attr)
	upsertEntry(set, key, ver, func(e *cacheEntry) {
		if e.norm == nil {
			e.norm = norm
		} else {
			norm = e.norm
		}
	})
	return norm
}

// normalizeColumn builds the dense normalized-key column of one attribute.
func normalizeColumn(set *model.ObjectSet, attr string) []string {
	col := make([]string, 0, set.Len())
	set.Each(func(in *model.Instance) bool {
		col = append(col, sim.Normalize(in.Attr(attr)))
		return true
	})
	return col
}

// cachedOrdIndex returns the ordinal inverted index over the given token
// column. The index is cached only when col is the cache's own column for
// (set, attr) at the set's current version — callers probing a hand-built
// column get a transient index instead, so foreign columns can never poison
// the cache.
func cachedOrdIndex(set *model.ObjectSet, attr string, col Tokens) *index.Ords {
	key := cacheKey{set: weak.Make(set), attr: attr}
	ver := set.Version()
	blockCache.Lock()
	e, ok := blockCache.entries[key]
	if ok && e.version != ver {
		blockInvalidations.Inc()
	}
	if ok && e.version == ver && sameColumn(e.toks, col) {
		if e.ix != nil {
			ix := e.ix
			blockCache.Unlock()
			blockIndexHits.Inc()
			return ix
		}
		blockCache.Unlock()
		blockIndexMisses.Inc()
		ix := buildOrdIndex(col)
		blockCache.Lock()
		// Re-check: the entry may have been evicted or refreshed meanwhile.
		if e2, ok := blockCache.entries[key]; ok && e2.version == ver && sameColumn(e2.toks, col) {
			if e2.ix == nil {
				e2.ix = ix
			} else {
				ix = e2.ix // another goroutine won the build race
			}
		}
		blockCache.Unlock()
		return ix
	}
	blockCache.Unlock()
	blockIndexMisses.Inc()
	return buildOrdIndex(col)
}

// upsertEntry finds or creates the entry for (set, attr) at the set's
// current version and applies fill to it under the lock — a stale-version
// entry is replaced, a current one is merged, so the independently-lazy
// columns (tokens, normalized keys, the ordinal index) accumulate on one
// entry instead of clobbering each other. The store refreshes the entry's
// age, sweeps entries whose sets were garbage-collected, and evicts the
// oldest entries beyond the cache limit. A runtime cleanup on the set also
// sweeps when the set is collected, so a process that goes quiet after a
// burst of matches over throwaway sets does not retain their columns until
// some future store.
func upsertEntry(set *model.ObjectSet, key cacheKey, ver uint64, fill func(e *cacheEntry)) {
	blockCache.Lock()
	defer blockCache.Unlock()
	e, ok := blockCache.entries[key]
	if !ok || e.version != ver {
		e = &cacheEntry{version: ver}
	}
	fill(e)
	fresh := true
	kept := blockCache.order[:0]
	for _, k := range blockCache.order {
		switch {
		case k == key:
			// Re-appended below as the newest entry.
			fresh = false
		case k.set.Value() == nil:
			delete(blockCache.entries, k)
		default:
			kept = append(kept, k)
		}
	}
	blockCache.order = append(kept, key)
	blockCache.entries[key] = e
	for len(blockCache.order) > cacheLimit {
		victim := blockCache.order[0]
		blockCache.order = blockCache.order[1:]
		delete(blockCache.entries, victim)
	}
	if fresh {
		// The cleanup must not capture set strongly (it would never run);
		// it receives the weak key part instead.
		runtime.AddCleanup(set, sweepDeadSet, key.set)
	}
}

// sweepDeadSet drops every cache entry of a collected set. It runs from
// the runtime's cleanup goroutine once the set is unreachable.
func sweepDeadSet(wp weak.Pointer[model.ObjectSet]) {
	blockCache.Lock()
	defer blockCache.Unlock()
	kept := blockCache.order[:0]
	for _, k := range blockCache.order {
		if k.set == wp {
			delete(blockCache.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	blockCache.order = kept
}

// buildOrdIndex indexes a dense token column under its ordinals.
func buildOrdIndex(col Tokens) *index.Ords {
	ix := index.NewOrds()
	for ord, toks := range col {
		if len(toks) > 0 {
			ix.Add(ord, toks)
		}
	}
	return ix
}

// sameColumn reports whether two token columns are the same slice (identity,
// not content): the cache only ever reuses an index for the exact column it
// was built from.
func sameColumn(a, b Tokens) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
