package block

import "repro/internal/obs"

// Engine-side blocking-cache metrics, registered once at package init on
// the process-global registry. The cache serves three independently-lazy
// derivations per (set, attribute) entry — the token column, the normalized
// sort-key column, and the ordinal inverted index — so hits and misses are
// labeled by which derivation was asked for.
var (
	blockTokenHits = obs.Default.Counter("moma_blockcache_hits_total",
		"Blocking-cache hits by derivation.", `col="tokens"`)
	blockTokenMisses = obs.Default.Counter("moma_blockcache_misses_total",
		"Blocking-cache misses (derivation built) by derivation.", `col="tokens"`)
	blockNormHits = obs.Default.Counter("moma_blockcache_hits_total",
		"Blocking-cache hits by derivation.", `col="norm"`)
	blockNormMisses = obs.Default.Counter("moma_blockcache_misses_total",
		"Blocking-cache misses (derivation built) by derivation.", `col="norm"`)
	blockIndexHits = obs.Default.Counter("moma_blockcache_hits_total",
		"Blocking-cache hits by derivation.", `col="index"`)
	blockIndexMisses = obs.Default.Counter("moma_blockcache_misses_total",
		"Blocking-cache misses (derivation built) by derivation.", `col="index"`)
	blockInvalidations = obs.Default.Counter("moma_blockcache_invalidations_total",
		"Blocking-cache entries found stale because the object set's version moved.")
)

func init() {
	obs.Default.GaugeFunc("moma_blockcache_entries",
		"Resident blocking-cache entries.", func() float64 {
			blockCache.Lock()
			defer blockCache.Unlock()
			return float64(len(blockCache.entries))
		})
}
