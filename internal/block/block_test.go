package block

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
)

func blockFixture() (*model.ObjectSet, *model.ObjectSet) {
	a := model.NewObjectSet(dblpPub)
	a.AddNew("a1", map[string]string{"title": "generic schema matching with cupid"})
	a.AddNew("a2", map[string]string{"title": "a formal perspective on the view selection problem"})
	a.AddNew("a3", map[string]string{"title": "data integration"})
	b := model.NewObjectSet(acmPub)
	b.AddNew("b1", map[string]string{"title": "generic schema matching with cupid"})
	b.AddNew("b2", map[string]string{"title": "the view selection problem"})
	b.AddNew("b3", map[string]string{"title": "completely unrelated entry"})
	return a, b
}

// pairIDs projects a pair set onto ids for membership checks.
func pairIDs(pairs []Pair) map[idPair]bool {
	set := make(map[idPair]bool, len(pairs))
	for _, p := range pairs {
		set[idPair{p.A, p.B}] = true
	}
	return set
}

func TestCrossProduct(t *testing.T) {
	a, b := blockFixture()
	pairs := CrossProduct{}.Pairs(a, b)
	if len(pairs) != 9 {
		t.Fatalf("pairs = %d, want 9", len(pairs))
	}
	if pairs[0] != (Pair{A: "a1", B: "b1", OrdA: 0, OrdB: 0}) {
		t.Errorf("first pair = %+v", pairs[0])
	}
	if pairs[5] != (Pair{A: "a2", B: "b3", OrdA: 1, OrdB: 2}) {
		t.Errorf("sixth pair = %+v", pairs[5])
	}
}

// TestPairOrdinals pins the ordinal contract of every built-in blocker:
// each emitted pair's OrdA/OrdB are the IndexOf ordinals of its ids.
func TestPairOrdinals(t *testing.T) {
	a, b := blockFixture()
	blockers := []Blocker{
		CrossProduct{},
		TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1},
		SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 4},
	}
	for _, bl := range blockers {
		op, ok := bl.(OrdinalPairer)
		if !ok || !op.PairsCarryOrdinals() {
			t.Fatalf("%s must be an OrdinalPairer", bl)
		}
		for _, p := range bl.Pairs(a, b) {
			if p.OrdA != a.IndexOf(p.A) || p.OrdB != b.IndexOf(p.B) {
				t.Errorf("%s: pair %+v ordinals disagree with IndexOf (%d, %d)",
					bl, p, a.IndexOf(p.A), b.IndexOf(p.B))
			}
		}
	}
}

func TestTokenBlockingFindsSharedTokens(t *testing.T) {
	a, b := blockFixture()
	pairs := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 2}.Pairs(a, b)
	set := pairIDs(pairs)
	if !set[idPair{"a1", "b1"}] {
		t.Error("identical titles must be candidates")
	}
	if !set[idPair{"a2", "b2"}] {
		t.Error("titles sharing 'view selection problem' must be candidates")
	}
	if set[idPair{"a3", "b3"}] {
		t.Error("unrelated titles must not be candidates")
	}
	if len(pairs) >= 9 {
		t.Errorf("token blocking should prune the cross product, got %d pairs", len(pairs))
	}
}

func TestTokenBlockingMinSharedClamp(t *testing.T) {
	a, b := blockFixture()
	got := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 0}.Pairs(a, b)
	want := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1}.Pairs(a, b)
	if !reflect.DeepEqual(got, want) {
		t.Error("MinShared<1 should behave like 1")
	}
}

func TestTokenBlockingMissingAttr(t *testing.T) {
	a := model.NewObjectSet(dblpPub)
	a.AddNew("a1", nil)
	b := model.NewObjectSet(acmPub)
	b.AddNew("b1", map[string]string{"title": "x"})
	if got := (TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1}).Pairs(a, b); len(got) != 0 {
		t.Errorf("instances without the attribute yield no candidates, got %v", got)
	}
}

func TestSortedNeighborhood(t *testing.T) {
	a, b := blockFixture()
	pairs := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 3}.Pairs(a, b)
	for _, p := range pairs {
		// Orientation: A side must come from set a.
		if p.A[0] != 'a' || p.B[0] != 'b' {
			t.Errorf("pair orientation wrong: %v", p)
		}
	}
	if !pairIDs(pairs)[idPair{"a1", "b1"}] {
		t.Error("adjacent identical titles must pair within the window")
	}
}

func TestSortedNeighborhoodWindowClamp(t *testing.T) {
	a, b := blockFixture()
	got := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 0}.Pairs(a, b)
	want := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 2}.Pairs(a, b)
	if !reflect.DeepEqual(got, want) {
		t.Error("Window<2 should behave like 2")
	}
}

func TestSortedNeighborhoodFullWindowIsCrossProduct(t *testing.T) {
	a, b := blockFixture()
	pairs := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 6}.Pairs(a, b)
	if len(Dedup(pairs)) != 9 {
		t.Errorf("window covering everything should produce all 9 pairs, got %d", len(pairs))
	}
}

func TestDedup(t *testing.T) {
	in := []Pair{{A: "a", B: "b"}, {A: "a", B: "b", OrdA: 7}, {A: "c", B: "d"}}
	got := Dedup(in)
	if len(got) != 2 || got[0].A != "a" || got[0].B != "b" || got[1].A != "c" || got[1].B != "d" {
		t.Errorf("Dedup = %v", got)
	}
}

func TestReductionRatio(t *testing.T) {
	a, b := blockFixture()
	if r := ReductionRatio(make([]Pair, 3), a, b); r < 0.66 || r > 0.67 {
		t.Errorf("reduction = %v, want ~2/3", r)
	}
	if r := ReductionRatio(make([]Pair, 99), a, b); r != 0 {
		t.Errorf("overfull candidate set should clamp to 0, got %v", r)
	}
	empty := model.NewObjectSet(dblpPub)
	if ReductionRatio(nil, empty, empty) != 0 {
		t.Error("empty inputs should be 0")
	}
}

func TestPairCompleteness(t *testing.T) {
	pairs := []Pair{{A: "a1", B: "b1"}, {A: "a2", B: "b2"}}
	truth := []Pair{{A: "a1", B: "b1"}, {A: "a3", B: "b3"}}
	if pc := PairCompleteness(pairs, truth); pc != 0.5 {
		t.Errorf("completeness = %v, want 0.5", pc)
	}
	if PairCompleteness(pairs, nil) != 1 {
		t.Error("empty truth should be 1")
	}
}

func TestBlockerStrings(t *testing.T) {
	if (CrossProduct{}).String() != "cross-product" {
		t.Error("cross product name")
	}
	if s := (TokenBlocking{AttrA: "t", AttrB: "t", MinShared: 2}).String(); s == "" {
		t.Error("token blocking name")
	}
	if s := (SortedNeighborhood{AttrA: "t", AttrB: "t", Window: 5}).String(); s == "" {
		t.Error("sorted neighborhood name")
	}
}

func TestTokenBlockingRecallVsCross(t *testing.T) {
	// Token blocking with MinShared=1 must retain every cross-product pair
	// that shares at least one token — a recall guarantee.
	a, b := blockFixture()
	tb := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1}.Pairs(a, b)
	set := pairIDs(tb)
	if !set[idPair{"a2", "b2"}] || !set[idPair{"a1", "b1"}] {
		t.Error("token blocking dropped a sharing pair")
	}
}

// TestBlockCacheInvalidation proves the per-set token/index cache serves the
// same column while a set is unchanged and rebuilds it after an Add.
func TestBlockCacheInvalidation(t *testing.T) {
	a, b := blockFixture()
	tb := TokenBlocking{AttrA: "title", AttrB: "title", MinShared: 1}
	_, col1 := tb.TokenizeColumns(a, b)
	_, col2 := tb.TokenizeColumns(a, b)
	if !sameColumn(col1, col2) {
		t.Fatal("unchanged set must be served the cached column")
	}
	before := len(tb.Pairs(a, b))

	b.AddNew("b4", map[string]string{"title": "the view selection problem again"})
	_, col3 := tb.TokenizeColumns(a, b)
	if sameColumn(col2, col3) {
		t.Fatal("Add must invalidate the cached column")
	}
	if len(col3) != b.Len() {
		t.Fatalf("rebuilt column has %d entries, want %d", len(col3), b.Len())
	}
	after := tb.Pairs(a, b)
	if len(after) <= before {
		t.Fatalf("new instance must produce new candidates: %d -> %d", before, len(after))
	}
	if !pairIDs(after)[idPair{"a2", "b4"}] {
		t.Error("candidates must include the added instance")
	}
}
