package block

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func normCacheSet(n int) *model.ObjectSet {
	set := model.NewObjectSet(model.LDS{Source: "NC", Type: model.Publication})
	for i := 0; i < n; i++ {
		set.AddNew(model.ID(fmt.Sprintf("n%d", i)), map[string]string{
			"title": fmt.Sprintf("Normalized KEY columns %d", i),
		})
	}
	return set
}

func TestCachedNormColumn(t *testing.T) {
	set := normCacheSet(6)
	c1 := cachedNormColumn(set, "title")
	if len(c1) != set.Len() {
		t.Fatalf("column has %d entries for a %d-instance set", len(c1), set.Len())
	}
	for i, key := range c1 {
		if want := sim.Normalize(set.At(i).Attr("title")); key != want {
			t.Fatalf("entry %d = %q, want %q", i, key, want)
		}
	}
	c2 := cachedNormColumn(set, "title")
	if &c1[0] != &c2[0] {
		t.Fatal("second lookup must serve the cached slice")
	}

	// Token and key columns coexist on one entry without clobbering.
	toks := cachedColumn(set, "title")
	c3 := cachedNormColumn(set, "title")
	toks2 := cachedColumn(set, "title")
	if &c1[0] != &c3[0] {
		t.Fatal("building the token column must not evict the key column")
	}
	if len(toks) == 0 || &toks[0] != &toks2[0] {
		t.Fatal("building the key column must not evict the token column")
	}

	// Touch invalidates.
	set.At(0).SetAttr("title", "A Different Value")
	set.Touch()
	c4 := cachedNormColumn(set, "title")
	if c4[0] != sim.Normalize("A Different Value") {
		t.Fatalf("stale key served after Touch: %q", c4[0])
	}
}

// TestSortedNeighborhoodCachedKeysMatch pins that the cached-key path emits
// exactly the sequence the inline-normalizing implementation produced.
func TestSortedNeighborhoodCachedKeysMatch(t *testing.T) {
	a := model.NewObjectSet(model.LDS{Source: "A", Type: model.Publication})
	b := model.NewObjectSet(model.LDS{Source: "B", Type: model.Publication})
	for i := 0; i < 12; i++ {
		attrs := map[string]string{"title": fmt.Sprintf("shared stem %c tail", 'a'+i%7)}
		if i%5 == 0 {
			attrs = map[string]string{} // attribute-less instances are skipped
		}
		a.AddNew(model.ID(fmt.Sprintf("a%d", i)), attrs)
		b.AddNew(model.ID(fmt.Sprintf("b%d", i)), attrs)
	}
	sn := SortedNeighborhood{AttrA: "title", AttrB: "title", Window: 4}
	first := sn.Pairs(a, b)  // cold: builds the key columns
	second := sn.Pairs(a, b) // warm: served from the cache
	if len(first) == 0 {
		t.Fatal("expected candidates")
	}
	if len(first) != len(second) {
		t.Fatalf("warm pass emitted %d pairs, cold %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, first[i], second[i])
		}
	}
}
