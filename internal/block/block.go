// Package block provides candidate-pair generation (blocking) for attribute
// matchers. Comparing every instance of source A with every instance of
// source B is quadratic; blocking restricts the comparisons to likely pairs
// while preserving recall.
//
// Three strategies are provided: the exact cross product (small inputs),
// token blocking over an inverted index (pairs must share at least k tokens
// of the blocking attribute), and the classic sorted-neighborhood method
// (sort both inputs by a key and slide a window). The experiment harness
// uses token blocking for the large Google Scholar matching tasks, mirroring
// the paper's query-based candidate generation.
package block

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sim"
)

// Pair is a candidate pair of instance ids (A from the domain input, B from
// the range input).
type Pair struct {
	A, B model.ID
}

// Blocker generates candidate pairs between two object sets.
type Blocker interface {
	// Pairs returns deduplicated candidate pairs in deterministic order.
	Pairs(a, b *model.ObjectSet) []Pair
	// PairsEach streams the exact sequence Pairs returns to yield, one pair
	// at a time, without materializing the full candidate set. Iteration
	// stops early when yield returns false. A candidate set can be orders of
	// magnitude larger than the kept correspondences, so streaming keeps the
	// match core's memory proportional to the output, not to the candidates.
	PairsEach(a, b *model.ObjectSet, yield func(Pair) bool)
	// String names the strategy for reports.
	String() string
}

// Collect drains a PairsEach stream into a slice — the Pairs implementation
// shared by the built-in blockers.
func Collect(stream func(yield func(Pair) bool)) []Pair {
	var out []Pair
	stream(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// CrossProduct compares every instance of a with every instance of b.
type CrossProduct struct{}

// Pairs implements Blocker.
func (c CrossProduct) Pairs(a, b *model.ObjectSet) []Pair {
	out := make([]Pair, 0, a.Len()*b.Len())
	c.PairsEach(a, b, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// PairsEach implements Blocker.
func (CrossProduct) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	stopped := false
	a.Each(func(ina *model.Instance) bool {
		b.Each(func(inb *model.Instance) bool {
			if !yield(Pair{A: ina.ID, B: inb.ID}) {
				stopped = true
			}
			return !stopped
		})
		return !stopped
	})
}

func (CrossProduct) String() string { return "cross-product" }

// TokenBlocking pairs instances sharing at least MinShared tokens of the
// blocking attributes. It builds an inverted index over b and probes it
// with a's attribute values.
type TokenBlocking struct {
	AttrA     string
	AttrB     string
	MinShared int
}

// TokenStreamer is a Blocker that tokenizes attribute columns while
// generating candidates and can share that work with callers — the match
// layer's profile build reuses the columns instead of re-tokenizing the
// same values. TokenBlocking implements it; decorators wrapping a
// token-based blocker can forward these methods to keep the reuse path.
type TokenStreamer interface {
	Blocker
	// BlockingAttrs names the attributes tokenized on the two inputs.
	BlockingAttrs() (attrA, attrB string)
	// TokenizeColumns tokenizes the blocking attribute of both inputs.
	TokenizeColumns(a, b *model.ObjectSet) (colA, colB Tokens)
	// PairsEachTokens streams the PairsEach sequence over pre-tokenized
	// columns from TokenizeColumns.
	PairsEachTokens(a, b *model.ObjectSet, colA, colB Tokens, yield func(Pair) bool)
}

var _ TokenStreamer = TokenBlocking{}

// Tokens caches the sim.Tokens output of one blocking-attribute column,
// keyed by instance id. Only instances with a non-empty attribute value have
// an entry. The slices are shared, not copied; consumers must treat them as
// read-only.
type Tokens map[model.ID][]string

// TokenizeColumns tokenizes the blocking attribute of both inputs exactly
// once with the canonical sim.Tokens. The returned columns drive
// PairsEachTokens and can be handed to downstream consumers — the
// similarity-profile build reuses them instead of re-tokenizing the same
// attribute values.
func (t TokenBlocking) TokenizeColumns(a, b *model.ObjectSet) (colA, colB Tokens) {
	colA = make(Tokens, a.Len())
	a.Each(func(in *model.Instance) bool {
		if v := in.Attr(t.AttrA); v != "" {
			colA[in.ID] = sim.Tokens(v)
		}
		return true
	})
	colB = make(Tokens, b.Len())
	b.Each(func(in *model.Instance) bool {
		if v := in.Attr(t.AttrB); v != "" {
			colB[in.ID] = sim.Tokens(v)
		}
		return true
	})
	return colA, colB
}

// Pairs implements Blocker.
func (t TokenBlocking) Pairs(a, b *model.ObjectSet) []Pair {
	return Collect(func(yield func(Pair) bool) { t.PairsEach(a, b, yield) })
}

// PairsEach implements Blocker.
func (t TokenBlocking) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	colA, colB := t.TokenizeColumns(a, b)
	t.PairsEachTokens(a, b, colA, colB, yield)
}

// PairsEachTokens streams candidates over pre-tokenized columns from
// TokenizeColumns, building the inverted index over colB and probing it with
// colA. Callers that need the token columns for their own work (profile
// builds) use this entry point to tokenize each value exactly once overall.
func (t TokenBlocking) PairsEachTokens(a, b *model.ObjectSet, colA, colB Tokens, yield func(Pair) bool) {
	minShared := t.MinShared
	if minShared < 1 {
		minShared = 1
	}
	ix := index.New()
	b.Each(func(in *model.Instance) bool {
		if toks, ok := colB[in.ID]; ok {
			ix.AddTokens(in.ID, toks)
		}
		return true
	})
	ix.Freeze()
	stopped := false
	a.Each(func(in *model.Instance) bool {
		toks, ok := colA[in.ID]
		if !ok {
			return true
		}
		ix.EachCandidateSharingTokens(toks, minShared, func(idb model.ID) bool {
			if !yield(Pair{A: in.ID, B: idb}) {
				stopped = true
			}
			return !stopped
		})
		return !stopped
	})
}

// BlockingAttrs implements TokenStreamer.
func (t TokenBlocking) BlockingAttrs() (string, string) { return t.AttrA, t.AttrB }

func (t TokenBlocking) String() string {
	return fmt.Sprintf("token-blocking(%s~%s, shared>=%d)", t.AttrA, t.AttrB, t.MinShared)
}

// SortedNeighborhood sorts the union of both inputs by a normalized key
// derived from the blocking attributes and pairs instances from different
// inputs within a sliding window of the given size.
type SortedNeighborhood struct {
	AttrA  string
	AttrB  string
	Window int
}

// Pairs implements Blocker.
func (s SortedNeighborhood) Pairs(a, b *model.ObjectSet) []Pair {
	return Collect(func(yield func(Pair) bool) { s.PairsEach(a, b, yield) })
}

// PairsEach implements Blocker. Instances whose blocking attribute is
// missing or normalizes to the empty string are skipped entirely: an empty
// sort key carries no evidence of similarity, yet it would cluster all
// attribute-less instances at the front of the sort and pair them with each
// other inside the window, producing spurious candidates.
func (s SortedNeighborhood) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	w := s.Window
	if w < 2 {
		w = 2
	}
	type entry struct {
		key  string
		id   model.ID
		from int // 0 = a, 1 = b
	}
	entries := make([]entry, 0, a.Len()+b.Len())
	a.Each(func(in *model.Instance) bool {
		if key := sim.Normalize(in.Attr(s.AttrA)); key != "" {
			entries = append(entries, entry{key: key, id: in.ID, from: 0})
		}
		return true
	})
	b.Each(func(in *model.Instance) bool {
		if key := sim.Normalize(in.Attr(s.AttrB)); key != "" {
			entries = append(entries, entry{key: key, id: in.ID, from: 1})
		}
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].from != entries[j].from {
			return entries[i].from < entries[j].from
		}
		return entries[i].id < entries[j].id
	})
	// No dedup set is needed: every instance contributes exactly one entry,
	// so a cross-set pair corresponds to one position pair (x, y) and is
	// emitted only at anchor x — the stream is duplicate-free by
	// construction and holds no per-pair state.
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			if entries[i].from == entries[j].from {
				continue
			}
			p := Pair{A: entries[i].id, B: entries[j].id}
			if entries[i].from == 1 {
				p = Pair{A: entries[j].id, B: entries[i].id}
			}
			if !yield(p) {
				return
			}
		}
	}
}

func (s SortedNeighborhood) String() string {
	return fmt.Sprintf("sorted-neighborhood(%s~%s, w=%d)", s.AttrA, s.AttrB, s.Window)
}

// Dedup removes duplicate pairs preserving first occurrence.
func Dedup(pairs []Pair) []Pair {
	seen := make(map[Pair]bool, len(pairs))
	out := pairs[:0:0]
	for _, p := range pairs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// ReductionRatio reports how much of the cross product a candidate set
// avoids: 1 - |pairs| / (|a|*|b|). Zero-sized inputs give 0.
func ReductionRatio(pairs []Pair, a, b *model.ObjectSet) float64 {
	total := a.Len() * b.Len()
	if total == 0 {
		return 0
	}
	r := 1 - float64(len(pairs))/float64(total)
	if r < 0 {
		return 0
	}
	return r
}

// PairCompleteness reports the fraction of true pairs retained by the
// candidate set, given the ground-truth pairs. It is the blocking-quality
// counterpart of recall.
func PairCompleteness(pairs []Pair, truth []Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		set[p] = true
	}
	hit := 0
	for _, p := range truth {
		if set[p] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
