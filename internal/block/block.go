// Package block provides candidate-pair generation (blocking) for attribute
// matchers. Comparing every instance of source A with every instance of
// source B is quadratic; blocking restricts the comparisons to likely pairs
// while preserving recall.
//
// Three strategies are provided: the exact cross product (small inputs),
// token blocking over an inverted index (pairs must share at least k tokens
// of the blocking attribute), and the classic sorted-neighborhood method
// (sort both inputs by a key and slide a window). The experiment harness
// uses token blocking for the large Google Scholar matching tasks, mirroring
// the paper's query-based candidate generation.
package block

import (
	"fmt"
	"sort"

	"repro/internal/index"
	"repro/internal/model"
	"repro/internal/sim"
)

// Pair is a candidate pair of instance ids (A from the domain input, B from
// the range input).
type Pair struct {
	A, B model.ID
}

// Blocker generates candidate pairs between two object sets.
type Blocker interface {
	// Pairs returns deduplicated candidate pairs in deterministic order.
	Pairs(a, b *model.ObjectSet) []Pair
	// String names the strategy for reports.
	String() string
}

// CrossProduct compares every instance of a with every instance of b.
type CrossProduct struct{}

// Pairs implements Blocker.
func (CrossProduct) Pairs(a, b *model.ObjectSet) []Pair {
	out := make([]Pair, 0, a.Len()*b.Len())
	for _, ida := range a.IDs() {
		for _, idb := range b.IDs() {
			out = append(out, Pair{A: ida, B: idb})
		}
	}
	return out
}

func (CrossProduct) String() string { return "cross-product" }

// TokenBlocking pairs instances sharing at least MinShared tokens of the
// blocking attributes. It builds an inverted index over b and probes it
// with a's attribute values.
type TokenBlocking struct {
	AttrA     string
	AttrB     string
	MinShared int
}

// Pairs implements Blocker.
func (t TokenBlocking) Pairs(a, b *model.ObjectSet) []Pair {
	minShared := t.MinShared
	if minShared < 1 {
		minShared = 1
	}
	// Tokenize each attribute value exactly once with the canonical
	// sim.Tokens — the same tokenization the similarity profiles cache —
	// and feed the token slices straight to the inverted index.
	ix := index.New()
	b.Each(func(in *model.Instance) bool {
		if v := in.Attr(t.AttrB); v != "" {
			ix.AddTokens(in.ID, sim.Tokens(v))
		}
		return true
	})
	ix.Freeze()
	var out []Pair
	a.Each(func(in *model.Instance) bool {
		v := in.Attr(t.AttrA)
		if v == "" {
			return true
		}
		for _, idb := range ix.CandidatesSharingTokens(sim.Tokens(v), minShared) {
			out = append(out, Pair{A: in.ID, B: idb})
		}
		return true
	})
	return out
}

func (t TokenBlocking) String() string {
	return fmt.Sprintf("token-blocking(%s~%s, shared>=%d)", t.AttrA, t.AttrB, t.MinShared)
}

// SortedNeighborhood sorts the union of both inputs by a normalized key
// derived from the blocking attributes and pairs instances from different
// inputs within a sliding window of the given size.
type SortedNeighborhood struct {
	AttrA  string
	AttrB  string
	Window int
}

// Pairs implements Blocker.
func (s SortedNeighborhood) Pairs(a, b *model.ObjectSet) []Pair {
	w := s.Window
	if w < 2 {
		w = 2
	}
	type entry struct {
		key  string
		id   model.ID
		from int // 0 = a, 1 = b
	}
	entries := make([]entry, 0, a.Len()+b.Len())
	a.Each(func(in *model.Instance) bool {
		entries = append(entries, entry{key: sim.Normalize(in.Attr(s.AttrA)), id: in.ID, from: 0})
		return true
	})
	b.Each(func(in *model.Instance) bool {
		entries = append(entries, entry{key: sim.Normalize(in.Attr(s.AttrB)), id: in.ID, from: 1})
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].from != entries[j].from {
			return entries[i].from < entries[j].from
		}
		return entries[i].id < entries[j].id
	})
	seen := make(map[Pair]bool)
	var out []Pair
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			if entries[i].from == entries[j].from {
				continue
			}
			p := Pair{A: entries[i].id, B: entries[j].id}
			if entries[i].from == 1 {
				p = Pair{A: entries[j].id, B: entries[i].id}
			}
			if !seen[p] {
				seen[p] = true
				out = append(out, p)
			}
		}
	}
	return out
}

func (s SortedNeighborhood) String() string {
	return fmt.Sprintf("sorted-neighborhood(%s~%s, w=%d)", s.AttrA, s.AttrB, s.Window)
}

// Dedup removes duplicate pairs preserving first occurrence.
func Dedup(pairs []Pair) []Pair {
	seen := make(map[Pair]bool, len(pairs))
	out := pairs[:0:0]
	for _, p := range pairs {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// ReductionRatio reports how much of the cross product a candidate set
// avoids: 1 - |pairs| / (|a|*|b|). Zero-sized inputs give 0.
func ReductionRatio(pairs []Pair, a, b *model.ObjectSet) float64 {
	total := a.Len() * b.Len()
	if total == 0 {
		return 0
	}
	r := 1 - float64(len(pairs))/float64(total)
	if r < 0 {
		return 0
	}
	return r
}

// PairCompleteness reports the fraction of true pairs retained by the
// candidate set, given the ground-truth pairs. It is the blocking-quality
// counterpart of recall.
func PairCompleteness(pairs []Pair, truth []Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		set[p] = true
	}
	hit := 0
	for _, p := range truth {
		if set[p] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
