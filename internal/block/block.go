// Package block provides candidate-pair generation (blocking) for attribute
// matchers. Comparing every instance of source A with every instance of
// source B is quadratic; blocking restricts the comparisons to likely pairs
// while preserving recall.
//
// Three strategies are provided: the exact cross product (small inputs),
// token blocking over an inverted index (pairs must share at least k tokens
// of the blocking attribute), and the classic sorted-neighborhood method
// (sort both inputs by a key and slide a window). The experiment harness
// uses token blocking for the large Google Scholar matching tasks, mirroring
// the paper's query-based candidate generation.
package block

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/sim"
)

// Pair is a candidate pair of instance ids (A from the domain input, B from
// the range input). OrdA and OrdB carry the insertion-order ordinals of A
// and B in the two match inputs (model.ObjectSet.IndexOf) so the scoring
// layer can read its dense profile columns by array index without a per-pair
// map lookup. The built-in blockers always fill them; hand-built pairs leave
// them zero, which is a valid-looking but wrong ordinal — consumers must
// trust ordinals only when the producing blocker implements OrdinalPairer.
type Pair struct {
	A, B       model.ID
	OrdA, OrdB int
}

// Blocker generates candidate pairs between two object sets.
type Blocker interface {
	// Pairs returns deduplicated candidate pairs in deterministic order.
	Pairs(a, b *model.ObjectSet) []Pair
	// PairsEach streams the exact sequence Pairs returns to yield, one pair
	// at a time, without materializing the full candidate set. Iteration
	// stops early when yield returns false. A candidate set can be orders of
	// magnitude larger than the kept correspondences, so streaming keeps the
	// match core's memory proportional to the output, not to the candidates.
	PairsEach(a, b *model.ObjectSet, yield func(Pair) bool)
	// String names the strategy for reports.
	String() string
}

// OrdinalPairer marks blockers whose emitted pairs carry valid OrdA/OrdB
// ordinals into the match inputs. All built-in blockers do; third-party
// blockers that construct Pair values by hand typically do not, and the
// match layer falls back to id lookups for them.
type OrdinalPairer interface {
	Blocker
	// PairsCarryOrdinals reports whether every emitted Pair has OrdA/OrdB
	// set to the instances' ObjectSet ordinals.
	PairsCarryOrdinals() bool
}

// Collect drains a PairsEach stream into a slice — the Pairs implementation
// shared by the built-in blockers.
func Collect(stream func(yield func(Pair) bool)) []Pair {
	var out []Pair
	stream(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// CrossProduct compares every instance of a with every instance of b.
type CrossProduct struct{}

// Pairs implements Blocker.
func (c CrossProduct) Pairs(a, b *model.ObjectSet) []Pair {
	out := make([]Pair, 0, a.Len()*b.Len())
	c.PairsEach(a, b, func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// PairsEach implements Blocker.
func (CrossProduct) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	stopped := false
	ordA := 0
	a.Each(func(ina *model.Instance) bool {
		ordB := 0
		b.Each(func(inb *model.Instance) bool {
			if !yield(Pair{A: ina.ID, B: inb.ID, OrdA: ordA, OrdB: ordB}) {
				stopped = true
			}
			ordB++
			return !stopped
		})
		ordA++
		return !stopped
	})
}

// PairsCarryOrdinals implements OrdinalPairer.
func (CrossProduct) PairsCarryOrdinals() bool { return true }

func (CrossProduct) String() string { return "cross-product" }

// TokenBlocking pairs instances sharing at least MinShared tokens of the
// blocking attributes. It builds an inverted index over b and probes it
// with a's attribute values.
type TokenBlocking struct {
	AttrA     string
	AttrB     string
	MinShared int
}

// TokenStreamer is a Blocker that tokenizes attribute columns while
// generating candidates and can share that work with callers — the match
// layer's profile build reuses the columns instead of re-tokenizing the
// same values. TokenBlocking implements it; decorators wrapping a
// token-based blocker can forward these methods to keep the reuse path.
type TokenStreamer interface {
	Blocker
	// BlockingAttrs names the attributes tokenized on the two inputs.
	BlockingAttrs() (attrA, attrB string)
	// TokenizeColumns tokenizes the blocking attribute of both inputs.
	TokenizeColumns(a, b *model.ObjectSet) (colA, colB Tokens)
	// PairsEachTokens streams the PairsEach sequence over pre-tokenized
	// columns from TokenizeColumns.
	PairsEachTokens(a, b *model.ObjectSet, colA, colB Tokens, yield func(Pair) bool)
}

var _ TokenStreamer = TokenBlocking{}
var _ OrdinalPairer = TokenBlocking{}

// Tokens caches the tokenization of one blocking-attribute column as a
// dense slice aligned with the producing ObjectSet's insertion ordinals
// (model.ObjectSet.IndexOf). Each entry holds the value's sim.Tokens
// sequence interned in the global sim.Terms dictionary — term IDs in token
// order, duplicates preserved — so the blocking index, candidate probes and
// the similarity-profile build all consume integers. Instances whose
// attribute is missing or empty have a nil entry. The slices are shared,
// not copied; consumers must treat them as read-only.
type Tokens [][]uint32

// tokenizeColumn builds the dense interned token column of one blocking
// attribute.
func tokenizeColumn(set *model.ObjectSet, attr string) Tokens {
	col := make(Tokens, 0, set.Len())
	set.Each(func(in *model.Instance) bool {
		var toks []uint32
		if v := in.Attr(attr); v != "" {
			toks = sim.Terms.TokenIDs(v)
		}
		col = append(col, toks)
		return true
	})
	return col
}

// TokenizeColumns returns the blocking-attribute token columns of both
// inputs, tokenized with the canonical sim.Tokens at most once per object-set
// version: columns are served from a process-wide cache keyed by object-set
// identity (see cache.go), so matchers sharing a blocker — and the online
// resolution path sharing the same structures — amortize the tokenization
// across matches. The returned columns drive PairsEachTokens and can be
// handed to downstream consumers — the similarity-profile build reuses them
// instead of re-tokenizing the same attribute values.
func (t TokenBlocking) TokenizeColumns(a, b *model.ObjectSet) (colA, colB Tokens) {
	return cachedColumn(a, t.AttrA), cachedColumn(b, t.AttrB)
}

// Pairs implements Blocker.
func (t TokenBlocking) Pairs(a, b *model.ObjectSet) []Pair {
	return Collect(func(yield func(Pair) bool) { t.PairsEach(a, b, yield) })
}

// PairsEach implements Blocker.
func (t TokenBlocking) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	colA, colB := t.TokenizeColumns(a, b)
	t.PairsEachTokens(a, b, colA, colB, yield)
}

// PairsEachTokens streams candidates over pre-tokenized columns from
// TokenizeColumns, probing an ordinal inverted index over colB with colA.
// The index is cached per (object set, attribute, version) — see cache.go —
// so matchers sharing a blocking attribute build it once, not once per
// match. Candidates stream in ascending B-ordinal order (the range set's
// insertion order) within each A instance. Both columns must be
// ordinal-aligned with their sets (TokenizeColumns output).
func (t TokenBlocking) PairsEachTokens(a, b *model.ObjectSet, colA, colB Tokens, yield func(Pair) bool) {
	minShared := t.MinShared
	if minShared < 1 {
		minShared = 1
	}
	ix := cachedOrdIndex(b, t.AttrB, colB)
	stopped := false
	for ordA := 0; ordA < len(colA) && !stopped; ordA++ {
		toks := colA[ordA]
		if len(toks) == 0 {
			continue
		}
		ida := a.IDAt(ordA)
		ix.EachCandidate(toks, minShared, func(ordB int) bool {
			if !yield(Pair{A: ida, B: b.IDAt(ordB), OrdA: ordA, OrdB: ordB}) {
				stopped = true
			}
			return !stopped
		})
	}
}

// BlockingAttrs implements TokenStreamer.
func (t TokenBlocking) BlockingAttrs() (string, string) { return t.AttrA, t.AttrB }

// PairsCarryOrdinals implements OrdinalPairer.
func (TokenBlocking) PairsCarryOrdinals() bool { return true }

func (t TokenBlocking) String() string {
	return fmt.Sprintf("token-blocking(%s~%s, shared>=%d)", t.AttrA, t.AttrB, t.MinShared)
}

// SortedNeighborhood sorts the union of both inputs by a normalized key
// derived from the blocking attributes and pairs instances from different
// inputs within a sliding window of the given size.
type SortedNeighborhood struct {
	AttrA  string
	AttrB  string
	Window int
}

// Pairs implements Blocker.
func (s SortedNeighborhood) Pairs(a, b *model.ObjectSet) []Pair {
	return Collect(func(yield func(Pair) bool) { s.PairsEach(a, b, yield) })
}

// PairsEach implements Blocker. Instances whose blocking attribute is
// missing or normalizes to the empty string are skipped entirely: an empty
// sort key carries no evidence of similarity, yet it would cluster all
// attribute-less instances at the front of the sort and pair them with each
// other inside the window, producing spurious candidates.
//
// Sort keys come from the per-set normalized-key columns cached by object
// set, attribute and version (see cache.go): repeated matches over the same
// inputs — a workflow running several sorted-neighborhood matchers, or
// re-matching a stored set — sort precomputed keys instead of
// re-normalizing every raw attribute value per match.
func (s SortedNeighborhood) PairsEach(a, b *model.ObjectSet, yield func(Pair) bool) {
	w := s.Window
	if w < 2 {
		w = 2
	}
	type entry struct {
		key  string
		id   model.ID
		ord  int // ObjectSet ordinal within its input
		from int // 0 = a, 1 = b
	}
	keysA := cachedNormColumn(a, s.AttrA)
	keysB := cachedNormColumn(b, s.AttrB)
	entries := make([]entry, 0, len(keysA)+len(keysB))
	for ord, key := range keysA {
		if key != "" {
			entries = append(entries, entry{key: key, id: a.IDAt(ord), ord: ord, from: 0})
		}
	}
	for ord, key := range keysB {
		if key != "" {
			entries = append(entries, entry{key: key, id: b.IDAt(ord), ord: ord, from: 1})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		if entries[i].from != entries[j].from {
			return entries[i].from < entries[j].from
		}
		return entries[i].id < entries[j].id
	})
	// No dedup set is needed: every instance contributes exactly one entry,
	// so a cross-set pair corresponds to one position pair (x, y) and is
	// emitted only at anchor x — the stream is duplicate-free by
	// construction and holds no per-pair state.
	for i := range entries {
		hi := i + w
		if hi > len(entries) {
			hi = len(entries)
		}
		for j := i + 1; j < hi; j++ {
			if entries[i].from == entries[j].from {
				continue
			}
			p := Pair{A: entries[i].id, B: entries[j].id, OrdA: entries[i].ord, OrdB: entries[j].ord}
			if entries[i].from == 1 {
				p = Pair{A: entries[j].id, B: entries[i].id, OrdA: entries[j].ord, OrdB: entries[i].ord}
			}
			if !yield(p) {
				return
			}
		}
	}
}

// PairsCarryOrdinals implements OrdinalPairer.
func (SortedNeighborhood) PairsCarryOrdinals() bool { return true }

func (s SortedNeighborhood) String() string {
	return fmt.Sprintf("sorted-neighborhood(%s~%s, w=%d)", s.AttrA, s.AttrB, s.Window)
}

// idPair keys pair sets by instance ids alone: two Pairs naming the same
// instances are the same candidate regardless of ordinal provenance.
type idPair struct{ a, b model.ID }

// Dedup removes duplicate pairs (same A and B ids) preserving first
// occurrence.
func Dedup(pairs []Pair) []Pair {
	seen := make(map[idPair]bool, len(pairs))
	out := pairs[:0:0]
	for _, p := range pairs {
		k := idPair{p.A, p.B}
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return out
}

// ReductionRatio reports how much of the cross product a candidate set
// avoids: 1 - |pairs| / (|a|*|b|). Zero-sized inputs give 0.
func ReductionRatio(pairs []Pair, a, b *model.ObjectSet) float64 {
	total := a.Len() * b.Len()
	if total == 0 {
		return 0
	}
	r := 1 - float64(len(pairs))/float64(total)
	if r < 0 {
		return 0
	}
	return r
}

// PairCompleteness reports the fraction of true pairs retained by the
// candidate set, given the ground-truth pairs. It is the blocking-quality
// counterpart of recall.
func PairCompleteness(pairs []Pair, truth []Pair) float64 {
	if len(truth) == 0 {
		return 1
	}
	set := make(map[idPair]bool, len(pairs))
	for _, p := range pairs {
		set[idPair{p.A, p.B}] = true
	}
	hit := 0
	for _, p := range truth {
		if set[idPair{p.A, p.B}] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}
