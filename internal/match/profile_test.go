package match

import (
	"fmt"
	"testing"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

// syntheticPubs builds n publications per side with overlapping noisy
// titles so that token blocking produces a dense candidate set.
func syntheticPubs(n int) (*model.ObjectSet, *model.ObjectSet) {
	topics := []string{
		"generic schema matching with cupid",
		"a formal perspective on the view selection problem",
		"mapping based object matching",
		"entity resolution over web data sources",
		"adaptive blocking for scalable record linkage",
	}
	a := model.NewObjectSet(dblpPub)
	b := model.NewObjectSet(acmPub)
	for i := 0; i < n; i++ {
		topic := topics[i%len(topics)]
		a.AddNew(model.ID(fmt.Sprintf("d%d", i)), map[string]string{
			"title":   fmt.Sprintf("%s part %d", topic, i/len(topics)),
			"authors": fmt.Sprintf("A. Thor %d, E. Rahm", i%7),
			"year":    fmt.Sprintf("%d", 1995+i%12),
		})
		b.AddNew(model.ID(fmt.Sprintf("a%d", i)), map[string]string{
			"name":    fmt.Sprintf("%s part %d revised", topic, i/len(topics)),
			"authors": fmt.Sprintf("Andreas Thor %d and Erhard Rahm", i%7),
			"year":    fmt.Sprintf("%d", 1995+(i+i%3)%12),
		})
	}
	return a, b
}

// mappingsEqual asserts two mappings hold identical correspondences with
// identical similarities.
func mappingsEqual(t *testing.T, got, want *mapping.Mapping, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: %d correspondences, want %d", label, got.Len(), want.Len())
	}
	for _, c := range want.Correspondences() {
		s, ok := got.Sim(c.Domain, c.Range)
		if !ok || s != c.Sim {
			t.Fatalf("%s: (%s, %s) = %v, %v; want %v", label, c.Domain, c.Range, s, ok, c.Sim)
		}
	}
}

// unprofiledSim wraps a built-in so sim.ProfiledOf cannot recognize it,
// forcing the string-based fallback path.
func unprofiledSim(fn sim.Func) sim.Func {
	return func(a, b string) float64 { return fn(a, b) }
}

// TestAttributeProfiledMatchesFallback asserts the automatically-profiled
// matcher returns the exact mapping of the string-based path.
func TestAttributeProfiledMatchesFallback(t *testing.T) {
	a, b := syntheticPubs(120)
	blocker := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2}
	for _, fn := range []struct {
		name string
		sim  sim.Func
	}{
		{"Trigram", sim.Trigram},
		{"TokenJaccard", sim.TokenJaccard},
		{"Levenshtein", sim.Levenshtein},
		{"PersonName", sim.PersonName},
	} {
		profiled := &Attribute{
			MatcherName: fn.name, AttrA: "title", AttrB: "name",
			Sim: fn.sim, Threshold: 0.3, Blocker: blocker,
		}
		fallback := &Attribute{
			MatcherName: fn.name, AttrA: "title", AttrB: "name",
			Sim: unprofiledSim(fn.sim), Threshold: 0.3, Blocker: blocker,
		}
		mp, err := profiled.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := fallback.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mappingsEqual(t, mp, mf, fn.name)
	}
}

// TestMultiAttributeProfiledMatchesFallback covers the weighted combination
// with a mix of profiled and fallback pair measures.
func TestMultiAttributeProfiledMatchesFallback(t *testing.T) {
	a, b := syntheticPubs(120)
	blocker := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2}
	pairs := func(wrap bool) []AttrPair {
		w := func(fn sim.Func) sim.Func {
			if wrap {
				return unprofiledSim(fn)
			}
			return fn
		}
		return []AttrPair{
			{AttrA: "title", AttrB: "name", Sim: w(sim.Trigram), Weight: 3},
			{AttrA: "authors", AttrB: "authors", Sim: w(sim.TokenDice), Weight: 1},
			{AttrA: "year", AttrB: "year", Sim: w(sim.YearSim), Weight: 2},
		}
	}
	profiled := &MultiAttribute{MatcherName: "multi", Pairs: pairs(false), Threshold: 0.4, Blocker: blocker}
	fallback := &MultiAttribute{MatcherName: "multi", Pairs: pairs(true), Threshold: 0.4, Blocker: blocker}
	mp, err := profiled.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := fallback.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mappingsEqual(t, mp, mf, "multi")
}

// alienBlocker emits pairs whose IDs are absent from the inputs, the way a
// stale pair cache would; the string path scored those as "" via the
// nil-safe Instance.Attr, and the profiled path must mirror that instead
// of dereferencing a missing profile.
type alienBlocker struct{}

func (alienBlocker) Pairs(a, b *model.ObjectSet) []block.Pair {
	pairs := block.CrossProduct{}.Pairs(a, b)
	return append(pairs,
		block.Pair{A: "ghost-a", B: b.IDs()[0]},
		block.Pair{A: a.IDs()[0], B: "ghost-b"},
		block.Pair{A: "ghost-a", B: "ghost-b"})
}

func (g alienBlocker) PairsEach(a, b *model.ObjectSet, yield func(block.Pair) bool) {
	for _, p := range g.Pairs(a, b) {
		if !yield(p) {
			return
		}
	}
}

func (alienBlocker) String() string { return "alien" }

// TestAttributeProfiledAlienBlockerIDs asserts blocker-emitted unknown IDs
// score like empty values on both the profiled and fallback paths.
func TestAttributeProfiledAlienBlockerIDs(t *testing.T) {
	a, b := syntheticPubs(10)
	build := func(fn sim.Func) *Attribute {
		return &Attribute{
			MatcherName: "alien", AttrA: "title", AttrB: "name",
			Sim: fn, Threshold: 0.3, Blocker: alienBlocker{},
		}
	}
	mp, err := build(sim.Trigram).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := build(unprofiledSim(sim.Trigram)).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mappingsEqual(t, mp, mf, "alien ids")

	multi := &MultiAttribute{
		MatcherName: "alien-multi",
		Pairs:       []AttrPair{{AttrA: "title", AttrB: "name", Sim: sim.Trigram, Weight: 1}},
		Threshold:   0.3,
		Blocker:     alienBlocker{},
	}
	if _, err := multi.Match(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestAttributeProfiledParallelRace runs the profiled matchers with many
// workers over a blocked candidate set; under -race this proves the shared
// profile caches are read-only during scoring, and the result must be
// identical to the single-worker run.
func TestAttributeProfiledParallelRace(t *testing.T) {
	a, b := syntheticPubs(200)
	blocker := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1}
	single := &Attribute{
		MatcherName: "race", AttrA: "title", AttrB: "name",
		Sim: sim.Trigram, Threshold: 0.3, Blocker: blocker, Workers: 1,
	}
	parallel := &Attribute{
		MatcherName: "race", AttrA: "title", AttrB: "name",
		Sim: sim.Trigram, Threshold: 0.3, Blocker: blocker, Workers: 8,
	}
	ms, err := single.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mpar, err := parallel.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mappingsEqual(t, mpar, ms, "attribute workers=8")
}

// TestMultiAttributeProfiledParallelRace is the multi-attribute version,
// including the shared TF-IDF corpus via the explicit Profiled field.
func TestMultiAttributeProfiledParallelRace(t *testing.T) {
	a, b := syntheticPubs(200)
	corpus := sim.NewTFIDF()
	a.Each(func(in *model.Instance) bool { corpus.Add(in.Attr("title")); return true })
	b.Each(func(in *model.Instance) bool { corpus.Add(in.Attr("name")); return true })
	build := func(workers int) *MultiAttribute {
		return &MultiAttribute{
			MatcherName: "race-multi",
			Pairs: []AttrPair{
				{AttrA: "title", AttrB: "name", Profiled: corpus.Profiled(), Weight: 2},
				{AttrA: "authors", AttrB: "authors", Sim: sim.PersonName, Weight: 1},
				{AttrA: "year", AttrB: "year", Sim: sim.YearSim, Weight: 1},
			},
			Threshold: 0.3,
			Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1},
			Workers:   workers,
		}
	}
	ms, err := build(1).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mpar, err := build(8).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mappingsEqual(t, mpar, ms, "multiattribute workers=8")
}

// TestTFIDFAttributeParallelRace exercises the TF-IDF matcher whose string
// path shares a vector cache between workers (mutex-guarded) and whose
// profiled path shares read-only profiles.
func TestTFIDFAttributeParallelRace(t *testing.T) {
	a, b := syntheticPubs(150)
	build := func(workers int) *TFIDFAttribute {
		return &TFIDFAttribute{
			MatcherName: "tfidf-race", AttrA: "title", AttrB: "name",
			Threshold: 0.2,
			Blocker:   block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1},
			Workers:   workers,
		}
	}
	ms, err := build(1).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mpar, err := build(8).Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mappingsEqual(t, mpar, ms, "tfidf workers=8")
}
