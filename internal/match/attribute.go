package match

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

// Attribute is the paper's generic attribute matcher (§2.2): it is
// "provided with a pair of attributes to be matched, a similarity function
// to be evaluated (e.g. n-gram, TF/IDF or affix) and a similarity threshold
// to be exceeded by result correspondences".
type Attribute struct {
	// MatcherName identifies the configuration, e.g. "title-trigram".
	MatcherName string
	// AttrA and AttrB name the attributes on the two inputs.
	AttrA, AttrB string
	// Sim scores an attribute-value pair. Built-in functions are upgraded
	// automatically to their profiled form (sim.ProfiledOf), which
	// preprocesses each attribute value once instead of once per pair.
	Sim sim.Func
	// Profiled, when set, overrides the automatic upgrade with an explicit
	// profile-based measure (e.g. (*sim.TFIDF).Profiled). Sim may then be
	// nil.
	Profiled sim.ProfiledSim
	// Threshold is the minimum similarity for a correspondence.
	Threshold float64
	// Blocker generates candidate pairs; nil means the full cross product.
	Blocker block.Blocker
	// SkipMissing drops pairs where either attribute is absent or empty
	// instead of scoring them (they would usually score 0 anyway).
	SkipMissing bool
	// Workers sets the scoring parallelism; 0 uses GOMAXPROCS.
	Workers int
}

// Name implements Matcher.
func (m *Attribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("attr(%s~%s)", m.AttrA, m.AttrB)
}

// WithWorkers implements ConfigurableWorkers.
func (m *Attribute) WithWorkers(n int) Matcher {
	cp := *m
	cp.Workers = n
	return &cp
}

// Match implements Matcher. Candidates are streamed from the blocker
// through a bounded scoring pipeline (see streamScore); only kept
// correspondences are ever materialized, so memory is proportional to the
// result, not to the candidate count.
func (m *Attribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if err := requireSameType(a, b); err != nil {
		return nil, err
	}
	if m.Sim == nil && m.Profiled == nil {
		return nil, fmt.Errorf("match: %s has no similarity function", m.Name())
	}
	stream, colA, colB, ords := candidateStream(m.Blocker, a, b)
	var score func(block.Pair) (float64, bool)
	if ps := m.profiledSim(); ps != nil {
		// Profiled path: preprocess each attribute value once (O(n+m)),
		// then score pairs over read-only dense profile columns, reusing the
		// blocking layer's token work where the attributes coincide. When the
		// blocker carries ObjectSet ordinals in its pairs (all built-ins do),
		// the columns are read directly by Pair.OrdA/OrdB — no per-pair map
		// lookup at all.
		profA := profileColumn(a, m.AttrA, ps, colA)
		profB := profileColumn(b, m.AttrB, ps, colB)
		// Blockers may emit IDs absent from the inputs; the string path
		// scored those as "" (nil-safe Instance.Attr), so mirror that.
		empty := ps.Profile("")
		score = func(p block.Pair) (float64, bool) {
			pa, pb := empty, empty
			if ords {
				pa, pb = profA[p.OrdA], profB[p.OrdB]
			} else {
				if i := a.IndexOf(p.A); i >= 0 {
					pa = profA[i]
				}
				if j := b.IndexOf(p.B); j >= 0 {
					pb = profB[j]
				}
			}
			if m.SkipMissing && (pa.Raw == "" || pb.Raw == "") {
				return 0, false
			}
			s := ps.Compare(pa, pb)
			return s, s >= m.Threshold
		}
	} else {
		score = func(p block.Pair) (float64, bool) {
			va := a.Get(p.A).Attr(m.AttrA)
			vb := b.Get(p.B).Attr(m.AttrB)
			if m.SkipMissing && (va == "" || vb == "") {
				return 0, false
			}
			s := m.Sim(va, vb)
			return s, s >= m.Threshold
		}
	}
	out := mapping.NewSame(a.LDS(), b.LDS())
	streamScore(stream, m.Workers, score, ordinalEmit(out, a, b, ords))
	return out, nil
}

// ordinalEmit returns the kept-correspondence sink of a match: when the
// blocker's pairs carry ObjectSet ordinals, both input id columns are
// interned into the output mapping's dictionary once — O(n+m) — and every
// kept pair is inserted ordinal-to-ordinal, so the emit path never hashes
// an id string. Ordinal-less blockers fall back to id-level inserts.
func ordinalEmit(out *mapping.Mapping, a, b *model.ObjectSet, ords bool) func(block.Pair, float64) {
	if !ords {
		return func(p block.Pair, s float64) { out.AddMax(p.A, p.B, s) }
	}
	dict := out.Dict()
	domOrds := dict.SetOrds(a)
	rngOrds := dict.SetOrds(b)
	return func(p block.Pair, s float64) {
		out.AddMaxOrd(domOrds[p.OrdA], rngOrds[p.OrdB], s)
	}
}

// profiledSim resolves the profile-based form of the configured measure:
// the explicit Profiled field if set, otherwise the automatic upgrade of a
// built-in Sim. Nil means the string-based fallback.
func (m *Attribute) profiledSim() sim.ProfiledSim {
	if m.Profiled != nil {
		return m.Profiled
	}
	ps, _ := sim.ProfiledOf(m.Sim)
	return ps
}

// candidateStream resolves the blocker (nil means cross product) into a
// pair stream plus, for token-streaming blockers (block.TokenStreamer),
// the tokenized attribute columns keyed by blocking-attribute name, so
// profile builds can reuse the blocking layer's tokenization. colA/colB
// are nil for every other blocker. ords reports whether the stream's pairs
// carry valid ObjectSet ordinals (block.OrdinalPairer): scoring then reads
// the dense profile columns by Pair.OrdA/OrdB instead of id lookups.
func candidateStream(blocker block.Blocker, a, b *model.ObjectSet) (stream func(func(block.Pair) bool), colA, colB *attrTokens, ords bool) {
	if blocker == nil {
		blocker = block.CrossProduct{}
	}
	if op, ok := blocker.(block.OrdinalPairer); ok {
		ords = op.PairsCarryOrdinals()
	}
	if ts, ok := blocker.(block.TokenStreamer); ok {
		ca, cb := ts.TokenizeColumns(a, b)
		attrA, attrB := ts.BlockingAttrs()
		stream = func(yield func(block.Pair) bool) {
			ts.PairsEachTokens(a, b, ca, cb, yield)
		}
		return stream, &attrTokens{attr: attrA, toks: ca}, &attrTokens{attr: attrB, toks: cb}, ords
	}
	return func(yield func(block.Pair) bool) { blocker.PairsEach(a, b, yield) }, nil, nil, ords
}

// attrTokens is one tokenized attribute column produced while blocking.
type attrTokens struct {
	attr string
	toks block.Tokens
}

// profileColumn returns the per-instance profiles of one attribute column —
// the O(n+m) preprocessing the profiled scoring path reads from — as a
// dense array aligned with ObjectSet ordinals (IndexOf). Blockers that
// carry ordinals in their pairs let scoring read every column by plain
// array index; for ordinal-less blockers each pair resolves its ordinals
// once via IndexOf. Columns are served from the process-wide profile cache
// (profilecache.go) keyed by set identity, attribute, measure and set
// version, so matchers sharing inputs — and repeated matches against a
// stored set — build each column once; Touch/Add on the set invalidates.
func profileColumn(set *model.ObjectSet, attr string, ps sim.ProfiledSim, cached *attrTokens) []*sim.Profile {
	return cachedProfileColumn(set, attr, ps, func() []*sim.Profile {
		return buildProfileColumn(set, attr, ps, cached)
	})
}

// buildProfileColumn does the actual profile build. When the blocking layer
// already tokenized this attribute (cached non-nil, matching attr) and the
// measure can profile from tokens, the cached slices are reused instead of
// re-tokenizing. The array is never mutated after this returns, so
// concurrent scoring workers and cache consumers need no locks.
func buildProfileColumn(set *model.ObjectSet, attr string, ps sim.ProfiledSim, cached *attrTokens) []*sim.Profile {
	var toks block.Tokens
	tp, reuse := ps.(sim.TokenProfiler)
	if reuse && cached != nil && cached.attr == attr {
		toks = cached.toks
	}
	out := make([]*sim.Profile, 0, set.Len())
	ord := 0
	set.Each(func(in *model.Instance) bool {
		v := in.Attr(attr)
		if ord < len(toks) {
			if ts := toks[ord]; ts != nil {
				out = append(out, tp.ProfileTokens(v, ts))
				ord++
				return true
			}
		}
		out = append(out, ps.Profile(v))
		ord++
		return true
	})
	return out
}

// AttrPair configures one attribute comparison of the multi-attribute
// matcher.
type AttrPair struct {
	AttrA, AttrB string
	// Sim scores the pair; built-ins are upgraded via sim.ProfiledOf.
	Sim sim.Func
	// Profiled optionally overrides the upgrade (see Attribute.Profiled).
	Profiled sim.ProfiledSim
	Weight   float64
}

// MultiAttribute is the paper's multi-attribute matcher: it "directly
// evaluates and combines the similarity for multiple attribute pairs, e.g.,
// for publication title and publication year" (§2.2). Per-pair similarities
// are combined as a weighted average.
type MultiAttribute struct {
	MatcherName string
	Pairs       []AttrPair
	Threshold   float64
	Blocker     block.Blocker
	Workers     int
}

// Name implements Matcher.
func (m *MultiAttribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("multiattr(%d pairs)", len(m.Pairs))
}

// Match implements Matcher.
func (m *MultiAttribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if err := requireSameType(a, b); err != nil {
		return nil, err
	}
	if len(m.Pairs) == 0 {
		return nil, fmt.Errorf("match: %s has no attribute pairs", m.Name())
	}
	var totalWeight float64
	for i, p := range m.Pairs {
		if p.Sim == nil && p.Profiled == nil {
			return nil, fmt.Errorf("match: %s pair %d has no similarity function", m.Name(), i)
		}
		w := p.Weight
		if w < 0 {
			return nil, fmt.Errorf("match: %s pair %d has negative weight", m.Name(), i)
		}
		totalWeight += w
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("match: %s has zero total weight", m.Name())
	}
	stream, colTokA, colTokB, ords := candidateStream(m.Blocker, a, b)
	// One profile column per attribute pair whose measure has a profiled
	// form; pairs without one fall back to the string path in place. The
	// columns are dense arrays aligned with ObjectSet ordinals, so each
	// scored pair resolves its ordinals once and reads k columns by index.
	type column struct {
		ps           sim.ProfiledSim
		profA, profB []*sim.Profile
		empty        *sim.Profile
	}
	cols := make([]column, len(m.Pairs))
	for i, ap := range m.Pairs {
		ps := ap.Profiled
		if ps == nil {
			ps, _ = sim.ProfiledOf(ap.Sim)
		}
		if ps != nil {
			cols[i] = column{
				ps:    ps,
				profA: profileColumn(a, ap.AttrA, ps, colTokA),
				profB: profileColumn(b, ap.AttrB, ps, colTokB),
				empty: ps.Profile(""),
			}
		}
	}
	hasProfiled := false
	for i := range cols {
		if cols[i].ps != nil {
			hasProfiled = true
			break
		}
	}
	score := func(p block.Pair) (float64, bool) {
		ia, ib := -1, -1
		if hasProfiled {
			if ords {
				ia, ib = p.OrdA, p.OrdB
			} else {
				ia, ib = a.IndexOf(p.A), b.IndexOf(p.B)
			}
		}
		var insA, insB *model.Instance
		var sum float64
		for i, ap := range m.Pairs {
			if c := &cols[i]; c.ps != nil {
				pa, pb := c.empty, c.empty
				if ia >= 0 {
					pa = c.profA[ia]
				}
				if ib >= 0 {
					pb = c.profB[ib]
				}
				sum += ap.Weight * c.ps.Compare(pa, pb)
				continue
			}
			if insA == nil {
				insA, insB = a.Get(p.A), b.Get(p.B)
			}
			sum += ap.Weight * ap.Sim(insA.Attr(ap.AttrA), insB.Attr(ap.AttrB))
		}
		s := sum / totalWeight
		return s, s >= m.Threshold
	}
	out := mapping.NewSame(a.LDS(), b.LDS())
	streamScore(stream, m.Workers, score, ordinalEmit(out, a, b, ords))
	return out, nil
}

// WithWorkers implements ConfigurableWorkers.
func (m *MultiAttribute) WithWorkers(n int) Matcher {
	cp := *m
	cp.Workers = n
	return &cp
}

// TFIDFAttribute matches one attribute pair under TF-IDF cosine similarity,
// building the corpus from the attribute values of both inputs at match
// time (document statistics depend on the data being matched).
type TFIDFAttribute struct {
	MatcherName  string
	AttrA, AttrB string
	Threshold    float64
	Blocker      block.Blocker
	Workers      int
}

// Name implements Matcher.
func (m *TFIDFAttribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("tfidf(%s~%s)", m.AttrA, m.AttrB)
}

// WithWorkers implements ConfigurableWorkers.
func (m *TFIDFAttribute) WithWorkers(n int) Matcher {
	cp := *m
	cp.Workers = n
	return &cp
}

// Match implements Matcher.
func (m *TFIDFAttribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	corpus := sim.NewTFIDF()
	corpus.AddAll(sortedAttrValues(a, m.AttrA))
	corpus.AddAll(sortedAttrValues(b, m.AttrB))
	inner := &Attribute{
		MatcherName: m.Name(),
		AttrA:       m.AttrA,
		AttrB:       m.AttrB,
		Sim:         corpus.Cosine,
		Profiled:    corpus.Profiled(),
		Threshold:   m.Threshold,
		Blocker:     m.Blocker,
		Workers:     m.Workers,
	}
	return inner.Match(a, b)
}

// ExistingMapping exposes a pre-existing mapping as a matcher; the paper
// re-uses mappings that "already exist in data sources" (e.g. Google
// Scholar's links to ACM, §5.3). Match restricts the stored mapping to the
// ids present in the inputs.
type ExistingMapping struct {
	MatcherName string
	M           *mapping.Mapping
}

// Name implements Matcher.
func (m *ExistingMapping) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return "existing"
}

// Match implements Matcher.
func (m *ExistingMapping) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if m.M == nil {
		return nil, fmt.Errorf("match: %s has no mapping", m.Name())
	}
	if m.M.Domain() != a.LDS() || m.M.Range() != b.LDS() {
		return nil, fmt.Errorf("match: %s connects %s->%s, inputs are %s->%s",
			m.Name(), m.M.Domain(), m.M.Range(), a.LDS(), b.LDS())
	}
	return m.M.Filter(func(c mapping.Correspondence) bool {
		return a.Has(c.Domain) && b.Has(c.Range)
	}), nil
}
