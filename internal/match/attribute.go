package match

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

// Attribute is the paper's generic attribute matcher (§2.2): it is
// "provided with a pair of attributes to be matched, a similarity function
// to be evaluated (e.g. n-gram, TF/IDF or affix) and a similarity threshold
// to be exceeded by result correspondences".
type Attribute struct {
	// MatcherName identifies the configuration, e.g. "title-trigram".
	MatcherName string
	// AttrA and AttrB name the attributes on the two inputs.
	AttrA, AttrB string
	// Sim scores an attribute-value pair.
	Sim sim.Func
	// Threshold is the minimum similarity for a correspondence.
	Threshold float64
	// Blocker generates candidate pairs; nil means the full cross product.
	Blocker block.Blocker
	// SkipMissing drops pairs where either attribute is absent or empty
	// instead of scoring them (they would usually score 0 anyway).
	SkipMissing bool
	// Workers sets the scoring parallelism; 0 uses GOMAXPROCS.
	Workers int
}

// Name implements Matcher.
func (m *Attribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("attr(%s~%s)", m.AttrA, m.AttrB)
}

// Match implements Matcher.
func (m *Attribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if err := requireSameType(a, b); err != nil {
		return nil, err
	}
	if m.Sim == nil {
		return nil, fmt.Errorf("match: %s has no similarity function", m.Name())
	}
	blocker := m.Blocker
	if blocker == nil {
		blocker = block.CrossProduct{}
	}
	pairs := blocker.Pairs(a, b)
	scored := scorePairs(pairs, m.Workers, func(p block.Pair) (float64, bool) {
		va := a.Get(p.A).Attr(m.AttrA)
		vb := b.Get(p.B).Attr(m.AttrB)
		if m.SkipMissing && (va == "" || vb == "") {
			return 0, false
		}
		s := m.Sim(va, vb)
		return s, s >= m.Threshold
	})
	out := mapping.NewSame(a.LDS(), b.LDS())
	for _, sp := range scored {
		if sp.keep {
			out.AddMax(sp.pair.A, sp.pair.B, sp.sim)
		}
	}
	return out, nil
}

// AttrPair configures one attribute comparison of the multi-attribute
// matcher.
type AttrPair struct {
	AttrA, AttrB string
	Sim          sim.Func
	Weight       float64
}

// MultiAttribute is the paper's multi-attribute matcher: it "directly
// evaluates and combines the similarity for multiple attribute pairs, e.g.,
// for publication title and publication year" (§2.2). Per-pair similarities
// are combined as a weighted average.
type MultiAttribute struct {
	MatcherName string
	Pairs       []AttrPair
	Threshold   float64
	Blocker     block.Blocker
	Workers     int
}

// Name implements Matcher.
func (m *MultiAttribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("multiattr(%d pairs)", len(m.Pairs))
}

// Match implements Matcher.
func (m *MultiAttribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if err := requireSameType(a, b); err != nil {
		return nil, err
	}
	if len(m.Pairs) == 0 {
		return nil, fmt.Errorf("match: %s has no attribute pairs", m.Name())
	}
	var totalWeight float64
	for i, p := range m.Pairs {
		if p.Sim == nil {
			return nil, fmt.Errorf("match: %s pair %d has no similarity function", m.Name(), i)
		}
		w := p.Weight
		if w < 0 {
			return nil, fmt.Errorf("match: %s pair %d has negative weight", m.Name(), i)
		}
		totalWeight += w
	}
	if totalWeight == 0 {
		return nil, fmt.Errorf("match: %s has zero total weight", m.Name())
	}
	blocker := m.Blocker
	if blocker == nil {
		blocker = block.CrossProduct{}
	}
	pairs := blocker.Pairs(a, b)
	scored := scorePairs(pairs, m.Workers, func(p block.Pair) (float64, bool) {
		ia, ib := a.Get(p.A), b.Get(p.B)
		var sum float64
		for _, ap := range m.Pairs {
			sum += ap.Weight * ap.Sim(ia.Attr(ap.AttrA), ib.Attr(ap.AttrB))
		}
		s := sum / totalWeight
		return s, s >= m.Threshold
	})
	out := mapping.NewSame(a.LDS(), b.LDS())
	for _, sp := range scored {
		if sp.keep {
			out.AddMax(sp.pair.A, sp.pair.B, sp.sim)
		}
	}
	return out, nil
}

// TFIDFAttribute matches one attribute pair under TF-IDF cosine similarity,
// building the corpus from the attribute values of both inputs at match
// time (document statistics depend on the data being matched).
type TFIDFAttribute struct {
	MatcherName  string
	AttrA, AttrB string
	Threshold    float64
	Blocker      block.Blocker
	Workers      int
}

// Name implements Matcher.
func (m *TFIDFAttribute) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return fmt.Sprintf("tfidf(%s~%s)", m.AttrA, m.AttrB)
}

// Match implements Matcher.
func (m *TFIDFAttribute) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	corpus := sim.NewTFIDF()
	corpus.AddAll(sortedAttrValues(a, m.AttrA))
	corpus.AddAll(sortedAttrValues(b, m.AttrB))
	inner := &Attribute{
		MatcherName: m.Name(),
		AttrA:       m.AttrA,
		AttrB:       m.AttrB,
		Sim:         corpus.Cosine,
		Threshold:   m.Threshold,
		Blocker:     m.Blocker,
		Workers:     m.Workers,
	}
	return inner.Match(a, b)
}

// ExistingMapping exposes a pre-existing mapping as a matcher; the paper
// re-uses mappings that "already exist in data sources" (e.g. Google
// Scholar's links to ACM, §5.3). Match restricts the stored mapping to the
// ids present in the inputs.
type ExistingMapping struct {
	MatcherName string
	M           *mapping.Mapping
}

// Name implements Matcher.
func (m *ExistingMapping) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return "existing"
}

// Match implements Matcher.
func (m *ExistingMapping) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if m.M == nil {
		return nil, fmt.Errorf("match: %s has no mapping", m.Name())
	}
	if m.M.Domain() != a.LDS() || m.M.Range() != b.LDS() {
		return nil, fmt.Errorf("match: %s connects %s->%s, inputs are %s->%s",
			m.Name(), m.M.Domain(), m.M.Range(), a.LDS(), b.LDS())
	}
	return m.M.Filter(func(c mapping.Correspondence) bool {
		return a.Has(c.Domain) && b.Has(c.Range)
	}), nil
}
