package match

import (
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/sim"
)

func profCacheSet(n int) *model.ObjectSet {
	set := model.NewObjectSet(model.LDS{Source: "T", Type: model.Publication})
	for i := 0; i < n; i++ {
		set.AddNew(model.ID(fmt.Sprintf("p%d", i)), map[string]string{
			"title": fmt.Sprintf("profile cache title %d", i),
		})
	}
	return set
}

func TestProfileColumnCacheHitsAndInvalidation(t *testing.T) {
	set := profCacheSet(10)
	ps, ok := sim.ProfiledOf(sim.Trigram)
	if !ok {
		t.Fatal("Trigram has no profiled twin")
	}
	builds := 0
	build := func() []*sim.Profile {
		builds++
		return buildProfileColumn(set, "title", ps, nil)
	}
	c1 := cachedProfileColumn(set, "title", ps, build)
	c2 := cachedProfileColumn(set, "title", ps, build)
	if builds != 1 {
		t.Fatalf("second lookup rebuilt the column: %d builds", builds)
	}
	if len(c1) != set.Len() || &c1[0] != &c2[0] {
		t.Fatal("cache must serve the same column slice")
	}

	// A different measure keys a different entry.
	ps2, _ := sim.ProfiledOf(sim.Bigram)
	other := 0
	cachedProfileColumn(set, "title", ps2, func() []*sim.Profile {
		other++
		return buildProfileColumn(set, "title", ps2, nil)
	})
	if other != 1 {
		t.Fatalf("distinct measure should build its own column: %d builds", other)
	}
	if builds != 1 {
		t.Fatalf("distinct measure must not evict wrongly: %d builds of first", builds)
	}

	// In-place mutation + Touch invalidates.
	set.At(0).SetAttr("title", "changed title zero")
	set.Touch()
	c3 := cachedProfileColumn(set, "title", ps, build)
	if builds != 2 {
		t.Fatalf("Touch must invalidate: %d builds", builds)
	}
	if c3[0].Raw != "changed title zero" {
		t.Fatalf("rebuilt column did not pick up the mutation: %q", c3[0].Raw)
	}

	// Membership change (Add) invalidates too.
	set.AddNew("pX", map[string]string{"title": "a fresh arrival"})
	c4 := cachedProfileColumn(set, "title", ps, build)
	if builds != 3 || len(c4) != set.Len() {
		t.Fatalf("Add must invalidate: %d builds, len=%d want %d", builds, len(c4), set.Len())
	}
}

// TestProfileColumnCacheTracksCorpusVersion pins that a corpus-backed
// measure stops hitting the cache once the corpus mutates: idfs shift with
// every Add/Remove, so cached vectors would be stale.
func TestProfileColumnCacheTracksCorpusVersion(t *testing.T) {
	set := profCacheSet(5)
	corpus := sim.NewTFIDF()
	set.Each(func(in *model.Instance) bool {
		corpus.Add(in.Attr("title"))
		return true
	})
	ps := corpus.Profiled()
	builds := 0
	build := func() []*sim.Profile {
		builds++
		return buildProfileColumn(set, "title", ps, nil)
	}
	cachedProfileColumn(set, "title", ps, build)
	cachedProfileColumn(set, "title", ps, build)
	if builds != 1 {
		t.Fatalf("stable corpus should cache: %d builds", builds)
	}
	corpus.Add("a brand new document shifting every idf")
	c := cachedProfileColumn(set, "title", ps, build)
	if builds != 2 {
		t.Fatalf("corpus mutation must invalidate cached profiles: %d builds", builds)
	}
	// The rebuilt profiles must reflect the new corpus statistics.
	fresh := buildProfileColumn(set, "title", ps, nil)
	for i := range fresh {
		if got, want := ps.Compare(c[i], c[i]), ps.Compare(fresh[i], fresh[i]); got != want {
			t.Fatalf("profile %d scored %v against itself, fresh build %v", i, got, want)
		}
	}
}

// uncomparableSim wraps a profiled measure in a dynamic type that cannot be
// a map key; the cache must skip it rather than panic.
type uncomparableSim struct {
	inner sim.ProfiledSim
	pad   []int
}

func (u uncomparableSim) Profile(s string) *sim.Profile     { return u.inner.Profile(s) }
func (u uncomparableSim) Compare(a, b *sim.Profile) float64 { return u.inner.Compare(a, b) }

func TestProfileColumnCacheSkipsUncomparableMeasures(t *testing.T) {
	set := profCacheSet(5)
	inner, _ := sim.ProfiledOf(sim.Trigram)
	ps := uncomparableSim{inner: inner, pad: []int{1}}
	builds := 0
	build := func() []*sim.Profile {
		builds++
		return buildProfileColumn(set, "title", ps, nil)
	}
	cachedProfileColumn(set, "title", ps, build)
	cachedProfileColumn(set, "title", ps, build)
	if builds != 2 {
		t.Fatalf("uncomparable measures must bypass the cache: %d builds", builds)
	}
}

// TestProfileCacheMatchersShareColumns pins the end-to-end effect: two
// matchers over the same inputs and measure score from one cached column
// and produce identical mappings.
func TestProfileCacheMatchersShareColumns(t *testing.T) {
	a, b := profCacheSet(20), profCacheSet(20)
	m1 := &Attribute{AttrA: "title", AttrB: "title", Sim: sim.Trigram, Threshold: 0.5}
	m2 := &Attribute{AttrA: "title", AttrB: "title", Sim: sim.Trigram, Threshold: 0.5}
	r1, err := m1.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := m2.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2, 0) {
		t.Fatal("cached profile columns changed match results")
	}
}
