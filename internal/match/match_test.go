package match

import (
	"math"
	"testing"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
	dblpVen = model.LDS{Source: "DBLP", Type: model.Venue}
	acmVen  = model.LDS{Source: "ACM", Type: model.Venue}
	dblpAut = model.LDS{Source: "DBLP", Type: model.Author}
)

// figure1Sets builds the DBLP and ACM publication instances of Figure 1.
func figure1Sets() (*model.ObjectSet, *model.ObjectSet) {
	dblp := model.NewObjectSet(dblpPub)
	dblp.AddNew("conf/VLDB/MadhavanBR01", map[string]string{
		"title": "Generic Schema Matching with Cupid", "pages": "49-58", "year": "2001"})
	dblp.AddNew("conf/VLDB/ChirkovaHS01", map[string]string{
		"title": "A formal perspective on the view selection problem", "pages": "59-68", "year": "2001"})
	dblp.AddNew("journals/VLDB/ChirkovaHS02", map[string]string{
		"title": "A formal perspective on the view selection problem", "pages": "216-237", "year": "2002"})

	acm := model.NewObjectSet(acmPub)
	acm.AddNew("P-672191", map[string]string{
		"name": "Generic Schema Matching with Cupid", "citations": "69", "year": "2001"})
	acm.AddNew("P-672216", map[string]string{
		"name": "A formal perspective on the view selection problem", "citations": "10", "year": "2001"})
	acm.AddNew("P-641272", map[string]string{
		"name": "A formal perspective on the view selection problem", "citations": "1", "year": "2002"})
	return dblp, acm
}

func TestAttributeMatcherFigure1(t *testing.T) {
	dblp, acm := figure1Sets()
	m := &Attribute{
		MatcherName: "title-trigram",
		AttrA:       "title", AttrB: "name",
		Sim:       sim.Trigram,
		Threshold: 0.8,
	}
	got, err := m.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	// Cupid matches its ACM twin exactly; each "formal perspective" DBLP
	// entry matches BOTH formal-perspective ACM entries (titles equal).
	if s, ok := got.Sim("conf/VLDB/MadhavanBR01", "P-672191"); !ok || s != 1 {
		t.Errorf("cupid sim = %v, %v", s, ok)
	}
	if !got.Has("conf/VLDB/ChirkovaHS01", "P-672216") || !got.Has("conf/VLDB/ChirkovaHS01", "P-641272") {
		t.Error("title matcher should match both formal-perspective entries")
	}
	if got.Has("conf/VLDB/MadhavanBR01", "P-672216") {
		t.Error("cupid must not match the formal-perspective paper")
	}
	if got.Len() != 5 {
		t.Errorf("Len = %d, want 5", got.Len())
	}
}

func TestAttributeMatcherTypeMismatch(t *testing.T) {
	dblp, _ := figure1Sets()
	venues := model.NewObjectSet(dblpVen)
	m := &Attribute{AttrA: "title", AttrB: "name", Sim: sim.Trigram}
	if _, err := m.Match(dblp, venues); err == nil {
		t.Error("object-type mismatch should fail")
	}
}

func TestAttributeMatcherNilSim(t *testing.T) {
	dblp, acm := figure1Sets()
	m := &Attribute{AttrA: "title", AttrB: "name"}
	if _, err := m.Match(dblp, acm); err == nil {
		t.Error("nil similarity function should fail")
	}
}

func TestAttributeMatcherSkipMissing(t *testing.T) {
	a := model.NewObjectSet(dblpPub)
	a.AddNew("p1", map[string]string{"year": "2001"})
	a.AddNew("p2", nil)
	b := model.NewObjectSet(acmPub)
	b.AddNew("q1", map[string]string{"year": "2001"})

	with := &Attribute{AttrA: "year", AttrB: "year", Sim: sim.YearExact, Threshold: 0, SkipMissing: true}
	got, err := with.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Has("p2", "q1") {
		t.Error("SkipMissing should drop pairs lacking the attribute")
	}
	without := &Attribute{AttrA: "year", AttrB: "year", Sim: sim.YearExact, Threshold: 0}
	got2, _ := without.Match(a, b)
	if !got2.Has("p2", "q1") {
		t.Error("threshold 0 without SkipMissing keeps zero-sim pairs")
	}
}

func TestAttributeMatcherParallelDeterminism(t *testing.T) {
	dblp, acm := figure1Sets()
	serial := &Attribute{AttrA: "title", AttrB: "name", Sim: sim.Trigram, Threshold: 0.3, Workers: 1}
	parallel := &Attribute{AttrA: "title", AttrB: "name", Sim: sim.Trigram, Threshold: 0.3, Workers: 8}
	m1, err := serial.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := parallel.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	if !m1.Equal(m2, 0) {
		t.Error("parallel scoring must be deterministic")
	}
}

func TestAttributeMatcherWithBlocker(t *testing.T) {
	dblp, acm := figure1Sets()
	m := &Attribute{
		AttrA: "title", AttrB: "name", Sim: sim.Trigram, Threshold: 0.8,
		Blocker: block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
	}
	got, err := m.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 5 {
		t.Errorf("blocked matcher should find all 5 matches, got %d", got.Len())
	}
}

func TestMultiAttributeMatcher(t *testing.T) {
	dblp, acm := figure1Sets()
	m := &MultiAttribute{
		MatcherName: "title+year",
		Pairs: []AttrPair{
			{AttrA: "title", AttrB: "name", Sim: sim.Trigram, Weight: 2},
			{AttrA: "year", AttrB: "year", Sim: sim.YearExact, Weight: 1},
		},
		Threshold: 0.9,
	}
	got, err := m.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	// Same title + same year -> 1; same title, year off by one -> 2/3,
	// below threshold. This disambiguates the conference vs journal
	// versions that the pure title matcher confuses.
	if !got.Has("conf/VLDB/ChirkovaHS01", "P-672216") {
		t.Error("same-year pair missing")
	}
	if got.Has("conf/VLDB/ChirkovaHS01", "P-641272") {
		t.Error("different-year pair should fall below threshold")
	}
	if got.Len() != 3 {
		t.Errorf("Len = %d, want 3", got.Len())
	}
}

func TestMultiAttributeValidation(t *testing.T) {
	dblp, acm := figure1Sets()
	cases := []*MultiAttribute{
		{Pairs: nil},
		{Pairs: []AttrPair{{AttrA: "t", AttrB: "t", Weight: 1}}},                  // nil sim
		{Pairs: []AttrPair{{AttrA: "t", AttrB: "t", Sim: sim.Equal, Weight: -1}}}, // negative
		{Pairs: []AttrPair{{AttrA: "t", AttrB: "t", Sim: sim.Equal, Weight: 0}}},  // zero total
	}
	for i, m := range cases {
		if _, err := m.Match(dblp, acm); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestTFIDFAttributeMatcher(t *testing.T) {
	dblp, acm := figure1Sets()
	m := &TFIDFAttribute{AttrA: "title", AttrB: "name", Threshold: 0.95}
	got, err := m.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Has("conf/VLDB/MadhavanBR01", "P-672191") {
		t.Error("identical titles must match under TF-IDF")
	}
	if got.Has("conf/VLDB/MadhavanBR01", "P-672216") {
		t.Error("unrelated titles must not match")
	}
}

func TestExistingMappingMatcher(t *testing.T) {
	dblp, acm := figure1Sets()
	stored := mapping.NewSame(dblpPub, acmPub)
	stored.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	stored.Add("ghost", "P-672216", 1) // not in the input sets

	m := &ExistingMapping{MatcherName: "gs-links", M: stored}
	got, err := m.Match(dblp, acm)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 || !got.Has("conf/VLDB/MadhavanBR01", "P-672191") {
		t.Errorf("existing matcher should restrict to inputs, got %v", got.Correspondences())
	}
	bad := &ExistingMapping{M: mapping.NewSame(dblpPub, dblpPub)}
	if _, err := bad.Match(dblp, acm); err == nil {
		t.Error("endpoint mismatch should fail")
	}
	if _, err := (&ExistingMapping{}).Match(dblp, acm); err == nil {
		t.Error("nil mapping should fail")
	}
}

// figure9Fixture builds the associations and publication same-mapping of
// Figure 9.
func figure9Fixture() (asso1, same, asso2 *mapping.Mapping) {
	asso1 = mapping.New(dblpVen, dblpPub, "VenuePub")
	asso1.Add("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1)
	asso1.Add("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1)
	asso1.Add("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1)

	same = mapping.NewSame(dblpPub, acmPub)
	same.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-641272", 0.6)
	same.Add("journals/VLDB/ChirkovaHS02", "P-641272", 1)
	same.Add("journals/VLDB/ChirkovaHS02", "P-672216", 0.6)

	asso2 = mapping.New(acmPub, acmVen, "PubVenue")
	asso2.Add("P-672191", "V-645927", 1)
	asso2.Add("P-672216", "V-645927", 1)
	asso2.Add("P-641272", "V-641268", 1)
	return asso1, same, asso2
}

func TestFigure9NeighborhoodMatcher(t *testing.T) {
	asso1, same, asso2 := figure9Fixture()
	got, err := NhMatch(asso1, same, asso2)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's result table:
	//   conf/VLDB/2001      - V-645927: 0.8  = 2*(1+1)/(3+2)
	//   conf/VLDB/2001      - V-641268: 0.3  = 2*0.6/(3+1)
	//   journals/VLDB/2002  - V-645927: 0.3  = 2*0.6/(2+2)
	//   journals/VLDB/2002  - V-641268: 0.67 = 2*1/(2+1)
	want := []struct {
		d, r model.ID
		s    float64
	}{
		{"conf/VLDB/2001", "V-645927", 0.8},
		{"conf/VLDB/2001", "V-641268", 0.3},
		{"journals/VLDB/2002", "V-645927", 0.3},
		{"journals/VLDB/2002", "V-641268", 2.0 / 3.0},
	}
	if got.Len() != len(want) {
		t.Fatalf("Len = %d, want %d: %v", got.Len(), len(want), got.Correspondences())
	}
	for _, w := range want {
		s, ok := got.Sim(w.d, w.r)
		if !ok {
			t.Errorf("missing (%s,%s)", w.d, w.r)
			continue
		}
		if math.Abs(s-w.s) > 1e-9 {
			t.Errorf("sim(%s,%s) = %v, want %v", w.d, w.r, s, w.s)
		}
	}
	// A threshold selection of 0.5 then yields the perfect venue mapping.
	sel := mapping.Threshold{T: 0.5}.Apply(got)
	if sel.Len() != 2 || !sel.Has("conf/VLDB/2001", "V-645927") || !sel.Has("journals/VLDB/2002", "V-641268") {
		t.Errorf("selection should isolate the correct venue pairs, got %v", sel.Correspondences())
	}
}

func TestNeighborhoodMatcherInterface(t *testing.T) {
	asso1, same, asso2 := figure9Fixture()
	venDBLP := model.NewObjectSet(dblpVen)
	venDBLP.AddNew("conf/VLDB/2001", nil)
	venDBLP.AddNew("journals/VLDB/2002", nil)
	venACM := model.NewObjectSet(acmVen)
	venACM.AddNew("V-645927", nil)
	venACM.AddNew("V-641268", nil)

	nm := NewNeighborhood("venue-nh", asso1, same, asso2)
	got, err := nm.Match(venDBLP, venACM)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 4 {
		t.Errorf("Len = %d, want 4", got.Len())
	}
	// Restriction: drop one ACM venue from the input set.
	venACMsub := venACM.Subset([]model.ID{"V-645927"})
	got2, err := nm.Match(venDBLP, venACMsub)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Len() != 2 {
		t.Errorf("restricted Len = %d, want 2", got2.Len())
	}
}

func TestNeighborhoodValidation(t *testing.T) {
	asso1, same, asso2 := figure9Fixture()
	venDBLP := model.NewObjectSet(dblpVen)
	venACM := model.NewObjectSet(acmVen)
	if _, err := (&Neighborhood{}).Match(venDBLP, venACM); err == nil {
		t.Error("missing mappings should fail")
	}
	wrong := NewNeighborhood("x", asso2, same, asso1) // swapped
	if _, err := wrong.Match(venDBLP, venACM); err == nil {
		t.Error("endpoint mismatch should fail")
	}
	if NewNeighborhood("", asso1, same, asso2).Name() != "neighborhood" {
		t.Error("default name wrong")
	}
}

func TestCoAuthorDedup(t *testing.T) {
	authors := model.NewObjectSet(dblpAut)
	for _, id := range []model.ID{"niki", "agathoniki", "x", "y", "z", "loner"} {
		authors.AddNew(id, nil)
	}
	// niki and agathoniki are duplicates sharing all co-authors x,y,z.
	co := mapping.New(dblpAut, dblpAut, "CoAuthor")
	for _, dup := range []model.ID{"niki", "agathoniki"} {
		for _, c := range []model.ID{"x", "y", "z"} {
			co.Add(dup, c, 1)
			co.Add(c, dup, 1)
		}
	}
	got, err := CoAuthorDedup(co, authors)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := got.Sim("niki", "agathoniki")
	if !ok {
		t.Fatal("duplicate pair missing")
	}
	// Both have 3 co-authors, all shared: 2*3/(3+3) = 1.
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("overlap sim = %v, want 1", s)
	}
	if got.Has("loner", "niki") {
		t.Error("authors without shared co-authors must not pair")
	}
	// Diagonal present before the final selection, exactly like the paper's
	// script before select [domain.id]<>[range.id].
	if _, ok := got.Sim("x", "x"); !ok {
		t.Error("diagonal should be present before selection")
	}
	clean := mapping.NotEqualIDs{}.Apply(got)
	if clean.Has("x", "x") {
		t.Error("selection should drop the diagonal")
	}
	wrongSet := model.NewObjectSet(model.LDS{Source: "ACM", Type: model.Author})
	if _, err := CoAuthorDedup(co, wrongSet); err == nil {
		t.Error("mismatched LDS should fail")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	m := &Attribute{MatcherName: "title-trigram", AttrA: "t", AttrB: "t", Sim: sim.Trigram}
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("TITLE-TRIGRAM"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if err := r.Register(m); err == nil {
		t.Error("duplicate should fail")
	}
	if err := r.Register(Func{}); err == nil {
		t.Error("unnamed matcher should fail")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "title-trigram" {
		t.Errorf("Names = %v", names)
	}
}

func TestFuncAdapter(t *testing.T) {
	called := false
	f := Func{MatcherName: "f", Fn: func(a, b *model.ObjectSet) (*mapping.Mapping, error) {
		called = true
		return mapping.NewSame(a.LDS(), b.LDS()), nil
	}}
	if f.Name() != "f" {
		t.Error("name wrong")
	}
	a, b := figure1Sets()
	if _, err := f.Match(a, b); err != nil || !called {
		t.Error("Func adapter should delegate")
	}
}

func TestAttributeDefaultName(t *testing.T) {
	m := &Attribute{AttrA: "title", AttrB: "name"}
	if m.Name() != "attr(title~name)" {
		t.Errorf("Name = %q", m.Name())
	}
	mm := &MultiAttribute{Pairs: make([]AttrPair, 2)}
	if mm.Name() != "multiattr(2 pairs)" {
		t.Errorf("Name = %q", mm.Name())
	}
	tf := &TFIDFAttribute{AttrA: "a", AttrB: "b"}
	if tf.Name() != "tfidf(a~b)" {
		t.Errorf("Name = %q", tf.Name())
	}
}
