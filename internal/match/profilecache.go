package match

// Per-set profile-column cache: dense similarity-profile arrays keyed by
// object-set identity, attribute and measure.
//
// The profiled scoring path preprocesses each attribute value into a
// sim.Profile once per match — O(n+m) — but a workflow running k matchers
// over the same inputs, or a serving process matching against the same
// stored set repeatedly, rebuilt identical columns k times. This cache
// closes that gap the same way the blocking cache (internal/block/cache.go)
// amortizes token columns: entries are keyed by (ObjectSet pointer,
// attribute, measure) and validated against ObjectSet.Version, so any Add
// or Touch to the set invalidates its cached profiles on the next match.
//
// The measure is part of the key because a profile's content depends on it
// (token sets, n-gram sets, TF-IDF vectors over a specific corpus).
// Built-in measures are comparable singletons (sim.ProfiledOf) and hit the
// cache across matchers; corpus-backed measures compare by corpus pointer
// AND by the corpus generation (sim.ProfileVersioner), so a mutated corpus
// never serves stale vectors and a fresh TFIDFAttribute corpus — rebuilt
// per match by design — simply keys a new entry and ages out. Measures
// with uncomparable dynamic types bypass the cache entirely.
//
// Like the blocking cache, entries hold the set through a weak pointer and
// a runtime cleanup sweeps entries of collected sets, so caching never
// extends an object set's lifetime.

import (
	"reflect"
	"runtime"
	"sync"
	"weak"

	"repro/internal/model"
	"repro/internal/sim"
)

// profileCacheLimit bounds the cached columns. A workflow touches a few
// (set, attribute, measure) combinations per step; a serving process a few
// dozen.
const profileCacheLimit = 64

type profileKey struct {
	set     weak.Pointer[model.ObjectSet]
	attr    string
	measure sim.ProfiledSim
	// measureVer is the measure's ProfileVersion for stateful measures
	// (sim.ProfileVersioner — a TF-IDF corpus that was mutated since must
	// not serve stale vectors); 0 for pure measures.
	measureVer uint64
}

type profileEntry struct {
	version uint64
	profs   []*sim.Profile
}

var profileCache = struct {
	sync.Mutex
	entries map[profileKey]*profileEntry
	order   []profileKey
	// cleaned tracks the sets with a registered runtime cleanup, so a set
	// matched under many distinct keys (fresh per-match corpora) registers
	// one cleanup, not one per key.
	cleaned map[weak.Pointer[model.ObjectSet]]bool
}{entries: make(map[profileKey]*profileEntry), cleaned: make(map[weak.Pointer[model.ObjectSet]]bool)}

// cachedProfileColumn returns the dense profile column of (set, attr) under
// ps, serving repeated builds from the cache. build runs outside the cache
// lock on a miss. Measures whose dynamic type is not comparable (closures
// wrapped in structs with slices, say) skip caching and build directly.
func cachedProfileColumn(set *model.ObjectSet, attr string, ps sim.ProfiledSim, build func() []*sim.Profile) []*sim.Profile {
	if ps == nil || !reflect.TypeOf(ps).Comparable() {
		return build()
	}
	key := profileKey{set: weak.Make(set), attr: attr, measure: ps}
	if pv, ok := ps.(sim.ProfileVersioner); ok {
		key.measureVer = pv.ProfileVersion()
	}
	ver := set.Version()
	profileCache.Lock()
	if e, ok := profileCache.entries[key]; ok {
		if e.version == ver {
			profs := e.profs
			profileCache.Unlock()
			profileCacheHits.Inc()
			return profs
		}
		profileCacheInvalidations.Inc()
	}
	profileCache.Unlock()

	profileCacheMisses.Inc()
	profs := build()
	storeProfileEntry(set, key, &profileEntry{version: ver, profs: profs})
	return profs
}

// storeProfileEntry inserts an entry, refreshing its age, sweeping entries
// of collected sets, and evicting the oldest beyond the limit — the
// blocking cache's policy.
func storeProfileEntry(set *model.ObjectSet, key profileKey, e *profileEntry) {
	profileCache.Lock()
	defer profileCache.Unlock()
	kept := profileCache.order[:0]
	for _, k := range profileCache.order {
		switch {
		case k == key:
			// Re-appended below as the newest entry.
		case k.set.Value() == nil:
			delete(profileCache.entries, k)
		default:
			kept = append(kept, k)
		}
	}
	profileCache.order = append(kept, key)
	profileCache.entries[key] = e
	for len(profileCache.order) > profileCacheLimit {
		victim := profileCache.order[0]
		profileCache.order = profileCache.order[1:]
		delete(profileCache.entries, victim)
	}
	// One cleanup per set, however many (attr, measure, version) keys it
	// accumulates: a long-lived set matched with per-match corpora must not
	// grow an unbounded cleanup list.
	if !profileCache.cleaned[key.set] {
		profileCache.cleaned[key.set] = true
		runtime.AddCleanup(set, sweepDeadProfileSet, key.set)
	}
}

// sweepDeadProfileSet drops every cache entry of a collected set.
func sweepDeadProfileSet(wp weak.Pointer[model.ObjectSet]) {
	profileCache.Lock()
	defer profileCache.Unlock()
	kept := profileCache.order[:0]
	for _, k := range profileCache.order {
		if k.set == wp {
			delete(profileCache.entries, k)
			continue
		}
		kept = append(kept, k)
	}
	profileCache.order = kept
	delete(profileCache.cleaned, wp)
}
