package match

import (
	"fmt"

	"repro/internal/mapping"
	"repro/internal/model"
)

// NhMatch is the neighborhood matcher of §4.2, a direct transcription of
// the paper's iFuice procedure:
//
//	PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
//	   $Temp   = compose ( $Asso1, $Same, Min, Average )
//	   $Result = compose ( $Temp, $Asso2, Min, Relative )
//	   RETURN $Result
//	END
//
// asso1 maps the objects to be matched to their neighborhood (e.g. venue ->
// publications), same is an existing same-mapping on the neighborhood
// objects, and asso2 maps the neighborhood back to the target objects on the
// other side (e.g. publications -> venue). The second composition uses the
// Relative aggregation so correspondences reached via multiple compose
// paths — objects sharing many matched neighbors — score higher.
func NhMatch(asso1, same, asso2 *mapping.Mapping) (*mapping.Mapping, error) {
	return NhMatchAgg(asso1, same, asso2, mapping.AggRelative)
}

// NhMatchAgg is NhMatch with an explicit final aggregation. The paper's
// evaluation switches to RelativeLeft when the right-hand association is
// incomplete — Google Scholar author lists miss authors, so penalizing by
// n(b) would unfairly punish correct matches (§5.4.3).
func NhMatchAgg(asso1, same, asso2 *mapping.Mapping, g mapping.PathAgg) (*mapping.Mapping, error) {
	temp, err := mapping.Compose(asso1, same, mapping.MinCombiner, mapping.AggAvg)
	if err != nil {
		return nil, fmt.Errorf("match: nhMatch first compose: %w", err)
	}
	result, err := mapping.Compose(temp, asso2, mapping.MinCombiner, g)
	if err != nil {
		return nil, fmt.Errorf("match: nhMatch second compose: %w", err)
	}
	return result, nil
}

// Neighborhood wraps NhMatch as a Matcher. The association mappings and
// the neighborhood same-mapping are fixed at construction; Match restricts
// the result to the instances present in the inputs, which lets workflows
// treat the neighborhood matcher like any attribute matcher.
type Neighborhood struct {
	MatcherName string
	// Asso1 maps domain objects to their neighborhood (1:n, n:1 or n:m).
	Asso1 *mapping.Mapping
	// Same is the existing same-mapping over neighborhood objects. For
	// duplicate detection within one source, use mapping.Identity.
	Same *mapping.Mapping
	// Asso2 maps neighborhood objects to range objects.
	Asso2 *mapping.Mapping
	// Agg is the final aggregation; zero value AggAvg is NOT the paper's
	// default, so NewNeighborhood sets AggRelative explicitly.
	Agg mapping.PathAgg
}

// NewNeighborhood builds a neighborhood matcher with the paper's default
// Relative aggregation.
func NewNeighborhood(name string, asso1, same, asso2 *mapping.Mapping) *Neighborhood {
	return &Neighborhood{MatcherName: name, Asso1: asso1, Same: same, Asso2: asso2, Agg: mapping.AggRelative}
}

// Name implements Matcher.
func (m *Neighborhood) Name() string {
	if m.MatcherName != "" {
		return m.MatcherName
	}
	return "neighborhood"
}

// Match implements Matcher.
func (m *Neighborhood) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if m.Asso1 == nil || m.Same == nil || m.Asso2 == nil {
		return nil, fmt.Errorf("match: %s needs two associations and a same-mapping", m.Name())
	}
	if m.Asso1.Domain() != a.LDS() {
		return nil, fmt.Errorf("match: %s Asso1 domain %s does not match input %s", m.Name(), m.Asso1.Domain(), a.LDS())
	}
	if m.Asso2.Range() != b.LDS() {
		return nil, fmt.Errorf("match: %s Asso2 range %s does not match input %s", m.Name(), m.Asso2.Range(), b.LDS())
	}
	full, err := NhMatchAgg(m.Asso1, m.Same, m.Asso2, m.Agg)
	if err != nil {
		return nil, err
	}
	return full.Filter(func(c mapping.Correspondence) bool {
		return a.Has(c.Domain) && b.Has(c.Range)
	}), nil
}

// CoAuthorDedup implements the duplicate-author strategy of §4.3: the
// neighborhood matcher over the co-author association with the identity
// same-mapping. The result's similarity reflects co-author-list overlap;
// pairs sharing many co-authors score high. The trivial diagonal is NOT
// removed here — workflows merge with a name matcher first and select
// [domain.id]<>[range.id] afterwards, exactly as the paper's script does.
func CoAuthorDedup(coAuthor *mapping.Mapping, authors *model.ObjectSet) (*mapping.Mapping, error) {
	if coAuthor.Domain() != authors.LDS() || coAuthor.Range() != authors.LDS() {
		return nil, fmt.Errorf("match: co-author mapping must be within %s, got %s->%s",
			authors.LDS(), coAuthor.Domain(), coAuthor.Range())
	}
	ident := mapping.Identity(authors)
	return NhMatch(coAuthor, ident, coAuthor)
}
