package match

import "repro/internal/obs"

// Engine-side matcher metrics, registered once at package init on the
// process-global registry. Pipeline counts are accumulated in locals and
// flushed once per streamScore call, so the per-pair hot loop carries no
// atomic traffic.
var (
	matchPairsTotal = obs.Default.Counter("moma_match_pairs_total",
		"Candidate pairs streamed into the scoring pipeline.")
	matchKeptTotal = obs.Default.Counter("moma_match_pairs_kept_total",
		"Above-threshold pairs kept by the scoring pipeline.")
	matchBatchesTotal = obs.Default.Counter("moma_match_batches_total",
		"Scoring batches dispatched to pipeline workers.")
	matchQueueWait = obs.Default.Histogram("moma_match_queue_wait_seconds",
		"Producer wait enqueueing a scoring batch (all workers busy).", nil)

	profileCacheHits = obs.Default.Counter("moma_profilecache_hits_total",
		"Profile-column cache hits.")
	profileCacheMisses = obs.Default.Counter("moma_profilecache_misses_total",
		"Profile-column cache misses (column built).")
	profileCacheInvalidations = obs.Default.Counter("moma_profilecache_invalidations_total",
		"Profile-column cache entries found stale because the object set's version moved.")
)

func init() {
	obs.Default.GaugeFunc("moma_profilecache_entries",
		"Resident profile-column cache entries.", func() float64 {
			profileCache.Lock()
			defer profileCache.Unlock()
			return float64(len(profileCache.entries))
		})
}
