// Package match implements MOMA's extensible matcher library (§2.2):
// generic attribute matchers parameterized by attribute pair, similarity
// function and threshold; a multi-attribute matcher; a TF-IDF matcher that
// builds its corpus from the match inputs; and the neighborhood matcher of
// §4.2 that derives same-mappings from association mappings plus an
// existing same-mapping.
//
// Matchers conform to a single interface — they produce a same-mapping —
// so that workflows can combine any of them uniformly, and they are
// registered by name in a Registry for use from the script language.
package match

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
)

// Matcher computes a same-mapping between two object sets of the same
// object type. Implementations must be safe for reuse across calls.
type Matcher interface {
	// Match returns a same-mapping between a and b.
	Match(a, b *model.ObjectSet) (*mapping.Mapping, error)
	// Name identifies the matcher in reports and registries.
	Name() string
}

// Func adapts a function to the Matcher interface.
type Func struct {
	MatcherName string
	Fn          func(a, b *model.ObjectSet) (*mapping.Mapping, error)
}

// Match implements Matcher.
func (f Func) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) { return f.Fn(a, b) }

// Name implements Matcher.
func (f Func) Name() string { return f.MatcherName }

// Registry holds named matchers. The paper's matcher library also admits
// whole workflows as matchers; anything satisfying Matcher can register.
type Registry struct {
	mu       sync.RWMutex
	matchers map[string]Matcher
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{matchers: make(map[string]Matcher)}
}

// Register adds a matcher under its name; duplicate names are rejected.
func (r *Registry) Register(m Matcher) error {
	if m == nil || m.Name() == "" {
		return fmt.Errorf("match: Register needs a named matcher")
	}
	key := strings.ToLower(m.Name())
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.matchers[key]; dup {
		return fmt.Errorf("match: duplicate matcher %q", m.Name())
	}
	r.matchers[key] = m
	r.order = append(r.order, m.Name())
	return nil
}

// MustRegister panics on Register error (static wiring).
func (r *Registry) MustRegister(m Matcher) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup finds a matcher by case-insensitive name.
func (r *Registry) Lookup(name string) (Matcher, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.matchers[strings.ToLower(name)]
	return m, ok
}

// Names returns registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// scoredPair carries one candidate pair with its computed similarity.
type scoredPair struct {
	pair block.Pair
	sim  float64
	keep bool
}

// scorePairs evaluates score over the candidate pairs, in parallel when
// workers > 1, preserving input order in the result.
func scorePairs(pairs []block.Pair, workers int, score func(block.Pair) (float64, bool)) []scoredPair {
	out := make([]scoredPair, len(pairs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers <= 1 {
		for i, p := range pairs {
			s, keep := score(p)
			out[i] = scoredPair{pair: p, sim: s, keep: keep}
		}
		return out
	}
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(pairs) {
			hi = len(pairs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				s, keep := score(pairs[i])
				out[i] = scoredPair{pair: pairs[i], sim: s, keep: keep}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// requireSameType validates that both inputs hold the same object type.
func requireSameType(a, b *model.ObjectSet) error {
	if !a.LDS().SameType(b.LDS()) {
		return fmt.Errorf("match: inputs must share an object type, got %s and %s", a.LDS(), b.LDS())
	}
	return nil
}

// sortedAttrValues collects the non-empty values of attr across a set,
// sorted, for corpus construction.
func sortedAttrValues(set *model.ObjectSet, attr string) []string {
	var vals []string
	set.Each(func(in *model.Instance) bool {
		if v := in.Attr(attr); v != "" {
			vals = append(vals, v)
		}
		return true
	})
	sort.Strings(vals)
	return vals
}
