// Package match implements MOMA's extensible matcher library (§2.2):
// generic attribute matchers parameterized by attribute pair, similarity
// function and threshold; a multi-attribute matcher; a TF-IDF matcher that
// builds its corpus from the match inputs; and the neighborhood matcher of
// §4.2 that derives same-mappings from association mappings plus an
// existing same-mapping.
//
// Matchers conform to a single interface — they produce a same-mapping —
// so that workflows can combine any of them uniformly, and they are
// registered by name in a Registry for use from the script language.
package match

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
)

// Matcher computes a same-mapping between two object sets of the same
// object type. Implementations must be safe for reuse across calls.
type Matcher interface {
	// Match returns a same-mapping between a and b.
	Match(a, b *model.ObjectSet) (*mapping.Mapping, error)
	// Name identifies the matcher in reports and registries.
	Name() string
}

// Func adapts a function to the Matcher interface.
type Func struct {
	MatcherName string
	Fn          func(a, b *model.ObjectSet) (*mapping.Mapping, error)
}

// Match implements Matcher.
func (f Func) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) { return f.Fn(a, b) }

// Name implements Matcher.
func (f Func) Name() string { return f.MatcherName }

// Registry holds named matchers. The paper's matcher library also admits
// whole workflows as matchers; anything satisfying Matcher can register.
type Registry struct {
	mu       sync.RWMutex
	matchers map[string]Matcher
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{matchers: make(map[string]Matcher)}
}

// Register adds a matcher under its name; duplicate names are rejected.
func (r *Registry) Register(m Matcher) error {
	if m == nil || m.Name() == "" {
		return fmt.Errorf("match: Register needs a named matcher")
	}
	key := strings.ToLower(m.Name())
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.matchers[key]; dup {
		return fmt.Errorf("match: duplicate matcher %q", m.Name())
	}
	r.matchers[key] = m
	r.order = append(r.order, m.Name())
	return nil
}

// MustRegister panics on Register error (static wiring).
func (r *Registry) MustRegister(m Matcher) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Lookup finds a matcher by case-insensitive name.
func (r *Registry) Lookup(name string) (Matcher, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.matchers[strings.ToLower(name)]
	return m, ok
}

// Names returns registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// ConfigurableWorkers is implemented by matchers whose scoring parallelism
// can be configured externally. WithWorkers returns a copy with the given
// worker count — matchers must stay safe for reuse, so the receiver is never
// mutated. The workflow engine uses this to push one Workers setting through
// every matcher of a workflow.
type ConfigurableWorkers interface {
	Matcher
	// WithWorkers returns a copy of the matcher scoring with n workers.
	WithWorkers(n int) Matcher
}

// scoreBatchSize is the number of candidate pairs handed to a scoring
// worker at a time. Batches amortize channel operations; the pipeline holds
// at most ~2·workers batches in flight, so memory stays bounded regardless
// of how many candidates the blocker streams.
const scoreBatchSize = 512

// keptPair is one above-threshold correspondence tagged with the global
// stream position of its candidate pair, so the parallel pipeline can
// restore the blocker's emission order before inserting into the mapping.
type keptPair struct {
	seq  uint64
	pair block.Pair
	sim  float64
}

// streamScore drains a candidate-pair stream through a bounded worker
// pipeline and calls emit, in stream order, for every pair score keeps.
// Unlike a materialized scoring pass, memory is O(workers·batch + kept):
// the full candidate set — potentially O(n·m) — never exists as a slice,
// and only kept correspondences are retained. score must be safe for
// concurrent use when workers > 1; emit runs on the calling goroutine.
func streamScore(stream func(yield func(block.Pair) bool), workers int, score func(block.Pair) (float64, bool), emit func(block.Pair, float64)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Pipeline metrics accumulate in locals and flush once on return — the
	// per-pair loop must not pay atomic traffic.
	var pairs, kept uint64
	defer func() {
		matchPairsTotal.Add(pairs)
		matchKeptTotal.Add(kept)
	}()
	if workers <= 1 {
		stream(func(p block.Pair) bool {
			pairs++
			if s, keep := score(p); keep {
				kept++
				emit(p, s)
			}
			return true
		})
		return
	}
	type batch struct {
		seq   uint64 // stream position of pairs[0]
		pairs []block.Pair
	}
	// Workers start lazily, on the first full batch: a stream that fits in
	// one batch is scored inline below, where goroutine spin-up and the
	// shard merge would cost more than the scoring itself.
	var (
		batches chan batch
		shards  [][]keptPair
		wg      sync.WaitGroup
	)
	startWorkers := func() {
		batches = make(chan batch, workers)
		shards = make([][]keptPair, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var mine []keptPair
				for bt := range batches {
					for i, p := range bt.pairs {
						if s, keep := score(p); keep {
							mine = append(mine, keptPair{seq: bt.seq + uint64(i), pair: p, sim: s})
						}
					}
				}
				shards[w] = mine
			}(w)
		}
	}
	// sendBatch times the channel send: a non-zero wait means every worker
	// is busy and the producer is back-pressured.
	sendBatch := func(bt batch) {
		t0 := time.Now()
		batches <- bt
		matchQueueWait.Observe(time.Since(t0).Seconds())
		matchBatchesTotal.Inc()
	}
	var seq uint64
	buf := make([]block.Pair, 0, scoreBatchSize)
	stream(func(p block.Pair) bool {
		pairs++
		buf = append(buf, p)
		if len(buf) == scoreBatchSize {
			if batches == nil {
				startWorkers()
			}
			sendBatch(batch{seq: seq, pairs: buf})
			seq += uint64(len(buf))
			buf = make([]block.Pair, 0, scoreBatchSize)
		}
		return true
	})
	if batches == nil {
		for _, p := range buf {
			if s, keep := score(p); keep {
				kept++
				emit(p, s)
			}
		}
		return
	}
	if len(buf) > 0 {
		sendBatch(batch{seq: seq, pairs: buf})
	}
	close(batches)
	wg.Wait()
	// Merge the per-worker shards back into stream order: results must be
	// bit-identical to the sequential path, including mapping insertion
	// order. Kept correspondences are few relative to candidates, so the
	// sort is cheap.
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	all := make([]keptPair, 0, total)
	for _, s := range shards {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq < all[j].seq })
	kept += uint64(len(all))
	for _, k := range all {
		emit(k.pair, k.sim)
	}
}

// requireSameType validates that both inputs hold the same object type.
func requireSameType(a, b *model.ObjectSet) error {
	if !a.LDS().SameType(b.LDS()) {
		return fmt.Errorf("match: inputs must share an object type, got %s and %s", a.LDS(), b.LDS())
	}
	return nil
}

// sortedAttrValues collects the non-empty values of attr across a set,
// sorted, for corpus construction.
func sortedAttrValues(set *model.ObjectSet, attr string) []string {
	var vals []string
	set.Each(func(in *model.Instance) bool {
		if v := in.Attr(attr); v != "" {
			vals = append(vals, v)
		}
		return true
	})
	sort.Strings(vals)
	return vals
}
