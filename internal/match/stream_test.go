package match

import (
	"reflect"
	"testing"

	"repro/internal/block"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

// materializedReference reproduces the seed scoring path the streaming
// pipeline replaced: materialize the blocker's full pair slice, score it
// sequentially over raw strings, and insert kept pairs in order. The
// streaming matchers must be bit-identical to this, including mapping
// insertion order.
func materializedReference(a, b *model.ObjectSet, blocker block.Blocker, attrA, attrB string, fn sim.Func, threshold float64) *mapping.Mapping {
	out := mapping.NewSame(a.LDS(), b.LDS())
	for _, p := range blocker.Pairs(a, b) {
		s := fn(a.Get(p.A).Attr(attrA), b.Get(p.B).Attr(attrB))
		if s >= threshold {
			out.AddMax(p.A, p.B, s)
		}
	}
	return out
}

// mappingsIdentical asserts got and want hold the same correspondence
// sequence — identical pairs, similarities and insertion order.
func mappingsIdentical(t *testing.T, got, want *mapping.Mapping, label string) {
	t.Helper()
	gc, wc := got.Correspondences(), want.Correspondences()
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("%s: correspondence sequences differ\n got %d corrs: %.8v\nwant %d corrs: %.8v",
			label, len(gc), gc, len(wc), wc)
	}
}

// TestStreamedAttributeMatchesMaterialized is the differential test pinning
// the streaming pipeline to the seed path: for every blocker and for
// sequential and parallel scoring, the streamed Attribute matcher must
// return the exact mapping of the materialize-then-score reference.
func TestStreamedAttributeMatchesMaterialized(t *testing.T) {
	a, b := syntheticPubs(120)
	blockers := []block.Blocker{
		block.CrossProduct{},
		block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1},
		block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 2},
		block.SortedNeighborhood{AttrA: "title", AttrB: "name", Window: 5},
	}
	for _, bl := range blockers {
		want := materializedReference(a, b, bl, "title", "name", sim.Trigram, 0.3)
		for _, workers := range []int{1, 5} {
			m := &Attribute{
				MatcherName: "stream", AttrA: "title", AttrB: "name",
				Sim: sim.Trigram, Threshold: 0.3, Blocker: bl, Workers: workers,
			}
			got, err := m.Match(a, b)
			if err != nil {
				t.Fatal(err)
			}
			mappingsIdentical(t, got, want, bl.String())
		}
	}
}

// TestStreamedMultiAttributeMatchesMaterialized pins the multi-attribute
// streaming path the same way, against a weighted-average reference.
func TestStreamedMultiAttributeMatchesMaterialized(t *testing.T) {
	a, b := syntheticPubs(100)
	bl := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1}
	pairs := []AttrPair{
		{AttrA: "title", AttrB: "name", Sim: sim.Trigram, Weight: 3},
		{AttrA: "authors", AttrB: "authors", Sim: sim.PersonName, Weight: 1},
		{AttrA: "year", AttrB: "year", Sim: sim.YearSim, Weight: 2},
	}
	want := mapping.NewSame(a.LDS(), b.LDS())
	for _, p := range bl.Pairs(a, b) {
		ia, ib := a.Get(p.A), b.Get(p.B)
		var sum float64
		for _, ap := range pairs {
			sum += ap.Weight * ap.Sim(ia.Attr(ap.AttrA), ib.Attr(ap.AttrB))
		}
		if s := sum / 6; s >= 0.4 {
			want.AddMax(p.A, p.B, s)
		}
	}
	for _, workers := range []int{1, 6} {
		m := &MultiAttribute{
			MatcherName: "stream-multi", Pairs: pairs, Threshold: 0.4,
			Blocker: bl, Workers: workers,
		}
		got, err := m.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mappingsIdentical(t, got, want, "multi")
	}
}

// TestTokenReuseMatchesFreshTokenization pins the blocking-layer token
// reuse: when the match attribute coincides with the blocking attribute,
// the profile build consumes the blocker's cached sim.Tokens output, and
// the result must equal both a non-coinciding configuration and the string
// fallback — for every token-consuming profiled measure.
func TestTokenReuseMatchesFreshTokenization(t *testing.T) {
	a, b := syntheticPubs(80)
	for _, fn := range []struct {
		name string
		sim  sim.Func
	}{
		{"TokenJaccard", sim.TokenJaccard},
		{"TokenDice", sim.TokenDice},
		{"MongeElkan", sim.MongeElkanJaroWinkler},
		{"PersonName", sim.PersonName},
	} {
		// Blocking attribute == match attribute: token reuse active.
		reusing := &Attribute{
			MatcherName: fn.name, AttrA: "title", AttrB: "name",
			Sim: fn.sim, Threshold: 0.25,
			Blocker: block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1},
		}
		// Blocking attribute != match attribute: profiles tokenize fresh.
		fresh := &Attribute{
			MatcherName: fn.name, AttrA: "title", AttrB: "name",
			Sim: fn.sim, Threshold: 0.25,
			Blocker: block.TokenBlocking{AttrA: "authors", AttrB: "authors", MinShared: 1},
		}
		mr, err := reusing.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mf, err := fresh.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Different blockers generate different candidate sets; compare on
		// the intersection the stricter blocker kept.
		for _, c := range mr.Correspondences() {
			if s, ok := mf.Sim(c.Domain, c.Range); ok && s != c.Sim {
				t.Errorf("%s: reused-token score (%s,%s)=%v, fresh=%v", fn.name, c.Domain, c.Range, c.Sim, s)
			}
		}
		// And against the materialized string reference on the same blocker.
		want := materializedReference(a, b, reusing.Blocker, "title", "name", fn.sim, 0.25)
		mappingsIdentical(t, mr, want, fn.name+" vs reference")
	}
}

// TestInternedMatchesStringFallback pins the interned pipeline against the
// string-keyed path at the mapping level: for every token-consuming
// measure, a matcher on the profiled path (interned blocking columns,
// ID-keyed token sets) must produce the exact correspondence sequence —
// scores and insertion order — of the same matcher forced onto the
// per-pair string fallback by hiding the measure behind a closure.
func TestInternedMatchesStringFallback(t *testing.T) {
	a, b := syntheticPubs(90)
	for _, fn := range []struct {
		name string
		sim  sim.Func
	}{
		{"TokenJaccard", sim.TokenJaccard},
		{"TokenDice", sim.TokenDice},
		{"Trigram", sim.Trigram},
		{"MongeElkan", sim.MongeElkanJaroWinkler},
		{"PersonName", sim.PersonName},
	} {
		bl := block.TokenBlocking{AttrA: "title", AttrB: "name", MinShared: 1}
		interned := &Attribute{
			MatcherName: fn.name, AttrA: "title", AttrB: "name",
			Sim: fn.sim, Threshold: 0.25, Blocker: bl,
		}
		// Wrapping in a closure defeats ProfiledOf: scoring falls back to
		// raw string pairs, bypassing profiles and interning entirely.
		wrapped := func(x, y string) float64 { return fn.sim(x, y) }
		stringPath := &Attribute{
			MatcherName: fn.name + "-strings", AttrA: "title", AttrB: "name",
			Sim: wrapped, Threshold: 0.25, Blocker: bl,
		}
		mi, err := interned.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ms, err := stringPath.Match(a, b)
		if err != nil {
			t.Fatal(err)
		}
		mappingsIdentical(t, mi, ms, fn.name+" interned vs string fallback")
	}
}

// TestTFIDFTokenReuse covers the corpus-backed measure's ProfileTokens path
// (blocking attribute == match attribute).
func TestTFIDFTokenReuse(t *testing.T) {
	a, b := syntheticPubs(80)
	build := func(blockAttrA, blockAttrB string) *TFIDFAttribute {
		return &TFIDFAttribute{
			MatcherName: "tfidf", AttrA: "title", AttrB: "name", Threshold: 0.2,
			Blocker: block.TokenBlocking{AttrA: blockAttrA, AttrB: blockAttrB, MinShared: 1},
		}
	}
	mr, err := build("title", "name").Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	mf, err := build("authors", "authors").Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range mr.Correspondences() {
		if s, ok := mf.Sim(c.Domain, c.Range); ok && s != c.Sim {
			t.Errorf("tfidf: reused-token score (%s,%s)=%v, fresh=%v", c.Domain, c.Range, c.Sim, s)
		}
	}
}

// TestWithWorkersReturnsConfiguredCopy asserts the engine-facing
// ConfigurableWorkers implementations never mutate the receiver.
func TestWithWorkersReturnsConfiguredCopy(t *testing.T) {
	attr := &Attribute{MatcherName: "w", AttrA: "x", AttrB: "x", Sim: sim.Trigram, Workers: 1}
	multi := &MultiAttribute{MatcherName: "wm", Workers: 1}
	tfidf := &TFIDFAttribute{MatcherName: "wt", Workers: 1}
	for _, tc := range []struct {
		m       ConfigurableWorkers
		workers func() int
	}{
		{attr, func() int { return attr.Workers }},
		{multi, func() int { return multi.Workers }},
		{tfidf, func() int { return tfidf.Workers }},
	} {
		cp := tc.m.WithWorkers(7)
		if tc.workers() != 1 {
			t.Errorf("%s: WithWorkers mutated the receiver", tc.m.Name())
		}
		if cp.Name() != tc.m.Name() {
			t.Errorf("%s: copy changed name to %s", tc.m.Name(), cp.Name())
		}
	}
	if cp := attr.WithWorkers(7).(*Attribute); cp.Workers != 7 {
		t.Errorf("copy Workers = %d, want 7", cp.Workers)
	}
}
