package model

import "repro/internal/obs"

// The process-global ID dictionary's size is exported as a scrape-time
// gauge; together with moma_sim_dict_terms it bounds the resident
// vocabulary of the columnar mapping core.
func init() {
	obs.Default.GaugeFunc("moma_model_dict_ids",
		"Interned object IDs in the process-global model.IDs dictionary.",
		func() float64 { return float64(IDs.Len()) })
}
