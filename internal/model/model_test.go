package model

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLDSString(t *testing.T) {
	l := LDS{Source: "DBLP", Type: Publication}
	if got, want := l.String(), "Publication@DBLP"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseLDS(t *testing.T) {
	tests := []struct {
		in      string
		want    LDS
		wantErr bool
	}{
		{"Publication@DBLP", LDS{"DBLP", Publication}, false},
		{"Author@ACM", LDS{"ACM", Author}, false},
		{"Venue@GS", LDS{"GS", Venue}, false},
		{"NoAt", LDS{}, true},
		{"@DBLP", LDS{}, true},
		{"Publication@", LDS{}, true},
		{"", LDS{}, true},
	}
	for _, tc := range tests {
		got, err := ParseLDS(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseLDS(%q) error = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseLDS(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestParseLDSRoundTrip(t *testing.T) {
	f := func(src, typ string) bool {
		if src == "" || typ == "" || strings.ContainsRune(src, '@') || strings.ContainsRune(typ, '@') {
			return true // skip inputs outside the grammar
		}
		l := LDS{Source: PDS(src), Type: ObjectType(typ)}
		got, err := ParseLDS(l.String())
		return err == nil && got == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLDSSameType(t *testing.T) {
	a := LDS{"DBLP", Publication}
	b := LDS{"ACM", Publication}
	c := LDS{"DBLP", Author}
	if !a.SameType(b) {
		t.Error("Publication@DBLP and Publication@ACM should be same type")
	}
	if a.SameType(c) {
		t.Error("Publication@DBLP and Author@DBLP should differ")
	}
}

func TestInstanceAttrs(t *testing.T) {
	in := NewInstance("p1", map[string]string{"title": "Generic Schema Matching with Cupid", "year": "2001"})
	if got := in.Attr("title"); got != "Generic Schema Matching with Cupid" {
		t.Errorf("Attr(title) = %q", got)
	}
	if got := in.Attr("missing"); got != "" {
		t.Errorf("Attr(missing) = %q, want empty", got)
	}
	if !in.HasAttr("year") || in.HasAttr("missing") {
		t.Error("HasAttr mismatch")
	}
	y, ok := in.IntAttr("year")
	if !ok || y != 2001 {
		t.Errorf("IntAttr(year) = %d, %v", y, ok)
	}
	if _, ok := in.IntAttr("title"); ok {
		t.Error("IntAttr(title) should fail")
	}
	if _, ok := in.IntAttr("missing"); ok {
		t.Error("IntAttr(missing) should fail")
	}
}

func TestIntAttrTrimsSpace(t *testing.T) {
	in := NewInstance("p", map[string]string{"year": " 1999 "})
	if y, ok := in.IntAttr("year"); !ok || y != 1999 {
		t.Errorf("IntAttr = %d, %v; want 1999, true", y, ok)
	}
}

func TestNewInstanceCopiesAttrs(t *testing.T) {
	src := map[string]string{"a": "1"}
	in := NewInstance("x", src)
	src["a"] = "2"
	if in.Attr("a") != "1" {
		t.Error("NewInstance must copy the attribute map")
	}
}

func TestInstanceSetAttrNilMap(t *testing.T) {
	in := &Instance{ID: "x"}
	in.SetAttr("k", "v")
	if in.Attr("k") != "v" {
		t.Error("SetAttr on nil map failed")
	}
}

func TestInstanceNilSafety(t *testing.T) {
	var in *Instance
	if in.Attr("x") != "" {
		t.Error("nil Attr should be empty")
	}
	if in.HasAttr("x") {
		t.Error("nil HasAttr should be false")
	}
	if in.String() != "<nil>" {
		t.Error("nil String should be <nil>")
	}
}

func TestInstanceClone(t *testing.T) {
	in := NewInstance("p", map[string]string{"k": "v"})
	cp := in.Clone()
	cp.SetAttr("k", "w")
	if in.Attr("k") != "v" {
		t.Error("Clone must not share attribute storage")
	}
}

func TestInstanceStringSortedKeys(t *testing.T) {
	in := NewInstance("p1", map[string]string{"b": "2", "a": "1"})
	if got, want := in.String(), "p1{a=1, b=2}"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestObjectSetBasics(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	s.AddNew("p1", map[string]string{"title": "a"})
	s.AddNew("p2", map[string]string{"title": "b"})
	s.AddNew("p3", map[string]string{"title": "c"})

	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Has("p2") || s.Has("p9") {
		t.Error("Has mismatch")
	}
	if got := s.Get("p2").Attr("title"); got != "b" {
		t.Errorf("Get(p2).title = %q", got)
	}
	want := []ID{"p1", "p2", "p3"}
	if got := s.IDs(); !reflect.DeepEqual(got, want) {
		t.Errorf("IDs = %v, want %v", got, want)
	}
}

func TestObjectSetReplaceKeepsOrder(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	s.AddNew("p1", nil)
	s.AddNew("p2", nil)
	s.AddNew("p1", map[string]string{"title": "replaced"})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.IDs(); !reflect.DeepEqual(got, []ID{"p1", "p2"}) {
		t.Errorf("IDs = %v", got)
	}
	if s.Get("p1").Attr("title") != "replaced" {
		t.Error("replacement not applied")
	}
}

func TestObjectSetIndexOf(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	ids := []ID{"p1", "p2", "p3", "p4"}
	for _, id := range ids {
		s.AddNew(id, map[string]string{"id": string(id)})
	}
	for want, id := range ids {
		if got := s.IndexOf(id); got != want {
			t.Errorf("IndexOf(%s) = %d, want %d", id, got, want)
		}
		if got := s.At(want); got.ID != id {
			t.Errorf("At(%d) = %s, want %s", want, got.ID, id)
		}
	}
	if got := s.IndexOf("ghost"); got != -1 {
		t.Errorf("IndexOf(ghost) = %d, want -1", got)
	}
	// Replacing keeps the ordinal; new instances extend the range.
	s.AddNew("p2", map[string]string{"id": "replaced"})
	if got := s.IndexOf("p2"); got != 1 {
		t.Errorf("IndexOf after replace = %d, want 1", got)
	}
	if s.At(1).Attr("id") != "replaced" {
		t.Error("At must observe the replacement")
	}
	s.AddNew("p5", nil)
	if got := s.IndexOf("p5"); got != 4 {
		t.Errorf("IndexOf(p5) = %d, want 4", got)
	}
	// Derived sets renumber densely from zero.
	sub := s.Subset([]ID{"p3", "p1"})
	if sub.IndexOf("p3") != 0 || sub.IndexOf("p1") != 1 {
		t.Errorf("subset ordinals = %d, %d; want 0, 1", sub.IndexOf("p3"), sub.IndexOf("p1"))
	}
	if sub.IndexOf("p2") != -1 {
		t.Error("subset must not index excluded instances")
	}
}

func TestObjectSetEachEarlyStop(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	for _, id := range []ID{"a", "b", "c", "d"} {
		s.AddNew(id, nil)
	}
	var seen int
	s.Each(func(in *Instance) bool {
		seen++
		return seen < 2
	})
	if seen != 2 {
		t.Errorf("seen = %d, want 2", seen)
	}
}

func TestObjectSetFilterSubset(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	s.AddNew("p1", map[string]string{"year": "2001"})
	s.AddNew("p2", map[string]string{"year": "2002"})
	s.AddNew("p3", map[string]string{"year": "2001"})

	f := s.Filter(func(in *Instance) bool { return in.Attr("year") == "2001" })
	if got := f.IDs(); !reflect.DeepEqual(got, []ID{"p1", "p3"}) {
		t.Errorf("Filter IDs = %v", got)
	}
	sub := s.Subset([]ID{"p3", "nope", "p1"})
	if got := sub.IDs(); !reflect.DeepEqual(got, []ID{"p3", "p1"}) {
		t.Errorf("Subset IDs = %v", got)
	}
	if sub.LDS() != s.LDS() {
		t.Error("Subset must keep the LDS")
	}
}

func TestObjectSetClone(t *testing.T) {
	s := NewObjectSet(LDS{"DBLP", Publication})
	s.AddNew("p1", map[string]string{"k": "v"})
	c := s.Clone()
	c.Get("p1").SetAttr("k", "w")
	if s.Get("p1").Attr("k") != "v" {
		t.Error("Clone must deep-copy instances")
	}
}

func TestObjectSetInsertionOrderProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewObjectSet(LDS{"X", "T"})
		var want []ID
		seen := map[ID]bool{}
		for _, r := range raw {
			id := ID(rune('a' + r%26))
			s.AddNew(id, nil)
			if !seen[id] {
				seen[id] = true
				want = append(want, id)
			}
		}
		got := s.IDs()
		if len(got) != len(want) || s.Len() != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
