package model

import (
	"strings"
	"testing"
)

func TestCardinalityString(t *testing.T) {
	tests := []struct {
		c    Cardinality
		want string
	}{
		{CardOneToOne, "1:1"},
		{CardOneToMany, "1:n"},
		{CardManyToOne, "n:1"},
		{CardManyToMany, "n:m"},
		{CardUnknown, "?"},
	}
	for _, tc := range tests {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.c, got, tc.want)
		}
	}
}

func TestCardinalityInverse(t *testing.T) {
	if CardOneToMany.Inverse() != CardManyToOne {
		t.Error("1:n inverse should be n:1")
	}
	if CardManyToOne.Inverse() != CardOneToMany {
		t.Error("n:1 inverse should be 1:n")
	}
	if CardManyToMany.Inverse() != CardManyToMany {
		t.Error("n:m inverse should be n:m")
	}
	if CardOneToOne.Inverse() != CardOneToOne {
		t.Error("1:1 inverse should be 1:1")
	}
}

func TestSMMDeclareMapping(t *testing.T) {
	m := NewSMM()
	d := MappingDecl{
		Name:        "DBLP.VenuePub",
		Type:        "VenuePub",
		Domain:      LDS{"DBLP", Venue},
		Range:       LDS{"DBLP", Publication},
		Cardinality: CardOneToMany,
	}
	if err := m.DeclareMapping(d); err != nil {
		t.Fatalf("DeclareMapping: %v", err)
	}
	if !m.HasLDS(LDS{"DBLP", Venue}) || !m.HasLDS(LDS{"DBLP", Publication}) {
		t.Error("DeclareMapping should register both endpoints")
	}
	got, ok := m.Mapping("DBLP.VenuePub")
	if !ok || got.Cardinality != CardOneToMany {
		t.Errorf("Mapping lookup = %+v, %v", got, ok)
	}
	if err := m.DeclareMapping(d); err == nil {
		t.Error("duplicate declaration should fail")
	}
}

func TestSMMDeclareMappingValidation(t *testing.T) {
	m := NewSMM()
	if err := m.DeclareMapping(MappingDecl{Type: "x"}); err == nil {
		t.Error("unnamed declaration should fail")
	}
	bad := MappingDecl{
		Name:   "bad",
		Type:   SameMappingType,
		Domain: LDS{"DBLP", Publication},
		Range:  LDS{"ACM", Author},
	}
	if err := m.DeclareMapping(bad); err == nil {
		t.Error("same-mapping across object types should fail")
	}
}

func TestSMMMappingsBetween(t *testing.T) {
	m := BibliographicSMM()
	got := m.MappingsBetween(LDS{"DBLP", Venue}, LDS{"DBLP", Publication})
	if len(got) != 2 {
		t.Fatalf("MappingsBetween = %d decls, want 2 (VenuePub and PubVenue)", len(got))
	}
}

func TestBibliographicSMMShape(t *testing.T) {
	m := BibliographicSMM()
	wantPDS := []PDS{"ACM", "DBLP", "GS"}
	gotPDS := m.PhysicalSources()
	if len(gotPDS) != len(wantPDS) {
		t.Fatalf("PhysicalSources = %v", gotPDS)
	}
	for i := range wantPDS {
		if gotPDS[i] != wantPDS[i] {
			t.Errorf("PhysicalSources[%d] = %s, want %s", i, gotPDS[i], wantPDS[i])
		}
	}
	if got := len(m.LogicalSources()); got != 7 {
		t.Errorf("LogicalSources = %d, want 7 (3+3+1)", got)
	}
	// §2.1: "there may be up to 8 same-mappings (3 for publications, 3 for
	// authors, 2 for venues)". Authors: 3@ (DBLP,ACM) -> 1 pair... The paper
	// counts DBLP/ACM/GS publications (3 pairs), DBLP/ACM authors with GS
	// authors absent => its SMM figure omits GS authors; here we have
	// pairs: pubs C(3,2)=3, authors C(2,2)=1, venues C(2,2)=1. The paper's
	// count of 8 assumes GS author/venue sources too; our Fig. 2 replica has
	// exactly the drawn sources, giving 5 possible same-mappings.
	if got := len(m.PossibleSameMappings()); got != 5 {
		t.Errorf("PossibleSameMappings = %d, want 5", got)
	}
	for _, pair := range m.PossibleSameMappings() {
		if !pair[0].SameType(pair[1]) {
			t.Errorf("pair %v mixes object types", pair)
		}
	}
}

func TestSMMString(t *testing.T) {
	s := BibliographicSMM().String()
	for _, frag := range []string{"PDS DBLP", "LDS Publication@GS", "MAP DBLP.VenuePub", "1:n"} {
		if !strings.Contains(s, frag) {
			t.Errorf("SMM.String() missing %q in:\n%s", frag, s)
		}
	}
}
