// Package model defines MOMA's object model: physical and logical data
// sources, semantic object types, and object instances.
//
// Following the paper (§2.1), a physical data source (PDS) such as DBLP or
// Google Scholar hosts one or more logical data sources (LDS). Each LDS
// contains the instances of exactly one semantic object type (Publication,
// Author, Venue, ...). Every instance is identified by an ID that is unique
// within its LDS and carries a flat bag of attribute values.
package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ObjectType names a semantic object type such as "Publication".
type ObjectType string

// Common object types of the bibliographic domain used throughout the
// paper's examples and evaluation.
const (
	Publication ObjectType = "Publication"
	Author      ObjectType = "Author"
	Venue       ObjectType = "Venue"
)

// PDS names a physical data source, e.g. "DBLP".
type PDS string

// LDS identifies a logical data source: the instances of one object type
// within one physical data source, e.g. Publication@DBLP.
type LDS struct {
	Source PDS
	Type   ObjectType
}

// String renders the LDS in the paper's Type@Source notation.
func (l LDS) String() string { return string(l.Type) + "@" + string(l.Source) }

// SameType reports whether both logical sources hold the same object type,
// the precondition for same-mappings and for the merge operator.
func (l LDS) SameType(o LDS) bool { return l.Type == o.Type }

// ParseLDS parses the Type@Source notation produced by LDS.String.
func ParseLDS(s string) (LDS, error) {
	at := strings.IndexByte(s, '@')
	if at <= 0 || at == len(s)-1 {
		return LDS{}, fmt.Errorf("model: invalid LDS %q, want Type@Source", s)
	}
	return LDS{Source: PDS(s[at+1:]), Type: ObjectType(s[:at])}, nil
}

// ID identifies an object instance within its LDS.
type ID string

// Instance is a single object instance: an ID plus attribute values.
// Attribute values are kept as strings, matching the paper's setting of
// matching real, possibly schema-poor web data; typed accessors convert on
// demand.
type Instance struct {
	ID    ID
	Attrs map[string]string
}

// NewInstance returns an instance with the given id and a copy of attrs.
func NewInstance(id ID, attrs map[string]string) *Instance {
	cp := make(map[string]string, len(attrs))
	for k, v := range attrs {
		cp[k] = v
	}
	return &Instance{ID: id, Attrs: cp}
}

// Attr returns the value of the named attribute, or "" if absent.
func (in *Instance) Attr(name string) string {
	if in == nil || in.Attrs == nil {
		return ""
	}
	return in.Attrs[name]
}

// HasAttr reports whether the named attribute is present (even if empty).
func (in *Instance) HasAttr(name string) bool {
	if in == nil || in.Attrs == nil {
		return false
	}
	_, ok := in.Attrs[name]
	return ok
}

// IntAttr returns the attribute parsed as an integer. ok is false when the
// attribute is missing or not an integer; the paper's sources have optional
// numeric attributes (e.g. publication year in Google Scholar).
func (in *Instance) IntAttr(name string) (v int, ok bool) {
	s := in.Attr(name)
	if s == "" {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return 0, false
	}
	return n, true
}

// SetAttr sets an attribute value, allocating the map if needed. When the
// instance belongs to an ObjectSet that may have cached derivations (the
// blocking layer caches token columns keyed by ObjectSet.Version), call
// the set's Touch afterwards — in-place mutation is invisible to the
// version counter and would otherwise serve stale tokens.
func (in *Instance) SetAttr(name, value string) {
	if in.Attrs == nil {
		in.Attrs = make(map[string]string)
	}
	in.Attrs[name] = value
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return NewInstance(in.ID, in.Attrs)
}

// String renders the instance as id{k=v, ...} with sorted keys, for logs and
// test failure messages.
func (in *Instance) String() string {
	if in == nil {
		return "<nil>"
	}
	keys := make([]string, 0, len(in.Attrs))
	for k := range in.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(string(in.ID))
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%s", k, in.Attrs[k])
	}
	b.WriteByte('}')
	return b.String()
}

// ObjectSet is the set of instances of one LDS (or a subset of it: the
// paper's match inputs "need not be entire LDS but only subsets", §2.1).
// Iteration order is insertion order, which keeps runs deterministic.
type ObjectSet struct {
	lds     LDS
	byID    map[ID]*Instance
	pos     map[ID]int
	order   []ID
	version uint64
}

// NewObjectSet returns an empty object set for the given LDS.
func NewObjectSet(lds LDS) *ObjectSet {
	return &ObjectSet{lds: lds, byID: make(map[ID]*Instance), pos: make(map[ID]int)}
}

// LDS returns the logical data source this set draws from.
func (s *ObjectSet) LDS() LDS { return s.lds }

// Len returns the number of instances in the set.
func (s *ObjectSet) Len() int { return len(s.order) }

// Add inserts or replaces an instance. Replacing keeps the original
// position so iteration order stays stable.
func (s *ObjectSet) Add(in *Instance) {
	if _, exists := s.byID[in.ID]; !exists {
		s.pos[in.ID] = len(s.order)
		s.order = append(s.order, in.ID)
	}
	s.byID[in.ID] = in
	s.version++
}

// Version returns a counter that changes on every Add. Derived structures
// (the blocking layer's per-set token and index cache) key their validity on
// it: an unchanged (set, version) pair guarantees the set's membership and
// instances are the ones the structure was built from. Mutating an instance
// in place (SetAttr) does not bump the version; call Touch afterwards when
// the instance belongs to a set that may have cached derivations.
func (s *ObjectSet) Version() uint64 { return s.version }

// Touch bumps the version without changing membership, invalidating cached
// derivations after in-place instance mutation.
func (s *ObjectSet) Touch() { s.version++ }

// AddNew is a convenience for Add(NewInstance(id, attrs)).
func (s *ObjectSet) AddNew(id ID, attrs map[string]string) *Instance {
	in := NewInstance(id, attrs)
	s.Add(in)
	return in
}

// Get returns the instance with the given id, or nil.
func (s *ObjectSet) Get(id ID) *Instance { return s.byID[id] }

// IndexOf returns the insertion-order ordinal of the instance with the
// given id, or -1 when absent. Ordinals are dense in [0, Len()) and stable
// (instances are never removed from a set), which lets hot paths replace
// per-id map lookups with array indexing.
func (s *ObjectSet) IndexOf(id ID) int {
	if i, ok := s.pos[id]; ok {
		return i
	}
	return -1
}

// At returns the instance at the given insertion-order ordinal. It panics
// when i is out of [0, Len()), mirroring slice indexing.
func (s *ObjectSet) At(i int) *Instance { return s.byID[s.order[i]] }

// IDAt returns the id at the given insertion-order ordinal without the map
// lookup At performs — the ordinal-to-id translation on blocking hot paths.
func (s *ObjectSet) IDAt(i int) ID { return s.order[i] }

// Has reports whether an instance with the given id is present.
func (s *ObjectSet) Has(id ID) bool { _, ok := s.byID[id]; return ok }

// IDs returns the instance ids in insertion order. The returned slice is a
// copy and safe to mutate.
func (s *ObjectSet) IDs() []ID {
	ids := make([]ID, len(s.order))
	copy(ids, s.order)
	return ids
}

// Instances returns all instances in insertion order.
func (s *ObjectSet) Instances() []*Instance {
	out := make([]*Instance, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.byID[id])
	}
	return out
}

// Each calls fn for every instance in insertion order, stopping early when
// fn returns false.
func (s *ObjectSet) Each(fn func(*Instance) bool) {
	for _, id := range s.order {
		if !fn(s.byID[id]) {
			return
		}
	}
}

// Filter returns a new object set over the same LDS containing only the
// instances for which keep returns true.
func (s *ObjectSet) Filter(keep func(*Instance) bool) *ObjectSet {
	out := NewObjectSet(s.lds)
	for _, id := range s.order {
		if in := s.byID[id]; keep(in) {
			out.Add(in)
		}
	}
	return out
}

// Subset returns a new object set containing the instances with the given
// ids, skipping unknown ids. It models querying a web source for selected
// objects rather than downloading the full LDS.
func (s *ObjectSet) Subset(ids []ID) *ObjectSet {
	out := NewObjectSet(s.lds)
	for _, id := range ids {
		if in, ok := s.byID[id]; ok {
			out.Add(in)
		}
	}
	return out
}

// Clone returns a deep copy of the set (instances are cloned too).
func (s *ObjectSet) Clone() *ObjectSet {
	out := NewObjectSet(s.lds)
	for _, id := range s.order {
		out.Add(s.byID[id].Clone())
	}
	return out
}
