package model

// Interned object-ID dictionary: dense uint32 ordinals for the mapping core.
//
// The mapping layer stores correspondences as parallel columns of uint32
// ordinals (mapping.Mapping); an IDDict is the symbol table those ordinals
// index into. It mirrors sim.Dict — the term dictionary of PR 4 — but for
// instance IDs, with one deliberate difference: ordinals are DENSE, assigned
// 0..Len()-1 in first-seen order from a single table, so consumers can build
// flat translation arrays and posting structures sized by Len() without the
// shard-interleaved gaps term IDs have. ID volume (one per instance) is
// orders of magnitude below token volume, so a single RWMutex serves the
// write rate that forced sim.Dict to shard.
//
// # Ownership
//
// IDs is the process-global default dictionary: every mapping created with
// mapping.New/NewSame interns through it, so the results of matchers,
// operators and workflows all share one ordinal space — any two such
// mappings compose, merge and compare ordinal-to-ordinal with no
// translation. A persistent repository (store.OpenRepository) owns a private
// IDDict for the mappings it materializes from disk, so a closed store's
// vocabulary is released with it; operators accept mixed-dictionary inputs
// and fall back to ID-level comparison, producing identical results (the
// mapping package's differential tests pin this).
//
// # Ordinal stability
//
// An IDDict is append-only: an ordinal, once assigned, names the same ID for
// the dictionary's lifetime, so ordinals may be cached in long-lived columns
// without invalidation. Ordinals are meaningful only within their dictionary
// and are not stable across processes; the WAL serializes ID strings, never
// ordinals.

import "sync"

// IDDict is a concurrency-safe, append-only ID↔uint32 symbol table with
// dense first-seen ordinals. The zero value is not usable; call NewIDDict
// (or use the global IDs).
type IDDict struct {
	mu   sync.RWMutex
	ords map[ID]uint32 // guarded by mu
	ids  []ID          // guarded by mu
}

// IDs is the process-global default dictionary; see the package comment of
// this file for ownership rules.
var IDs = NewIDDict()

// NewIDDict returns an empty dictionary.
func NewIDDict() *IDDict {
	return &IDDict{ords: make(map[ID]uint32)}
}

// Ord interns id, assigning the next dense ordinal on first sight.
//
//moma:interns
func (d *IDDict) Ord(id ID) uint32 {
	d.mu.RLock()
	ord, ok := d.ords[id]
	d.mu.RUnlock()
	if ok {
		return ord
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if ord, ok = d.ords[id]; ok {
		return ord
	}
	ord = uint32(len(d.ids))
	d.ids = append(d.ids, id)
	d.ords[id] = ord
	return ord
}

// Lookup returns the ordinal of id without interning it.
func (d *IDDict) Lookup(id ID) (uint32, bool) {
	d.mu.RLock()
	ord, ok := d.ords[id]
	d.mu.RUnlock()
	return ord, ok
}

// IDOf returns the ID an ordinal was assigned for. Passing an ordinal from
// a different dictionary (or a never-assigned one) is a bug; IDOf panics on
// out-of-range ordinals.
func (d *IDDict) IDOf(ord uint32) ID {
	d.mu.RLock()
	id := d.ids[ord]
	d.mu.RUnlock()
	return id
}

// Len returns the number of interned IDs.
func (d *IDDict) Len() int {
	d.mu.RLock()
	n := len(d.ids)
	d.mu.RUnlock()
	return n
}

// All returns the ordinal→ID table as a slice: entry i is the ID of ordinal
// i. The dictionary is append-only, so the returned prefix stays valid
// forever; callers must treat it as read-only. Column-iterating hot loops
// use it to resolve ordinals without per-row locking.
func (d *IDDict) All() []ID {
	d.mu.RLock()
	ids := d.ids[:len(d.ids):len(d.ids)]
	d.mu.RUnlock()
	return ids
}

// SetOrds interns every instance ID of the set in insertion order and
// returns the dense translation column: entry i is the ordinal of the
// instance at set ordinal i (ObjectSet.IDAt). Matchers build this once per
// input — O(n) map hits — and then emit correspondences ordinal-to-ordinal.
func (d *IDDict) SetOrds(s *ObjectSet) []uint32 {
	out := make([]uint32, len(s.order))
	for i, id := range s.order {
		out[i] = d.Ord(id)
	}
	return out
}
