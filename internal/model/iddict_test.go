package model

import (
	"fmt"
	"sync"
	"testing"
)

func TestIDDictDenseOrdinals(t *testing.T) {
	d := NewIDDict()
	for i := 0; i < 100; i++ {
		id := ID(fmt.Sprintf("x%d", i))
		if got := d.Ord(id); got != uint32(i) {
			t.Fatalf("Ord(%s) = %d, want %d (first-seen dense)", id, got, i)
		}
	}
	for i := 0; i < 100; i++ {
		id := ID(fmt.Sprintf("x%d", i))
		if got := d.Ord(id); got != uint32(i) {
			t.Fatalf("re-interning %s moved it to %d", id, got)
		}
		if got := d.IDOf(uint32(i)); got != id {
			t.Fatalf("IDOf(%d) = %s, want %s", i, got, id)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	if _, ok := d.Lookup("nope"); ok {
		t.Fatal("Lookup must not intern")
	}
	if d.Len() != 100 {
		t.Fatalf("Lookup grew the dictionary to %d", d.Len())
	}
	all := d.All()
	if len(all) != 100 || all[42] != "x42" {
		t.Fatalf("All() = %d entries, all[42]=%s", len(all), all[42])
	}
}

func TestIDDictSetOrds(t *testing.T) {
	d := NewIDDict()
	set := NewObjectSet(LDS{Source: "S", Type: Publication})
	for i := 0; i < 10; i++ {
		set.AddNew(ID(fmt.Sprintf("p%d", i)), nil)
	}
	ords := d.SetOrds(set)
	if len(ords) != set.Len() {
		t.Fatalf("SetOrds returned %d entries for a %d-instance set", len(ords), set.Len())
	}
	for i, o := range ords {
		if d.IDOf(o) != set.IDAt(i) {
			t.Fatalf("SetOrds[%d] resolves to %s, want %s", i, d.IDOf(o), set.IDAt(i))
		}
	}
}

func TestIDDictConcurrent(t *testing.T) {
	d := NewIDDict()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Half shared ids (contended), half private.
				id := ID(fmt.Sprintf("shared%d", i%100))
				if w%2 == 1 {
					id = ID(fmt.Sprintf("w%d-%d", w, i))
				}
				ord := d.Ord(id)
				if got := d.IDOf(ord); got != id {
					t.Errorf("IDOf(Ord(%s)) = %s", id, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every id resolves consistently afterwards.
	for i := 0; i < 100; i++ {
		id := ID(fmt.Sprintf("shared%d", i))
		ord, ok := d.Lookup(id)
		if !ok || d.IDOf(ord) != id {
			t.Fatalf("shared id %s did not intern consistently", id)
		}
	}
}
