package model

import (
	"fmt"
	"sort"
	"strings"
)

// MappingType names the semantics of a mapping, e.g. "PubAuthor" for
// "publications of author / authors of publication". Same-mappings use
// SameMappingType.
type MappingType string

// SameMappingType is the reserved semantic type of same-mappings, which
// connect instances of the same object type and represent semantic equality
// (§2.1, Definition 1).
const SameMappingType MappingType = "same"

// MappingDecl declares, at the schema level, that mappings of the given
// semantic type exist between two logical sources. Cardinality documents the
// semantic cardinality of the association (§4.2, Fig. 10), which drives how
// promising the neighborhood matcher is.
type MappingDecl struct {
	Name        string
	Type        MappingType
	Domain      LDS
	Range       LDS
	Cardinality Cardinality
}

// Cardinality classifies the semantic cardinality of an association mapping.
type Cardinality int

// Cardinality values as discussed in §4.2 / Figure 10.
const (
	CardUnknown Cardinality = iota
	CardOneToOne
	CardOneToMany // e.g. venue -> publications
	CardManyToOne // e.g. publication -> venue
	CardManyToMany
)

// String renders the cardinality in the paper's notation.
func (c Cardinality) String() string {
	switch c {
	case CardOneToOne:
		return "1:1"
	case CardOneToMany:
		return "1:n"
	case CardManyToOne:
		return "n:1"
	case CardManyToMany:
		return "n:m"
	default:
		return "?"
	}
}

// Inverse returns the cardinality of the inverse mapping.
func (c Cardinality) Inverse() Cardinality {
	switch c {
	case CardOneToMany:
		return CardManyToOne
	case CardManyToOne:
		return CardOneToMany
	default:
		return c
	}
}

// SMM is the source-mapping model (§2.1, Fig. 2): the registry of physical
// sources, logical sources and declared mapping types of a domain.
type SMM struct {
	pds      map[PDS]bool
	lds      map[LDS]bool
	mappings map[string]MappingDecl
	order    []string
}

// NewSMM returns an empty source-mapping model.
func NewSMM() *SMM {
	return &SMM{
		pds:      make(map[PDS]bool),
		lds:      make(map[LDS]bool),
		mappings: make(map[string]MappingDecl),
	}
}

// AddPDS registers a physical data source.
func (m *SMM) AddPDS(p PDS) { m.pds[p] = true }

// AddLDS registers a logical data source (and its physical source).
func (m *SMM) AddLDS(l LDS) {
	m.pds[l.Source] = true
	m.lds[l] = true
}

// HasLDS reports whether the logical source is registered.
func (m *SMM) HasLDS(l LDS) bool { return m.lds[l] }

// PhysicalSources returns all registered physical sources, sorted.
func (m *SMM) PhysicalSources() []PDS {
	out := make([]PDS, 0, len(m.pds))
	for p := range m.pds {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LogicalSources returns all registered logical sources, sorted by their
// string form.
func (m *SMM) LogicalSources() []LDS {
	out := make([]LDS, 0, len(m.lds))
	for l := range m.lds {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// DeclareMapping registers a mapping declaration under its name. Both
// endpoints are registered as logical sources as a side effect. Declaring a
// same-mapping between different object types is an error.
func (m *SMM) DeclareMapping(d MappingDecl) error {
	if d.Name == "" {
		return fmt.Errorf("model: mapping declaration needs a name")
	}
	if d.Type == SameMappingType && !d.Domain.SameType(d.Range) {
		return fmt.Errorf("model: same-mapping %s must connect equal object types, got %s and %s",
			d.Name, d.Domain, d.Range)
	}
	if _, dup := m.mappings[d.Name]; dup {
		return fmt.Errorf("model: duplicate mapping declaration %q", d.Name)
	}
	m.AddLDS(d.Domain)
	m.AddLDS(d.Range)
	m.mappings[d.Name] = d
	m.order = append(m.order, d.Name)
	return nil
}

// Mapping returns the declaration registered under name.
func (m *SMM) Mapping(name string) (MappingDecl, bool) {
	d, ok := m.mappings[name]
	return d, ok
}

// Mappings returns all declarations in declaration order.
func (m *SMM) Mappings() []MappingDecl {
	out := make([]MappingDecl, 0, len(m.order))
	for _, n := range m.order {
		out = append(out, m.mappings[n])
	}
	return out
}

// MappingsBetween returns the declarations connecting the two logical
// sources in either direction.
func (m *SMM) MappingsBetween(a, b LDS) []MappingDecl {
	var out []MappingDecl
	for _, n := range m.order {
		d := m.mappings[n]
		if (d.Domain == a && d.Range == b) || (d.Domain == b && d.Range == a) {
			out = append(out, d)
		}
	}
	return out
}

// PossibleSameMappings returns the unordered LDS pairs of equal object type,
// i.e. all places where a same-mapping could be established. §2.1 notes the
// bibliographic SMM of Fig. 2 admits up to 8 of them.
func (m *SMM) PossibleSameMappings() [][2]LDS {
	lds := m.LogicalSources()
	var out [][2]LDS
	for i := 0; i < len(lds); i++ {
		for j := i + 1; j < len(lds); j++ {
			if lds[i].SameType(lds[j]) {
				out = append(out, [2]LDS{lds[i], lds[j]})
			}
		}
	}
	return out
}

// String renders a compact multi-line description of the model.
func (m *SMM) String() string {
	var b strings.Builder
	b.WriteString("SMM{\n")
	for _, p := range m.PhysicalSources() {
		fmt.Fprintf(&b, "  PDS %s\n", p)
	}
	for _, l := range m.LogicalSources() {
		fmt.Fprintf(&b, "  LDS %s\n", l)
	}
	for _, d := range m.Mappings() {
		fmt.Fprintf(&b, "  MAP %s: %s -> %s (%s, %s)\n", d.Name, d.Domain, d.Range, d.Type, d.Cardinality)
	}
	b.WriteString("}")
	return b.String()
}

// BibliographicSMM builds the source-mapping model of Figure 2: DBLP with
// publications, authors and venues; ACM with the same three types; Google
// Scholar with publications only; and the association mapping types
// publications-of-author, venue-of-publication and co-authors.
func BibliographicSMM() *SMM {
	m := NewSMM()
	dblpPub := LDS{"DBLP", Publication}
	dblpAut := LDS{"DBLP", Author}
	dblpVen := LDS{"DBLP", Venue}
	acmPub := LDS{"ACM", Publication}
	acmAut := LDS{"ACM", Author}
	acmVen := LDS{"ACM", Venue}
	gsPub := LDS{"GS", Publication}

	decls := []MappingDecl{
		{Name: "DBLP.AuthorPub", Type: "AuthorPub", Domain: dblpAut, Range: dblpPub, Cardinality: CardManyToMany},
		{Name: "DBLP.PubAuthor", Type: "PubAuthor", Domain: dblpPub, Range: dblpAut, Cardinality: CardManyToMany},
		{Name: "DBLP.VenuePub", Type: "VenuePub", Domain: dblpVen, Range: dblpPub, Cardinality: CardOneToMany},
		{Name: "DBLP.PubVenue", Type: "PubVenue", Domain: dblpPub, Range: dblpVen, Cardinality: CardManyToOne},
		{Name: "DBLP.CoAuthor", Type: "CoAuthor", Domain: dblpAut, Range: dblpAut, Cardinality: CardManyToMany},
		{Name: "ACM.AuthorPub", Type: "AuthorPub", Domain: acmAut, Range: acmPub, Cardinality: CardManyToMany},
		{Name: "ACM.PubAuthor", Type: "PubAuthor", Domain: acmPub, Range: acmAut, Cardinality: CardManyToMany},
		{Name: "ACM.VenuePub", Type: "VenuePub", Domain: acmVen, Range: acmPub, Cardinality: CardOneToMany},
		{Name: "ACM.PubVenue", Type: "PubVenue", Domain: acmPub, Range: acmVen, Cardinality: CardManyToOne},
		{Name: "ACM.CoAuthor", Type: "CoAuthor", Domain: acmAut, Range: acmAut, Cardinality: CardManyToMany},
	}
	for _, d := range decls {
		if err := m.DeclareMapping(d); err != nil {
			panic(err) // static table; cannot fail
		}
	}
	m.AddLDS(gsPub)
	return m
}
