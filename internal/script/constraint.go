package script

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mapping"
	"repro/internal/model"
)

// Constraint expressions appear as string arguments of select(), e.g.
//
//	"[domain.id]<>[range.id]"
//	"abs([domain.year]-[range.year])<=1"
//	"[domain.kind]='conference' AND [range.year]>=1994"
//
// Grammar:
//
//	orExpr   := andExpr { OR andExpr }
//	andExpr  := cmp { AND cmp }
//	cmp      := sum (op sum)?          op: = <> != < <= > >=
//	sum      := unary { (+|-) unary }
//	unary    := abs '(' orExpr ')' | '(' orExpr ')' | ref | number | 'str'
//	ref      := '[' (domain|range) '.' attr ']'     attr 'id' is the object id
//
// Values are dynamically typed: numbers when both comparands parse as
// numbers, strings otherwise. A bare comparison is the usual case.

// ConstraintExpr is a compiled constraint usable as a mapping selection.
type ConstraintExpr struct {
	src  string
	root cexpr
}

// ParseConstraint compiles a constraint expression.
func ParseConstraint(src string) (*ConstraintExpr, error) {
	cp := &cparser{src: []rune(src)}
	root, err := cp.parseOr()
	if err != nil {
		return nil, err
	}
	cp.skipSpace()
	if cp.pos < len(cp.src) {
		return nil, fmt.Errorf("script: constraint %q: trailing input at %d", src, cp.pos)
	}
	return &ConstraintExpr{src: src, root: root}, nil
}

// Eval evaluates the constraint for one correspondence. Instances may be
// nil; attribute references on nil instances yield empty strings (id
// references still work through the correspondence).
func (c *ConstraintExpr) Eval(corr mapping.Correspondence, domain, rng *model.Instance) (bool, error) {
	env := cenv{corr: corr, domain: domain, rng: rng}
	v, err := c.root.eval(env)
	if err != nil {
		return false, err
	}
	b, ok := v.(bool)
	if !ok {
		return false, fmt.Errorf("script: constraint %q does not evaluate to a condition", c.src)
	}
	return b, nil
}

// Selection adapts the constraint to mapping.Selection given the two
// object sets (either may be nil; see Eval).
func (c *ConstraintExpr) Selection(domainSet, rangeSet *model.ObjectSet) mapping.Selection {
	return &constraintSelection{expr: c, domainSet: domainSet, rangeSet: rangeSet}
}

// String returns the source text.
func (c *ConstraintExpr) String() string { return c.src }

type constraintSelection struct {
	expr      *ConstraintExpr
	domainSet *model.ObjectSet
	rangeSet  *model.ObjectSet
}

func (s *constraintSelection) Apply(m *mapping.Mapping) *mapping.Mapping {
	return m.Filter(func(corr mapping.Correspondence) bool {
		var din, rin *model.Instance
		if s.domainSet != nil {
			din = s.domainSet.Get(corr.Domain)
		}
		if s.rangeSet != nil {
			rin = s.rangeSet.Get(corr.Range)
		}
		ok, err := s.expr.Eval(corr, din, rin)
		return err == nil && ok
	})
}

func (s *constraintSelection) String() string { return "Constraint(" + s.expr.src + ")" }

// cenv carries the evaluation context.
type cenv struct {
	corr   mapping.Correspondence
	domain *model.Instance
	rng    *model.Instance
}

// cvalue is float64, string or bool.
type cvalue any

type cexpr interface {
	eval(cenv) (cvalue, error)
}

type cnum float64

func (n cnum) eval(cenv) (cvalue, error) { return float64(n), nil }

type cstr string

func (s cstr) eval(cenv) (cvalue, error) { return string(s), nil }

// cref reads [side.attr].
type cref struct {
	side string // "domain" or "range"
	attr string
}

func (r cref) eval(env cenv) (cvalue, error) {
	var in *model.Instance
	var id model.ID
	if r.side == "domain" {
		in, id = env.domain, env.corr.Domain
	} else {
		in, id = env.rng, env.corr.Range
	}
	if r.attr == "id" {
		return string(id), nil
	}
	if r.attr == "sim" {
		return env.corr.Sim, nil
	}
	return in.Attr(r.attr), nil
}

type cbinary struct {
	op    string
	left  cexpr
	right cexpr
}

func (b cbinary) eval(env cenv) (cvalue, error) {
	l, err := b.left.eval(env)
	if err != nil {
		return nil, err
	}
	r, err := b.right.eval(env)
	if err != nil {
		return nil, err
	}
	switch b.op {
	case "AND", "OR":
		lb, lok := l.(bool)
		rb, rok := r.(bool)
		if !lok || !rok {
			return nil, fmt.Errorf("script: %s needs conditions on both sides", b.op)
		}
		if b.op == "AND" {
			return lb && rb, nil
		}
		return lb || rb, nil
	case "+", "-":
		lf, rf, ok := bothNumbers(l, r)
		if !ok {
			return nil, fmt.Errorf("script: arithmetic needs numbers, got %v and %v", l, r)
		}
		if b.op == "+" {
			return lf + rf, nil
		}
		return lf - rf, nil
	default: // comparisons
		if lf, rf, ok := bothNumbers(l, r); ok {
			return compareFloats(b.op, lf, rf)
		}
		ls, rs := toString(l), toString(r)
		return compareStrings(b.op, ls, rs)
	}
}

type cabs struct{ inner cexpr }

func (a cabs) eval(env cenv) (cvalue, error) {
	v, err := a.inner.eval(env)
	if err != nil {
		return nil, err
	}
	f, ok := v.(float64)
	if !ok {
		if s, isStr := v.(string); isStr {
			if parsed, err2 := strconv.ParseFloat(strings.TrimSpace(s), 64); err2 == nil {
				f, ok = parsed, true
			}
		}
	}
	if !ok {
		return nil, fmt.Errorf("script: abs() needs a number, got %v", v)
	}
	if f < 0 {
		f = -f
	}
	return f, nil
}

func bothNumbers(l, r cvalue) (float64, float64, bool) {
	lf, lok := asNumber(l)
	rf, rok := asNumber(r)
	return lf, rf, lok && rok
}

func asNumber(v cvalue) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case string:
		f, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

func toString(v cvalue) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case bool:
		return strconv.FormatBool(x)
	default:
		return ""
	}
}

func compareFloats(op string, l, r float64) (cvalue, error) {
	switch op {
	case "=":
		return l == r, nil
	case "<>", "!=":
		return l != r, nil
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	}
	return nil, fmt.Errorf("script: unknown operator %q", op)
}

func compareStrings(op, l, r string) (cvalue, error) {
	switch op {
	case "=":
		return l == r, nil
	case "<>", "!=":
		return l != r, nil
	case "<":
		return l < r, nil
	case "<=":
		return l <= r, nil
	case ">":
		return l > r, nil
	case ">=":
		return l >= r, nil
	}
	return nil, fmt.Errorf("script: unknown operator %q", op)
}

// cparser is a recursive-descent parser over the constraint source.
type cparser struct {
	src []rune
	pos int
}

func (p *cparser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *cparser) peek() rune {
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *cparser) hasKeyword(kw string) bool {
	p.skipSpace()
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(string(p.src[p.pos:p.pos+len(kw)]), kw) {
		return false
	}
	// Must not continue as identifier.
	if p.pos+len(kw) < len(p.src) && isIdentRune(p.src[p.pos+len(kw)]) {
		return false
	}
	p.pos += len(kw)
	return true
}

func (p *cparser) parseOr() (cexpr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.hasKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = cbinary{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *cparser) parseAnd() (cexpr, error) {
	left, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.hasKeyword("AND") {
		right, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		left = cbinary{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *cparser) parseCmp() (cexpr, error) {
	left, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	ops := []string{"<>", "!=", "<=", ">=", "=", "<", ">"}
	for _, op := range ops {
		if p.pos+len(op) <= len(p.src) && string(p.src[p.pos:p.pos+len(op)]) == op {
			p.pos += len(op)
			right, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			return cbinary{op: op, left: left, right: right}, nil
		}
	}
	return left, nil
}

func (p *cparser) parseSum() (cexpr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		p.skipSpace()
		c := p.peek()
		if c != '+' && c != '-' {
			return left, nil
		}
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = cbinary{op: string(c), left: left, right: right}
	}
}

func (p *cparser) parseUnary() (cexpr, error) {
	p.skipSpace()
	switch c := p.peek(); {
	case c == '[':
		return p.parseRef()
	case c == '(':
		p.pos++
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return nil, fmt.Errorf("script: constraint: missing ')' at %d", p.pos)
		}
		p.pos++
		return inner, nil
	case c == '\'':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '\'' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("script: constraint: unterminated string literal")
		}
		s := string(p.src[start:p.pos])
		p.pos++
		return cstr(s), nil
	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		f, err := strconv.ParseFloat(string(p.src[start:p.pos]), 64)
		if err != nil {
			return nil, fmt.Errorf("script: constraint: bad number at %d", start)
		}
		return cnum(f), nil
	default:
		if p.hasKeyword("abs") {
			p.skipSpace()
			if p.peek() != '(' {
				return nil, fmt.Errorf("script: constraint: abs needs '('")
			}
			p.pos++
			inner, err := p.parseSum()
			if err != nil {
				return nil, err
			}
			p.skipSpace()
			if p.peek() != ')' {
				return nil, fmt.Errorf("script: constraint: abs missing ')'")
			}
			p.pos++
			return cabs{inner: inner}, nil
		}
		return nil, fmt.Errorf("script: constraint: unexpected character %q at %d", string(c), p.pos)
	}
}

func (p *cparser) parseRef() (cexpr, error) {
	// at '['
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ']' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("script: constraint: unterminated reference")
	}
	inner := strings.TrimSpace(string(p.src[start:p.pos]))
	p.pos++
	dot := strings.IndexByte(inner, '.')
	if dot <= 0 {
		return nil, fmt.Errorf("script: constraint: reference %q needs side.attr form", inner)
	}
	side := strings.ToLower(inner[:dot])
	attr := inner[dot+1:]
	if side != "domain" && side != "range" {
		return nil, fmt.Errorf("script: constraint: side must be domain or range, got %q", side)
	}
	return cref{side: side, attr: attr}, nil
}
