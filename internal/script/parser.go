package script

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a script source text.
func Parse(src string) (*Script, error) {
	toks, err := newLexer(src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseScript()
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) advance()            { p.pos++ }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, fmt.Errorf("script: line %d: expected %s, got %s", t.line, k, describe(t))
	}
	p.advance()
	return t, nil
}

func describe(t token) string {
	if t.text != "" {
		return fmt.Sprintf("%s %q", t.kind, t.text)
	}
	return t.kind.String()
}

func (p *parser) skipNewlines() {
	for p.at(tokNewline) {
		p.advance()
	}
}

func (p *parser) parseScript() (*Script, error) {
	s := &Script{}
	for {
		p.skipNewlines()
		if p.at(tokEOF) {
			return s, nil
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, st)
	}
}

// isKeyword compares identifiers case-insensitively.
func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case isKeyword(t, "PROCEDURE"):
		return p.parseProc()
	case isKeyword(t, "RETURN"):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &Return{Expr: e, Line: t.line}, nil
	case t.kind == tokVar:
		p.advance()
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &Assign{Name: t.text, Expr: e, Line: t.line}, nil
	case t.kind == tokIdent:
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.endStmt(); err != nil {
			return nil, err
		}
		return &ExprStmt{Expr: e, Line: t.line}, nil
	default:
		return nil, fmt.Errorf("script: line %d: unexpected %s at statement start", t.line, describe(t))
	}
}

// endStmt consumes the statement terminator (newline or EOF).
func (p *parser) endStmt() error {
	if p.at(tokEOF) {
		return nil
	}
	_, err := p.expect(tokNewline)
	return err
}

func (p *parser) parseProc() (Stmt, error) {
	start := p.cur()
	p.advance() // PROCEDURE
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var params []string
	for !p.at(tokRParen) {
		v, err := p.expect(tokVar)
		if err != nil {
			return nil, err
		}
		params = append(params, v.text)
		if p.at(tokComma) {
			p.advance()
		}
	}
	p.advance() // ')'
	if err := p.endStmt(); err != nil {
		return nil, err
	}
	var body []Stmt
	for {
		p.skipNewlines()
		if p.at(tokEOF) {
			return nil, fmt.Errorf("script: line %d: PROCEDURE %s not closed with END", start.line, name.text)
		}
		if isKeyword(p.cur(), "END") {
			p.advance()
			if err := p.endStmt(); err != nil {
				return nil, err
			}
			return &ProcDef{Name: name.text, Params: params, Body: body, Line: start.line}, nil
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, nested := st.(*ProcDef); nested {
			return nil, fmt.Errorf("script: line %d: nested procedures are not supported", start.line)
		}
		body = append(body, st)
	}
}

func (p *parser) parseExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return &VarRef{Name: t.text, Line: t.line}, nil
	case tokNumber:
		p.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("script: line %d: bad number %q", t.line, t.text)
		}
		return &NumberLit{Value: v, Line: t.line}, nil
	case tokString:
		p.advance()
		return &StringLit{Value: t.text, Line: t.line}, nil
	case tokIdent:
		p.advance()
		// Qualified source reference: IDENT (DOT IDENT)+
		if p.at(tokDot) {
			parts := []string{t.text}
			for p.at(tokDot) {
				p.advance()
				seg, err := p.expect(tokIdent)
				if err != nil {
					return nil, err
				}
				parts = append(parts, seg.text)
			}
			return &SourceRef{Parts: parts, Line: t.line}, nil
		}
		// Call: IDENT '(' args ')'
		if p.at(tokLParen) {
			p.advance()
			var args []Expr
			for !p.at(tokRParen) {
				if p.at(tokEOF) {
					return nil, fmt.Errorf("script: line %d: unterminated argument list of %s", t.line, t.text)
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.at(tokComma) {
					p.advance()
				} else if !p.at(tokRParen) {
					return nil, fmt.Errorf("script: line %d: expected ',' or ')' in arguments of %s, got %s",
						p.cur().line, t.text, describe(p.cur()))
				}
			}
			p.advance() // ')'
			return &Call{Name: t.text, Args: args, Line: t.line}, nil
		}
		// Bare identifier (Min, Average, Trigram, ...).
		return &Ident{Name: t.text, Line: t.line}, nil
	default:
		return nil, fmt.Errorf("script: line %d: unexpected %s in expression", t.line, describe(t))
	}
}
