package script

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/sim"
)

// Env resolves the external names a script references: repository mappings
// (DBLP.CoAuthor), object sets (DBLP.Author), instance access for
// constraints, and similarity functions (Trigram).
type Env interface {
	LookupMapping(name string) (*mapping.Mapping, bool)
	LookupObjectSet(name string) (*model.ObjectSet, bool)
	// ObjectSetFor locates the instances of a logical source so select()
	// constraints can read attribute values.
	ObjectSetFor(lds model.LDS) (*model.ObjectSet, bool)
	SimFunc(name string) (sim.Func, bool)
}

// Binding is the standard Env: explicit maps plus a similarity registry.
type Binding struct {
	Mappings map[string]*mapping.Mapping
	Sets     map[string]*model.ObjectSet
	Sims     *sim.Registry

	byLDS map[model.LDS]*model.ObjectSet
}

// NewBinding returns an empty binding with the default similarity registry.
func NewBinding() *Binding {
	return &Binding{
		Mappings: make(map[string]*mapping.Mapping),
		Sets:     make(map[string]*model.ObjectSet),
		Sims:     sim.NewRegistry(),
		byLDS:    make(map[model.LDS]*model.ObjectSet),
	}
}

// BindMapping registers a mapping under a qualified name.
func (b *Binding) BindMapping(name string, m *mapping.Mapping) *Binding {
	b.Mappings[name] = m
	return b
}

// BindSet registers an object set under a qualified name and by its LDS.
func (b *Binding) BindSet(name string, s *model.ObjectSet) *Binding {
	b.Sets[name] = s
	b.byLDS[s.LDS()] = s
	return b
}

// LookupMapping implements Env.
func (b *Binding) LookupMapping(name string) (*mapping.Mapping, bool) {
	m, ok := b.Mappings[name]
	return m, ok
}

// LookupObjectSet implements Env.
func (b *Binding) LookupObjectSet(name string) (*model.ObjectSet, bool) {
	s, ok := b.Sets[name]
	return s, ok
}

// ObjectSetFor implements Env.
func (b *Binding) ObjectSetFor(lds model.LDS) (*model.ObjectSet, bool) {
	s, ok := b.byLDS[lds]
	return s, ok
}

// SimFunc implements Env.
func (b *Binding) SimFunc(name string) (sim.Func, bool) {
	if b.Sims == nil {
		return nil, false
	}
	return b.Sims.Lookup(name)
}

// ValueKind tags interpreter values.
type ValueKind int

// Value kinds.
const (
	MappingValue ValueKind = iota
	SetValue
	NumberValue
	StringValue
	NoValue
)

// Value is a dynamically typed script value.
type Value struct {
	Kind    ValueKind
	Mapping *mapping.Mapping
	Set     *model.ObjectSet
	Num     float64
	Str     string
}

// String renders the value for logs.
func (v Value) String() string {
	switch v.Kind {
	case MappingValue:
		return fmt.Sprintf("mapping(%d corrs)", v.Mapping.Len())
	case SetValue:
		return fmt.Sprintf("set(%d instances)", v.Set.Len())
	case NumberValue:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case StringValue:
		return strconv.Quote(v.Str)
	default:
		return "<none>"
	}
}

// Interp executes parsed scripts against an environment.
type Interp struct {
	env     Env
	procs   map[string]*ProcDef
	globals map[string]Value
	// Trace receives one line per executed assignment when non-nil.
	Trace func(string)
}

// New returns an interpreter over env.
func New(env Env) *Interp {
	return &Interp{
		env:     env,
		procs:   make(map[string]*ProcDef),
		globals: make(map[string]Value),
	}
}

// Global returns a top-level variable set by a previous Run.
func (ip *Interp) Global(name string) (Value, bool) {
	v, ok := ip.globals[name]
	return v, ok
}

// RunSource parses and runs a script, returning its result: the value of
// the first top-level RETURN, or the last assigned value.
func (ip *Interp) RunSource(src string) (Value, error) {
	s, err := Parse(src)
	if err != nil {
		return Value{Kind: NoValue}, err
	}
	return ip.Run(s)
}

// Run executes a parsed script.
func (ip *Interp) Run(s *Script) (Value, error) {
	last := Value{Kind: NoValue}
	for _, st := range s.Stmts {
		switch stmt := st.(type) {
		case *ProcDef:
			if _, dup := ip.procs[strings.ToLower(stmt.Name)]; dup {
				return last, fmt.Errorf("script: line %d: procedure %s already defined", stmt.Line, stmt.Name)
			}
			ip.procs[strings.ToLower(stmt.Name)] = stmt
		case *Assign:
			v, err := ip.eval(stmt.Expr, ip.globals)
			if err != nil {
				return last, err
			}
			ip.globals[stmt.Name] = v
			last = v
			if ip.Trace != nil {
				ip.Trace(fmt.Sprintf("$%s = %s", stmt.Name, v))
			}
		case *Return:
			return ip.eval(stmt.Expr, ip.globals)
		case *ExprStmt:
			v, err := ip.eval(stmt.Expr, ip.globals)
			if err != nil {
				return last, err
			}
			last = v
		}
	}
	return last, nil
}

// eval evaluates an expression in the given variable scope.
func (ip *Interp) eval(e Expr, scope map[string]Value) (Value, error) {
	switch ex := e.(type) {
	case *VarRef:
		v, ok := scope[ex.Name]
		if !ok {
			return Value{}, fmt.Errorf("script: line %d: undefined variable $%s", ex.Line, ex.Name)
		}
		return v, nil
	case *NumberLit:
		return Value{Kind: NumberValue, Num: ex.Value}, nil
	case *StringLit:
		return Value{Kind: StringValue, Str: ex.Value}, nil
	case *Ident:
		// Bare identifiers reach eval only as call arguments; represent
		// them as strings so builtins can interpret them.
		return Value{Kind: StringValue, Str: ex.Name}, nil
	case *SourceRef:
		name := ex.Name()
		if m, ok := ip.env.LookupMapping(name); ok {
			return Value{Kind: MappingValue, Mapping: m}, nil
		}
		if s, ok := ip.env.LookupObjectSet(name); ok {
			return Value{Kind: SetValue, Set: s}, nil
		}
		return Value{}, fmt.Errorf("script: line %d: unknown source reference %s", ex.Line, name)
	case *Call:
		return ip.call(ex, scope)
	default:
		return Value{}, fmt.Errorf("script: cannot evaluate %T", e)
	}
}

// call dispatches builtins, then user procedures.
func (ip *Interp) call(c *Call, scope map[string]Value) (Value, error) {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := ip.eval(a, scope)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	switch strings.ToLower(c.Name) {
	case "compose":
		return ip.builtinCompose(c, args)
	case "merge":
		return ip.builtinMerge(c, args)
	case "attrmatch":
		return ip.builtinAttrMatch(c, args)
	case "select":
		return ip.builtinSelect(c, args)
	case "inverse":
		if err := arity(c, args, 1); err != nil {
			return Value{}, err
		}
		m, err := wantMapping(c, args, 0)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: MappingValue, Mapping: m.Inverse()}, nil
	case "identity":
		if err := arity(c, args, 1); err != nil {
			return Value{}, err
		}
		s, err := wantSet(c, args, 0)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: MappingValue, Mapping: mapping.Identity(s)}, nil
	case "nhmatch":
		// nhMatch is available as a builtin even when the script does not
		// define the §4.2 procedure itself.
		if _, userDefined := ip.procs["nhmatch"]; !userDefined {
			return ip.builtinNhMatch(c, args)
		}
	}
	proc, ok := ip.procs[strings.ToLower(c.Name)]
	if !ok {
		return Value{}, fmt.Errorf("script: line %d: unknown function %s", c.Line, c.Name)
	}
	if len(args) != len(proc.Params) {
		return Value{}, fmt.Errorf("script: line %d: %s expects %d arguments, got %d",
			c.Line, proc.Name, len(proc.Params), len(args))
	}
	local := make(map[string]Value, len(proc.Params))
	for i, p := range proc.Params {
		local[p] = args[i]
	}
	for _, st := range proc.Body {
		switch stmt := st.(type) {
		case *Assign:
			v, err := ip.eval(stmt.Expr, local)
			if err != nil {
				return Value{}, err
			}
			local[stmt.Name] = v
		case *Return:
			return ip.eval(stmt.Expr, local)
		case *ExprStmt:
			if _, err := ip.eval(stmt.Expr, local); err != nil {
				return Value{}, err
			}
		default:
			return Value{}, fmt.Errorf("script: line %d: unsupported statement in procedure %s", proc.Line, proc.Name)
		}
	}
	return Value{Kind: NoValue}, nil
}

func arity(c *Call, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("script: line %d: %s expects %d arguments, got %d", c.Line, c.Name, n, len(args))
	}
	return nil
}

func wantMapping(c *Call, args []Value, i int) (*mapping.Mapping, error) {
	if i >= len(args) || args[i].Kind != MappingValue {
		return nil, fmt.Errorf("script: line %d: %s argument %d must be a mapping", c.Line, c.Name, i+1)
	}
	return args[i].Mapping, nil
}

func wantSet(c *Call, args []Value, i int) (*model.ObjectSet, error) {
	if i >= len(args) || args[i].Kind != SetValue {
		return nil, fmt.Errorf("script: line %d: %s argument %d must be an object set", c.Line, c.Name, i+1)
	}
	return args[i].Set, nil
}

func wantString(c *Call, args []Value, i int) (string, error) {
	if i >= len(args) || args[i].Kind != StringValue {
		return "", fmt.Errorf("script: line %d: %s argument %d must be a name or string", c.Line, c.Name, i+1)
	}
	return args[i].Str, nil
}

func wantNumber(c *Call, args []Value, i int) (float64, error) {
	if i >= len(args) || args[i].Kind != NumberValue {
		return 0, fmt.Errorf("script: line %d: %s argument %d must be a number", c.Line, c.Name, i+1)
	}
	return args[i].Num, nil
}

// parseCombinerName resolves the merge/compose combination-function names
// used in scripts, including the missing-as-zero variants Min-0/Avg-0 and
// PreferMap1/PreferMap2...
func parseCombinerName(name string) (mapping.Combiner, error) {
	n := strings.ToLower(name)
	switch n {
	case "min-0", "min0":
		return mapping.Min0Combiner, nil
	case "avg-0", "avg0", "average-0":
		return mapping.Avg0Combiner, nil
	}
	if strings.HasPrefix(n, "prefermap") {
		idxStr := strings.TrimPrefix(n, "prefermap")
		if idxStr == "" {
			return mapping.PreferCombiner(0), nil
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 1 {
			return mapping.Combiner{}, fmt.Errorf("script: bad PreferMap index in %q", name)
		}
		return mapping.PreferCombiner(idx - 1), nil
	}
	kind, err := mapping.ParseCombinerKind(name)
	if err != nil {
		return mapping.Combiner{}, err
	}
	return mapping.Combiner{Kind: kind}, nil
}

// builtinCompose: compose($m1, $m2, f, g)
func (ip *Interp) builtinCompose(c *Call, args []Value) (Value, error) {
	if err := arity(c, args, 4); err != nil {
		return Value{}, err
	}
	m1, err := wantMapping(c, args, 0)
	if err != nil {
		return Value{}, err
	}
	m2, err := wantMapping(c, args, 1)
	if err != nil {
		return Value{}, err
	}
	fName, err := wantString(c, args, 2)
	if err != nil {
		return Value{}, err
	}
	gName, err := wantString(c, args, 3)
	if err != nil {
		return Value{}, err
	}
	f, err := parseCombinerName(fName)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	g, err := mapping.ParsePathAgg(gName)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	out, err := mapping.Compose(m1, m2, f, g)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	return Value{Kind: MappingValue, Mapping: out}, nil
}

// builtinMerge: merge($m1, ..., $mn, f)
func (ip *Interp) builtinMerge(c *Call, args []Value) (Value, error) {
	if len(args) < 2 {
		return Value{}, fmt.Errorf("script: line %d: merge needs at least one mapping and a combination function", c.Line)
	}
	fName, err := wantString(c, args, len(args)-1)
	if err != nil {
		return Value{}, err
	}
	f, err := parseCombinerName(fName)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	maps := make([]*mapping.Mapping, 0, len(args)-1)
	for i := 0; i < len(args)-1; i++ {
		m, err := wantMapping(c, args, i)
		if err != nil {
			return Value{}, err
		}
		maps = append(maps, m)
	}
	out, err := mapping.Merge(f, maps...)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	return Value{Kind: MappingValue, Mapping: out}, nil
}

// builtinAttrMatch: attrMatch(SetA, SetB, SimName, threshold, "[attrA]", "[attrB]")
func (ip *Interp) builtinAttrMatch(c *Call, args []Value) (Value, error) {
	if err := arity(c, args, 6); err != nil {
		return Value{}, err
	}
	setA, err := wantSet(c, args, 0)
	if err != nil {
		return Value{}, err
	}
	setB, err := wantSet(c, args, 1)
	if err != nil {
		return Value{}, err
	}
	simName, err := wantString(c, args, 2)
	if err != nil {
		return Value{}, err
	}
	threshold, err := wantNumber(c, args, 3)
	if err != nil {
		return Value{}, err
	}
	attrA, err := wantString(c, args, 4)
	if err != nil {
		return Value{}, err
	}
	attrB, err := wantString(c, args, 5)
	if err != nil {
		return Value{}, err
	}
	simFn, ok := ip.env.SimFunc(simName)
	if !ok {
		return Value{}, fmt.Errorf("script: line %d: unknown similarity function %q", c.Line, simName)
	}
	matcher := &match.Attribute{
		MatcherName: fmt.Sprintf("attrMatch(%s)", simName),
		AttrA:       stripBrackets(attrA),
		AttrB:       stripBrackets(attrB),
		Sim:         simFn,
		Threshold:   threshold,
	}
	out, err := matcher.Match(setA, setB)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	return Value{Kind: MappingValue, Mapping: out}, nil
}

func stripBrackets(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	return s
}

// builtinNhMatch: nhMatch($asso1, $same, $asso2 [, agg])
func (ip *Interp) builtinNhMatch(c *Call, args []Value) (Value, error) {
	if len(args) != 3 && len(args) != 4 {
		return Value{}, fmt.Errorf("script: line %d: nhMatch expects 3 or 4 arguments, got %d", c.Line, len(args))
	}
	a1, err := wantMapping(c, args, 0)
	if err != nil {
		return Value{}, err
	}
	same, err := wantMapping(c, args, 1)
	if err != nil {
		return Value{}, err
	}
	a2, err := wantMapping(c, args, 2)
	if err != nil {
		return Value{}, err
	}
	g := mapping.AggRelative
	if len(args) == 4 {
		gName, err := wantString(c, args, 3)
		if err != nil {
			return Value{}, err
		}
		g, err = mapping.ParsePathAgg(gName)
		if err != nil {
			return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
		}
	}
	out, err := match.NhMatchAgg(a1, same, a2, g)
	if err != nil {
		return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
	}
	return Value{Kind: MappingValue, Mapping: out}, nil
}

// builtinSelect supports the paper's forms:
//
//	select($m, "constraint")             object-value constraint
//	select($m, Threshold, 0.8)           threshold selection
//	select($m, Best, 1 [, side])         best-n per domain (or range/both)
//	select($m, Delta, 0.05 [, side])     best-1+delta
func (ip *Interp) builtinSelect(c *Call, args []Value) (Value, error) {
	if len(args) < 2 {
		return Value{}, fmt.Errorf("script: line %d: select needs a mapping and a selection", c.Line)
	}
	m, err := wantMapping(c, args, 0)
	if err != nil {
		return Value{}, err
	}
	mode, err := wantString(c, args, 1)
	if err != nil {
		return Value{}, err
	}
	// Constraint form: the second argument contains an expression (it has
	// brackets or comparison characters).
	if strings.ContainsAny(mode, "[]<>=") {
		expr, err := ParseConstraint(mode)
		if err != nil {
			return Value{}, fmt.Errorf("script: line %d: %v", c.Line, err)
		}
		domSet, _ := ip.env.ObjectSetFor(m.Domain())
		rngSet, _ := ip.env.ObjectSetFor(m.Range())
		sel := expr.Selection(domSet, rngSet)
		return Value{Kind: MappingValue, Mapping: sel.Apply(m)}, nil
	}
	side := mapping.DomainSide
	if len(args) == 4 {
		s, err := wantString(c, args, 3)
		if err != nil {
			return Value{}, err
		}
		switch strings.ToLower(s) {
		case "domain":
			side = mapping.DomainSide
		case "range":
			side = mapping.RangeSide
		case "both":
			side = mapping.BothSides
		default:
			return Value{}, fmt.Errorf("script: line %d: unknown side %q", c.Line, s)
		}
	}
	switch strings.ToLower(mode) {
	case "threshold":
		t, err := wantNumber(c, args, 2)
		if err != nil {
			return Value{}, err
		}
		return Value{Kind: MappingValue, Mapping: mapping.Threshold{T: t}.Apply(m)}, nil
	case "best":
		n, err := wantNumber(c, args, 2)
		if err != nil {
			return Value{}, err
		}
		sel := mapping.BestN{N: int(n), Side: side}
		return Value{Kind: MappingValue, Mapping: sel.Apply(m)}, nil
	case "delta":
		d, err := wantNumber(c, args, 2)
		if err != nil {
			return Value{}, err
		}
		sel := mapping.Best1Delta{D: d, Side: side}
		return Value{Kind: MappingValue, Mapping: sel.Apply(m)}, nil
	default:
		return Value{}, fmt.Errorf("script: line %d: unknown selection %q", c.Line, mode)
	}
}
