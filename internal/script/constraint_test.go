package script

import (
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

func evalConstraint(t *testing.T, src string, corr mapping.Correspondence, d, r *model.Instance) bool {
	t.Helper()
	c, err := ParseConstraint(src)
	if err != nil {
		t.Fatalf("ParseConstraint(%q): %v", src, err)
	}
	got, err := c.Eval(corr, d, r)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return got
}

func TestConstraintIDInequality(t *testing.T) {
	corr := mapping.Correspondence{Domain: "a", Range: "b", Sim: 0.9}
	if !evalConstraint(t, "[domain.id]<>[range.id]", corr, nil, nil) {
		t.Error("a <> b should hold")
	}
	same := mapping.Correspondence{Domain: "a", Range: "a", Sim: 1}
	if evalConstraint(t, "[domain.id]<>[range.id]", same, nil, nil) {
		t.Error("a <> a should not hold")
	}
}

func TestConstraintYearDifference(t *testing.T) {
	d := model.NewInstance("p", map[string]string{"year": "2001"})
	r1 := model.NewInstance("q", map[string]string{"year": "2002"})
	r2 := model.NewInstance("q", map[string]string{"year": "2005"})
	corr := mapping.Correspondence{Domain: "p", Range: "q", Sim: 1}
	src := "abs([domain.year]-[range.year])<=1"
	if !evalConstraint(t, src, corr, d, r1) {
		t.Error("diff 1 should pass")
	}
	if evalConstraint(t, src, corr, d, r2) {
		t.Error("diff 4 should fail")
	}
}

func TestConstraintStringComparison(t *testing.T) {
	d := model.NewInstance("p", map[string]string{"kind": "conference"})
	corr := mapping.Correspondence{Domain: "p", Range: "q"}
	if !evalConstraint(t, "[domain.kind]='conference'", corr, d, nil) {
		t.Error("string equality failed")
	}
	if evalConstraint(t, "[domain.kind]='journal'", corr, d, nil) {
		t.Error("string inequality failed")
	}
}

func TestConstraintAndOr(t *testing.T) {
	d := model.NewInstance("p", map[string]string{"year": "2001", "kind": "conference"})
	r := model.NewInstance("q", map[string]string{"year": "2001"})
	corr := mapping.Correspondence{Domain: "p", Range: "q"}
	if !evalConstraint(t, "[domain.kind]='conference' AND [domain.year]=[range.year]", corr, d, r) {
		t.Error("AND failed")
	}
	if !evalConstraint(t, "[domain.kind]='journal' OR [domain.year]=2001", corr, d, r) {
		t.Error("OR failed")
	}
	if evalConstraint(t, "[domain.kind]='journal' AND [domain.year]=2001", corr, d, r) {
		t.Error("AND short-circuit failed")
	}
}

func TestConstraintSimReference(t *testing.T) {
	corr := mapping.Correspondence{Domain: "a", Range: "b", Sim: 0.75}
	if !evalConstraint(t, "[domain.sim]>=0.5", corr, nil, nil) {
		t.Error("sim reference failed")
	}
	if evalConstraint(t, "[range.sim]>0.8", corr, nil, nil) {
		t.Error("sim threshold failed")
	}
}

func TestConstraintParenthesesAndArithmetic(t *testing.T) {
	d := model.NewInstance("p", map[string]string{"a": "5"})
	r := model.NewInstance("q", map[string]string{"b": "3"})
	corr := mapping.Correspondence{Domain: "p", Range: "q"}
	if !evalConstraint(t, "([domain.a]-[range.b])+1=3", corr, d, r) {
		t.Error("arithmetic failed")
	}
}

func TestConstraintParseErrors(t *testing.T) {
	bad := []string{
		"",
		"[domain]<>[range.id]",
		"[middle.id]=1",
		"[domain.id",
		"abs[domain.year]<=1",
		"abs([domain.year]<=1",
		"'unterminated",
		"[domain.id]=1 trailing",
		"[domain.id]=)",
	}
	for _, src := range bad {
		if _, err := ParseConstraint(src); err == nil {
			t.Errorf("ParseConstraint(%q) should fail", src)
		}
	}
}

func TestConstraintEvalErrors(t *testing.T) {
	corr := mapping.Correspondence{Domain: "a", Range: "b"}
	// AND over non-booleans.
	c, err := ParseConstraint("([domain.id]) AND ([range.id])")
	if err == nil {
		if _, err = c.Eval(corr, nil, nil); err == nil {
			t.Error("AND over strings should fail at eval")
		}
	}
	// Constraint must be boolean.
	c2, err := ParseConstraint("[domain.id]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Eval(corr, nil, nil); err == nil {
		t.Error("non-boolean constraint should fail")
	}
	// abs on non-number.
	c3, err := ParseConstraint("abs([domain.id])=1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c3.Eval(corr, nil, nil); err == nil {
		t.Error("abs on string id should fail")
	}
	// Arithmetic on strings.
	c4, err := ParseConstraint("[domain.id]+1=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Eval(corr, nil, nil); err == nil {
		t.Error("arithmetic on non-numeric id should fail")
	}
}

func TestConstraintSelection(t *testing.T) {
	dSet := model.NewObjectSet(dblpPub)
	dSet.AddNew("p1", map[string]string{"year": "2001"})
	dSet.AddNew("p2", map[string]string{"year": "1995"})
	rSet := model.NewObjectSet(acmPub)
	rSet.AddNew("q1", map[string]string{"year": "2002"})
	rSet.AddNew("q2", map[string]string{"year": "2002"})

	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("p1", "q1", 0.9)
	m.Add("p2", "q2", 0.9)

	c, err := ParseConstraint("abs([domain.year]-[range.year])<=1")
	if err != nil {
		t.Fatal(err)
	}
	got := c.Selection(dSet, rSet).Apply(m)
	if got.Len() != 1 || !got.Has("p1", "q1") {
		t.Errorf("selection = %v", got.Correspondences())
	}
	if c.Selection(dSet, rSet).(*constraintSelection).String() == "" {
		t.Error("selection should describe itself")
	}
	if c.String() != "abs([domain.year]-[range.year])<=1" {
		t.Errorf("String = %q", c.String())
	}
}

func TestConstraintMissingAttributeComparesEmpty(t *testing.T) {
	corr := mapping.Correspondence{Domain: "a", Range: "b"}
	d := model.NewInstance("a", nil)
	if !evalConstraint(t, "[domain.missing]=''", corr, d, nil) {
		t.Error("missing attribute should compare as empty string")
	}
}
