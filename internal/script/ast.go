package script

import (
	"fmt"
	"strings"
)

// The AST mirrors the flat, line-oriented structure of iFuice scripts:
// a script is a list of statements; statements assign call results to
// variables, define procedures or return values. Expressions are variable
// references, literals, source references (DBLP.Author) or calls.

// Node is implemented by all AST nodes.
type Node interface {
	astNode()
	String() string
}

// Script is a parsed program.
type Script struct {
	Stmts []Stmt
}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Assign binds the value of Expr to variable Name.
type Assign struct {
	Name string
	Expr Expr
	Line int
}

// ProcDef defines a user procedure with variable parameters.
type ProcDef struct {
	Name   string
	Params []string
	Body   []Stmt
	Line   int
}

// Return yields the value of Expr from a procedure or the script.
type Return struct {
	Expr Expr
	Line int
}

// ExprStmt evaluates an expression for its side effects (rare; kept for
// completeness so a bare call parses).
type ExprStmt struct {
	Expr Expr
	Line int
}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// VarRef reads a variable, e.g. $Result.
type VarRef struct {
	Name string
	Line int
}

// SourceRef references a repository object by qualified name, e.g.
// DBLP.CoAuthor (a mapping) or DBLP.Author (an object set). Resolution is
// deferred to the environment at run time.
type SourceRef struct {
	Parts []string
	Line  int
}

// Name returns the dotted form.
func (s *SourceRef) Name() string { return strings.Join(s.Parts, ".") }

// Ident is a bare identifier argument such as Min, Average or Trigram; the
// callee interprets it (combiner name, similarity function, ...).
type Ident struct {
	Name string
	Line int
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	Line  int
}

// StringLit is a string literal (attribute specs and constraints).
type StringLit struct {
	Value string
	Line  int
}

// Call invokes a built-in or user procedure.
type Call struct {
	Name string
	Args []Expr
	Line int
}

func (*Assign) astNode()    {}
func (*ProcDef) astNode()   {}
func (*Return) astNode()    {}
func (*ExprStmt) astNode()  {}
func (*VarRef) astNode()    {}
func (*SourceRef) astNode() {}
func (*Ident) astNode()     {}
func (*NumberLit) astNode() {}
func (*StringLit) astNode() {}
func (*Call) astNode()      {}

func (*Assign) stmtNode()   {}
func (*ProcDef) stmtNode()  {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}

func (*VarRef) exprNode()    {}
func (*SourceRef) exprNode() {}
func (*Ident) exprNode()     {}
func (*NumberLit) exprNode() {}
func (*StringLit) exprNode() {}
func (*Call) exprNode()      {}

func (a *Assign) String() string { return "$" + a.Name + " = " + a.Expr.String() }

func (p *ProcDef) String() string {
	var b strings.Builder
	b.WriteString("PROCEDURE " + p.Name + " (")
	for i, par := range p.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString("$" + par)
	}
	b.WriteString(")\n")
	for _, s := range p.Body {
		b.WriteString("  " + s.String() + "\n")
	}
	b.WriteString("END")
	return b.String()
}

func (r *Return) String() string   { return "RETURN " + r.Expr.String() }
func (e *ExprStmt) String() string { return e.Expr.String() }

func (v *VarRef) String() string    { return "$" + v.Name }
func (s *SourceRef) String() string { return s.Name() }
func (i *Ident) String() string     { return i.Name }
func (n *NumberLit) String() string { return strconvFloat(n.Value) }
func (s *StringLit) String() string { return `"` + s.Value + `"` }

// strconvFloat renders numbers compactly (0.5, 2, 0.85).
func strconvFloat(v float64) string {
	s := fmt.Sprintf("%g", v)
	return s
}

func (c *Call) String() string {
	var b strings.Builder
	b.WriteString(c.Name + "(")
	for i, a := range c.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(")")
	return b.String()
}

func (s *Script) astNode() {}

// String renders the whole program.
func (s *Script) String() string {
	var b strings.Builder
	for _, st := range s.Stmts {
		b.WriteString(st.String())
		b.WriteByte('\n')
	}
	return b.String()
}
