// Package script implements the iFuice-style script language MOMA uses to
// express match workflows (§4). It covers the constructs appearing in the
// paper verbatim:
//
//	PROCEDURE nhMatch ( $Asso1, $Same, $Asso2 )
//	   $Temp   = compose ( $Asso1, $Same, Min, Average )
//	   $Result = compose ( $Temp, $Asso2, Min, Relative )
//	   RETURN $Result
//	END
//
//	$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
//	$NameSim   = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]")
//	$Merged    = merge ($CoAuthSim, $NameSim, Average)
//	$Result    = select ($Merged, "[domain.id]<>[range.id]")
//
// plus threshold/best-n selections, inverse, identity and user procedures.
// The interpreter resolves source references (DBLP.Author) and pre-existing
// mappings (DBLP.CoAuthor) through an Env, typically backed by the mapping
// repository.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNewline
	tokIdent  // compose, DBLP, Min
	tokVar    // $Result
	tokNumber // 0.5
	tokString // "[name]"
	tokLParen
	tokRParen
	tokComma
	tokAssign // =
	tokDot    // .
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of script"
	case tokNewline:
		return "end of line"
	case tokIdent:
		return "identifier"
	case tokVar:
		return "variable"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokAssign:
		return "'='"
	case tokDot:
		return "'.'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source line for error messages.
type token struct {
	kind tokenKind
	text string
	line int
}

// lexer tokenizes a script. Newlines are emitted as statement separators
// only at parenthesis depth zero, so argument lists may span lines as they
// do in the paper's listings.
type lexer struct {
	src   []rune
	pos   int
	line  int
	depth int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1}
}

// lex tokenizes the entire input.
func (lx *lexer) lex() ([]token, error) {
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}

func (lx *lexer) peekRune() rune {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) {
		r := lx.src[lx.pos]
		switch {
		case r == '\n':
			lx.pos++
			lx.line++
			if lx.depth == 0 {
				return token{kind: tokNewline, line: lx.line - 1}, nil
			}
		case unicode.IsSpace(r):
			lx.pos++
		case r == '#' || (r == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/'):
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case r == '(':
			lx.pos++
			lx.depth++
			return token{kind: tokLParen, line: lx.line}, nil
		case r == ')':
			lx.pos++
			if lx.depth > 0 {
				lx.depth--
			}
			return token{kind: tokRParen, line: lx.line}, nil
		case r == ',':
			lx.pos++
			return token{kind: tokComma, line: lx.line}, nil
		case r == '=':
			lx.pos++
			return token{kind: tokAssign, line: lx.line}, nil
		case r == '.':
			lx.pos++
			return token{kind: tokDot, line: lx.line}, nil
		case r == '$':
			start := lx.pos
			lx.pos++
			for lx.pos < len(lx.src) && isIdentRune(lx.src[lx.pos]) {
				lx.pos++
			}
			if lx.pos == start+1 {
				return token{}, fmt.Errorf("script: line %d: '$' must begin a variable name", lx.line)
			}
			return token{kind: tokVar, text: string(lx.src[start+1 : lx.pos]), line: lx.line}, nil
		case r == '"':
			lx.pos++
			var b strings.Builder
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '"' {
				if lx.src[lx.pos] == '\n' {
					return token{}, fmt.Errorf("script: line %d: unterminated string", lx.line)
				}
				b.WriteRune(lx.src[lx.pos])
				lx.pos++
			}
			if lx.pos >= len(lx.src) {
				return token{}, fmt.Errorf("script: line %d: unterminated string", lx.line)
			}
			lx.pos++
			return token{kind: tokString, text: b.String(), line: lx.line}, nil
		case unicode.IsDigit(r):
			start := lx.pos
			for lx.pos < len(lx.src) && (unicode.IsDigit(lx.src[lx.pos]) || lx.src[lx.pos] == '.') {
				lx.pos++
			}
			return token{kind: tokNumber, text: string(lx.src[start:lx.pos]), line: lx.line}, nil
		case isIdentRune(r):
			start := lx.pos
			for lx.pos < len(lx.src) && isIdentRune(lx.src[lx.pos]) {
				lx.pos++
			}
			return token{kind: tokIdent, text: string(lx.src[start:lx.pos]), line: lx.line}, nil
		default:
			return token{}, fmt.Errorf("script: line %d: unexpected character %q", lx.line, string(r))
		}
	}
	return token{kind: tokEOF, line: lx.line}, nil
}

// isIdentRune reports identifier characters (letters, digits, underscore,
// dash — mapping names like DBLP-ACM appear in repositories).
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}
