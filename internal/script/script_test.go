package script

import (
	"math"
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
	dblpVen = model.LDS{Source: "DBLP", Type: model.Venue}
	acmVen  = model.LDS{Source: "ACM", Type: model.Venue}
	dblpAut = model.LDS{Source: "DBLP", Type: model.Author}
)

func TestLexerBasics(t *testing.T) {
	toks, err := newLexer("$R = compose($A, $B, Min, Average) // comment\n").lex()
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, 0, len(toks))
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	want := []tokenKind{tokVar, tokAssign, tokIdent, tokLParen, tokVar, tokComma,
		tokVar, tokComma, tokIdent, tokComma, tokIdent, tokRParen, tokNewline, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerMultilineArgs(t *testing.T) {
	// Newlines inside parentheses are not statement separators — the
	// paper's listings wrap argument lists.
	src := "$X = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor,\n               DBLP.CoAuthor)\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 1 {
		t.Fatalf("stmts = %d, want 1", len(s.Stmts))
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"$ = x\n", "\"unterminated\n", "$X = @\n"} {
		if _, err := newLexer(src).lex(); err == nil {
			t.Errorf("lexing %q should fail", src)
		}
	}
}

func TestParsePaperNhMatchProcedure(t *testing.T) {
	src := `
PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
   $Temp = compose ( $Asso1 , $Same , Min, Average )
   $Result = compose ( $Temp , $Asso2 , Min, Relative )
   RETURN $Result
END
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(s.Stmts))
	}
	proc, ok := s.Stmts[0].(*ProcDef)
	if !ok {
		t.Fatalf("not a procedure: %T", s.Stmts[0])
	}
	if proc.Name != "nhMatch" || len(proc.Params) != 3 || len(proc.Body) != 3 {
		t.Errorf("proc = %s params=%v body=%d", proc.Name, proc.Params, len(proc.Body))
	}
	if !strings.Contains(proc.String(), "compose") {
		t.Error("String() should render the body")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"$X compose($A)\n",           // missing =
		"PROCEDURE p($a)\n$x = $a\n", // missing END
		"RETURN\n",                   // missing expression
		"$X = compose($A,\n",         // unterminated args
		") = 3\n",                    // bad start
		"$X = DBLP.\n",               // dangling dot
		"PROCEDURE p()\nPROCEDURE q()\nEND\nEND\n", // nested proc
		"$X = foo($A) extra\n",                     // trailing tokens
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("parsing %q should fail", src)
		}
	}
}

// testBinding builds an environment with the Figure 9 fixtures.
func testBinding() *Binding {
	b := NewBinding()

	asso1 := mapping.New(dblpVen, dblpPub, "VenuePub")
	asso1.Add("conf/VLDB/2001", "conf/VLDB/MadhavanBR01", 1)
	asso1.Add("conf/VLDB/2001", "conf/VLDB/ChirkovaHS01", 1)
	asso1.Add("journals/VLDB/2002", "journals/VLDB/ChirkovaHS02", 1)

	same := mapping.NewSame(dblpPub, acmPub)
	same.Add("conf/VLDB/MadhavanBR01", "P-672191", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-672216", 1)
	same.Add("conf/VLDB/ChirkovaHS01", "P-641272", 0.6)
	same.Add("journals/VLDB/ChirkovaHS02", "P-641272", 1)
	same.Add("journals/VLDB/ChirkovaHS02", "P-672216", 0.6)

	asso2 := mapping.New(acmPub, acmVen, "PubVenue")
	asso2.Add("P-672191", "V-645927", 1)
	asso2.Add("P-672216", "V-645927", 1)
	asso2.Add("P-641272", "V-641268", 1)

	b.BindMapping("DBLP.VenuePub", asso1)
	b.BindMapping("DBLP-ACM.PubSame", same)
	b.BindMapping("ACM.PubVenue", asso2)
	return b
}

func TestRunPaperNeighborhoodWorkflow(t *testing.T) {
	// The §4.2 procedure applied to the Figure 9 inputs, all in script.
	src := `
PROCEDURE nhMatch ( $Asso1, $Same, $Asso2)
   $Temp = compose ( $Asso1 , $Same , Min, Average )
   $Result = compose ( $Temp , $Asso2 , Min, Relative )
   RETURN $Result
END

$VenueSame = nhMatch (DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue)
RETURN $VenueSame
`
	ip := New(testBinding())
	v, err := ip.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != MappingValue {
		t.Fatalf("result kind = %v", v.Kind)
	}
	m := v.Mapping
	want := map[[2]string]float64{
		{"conf/VLDB/2001", "V-645927"}:     0.8,
		{"conf/VLDB/2001", "V-641268"}:     0.3,
		{"journals/VLDB/2002", "V-645927"}: 0.3,
		{"journals/VLDB/2002", "V-641268"}: 2.0 / 3.0,
	}
	if m.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(want))
	}
	for k, ws := range want {
		s, ok := m.Sim(model.ID(k[0]), model.ID(k[1]))
		if !ok || math.Abs(s-ws) > 1e-9 {
			t.Errorf("sim%v = %v, want %v", k, s, ws)
		}
	}
}

func TestBuiltinNhMatchWithoutProcedure(t *testing.T) {
	src := `$V = nhMatch (DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue)
RETURN $V
`
	v, err := New(testBinding()).RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Mapping.Len() != 4 {
		t.Errorf("builtin nhMatch Len = %d, want 4", v.Mapping.Len())
	}
}

func TestBuiltinNhMatchCustomAgg(t *testing.T) {
	src := `RETURN nhMatch (DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue, RelativeLeft)
`
	v, err := New(testBinding()).RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := v.Mapping.Sim("conf/VLDB/2001", "V-645927")
	if math.Abs(s-2.0/3.0) > 1e-9 {
		t.Errorf("RelativeLeft sim = %v, want 2/3", s)
	}
}

func TestRunPaperDedupScript(t *testing.T) {
	// §4.3's duplicate-author script, on a small co-author world where
	// niki/agathoniki share all three co-authors.
	b := NewBinding()
	authors := model.NewObjectSet(dblpAut)
	names := map[model.ID]string{
		"niki": "Niki Trigoni", "agathoniki": "Agathoniki Trigoni",
		"x": "Xavier Xu", "y": "Yannis Young", "z": "Zoe Zhang",
	}
	for id, n := range names {
		authors.AddNew(id, map[string]string{"name": n})
	}
	co := mapping.New(dblpAut, dblpAut, "CoAuthor")
	for _, dup := range []model.ID{"niki", "agathoniki"} {
		for _, c := range []model.ID{"x", "y", "z"} {
			co.Add(dup, c, 1)
			co.Add(c, dup, 1)
		}
	}
	b.BindMapping("DBLP.CoAuthor", co)
	b.BindMapping("DBLP.AuthorAuthor", mapping.Identity(authors))
	b.BindSet("DBLP.Author", authors)

	src := `
$CoAuthSim = nhMatch (DBLP.CoAuthor, DBLP.AuthorAuthor, DBLP.CoAuthor)
$NameSim = attrMatch (DBLP.Author, DBLP.Author, Trigram, 0.5, "[name]", "[name]")
$Merged = merge ($CoAuthSim, $NameSim, Average)
$Result = select ($Merged, "[domain.id]<>[range.id]")
RETURN $Result
`
	v, err := New(b).RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	m := v.Mapping
	s, ok := m.Sim("niki", "agathoniki")
	if !ok {
		t.Fatal("duplicate pair missing from result")
	}
	if s <= 0.5 {
		t.Errorf("duplicate pair sim = %v, want > 0.5 (co-author 1.0 averaged with name sim)", s)
	}
	m.Each(func(c mapping.Correspondence) {
		if c.Domain == c.Range {
			t.Errorf("diagonal pair %v survived the selection", c)
		}
	})
	// The best pair should be the true duplicate.
	best := mapping.BestN{N: 1, Side: DomainSideForTest()}.Apply(m)
	if bs, _ := best.Sim("niki", "agathoniki"); bs == 0 {
		t.Error("true duplicate should be the top candidate for niki")
	}
}

// DomainSideForTest avoids importing mapping.DomainSide at a second name.
func DomainSideForTest() mapping.Side { return mapping.DomainSide }

func TestSelectThresholdBestDelta(t *testing.T) {
	b := testBinding()
	cases := []struct {
		src  string
		want int
	}{
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Threshold, 0.5)`, 2},
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Best, 1)`, 2},
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Best, 1, range)`, 2},
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Best, 1, both)`, 2},
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Delta, 0.1)`, 2},
		{`RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Delta, 0.6)`, 4},
	}
	for _, tc := range cases {
		v, err := New(b).RunSource(tc.src + "\n")
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if v.Mapping.Len() != tc.want {
			t.Errorf("%s -> %d corrs, want %d", tc.src, v.Mapping.Len(), tc.want)
		}
	}
}

func TestMergeVariantsInScript(t *testing.T) {
	b := NewBinding()
	m1 := mapping.NewSame(dblpPub, acmPub)
	m1.Add("a1", "b1", 1)
	m1.Add("a2", "b2", 0.8)
	m2 := mapping.NewSame(dblpPub, acmPub)
	m2.Add("a1", "b1", 0.6)
	m2.Add("a3", "b3", 0.9)
	b.BindMapping("M.A", m1)
	b.BindMapping("M.B", m2)

	cases := []struct {
		f    string
		len  int
		a1b1 float64
	}{
		{"Average", 3, 0.8},
		{"Min", 3, 0.6},
		{"Max", 3, 1},
		{"Min-0", 1, 0.6},
		{"Avg-0", 3, 0.8},
		{"PreferMap1", 3, 1},
		{"PreferMap2", 3, 0.6},
	}
	for _, tc := range cases {
		v, err := New(b).RunSource("RETURN merge(M.A, M.B, " + tc.f + ")\n")
		if err != nil {
			t.Fatalf("%s: %v", tc.f, err)
		}
		if v.Mapping.Len() != tc.len {
			t.Errorf("merge(%s) len = %d, want %d", tc.f, v.Mapping.Len(), tc.len)
		}
		if s, _ := v.Mapping.Sim("a1", "b1"); math.Abs(s-tc.a1b1) > 1e-9 {
			t.Errorf("merge(%s) a1-b1 = %v, want %v", tc.f, s, tc.a1b1)
		}
	}
}

func TestInverseAndIdentityBuiltins(t *testing.T) {
	b := testBinding()
	set := model.NewObjectSet(dblpPub)
	set.AddNew("p1", nil)
	b.BindSet("DBLP.Publication", set)

	v, err := New(b).RunSource("RETURN inverse(DBLP.VenuePub)\n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Mapping.Domain() != dblpPub {
		t.Errorf("inverse domain = %v", v.Mapping.Domain())
	}
	v, err = New(b).RunSource("RETURN identity(DBLP.Publication)\n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Mapping.Len() != 1 || !v.Mapping.Has("p1", "p1") {
		t.Error("identity mapping wrong")
	}
}

func TestRuntimeErrors(t *testing.T) {
	b := testBinding()
	cases := []string{
		"RETURN $Undefined\n",
		"RETURN unknownFn($X)\n",
		"RETURN Nowhere.Nothing\n",
		"RETURN compose(DBLP.VenuePub, DBLP.VenuePub, Min, Relative)\n", // middle mismatch
		"RETURN compose(DBLP.VenuePub, DBLP-ACM.PubSame, Bogus, Relative)\n",
		"RETURN compose(DBLP.VenuePub, DBLP-ACM.PubSame, Min, Bogus)\n",
		"RETURN merge(DBLP.VenuePub, Min)\n", // association merge fails
		"RETURN select(DBLP-ACM.PubSame, Bogus, 1)\n",
		"RETURN select(DBLP-ACM.PubSame, Best, 1, sideways)\n",
		"RETURN attrMatch(DBLP.VenuePub, DBLP.VenuePub, Trigram, 0.5, \"[name]\", \"[name]\")\n", // mappings, not sets
		"RETURN nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame)\n",                                      // wrong arity
		"PROCEDURE p($a)\nRETURN $a\nEND\nRETURN p()\n",                                          // wrong arity for user proc
	}
	for _, src := range cases {
		if _, err := New(b).RunSource(src); err == nil {
			t.Errorf("running %q should fail", strings.TrimSpace(src))
		}
	}
}

func TestDuplicateProcedure(t *testing.T) {
	src := "PROCEDURE p($a)\nRETURN $a\nEND\nPROCEDURE p($a)\nRETURN $a\nEND\n"
	if _, err := New(testBinding()).RunSource(src); err == nil {
		t.Error("duplicate procedure should fail")
	}
}

func TestGlobalsAndTrace(t *testing.T) {
	b := testBinding()
	ip := New(b)
	var traced []string
	ip.Trace = func(s string) { traced = append(traced, s) }
	_, err := ip.RunSource("$V = nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue)\n")
	if err != nil {
		t.Fatal(err)
	}
	v, ok := ip.Global("V")
	if !ok || v.Kind != MappingValue {
		t.Error("global $V not recorded")
	}
	if len(traced) != 1 || !strings.Contains(traced[0], "$V") {
		t.Errorf("trace = %v", traced)
	}
}

func TestValueString(t *testing.T) {
	m := mapping.NewSame(dblpPub, acmPub)
	set := model.NewObjectSet(dblpPub)
	cases := []struct {
		v    Value
		want string
	}{
		{Value{Kind: MappingValue, Mapping: m}, "mapping(0 corrs)"},
		{Value{Kind: SetValue, Set: set}, "set(0 instances)"},
		{Value{Kind: NumberValue, Num: 0.5}, "0.5"},
		{Value{Kind: StringValue, Str: "x"}, `"x"`},
		{Value{Kind: NoValue}, "<none>"},
	}
	for _, tc := range cases {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String = %q, want %q", got, tc.want)
		}
	}
}

func TestScriptStringRoundTrip(t *testing.T) {
	src := "$V = nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue)\nRETURN $V\n"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := s.String()
	s2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parsing rendered script: %v\n%s", err, rendered)
	}
	if len(s2.Stmts) != len(s.Stmts) {
		t.Error("round trip changed statement count")
	}
}

func TestSelectSideVariants(t *testing.T) {
	b := testBinding()
	// Side argument accepted for both Best and Delta forms.
	for _, src := range []string{
		"RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Delta, 0.1, range)\n",
		"RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Delta, 0.1, both)\n",
		"RETURN select(nhMatch(DBLP.VenuePub, DBLP-ACM.PubSame, ACM.PubVenue), Best, 2, domain)\n",
	} {
		v, err := New(b).RunSource(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if v.Kind != MappingValue {
			t.Errorf("%s: result kind %v", src, v.Kind)
		}
	}
}

func TestSelectConstraintUsesBoundSets(t *testing.T) {
	// A constraint referencing instance attributes resolves them via the
	// bound object sets of the mapping's endpoints.
	b := NewBinding()
	dblp := model.NewObjectSet(dblpPub)
	dblp.AddNew("p1", map[string]string{"year": "2001"})
	dblp.AddNew("p2", map[string]string{"year": "1994"})
	acm := model.NewObjectSet(acmPub)
	acm.AddNew("q1", map[string]string{"year": "2002"})
	acm.AddNew("q2", map[string]string{"year": "2002"})
	b.BindSet("DBLP.Publication", dblp)
	b.BindSet("ACM.Publication", acm)
	m := mapping.NewSame(dblpPub, acmPub)
	m.Add("p1", "q1", 0.9)
	m.Add("p2", "q2", 0.9)
	b.BindMapping("M.Same", m)

	v, err := New(b).RunSource(`RETURN select(M.Same, "abs([domain.year]-[range.year])<=1")` + "\n")
	if err != nil {
		t.Fatal(err)
	}
	if v.Mapping.Len() != 1 || !v.Mapping.Has("p1", "q1") {
		t.Errorf("constraint selection = %v", v.Mapping.Correspondences())
	}
}

func TestUserProcedureLocalScope(t *testing.T) {
	// Variables inside procedures are local; globals stay untouched.
	src := `
PROCEDURE pick ($m)
   $Result = select ($m, Best, 1)
   RETURN $Result
END
$Result = DBLP-ACM.PubSame
$Picked = pick($Result)
RETURN $Picked
`
	ip := New(testBinding())
	v, err := ip.RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != MappingValue {
		t.Fatalf("kind = %v", v.Kind)
	}
	// The global $Result must still be the full mapping, not the procedure's.
	g, ok := ip.Global("Result")
	if !ok || g.Mapping.Len() != 5 {
		t.Errorf("global $Result clobbered by procedure-local assignment: %v", g)
	}
}

func TestExprStatementAtTopLevel(t *testing.T) {
	// A bare call at top level evaluates and becomes the script result.
	src := "inverse(DBLP.VenuePub)\n"
	v, err := New(testBinding()).RunSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != MappingValue || v.Mapping.Domain() != dblpPub {
		t.Errorf("bare call result = %v", v)
	}
}
