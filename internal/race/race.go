//go:build !race

// Package race reports whether the race detector is enabled, mirroring the
// standard library's internal/race. The zero-allocation gates
// (testing.AllocsPerRun over //moma:noalloc paths) skip under -race: the
// detector's instrumentation heap-allocates closures and shadow state, so
// allocation counts stop measuring the code under test.
package race

// Enabled reports whether the build has the race detector on.
const Enabled = false
