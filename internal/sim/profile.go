package sim

// Similarity profiles: the pair-scoring fast path.
//
// The string-based Func measures re-normalize, re-tokenize and re-sort both
// inputs on every call. A match workflow evaluates O(n·m) candidate pairs
// over only n+m distinct attribute values, so almost all of that work is
// redundant. A Profile caches every derived form of one attribute value
// (normalized string, rune slice, token multiset, hashed character n-gram
// set, TF-IDF weight vector, Soundex code, parsed year); a ProfiledSim
// splits a measure into a per-value profiling stage (run once per instance)
// and a read-only pair-scoring stage (run once per pair).
//
// Every built-in Func has a profiled twin that returns *identical* scores;
// ProfiledOf maps a Func to its twin so that matchers can upgrade
// transparently. Compare never mutates its profiles, which makes the
// pair-scoring stage safe for concurrent workers.

import (
	"reflect"
	"slices"
	"strconv"
	"strings"
)

// Profile caches the derived forms of one attribute value. Only the fields
// the producing ProfiledSim needs are populated; all fields are read-only
// after Profile construction.
type Profile struct {
	// Raw is the original attribute value.
	Raw string
	// Norm is Normalize(Raw) (character-level measures).
	Norm string
	// NormSpace is NormalizeSpace(Raw) (case-folding equality).
	NormSpace string
	// Runes is []rune(Norm) (edit-distance and affix measures).
	Runes []rune
	// Tokens is Tokens(Raw) in order. The token-sequence measures
	// (Monge-Elkan, person names) score tokens character-wise and keep
	// strings; see the intern.go package comment.
	Tokens []string
	// SortedTokenIDs is the sorted, deduplicated token-ID set (interned in
	// Terms) for the token-overlap measures. ExtraTokens counts distinct
	// tokens of the value that are absent from the dictionary — produced
	// only by the lookup-only ProfileQuery path, where unknown tokens
	// cannot intersect anything but still belong to the set cardinality.
	SortedTokenIDs []uint32
	ExtraTokens    int
	// Grams is the sorted, deduplicated FNV-1a hash set of the padded
	// character n-grams (n fixed by the producing measure).
	Grams []uint64
	// TermIDs/TermKeys/Weights is the TF-IDF document vector: term IDs
	// (Terms dict) with their content keys (Dict.Key), sorted by key, and
	// the aligned tf-idf weights; WeightNorm2 is the squared Euclidean
	// norm. The content-key order makes the cosine dot product independent
	// of dictionary insertion order (see intern.go).
	TermIDs     []uint32
	TermKeys    []uint64
	Weights     []float64
	WeightNorm2 float64
	// Code is the Soundex code of the first token.
	Code string
	// Year is the parsed integer value; YearOK reports parse success.
	Year   int
	YearOK bool
}

// PairFunc scores a pair of precomputed profiles in [0,1].
type PairFunc func(a, b *Profile) float64

// ProfiledSim is a similarity measure split into a per-value profiling
// stage and a pair-scoring stage. Profile is called once per attribute
// value; Compare must be pure and safe for concurrent use over profiles
// produced by the same ProfiledSim.
type ProfiledSim interface {
	// Profile builds the per-value cache this measure needs. The contract
	// permits interning into the process-global Terms dictionary (token and
	// TF-IDF measures do); read paths must profile via QueryProfiler.
	//
	//moma:interns
	Profile(s string) *Profile
	// Compare scores two profiles built by this measure's Profile.
	Compare(a, b *Profile) float64
}

// Pair adapts a ProfiledSim's scoring stage to a PairFunc.
func Pair(ps ProfiledSim) PairFunc { return ps.Compare }

// TokenProfiler is implemented by profiled measures whose Profile stage
// tokenizes the value. ProfileTokens builds the same profile from an
// already-interned token column, skipping the re-tokenization — the
// blocking layer tokenizes and interns the blocking attribute anyway
// (block.Tokens), and when the match attribute coincides the profile build
// reuses that work. toks must be the Terms IDs of Tokens(s) in order and is
// treated as read-only (implementations copy before sorting), so one cached
// slice can feed several consumers.
type TokenProfiler interface {
	ProfiledSim
	ProfileTokens(s string, toks []uint32) *Profile
}

// ProfileVersioner is implemented by profiled measures whose profiles
// depend on mutable external state — a TF-IDF corpus, whose every Add or
// Remove shifts the idf of every term. ProfileVersion changes whenever
// previously-built profiles become stale; profile caches must include it
// in their keys. Measures without this interface build profiles as pure
// functions of the input value and never stale.
type ProfileVersioner interface {
	ProfiledSim
	// ProfileVersion identifies the state generation profiles are built
	// against.
	ProfileVersion() uint64
}

// QueryProfiler is implemented by profiled measures whose Profile stage
// interns tokens. ProfileQuery builds a profile that scores bit-identically
// to Profile(s) against any profile of interned values, but looks tokens up
// without interning them: a token the dictionary has never seen cannot
// match anything interned, so it contributes only its cardinality (token
// sets) or its weight (TF-IDF norms). Read-side callers — the live
// resolver profiling query records — use it so an unbounded stream of
// distinct queries never grows the process-global dictionary.
type QueryProfiler interface {
	ProfiledSim
	ProfileQuery(s string) *Profile
}

// profiledByFunc maps the code pointer of a built-in Func to its profiled
// twin. Only static top-level functions are registered: method values (for
// example (*TFIDF).Cosine) share one wrapper pointer across receivers and
// must use an explicit ProfiledSim instead.
var profiledByFunc = map[uintptr]ProfiledSim{}

func registerProfiled(fn Func, ps ProfiledSim) {
	profiledByFunc[reflect.ValueOf(fn).Pointer()] = ps
}

func init() {
	registerProfiled(Equal, equalProfiled{})
	registerProfiled(EqualFold, equalFoldProfiled{})
	registerProfiled(Trigram, ngramProfiled{n: 3, dice: true})
	registerProfiled(Bigram, ngramProfiled{n: 2, dice: true})
	registerProfiled(TrigramJaccard, ngramProfiled{n: 3})
	registerProfiled(Levenshtein, levenshteinProfiled{})
	registerProfiled(Jaro, jaroProfiled{})
	registerProfiled(JaroWinkler, jaroProfiled{winkler: true})
	registerProfiled(Affix, affixProfiled{mode: affixBoth})
	registerProfiled(Prefix, affixProfiled{mode: affixPrefix})
	registerProfiled(Suffix, affixProfiled{mode: affixSuffix})
	registerProfiled(TokenJaccard, tokenProfiled{})
	registerProfiled(TokenDice, tokenProfiled{dice: true})
	registerProfiled(MongeElkanJaroWinkler, mongeElkanProfiled{})
	registerProfiled(SoundexSim, soundexProfiled{})
	registerProfiled(YearSim, yearProfiled{})
	registerProfiled(YearExact, yearProfiled{exact: true})
	registerProfiled(PersonName, personNameProfiled{})
}

// ProfiledOf returns the profiled twin of a built-in similarity function.
// Unknown functions (custom closures, method values) report false; callers
// fall back to the string-based Func path.
func ProfiledOf(fn Func) (ProfiledSim, bool) {
	if fn == nil {
		return nil, false
	}
	ps, ok := profiledByFunc[reflect.ValueOf(fn).Pointer()]
	return ps, ok
}

// --- hashed character n-grams -------------------------------------------

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashedGrams returns the sorted, deduplicated 64-bit FNV-1a hashes of the
// padded character n-grams of an already-normalized string. It mirrors
// ngrams exactly (same padding, same dedup) but never materializes gram
// strings, so a profile build allocates one []rune and one []uint64.
func hashedGrams(norm string, n int) []uint64 {
	if n < 1 || norm == "" {
		return nil
	}
	pad := paddedRunes(norm, n)
	if len(pad) < n {
		return nil
	}
	out := make([]uint64, 0, len(pad)-n+1)
	for i := 0; i+n <= len(pad); i++ {
		h := fnvOffset64
		for _, r := range pad[i : i+n] {
			h ^= uint64(uint32(r))
			h *= fnvPrime64
		}
		out = append(out, h)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

type ngramProfiled struct {
	n    int
	dice bool
}

func (g ngramProfiled) Profile(s string) *Profile {
	norm := Normalize(s)
	return &Profile{Raw: s, Norm: norm, Grams: hashedGrams(norm, g.n)}
}

// Compare scores two gram sets by a merge-join over the sorted hashes.
//
//moma:noalloc
func (g ngramProfiled) Compare(a, b *Profile) float64 {
	ga, gb := a.Grams, b.Grams
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := overlap(ga, gb)
	if g.dice {
		return clamp01(2 * float64(inter) / float64(len(ga)+len(gb)))
	}
	union := len(ga) + len(gb) - inter
	return clamp01(float64(inter) / float64(union))
}

// --- token-set measures --------------------------------------------------

type tokenProfiled struct {
	dice bool
}

func (t tokenProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, SortedTokenIDs: uniqueSorted(Terms.TokenIDs(s))}
}

// ProfileTokens implements TokenProfiler. uniqueSorted sorts in place, so
// the shared slice is copied first.
func (t tokenProfiled) ProfileTokens(s string, toks []uint32) *Profile {
	return &Profile{Raw: s, SortedTokenIDs: uniqueSorted(slices.Clone(toks))}
}

// ProfileQuery implements QueryProfiler: unknown tokens are counted, not
// interned — they can intersect nothing, but Jaccard and Dice divide by the
// set sizes, which must include them.
func (t tokenProfiled) ProfileQuery(s string) *Profile {
	toks := uniqueSorted(Tokens(s))
	known := make([]uint32, 0, len(toks))
	extra := 0
	for _, tok := range toks {
		if id, ok := Terms.Lookup(tok); ok {
			known = append(known, id)
		} else {
			extra++
		}
	}
	return &Profile{Raw: s, SortedTokenIDs: uniqueSorted(known), ExtraTokens: extra}
}

// Compare scores two token-ID sets by a merge-join; unknown query tokens
// enlarge the set sizes through ExtraTokens without being materialized.
//
//moma:noalloc
func (t tokenProfiled) Compare(a, b *Profile) float64 {
	na := len(a.SortedTokenIDs) + a.ExtraTokens
	nb := len(b.SortedTokenIDs) + b.ExtraTokens
	if na == 0 && nb == 0 {
		return 1
	}
	if na == 0 || nb == 0 {
		return 0
	}
	inter := overlap(a.SortedTokenIDs, b.SortedTokenIDs)
	if t.dice {
		return clamp01(2 * float64(inter) / float64(na+nb))
	}
	union := na + nb - inter
	return clamp01(float64(inter) / float64(union))
}

// --- equality measures ---------------------------------------------------

type equalProfiled struct{}

func (equalProfiled) Profile(s string) *Profile { return &Profile{Raw: s} }

//moma:noalloc
func (equalProfiled) Compare(a, b *Profile) float64 {
	if a.Raw == b.Raw {
		return 1
	}
	return 0
}

type equalFoldProfiled struct{}

func (equalFoldProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, NormSpace: NormalizeSpace(s)}
}

//moma:noalloc
func (equalFoldProfiled) Compare(a, b *Profile) float64 {
	if strings.EqualFold(a.NormSpace, b.NormSpace) {
		return 1
	}
	return 0
}

// --- edit-distance measures ----------------------------------------------

type levenshteinProfiled struct{}

func (levenshteinProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Runes: []rune(Normalize(s))}
}

func (levenshteinProfiled) Compare(a, b *Profile) float64 {
	ra, rb := a.Runes, b.Runes
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return clamp01(1 - float64(editDistanceRunes(ra, rb))/float64(maxLen))
}

type jaroProfiled struct {
	winkler bool
}

func (jaroProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Runes: []rune(Normalize(s))}
}

func (j jaroProfiled) Compare(a, b *Profile) float64 {
	if j.winkler {
		return jaroWinklerRunes(a.Runes, b.Runes)
	}
	return jaroRunes(a.Runes, b.Runes)
}

// --- affix measures ------------------------------------------------------

type affixMode int

const (
	affixBoth affixMode = iota
	affixPrefix
	affixSuffix
)

type affixProfiled struct {
	mode affixMode
}

func (affixProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Runes: []rune(Normalize(s))}
}

// Compare scans the shared prefix/suffix in place over the profiled runes.
//
//moma:noalloc
func (m affixProfiled) Compare(a, b *Profile) float64 {
	ra, rb := a.Runes, b.Runes
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	minLen := len(ra)
	if len(rb) < minLen {
		minLen = len(rb)
	}
	best := 0
	if m.mode != affixSuffix {
		lcp := 0
		for lcp < minLen && ra[lcp] == rb[lcp] {
			lcp++
		}
		best = lcp
	}
	if m.mode != affixPrefix {
		lcs := 0
		for lcs < minLen && ra[len(ra)-1-lcs] == rb[len(rb)-1-lcs] {
			lcs++
		}
		if lcs > best {
			best = lcs
		}
	}
	return clamp01(float64(best) / float64(minLen))
}

// --- token-sequence measures ---------------------------------------------

type mongeElkanProfiled struct{}

func (mongeElkanProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Tokens: Tokens(s)}
}

// ProfileTokens implements TokenProfiler; the interned column is resolved
// back to strings once per value (token-sequence measures score tokens
// character-wise and need the text).
func (mongeElkanProfiled) ProfileTokens(s string, toks []uint32) *Profile {
	return &Profile{Raw: s, Tokens: Terms.Strs(toks)}
}

func (mongeElkanProfiled) Compare(a, b *Profile) float64 {
	return symMongeElkanTokens(a.Tokens, b.Tokens, JaroWinkler)
}

type personNameProfiled struct{}

func (personNameProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Tokens: Tokens(s)}
}

// ProfileTokens implements TokenProfiler (see mongeElkanProfiled).
func (personNameProfiled) ProfileTokens(s string, toks []uint32) *Profile {
	return &Profile{Raw: s, Tokens: Terms.Strs(toks)}
}

func (personNameProfiled) Compare(a, b *Profile) float64 {
	return personNameTokens(a.Tokens, b.Tokens)
}

// --- phonetic and numeric measures ---------------------------------------

type soundexProfiled struct{}

func (soundexProfiled) Profile(s string) *Profile {
	return &Profile{Raw: s, Code: Soundex(s)}
}

//moma:noalloc
func (soundexProfiled) Compare(a, b *Profile) float64 {
	if a.Code == "" || b.Code == "" {
		return 0
	}
	if a.Code == b.Code {
		return 1
	}
	return 0
}

type yearProfiled struct {
	exact bool
}

func (yearProfiled) Profile(s string) *Profile {
	y, err := strconv.Atoi(strings.TrimSpace(s))
	return &Profile{Raw: s, Year: y, YearOK: err == nil}
}

//moma:noalloc
func (p yearProfiled) Compare(a, b *Profile) float64 {
	if !a.YearOK || !b.YearOK {
		return 0
	}
	switch d := a.Year - b.Year; {
	case d == 0:
		return 1
	case !p.exact && (d == 1 || d == -1):
		return 0.5
	default:
		return 0
	}
}
