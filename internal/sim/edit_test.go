package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEditDistance(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"abc", "abc", 0},
		{"book", "back", 2},
	}
	for _, tc := range tests {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%q,%q) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEditDistanceMetricProperties(t *testing.T) {
	symmetry := func(a, b string) bool { return EditDistance(a, b) == EditDistance(b, a) }
	if err := quick.Check(symmetry, &quick.Config{MaxCount: 150}); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	identity := func(a string) bool { return EditDistance(a, a) == 0 }
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	triangle := func(a, b, c string) bool {
		// Keep inputs short so the O(n^2) DP stays fast under quick.
		if len(a) > 40 || len(b) > 40 || len(c) > 40 {
			return true
		}
		return EditDistance(a, c) <= EditDistance(a, b)+EditDistance(b, c)
	}
	if err := quick.Check(triangle, &quick.Config{MaxCount: 100}); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
}

func TestLevenshteinNormalized(t *testing.T) {
	// normalize("Kitten") = "kitten" vs "sitting": dist 3, max len 7.
	want := 1 - 3.0/7.0
	if got := Levenshtein("Kitten", "sitting"); math.Abs(got-want) > 1e-12 {
		t.Errorf("Levenshtein = %v, want %v", got, want)
	}
	if Levenshtein("", "") != 1 {
		t.Error("both empty should be 1")
	}
	if Levenshtein("abc", "") != 0 {
		t.Error("one empty should be 0")
	}
}

func TestJaroKnownValues(t *testing.T) {
	// Classic reference values (normalization lowercases only).
	tests := []struct {
		a, b string
		want float64
	}{
		{"MARTHA", "MARHTA", 0.944444},
		{"DIXON", "DICKSONX", 0.766667},
		{"JELLYFISH", "SMELLYFISH", 0.896296},
	}
	for _, tc := range tests {
		if got := Jaro(tc.a, tc.b); math.Abs(got-tc.want) > 1e-4 {
			t.Errorf("Jaro(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if Jaro("abc", "xyz") != 0 {
		t.Error("no matches should be 0")
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	// MARTHA/MARHTA share prefix "mar" (3): 0.944444 + 3*0.1*(1-0.944444)
	want := 0.944444 + 0.3*(1-0.944444)
	if got := JaroWinkler("MARTHA", "MARHTA"); math.Abs(got-want) > 1e-4 {
		t.Errorf("JaroWinkler = %v, want %v", got, want)
	}
	f := func(a, b string) bool { return JaroWinkler(a, b) >= Jaro(a, b)-1e-12 }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("JaroWinkler must dominate Jaro: %v", err)
	}
}

func TestMongeElkan(t *testing.T) {
	// Token reordering should barely hurt Monge-Elkan.
	s := MongeElkanJaroWinkler("Erhard Rahm", "Rahm Erhard")
	if s < 0.95 {
		t.Errorf("reordered name = %v, want >= 0.95", s)
	}
	if MongeElkan("", "", Equal) != 1 {
		t.Error("both empty should be 1")
	}
	if MongeElkan("a", "", Equal) != 0 {
		t.Error("one empty should be 0")
	}
	// Asymmetry: every token of "a" appears in "a b", but not vice versa.
	fwd := MongeElkan("alpha", "alpha beta", Equal)
	rev := MongeElkan("alpha beta", "alpha", Equal)
	if fwd != 1 || rev != 0.5 {
		t.Errorf("MongeElkan directions = %v, %v; want 1, 0.5", fwd, rev)
	}
	if got := SymMongeElkan("alpha", "alpha beta", Equal); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("SymMongeElkan = %v, want 0.75", got)
	}
}
