package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTokenJaccardDice(t *testing.T) {
	a := "a formal perspective on the view"
	b := "a formal perspective"
	// tokens a: 6, b: 3, overlap 3 -> jaccard 3/6, dice 2*3/9.
	if got := TokenJaccard(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("TokenJaccard = %v, want 0.5", got)
	}
	if got := TokenDice(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("TokenDice = %v, want 2/3", got)
	}
	if TokenJaccard("", "") != 1 || TokenDice("x", "") != 0 {
		t.Error("empty handling wrong")
	}
}

func TestTokenJaccardDuplicateTokens(t *testing.T) {
	// Sets, not bags: repeated tokens count once.
	if got := TokenJaccard("data data data", "data"); got != 1 {
		t.Errorf("duplicate tokens = %v, want 1", got)
	}
}

func TestYearSim(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"2001", "2001", 1},
		{"2001", "2002", 0.5},
		{"2002", "2001", 0.5},
		{"2001", "2003", 0},
		{"2001", "", 0},
		{"n/a", "2001", 0},
		{" 1999 ", "1999", 1},
	}
	for _, tc := range tests {
		if got := YearSim(tc.a, tc.b); got != tc.want {
			t.Errorf("YearSim(%q,%q) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if YearExact("2001", "2001") != 1 || YearExact("2001", "2002") != 0 {
		t.Error("YearExact wrong")
	}
}

func TestNumericProximity(t *testing.T) {
	f := NumericProximity(10)
	if got := f("100", "105"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("proximity = %v, want 0.5", got)
	}
	if f("100", "100") != 1 {
		t.Error("equal should be 1")
	}
	if f("100", "200") != 0 {
		t.Error("far apart should clamp to 0")
	}
	if f("x", "100") != 0 {
		t.Error("non-numeric should be 0")
	}
	if NumericProximity(0)("1", "1") != 0 {
		t.Error("non-positive scale should be 0")
	}
}

func TestSoundexKnownCodes(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Robert", "R163"},
		{"Rupert", "R163"},
		{"Ashcraft", "A261"},
		{"Ashcroft", "A261"},
		{"Tymczak", "T522"},
		{"Pfister", "P236"},
		{"Honeyman", "H555"},
		{"", ""},
		{"123", ""},
	}
	for _, tc := range tests {
		if got := Soundex(tc.in); got != tc.want {
			t.Errorf("Soundex(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSoundexSim(t *testing.T) {
	if SoundexSim("Robert", "Rupert") != 1 {
		t.Error("Robert/Rupert should share a Soundex code")
	}
	if SoundexSim("Robert", "Miller") != 0 {
		t.Error("different codes should be 0")
	}
	if SoundexSim("", "Robert") != 0 {
		t.Error("empty side should be 0")
	}
}

func TestPersonNameInitials(t *testing.T) {
	// The Google Scholar case: first names reduced to initials.
	full := PersonName("Andreas Thor", "A. Thor")
	if full < 0.9 {
		t.Errorf("initial match = %v, want >= 0.9", full)
	}
	mismatch := PersonName("Andreas Thor", "B. Thor")
	if mismatch >= full {
		t.Errorf("wrong initial (%v) must score below right initial (%v)", mismatch, full)
	}
	if got := PersonName("Erhard Rahm", "Erhard Rahm"); got != 1 {
		t.Errorf("identical names = %v, want 1", got)
	}
	diff := PersonName("Erhard Rahm", "Andreas Thor")
	if diff > 0.6 {
		t.Errorf("different people = %v, want <= 0.6", diff)
	}
}

func TestPersonNameSurnameOnly(t *testing.T) {
	s := PersonName("Rahm", "Erhard Rahm")
	if s <= 0 || s >= 1 {
		t.Errorf("surname-only = %v, want in (0,1)", s)
	}
	if PersonName("", "") != 1 || PersonName("x", "") != 0 {
		t.Error("empty handling wrong")
	}
}

func TestPersonNameCatalinaCase(t *testing.T) {
	// Table 9's hard case: same co-authors, similar first names, different
	// surnames. The name measure alone must NOT consider them equal.
	s := PersonName("Catalina Fan", "Catalina Wei")
	if s >= 0.9 {
		t.Errorf("Catalina Fan vs Catalina Wei = %v, want < 0.9", s)
	}
	if s == 0 {
		t.Error("shared given name should still give partial credit")
	}
}

func TestGivenTokenSim(t *testing.T) {
	if givenTokenSim("a", "andreas") != 0.9 {
		t.Error("initial vs full name should be 0.9")
	}
	if givenTokenSim("b", "andreas") != 0 {
		t.Error("wrong initial should be 0")
	}
	if givenTokenSim("andreas", "andreas") != 1 {
		t.Error("equal should be 1")
	}
}

func TestPersonNameSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		return math.Abs(PersonName(a, b)-PersonName(b, a)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
