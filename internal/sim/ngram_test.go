package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNGramsPaddingAndDedup(t *testing.T) {
	g := ngrams("aa", 2)
	// padded: \x01 a a \x02 -> grams: \x01a, aa, a\x02 (deduplicated)
	if len(g) != 3 {
		t.Errorf("ngrams(aa,2) = %v, want 3 distinct grams", g)
	}
	if ngrams("", 3) != nil {
		t.Error("empty string should have no grams")
	}
	if ngrams("x", 0) != nil {
		t.Error("n<1 should have no grams")
	}
}

func TestTrigramExactValues(t *testing.T) {
	// "abc" padded: ^^abc$$ -> grams ^^a ^ab abc bc$ c$$ (5 distinct).
	// "abd" -> ^^a ^ab abd bd$ d$$. Overlap = {^^a, ^ab} = 2.
	// Dice = 2*2/(5+5) = 0.4.
	if got := Trigram("abc", "abd"); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Trigram(abc,abd) = %v, want 0.4", got)
	}
	if Trigram("abc", "abc") != 1 {
		t.Error("identical strings should be 1")
	}
	if Trigram("abc", "xyz") != 0 {
		t.Error("disjoint strings should be 0")
	}
	if Trigram("", "") != 1 {
		t.Error("both empty should be 1")
	}
	if Trigram("abc", "") != 0 {
		t.Error("one empty should be 0")
	}
}

func TestTrigramCaseInsensitive(t *testing.T) {
	if Trigram("Data Integration", "data integration") != 1 {
		t.Error("Trigram should normalize case")
	}
}

func TestTrigramTitleVariants(t *testing.T) {
	// A realistic dirty-title scenario: small typo keeps similarity high,
	// unrelated titles stay low.
	typo := Trigram("Generic Schema Matching with Cupid", "Generic Schema Matchng with Cupid")
	if typo < 0.8 {
		t.Errorf("typo similarity = %v, want >= 0.8", typo)
	}
	other := Trigram("Generic Schema Matching with Cupid", "A formal perspective on the view selection problem")
	if other > 0.3 {
		t.Errorf("unrelated similarity = %v, want <= 0.3", other)
	}
	if typo <= other {
		t.Error("typo variant must outscore unrelated title")
	}
}

func TestNGramJaccardLeqDice(t *testing.T) {
	f := func(a, b string) bool {
		j := NGramJaccard(a, b, 3)
		d := NGramDice(a, b, 3)
		// Jaccard <= Dice always (j = d/(2-d)).
		return j <= d+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAffix(t *testing.T) {
	if got := Affix("SIGMOD Rec", "SIGMOD Record"); got != 1 {
		// lcp of "sigmod rec" (10) vs min length 10 -> 1.0
		t.Errorf("Affix(SIGMOD Rec, SIGMOD Record) = %v, want 1", got)
	}
	if got := Affix("abcx", "abcy"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Affix(abcx,abcy) = %v, want 0.75", got)
	}
	if got := Affix("xabc", "yabc"); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Affix suffix case = %v, want 0.75", got)
	}
	if Affix("", "") != 1 || Affix("a", "") != 0 {
		t.Error("Affix empty handling wrong")
	}
}

func TestPrefixSuffix(t *testing.T) {
	if got := Prefix("abcd", "abxy"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Prefix = %v, want 0.5", got)
	}
	if got := Suffix("wxcd", "yzcd"); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Suffix = %v, want 0.5", got)
	}
	if Prefix("", "") != 1 || Suffix("", "x") != 0 {
		t.Error("empty handling wrong")
	}
	f := func(a, b string) bool {
		af, p, s := Affix(a, b), Prefix(a, b), Suffix(a, b)
		return af >= p-1e-12 && af >= s-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
