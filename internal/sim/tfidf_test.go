package sim

import (
	"math"
	"testing"
)

func corpusModel() *TFIDF {
	t := NewTFIDF()
	t.AddAll([]string{
		"a formal perspective on the view selection problem",
		"generic schema matching with cupid",
		"the view selection problem revisited",
		"data integration on the web",
		"schema matching survey",
		"query processing on the web",
	})
	return t
}

func TestTFIDFIdentity(t *testing.T) {
	m := corpusModel()
	if got := m.Cosine("generic schema matching with cupid", "generic schema matching with cupid"); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %v, want 1", got)
	}
}

func TestTFIDFRareTokensDominate(t *testing.T) {
	m := corpusModel()
	// "cupid" is rare, "the/on" are common: sharing the rare token must
	// outscore sharing only stop-words.
	rare := m.Cosine("cupid matching", "generic schema matching with cupid")
	common := m.Cosine("on the", "a formal perspective on the view selection problem")
	if rare <= common {
		t.Errorf("rare overlap (%v) should outscore stop-word overlap (%v)", rare, common)
	}
}

func TestTFIDFEmpty(t *testing.T) {
	m := corpusModel()
	if m.Cosine("", "") != 1 {
		t.Error("both empty should be 1")
	}
	if m.Cosine("x", "") != 0 {
		t.Error("one empty should be 0")
	}
}

func TestTFIDFUnknownTokens(t *testing.T) {
	m := corpusModel()
	got := m.Cosine("zebra quagga", "zebra quagga")
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("unknown-token self similarity = %v, want 1", got)
	}
	if m.Cosine("zebra", "quagga") != 0 {
		t.Error("disjoint unknown tokens should be 0")
	}
}

func TestTFIDFRange(t *testing.T) {
	m := corpusModel()
	pairs := [][2]string{
		{"schema matching", "generic schema matching with cupid"},
		{"view selection", "the view selection problem revisited"},
		{"web data", "data integration on the web"},
	}
	for _, p := range pairs {
		s := m.Cosine(p[0], p[1])
		if s <= 0 || s > 1 {
			t.Errorf("Cosine(%q,%q) = %v, want in (0,1]", p[0], p[1], s)
		}
	}
}

func TestTFIDFDocs(t *testing.T) {
	m := corpusModel()
	if m.Docs() != 6 {
		t.Errorf("Docs = %d, want 6", m.Docs())
	}
}

func TestTFIDFFuncAdapter(t *testing.T) {
	m := corpusModel()
	fn := m.Func()
	if fn("schema", "schema") != m.Cosine("schema", "schema") {
		t.Error("Func adapter should delegate to Cosine")
	}
}
