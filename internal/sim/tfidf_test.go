package sim

import (
	"math"
	"testing"
)

func corpusModel() *TFIDF {
	t := NewTFIDF()
	t.AddAll([]string{
		"a formal perspective on the view selection problem",
		"generic schema matching with cupid",
		"the view selection problem revisited",
		"data integration on the web",
		"schema matching survey",
		"query processing on the web",
	})
	return t
}

func TestTFIDFIdentity(t *testing.T) {
	m := corpusModel()
	if got := m.Cosine("generic schema matching with cupid", "generic schema matching with cupid"); math.Abs(got-1) > 1e-9 {
		t.Errorf("self similarity = %v, want 1", got)
	}
}

func TestTFIDFRareTokensDominate(t *testing.T) {
	m := corpusModel()
	// "cupid" is rare, "the/on" are common: sharing the rare token must
	// outscore sharing only stop-words.
	rare := m.Cosine("cupid matching", "generic schema matching with cupid")
	common := m.Cosine("on the", "a formal perspective on the view selection problem")
	if rare <= common {
		t.Errorf("rare overlap (%v) should outscore stop-word overlap (%v)", rare, common)
	}
}

func TestTFIDFEmpty(t *testing.T) {
	m := corpusModel()
	if m.Cosine("", "") != 1 {
		t.Error("both empty should be 1")
	}
	if m.Cosine("x", "") != 0 {
		t.Error("one empty should be 0")
	}
}

func TestTFIDFUnknownTokens(t *testing.T) {
	m := corpusModel()
	got := m.Cosine("zebra quagga", "zebra quagga")
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("unknown-token self similarity = %v, want 1", got)
	}
	if m.Cosine("zebra", "quagga") != 0 {
		t.Error("disjoint unknown tokens should be 0")
	}
}

func TestTFIDFRange(t *testing.T) {
	m := corpusModel()
	pairs := [][2]string{
		{"schema matching", "generic schema matching with cupid"},
		{"view selection", "the view selection problem revisited"},
		{"web data", "data integration on the web"},
	}
	for _, p := range pairs {
		s := m.Cosine(p[0], p[1])
		if s <= 0 || s > 1 {
			t.Errorf("Cosine(%q,%q) = %v, want in (0,1]", p[0], p[1], s)
		}
	}
}

func TestTFIDFDocs(t *testing.T) {
	m := corpusModel()
	if m.Docs() != 6 {
		t.Errorf("Docs = %d, want 6", m.Docs())
	}
}

func TestTFIDFFuncAdapter(t *testing.T) {
	m := corpusModel()
	fn := m.Func()
	if fn("schema", "schema") != m.Cosine("schema", "schema") {
		t.Error("Func adapter should delegate to Cosine")
	}
}

// TestTFIDFInterleavedAddRemoveCompare is the vector-cache invalidation
// test: Compare/Cosine results observed between interleaved Adds and
// Removes must always equal a corpus freshly built to the same document
// multiset — cached vectors from any earlier corpus state must never leak
// into a later score.
func TestTFIDFInterleavedAddRemoveCompare(t *testing.T) {
	docs := []string{
		"a formal perspective on the view selection problem",
		"generic schema matching with cupid",
		"the view selection problem revisited",
		"data integration on the web",
		"schema matching survey",
		"query processing on the web",
		"view maintenance in warehouses",
		"the the the", // degenerate: single repeated stop-word
		"",            // degenerate: empty document
	}
	type op struct {
		remove bool
		doc    string
	}
	script := []op{
		{false, docs[0]}, {false, docs[1]}, {false, docs[2]},
		{true, docs[1]},
		{false, docs[3]}, {false, docs[4]},
		{true, docs[0]},
		{false, docs[5]}, {false, docs[6]}, {false, docs[7]},
		{true, docs[4]},
		{false, docs[8]}, {false, docs[1]},
		{true, docs[2]}, {true, docs[7]},
	}
	corpus := NewTFIDF()
	resident := map[string]int{} // document multiset currently registered
	for step, o := range script {
		if o.remove {
			corpus.Remove(o.doc)
			resident[o.doc]--
		} else {
			corpus.Add(o.doc)
			resident[o.doc]++
		}
		// Score a fixed probe matrix through both the cached Cosine and the
		// profiled path, against a from-scratch corpus of the same state.
		fresh := NewTFIDF()
		for doc, n := range resident {
			for i := 0; i < n; i++ {
				fresh.Add(doc)
			}
		}
		if corpus.Docs() != fresh.Docs() {
			t.Fatalf("step %d: Docs = %d, fresh %d", step, corpus.Docs(), fresh.Docs())
		}
		ps := corpus.Profiled()
		for _, a := range docs {
			pa := ps.Profile(a)
			for _, b := range docs {
				want := fresh.Cosine(a, b)
				if got := corpus.Cosine(a, b); got != want {
					t.Fatalf("step %d: Cosine(%q, %q) = %v, fresh corpus %v (stale cache?)", step, a, b, got, want)
				}
				if got := ps.Compare(pa, ps.Profile(b)); got != want {
					t.Fatalf("step %d: profiled(%q, %q) = %v, fresh corpus %v", step, a, b, got, want)
				}
			}
		}
	}
}

// TestTFIDFRemoveRestoresStatistics: adding then removing a document batch
// must leave document frequencies — and therefore every score — exactly
// where they started.
func TestTFIDFRemoveRestoresStatistics(t *testing.T) {
	m := corpusModel()
	a, b := "schema matching", "generic schema matching with cupid"
	before := m.Cosine(a, b)
	extra := []string{"schema schema schema", "matching things with other things", "cupid strikes again"}
	for _, d := range extra {
		m.Add(d)
	}
	if mid := m.Cosine(a, b); mid == before {
		t.Fatalf("adding corpus documents did not move the score (%v); dilution broken", before)
	}
	for _, d := range extra {
		m.Remove(d)
	}
	if after := m.Cosine(a, b); after != before {
		t.Fatalf("add+remove must restore the score exactly: before %v, after %v", before, after)
	}
}
