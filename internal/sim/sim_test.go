package sim

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// allFuncs lists every built-in measure for property tests.
func allFuncs() map[string]Func {
	r := NewRegistry()
	out := make(map[string]Func)
	for _, name := range r.Names() {
		fn, _ := r.Lookup(name)
		out[name] = fn
	}
	return out
}

func TestRegistryLookup(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup("Trigram"); !ok {
		t.Error("Trigram should be registered")
	}
	if _, ok := r.Lookup("trigram"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("unknown name should miss")
	}
}

func TestRegistryRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("", Equal); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.Register("X", nil); err == nil {
		t.Error("nil func should fail")
	}
	if err := r.Register("TRIGRAM", Equal); err == nil {
		t.Error("case-insensitive duplicate should fail")
	}
	if err := r.Register("custom", Equal); err != nil {
		t.Errorf("fresh name should register: %v", err)
	}
}

func TestRegistryNamesOrder(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) == 0 || names[0] != "Equal" {
		t.Errorf("Names()[0] = %v, want Equal first", names)
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Generic Schema Matching with Cupid", "generic schema matching with cupid"},
		{"  A  Formal   Perspective ", "a formal perspective"},
		{"VLDB-2002", "vldb 2002"},
		{"CIDR'07!", "cidr07"},
		{"Müller, J.", "müller j"},
		{"", ""},
		{"---", ""},
	}
	for _, tc := range tests {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokens(t *testing.T) {
	got := Tokens("A Formal Perspective on the View!")
	want := []string{"a", "formal", "perspective", "on", "the", "view"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
	if Tokens("") != nil {
		t.Error("Tokens of empty should be nil")
	}
}

func TestRangeInvariant(t *testing.T) {
	inputs := []string{"", "a", "ab", "abc", "hello world", "VLDB 2002",
		"28th International Conference on Very Large Data Bases",
		"éàü", "x y z", "1234", "Catalina Fan", "C. Fan"}
	for name, fn := range allFuncs() {
		for _, a := range inputs {
			for _, b := range inputs {
				s := fn(a, b)
				if s < 0 || s > 1 || math.IsNaN(s) {
					t.Errorf("%s(%q, %q) = %v out of [0,1]", name, a, b, s)
				}
			}
		}
	}
}

func TestIdentityInvariant(t *testing.T) {
	// Every measure must score a non-empty normalizable string 1 against
	// itself.
	inputs := []string{"hello", "Data Integration", "Catalina Fan", "1999"}
	for name, fn := range allFuncs() {
		if name == "Year" || name == "YearExact" {
			continue // only defined on numeric input; tested separately
		}
		for _, a := range inputs {
			if name == "Soundex" && a == "1999" {
				continue // Soundex is only defined on alphabetic tokens
			}
			if s := fn(a, a); s != 1 {
				t.Errorf("%s(%q, %q) = %v, want 1", name, a, a, s)
			}
		}
	}
}

func TestSymmetryProperty(t *testing.T) {
	symmetric := []string{"Equal", "EqualFold", "Trigram", "Bigram",
		"NGramJaccard", "Levenshtein", "Jaro", "JaroWinkler", "Affix",
		"Prefix", "Suffix", "TokenJaccard", "TokenDice", "MongeElkan",
		"Soundex", "Year", "YearExact"}
	r := NewRegistry()
	f := func(a, b string) bool {
		for _, name := range symmetric {
			fn, _ := r.Lookup(name)
			if math.Abs(fn(a, b)-fn(b, a)) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRangeProperty(t *testing.T) {
	fns := allFuncs()
	f := func(a, b string) bool {
		for _, fn := range fns {
			s := fn(a, b)
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEqualFold(t *testing.T) {
	if EqualFold("VLDB  2002", "vldb 2002") != 1 {
		t.Error("EqualFold should normalize whitespace and case")
	}
	if EqualFold("VLDB", "SIGMOD") != 0 {
		t.Error("different strings should be 0")
	}
}
