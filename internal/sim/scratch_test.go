package sim

import (
	"slices"
	"strconv"
	"strings"
	"testing"

	"repro/internal/race"
)

// scratchValues mixes the cases the in-place profiling path must agree with
// the allocating path on: unicode folding, separator classes, empty and
// blank values, years (signed, padded, overlong, garbage), and tokens the
// dictionary has never seen.
func scratchValues() []string {
	return []string{
		"",
		"   ",
		"Mapping-Based Object_Matching",
		"mapping based object matching for data integration",
		"a formal perspective on the view selection problem",
		"Ångström ünïcode Σ tokens",
		"a",
		"1997",
		" 2003 ",
		"+42",
		"-7",
		"not a year",
		"12345678901234567890123",
		"zzz never-interned qqq never-interned",
	}
}

// inPlaceMeasures enumerates every measure that implements
// InPlaceQueryProfiler, with the variants that change scoring.
func inPlaceMeasures() map[string]InPlaceQueryProfiler {
	return map[string]InPlaceQueryProfiler{
		"equal":          equalProfiled{},
		"trigramDice":    ngramProfiled{n: 3, dice: true},
		"bigramDice":     ngramProfiled{n: 2, dice: true},
		"trigramJaccard": ngramProfiled{n: 3},
		"tokenJaccard":   tokenProfiled{},
		"tokenDice":      tokenProfiled{dice: true},
		"year":           yearProfiled{},
		"yearExact":      yearProfiled{exact: true},
	}
}

// TestAppendNormalizedMatchesNormalize pins the byte-wise normalizer to the
// string one for every fixture value.
func TestAppendNormalizedMatchesNormalize(t *testing.T) {
	var buf []byte
	for _, v := range scratchValues() {
		buf = appendNormalized(buf[:0], v)
		if got, want := string(buf), Normalize(v); got != want {
			t.Errorf("appendNormalized(%q) = %q, Normalize = %q", v, got, want)
		}
	}
}

// TestAppendLookupTokenIDsMatchesLookupTokenIDs pins the buffer-reusing
// lookup to the allocating one: same known IDs, same order, unknowns
// dropped.
func TestAppendLookupTokenIDsMatchesLookupTokenIDs(t *testing.T) {
	Terms.TokenIDs("mapping based object matching for data integration")
	Terms.TokenIDs("a formal perspective on the view selection problem")
	var norm []byte
	var ids []uint32
	for _, v := range scratchValues() {
		norm, ids = Terms.AppendLookupTokenIDs(v, norm, ids)
		want := Terms.LookupTokenIDs(v)
		if !slices.Equal(ids, want) {
			t.Errorf("AppendLookupTokenIDs(%q) = %v, LookupTokenIDs = %v", v, ids, want)
		}
	}
}

// TestParseYearIntMatchesAtoi pins the allocation-free parser to
// strconv.Atoi over the fixture values plus strconv edge cases.
func TestParseYearIntMatchesAtoi(t *testing.T) {
	cases := append(scratchValues(), "0", "007", "-0", "+", "-", "1e3", "١٩٩٧")
	for _, v := range cases {
		got, ok := parseYearInt(v)
		want, err := strconv.Atoi(strings.TrimSpace(v))
		if wantOK := err == nil; ok != wantOK || (ok && got != want) {
			t.Errorf("parseYearInt(%q) = (%d, %v), Atoi = (%d, %v)", v, got, ok, want, err)
		}
	}
}

// TestProfileQueryIntoMatchesQueryPath is the differential contract test of
// InPlaceQueryProfiler: against every indexed profile, a profile rebuilt
// into reused memory scores exactly like the allocating query path
// (ProfileQuery where the measure interns, Profile otherwise).
func TestProfileQueryIntoMatchesQueryPath(t *testing.T) {
	vals := scratchValues()
	for name, ip := range inPlaceMeasures() {
		// Index every value first (interning measures grow the dictionary
		// here), then query with the tail values still unknown where the
		// fixture says so.
		indexed := make([]*Profile, len(vals))
		for i, v := range vals[:len(vals)-1] {
			indexed[i] = ip.Profile(v)
		}
		indexed[len(vals)-1] = &Profile{} // the unknown-token query never gets indexed
		var p Profile
		var sc Scratch
		for _, q := range vals {
			baseline := ip.Profile(q)
			if qp, ok := ip.(QueryProfiler); ok {
				baseline = qp.ProfileQuery(q)
			}
			ip.ProfileQueryInto(q, &p, &sc)
			for i, v := range vals[:len(vals)-1] {
				got := ip.Compare(&p, indexed[i])
				want := ip.Compare(baseline, indexed[i])
				if got != want {
					t.Errorf("%s: Compare(into(%q), profile(%q)) = %v, query path = %v", name, q, v, got, want)
				}
			}
		}
	}
}

// TestProfileQueryIntoZeroAllocs pins the whole point: once the scratch and
// profile buffers reach their high-water mark, rebuilding a query profile
// allocates nothing — for every in-place measure, including the
// unknown-token dedup of the token-set measures.
func TestProfileQueryIntoZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	Terms.TokenIDs("mapping based object matching for data integration")
	queries := []string{
		"Mapping-Based object matching",
		"mapping based integration zzz-unknown qqq-unknown zzz-unknown",
		" 1997 ",
	}
	for name, ip := range inPlaceMeasures() {
		var p Profile
		var sc Scratch
		for _, q := range queries {
			allocs := testing.AllocsPerRun(100, func() {
				ip.ProfileQueryInto(q, &p, &sc)
			})
			if allocs != 0 {
				t.Errorf("%s: ProfileQueryInto(%q) allocates %.0f times per run, want 0", name, q, allocs)
			}
		}
	}
}

// TestAppendLookupTokenIDsZeroAllocs pins the blocking-token probe: a warm
// lookup through reused buffers allocates nothing.
func TestAppendLookupTokenIDsZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	Terms.TokenIDs("adaptive blocking techniques for scalable record linkage")
	q := "Adaptive record LINKAGE with unknown-zzz tokens"
	var norm []byte
	var ids []uint32
	allocs := testing.AllocsPerRun(100, func() {
		norm, ids = Terms.AppendLookupTokenIDs(q, norm, ids)
	})
	if allocs != 0 {
		t.Errorf("AppendLookupTokenIDs allocates %.0f times per run, want 0", allocs)
	}
	if len(ids) == 0 {
		t.Fatal("probe found no known tokens; fixture broken")
	}
}
