package sim

// In-place query profiling: the zero-allocation leg of the warm resolve
// path.
//
// QueryProfiler.ProfileQuery keeps dictionaries flat under read traffic,
// but still allocates a fresh *Profile (plus its slices) per query column.
// For the live resolver's steady state — the same handful of columns
// profiled thousands of times per second — that garbage is the dominant
// cost. InPlaceQueryProfiler rebuilds the profile into caller-owned memory
// instead: the caller keeps one Profile per column and one Scratch per
// resolve, the profiling stage reuses their backing arrays, and after the
// buffers reach the working-set high-water mark a profile build performs
// zero heap allocations. testing.AllocsPerRun gates in live and sim pin
// that property; the noalloc analyzer checks it statically.
//
// The contract matches ProfileQuery exactly: lookup-only (never interns,
// so dictgrowth-clean) and Compare-identical to the allocating path —
// differential tests in profile_test.go pin score equality.

import (
	"bytes"
	"slices"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Scratch holds the reusable buffers of in-place query profiling. The zero
// value is ready to use; buffers grow to the high-water mark of the values
// profiled through them and are then reused without further allocation.
// A Scratch is not safe for concurrent use; pool or per-goroutine it.
type Scratch struct {
	norm  []byte // normalized value bytes
	runes []rune // padded rune window for gram hashing
	spans []span // unknown-token byte ranges in norm
}

// span is one token's byte range within Scratch.norm.
type span struct{ start, end int }

// InPlaceQueryProfiler is implemented by profiled measures whose query
// profile can be rebuilt into a caller-owned Profile with zero steady-state
// allocations. ProfileQueryInto must be lookup-only (it never interns) and
// must leave p Compare-identical to ProfileQuery(s) — or to Profile(s) for
// measures whose profiling stage is a pure function of the value. p's slice
// fields are reused as append targets; everything else in p is overwritten.
type InPlaceQueryProfiler interface {
	ProfiledSim
	ProfileQueryInto(s string, p *Profile, sc *Scratch)
}

// appendNormalized appends Normalize(s) to dst byte-wise — the same fold,
// the same separator classes, no intermediate string.
//
//moma:noalloc
func appendNormalized(dst []byte, s string) []byte {
	lastSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			dst = utf8.AppendRune(dst, unicode.ToLower(r)) //moma:noalloc-ok appends into reused scratch capacity
			lastSpace = false
		case unicode.IsSpace(r) || r == '-' || r == '_' || r == '/':
			if !lastSpace {
				dst = append(dst, ' ') //moma:noalloc-ok appends into reused scratch capacity
				lastSpace = true
			}
		}
	}
	for len(dst) > 0 && dst[len(dst)-1] == ' ' {
		dst = dst[:len(dst)-1]
	}
	return dst
}

// lookupBytes is Lookup over a byte-slice token: the compiler recognizes
// the map[string]-indexed-by-string(bytes) form and probes without
// materializing the string.
//
//moma:noalloc
func (d *Dict) lookupBytes(tok []byte) (uint32, bool) {
	h := fnvOffset64
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= fnvPrime64
	}
	sh := &d.shards[h&dictShardMask]
	sh.mu.RLock()
	id, ok := sh.ids[string(tok)] //moma:noalloc-ok zero-alloc map probe: string(bytes) used only as the lookup key
	sh.mu.RUnlock()
	return id, ok
}

// AppendLookupTokenIDs is LookupTokenIDs with caller-owned buffers: the
// value is normalized into norm and the known token IDs appended to dst
// (both reused at their grown capacity), so a warm index probe allocates
// nothing. Returns the two buffers for reuse.
//
//moma:noalloc
func (d *Dict) AppendLookupTokenIDs(s string, norm []byte, dst []uint32) ([]byte, []uint32) {
	norm = appendNormalized(norm[:0], s)
	dst = dst[:0]
	start := 0
	for start < len(norm) {
		end := start
		for end < len(norm) && norm[end] != ' ' {
			end++
		}
		if id, ok := d.lookupBytes(norm[start:end]); ok {
			dst = append(dst, id) //moma:noalloc-ok appends into reused scratch capacity
		}
		start = end + 1
	}
	return norm, dst
}

// --- InPlaceQueryProfiler implementations --------------------------------

// ProfileQueryInto implements InPlaceQueryProfiler: equality needs only the
// raw value.
//
//moma:noalloc
func (equalProfiled) ProfileQueryInto(s string, p *Profile, _ *Scratch) {
	*p = Profile{Raw: s}
}

// ProfileQueryInto implements InPlaceQueryProfiler: grams are hashed from a
// padded rune window decoded into scratch; the profile reuses its Grams
// array. Compare reads only Grams, so Norm stays empty.
//
//moma:noalloc
func (g ngramProfiled) ProfileQueryInto(s string, p *Profile, sc *Scratch) {
	grams := p.Grams[:0]
	sc.norm = appendNormalized(sc.norm[:0], s)
	if len(sc.norm) > 0 {
		sc.runes = sc.runes[:0]
		for i := 0; i < g.n-1; i++ {
			sc.runes = append(sc.runes, '\x01') //moma:noalloc-ok appends into reused scratch capacity
		}
		for i := 0; i < len(sc.norm); {
			r, size := utf8.DecodeRune(sc.norm[i:])
			sc.runes = append(sc.runes, r) //moma:noalloc-ok appends into reused scratch capacity
			i += size
		}
		for i := 0; i < g.n-1; i++ {
			sc.runes = append(sc.runes, '\x02') //moma:noalloc-ok appends into reused scratch capacity
		}
		if len(sc.runes) >= g.n {
			for i := 0; i+g.n <= len(sc.runes); i++ {
				h := fnvOffset64
				for _, r := range sc.runes[i : i+g.n] {
					h ^= uint64(uint32(r))
					h *= fnvPrime64
				}
				grams = append(grams, h) //moma:noalloc-ok appends into reused profile capacity
			}
			slices.Sort(grams)
			grams = slices.Compact(grams)
		}
	}
	*p = Profile{Raw: s, Grams: grams}
}

// ProfileQueryInto implements InPlaceQueryProfiler with ProfileQuery's
// semantics: known tokens become the sorted deduplicated ID set (reusing
// the profile's array), unknown tokens contribute their distinct count via
// ExtraTokens — deduplicated by content through scratch spans, never
// through a map.
//
//moma:noalloc
func (t tokenProfiled) ProfileQueryInto(s string, p *Profile, sc *Scratch) {
	ids := p.SortedTokenIDs[:0]
	sc.norm = appendNormalized(sc.norm[:0], s)
	sc.spans = sc.spans[:0]
	start := 0
	for start < len(sc.norm) {
		end := start
		for end < len(sc.norm) && sc.norm[end] != ' ' {
			end++
		}
		if id, ok := Terms.lookupBytes(sc.norm[start:end]); ok {
			ids = append(ids, id) //moma:noalloc-ok appends into reused profile capacity
		} else {
			sc.spans = append(sc.spans, span{start, end}) //moma:noalloc-ok appends into reused scratch capacity
		}
		start = end + 1
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	extra := 0
	if len(sc.spans) > 0 {
		n := sc.norm
		//moma:noalloc-ok the comparison closure is stack-allocated: SortFunc does not retain it
		slices.SortFunc(sc.spans, func(a, b span) int {
			return bytes.Compare(n[a.start:a.end], n[b.start:b.end])
		})
		for i, sp := range sc.spans {
			if i == 0 || !bytes.Equal(n[sp.start:sp.end], n[sc.spans[i-1].start:sc.spans[i-1].end]) {
				extra++
			}
		}
	}
	*p = Profile{Raw: s, SortedTokenIDs: ids, ExtraTokens: extra}
}

// ProfileQueryInto implements InPlaceQueryProfiler: the year is parsed
// without strconv's error allocation.
//
//moma:noalloc
func (yearProfiled) ProfileQueryInto(s string, p *Profile, _ *Scratch) {
	y, ok := parseYearInt(s)
	*p = Profile{Raw: s, Year: y, YearOK: ok}
}

// parseYearInt mirrors strconv.Atoi(strings.TrimSpace(s)) for realistic
// magnitudes without allocating a *NumError on the (hot, for non-numeric
// columns) failure path. Values beyond 18 digits are rejected rather than
// range-checked exactly — centuries away from any year.
//
//moma:noalloc
func parseYearInt(s string) (int, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	neg := false
	if s[0] == '+' || s[0] == '-' {
		neg = s[0] == '-'
		s = s[1:]
		if s == "" {
			return 0, false
		}
	}
	if len(s) > 18 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if neg {
		n = -n
	}
	return n, true
}
