package sim

import (
	"math"
	"sort"
	"sync"
)

// TFIDF holds corpus statistics for the TF/IDF cosine measure named in §2.2.
// Build it once from the attribute values of both match inputs, then use
// Cosine (or the Func adapter) to score pairs. Rare tokens then weigh more
// than stop-words, which is what makes TF/IDF effective on titles.
//
// Document vectors are computed once per distinct document and cached:
// Cosine tokenizes and weights each attribute value on first sight only,
// instead of on every one of the O(n·m) pair comparisons. The cache is
// guarded by a mutex so concurrent scoring workers may share one corpus;
// Add/AddAll must still finish before scoring starts (they invalidate the
// cache, since new documents change every idf).
type TFIDF struct {
	docFreq map[string]int
	docs    int

	mu   sync.RWMutex
	vecs map[string]*docVec
}

// docVec is one cached tf-idf document vector: terms sorted, weights
// aligned with terms, norm2 the squared Euclidean norm of the weights.
type docVec struct {
	terms   []string
	weights []float64
	norm2   float64
}

// NewTFIDF returns an empty corpus model.
func NewTFIDF() *TFIDF {
	return &TFIDF{docFreq: make(map[string]int), vecs: make(map[string]*docVec)}
}

// Add registers one document (attribute value) with the corpus.
func (t *TFIDF) Add(doc string) {
	t.mu.Lock()
	if len(t.vecs) > 0 {
		// Corpus statistics change every idf; drop stale vectors.
		t.vecs = make(map[string]*docVec)
	}
	t.mu.Unlock()
	t.docs++
	for _, tok := range uniqueSorted(Tokens(doc)) {
		t.docFreq[tok]++
	}
}

// AddAll registers many documents.
func (t *TFIDF) AddAll(docs []string) {
	for _, d := range docs {
		t.Add(d)
	}
}

// Remove unregisters one previously Added document, reversing its document
// frequencies. Like Add it invalidates cached vectors (removals change every
// idf). Removing a document that was never added corrupts the statistics;
// callers track membership (the live Resolver keeps one raw value per slot
// for exactly this purpose).
func (t *TFIDF) Remove(doc string) {
	t.mu.Lock()
	if len(t.vecs) > 0 {
		t.vecs = make(map[string]*docVec)
	}
	t.mu.Unlock()
	t.docs--
	for _, tok := range uniqueSorted(Tokens(doc)) {
		if t.docFreq[tok] <= 1 {
			delete(t.docFreq, tok)
		} else {
			t.docFreq[tok]--
		}
	}
}

// Docs returns the number of registered documents.
func (t *TFIDF) Docs() int { return t.docs }

// idf returns the smoothed inverse document frequency of a token. Unknown
// tokens get the maximal weight (as if they occurred in one document).
func (t *TFIDF) idf(token string) float64 {
	df := t.docFreq[token]
	if df < 1 {
		df = 1
	}
	return math.Log(1 + float64(t.docs)/float64(df))
}

// vector builds the tf-idf weight vector (sorted by token) of a document.
func (t *TFIDF) vector(doc string) ([]string, []float64) {
	return t.vectorTokens(Tokens(doc))
}

// vectorTokens builds the weight vector from a pre-tokenized document. toks
// is read-only: term counts go through a fresh map.
func (t *TFIDF) vectorTokens(toks []string) ([]string, []float64) {
	if len(toks) == 0 {
		return nil, nil
	}
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	terms := make([]string, 0, len(counts))
	for tok := range counts {
		terms = append(terms, tok)
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	for i, tok := range terms {
		tf := 1 + math.Log(float64(counts[tok]))
		weights[i] = tf * t.idf(tok)
	}
	return terms, weights
}

// buildVec materializes the cached form of a document vector.
func (t *TFIDF) buildVec(doc string) *docVec {
	terms, weights := t.vector(doc)
	v := &docVec{terms: terms, weights: weights}
	for _, w := range weights {
		v.norm2 += w * w
	}
	return v
}

// cachedVector returns the document vector of doc, computing it at most
// once per corpus state. Safe for concurrent use.
func (t *TFIDF) cachedVector(doc string) *docVec {
	t.mu.RLock()
	v, ok := t.vecs[doc]
	t.mu.RUnlock()
	if ok {
		return v
	}
	v = t.buildVec(doc)
	t.mu.Lock()
	if prior, ok := t.vecs[doc]; ok {
		v = prior // another worker won the race; keep one canonical vector
	} else {
		t.vecs[doc] = v
	}
	t.mu.Unlock()
	return v
}

// cosineVec is the cosine of two pre-built document vectors. The merge
// walks both term lists in sorted order, exactly as the original per-pair
// computation did, so scores are bit-identical.
func cosineVec(ta []string, wa []float64, na float64, tb []string, wb []float64, nb float64) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] == tb[j]:
			dot += wa[i] * wb[j]
			i++
			j++
		case ta[i] < tb[j]:
			i++
		default:
			j++
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp01(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

// Cosine returns the cosine similarity of the tf-idf vectors of a and b.
// Vectors are cached per distinct document string for the corpus lifetime
// (a match input has few distinct values relative to pairs); a long-lived
// corpus scoring an unbounded stream of distinct strings should be rebuilt
// periodically to release the cache.
func (t *TFIDF) Cosine(a, b string) float64 {
	va, vb := t.cachedVector(a), t.cachedVector(b)
	return cosineVec(va.terms, va.weights, va.norm2, vb.terms, vb.weights, vb.norm2)
}

// Func adapts the corpus model to the sim.Func interface.
func (t *TFIDF) Func() Func { return t.Cosine }

// Profiled returns the profile-based form of the corpus cosine: Profile
// builds a document vector once per attribute value, Compare is the merge
// dot product. Cosine is a method value and therefore invisible to
// ProfiledOf; matchers that use a TFIDF corpus pass this explicitly.
func (t *TFIDF) Profiled() ProfiledSim { return tfidfProfiled{t: t} }

type tfidfProfiled struct {
	t *TFIDF
}

func (p tfidfProfiled) Profile(s string) *Profile {
	v := p.t.buildVec(s)
	return &Profile{Raw: s, Terms: v.terms, Weights: v.weights, WeightNorm2: v.norm2}
}

// ProfileTokens implements TokenProfiler: the document vector is built from
// an existing Tokens(s) slice instead of re-tokenizing.
func (p tfidfProfiled) ProfileTokens(s string, toks []string) *Profile {
	terms, weights := p.t.vectorTokens(toks)
	out := &Profile{Raw: s, Terms: terms, Weights: weights}
	for _, w := range weights {
		out.WeightNorm2 += w * w
	}
	return out
}

func (p tfidfProfiled) Compare(a, b *Profile) float64 {
	return cosineVec(a.Terms, a.Weights, a.WeightNorm2, b.Terms, b.Weights, b.WeightNorm2)
}
