package sim

import (
	"math"
	"sort"
	"sync"
)

// TFIDF holds corpus statistics for the TF/IDF cosine measure named in §2.2.
// Build it once from the attribute values of both match inputs, then use
// Cosine (or the Func adapter) to score pairs. Rare tokens then weigh more
// than stop-words, which is what makes TF/IDF effective on titles.
//
// Document frequencies and document vectors are keyed by interned term IDs
// (the global Terms dictionary): registering a document hashes each token
// string once, and everything downstream — idf lookups, vector terms, the
// cosine merge — moves uint32 IDs. Vectors are sorted by the terms' content
// keys (Dict.Key), an order that is a pure function of the term set, so the
// floating-point dot product is bit-identical however the corpus (or the
// dictionary) was grown; see intern.go.
//
// Document vectors are computed once per distinct document and cached:
// Cosine tokenizes and weights each attribute value on first sight only,
// instead of on every one of the O(n·m) pair comparisons. The cache is
// guarded by a mutex so concurrent scoring workers may share one corpus;
// Add/AddAll must still finish before scoring starts (they invalidate the
// cache, since new documents change every idf).
type TFIDF struct {
	docFreq map[uint32]int
	docs    int
	// gen counts corpus mutations (Add/Remove): every change shifts the
	// idf of every term, so profiles built before it are stale. The
	// profiled form exposes it as its ProfileVersion.
	gen uint64

	mu   sync.RWMutex
	vecs map[string]*docVec
}

// docVec is one cached tf-idf document vector: term IDs with their content
// keys, sorted by key, weights aligned, norm2 the squared Euclidean norm of
// the weights. extra counts distinct terms omitted from the merge lists
// because the dictionary has never seen them (query-side vectors only):
// they can match nothing, but the emptiness semantics of the cosine — "no
// terms at all" versus "no interned terms" — must count them.
type docVec struct {
	ids     []uint32
	keys    []uint64
	weights []float64
	norm2   float64
	extra   int
}

// NewTFIDF returns an empty corpus model.
func NewTFIDF() *TFIDF {
	return &TFIDF{docFreq: make(map[uint32]int), vecs: make(map[string]*docVec)}
}

// Add registers one document (attribute value) with the corpus.
func (t *TFIDF) Add(doc string) {
	t.mu.Lock()
	if len(t.vecs) > 0 {
		// Corpus statistics change every idf; drop stale vectors.
		t.vecs = make(map[string]*docVec)
	}
	t.mu.Unlock()
	t.gen++
	t.docs++
	for _, id := range uniqueSorted(Terms.TokenIDs(doc)) {
		t.docFreq[id]++
	}
}

// AddAll registers many documents.
func (t *TFIDF) AddAll(docs []string) {
	for _, d := range docs {
		t.Add(d)
	}
}

// Remove unregisters one previously Added document, reversing its document
// frequencies. Like Add it invalidates cached vectors (removals change every
// idf). Removing a document that was never added corrupts the statistics;
// callers track membership (the live Resolver keeps one raw value per slot
// for exactly this purpose).
func (t *TFIDF) Remove(doc string) {
	t.mu.Lock()
	if len(t.vecs) > 0 {
		t.vecs = make(map[string]*docVec)
	}
	t.mu.Unlock()
	t.gen++
	t.docs--
	for _, id := range uniqueSorted(Terms.TokenIDs(doc)) {
		if t.docFreq[id] <= 1 {
			delete(t.docFreq, id)
		} else {
			t.docFreq[id]--
		}
	}
}

// Docs returns the number of registered documents.
func (t *TFIDF) Docs() int { return t.docs }

// idf returns the smoothed inverse document frequency of a term ID. Unknown
// terms get the maximal weight (as if they occurred in one document).
func (t *TFIDF) idf(id uint32) float64 {
	return t.idfDF(t.docFreq[id])
}

// idfDF is the smoothing formula over a raw document frequency — the single
// definition both the interned path and the lookup-only query path weight
// with, so their scores cannot drift apart.
func (t *TFIDF) idfDF(df int) float64 {
	if df < 1 {
		df = 1
	}
	return math.Log(1 + float64(t.docs)/float64(df))
}

// vectorTokens builds the tf-idf weight vector of a pre-interned document.
// toks is read-only: term counts go through a fresh map. The vector is
// sorted by the terms' content keys with the string as the (in practice
// unreachable) collision tiebreak, so the order depends only on the term
// set.
func (t *TFIDF) vectorTokens(toks []uint32) *docVec {
	if len(toks) == 0 {
		return &docVec{}
	}
	counts := make(map[uint32]int, len(toks))
	for _, id := range toks {
		counts[id]++
	}
	v := &docVec{
		ids:  make([]uint32, 0, len(counts)),
		keys: make([]uint64, 0, len(counts)),
	}
	for id := range counts {
		v.ids = append(v.ids, id)
		v.keys = append(v.keys, Terms.Key(id))
	}
	sort.Sort(byTermKey{v})
	v.weights = make([]float64, len(v.ids))
	for i, id := range v.ids {
		tf := 1 + math.Log(float64(counts[id]))
		w := tf * t.idf(id)
		v.weights[i] = w
		v.norm2 += w * w
	}
	return v
}

// byTermKey sorts a docVec's ids/keys in tandem by (key, term string).
type byTermKey struct{ v *docVec }

func (s byTermKey) Len() int { return len(s.v.ids) }
func (s byTermKey) Less(i, j int) bool {
	if s.v.keys[i] != s.v.keys[j] {
		return s.v.keys[i] < s.v.keys[j]
	}
	if s.v.ids[i] == s.v.ids[j] {
		return false
	}
	return Terms.Str(s.v.ids[i]) < Terms.Str(s.v.ids[j])
}
func (s byTermKey) Swap(i, j int) {
	s.v.ids[i], s.v.ids[j] = s.v.ids[j], s.v.ids[i]
	s.v.keys[i], s.v.keys[j] = s.v.keys[j], s.v.keys[i]
}

// buildVec materializes the cached form of a document vector.
func (t *TFIDF) buildVec(doc string) *docVec {
	return t.vectorTokens(Terms.TokenIDs(doc))
}

// vectorQuery builds a query-side vector without interning. Terms absent
// from the dictionary cannot match any corpus term and are omitted from the
// merge lists, but their weights still enter norm2 — in the same canonical
// (content-key, string) order and with the same maximal idf an interned
// build would give them (a token unknown to the dictionary has document
// frequency zero in every corpus fed from it), so the cosine is
// bit-identical to profiling the same value through buildVec.
func (t *TFIDF) vectorQuery(doc string) *docVec {
	toks := Tokens(doc)
	if len(toks) == 0 {
		return &docVec{}
	}
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	type qterm struct {
		tok   string
		key   uint64
		id    uint32
		known bool
		n     int
	}
	terms := make([]qterm, 0, len(counts))
	for tok, n := range counts {
		id, ok := Terms.Lookup(tok)
		terms = append(terms, qterm{tok: tok, key: dictKey(tok), id: id, known: ok, n: n})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].key != terms[j].key {
			return terms[i].key < terms[j].key
		}
		return terms[i].tok < terms[j].tok
	})
	v := &docVec{}
	for _, q := range terms {
		tf := 1 + math.Log(float64(q.n))
		var w float64
		if q.known {
			w = tf * t.idf(q.id)
		} else {
			// A term the dictionary has never seen has df 0 in every corpus
			// fed from it.
			w = tf * t.idfDF(0)
		}
		v.norm2 += w * w
		if q.known {
			v.ids = append(v.ids, q.id)
			v.keys = append(v.keys, q.key)
			v.weights = append(v.weights, w)
		} else {
			v.extra++
		}
	}
	return v
}

// cachedVector returns the document vector of doc, computing it at most
// once per corpus state. Safe for concurrent use.
func (t *TFIDF) cachedVector(doc string) *docVec {
	t.mu.RLock()
	v, ok := t.vecs[doc]
	t.mu.RUnlock()
	if ok {
		return v
	}
	v = t.buildVec(doc)
	t.mu.Lock()
	if prior, ok := t.vecs[doc]; ok {
		v = prior // another worker won the race; keep one canonical vector
	} else {
		t.vecs[doc] = v
	}
	t.mu.Unlock()
	return v
}

// cosineVec is the cosine of two pre-built document vectors. The merge
// walks both term lists in content-key order comparing integers; only a
// 64-bit key collision between distinct terms (in practice never) falls
// back to a string comparison to keep the order deterministic. aExtra and
// bExtra count a side's un-interned terms (lookup-only query vectors), so
// the emptiness short-circuits see the document's true term count.
func cosineVec(aIDs []uint32, aKeys []uint64, aW []float64, na float64, aExtra int,
	bIDs []uint32, bKeys []uint64, bW []float64, nb float64, bExtra int) float64 {
	if len(aIDs)+aExtra == 0 && len(bIDs)+bExtra == 0 {
		return 1
	}
	if len(aIDs)+aExtra == 0 || len(bIDs)+bExtra == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(aIDs) && j < len(bIDs) {
		switch {
		case aIDs[i] == bIDs[j]:
			dot += aW[i] * bW[j]
			i++
			j++
		case aKeys[i] < bKeys[j]:
			i++
		case aKeys[i] > bKeys[j]:
			j++
		case Terms.Str(aIDs[i]) < Terms.Str(bIDs[j]):
			i++
		default:
			j++
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp01(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

// Cosine returns the cosine similarity of the tf-idf vectors of a and b.
// Vectors are cached per distinct document string for the corpus lifetime
// (a match input has few distinct values relative to pairs); a long-lived
// corpus scoring an unbounded stream of distinct strings should be rebuilt
// periodically to release the cache.
func (t *TFIDF) Cosine(a, b string) float64 {
	va, vb := t.cachedVector(a), t.cachedVector(b)
	return cosineVec(va.ids, va.keys, va.weights, va.norm2, va.extra,
		vb.ids, vb.keys, vb.weights, vb.norm2, vb.extra)
}

// Func adapts the corpus model to the sim.Func interface.
func (t *TFIDF) Func() Func { return t.Cosine }

// Profiled returns the profile-based form of the corpus cosine: Profile
// builds a document vector once per attribute value, Compare is the merge
// dot product. Cosine is a method value and therefore invisible to
// ProfiledOf; matchers that use a TFIDF corpus pass this explicitly.
func (t *TFIDF) Profiled() ProfiledSim { return tfidfProfiled{t: t} }

type tfidfProfiled struct {
	t *TFIDF
}

// ProfileVersion implements ProfileVersioner: any corpus mutation stales
// every previously-built profile (idfs shift globally).
func (p tfidfProfiled) ProfileVersion() uint64 { return p.t.gen }

func (p tfidfProfiled) Profile(s string) *Profile {
	return vecProfile(s, p.t.buildVec(s))
}

// ProfileTokens implements TokenProfiler: the document vector is built from
// an already-interned token column instead of re-tokenizing.
func (p tfidfProfiled) ProfileTokens(s string, toks []uint32) *Profile {
	return vecProfile(s, p.t.vectorTokens(toks))
}

// ProfileQuery implements QueryProfiler: the vector is built with lookups
// only, so scoring a stream of distinct query records never grows the
// dictionary.
func (p tfidfProfiled) ProfileQuery(s string) *Profile {
	return vecProfile(s, p.t.vectorQuery(s))
}

func vecProfile(s string, v *docVec) *Profile {
	return &Profile{Raw: s, TermIDs: v.ids, TermKeys: v.keys, Weights: v.weights,
		WeightNorm2: v.norm2, ExtraTokens: v.extra}
}

// Compare is a merge-join over the pre-weighted vectors; ties on the
// 64-bit content key fall back to interned-string order without allocating.
//
//moma:noalloc
func (p tfidfProfiled) Compare(a, b *Profile) float64 {
	return cosineVec(a.TermIDs, a.TermKeys, a.Weights, a.WeightNorm2, a.ExtraTokens,
		b.TermIDs, b.TermKeys, b.Weights, b.WeightNorm2, b.ExtraTokens)
}
