package sim

import (
	"math"
	"sort"
)

// TFIDF holds corpus statistics for the TF/IDF cosine measure named in §2.2.
// Build it once from the attribute values of both match inputs, then use
// Cosine (or the Func adapter) to score pairs. Rare tokens then weigh more
// than stop-words, which is what makes TF/IDF effective on titles.
type TFIDF struct {
	docFreq map[string]int
	docs    int
}

// NewTFIDF returns an empty corpus model.
func NewTFIDF() *TFIDF {
	return &TFIDF{docFreq: make(map[string]int)}
}

// Add registers one document (attribute value) with the corpus.
func (t *TFIDF) Add(doc string) {
	t.docs++
	for _, tok := range uniqueSorted(Tokens(doc)) {
		t.docFreq[tok]++
	}
}

// AddAll registers many documents.
func (t *TFIDF) AddAll(docs []string) {
	for _, d := range docs {
		t.Add(d)
	}
}

// Docs returns the number of registered documents.
func (t *TFIDF) Docs() int { return t.docs }

// idf returns the smoothed inverse document frequency of a token. Unknown
// tokens get the maximal weight (as if they occurred in one document).
func (t *TFIDF) idf(token string) float64 {
	df := t.docFreq[token]
	if df < 1 {
		df = 1
	}
	return math.Log(1 + float64(t.docs)/float64(df))
}

// vector builds the tf-idf weight vector (sorted by token) of a document.
func (t *TFIDF) vector(doc string) ([]string, []float64) {
	toks := Tokens(doc)
	if len(toks) == 0 {
		return nil, nil
	}
	counts := make(map[string]int, len(toks))
	for _, tok := range toks {
		counts[tok]++
	}
	terms := make([]string, 0, len(counts))
	for tok := range counts {
		terms = append(terms, tok)
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	for i, tok := range terms {
		tf := 1 + math.Log(float64(counts[tok]))
		weights[i] = tf * t.idf(tok)
	}
	return terms, weights
}

// Cosine returns the cosine similarity of the tf-idf vectors of a and b.
func (t *TFIDF) Cosine(a, b string) float64 {
	ta, wa := t.vector(a)
	tb, wb := t.vector(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] == tb[j]:
			dot += wa[i] * wb[j]
			i++
			j++
		case ta[i] < tb[j]:
			i++
		default:
			j++
		}
	}
	for _, w := range wa {
		na += w * w
	}
	for _, w := range wb {
		nb += w * w
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp01(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

// Func adapts the corpus model to the sim.Func interface.
func (t *TFIDF) Func() Func { return t.Cosine }
