package sim

// Edit-distance based measures: Levenshtein (normalized), Jaro and
// Jaro-Winkler, plus the Monge-Elkan token-level combinator.

// EditDistance returns the Levenshtein distance between the raw (not
// normalized) rune sequences of a and b, using the standard two-row dynamic
// program.
func EditDistance(a, b string) int {
	return editDistanceRunes([]rune(a), []rune(b))
}

// editDistanceRunes is EditDistance over pre-converted rune slices, the
// form the profiled measures cache.
func editDistanceRunes(ra, rb []rune) int {
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			ins := cur[j-1] + 1
			del := prev[j] + 1
			sub := prev[j-1] + cost
			m := ins
			if del < m {
				m = del
			}
			if sub < m {
				m = sub
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Levenshtein is the normalized edit similarity
// 1 - dist(a', b') / max(len(a'), len(b')) over normalized strings.
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	maxLen := len(ra)
	if len(rb) > maxLen {
		maxLen = len(rb)
	}
	if maxLen == 0 {
		return 1
	}
	return clamp01(1 - float64(editDistanceRunes(ra, rb))/float64(maxLen))
}

// Jaro computes the Jaro similarity over normalized strings.
func Jaro(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	return jaroRunes(ra, rb)
}

func jaroRunes(ra, rb []rune) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions between the matched subsequences.
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return clamp01((m/float64(la) + m/float64(lb) + (m-t)/m) / 3)
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix of
// up to 4 runes, with the standard scaling factor p = 0.1.
func JaroWinkler(a, b string) float64 {
	return jaroWinklerRunes([]rune(Normalize(a)), []rune(Normalize(b)))
}

// jaroWinklerRunes is JaroWinkler over pre-normalized rune slices.
func jaroWinklerRunes(ra, rb []rune) float64 {
	j := jaroRunes(ra, rb)
	prefix := 0
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return clamp01(j + float64(prefix)*0.1*(1-j))
}

// MongeElkan computes the token-level Monge-Elkan similarity: for each token
// of a, the best inner similarity against any token of b, averaged. It is
// asymmetric; SymMongeElkan averages both directions.
func MongeElkan(a, b string, inner Func) float64 {
	return mongeElkanTokens(Tokens(a), Tokens(b), inner)
}

// mongeElkanTokens is MongeElkan over pre-tokenized inputs.
func mongeElkanTokens(ta, tb []string, inner Func) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	var sum float64
	for _, x := range ta {
		best := 0.0
		for _, y := range tb {
			if s := inner(x, y); s > best {
				best = s
			}
		}
		sum += best
	}
	return clamp01(sum / float64(len(ta)))
}

// SymMongeElkan is the symmetric mean of MongeElkan in both directions.
func SymMongeElkan(a, b string, inner Func) float64 {
	return symMongeElkanTokens(Tokens(a), Tokens(b), inner)
}

// symMongeElkanTokens is SymMongeElkan over pre-tokenized inputs.
func symMongeElkanTokens(ta, tb []string, inner Func) float64 {
	return clamp01((mongeElkanTokens(ta, tb, inner) + mongeElkanTokens(tb, ta, inner)) / 2)
}

// MongeElkanJaroWinkler is the symmetric Monge-Elkan with Jaro-Winkler as
// the inner measure, a strong default for multi-token names.
func MongeElkanJaroWinkler(a, b string) float64 {
	return SymMongeElkan(a, b, JaroWinkler)
}
