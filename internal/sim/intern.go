package sim

// Interned term dictionary: integer token IDs for the match hot paths.
//
// Every layer that handles attribute tokens — similarity profiles, TF-IDF
// corpora, the blocking caches, the inverted indexes, the live resolver —
// used to carry Go strings and pay string hashing and string comparison on
// every index probe and pair score. A Dict interns each distinct token once
// and hands out a stable uint32 ID; the hot paths then move IDs around:
// posting maps key by uint32, token-set intersections compare ints, and a
// cached token column is a third of its former size.
//
// # Ownership
//
// Terms is the process-global default dictionary. It backs every structure
// that crosses package or object-set boundaries: the profiled token-set
// measures (Profile.SortedTokenIDs), TF-IDF corpora and document vectors
// (Profile.TermIDs), the batch blocking caches (block.Tokens columns and
// their ordinal indexes), and index.Index postings. Sharing one dictionary
// means a column interned once compares against any index or profile in the
// process without translation. A live Resolver additionally owns a private
// Dict (created by live.NewResolver) for its blocking index, so that
// per-resolver vocabulary is released with the resolver; its scored column
// values still intern into Terms.
//
// Only writes intern. Read-side traffic — index probes (LookupTokenIDs)
// and query-record profiling (QueryProfiler.ProfileQuery) — looks tokens up
// without assigning IDs, so dictionaries grow with the data stored, never
// with the queries asked.
//
// # ID stability
//
// A Dict is append-only: an ID, once assigned, names the same string for
// the dictionary's lifetime, so IDs may be cached in long-lived structures
// (profiles, posting lists, resident columns) without invalidation. IDs are
// assigned in first-seen order and are meaningful only within their
// dictionary; they are not comparable across dictionaries and not stable
// across processes. Memory grows with the distinct-token vocabulary and is
// never reclaimed — bounded in practice, since vocabularies grow
// sublinearly with the data.
//
// # Where strings still appear
//
// Token-sequence measures (Monge-Elkan, PersonName) score tokens with
// character-level measures (Jaro-Winkler over runes) and keep
// Profile.Tokens as strings; interning cannot replace the character access.
// TF-IDF vectors keep a per-term uint64 content key (Dict.Key) alongside
// the ID: the cosine merge must visit common terms in an order that is a
// pure function of the term set — not of dictionary insertion order, which
// differs between an incrementally-grown and a freshly-built corpus — for
// the floating-point dot product to be bit-identical across both. Sorting
// by content key provides that order without string comparisons; the raw
// string is consulted only to break a 64-bit key collision (in practice,
// never).
//
// Dict is safe for concurrent use: reads (Lookup, Str, Key) take a shard
// read lock, interning (ID) upgrades to a shard write lock on first sight
// of a token. The shard index lives in the low bits of every ID, so reverse
// lookup is O(1).

import (
	"strings"
	"sync"
)

const (
	dictShardBits = 4
	dictShards    = 1 << dictShardBits
	dictShardMask = dictShards - 1
)

// dictShard holds one shard of the symbol table. strs and keys are aligned:
// entry i of the shard is ID uint32(i)<<dictShardBits | shard.
//
//moma:parallel strs keys
type dictShard struct {
	mu   sync.RWMutex
	ids  map[string]uint32 // guarded by mu
	strs []string          // guarded by mu
	keys []uint64          // guarded by mu
}

// Dict is a concurrency-safe, append-only string↔uint32 symbol table.
// The zero value is not usable; call NewDict (or use the global Terms).
type Dict struct {
	shards [dictShards]dictShard
}

// Terms is the process-global default dictionary; see the package comment
// for which structures intern through it.
var Terms = NewDict()

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].ids = make(map[string]uint32)
	}
	return d
}

// dictKey is the 64-bit FNV-1a hash of a token — the shard selector and the
// content key TF-IDF vectors sort by.
func dictKey(tok string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(tok); i++ {
		h ^= uint64(tok[i])
		h *= fnvPrime64
	}
	return h
}

// ID interns tok, assigning a fresh ID on first sight.
//
//moma:interns
func (d *Dict) ID(tok string) uint32 {
	key := dictKey(tok)
	sh := &d.shards[key&dictShardMask]
	sh.mu.RLock()
	id, ok := sh.ids[tok]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok = sh.ids[tok]; ok {
		return id
	}
	id = uint32(len(sh.strs))<<dictShardBits | uint32(key&dictShardMask)
	sh.strs = append(sh.strs, tok)
	sh.keys = append(sh.keys, key)
	sh.ids[tok] = id
	return id
}

// Lookup returns the ID of tok without interning it. It is the read-only
// probe entry point: a token never seen by ID cannot appear in any
// ID-keyed structure fed from this dictionary.
func (d *Dict) Lookup(tok string) (uint32, bool) {
	sh := &d.shards[dictKey(tok)&dictShardMask]
	sh.mu.RLock()
	id, ok := sh.ids[tok]
	sh.mu.RUnlock()
	return id, ok
}

// Str returns the string an ID was assigned for. Passing an ID from a
// different dictionary (or a never-assigned one) is a bug; Str panics on
// out-of-range IDs.
func (d *Dict) Str(id uint32) string {
	sh := &d.shards[id&dictShardMask]
	sh.mu.RLock()
	s := sh.strs[id>>dictShardBits]
	sh.mu.RUnlock()
	return s
}

// Key returns the 64-bit content key (FNV-1a of the string) of an interned
// ID — the dictionary-independent sort key of TF-IDF vectors.
func (d *Dict) Key(id uint32) uint64 {
	sh := &d.shards[id&dictShardMask]
	sh.mu.RLock()
	k := sh.keys[id>>dictShardBits]
	sh.mu.RUnlock()
	return k
}

// Len returns the number of interned terms.
func (d *Dict) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n += len(sh.strs)
		sh.mu.RUnlock()
	}
	return n
}

// TokenIDs tokenizes s (Tokens semantics: Normalize, split on spaces) and
// interns each token in order, duplicates preserved. It is the fused
// tokenize-and-intern entry point of the blocking and indexing layers; the
// intermediate []string of Tokens is never materialized.
func (d *Dict) TokenIDs(s string) []uint32 {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	out := make([]uint32, 0, strings.Count(n, " ")+1)
	for len(n) > 0 {
		if sp := strings.IndexByte(n, ' '); sp >= 0 {
			out = append(out, d.ID(n[:sp]))
			n = n[sp+1:]
		} else {
			out = append(out, d.ID(n))
			n = ""
		}
	}
	return out
}

// LookupTokenIDs is TokenIDs without interning: tokens the dictionary has
// never seen are dropped (they cannot match any ID-keyed posting or token
// set). Query-side probes use it so read traffic never grows the table.
func (d *Dict) LookupTokenIDs(s string) []uint32 {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	out := make([]uint32, 0, strings.Count(n, " ")+1)
	for len(n) > 0 {
		tok := n
		if sp := strings.IndexByte(n, ' '); sp >= 0 {
			tok, n = n[:sp], n[sp+1:]
		} else {
			n = ""
		}
		if id, ok := d.Lookup(tok); ok {
			out = append(out, id)
		}
	}
	return out
}

// InternTokens interns a pre-tokenized slice, preserving order and
// duplicates.
func (d *Dict) InternTokens(toks []string) []uint32 {
	if len(toks) == 0 {
		return nil
	}
	out := make([]uint32, len(toks))
	for i, tok := range toks {
		out[i] = d.ID(tok)
	}
	return out
}

// Strs resolves a slice of IDs back to their strings — the boundary from
// ID-carrying columns to measures that need character access (Monge-Elkan,
// PersonName token sequences).
func (d *Dict) Strs(ids []uint32) []string {
	if len(ids) == 0 {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = d.Str(id)
	}
	return out
}
