package sim

import "repro/internal/obs"

// The process-global term dictionary's size is exported as a scrape-time
// gauge: unbounded growth here would mean a read path is interning (the
// invariant moma-vet's dictgrowth analyzer guards statically), so the gauge
// is the runtime dial for the same property.
func init() {
	obs.Default.GaugeFunc("moma_sim_dict_terms",
		"Interned terms in the process-global sim.Terms dictionary.",
		func() float64 { return float64(Terms.Len()) })
}
