// Package sim provides the string-similarity library used by MOMA's
// matchers. The paper's generic attribute matcher is "provided with ... a
// similarity function to be evaluated (e.g. n-gram, TF/IDF or affix)"
// (§2.2); this package implements those plus the standard measures found in
// record-linkage toolkits: Levenshtein, Jaro, Jaro-Winkler, Monge-Elkan,
// token Jaccard, Soundex, year proximity and an initials-aware person-name
// measure.
//
// Every measure is normalized to [0,1] where 1 means identical. Measures are
// exposed as Func values and registered by name in a Registry so matcher
// configurations (and the script language) can refer to them textually,
// e.g. attrMatch(..., Trigram, 0.5, ...).
//
// Each built-in Func also has a profiled twin (see Profile, ProfiledSim and
// ProfiledOf in profile.go) that hoists normalization, tokenization and
// n-gram construction out of the per-pair hot path: profiles are built once
// per attribute value, and the pair stage compares cached token sets, rune
// slices or hashed gram sets with identical scores.
package sim

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
	"unicode"
)

// Func computes a normalized similarity in [0,1] between two strings.
type Func func(a, b string) float64

// Registry maps similarity-function names (case-insensitive) to
// implementations. The zero value is unusable; use NewRegistry.
type Registry struct {
	funcs map[string]Func
	names []string
}

// NewRegistry returns a registry pre-populated with all built-in measures.
func NewRegistry() *Registry {
	r := &Registry{funcs: make(map[string]Func)}
	builtin := []struct {
		name string
		fn   Func
	}{
		{"Equal", Equal},
		{"EqualFold", EqualFold},
		{"Trigram", Trigram},
		{"Bigram", Bigram},
		{"NGramJaccard", TrigramJaccard},
		{"Levenshtein", Levenshtein},
		{"Jaro", Jaro},
		{"JaroWinkler", JaroWinkler},
		{"Affix", Affix},
		{"Prefix", Prefix},
		{"Suffix", Suffix},
		{"TokenJaccard", TokenJaccard},
		{"TokenDice", TokenDice},
		{"MongeElkan", MongeElkanJaroWinkler},
		{"Soundex", SoundexSim},
		{"Year", YearSim},
		{"YearExact", YearExact},
		{"PersonName", PersonName},
	}
	for _, b := range builtin {
		r.MustRegister(b.name, b.fn)
	}
	return r
}

// Register adds a named similarity function. Names are case-insensitive;
// duplicates are rejected.
func (r *Registry) Register(name string, fn Func) error {
	if name == "" || fn == nil {
		return fmt.Errorf("sim: Register needs a name and a function")
	}
	key := strings.ToLower(name)
	if _, dup := r.funcs[key]; dup {
		return fmt.Errorf("sim: duplicate similarity function %q", name)
	}
	r.funcs[key] = fn
	r.names = append(r.names, name)
	return nil
}

// MustRegister is Register that panics on error, for static tables.
func (r *Registry) MustRegister(name string, fn Func) {
	if err := r.Register(name, fn); err != nil {
		panic(err)
	}
}

// Lookup returns the function registered under name (case-insensitive).
func (r *Registry) Lookup(name string) (Func, bool) {
	fn, ok := r.funcs[strings.ToLower(name)]
	return fn, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Equal is exact string equality.
func Equal(a, b string) float64 {
	if a == b {
		return 1
	}
	return 0
}

// EqualFold is case-insensitive equality after whitespace normalization.
func EqualFold(a, b string) float64 {
	if strings.EqualFold(NormalizeSpace(a), NormalizeSpace(b)) {
		return 1
	}
	return 0
}

// NormalizeSpace lowercases nothing but collapses runs of whitespace to a
// single space and trims the ends.
func NormalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Normalize lowercases, collapses whitespace and strips everything that is
// neither letter, digit nor space. It is the canonical preprocessing for the
// character- and token-based measures.
func Normalize(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	lastSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			lastSpace = false
		case unicode.IsSpace(r) || r == '-' || r == '_' || r == '/':
			if !lastSpace {
				b.WriteByte(' ')
				lastSpace = true
			}
		}
	}
	return strings.TrimRight(b.String(), " ")
}

// Tokens splits s into normalized word tokens.
func Tokens(s string) []string {
	n := Normalize(s)
	if n == "" {
		return nil
	}
	return strings.Split(n, " ")
}

// uniqueSorted sorts and deduplicates in place. It serves every token-set
// representation in the package: strings, hashed grams, interned term IDs.
func uniqueSorted[T cmp.Ordered](xs []T) []T {
	slices.Sort(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// overlap returns |a ∩ b| for two sorted, deduplicated slices.
func overlap[T cmp.Ordered](a, b []T) int {
	i, j, cnt := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			cnt++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return cnt
}

// clamp01 guards against floating-point drift outside [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
