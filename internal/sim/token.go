package sim

import (
	"math"
	"strconv"
	"strings"
)

// Token-level and domain-specific measures.

// TokenJaccard is |A∩B| / |A∪B| over the normalized token sets.
func TokenJaccard(a, b string) float64 {
	ta := uniqueSorted(Tokens(a))
	tb := uniqueSorted(Tokens(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := overlap(ta, tb)
	union := len(ta) + len(tb) - inter
	return clamp01(float64(inter) / float64(union))
}

// TokenDice is 2·|A∩B| / (|A|+|B|) over the normalized token sets.
func TokenDice(a, b string) float64 {
	ta := uniqueSorted(Tokens(a))
	tb := uniqueSorted(Tokens(b))
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	return clamp01(2 * float64(overlap(ta, tb)) / float64(len(ta)+len(tb)))
}

// YearExact returns 1 when both strings parse as the same integer year.
// Either side failing to parse yields 0 (the paper notes Google Scholar's
// optional year attribute).
func YearExact(a, b string) float64 {
	ya, errA := strconv.Atoi(strings.TrimSpace(a))
	yb, errB := strconv.Atoi(strings.TrimSpace(b))
	if errA != nil || errB != nil {
		return 0
	}
	if ya == yb {
		return 1
	}
	return 0
}

// YearSim returns 1 for equal years, 0.5 for years differing by one (the
// paper's domain constraint "must not differ by more than one year"), and 0
// otherwise or when either side does not parse.
func YearSim(a, b string) float64 {
	ya, errA := strconv.Atoi(strings.TrimSpace(a))
	yb, errB := strconv.Atoi(strings.TrimSpace(b))
	if errA != nil || errB != nil {
		return 0
	}
	switch d := ya - yb; {
	case d == 0:
		return 1
	case d == 1 || d == -1:
		return 0.5
	default:
		return 0
	}
}

// NumericProximity returns a similarity for numeric strings that decays
// linearly with |a-b| / scale, clamped to [0,1]. Non-numeric input gives 0.
func NumericProximity(scale float64) Func {
	return func(a, b string) float64 {
		if scale <= 0 {
			return 0
		}
		fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
		fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
		if errA != nil || errB != nil {
			return 0
		}
		return clamp01(1 - math.Abs(fa-fb)/scale)
	}
}

// Soundex computes the classic 4-character Soundex code of the first token
// of the normalized string. Empty input yields "".
func Soundex(s string) string {
	toks := Tokens(s)
	if len(toks) == 0 {
		return ""
	}
	w := toks[0]
	code := func(r rune) byte {
		switch r {
		case 'b', 'f', 'p', 'v':
			return '1'
		case 'c', 'g', 'j', 'k', 'q', 's', 'x', 'z':
			return '2'
		case 'd', 't':
			return '3'
		case 'l':
			return '4'
		case 'm', 'n':
			return '5'
		case 'r':
			return '6'
		default:
			return 0 // vowels, h, w, y and non-letters
		}
	}
	runes := []rune(w)
	first := runes[0]
	if first < 'a' || first > 'z' {
		return ""
	}
	out := []byte{byte(first - 'a' + 'A')}
	prev := code(first)
	for _, r := range runes[1:] {
		c := code(r)
		if c != 0 && c != prev {
			out = append(out, c)
			if len(out) == 4 {
				break
			}
		}
		if r != 'h' && r != 'w' {
			prev = c
		}
	}
	for len(out) < 4 {
		out = append(out, '0')
	}
	return string(out)
}

// SoundexSim returns 1 when the Soundex codes of the first tokens agree and
// both are non-empty, else 0.
func SoundexSim(a, b string) float64 {
	ca, cb := Soundex(a), Soundex(b)
	if ca == "" || cb == "" {
		return 0
	}
	if ca == cb {
		return 1
	}
	return 0
}

// PersonName compares person names with awareness of initial-only given
// names, the Google Scholar convention the paper calls out ("GS reduces
// authors' first names to their first letter"). The last tokens (surnames)
// are compared with Jaro-Winkler; the remaining given-name tokens are
// aligned pairwise, where an initial matches any name starting with it.
func PersonName(a, b string) float64 {
	return personNameTokens(Tokens(a), Tokens(b))
}

// personNameTokens is PersonName over pre-tokenized names.
func personNameTokens(ta, tb []string) float64 {
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	lastA, lastB := ta[len(ta)-1], tb[len(tb)-1]
	surname := JaroWinkler(lastA, lastB)
	givenA, givenB := ta[:len(ta)-1], tb[:len(tb)-1]
	if len(givenA) == 0 && len(givenB) == 0 {
		return surname
	}
	if len(givenA) == 0 || len(givenB) == 0 {
		// One side has only a surname: surname similarity dominates but is
		// discounted for the missing evidence.
		return clamp01(0.75 * surname)
	}
	n := len(givenA)
	if len(givenB) < n {
		n = len(givenB)
	}
	var given float64
	for i := 0; i < n; i++ {
		given += givenTokenSim(givenA[i], givenB[i])
	}
	given /= float64(n)
	return clamp01(0.6*surname + 0.4*given)
}

// givenTokenSim compares two given-name tokens, treating single letters as
// initials that match any name sharing that first letter.
func givenTokenSim(x, y string) float64 {
	if x == y {
		return 1
	}
	if len(x) == 0 || len(y) == 0 {
		return 0
	}
	if len([]rune(x)) == 1 || len([]rune(y)) == 1 {
		if []rune(x)[0] == []rune(y)[0] {
			return 0.9 // initial matches, slightly below full-name evidence
		}
		return 0
	}
	return JaroWinkler(x, y)
}
