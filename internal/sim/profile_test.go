package sim

import (
	"fmt"
	"testing"
)

// profileEdgeCases are the inputs most likely to expose divergence between
// the string-based measures and their profiled twins: empty strings, pure
// whitespace, punctuation-only values, multi-byte Unicode (exercising the
// []rune padding path in ngrams), strings shorter than the gram size n,
// initials, and numeric/year strings.
var profileEdgeCases = []string{
	"",
	" ",
	" \t\n ",
	"a",
	"ab",
	"abc",
	"!!!",
	"--",
	"界",
	"日本 語",
	"héllo wörld",
	"ÅNGSTRÖM unit",
	"ﬁne",
	"A. Thor",
	"Andreas Thor",
	"thor a",
	"E. Rahm",
	"SIGMOD Rec.",
	"SIGMOD Record",
	"the the the",
	"C++ & Java!",
	"2003",
	" 2004 ",
	"2004",
	"7.5",
	"notayear",
	"A formal perspective on the view selection problem",
	"A formal perspective on the view selection problem revisited",
}

// TestProfiledMatchesFunc asserts that every registered built-in measure
// has a profiled twin and that the twin returns bit-identical scores on
// the full cross product of the edge cases. This is the guard that keeps
// the profile optimization from silently changing Table 1-10 numbers.
func TestProfiledMatchesFunc(t *testing.T) {
	reg := NewRegistry()
	for _, name := range reg.Names() {
		fn, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("registry lost %q", name)
		}
		ps, ok := ProfiledOf(fn)
		if !ok {
			t.Errorf("%s: no profiled twin registered", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			// Profile each value once, as a matcher would.
			profiles := make([]*Profile, len(profileEdgeCases))
			for i, s := range profileEdgeCases {
				profiles[i] = ps.Profile(s)
			}
			for i, a := range profileEdgeCases {
				for j, b := range profileEdgeCases {
					want := fn(a, b)
					got := ps.Compare(profiles[i], profiles[j])
					if got != want {
						t.Errorf("%s(%q, %q): profiled %v, string %v", name, a, b, got, want)
					}
				}
			}
		})
	}
}

// TestProfileTokensMatchesProfile asserts every TokenProfiler builds, from
// a pre-computed Tokens(s) slice, a profile scoring bit-identically to the
// one its Profile stage builds — and never mutates the shared slice. This
// pins the blocking-layer token-reuse path of the match core.
func TestProfileTokensMatchesProfile(t *testing.T) {
	reg := NewRegistry()
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	profilers := map[string]ProfiledSim{"tfidf-corpus": corpus.Profiled()}
	for _, name := range reg.Names() {
		fn, _ := reg.Lookup(name)
		if ps, ok := ProfiledOf(fn); ok {
			profilers[name] = ps
		}
	}
	tokenProfilers := 0
	for name, ps := range profilers {
		tp, ok := ps.(TokenProfiler)
		if !ok {
			continue
		}
		tokenProfilers++
		for _, s := range profileEdgeCases {
			toks := Tokens(s)
			var shared []string
			if toks != nil {
				shared = append([]string(nil), toks...)
			}
			fromTokens := tp.ProfileTokens(s, shared)
			fresh := tp.Profile(s)
			for _, other := range profileEdgeCases {
				po := tp.Profile(other)
				if got, want := tp.Compare(fromTokens, po), tp.Compare(fresh, po); got != want {
					t.Errorf("%s: ProfileTokens(%q) scores %v vs %q, Profile scores %v", name, s, got, other, want)
				}
			}
			if len(shared) != len(toks) {
				t.Fatalf("%s: ProfileTokens changed the shared slice length", name)
			}
			for i := range shared {
				if shared[i] != toks[i] {
					t.Errorf("%s: ProfileTokens(%q) mutated the shared token slice: %v != %v", name, s, shared, toks)
					break
				}
			}
		}
	}
	// tokenProfiled (x2), mongeElkan, personName, tfidf — guard that the
	// interface is actually implemented where it should be.
	if tokenProfilers < 5 {
		t.Errorf("only %d token-profiling measures found, want >= 5", tokenProfilers)
	}
}

// TestProfiledOfUnknownFunc asserts custom measures fall back cleanly.
func TestProfiledOfUnknownFunc(t *testing.T) {
	custom := func(a, b string) float64 { return 0.5 }
	if _, ok := ProfiledOf(custom); ok {
		t.Error("ProfiledOf claimed a profiled twin for a custom closure")
	}
	if _, ok := ProfiledOf(nil); ok {
		t.Error("ProfiledOf claimed a profiled twin for nil")
	}
}

// TestTFIDFProfiledMatchesCosine asserts the profiled TF-IDF measure
// matches the cached string path on the same corpus.
func TestTFIDFProfiledMatchesCosine(t *testing.T) {
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	ps := corpus.Profiled()
	profiles := make([]*Profile, len(profileEdgeCases))
	for i, s := range profileEdgeCases {
		profiles[i] = ps.Profile(s)
	}
	for i, a := range profileEdgeCases {
		for j, b := range profileEdgeCases {
			want := corpus.Cosine(a, b)
			got := ps.Compare(profiles[i], profiles[j])
			if got != want {
				t.Errorf("tfidf(%q, %q): profiled %v, string %v", a, b, got, want)
			}
		}
	}
}

// TestTFIDFAddInvalidatesCache asserts that adding documents after scoring
// drops cached vectors built under stale corpus statistics.
func TestTFIDFAddInvalidatesCache(t *testing.T) {
	corpus := NewTFIDF()
	corpus.Add("view selection")
	corpus.Add("view maintenance")
	before := corpus.Cosine("view selection", "view maintenance")
	// Dilute "view": its idf drops, so the cosine must change.
	for i := 0; i < 20; i++ {
		corpus.Add(fmt.Sprintf("view paper %d", i))
	}
	after := corpus.Cosine("view selection", "view maintenance")
	if before == after {
		t.Errorf("cosine unchanged (%v) after corpus grew; stale vector cache?", before)
	}
	// And the cached path must agree with a fresh corpus built identically.
	fresh := NewTFIDF()
	fresh.Add("view selection")
	fresh.Add("view maintenance")
	for i := 0; i < 20; i++ {
		fresh.Add(fmt.Sprintf("view paper %d", i))
	}
	if want := fresh.Cosine("view selection", "view maintenance"); after != want {
		t.Errorf("cached cosine %v, fresh corpus %v", after, want)
	}
}

// TestHashedGramsMirrorNgrams asserts the hashed gram sets have the same
// cardinality as the string gram sets ngrams builds (the quantity the Dice
// and Jaccard formulas consume).
func TestHashedGramsMirrorNgrams(t *testing.T) {
	for _, s := range profileEdgeCases {
		for _, n := range []int{2, 3, 4} {
			want := len(ngrams(s, n))
			got := len(hashedGrams(Normalize(s), n))
			if got != want {
				t.Errorf("|grams(%q, %d)|: hashed %d, strings %d", s, n, got, want)
			}
		}
	}
}
