package sim

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// profileEdgeCases are the inputs most likely to expose divergence between
// the string-based measures and their profiled twins: empty strings, pure
// whitespace, punctuation-only values, multi-byte Unicode (exercising the
// []rune padding path in ngrams), strings shorter than the gram size n,
// initials, and numeric/year strings.
var profileEdgeCases = []string{
	"",
	" ",
	" \t\n ",
	"a",
	"ab",
	"abc",
	"!!!",
	"--",
	"界",
	"日本 語",
	"héllo wörld",
	"ÅNGSTRÖM unit",
	"ﬁne",
	"A. Thor",
	"Andreas Thor",
	"thor a",
	"E. Rahm",
	"SIGMOD Rec.",
	"SIGMOD Record",
	"the the the",
	"C++ & Java!",
	"2003",
	" 2004 ",
	"2004",
	"7.5",
	"notayear",
	"A formal perspective on the view selection problem",
	"A formal perspective on the view selection problem revisited",
}

// TestProfiledMatchesFunc asserts that every registered built-in measure
// has a profiled twin and that the twin returns bit-identical scores on
// the full cross product of the edge cases. This is the guard that keeps
// the profile optimization from silently changing Table 1-10 numbers.
func TestProfiledMatchesFunc(t *testing.T) {
	reg := NewRegistry()
	for _, name := range reg.Names() {
		fn, ok := reg.Lookup(name)
		if !ok {
			t.Fatalf("registry lost %q", name)
		}
		ps, ok := ProfiledOf(fn)
		if !ok {
			t.Errorf("%s: no profiled twin registered", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			// Profile each value once, as a matcher would.
			profiles := make([]*Profile, len(profileEdgeCases))
			for i, s := range profileEdgeCases {
				profiles[i] = ps.Profile(s)
			}
			for i, a := range profileEdgeCases {
				for j, b := range profileEdgeCases {
					want := fn(a, b)
					got := ps.Compare(profiles[i], profiles[j])
					if got != want {
						t.Errorf("%s(%q, %q): profiled %v, string %v", name, a, b, got, want)
					}
				}
			}
		})
	}
}

// TestProfileTokensMatchesProfile asserts every TokenProfiler builds, from
// a pre-computed Tokens(s) slice, a profile scoring bit-identically to the
// one its Profile stage builds — and never mutates the shared slice. This
// pins the blocking-layer token-reuse path of the match core.
func TestProfileTokensMatchesProfile(t *testing.T) {
	reg := NewRegistry()
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	profilers := map[string]ProfiledSim{"tfidf-corpus": corpus.Profiled()}
	for _, name := range reg.Names() {
		fn, _ := reg.Lookup(name)
		if ps, ok := ProfiledOf(fn); ok {
			profilers[name] = ps
		}
	}
	tokenProfilers := 0
	for name, ps := range profilers {
		tp, ok := ps.(TokenProfiler)
		if !ok {
			continue
		}
		tokenProfilers++
		for _, s := range profileEdgeCases {
			toks := Terms.TokenIDs(s)
			var shared []uint32
			if toks != nil {
				shared = append([]uint32(nil), toks...)
			}
			fromTokens := tp.ProfileTokens(s, shared)
			fresh := tp.Profile(s)
			for _, other := range profileEdgeCases {
				po := tp.Profile(other)
				if got, want := tp.Compare(fromTokens, po), tp.Compare(fresh, po); got != want {
					t.Errorf("%s: ProfileTokens(%q) scores %v vs %q, Profile scores %v", name, s, got, other, want)
				}
			}
			if len(shared) != len(toks) {
				t.Fatalf("%s: ProfileTokens changed the shared slice length", name)
			}
			for i := range shared {
				if shared[i] != toks[i] {
					t.Errorf("%s: ProfileTokens(%q) mutated the shared token slice: %v != %v", name, s, shared, toks)
					break
				}
			}
		}
	}
	// tokenProfiled (x2), mongeElkan, personName, tfidf — guard that the
	// interface is actually implemented where it should be.
	if tokenProfilers < 5 {
		t.Errorf("only %d token-profiling measures found, want >= 5", tokenProfilers)
	}
}

// TestProfiledOfUnknownFunc asserts custom measures fall back cleanly.
func TestProfiledOfUnknownFunc(t *testing.T) {
	custom := func(a, b string) float64 { return 0.5 }
	if _, ok := ProfiledOf(custom); ok {
		t.Error("ProfiledOf claimed a profiled twin for a custom closure")
	}
	if _, ok := ProfiledOf(nil); ok {
		t.Error("ProfiledOf claimed a profiled twin for nil")
	}
}

// TestTFIDFProfiledMatchesCosine asserts the profiled TF-IDF measure
// matches the cached string path on the same corpus.
func TestTFIDFProfiledMatchesCosine(t *testing.T) {
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	ps := corpus.Profiled()
	profiles := make([]*Profile, len(profileEdgeCases))
	for i, s := range profileEdgeCases {
		profiles[i] = ps.Profile(s)
	}
	for i, a := range profileEdgeCases {
		for j, b := range profileEdgeCases {
			want := corpus.Cosine(a, b)
			got := ps.Compare(profiles[i], profiles[j])
			if got != want {
				t.Errorf("tfidf(%q, %q): profiled %v, string %v", a, b, got, want)
			}
		}
	}
}

// TestTFIDFAddInvalidatesCache asserts that adding documents after scoring
// drops cached vectors built under stale corpus statistics.
func TestTFIDFAddInvalidatesCache(t *testing.T) {
	corpus := NewTFIDF()
	corpus.Add("view selection")
	corpus.Add("view maintenance")
	before := corpus.Cosine("view selection", "view maintenance")
	// Dilute "view": its idf drops, so the cosine must change.
	for i := 0; i < 20; i++ {
		corpus.Add(fmt.Sprintf("view paper %d", i))
	}
	after := corpus.Cosine("view selection", "view maintenance")
	if before == after {
		t.Errorf("cosine unchanged (%v) after corpus grew; stale vector cache?", before)
	}
	// And the cached path must agree with a fresh corpus built identically.
	fresh := NewTFIDF()
	fresh.Add("view selection")
	fresh.Add("view maintenance")
	for i := 0; i < 20; i++ {
		fresh.Add(fmt.Sprintf("view paper %d", i))
	}
	if want := fresh.Cosine("view selection", "view maintenance"); after != want {
		t.Errorf("cached cosine %v, fresh corpus %v", after, want)
	}
}

// stringTFIDFReference is a from-scratch, dictionary-free TF-IDF cosine:
// document frequencies keyed by token strings, weights computed exactly as
// the corpus does, and the dot product accumulated over the intersection in
// content-key order (the canonical order of the interned implementation).
// It is the string-keyed reference the ID-keyed path must match at eps 0.
type stringTFIDFReference struct {
	docFreq map[string]int
	docs    int
}

func newStringTFIDFReference(docs []string) *stringTFIDFReference {
	r := &stringTFIDFReference{docFreq: make(map[string]int)}
	for _, d := range docs {
		r.docs++
		for _, tok := range uniqueSorted(Tokens(d)) {
			r.docFreq[tok]++
		}
	}
	return r
}

func (r *stringTFIDFReference) remove(doc string) {
	r.docs--
	for _, tok := range uniqueSorted(Tokens(doc)) {
		if r.docFreq[tok] <= 1 {
			delete(r.docFreq, tok)
		} else {
			r.docFreq[tok]--
		}
	}
}

type refTerm struct {
	tok string
	key uint64
	w   float64
}

func (r *stringTFIDFReference) vector(doc string) ([]refTerm, float64) {
	toks := Tokens(doc)
	if len(toks) == 0 {
		return nil, 0
	}
	counts := make(map[string]int)
	for _, tok := range toks {
		counts[tok]++
	}
	out := make([]refTerm, 0, len(counts))
	for tok, c := range counts {
		df := r.docFreq[tok]
		if df < 1 {
			df = 1
		}
		idf := math.Log(1 + float64(r.docs)/float64(df))
		tf := 1 + math.Log(float64(c))
		out = append(out, refTerm{tok: tok, key: dictKey(tok), w: tf * idf})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key != out[j].key {
			return out[i].key < out[j].key
		}
		return out[i].tok < out[j].tok
	})
	var norm2 float64
	for _, t := range out {
		norm2 += t.w * t.w
	}
	return out, norm2
}

func (r *stringTFIDFReference) cosine(a, b string) float64 {
	va, na := r.vector(a)
	vb, nb := r.vector(b)
	if len(va) == 0 && len(vb) == 0 {
		return 1
	}
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(va) && j < len(vb) {
		switch {
		case va[i].tok == vb[j].tok:
			dot += va[i].w * vb[j].w
			i++
			j++
		case va[i].key < vb[j].key:
			i++
		case va[i].key > vb[j].key:
			j++
		case va[i].tok < vb[j].tok:
			i++
		default:
			j++
		}
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return clamp01(dot / (math.Sqrt(na) * math.Sqrt(nb)))
}

// TestTFIDFMatchesStringReference pins the interned, ID-keyed TF-IDF path
// bit-identically (eps 0) against the dictionary-free string reference, for
// both the cached Cosine entry point and the profiled pair path — including
// after removals reshaped the corpus.
func TestTFIDFMatchesStringReference(t *testing.T) {
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	ref := newStringTFIDFReference(profileEdgeCases)
	check := func(label string) {
		t.Helper()
		ps := corpus.Profiled()
		profiles := make([]*Profile, len(profileEdgeCases))
		for i, s := range profileEdgeCases {
			profiles[i] = ps.Profile(s)
		}
		for i, a := range profileEdgeCases {
			for j, b := range profileEdgeCases {
				want := ref.cosine(a, b)
				if got := corpus.Cosine(a, b); got != want {
					t.Errorf("%s: Cosine(%q, %q) = %v, string reference %v", label, a, b, got, want)
				}
				if got := ps.Compare(profiles[i], profiles[j]); got != want {
					t.Errorf("%s: profiled(%q, %q) = %v, string reference %v", label, a, b, got, want)
				}
			}
		}
	}
	check("full corpus")
	// Removals shift every idf; the reference and the corpus must keep
	// agreeing on the reshaped statistics.
	for _, doc := range profileEdgeCases[:8] {
		corpus.Remove(doc)
		ref.remove(doc)
	}
	check("after removals")
}

// TestTokenMeasureVectorsMatchStrings asserts the interned token-set
// profiles carry exactly the token sets the string path computes: resolving
// SortedTokenIDs back through the dictionary equals uniqueSorted(Tokens(s))
// as a set.
func TestTokenMeasureVectorsMatchStrings(t *testing.T) {
	ps, _ := ProfiledOf(TokenJaccard)
	for _, s := range profileEdgeCases {
		prof := ps.Profile(s)
		got := map[string]bool{}
		for _, id := range prof.SortedTokenIDs {
			got[Terms.Str(id)] = true
		}
		want := map[string]bool{}
		for _, tok := range uniqueSorted(Tokens(s)) {
			want[tok] = true
		}
		if len(got) != len(want) {
			t.Fatalf("SortedTokenIDs(%q): %v != %v", s, got, want)
		}
		for tok := range want {
			if !got[tok] {
				t.Fatalf("SortedTokenIDs(%q) misses %q", s, tok)
			}
		}
	}
}

// TestProfileQueryMatchesProfile pins the lookup-only query profiling path:
// for every QueryProfiler, a ProfileQuery profile must score bit-identically
// to a Profile profile against any interned-value profile — including query
// values whose tokens the dictionary has never seen — and building it must
// not grow the dictionary.
func TestProfileQueryMatchesProfile(t *testing.T) {
	corpus := NewTFIDF()
	corpus.AddAll(profileEdgeCases)
	profilers := map[string]ProfiledSim{"tfidf-corpus": corpus.Profiled()}
	for _, name := range []string{"TokenJaccard", "TokenDice"} {
		fn, _ := NewRegistry().Lookup(name)
		profilers[name], _ = ProfiledOf(fn)
	}
	queryProfilers := 0
	for name, ps := range profilers {
		qp, ok := ps.(QueryProfiler)
		if !ok {
			continue
		}
		queryProfilers++
		// Query values mixing interned tokens with tokens nothing has ever
		// interned (per-measure suffixes stay unknown until this measure's
		// own Profile call below interns them).
		queries := append([]string{
			"zzqx" + name + "1 view selection",
			"zzqx" + name + "2 zzqx" + name + "3",
			"zzqx" + name + "2 zzqx" + name + "2",
			"the zzqx" + name + "4 problem",
		}, profileEdgeCases...)
		// Build every set-side profile first (interning those values), then
		// the query profiles lookup-only.
		setProfiles := make([]*Profile, len(profileEdgeCases))
		for i, s := range profileEdgeCases {
			setProfiles[i] = ps.Profile(s)
		}
		for _, q := range queries {
			before := Terms.Len()
			fromQuery := qp.ProfileQuery(q)
			if got := Terms.Len(); got != before {
				t.Fatalf("%s: ProfileQuery(%q) grew the dictionary %d -> %d", name, q, before, got)
			}
			// Profile interns q's tokens; computed after, so the query-side
			// profile above genuinely saw them as unknown.
			fromProfile := ps.Profile(q)
			for i, po := range setProfiles {
				got, want := qp.Compare(fromQuery, po), qp.Compare(fromProfile, po)
				if got != want {
					t.Errorf("%s: ProfileQuery(%q) vs %q = %v, Profile path %v",
						name, q, profileEdgeCases[i], got, want)
				}
			}
		}
	}
	if queryProfilers < 3 {
		t.Errorf("only %d query-profiling measures found, want >= 3", queryProfilers)
	}
}

// TestDictBasics covers the dictionary contract: stable IDs, reverse
// lookup, lookup-only probing, and tokenization equivalence with Tokens.
func TestDictBasics(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("view"); ok {
		t.Fatal("empty dict claims a token")
	}
	id := d.ID("view")
	if again := d.ID("view"); again != id {
		t.Fatalf("re-interning changed the ID: %d != %d", again, id)
	}
	if got, ok := d.Lookup("view"); !ok || got != id {
		t.Fatalf("Lookup = %d/%v, want %d/true", got, ok, id)
	}
	if d.Str(id) != "view" {
		t.Fatalf("Str(%d) = %q", id, d.Str(id))
	}
	if d.Key(id) != dictKey("view") {
		t.Fatal("Key must be the content hash")
	}
	for _, s := range profileEdgeCases {
		toks := Tokens(s)
		ids := d.TokenIDs(s)
		if len(ids) != len(toks) {
			t.Fatalf("TokenIDs(%q): %d ids for %d tokens", s, len(ids), len(toks))
		}
		for i, tok := range toks {
			if d.Str(ids[i]) != tok {
				t.Fatalf("TokenIDs(%q)[%d] = %q, want %q", s, i, d.Str(ids[i]), tok)
			}
		}
		if !reflect.DeepEqual(d.LookupTokenIDs(s), ids) && len(ids) > 0 {
			t.Fatalf("LookupTokenIDs(%q) after interning diverges from TokenIDs", s)
		}
	}
	if d.Len() == 0 {
		t.Fatal("dict is empty after interning the edge cases")
	}
	if got := d.LookupTokenIDs("zzz-never-interned-zzz"); got != nil && len(got) != 0 {
		t.Fatalf("LookupTokenIDs of unknown tokens = %v, want none", got)
	}
}

// TestDictConcurrent hammers one dictionary from concurrent interners and
// readers; under -race this proves the sharded locking, and every ID must
// resolve back to its string.
func TestDictConcurrent(t *testing.T) {
	d := NewDict()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tok := fmt.Sprintf("tok%03d", (i*7+w)%200)
				id := d.ID(tok)
				if d.Str(id) != tok {
					t.Errorf("Str(ID(%q)) = %q", tok, d.Str(id))
					return
				}
				if lid, ok := d.Lookup(tok); !ok || lid != id {
					t.Errorf("Lookup(%q) = %d/%v, want %d", tok, lid, ok, id)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != 200 {
		t.Fatalf("dict holds %d terms, want 200", d.Len())
	}
}

// TestHashedGramsMirrorNgrams asserts the hashed gram sets have the same
// cardinality as the string gram sets ngrams builds (the quantity the Dice
// and Jaccard formulas consume).
func TestHashedGramsMirrorNgrams(t *testing.T) {
	for _, s := range profileEdgeCases {
		for _, n := range []int{2, 3, 4} {
			want := len(ngrams(s, n))
			got := len(hashedGrams(Normalize(s), n))
			if got != want {
				t.Errorf("|grams(%q, %d)|: hashed %d, strings %d", s, n, got, want)
			}
		}
	}
}
