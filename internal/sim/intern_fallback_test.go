package sim

import (
	"fmt"
	"testing"
)

// TestProfiledFallbacksDoNotIntern pins the guarantee the dictgrowth
// suppression in live.resolveLocked relies on: every built-in profiled
// measure that does NOT implement QueryProfiler has a Profile stage that
// never interns into the global Terms dictionary. The live resolver's
// fallback branch calls Profile directly on query records for exactly
// these measures, so if one of them started interning, an unbounded query
// stream would grow Terms without bound.
func TestProfiledFallbacksDoNotIntern(t *testing.T) {
	if len(profiledByFunc) == 0 {
		t.Fatal("no built-in profiled measures registered")
	}
	checked := 0
	for _, ps := range profiledByFunc {
		if _, ok := ps.(QueryProfiler); ok {
			continue // read paths profile these via ProfileQuery; covered elsewhere
		}
		checked++
		before := Terms.Len()
		// Values no test or fixture has ever interned: growth is attributable.
		for i := 0; i < 4; i++ {
			v := fmt.Sprintf("zz-fallback-probe-%T-%d unseen token", ps, i)
			_ = ps.Profile(v)
		}
		if after := Terms.Len(); after != before {
			t.Errorf("%T.Profile interned %d term(s); non-QueryProfiler measures must stay dictionary-free or gain a ProfileQuery", ps, after-before)
		}
	}
	if checked == 0 {
		t.Fatal("every registered measure implements QueryProfiler; the live fallback branch is dead and its //moma:dictgrowth-ok should be removed")
	}
}
