package sim

// Character n-gram measures. The paper's evaluation uses "string (trigram)
// matching" for publication titles and author names (§5.2); we implement the
// standard Dice coefficient over padded character n-gram sets, plus a
// Jaccard variant.

// paddedRunes returns the rune sequence of an already-normalized string
// padded with n-1 leading and trailing sentinels so that prefixes and
// suffixes carry weight. Shared by the string-gram and hashed-gram paths.
func paddedRunes(norm string, n int) []rune {
	pad := make([]rune, 0, len(norm)+2*(n-1))
	for i := 0; i < n-1; i++ {
		pad = append(pad, '\x01')
	}
	pad = append(pad, []rune(norm)...)
	for i := 0; i < n-1; i++ {
		pad = append(pad, '\x02')
	}
	return pad
}

// ngrams returns the set (deduplicated) of character n-grams of the
// normalized string, padded with n-1 leading and trailing sentinels so that
// prefixes and suffixes carry weight. Returns nil for empty input.
func ngrams(s string, n int) []string {
	if n < 1 {
		return nil
	}
	norm := Normalize(s)
	if norm == "" {
		return nil
	}
	pad := paddedRunes(norm, n)
	if len(pad) < n {
		return nil
	}
	grams := make([]string, 0, len(pad)-n+1)
	for i := 0; i+n <= len(pad); i++ {
		grams = append(grams, string(pad[i:i+n]))
	}
	return uniqueSorted(grams)
}

// NGramDice is the Dice coefficient 2·|A∩B| / (|A|+|B|) over character
// n-gram sets. Two empty strings are identical (1); one empty string never
// matches (0).
func NGramDice(a, b string, n int) float64 {
	ga, gb := ngrams(a, n), ngrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	return clamp01(2 * float64(overlap(ga, gb)) / float64(len(ga)+len(gb)))
}

// NGramJaccard is |A∩B| / |A∪B| over character n-gram sets.
func NGramJaccard(a, b string, n int) float64 {
	ga, gb := ngrams(a, n), ngrams(b, n)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := overlap(ga, gb)
	union := len(ga) + len(gb) - inter
	return clamp01(float64(inter) / float64(union))
}

// Trigram is the Dice coefficient over character trigrams, the measure the
// paper's evaluation scripts call "Trigram".
func Trigram(a, b string) float64 { return NGramDice(a, b, 3) }

// Bigram is the Dice coefficient over character bigrams.
func Bigram(a, b string) float64 { return NGramDice(a, b, 2) }

// TrigramJaccard is the Jaccard coefficient over character trigrams, the
// registry's "NGramJaccard" measure.
func TrigramJaccard(a, b string) float64 { return NGramJaccard(a, b, 3) }

// Affix scores the longest common prefix and suffix of the normalized
// strings relative to the shorter length:
// max(lcp, lcs) / min(len(a), len(b)). It captures abbreviation-style
// matches like "SIGMOD Rec." vs "SIGMOD Record".
func Affix(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	minLen := len(ra)
	if len(rb) < minLen {
		minLen = len(rb)
	}
	lcp := 0
	for lcp < minLen && ra[lcp] == rb[lcp] {
		lcp++
	}
	lcs := 0
	for lcs < minLen && ra[len(ra)-1-lcs] == rb[len(rb)-1-lcs] {
		lcs++
	}
	best := lcp
	if lcs > best {
		best = lcs
	}
	return clamp01(float64(best) / float64(minLen))
}

// Prefix scores only the longest common prefix relative to the shorter
// normalized length.
func Prefix(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	minLen := len(ra)
	if len(rb) < minLen {
		minLen = len(rb)
	}
	lcp := 0
	for lcp < minLen && ra[lcp] == rb[lcp] {
		lcp++
	}
	return clamp01(float64(lcp) / float64(minLen))
}

// Suffix scores only the longest common suffix relative to the shorter
// normalized length.
func Suffix(a, b string) float64 {
	ra, rb := []rune(Normalize(a)), []rune(Normalize(b))
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	minLen := len(ra)
	if len(rb) < minLen {
		minLen = len(rb)
	}
	lcs := 0
	for lcs < minLen && ra[len(ra)-1-lcs] == rb[len(rb)-1-lcs] {
		lcs++
	}
	return clamp01(float64(lcs) / float64(minLen))
}
