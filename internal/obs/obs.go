// Package obs is MOMA's dependency-free observability core: counters,
// gauges and fixed-bucket histograms allocated at registration time and
// recorded with a few atomic operations, a process-global registry with
// deterministic Prometheus text exposition, and a stage-trace facility
// (Stages/Span) that times named pipeline stages into caller-owned scratch
// and captures recent slow queries in a ring buffer.
//
// # Why another metrics core
//
// The engine's hot paths carry machine-checked allocation budgets: the warm
// live.Resolver.ResolveAppend path is //moma:noalloc, proven by moma-vet and
// pinned by testing.AllocsPerRun gates. Instrumentation that allocates — a
// label-map lookup, a string key build, a histogram bucket append — would
// void those budgets the moment it was added, so the record paths here obey
// the same contract and carry the same annotation:
//
//   - Counter.Inc/Add and Gauge.Set/Add are single atomic operations.
//   - Histogram.Observe is one bucket index scan over a registration-time
//     bucket slice plus three atomic operations (bucket, count, CAS-summed
//     float). Buckets store per-bin counts and are cumulated at scrape time,
//     so a record touches exactly one bucket cell.
//   - Span.Mark reads the monotonic clock and adds into a fixed array owned
//     by the caller (the resolver embeds its Span in pooled scratch).
//   - SlowRing.record retains the query id by string header (no copy) under
//     a mutex taken only for threshold-exceeding queries — "lock-cheap": the
//     warm path pays an atomic threshold load and a branch.
//
// Plain atomics were chosen over padded per-CPU shards: a Resolve records
// ~10 atomic adds on distinct cache lines per query, and at the measured
// ~76µs/op even heavily contended adds are noise. Shards would buy nothing
// until single-counter traffic approaches millions of records per second.
//
// # Registration and exposition
//
// Metrics are registered get-or-create on a Registry (usually the
// process-global Default): registering the same (name, labels) twice returns
// the same handle, so package-level var blocks in instrumented packages
// stay idempotent under repeated test binaries and multiple resolvers.
// Labels are pre-rendered strings fixed at registration (`stage="score"`),
// never built at record time. WritePrometheus emits the text exposition
// format with families sorted by name and series sorted by label string —
// the output ordering is deterministic across scrapes, which the repo's
// determinism invariant (moma-vet mapiter) demands of every observable
// output.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. Create with
// Registry.Counter; the zero value works but is unregistered.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//moma:noalloc
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//moma:noalloc
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
//
//moma:noalloc
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Create with Registry.Gauge.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//moma:noalloc
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (negative to decrement).
//
//moma:noalloc
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
//
//moma:noalloc
func (g *Gauge) Load() int64 { return g.v.Load() }

// atomicFloat accumulates a float64 sum with compare-and-swap — the
// histogram sum needs float addition without a mutex.
type atomicFloat struct {
	bits atomic.Uint64
}

// Add adds v to the sum.
//
//moma:noalloc
func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Load returns the current sum.
//
//moma:noalloc
func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }
