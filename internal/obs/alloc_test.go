package obs

import (
	"testing"
	"time"

	"repro/internal/race"
)

// TestRecordPathsZeroAllocs is the runtime twin of the //moma:noalloc
// annotations on the record paths: counters, gauges, histogram observes,
// span marks and a Stages.Finish that captures into the slow ring must not
// allocate — instrumentation on the warm resolve path may not cost an
// allocation (the engine-wide gate is live's TestResolveAppendZeroAllocs).
func TestRecordPathsZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	r := NewRegistry()
	ring := &SlowRing{}
	ring.SetThreshold(time.Nanosecond) // force every Finish into the ring
	c := r.Counter("t_alloc_total", "help")
	g := r.Gauge("t_alloc_gauge", "help")
	h := r.Histogram("t_alloc_seconds", "help", nil)
	st := NewStages(r, "t_alloc_op", "help", ring, "a", "b", "c")
	var sp Span
	id := "query-id"

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(9) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.0001) }},
		{"Span+Finish+ring", func() {
			sp.Begin()
			sp.Mark(0)
			sp.Mark(1)
			sp.Mark(2)
			sp.Candidates, sp.Kept = 11, 4
			st.Finish(&sp, id)
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s allocates %.0f times per run, want 0", tc.name, allocs)
		}
	}
}
