package obs

import (
	"fmt"
	"time"
)

// MaxStages bounds the stages of one traced pipeline; Span's scratch is a
// fixed array so tracing never allocates.
const MaxStages = 8

// Span is the caller-owned scratch of one traced operation: per-stage
// nanosecond tallies plus the candidate/kept counts the slow-query ring
// reports. Embed it in pooled or stack scratch (the live resolver keeps one
// in its pooled resolveScratch); Begin resets it, Mark attributes elapsed
// time to a stage, Stages.Finish feeds the histograms. A Span is not safe
// for concurrent use — it is scratch, one operation at a time.
type Span struct {
	t0, last time.Time
	ns       [MaxStages]int64

	// Candidates and Kept are operation counts reported in slow-query
	// traces: how many candidates the stage pipeline examined and how many
	// survived. The instrumented code sets them before Finish.
	Candidates, Kept int
}

// Begin resets the span and stamps its start.
//
//moma:noalloc
func (sp *Span) Begin() {
	*sp = Span{}
	sp.t0 = time.Now()
	sp.last = sp.t0
}

// Mark attributes the time since the previous Mark (or Begin) to the given
// stage index. Marks of the same stage accumulate. Out-of-range stages are
// dropped, not panicked over — tracing must never take down a resolve.
//
//moma:noalloc
func (sp *Span) Mark(stage int) {
	now := time.Now()
	if uint(stage) < MaxStages {
		sp.ns[stage] += now.Sub(sp.last).Nanoseconds()
	}
	sp.last = now
}

// StageNS returns the nanoseconds attributed to a stage so far.
//
//moma:noalloc
func (sp *Span) StageNS(stage int) int64 {
	if uint(stage) < MaxStages {
		return sp.ns[stage]
	}
	return 0
}

// Total returns the time since Begin.
//
//moma:noalloc
func (sp *Span) Total() time.Duration { return time.Since(sp.t0) }

// Stages is a registered pipeline trace: an ordered set of stage names with
// one latency histogram per stage plus a total histogram, optionally feeding
// a slow-query ring. Create once with NewStages (registration allocates);
// Finish on the hot path records with atomic adds only.
type Stages struct {
	op    string
	names []string
	hists []*Histogram
	total *Histogram
	ring  *SlowRing
}

// NewStages registers the stage histograms of the pipeline op on r:
// "<op>_stage_seconds" with one stage="<name>" series per stage, and
// "<op>_seconds" for the whole operation. ring, when non-nil, captures
// threshold-exceeding operations; nil disables capture for this pipeline.
func NewStages(r *Registry, op, help string, ring *SlowRing, stages ...string) *Stages {
	if len(stages) == 0 || len(stages) > MaxStages {
		panic(fmt.Sprintf("obs: NewStages(%q) needs 1..%d stages, got %d", op, MaxStages, len(stages)))
	}
	st := &Stages{op: op, names: stages, ring: ring}
	st.hists = make([]*Histogram, len(stages))
	for i, name := range stages {
		st.hists[i] = r.Histogram(op+"_stage_seconds", help+" (per stage)", nil, `stage="`+name+`"`)
	}
	st.total = r.Histogram(op+"_seconds", help, nil)
	return st
}

// Names returns the stage names in pipeline order.
func (st *Stages) Names() []string { return st.names }

// Finish records the span: each stage's tally into its histogram, the total
// into the operation histogram, and — when the total exceeds the ring's
// threshold — a slow-query trace under the given id. It returns the total.
//
//moma:noalloc
func (st *Stages) Finish(sp *Span, id string) time.Duration {
	total := time.Since(sp.t0)
	for i := range st.hists {
		st.hists[i].Observe(float64(sp.ns[i]) / 1e9)
	}
	st.total.Observe(total.Seconds())
	if st.ring != nil {
		st.ring.record(st, sp, id, total)
	}
	return total
}
