package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// slowRingSize is the number of retained slow-query traces. A ring this
// small is a flight recorder, not a log: it answers "what did the last slow
// queries spend their time on", and an external scraper that wants history
// polls /debug/slow.
const slowRingSize = 64

// SlowRing captures recent traced operations whose total latency exceeded a
// threshold. The warm-path cost when an operation is fast (the common case)
// is one atomic load and a compare; only threshold-exceeding operations take
// the mutex, and the record itself is allocation-free — entries hold string
// headers and fixed arrays, so capture never disturbs the allocation budget
// of the path it observes. DefaultSlow is the process-global ring the
// resolver's Stages feed and /debug/slow drains.
type SlowRing struct {
	threshold atomic.Int64 // ns; <= 0 disables capture

	mu      sync.Mutex
	entries [slowRingSize]slowEntry // guarded by mu
	total   uint64                  // lifetime captures; guarded by mu
}

// slowEntry is one captured trace. Strings are retained by header (the id
// string of a resolved instance, the Stages' registered names) — immutable
// and at most slowRingSize of them, so retention is bounded.
type slowEntry struct {
	st         *Stages
	id         string
	at         int64 // unix nanoseconds at capture
	totalNS    int64
	ns         [MaxStages]int64
	candidates int
	kept       int
}

// DefaultSlow is the process-global slow-query ring.
var DefaultSlow = &SlowRing{}

// SetSlowThreshold sets the capture threshold of the process-global ring;
// d <= 0 disables capture. See SlowRing.SetThreshold.
func SetSlowThreshold(d time.Duration) { DefaultSlow.SetThreshold(d) }

// SlowSnapshot returns the process-global ring's captured traces, newest
// first.
func SlowSnapshot() []SlowQuery { return DefaultSlow.Snapshot() }

// SetThreshold sets the capture threshold: operations totalling d or more
// are captured. d <= 0 disables capture (the default).
func (r *SlowRing) SetThreshold(d time.Duration) { r.threshold.Store(int64(d)) }

// Threshold returns the current capture threshold.
func (r *SlowRing) Threshold() time.Duration { return time.Duration(r.threshold.Load()) }

// record captures one finished span when it exceeds the threshold.
//
//moma:noalloc
func (r *SlowRing) record(st *Stages, sp *Span, id string, total time.Duration) {
	thr := r.threshold.Load()
	if thr <= 0 || total.Nanoseconds() < thr {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	e := &r.entries[r.total%slowRingSize]
	e.st = st
	e.id = id
	e.at = now
	e.totalNS = total.Nanoseconds()
	e.ns = sp.ns
	e.candidates = sp.Candidates
	e.kept = sp.Kept
	r.total++
	r.mu.Unlock()
}

// Total returns the lifetime number of captured traces (not bounded by the
// ring size).
func (r *SlowRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// SlowStage is one stage's share of a captured trace.
type SlowStage struct {
	Stage string `json:"stage"`
	NS    int64  `json:"ns"`
}

// SlowQuery is one captured trace, JSON-shaped for /debug/slow.
type SlowQuery struct {
	Op         string      `json:"op"`
	ID         string      `json:"id,omitempty"`
	UnixNano   int64       `json:"unix_nano"`
	TotalNS    int64       `json:"total_ns"`
	Stages     []SlowStage `json:"stages"`
	Candidates int         `json:"candidates"`
	Kept       int         `json:"kept"`
}

// Snapshot returns the captured traces, newest first. Snapshots allocate
// freely — they serve debug reads, not hot paths.
func (r *SlowRing) Snapshot() []SlowQuery {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.total
	if n > slowRingSize {
		n = slowRingSize
	}
	out := make([]SlowQuery, 0, n)
	for i := uint64(0); i < n; i++ {
		e := &r.entries[(r.total-1-i)%slowRingSize]
		q := SlowQuery{
			Op:         e.st.op,
			ID:         e.id,
			UnixNano:   e.at,
			TotalNS:    e.totalNS,
			Candidates: e.candidates,
			Kept:       e.kept,
			Stages:     make([]SlowStage, len(e.st.names)),
		}
		for s, name := range e.st.names {
			q.Stages[s] = SlowStage{Stage: name, NS: e.ns[s]}
		}
		out = append(out, q)
	}
	return out
}
