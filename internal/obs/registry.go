package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Default is the process-global registry. Instrumented packages register
// their metrics here in package-level var blocks; internal/serve drains it
// on /metrics.
var Default = NewRegistry()

// metricKind discriminates what a family holds.
type metricKind uint8

const (
	counterKind metricKind = iota
	gaugeKind
	gaugeFuncKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, gaugeFuncKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// family is one metric name: its help, kind and children keyed by
// pre-rendered label string ("" for the unlabeled series).
type family struct {
	name, help string
	kind       metricKind
	children   map[string]any // owned by the registry; mutated only under its mu
}

// Registry holds registered metrics. Registration takes a mutex and may
// allocate; record-time operations on the returned handles are lock-free
// and allocation-free. Scrapes (WritePrometheus) also take the mutex, but
// only to snapshot the family table — recording never touches it.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// familyFor returns the family for name get-or-create, panicking when the
// name is already registered under a different kind — metric wiring is
// static, so a kind clash is a programming error, not a runtime condition.
// Callers hold mu.
//
//moma:locked mu
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	return f
}

// Counter returns the unlabeled counter of name, registering it on first
// use. labels, if given, is a single pre-rendered label block such as
// `stage="score"` (no braces) identifying one series of the family.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, counterKind)
	key := labelKey(labels)
	if c, ok := f.children[key].(*Counter); ok {
		return c
	}
	c := &Counter{}
	f.children[key] = c
	return c
}

// Gauge returns the gauge of (name, labels), registering it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, gaugeKind)
	key := labelKey(labels)
	if g, ok := f.children[key].(*Gauge); ok {
		return g
	}
	g := &Gauge{}
	f.children[key] = g
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the idiom for sizes owned elsewhere (dictionary lengths, cache entry
// counts) where pushing every change through a Gauge would couple the owner
// to its observer. fn must be safe to call from any goroutine. Re-registering
// the same (name, labels) replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, gaugeFuncKind)
	f.children[labelKey(labels)] = fn
}

// Histogram returns the histogram of (name, labels), registering it with
// the given bucket upper bounds on first use (nil means DefLatencyBuckets).
// Buckets are fixed at registration; a later call with different buckets
// returns the existing histogram unchanged.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, histogramKind)
	key := labelKey(labels)
	if h, ok := f.children[key].(*Histogram); ok {
		return h
	}
	if uppers == nil {
		uppers = DefLatencyBuckets
	}
	h := newHistogram(uppers)
	f.children[key] = h
	return h
}

// labelKey joins pre-rendered label blocks into the child key.
func labelKey(labels []string) string {
	switch len(labels) {
	case 0:
		return ""
	case 1:
		return labels[0]
	}
	key := labels[0]
	for _, l := range labels[1:] {
		key += "," + l
	}
	return key
}

// WritePrometheus emits every registered metric in the Prometheus text
// exposition format: families sorted by name, series within a family sorted
// by label string, histogram buckets cumulative with a trailing +Inf. The
// ordering is a pure function of the registered names, so consecutive
// scrapes list series identically.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type series struct {
		labels string
		m      any
	}
	type fam struct {
		name, help, typ string
		series          []series
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		out := fam{name: name, help: f.help, typ: f.kind.String()}
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out.series = append(out.series, series{labels: k, m: f.children[k]})
		}
		fams = append(fams, out)
	}
	r.mu.Unlock()

	// Emission happens outside the lock: the handles are atomic-read and the
	// family table snapshot above is private, so a stalled scraper never
	// blocks registration (or another scrape).
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch m := s.m.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), m.Load())
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), m.Load())
			case func() float64:
				fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.labels), formatFloat(m()))
			case *Histogram:
				cum, sum, count := m.snapshot()
				for i, ub := range m.uppers {
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.labels, formatFloat(ub)), cum[i])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedLe(s.labels, "+Inf"), count)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.labels), formatFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), count)
			}
		}
	}
}

// braced wraps a non-empty label block in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// bracedLe appends the le label to a label block.
func bracedLe(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return "{" + labels + `,le="` + le + `"}`
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
