package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("t_total", "help"); again != c {
		t.Fatal("get-or-create returned a different counter handle")
	}
	g := r.Gauge("t_gauge", "help")
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	labeled := r.Counter("t_total", "help", `k="v"`)
	if labeled == c {
		t.Fatal("labeled child must be a distinct series")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering t_x as a gauge should panic")
		}
	}()
	r.Gauge("t_x", "help")
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	cum, sum, count := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if want := 56.05; sum != want {
		t.Fatalf("sum = %g, want %g", sum, want)
	}
	want := []uint64{1, 3, 4} // cumulative: <=0.1, <=1, <=10
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all %v)", i, cum[i], w, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_conc_seconds", "help", []float64{0.5})
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), 0.25*workers*per; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_b_total", "b counter").Inc()
	r.Counter("t_a_total", "a counter").Add(2)
	r.Gauge("t_g", "a gauge").Set(3)
	r.GaugeFunc("t_f", "a func gauge", func() float64 { return 1.5 })
	r.Counter("t_l_total", "labeled", `stage="b"`).Inc()
	r.Counter("t_l_total", "labeled", `stage="a"`).Inc()
	h := r.Histogram("t_h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.5)

	var b1, b2 strings.Builder
	r.WritePrometheus(&b1)
	r.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatal("two scrapes of an unchanged registry differ")
	}
	out := b1.String()
	// Families sort by name; series within t_l_total sort by label.
	if strings.Index(out, "t_a_total") > strings.Index(out, "t_b_total") {
		t.Fatal("families not sorted by name")
	}
	if strings.Index(out, `t_l_total{stage="a"}`) > strings.Index(out, `t_l_total{stage="b"}`) {
		t.Fatal("series not sorted by label")
	}
	for _, want := range []string{
		"# HELP t_a_total a counter", "# TYPE t_a_total counter",
		"# TYPE t_g gauge", "# TYPE t_f gauge", "t_f 1.5",
		"# TYPE t_h_seconds histogram",
		`t_h_seconds_bucket{le="0.1"} 0`, `t_h_seconds_bucket{le="1"} 1`,
		`t_h_seconds_bucket{le="+Inf"} 1`, "t_h_seconds_sum 0.5", "t_h_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestSpanMarks(t *testing.T) {
	var sp Span
	sp.Begin()
	time.Sleep(time.Millisecond)
	sp.Mark(0)
	time.Sleep(time.Millisecond)
	sp.Mark(1)
	sp.Mark(1) // same stage accumulates; near-zero elapsed
	if sp.StageNS(0) <= 0 || sp.StageNS(1) <= 0 {
		t.Fatalf("stage tallies = %d, %d; want > 0", sp.StageNS(0), sp.StageNS(1))
	}
	if got := sp.StageNS(2); got != 0 {
		t.Fatalf("untouched stage = %d, want 0", got)
	}
	sp.Mark(MaxStages + 3) // out of range: dropped, no panic
	if total := sp.Total(); total < 2*time.Millisecond {
		t.Fatalf("total = %v, want >= 2ms", total)
	}
	sp.Begin()
	if sp.StageNS(0) != 0 || sp.Candidates != 0 {
		t.Fatal("Begin must reset the span")
	}
}

func TestStagesFinishFeedsHistograms(t *testing.T) {
	r := NewRegistry()
	ring := &SlowRing{}
	st := NewStages(r, "t_op", "test op", ring, "first", "second")
	var sp Span
	sp.Begin()
	sp.Mark(0)
	sp.Mark(1)
	sp.Candidates, sp.Kept = 7, 2
	st.Finish(&sp, "q1")
	if got := st.total.Count(); got != 1 {
		t.Fatalf("total histogram count = %d, want 1", got)
	}
	if got := st.hists[0].Count(); got != 1 {
		t.Fatalf("stage histogram count = %d, want 1", got)
	}
	// Ring threshold is 0: nothing captured.
	if n := ring.Total(); n != 0 {
		t.Fatalf("captured %d traces with capture disabled", n)
	}
	ring.SetThreshold(time.Nanosecond)
	sp.Begin()
	sp.Mark(0)
	sp.Candidates, sp.Kept = 3, 1
	st.Finish(&sp, "q2")
	snap := ring.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("captured %d traces, want 1", len(snap))
	}
	q := snap[0]
	if q.Op != "t_op" || q.ID != "q2" || q.Candidates != 3 || q.Kept != 1 {
		t.Fatalf("trace = %+v", q)
	}
	if len(q.Stages) != 2 || q.Stages[0].Stage != "first" || q.Stages[0].NS <= 0 {
		t.Fatalf("stages = %+v", q.Stages)
	}
	if q.TotalNS <= 0 || q.UnixNano == 0 {
		t.Fatalf("trace missing timing: %+v", q)
	}
}

func TestSlowRingWrapNewestFirst(t *testing.T) {
	r := NewRegistry()
	ring := &SlowRing{}
	ring.SetThreshold(time.Nanosecond)
	st := NewStages(r, "t_wrap", "wrap test", ring, "only")
	ids := make([]string, slowRingSize+10)
	for i := range ids {
		ids[i] = "q" + strings.Repeat("x", i%3) // varied, deterministic
		var sp Span
		sp.Begin()
		sp.Mark(0)
		st.Finish(&sp, ids[i])
	}
	if got := ring.Total(); got != uint64(len(ids)) {
		t.Fatalf("total = %d, want %d", got, len(ids))
	}
	snap := ring.Snapshot()
	if len(snap) != slowRingSize {
		t.Fatalf("snapshot holds %d, want %d", len(snap), slowRingSize)
	}
	if snap[0].ID != ids[len(ids)-1] {
		t.Fatalf("snapshot[0].ID = %q, want newest %q", snap[0].ID, ids[len(ids)-1])
	}
}

func TestStagesPanicsOnBadStageCount(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("NewStages with zero stages should panic")
		}
	}()
	NewStages(r, "t_bad", "help", nil)
}
