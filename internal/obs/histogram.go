package obs

import "sync/atomic"

// DefLatencyBuckets are the default histogram upper bounds in seconds for
// engine-side latencies: resolver stages sit in the single-digit
// microseconds, store compactions in the tens of milliseconds, pathological
// queries above that. The range deliberately starts two decades below the
// HTTP-level buckets in internal/serve — stage tracing exists to show where
// inside a 76µs resolve the time goes.
var DefLatencyBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// Histogram is a fixed-bucket histogram: upper bounds are set at
// registration, a record is one bucket add plus a count add and a CAS-summed
// float. Buckets hold per-bin (non-cumulative) counts; the scrape cumulates
// them, which both keeps the record path to a single cell and makes the
// emitted cumulative series monotonic by construction. Create with
// Registry.Histogram.
type Histogram struct {
	uppers []float64       // immutable after registration
	counts []atomic.Uint64 // len(uppers)+1; last bin is +Inf
	sum    atomicFloat
	count  atomic.Uint64
}

func newHistogram(uppers []float64) *Histogram {
	return &Histogram{uppers: uppers, counts: make([]atomic.Uint64, len(uppers)+1)}
}

// Observe records one value.
//
//moma:noalloc
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
//
//moma:noalloc
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
//
//moma:noalloc
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// snapshot returns the cumulative bucket counts (parallel to uppers, +Inf
// bin excluded — the +Inf count equals Count), plus sum and count read
// once. Bins are read low-to-high after the total, so a concurrent Observe
// can only make the reported buckets undercount relative to the reported
// total — cumulative monotonicity of the emitted lines is preserved.
func (h *Histogram) snapshot() (cum []uint64, sum float64, count uint64) {
	count = h.count.Load()
	sum = h.sum.Load()
	cum = make([]uint64, len(h.uppers))
	var run uint64
	for i := range h.uppers {
		run += h.counts[i].Load()
		if run > count {
			run = count
		}
		cum[i] = run
	}
	return cum, sum, count
}
