package tuning

import (
	"strings"
	"testing"

	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/sim"
)

var (
	dblpPub = model.LDS{Source: "DBLP", Type: model.Publication}
	acmPub  = model.LDS{Source: "ACM", Type: model.Publication}
)

// tuningFixture builds sets where the title-trigram matcher at a moderate
// threshold is clearly the best configuration.
func tuningFixture() (*model.ObjectSet, *model.ObjectSet, *mapping.Mapping) {
	a := model.NewObjectSet(dblpPub)
	b := model.NewObjectSet(acmPub)
	perfect := mapping.NewSame(dblpPub, acmPub)
	titles := []string{
		"generic schema matching with cupid",
		"a formal perspective on views",
		"data integration on the web",
		"robust query processing",
		"adaptive join algorithms",
		"similarity search in metric spaces",
	}
	for i, title := range titles {
		da := model.ID(rune('a' + i))
		db := model.ID(rune('A' + i))
		a.AddNew(da, map[string]string{"title": title, "year": "2001"})
		// ACM side: slightly perturbed title, same year (year alone is
		// useless: everything matches).
		b.AddNew(db, map[string]string{"title": strings.Replace(title, "a", "e", 1), "year": "2001"})
		perfect.Add(da, db, 1)
	}
	return a, b, perfect
}

func TestGridSearchFindsTitleMatcher(t *testing.T) {
	a, b, perfect := tuningFixture()
	space := Space{
		AttrPairs:  [][2]string{{"title", "title"}, {"year", "year"}},
		SimNames:   []string{"Trigram", "YearExact"},
		Thresholds: []float64{0.5, 0.8, 0.95},
	}
	outcomes, err := GridSearch(space, a, b, perfect)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 12 {
		t.Fatalf("outcomes = %d, want 12", len(outcomes))
	}
	best, err := Best(outcomes)
	if err != nil {
		t.Fatal(err)
	}
	if best.Candidate.AttrA != "title" || best.Candidate.SimName != "Trigram" {
		t.Errorf("best = %s, want title trigram", best.Candidate)
	}
	if best.Result.F1 < 0.9 {
		t.Errorf("best F1 = %v, want >= 0.9", best.Result.F1)
	}
	// Outcomes must be sorted by F descending.
	for i := 1; i < len(outcomes); i++ {
		if outcomes[i].Result.F1 > outcomes[i-1].Result.F1 {
			t.Error("outcomes not sorted")
			break
		}
	}
}

func TestGridSearchPartialTraining(t *testing.T) {
	a, b, perfect := tuningFixture()
	// Label only half the domain objects.
	training := mapping.NewSame(dblpPub, acmPub)
	for i, c := range perfect.Correspondences() {
		if i%2 == 0 {
			training.Add(c.Domain, c.Range, 1)
		}
	}
	space := Space{
		AttrPairs:  [][2]string{{"title", "title"}},
		SimNames:   []string{"Trigram"},
		Thresholds: []float64{0.5},
	}
	outcomes, err := GridSearch(space, a, b, training)
	if err != nil {
		t.Fatal(err)
	}
	// Uncovered domain objects must not count as false positives.
	if outcomes[0].Result.FalsePos > 1 {
		t.Errorf("partial training should limit counted pairs, got %+v", outcomes[0].Result)
	}
}

func TestGridSearchErrors(t *testing.T) {
	a, b, perfect := tuningFixture()
	if _, err := GridSearch(Space{}, a, b, perfect); err == nil {
		t.Error("empty space should fail")
	}
	bad := Space{AttrPairs: [][2]string{{"t", "t"}}, SimNames: []string{"Nope"}, Thresholds: []float64{0.5}}
	if _, err := GridSearch(bad, a, b, perfect); err == nil {
		t.Error("unknown similarity should fail")
	}
	if _, err := Best(nil); err == nil {
		t.Error("Best of nothing should fail")
	}
}

func TestCandidateString(t *testing.T) {
	c := Candidate{AttrA: "title", AttrB: "name", SimName: "Trigram", Threshold: 0.8}
	if got := c.String(); !strings.Contains(got, "Trigram") || !strings.Contains(got, "0.80") {
		t.Errorf("String = %q", got)
	}
}

func TestFeatureExtractor(t *testing.T) {
	fe, err := NewFeatureExtractor(sim.NewRegistry(), [][3]string{
		{"title", "title", "Trigram"},
		{"year", "year", "YearExact"},
	})
	if err != nil {
		t.Fatal(err)
	}
	a := model.NewInstance("x", map[string]string{"title": "abc", "year": "2001"})
	b := model.NewInstance("y", map[string]string{"title": "abc", "year": "2002"})
	got := fe.Extract(a, b)
	if len(got) != 2 || got[0] != 1 || got[1] != 0 {
		t.Errorf("features = %v", got)
	}
	if len(fe.Names) != 2 {
		t.Errorf("names = %v", fe.Names)
	}
	if _, err := NewFeatureExtractor(nil, [][3]string{{"a", "b", "Nope"}}); err == nil {
		t.Error("unknown sim should fail")
	}
}

func TestLearnTreeSeparable(t *testing.T) {
	// Single feature, perfectly separable at 0.5.
	var examples []Example
	for i := 0; i < 20; i++ {
		v := float64(i) / 20
		examples = append(examples, Example{Features: []float64{v}, Match: v >= 0.5})
	}
	tree := LearnTree(examples, DefaultTreeConfig())
	if tree.IsLeaf {
		t.Fatal("separable data should split")
	}
	for _, e := range examples {
		if tree.Predict(e.Features) != e.Match {
			t.Errorf("misclassified %v", e.Features)
		}
	}
	if tree.Depth() < 1 {
		t.Error("depth should be >= 1")
	}
}

func TestLearnTreeTwoFeatures(t *testing.T) {
	// Match = title high AND year matches; one feature alone is not enough.
	var examples []Example
	grid := []float64{0.1, 0.3, 0.6, 0.9}
	for _, ts := range grid {
		for _, ys := range []float64{0, 1} {
			examples = append(examples,
				Example{Features: []float64{ts, ys}, Match: ts >= 0.6 && ys == 1},
				Example{Features: []float64{ts, ys}, Match: ts >= 0.6 && ys == 1})
		}
	}
	tree := LearnTree(examples, TreeConfig{MaxDepth: 4, MinExamples: 2})
	correct := 0
	for _, e := range examples {
		if tree.Predict(e.Features) == e.Match {
			correct++
		}
	}
	if correct != len(examples) {
		t.Errorf("tree classifies %d/%d", correct, len(examples))
	}
}

func TestLearnTreeEdgeCases(t *testing.T) {
	if !LearnTree(nil, DefaultTreeConfig()).IsLeaf {
		t.Error("empty data should give a leaf")
	}
	pure := []Example{{Features: []float64{1}, Match: true}, {Features: []float64{0.4}, Match: true}}
	tree := LearnTree(pure, DefaultTreeConfig())
	if !tree.IsLeaf || !tree.Match {
		t.Error("pure positive data should give a positive leaf")
	}
	constant := []Example{
		{Features: []float64{0.5}, Match: true},
		{Features: []float64{0.5}, Match: false},
		{Features: []float64{0.5}, Match: true},
		{Features: []float64{0.5}, Match: true},
	}
	ctree := LearnTree(constant, TreeConfig{MaxDepth: 3, MinExamples: 2})
	if !ctree.IsLeaf {
		t.Error("unsplittable data should give a leaf")
	}
	if !ctree.Match {
		t.Error("majority should win")
	}
}

func TestTreeMatcherEndToEnd(t *testing.T) {
	a, b, perfect := tuningFixture()
	fe, err := NewFeatureExtractor(nil, [][3]string{
		{"title", "title", "Trigram"},
		{"year", "year", "YearExact"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var pairs [][2]model.ID
	for _, ida := range a.IDs() {
		for _, idb := range b.IDs() {
			pairs = append(pairs, [2]model.ID{ida, idb})
		}
	}
	examples := BuildExamples(fe, a, b, pairs, perfect)
	if len(examples) != len(pairs) {
		t.Fatalf("examples = %d, want %d", len(examples), len(pairs))
	}
	tree := LearnTree(examples, DefaultTreeConfig())
	tm := &TreeMatcher{Extractor: fe, Tree: tree}
	got, err := tm.Match(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// The learned matcher should reproduce the training mapping closely.
	correct := 0
	perfect.Each(func(c mapping.Correspondence) {
		if got.Has(c.Domain, c.Range) {
			correct++
		}
	})
	if correct < perfect.Len()-1 {
		t.Errorf("tree matcher recalls %d/%d", correct, perfect.Len())
	}
	if tm.Name() != "decision-tree" {
		t.Errorf("Name = %q", tm.Name())
	}
	if _, err := (&TreeMatcher{}).Match(a, b); err == nil {
		t.Error("untrained matcher should fail")
	}
}
