// Package tuning implements MOMA's self-tuning capabilities (§2.2): given
// training data (a partial perfect mapping), it searches matcher
// configurations — which attributes to match, which similarity function,
// which threshold — for the best F-measure, and learns a decision-tree
// match classifier over similarity feature vectors ("for suitable training
// data these parameters can be optimized by standard machine learning
// schemes, e.g. using decision trees").
package tuning

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/eval"
	"repro/internal/mapping"
	"repro/internal/match"
	"repro/internal/model"
	"repro/internal/sim"
)

// Candidate is one attribute-matcher configuration in the search space.
type Candidate struct {
	AttrA, AttrB string
	SimName      string
	Sim          sim.Func
	Threshold    float64
}

// String renders the configuration.
func (c Candidate) String() string {
	return fmt.Sprintf("attr(%s~%s, %s, t=%.2f)", c.AttrA, c.AttrB, c.SimName, c.Threshold)
}

// Space enumerates candidate configurations: the cross product of
// attribute pairs, similarity functions and thresholds.
type Space struct {
	AttrPairs  [][2]string
	SimNames   []string
	Thresholds []float64
	Registry   *sim.Registry
}

// Candidates expands the space.
func (s Space) Candidates() ([]Candidate, error) {
	reg := s.Registry
	if reg == nil {
		reg = sim.NewRegistry()
	}
	var out []Candidate
	for _, pair := range s.AttrPairs {
		for _, name := range s.SimNames {
			fn, ok := reg.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("tuning: unknown similarity function %q", name)
			}
			for _, t := range s.Thresholds {
				out = append(out, Candidate{AttrA: pair[0], AttrB: pair[1], SimName: name, Sim: fn, Threshold: t})
			}
		}
	}
	return out, nil
}

// Outcome pairs a candidate with its evaluation result.
type Outcome struct {
	Candidate Candidate
	Result    eval.Result
}

// GridSearch evaluates every candidate on (a, b) against the training
// mapping and returns all outcomes sorted by descending F-measure (ties:
// higher precision, then the candidate order). The training mapping may be
// a subset of the full perfect mapping — only pairs whose domain object is
// covered by training count, which models a hand-labelled sample.
func GridSearch(space Space, a, b *model.ObjectSet, training *mapping.Mapping) ([]Outcome, error) {
	cands, err := space.Candidates()
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("tuning: empty search space")
	}
	covered := make(map[model.ID]bool)
	for _, id := range training.DomainIDs() {
		covered[id] = true
	}
	outcomes := make([]Outcome, 0, len(cands))
	for _, c := range cands {
		m := &match.Attribute{
			AttrA: c.AttrA, AttrB: c.AttrB, Sim: c.Sim, Threshold: c.Threshold,
		}
		got, err := m.Match(a, b)
		if err != nil {
			return nil, fmt.Errorf("tuning: %s: %w", c, err)
		}
		restricted := got.Filter(func(corr mapping.Correspondence) bool {
			return covered[corr.Domain]
		})
		outcomes = append(outcomes, Outcome{Candidate: c, Result: eval.Compare(restricted, training)})
	}
	sort.SliceStable(outcomes, func(i, j int) bool {
		if outcomes[i].Result.F1 != outcomes[j].Result.F1 {
			return outcomes[i].Result.F1 > outcomes[j].Result.F1
		}
		return outcomes[i].Result.Precision > outcomes[j].Result.Precision
	})
	return outcomes, nil
}

// Best returns the winning configuration of a grid search.
func Best(outcomes []Outcome) (Outcome, error) {
	if len(outcomes) == 0 {
		return Outcome{}, fmt.Errorf("tuning: no outcomes")
	}
	return outcomes[0], nil
}

// Example is one training example for the decision tree: a feature vector
// of similarity values plus the match label.
type Example struct {
	Features []float64
	Match    bool
}

// FeatureExtractor computes the similarity feature vector of an instance
// pair under several measures — one feature per configured comparison.
type FeatureExtractor struct {
	Names []string
	fns   []featureFn
}

type featureFn struct {
	attrA, attrB string
	fn           sim.Func
}

// NewFeatureExtractor builds an extractor; comparisons are given as
// (attrA, attrB, simName) triples resolved against the registry.
func NewFeatureExtractor(reg *sim.Registry, comparisons [][3]string) (*FeatureExtractor, error) {
	if reg == nil {
		reg = sim.NewRegistry()
	}
	fe := &FeatureExtractor{}
	for _, c := range comparisons {
		fn, ok := reg.Lookup(c[2])
		if !ok {
			return nil, fmt.Errorf("tuning: unknown similarity function %q", c[2])
		}
		fe.Names = append(fe.Names, fmt.Sprintf("%s~%s:%s", c[0], c[1], c[2]))
		fe.fns = append(fe.fns, featureFn{attrA: c[0], attrB: c[1], fn: fn})
	}
	return fe, nil
}

// Extract computes the feature vector for one pair.
func (fe *FeatureExtractor) Extract(a, b *model.Instance) []float64 {
	out := make([]float64, len(fe.fns))
	for i, f := range fe.fns {
		out[i] = f.fn(a.Attr(f.attrA), b.Attr(f.attrB))
	}
	return out
}

// BuildExamples labels candidate pairs against the training mapping.
// Negative examples are all candidate pairs absent from training whose
// domain object is covered by training.
func BuildExamples(fe *FeatureExtractor, a, b *model.ObjectSet, pairs [][2]model.ID, training *mapping.Mapping) []Example {
	covered := make(map[model.ID]bool)
	for _, id := range training.DomainIDs() {
		covered[id] = true
	}
	var out []Example
	for _, p := range pairs {
		ia, ib := a.Get(p[0]), b.Get(p[1])
		if ia == nil || ib == nil || !covered[p[0]] {
			continue
		}
		out = append(out, Example{
			Features: fe.Extract(ia, ib),
			Match:    training.Has(p[0], p[1]),
		})
	}
	return out
}

// Tree is a binary CART decision tree over similarity features.
type Tree struct {
	// Leaf fields.
	IsLeaf bool
	Match  bool
	// Split fields.
	Feature   int
	Threshold float64
	Left      *Tree // feature < threshold
	Right     *Tree // feature >= threshold
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinExamples int
}

// DefaultTreeConfig is a sensible small-tree default.
func DefaultTreeConfig() TreeConfig { return TreeConfig{MaxDepth: 4, MinExamples: 4} }

// LearnTree grows a CART tree with Gini-impurity splits.
func LearnTree(examples []Example, cfg TreeConfig) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 4
	}
	if cfg.MinExamples <= 0 {
		cfg.MinExamples = 2
	}
	return growTree(examples, cfg, 0)
}

func majority(examples []Example) bool {
	pos := 0
	for _, e := range examples {
		if e.Match {
			pos++
		}
	}
	return pos*2 >= len(examples) && pos > 0
}

func gini(pos, total int) float64 {
	if total == 0 {
		return 0
	}
	p := float64(pos) / float64(total)
	return 2 * p * (1 - p)
}

func growTree(examples []Example, cfg TreeConfig, depth int) *Tree {
	if len(examples) == 0 {
		return &Tree{IsLeaf: true, Match: false}
	}
	pos := 0
	for _, e := range examples {
		if e.Match {
			pos++
		}
	}
	if pos == 0 || pos == len(examples) || depth >= cfg.MaxDepth || len(examples) < cfg.MinExamples {
		return &Tree{IsLeaf: true, Match: majority(examples)}
	}
	nFeatures := len(examples[0].Features)
	bestFeature, bestThreshold, bestScore := -1, 0.0, math.Inf(1)
	for f := 0; f < nFeatures; f++ {
		values := make([]float64, 0, len(examples))
		for _, e := range examples {
			values = append(values, e.Features[f])
		}
		sort.Float64s(values)
		for i := 1; i < len(values); i++ {
			if values[i] == values[i-1] {
				continue
			}
			thr := (values[i] + values[i-1]) / 2
			lp, lt, rp, rt := 0, 0, 0, 0
			for _, e := range examples {
				if e.Features[f] < thr {
					lt++
					if e.Match {
						lp++
					}
				} else {
					rt++
					if e.Match {
						rp++
					}
				}
			}
			score := (float64(lt)*gini(lp, lt) + float64(rt)*gini(rp, rt)) / float64(len(examples))
			if score < bestScore {
				bestScore, bestFeature, bestThreshold = score, f, thr
			}
		}
	}
	if bestFeature < 0 {
		return &Tree{IsLeaf: true, Match: majority(examples)}
	}
	var left, right []Example
	for _, e := range examples {
		if e.Features[bestFeature] < bestThreshold {
			left = append(left, e)
		} else {
			right = append(right, e)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &Tree{IsLeaf: true, Match: majority(examples)}
	}
	return &Tree{
		Feature:   bestFeature,
		Threshold: bestThreshold,
		Left:      growTree(left, cfg, depth+1),
		Right:     growTree(right, cfg, depth+1),
	}
}

// Predict classifies a feature vector.
func (t *Tree) Predict(features []float64) bool {
	node := t
	for !node.IsLeaf {
		if node.Feature < len(features) && features[node.Feature] < node.Threshold {
			node = node.Left
		} else {
			node = node.Right
		}
	}
	return node.Match
}

// Depth returns the tree depth (leaf = 0).
func (t *Tree) Depth() int {
	if t.IsLeaf {
		return 0
	}
	l, r := t.Left.Depth(), t.Right.Depth()
	if l > r {
		return l + 1
	}
	return r + 1
}

// TreeMatcher wraps a learned tree as a Matcher: pairs predicted positive
// become correspondences, with the mean feature similarity as confidence.
type TreeMatcher struct {
	MatcherName string
	Extractor   *FeatureExtractor
	Tree        *Tree
	Pairs       func(a, b *model.ObjectSet) [][2]model.ID
}

// Name implements match.Matcher.
func (tm *TreeMatcher) Name() string {
	if tm.MatcherName != "" {
		return tm.MatcherName
	}
	return "decision-tree"
}

// Match implements match.Matcher.
func (tm *TreeMatcher) Match(a, b *model.ObjectSet) (*mapping.Mapping, error) {
	if tm.Extractor == nil || tm.Tree == nil {
		return nil, fmt.Errorf("tuning: %s is not trained", tm.Name())
	}
	pairsFn := tm.Pairs
	if pairsFn == nil {
		pairsFn = func(a, b *model.ObjectSet) [][2]model.ID {
			var out [][2]model.ID
			for _, ida := range a.IDs() {
				for _, idb := range b.IDs() {
					out = append(out, [2]model.ID{ida, idb})
				}
			}
			return out
		}
	}
	out := mapping.NewSame(a.LDS(), b.LDS())
	for _, p := range pairsFn(a, b) {
		ia, ib := a.Get(p[0]), b.Get(p[1])
		if ia == nil || ib == nil {
			continue
		}
		feats := tm.Extractor.Extract(ia, ib)
		if tm.Tree.Predict(feats) {
			var sum float64
			for _, f := range feats {
				sum += f
			}
			out.Add(p[0], p[1], sum/float64(len(feats)))
		}
	}
	return out, nil
}
