// Package live implements MOMA's online resolution subsystem: a resident,
// incrementally-maintained match state with a query API on top.
//
// Every other entry point in this repository is batch — matching one new
// instance against a known source would rebuild the token inverted index and
// re-score the whole set. A Resolver instead registers an ObjectSet once and
// keeps its derived structures resident: an incremental ordinal inverted
// index over the blocking attribute (index.Ords, the same structure the
// batch blocking cache uses), dense similarity-profile columns keyed by slot
// ordinals, and per-column TF-IDF corpora. Resolve then blocks, scores and
// thresholds one query record against the set in time proportional to its
// candidates, not to the set; Add and Remove update the resident structures
// in place instead of re-matching.
//
// Scoring mirrors the batch matchers exactly: a query blocked by shared
// tokens (block.TokenBlocking semantics) and scored as the weighted average
// of per-column similarities (match.MultiAttribute semantics) produces
// bit-identical similarities to a batch re-match with the same
// configuration — the differential tests in live_test.go pin this. The one
// deliberate divergence is TF-IDF: a batch TFIDFAttribute builds its corpus
// from both match inputs, while a Resolver's corpus covers the registered
// set only (queries arrive one at a time and must not shift document
// frequencies).
//
// A Resolver is safe for concurrent use: Resolve takes a read lock, Add and
// Remove a write lock, so a serving process interleaves lookups and updates
// freely. Slots are append-only with tombstones; once tombstones outnumber
// the live instances (past a small floor) Remove compacts the slot arrays
// and rebuilds the blocking index in place, so resident memory stays
// proportional to the live set under unbounded churn.
//
// Blocking tokens are interned in a dictionary private to the resolver
// (sim.Dict): Add interns the arriving instance's blocking tokens, and
// dropping the resolver releases that vocabulary. Column values profiled
// for scoring (token-set measures, TF-IDF corpora) intern into the
// process-global sim.Terms, which outlives any one resolver — that growth
// is bounded by the vocabulary of the data actually added. Query records
// intern nowhere: Resolve probes the blocking index and profiles every
// scored column lookup-only (sim.QueryProfiler), so an unbounded stream of
// distinct queries leaves both dictionaries untouched.
package live

import (
	"fmt"
	"sync"

	"repro/internal/index"
	"repro/internal/mapping"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Column configures one attribute comparison, mirroring match.AttrPair:
// QueryAttr is read from query instances, SetAttr from registered instances.
type Column struct {
	QueryAttr, SetAttr string
	// Sim scores the pair; built-ins are upgraded via sim.ProfiledOf.
	Sim sim.Func
	// Profiled optionally overrides the upgrade (see match.Attribute).
	Profiled sim.ProfiledSim
	// TFIDF scores the column under TF-IDF cosine over a resident corpus of
	// the registered set's values. Sim and Profiled are then ignored.
	TFIDF bool
	// Weight is the column's share of the weighted average; 0 means 1.
	Weight float64
}

// Config configures a Resolver.
type Config struct {
	// BlockQueryAttr/BlockSetAttr drive token blocking: a query is a
	// candidate against the set instances sharing at least MinShared tokens
	// of these attributes. Empty values default to the first column's
	// attributes. MinShared < 1 means 1.
	BlockQueryAttr, BlockSetAttr string
	MinShared                    int
	// Threshold is the minimum weighted-average similarity of a Match.
	Threshold float64
	// Columns are the scored attribute comparisons.
	Columns []Column
}

// Match is one resolution result: a registered instance at or above the
// threshold.
type Match struct {
	ID  model.ID
	Sim float64
}

// colState is the resident per-column state.
//
//moma:parallel profs raws
type colState struct {
	cfg    Column
	ps     sim.ProfiledSim          // nil means the string fallback via cfg.Sim
	qp     sim.QueryProfiler        // non-nil when ps can profile queries lookup-only
	pi     sim.InPlaceQueryProfiler // non-nil when ps can profile queries allocation-free
	corpus *sim.TFIDF               // non-nil for TFIDF columns
	w      float64

	profs []*sim.Profile // per slot, profiled columns
	raws  []string       // per slot, raw values (fallback scoring, corpus removal)
}

// Resolver holds one registered object set in resident, incrementally
// maintained form. Create with NewResolver.
//
//moma:parallel ids alive blockToks
type Resolver struct {
	mu  sync.RWMutex
	lds model.LDS
	cfg Config

	minShared int
	totalW    float64
	cols      []colState

	ids       []model.ID       // slot -> id (stale after Remove, see alive); guarded by mu
	slots     map[model.ID]int // id -> slot, alive instances only; guarded by mu
	alive     []bool           // slot liveness; guarded by mu
	liveCount int              // guarded by mu
	blockToks [][]uint32       // slot -> interned blocking-attribute tokens (index removal); guarded by mu
	dict      *sim.Dict        // private term dictionary of the blocking index
	ix        *index.Ords
}

// NewResolver registers the object set under the configuration and builds
// the resident structures. The set is snapshotted: later mutations of the
// set are invisible to the resolver — route updates through Add and Remove.
func NewResolver(set *model.ObjectSet, cfg Config) (*Resolver, error) {
	if set == nil {
		return nil, fmt.Errorf("live: NewResolver needs an object set")
	}
	if len(cfg.Columns) == 0 {
		return nil, fmt.Errorf("live: config needs at least one column")
	}
	if cfg.BlockQueryAttr == "" {
		cfg.BlockQueryAttr = cfg.Columns[0].QueryAttr
	}
	if cfg.BlockSetAttr == "" {
		cfg.BlockSetAttr = cfg.Columns[0].SetAttr
	}
	if cfg.BlockQueryAttr == "" || cfg.BlockSetAttr == "" {
		return nil, fmt.Errorf("live: blocking attributes must not be empty")
	}
	r := &Resolver{
		lds:       set.LDS(),
		cfg:       cfg,
		minShared: cfg.MinShared,
		slots:     make(map[model.ID]int, set.Len()),
		dict:      sim.NewDict(),
		ix:        index.NewOrds(),
	}
	if r.minShared < 1 {
		r.minShared = 1
	}
	r.cols = make([]colState, len(cfg.Columns))
	for i, c := range cfg.Columns {
		if c.QueryAttr == "" || c.SetAttr == "" {
			return nil, fmt.Errorf("live: column %d needs QueryAttr and SetAttr", i)
		}
		if c.Weight < 0 {
			return nil, fmt.Errorf("live: column %d has negative weight", i)
		}
		cs := colState{cfg: c, w: c.Weight}
		if cs.w == 0 {
			cs.w = 1
		}
		switch {
		case c.TFIDF:
			cs.corpus = sim.NewTFIDF()
			cs.ps = cs.corpus.Profiled()
		case c.Profiled != nil:
			cs.ps = c.Profiled
		case c.Sim != nil:
			cs.ps, _ = sim.ProfiledOf(c.Sim)
		default:
			return nil, fmt.Errorf("live: column %d has no similarity function", i)
		}
		// Query records are profiled lookup-only where the measure supports
		// it, so resolve traffic never grows the term dictionaries — and
		// in place where it can, so warm resolves allocate nothing.
		cs.qp, _ = cs.ps.(sim.QueryProfiler)
		cs.pi, _ = cs.ps.(sim.InPlaceQueryProfiler)
		r.cols[i] = cs
		r.totalW += cs.w
	}
	// Bulk build: register every corpus document first and profile each
	// column exactly once at the end — the per-arrival reprofile of Add
	// would make a TFIDF construction O(n²).
	set.Each(func(in *model.Instance) bool {
		r.addLocked(in, true)
		return true
	})
	for i := range r.cols {
		if c := &r.cols[i]; c.corpus != nil {
			r.reprofileLocked(c)
		}
	}
	return r, nil
}

// LDS returns the logical data source of the registered set.
func (r *Resolver) LDS() model.LDS { return r.lds }

// Len returns the number of live (added and not removed) instances.
func (r *Resolver) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.liveCount
}

// Has reports whether the id is live in the resolver.
func (r *Resolver) Has(id model.ID) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.slots[id]
	return ok
}

// Resolve blocks, scores and thresholds one query record against the
// registered set. Matches stream back in the set's insertion order with the
// exact similarities a batch matcher of the same configuration computes.
// After warm-up, a Resolve allocates proportionally to its candidates —
// never to the set size.
//
//moma:readpath
func (r *Resolver) Resolve(q *model.Instance) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resolveLocked(q, false, nil)
}

// ResolveAppend is Resolve appending into dst — the steady-state serving
// entry point. When dst has capacity and every column's measure supports
// in-place query profiling (sim.InPlaceQueryProfiler: the equality, n-gram,
// token-set and year measures), a warm ResolveAppend performs zero heap
// allocations; TestResolveAppendZeroAllocs pins that. Matches are appended
// in the set's insertion order; dst[:0] reuse is the intended idiom.
//
//moma:readpath
func (r *Resolver) ResolveAppend(q *model.Instance, dst []Match) []Match {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.resolveLocked(q, false, dst)
}

// queryCol is one column's profiled query value.
type queryCol struct {
	prof *sim.Profile
	raw  string
}

// resolveScratch holds the per-resolve working memory: the query's token
// IDs and normalization buffer, one Profile slot per column (in-place
// profiling target), and the column view over them. Pooled so concurrent
// warm resolves neither contend nor allocate.
type resolveScratch struct {
	norm  []byte
	toks  []uint32
	qcols []queryCol
	profs []sim.Profile
	sc    sim.Scratch
	span  obs.Span
}

var scratchPool = sync.Pool{New: func() any { return new(resolveScratch) }}

// resolveLocked is Resolve under a held lock (any mode), appending matches
// to dst. asMember selects which attribute names the record is read under:
// false for query-side records (Resolve, ResolveSet), true for set-side
// records — an arriving member resolved against its peers (AddResolve)
// carries the set's attribute names, not the query schema's.
//
//moma:locked mu
//moma:noalloc
func (r *Resolver) resolveLocked(q *model.Instance, asMember bool, dst []Match) []Match {
	resolvesTotal.Inc()
	blockAttr := r.cfg.BlockQueryAttr
	if asMember {
		blockAttr = r.cfg.BlockSetAttr
	}
	blockVal := q.Attr(blockAttr)
	if blockVal == "" {
		return dst
	}
	scratch := scratchPool.Get().(*resolveScratch)
	defer scratchPool.Put(scratch)
	sp := &scratch.span
	sp.Begin()
	// Lookup-only interning: query tokens never seen by an Add cannot block
	// to any candidate and are dropped without growing the dictionary.
	scratch.norm, scratch.toks = r.dict.AppendLookupTokenIDs(blockVal, scratch.norm, scratch.toks)
	toks := scratch.toks
	if len(toks) == 0 {
		return dst
	}
	sp.Mark(stageBlock)
	// Profile the query once per column, exactly as a batch profile build
	// does for every domain instance. Columns with an in-place profiler
	// reuse the pooled Profile slots; the rest allocate per resolve.
	//moma:cold first resolve through this scratch; the slots are reused afterwards
	if cap(scratch.qcols) < len(r.cols) {
		scratch.qcols = make([]queryCol, len(r.cols))
		scratch.profs = make([]sim.Profile, len(r.cols))
	}
	qcols := scratch.qcols[:len(r.cols)]
	profs := scratch.profs[:len(r.cols)]
	for i := range r.cols {
		attr := r.cols[i].cfg.QueryAttr
		if asMember {
			attr = r.cols[i].cfg.SetAttr
		}
		v := q.Attr(attr)
		switch {
		case r.cols[i].pi != nil:
			r.cols[i].pi.ProfileQueryInto(v, &profs[i], &scratch.sc)
			qcols[i] = queryCol{prof: &profs[i]}
		case r.cols[i].qp != nil:
			qcols[i] = queryCol{prof: r.cols[i].qp.ProfileQuery(v)}
		case r.cols[i].ps != nil:
			//moma:dictgrowth-ok only measures without ProfileQuery reach this branch, and no built-in non-QueryProfiler measure interns (pinned by TestProfiledFallbacksDoNotIntern)
			qcols[i] = queryCol{prof: r.cols[i].ps.Profile(v)}
		default:
			qcols[i] = queryCol{raw: v}
		}
	}
	sp.Mark(stageProfile)
	//moma:noalloc-ok the candidate closure is stack-allocated: EachCandidate does not retain it (pinned by TestResolveAppendZeroAllocs)
	r.ix.EachCandidate(toks, r.minShared, func(ord int) bool {
		sp.Candidates++
		var sum float64
		for i := range r.cols {
			c := &r.cols[i]
			if c.ps != nil {
				sum += c.w * c.ps.Compare(qcols[i].prof, c.profs[ord])
			} else {
				sum += c.w * c.cfg.Sim(qcols[i].raw, c.raws[ord])
			}
		}
		if s := sum / r.totalW; s >= r.cfg.Threshold {
			sp.Kept++
			dst = append(dst, Match{ID: r.ids[ord], Sim: s}) //moma:noalloc-ok appends into caller-reused capacity; grows once to the high-water mark
		}
		return true
	})
	sp.Mark(stageScore)
	resolveCandidates.Add(uint64(sp.Candidates))
	resolveMatches.Add(uint64(sp.Kept))
	resolveStages.Finish(sp, string(q.ID))
	return dst
}

// ResolveSet resolves every instance of a query set and collects the
// results into a same-mapping from the query LDS to the registered LDS —
// the online counterpart of a batch Matcher.Match call.
func (r *Resolver) ResolveSet(queries *model.ObjectSet) (*mapping.Mapping, error) {
	if !queries.LDS().SameType(r.lds) {
		return nil, fmt.Errorf("live: query set %s does not share the object type of %s", queries.LDS(), r.lds)
	}
	out := mapping.NewSame(queries.LDS(), r.lds)
	r.mu.RLock()
	defer r.mu.RUnlock()
	queries.Each(func(q *model.Instance) bool {
		for _, m := range r.resolveLocked(q, false, nil) {
			out.AddMax(q.ID, m.ID, m.Sim)
		}
		return true
	})
	return out, nil
}

// Add inserts the instance into the resident state: index postings, profile
// columns and TF-IDF corpora update in place. Adding an id that is already
// live replaces it. Cost is O(columns) plus the instance's token count;
// TF-IDF columns additionally reprofile the column (corpus statistics shift
// with every document), which is the documented price of corpus-backed
// measures online.
func (r *Resolver) Add(in *model.Instance) error {
	if in == nil || in.ID == "" {
		return fmt.Errorf("live: Add needs an instance with an id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.addLocked(in, false)
	return nil
}

// AddResolve resolves the instance against the current live members and
// then adds it — the arrival path of online deduplication: the result is
// the delta the instance contributes to the set's same-mapping, without
// re-matching anything already resolved. The arrival is a member record and
// is read under the set-side attribute names (SetAttr, BlockSetAttr). When
// the id is already live this is a replace: the previous version is dropped
// before resolving, so an instance never matches its own stale self.
func (r *Resolver) AddResolve(in *model.Instance) ([]Match, error) {
	if in == nil || in.ID == "" {
		return nil, fmt.Errorf("live: AddResolve needs an instance with an id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot, live := r.slots[in.ID]; live {
		// The intermediate reprofile keeps corpus-backed columns exact for
		// the resolve below (the previous version is already gone).
		r.dropSlotLocked(slot, true)
	}
	matches := r.resolveLocked(in, true, nil)
	r.addLocked(in, false)
	return matches, nil
}

// addLocked inserts or replaces under a held write lock. bulk suppresses
// the per-arrival reprofile of corpus-backed columns during construction,
// where NewResolver reprofiles once at the end instead.
//
//moma:locked mu
func (r *Resolver) addLocked(in *model.Instance, bulk bool) {
	slot, replacing := r.slots[in.ID]
	var droppedCorpus []bool
	if replacing {
		// Remember which corpus columns the drop will change, and skip the
		// drop's reprofile: nothing observes the intermediate state, and the
		// insertion below reprofiles once for drop and add together.
		droppedCorpus = make([]bool, len(r.cols))
		for i := range r.cols {
			c := &r.cols[i]
			droppedCorpus[i] = c.corpus != nil && r.alive[slot] && c.raws[slot] != ""
		}
		r.dropSlotLocked(slot, false)
	} else {
		slot = len(r.ids)
		r.ids = append(r.ids, in.ID)
		r.alive = append(r.alive, false)
		r.blockToks = append(r.blockToks, nil)
		for i := range r.cols {
			c := &r.cols[i]
			c.raws = append(c.raws, "")
			c.profs = append(c.profs, nil)
		}
	}
	r.slots[in.ID] = slot
	r.alive[slot] = true
	r.liveCount++
	addsTotal.Inc()
	instancesLive.Add(1)
	if v := in.Attr(r.cfg.BlockSetAttr); v != "" {
		toks := r.dict.TokenIDs(v)
		r.blockToks[slot] = toks
		r.ix.Add(slot, toks)
	} else {
		r.blockToks[slot] = nil
	}
	for i := range r.cols {
		c := &r.cols[i]
		v := in.Attr(c.cfg.SetAttr)
		c.raws[slot] = v
		if c.corpus != nil {
			changed := droppedCorpus != nil && droppedCorpus[i]
			if v != "" {
				c.corpus.Add(v)
				changed = true
			}
			if bulk {
				// NewResolver reprofiles the column once after all corpus
				// documents are in; a vector built now would be discarded.
				continue
			}
			if changed {
				// The corpus changed, so every resident vector is stale.
				r.reprofileLocked(c)
				continue
			}
		}
		if c.ps != nil {
			c.profs[slot] = c.ps.Profile(v)
		}
	}
}

// Remove tombstones the instance: its index postings disappear, its corpus
// contributions are reversed, and it can no longer match. It reports
// whether the id was live. Once tombstones outnumber the live instances
// (past compactMinDead) the slot arrays are compacted in place, so a
// resolver under unbounded add/remove churn keeps memory proportional to
// its live size instead of its history.
func (r *Resolver) Remove(id model.ID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.slots[id]
	if !ok {
		return false
	}
	r.dropSlotLocked(slot, true)
	delete(r.slots, id)
	removesTotal.Inc()
	if dead := len(r.ids) - r.liveCount; dead >= compactMinDead && dead > r.liveCount {
		r.compactLocked()
	}
	return true
}

// compactMinDead is the tombstone floor below which compaction is not worth
// the rebuild; combined with the dead > live trigger it makes compaction
// cost amortized O(1) per Remove (each compaction drops at least half the
// slots, so at least compactMinDead removals separate two compactions).
const compactMinDead = 64

// compactLocked reclaims tombstoned slots under a held write lock: live
// slots move down in insertion order (so candidate streams keep yielding in
// the original arrival order), per-slot arrays are reallocated at the live
// size (releasing the grown backing arrays), and the blocking index is
// rebuilt over the new ordinals. Profiles, raw values and corpus statistics
// move untouched — only slot numbers change.
//
//moma:locked mu
func (r *Resolver) compactLocked() {
	compactionsTotal.Inc()
	n := r.liveCount
	ids := make([]model.ID, 0, n)
	alive := make([]bool, 0, n)
	blockToks := make([][]uint32, 0, n)
	cols := make([][]*sim.Profile, len(r.cols))
	raws := make([][]string, len(r.cols))
	for i := range r.cols {
		cols[i] = make([]*sim.Profile, 0, n)
		raws[i] = make([]string, 0, n)
	}
	ix := index.NewOrds()
	for slot := range r.ids {
		if !r.alive[slot] {
			continue
		}
		w := len(ids)
		ids = append(ids, r.ids[slot])
		alive = append(alive, true)
		blockToks = append(blockToks, r.blockToks[slot])
		for i := range r.cols {
			cols[i] = append(cols[i], r.cols[i].profs[slot])
			raws[i] = append(raws[i], r.cols[i].raws[slot])
		}
		r.slots[r.ids[slot]] = w
		if toks := r.blockToks[slot]; len(toks) > 0 {
			ix.Add(w, toks)
		}
	}
	r.ids, r.alive, r.blockToks, r.ix = ids, alive, blockToks, ix
	for i := range r.cols {
		r.cols[i].profs = cols[i]
		r.cols[i].raws = raws[i]
	}
}

// dropSlotLocked reverses a slot's contributions under a held write lock.
// reprofile controls whether corpus-backed columns rebuild their resident
// vectors immediately; a caller that changes the corpus again right after
// (addLocked's replace path) passes false and reprofiles once at the end.
//
//moma:locked mu
func (r *Resolver) dropSlotLocked(slot int, reprofile bool) {
	if !r.alive[slot] {
		return
	}
	r.alive[slot] = false
	r.liveCount--
	instancesLive.Add(-1)
	if toks := r.blockToks[slot]; len(toks) > 0 {
		r.ix.Remove(slot, toks)
		r.blockToks[slot] = nil
	}
	for i := range r.cols {
		c := &r.cols[i]
		if c.corpus != nil && c.raws[slot] != "" {
			c.corpus.Remove(c.raws[slot])
			if reprofile {
				r.reprofileLocked(c)
			}
		}
		c.raws[slot] = ""
		c.profs[slot] = nil
	}
}

// reprofileLocked rebuilds a corpus-backed column's profiles after the
// corpus changed: TF-IDF weights of every document shift with any
// document-frequency change, so cached vectors are rebuilt eagerly — reads
// stay lock-free and exact.
//
//moma:locked mu
func (r *Resolver) reprofileLocked(c *colState) {
	for slot := range c.profs {
		if r.alive[slot] {
			c.profs[slot] = c.ps.Profile(c.raws[slot])
		}
	}
}

// Stats summarizes the resident state.
type Stats struct {
	// Live is the number of live instances; Slots the allocated slot count
	// (tombstones included).
	Live, Slots int
	// IndexedDocs/IndexTerms size the blocking index.
	IndexedDocs, IndexTerms int
}

// Stats returns resident-state statistics.
func (r *Resolver) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return Stats{
		Live:        r.liveCount,
		Slots:       len(r.ids),
		IndexedDocs: r.ix.Docs(),
		IndexTerms:  r.ix.Terms(),
	}
}

// String summarizes the resolver.
func (r *Resolver) String() string {
	st := r.Stats()
	return fmt.Sprintf("live.Resolver{%s, live: %d, slots: %d, index: %d docs/%d terms}",
		r.lds, st.Live, st.Slots, st.IndexedDocs, st.IndexTerms)
}
